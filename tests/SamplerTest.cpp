//===- tests/SamplerTest.cpp - sampler state machine tests ---------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// The CounterBasedSampler is the paper's Figure 3 pseudocode verbatim;
// these tests pin down its sampling positions event by event, across
// the (Stride, SamplesPerTick) parameter space and all three initial-
// skip policies.
//
//===----------------------------------------------------------------------===//

#include "profiling/CounterBasedSampler.h"
#include "profiling/TimerSampler.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::prof;

namespace {

/// Feeds \p Events invocation events after one tick; returns the
/// 0-based indices of the sampled events.
std::vector<uint32_t> samplePositions(CBSParams Params, uint32_t Events,
                                      uint64_t Seed = 1) {
  RandomEngine RNG(Seed);
  CounterBasedSampler CBS(Params);
  CBS.onTimerTick(RNG);
  std::vector<uint32_t> Positions;
  for (uint32_t E = 0; E != Events && CBS.armed(); ++E)
    if (CBS.onInvocationEvent())
      Positions.push_back(E);
  return Positions;
}

} // namespace

TEST(CBS, DefaultsSampleFirstEventThenDisarm) {
  CBSParams P;
  P.Stride = 1;
  P.SamplesPerTick = 1;
  P.Skip = SkipPolicy::Fixed;
  auto Pos = samplePositions(P, 10);
  EXPECT_EQ(Pos, (std::vector<uint32_t>{0}));
}

TEST(CBS, FixedSkipSamplesEveryStrideth) {
  CBSParams P;
  P.Stride = 3;
  P.SamplesPerTick = 4;
  P.Skip = SkipPolicy::Fixed;
  // First sample after STRIDE events (skip initialized to STRIDE), then
  // every STRIDE.
  auto Pos = samplePositions(P, 100);
  EXPECT_EQ(Pos, (std::vector<uint32_t>{2, 5, 8, 11}));
}

TEST(CBS, DisarmsAfterQuota) {
  CBSParams P;
  P.Stride = 2;
  P.SamplesPerTick = 3;
  P.Skip = SkipPolicy::Fixed;
  RandomEngine RNG(1);
  CounterBasedSampler CBS(P);
  CBS.onTimerTick(RNG);
  uint32_t Sampled = 0;
  for (uint32_t E = 0; E != 6; ++E) {
    ASSERT_TRUE(CBS.armed());
    Sampled += CBS.onInvocationEvent();
  }
  EXPECT_EQ(Sampled, 3u);
  EXPECT_FALSE(CBS.armed());
  EXPECT_EQ(CBS.samplesTaken(), 3u);
  EXPECT_EQ(CBS.armedEvents(), 6u);
}

TEST(CBS, RearmsOnNextTick) {
  CBSParams P;
  P.Stride = 1;
  P.SamplesPerTick = 2;
  P.Skip = SkipPolicy::Fixed;
  RandomEngine RNG(1);
  CounterBasedSampler CBS(P);
  CBS.onTimerTick(RNG);
  EXPECT_TRUE(CBS.onInvocationEvent());
  EXPECT_TRUE(CBS.onInvocationEvent());
  EXPECT_FALSE(CBS.armed());
  CBS.onTimerTick(RNG);
  EXPECT_TRUE(CBS.armed());
  EXPECT_TRUE(CBS.onInvocationEvent());
  EXPECT_EQ(CBS.samplesTaken(), 3u);
  EXPECT_EQ(CBS.overlappingWindows(), 0u);
}

TEST(CBS, OverlappingWindowCountedAndWindowContinues) {
  CBSParams P;
  P.Stride = 4;
  P.SamplesPerTick = 8;
  P.Skip = SkipPolicy::Fixed;
  RandomEngine RNG(1);
  CounterBasedSampler CBS(P);
  CBS.onTimerTick(RNG);
  CBS.onInvocationEvent(); // Window still open (needs 32 events).
  CBS.onTimerTick(RNG);    // Tick arrives early.
  EXPECT_EQ(CBS.overlappingWindows(), 1u);
  EXPECT_TRUE(CBS.armed());
  // The countdown was not reset: 3 more events to the first sample.
  EXPECT_FALSE(CBS.onInvocationEvent());
  EXPECT_FALSE(CBS.onInvocationEvent());
  EXPECT_TRUE(CBS.onInvocationEvent());
}

TEST(CBS, RoundRobinCyclesInitialSkip) {
  CBSParams P;
  P.Stride = 3;
  P.SamplesPerTick = 1;
  P.Skip = SkipPolicy::RoundRobin;
  RandomEngine RNG(1);
  CounterBasedSampler CBS(P);
  std::vector<uint32_t> FirstSamplePos;
  for (int Tick = 0; Tick != 6; ++Tick) {
    CBS.onTimerTick(RNG);
    for (uint32_t E = 0; CBS.armed(); ++E)
      if (CBS.onInvocationEvent()) {
        FirstSamplePos.push_back(E);
        break;
      }
  }
  EXPECT_EQ(FirstSamplePos, (std::vector<uint32_t>{0, 1, 2, 0, 1, 2}));
}

TEST(CBS, RandomSkipWithinStrideAndCoversAll) {
  CBSParams P;
  P.Stride = 5;
  P.SamplesPerTick = 1;
  P.Skip = SkipPolicy::Random;
  RandomEngine RNG(99);
  CounterBasedSampler CBS(P);
  std::vector<int> Seen(5, 0);
  for (int Tick = 0; Tick != 200; ++Tick) {
    CBS.onTimerTick(RNG);
    for (uint32_t E = 0; CBS.armed(); ++E) {
      ASSERT_LT(E, 5u) << "first sample must come within Stride events";
      if (CBS.onInvocationEvent()) {
        ++Seen[E];
        break;
      }
    }
  }
  for (int Count : Seen)
    EXPECT_GT(Count, 10); // Uniform-ish coverage of all positions.
}

TEST(CBS, StrideOneRandomEqualsFixed) {
  CBSParams P;
  P.Stride = 1;
  P.SamplesPerTick = 3;
  P.Skip = SkipPolicy::Random;
  auto Pos = samplePositions(P, 10);
  EXPECT_EQ(Pos, (std::vector<uint32_t>{0, 1, 2}));
}

// Property sweep: for every (stride, samples) combination the window
// consumes exactly stride*samples events under the Fixed policy and
// yields exactly `samples` samples, spaced exactly `stride` apart.
struct CBSGridCase {
  uint32_t Stride;
  uint32_t Samples;
};

class CBSGridTest : public ::testing::TestWithParam<CBSGridCase> {};

TEST_P(CBSGridTest, WindowGeometry) {
  auto [Stride, Samples] = GetParam();
  CBSParams P;
  P.Stride = Stride;
  P.SamplesPerTick = Samples;
  P.Skip = SkipPolicy::Fixed;
  RandomEngine RNG(1);
  CounterBasedSampler CBS(P);
  CBS.onTimerTick(RNG);
  std::vector<uint32_t> Pos;
  uint32_t Events = 0;
  while (CBS.armed()) {
    if (CBS.onInvocationEvent())
      Pos.push_back(Events);
    ++Events;
  }
  EXPECT_EQ(Events, Stride * Samples);
  ASSERT_EQ(Pos.size(), Samples);
  for (size_t I = 0; I != Pos.size(); ++I)
    EXPECT_EQ(Pos[I], Stride - 1 + I * Stride);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CBSGridTest,
    ::testing::Values(CBSGridCase{1, 1}, CBSGridCase{1, 8},
                      CBSGridCase{2, 4}, CBSGridCase{3, 16},
                      CBSGridCase{7, 32}, CBSGridCase{15, 2},
                      CBSGridCase{31, 1}, CBSGridCase{63, 5},
                      CBSGridCase{127, 3}));

//===----------------------------------------------------------------------===//
// TimerSampler
//===----------------------------------------------------------------------===//

TEST(Timer, OneSamplePerTick) {
  TimerSampler T;
  T.onTimerTick();
  EXPECT_TRUE(T.armed());
  EXPECT_TRUE(T.onInvocationEvent());
  EXPECT_FALSE(T.armed());
  EXPECT_EQ(T.samplesTaken(), 1u);
}

TEST(Timer, MissedTicksCounted) {
  TimerSampler T;
  T.onTimerTick();
  T.onTimerTick(); // No yieldpoint ran in between.
  EXPECT_EQ(T.missedTicks(), 1u);
  EXPECT_TRUE(T.armed());
  T.onInvocationEvent();
  EXPECT_EQ(T.samplesTaken(), 1u);
}

TEST(Timer, BackedgeCancelLosesSample) {
  TimerSampler T;
  T.onTimerTick();
  T.cancel(); // First yieldpoint after the tick was a backedge.
  EXPECT_FALSE(T.armed());
  EXPECT_EQ(T.samplesTaken(), 0u);
  EXPECT_EQ(T.lostToBackedge(), 1u);
}
