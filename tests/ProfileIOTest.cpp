//===- tests/ProfileIOTest.cpp - profile serialization tests -------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramGenerator.h"

#include "profiling/OverlapMetric.h"
#include "profiling/ProfileCodec.h"
#include "profiling/ProfileIO.h"
#include "support/Random.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace cbs;
using namespace cbs::prof;

namespace {

DCGSnapshot sampleGraph() {
  DynamicCallGraph DCG;
  DCG.addSample({3, 7}, 100);
  DCG.addSample({1, 2}, 40);
  DCG.addSample({9, 0}, 1);
  return DCG.snapshot();
}

} // namespace

TEST(ProfileIO, RoundTripPreservesEverything) {
  DCGSnapshot DCG = sampleGraph();
  ProfileCodec::Decoded R = ProfileCodec::decode(ProfileCodec::encode(DCG));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Graph->numEdges(), DCG.numEdges());
  EXPECT_EQ(R.Graph->totalWeight(), DCG.totalWeight());
  EXPECT_NEAR(overlap(*R.Graph, DCG), 100.0, 1e-9);
}

TEST(ProfileIO, SerializationIsDeterministic) {
  // Two graphs with the same content but different insertion orders
  // serialize identically.
  DynamicCallGraph A, B;
  A.addSample({1, 1}, 5);
  A.addSample({2, 2}, 7);
  B.addSample({2, 2}, 7);
  B.addSample({1, 1}, 5);
  EXPECT_EQ(ProfileCodec::encode(A.snapshot()),
            ProfileCodec::encode(B.snapshot()));
}

TEST(ProfileIO, EmptyGraphRoundTrips) {
  DCGSnapshot Empty;
  ProfileCodec::Decoded R = ProfileCodec::decode(ProfileCodec::encode(Empty));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.Graph->empty());
}

TEST(ProfileIO, RejectsBadMagic) {
  EXPECT_FALSE(ProfileCodec::decode("").ok());
  EXPECT_FALSE(ProfileCodec::decode("not-a-profile 1\n").ok());
  EXPECT_FALSE(ProfileCodec::decode("cbsvm-dcg 999\n").ok());
}

TEST(ProfileIO, RejectsMalformedLines) {
  EXPECT_FALSE(ProfileCodec::decode("cbsvm-dcg 1\n1 2\n").ok());
  EXPECT_FALSE(ProfileCodec::decode("cbsvm-dcg 1\n1 2 x\n").ok());
  EXPECT_FALSE(ProfileCodec::decode("cbsvm-dcg 1\n1 2 3 4\n").ok());
  EXPECT_FALSE(ProfileCodec::decode("cbsvm-dcg 1\n1 2 0\n").ok()) << "zero weight";
  EXPECT_FALSE(ProfileCodec::decode("cbsvm-dcg 1\n1 2 3\n1 2 4\n").ok())
      << "duplicate edge";
}

TEST(ProfileIO, RejectsOutOfRangeIds) {
  // Regression: ids are 32-bit, but the parser read them as uint64 and
  // silently truncated on the narrowing cast — an id of 2^32 + 5
  // became edge (5, ...) and corrupted the profile instead of failing.
  ProfileCodec::Decoded Site = ProfileCodec::decode("cbsvm-dcg 1\n4294967301 2 3\n");
  ASSERT_FALSE(Site.ok());
  EXPECT_NE(Site.Error.find("line 2"), std::string::npos) << Site.Error;
  EXPECT_NE(Site.Error.find("site id out of range"), std::string::npos)
      << Site.Error;

  ProfileCodec::Decoded Callee = ProfileCodec::decode("cbsvm-dcg 1\n1 4294967301 3\n");
  ASSERT_FALSE(Callee.ok());
  EXPECT_NE(Callee.Error.find("callee id out of range"), std::string::npos)
      << Callee.Error;
}

TEST(ProfileIO, RejectsInvalidSentinelAndNegativeIds) {
  // The all-ones value is the Invalid sentinel — never a legal edge.
  EXPECT_FALSE(ProfileCodec::decode("cbsvm-dcg 1\n4294967295 2 3\n").ok());
  EXPECT_FALSE(ProfileCodec::decode("cbsvm-dcg 1\n1 4294967295 3\n").ok());
  // A negative id wraps to a huge uint64 in istream extraction and must
  // hit the same range check, not truncate to a plausible small id.
  ProfileCodec::Decoded Neg = ProfileCodec::decode("cbsvm-dcg 1\n-1 2 3\n");
  ASSERT_FALSE(Neg.ok());
  EXPECT_NE(Neg.Error.find("out of range"), std::string::npos) << Neg.Error;
}

TEST(ProfileIO, AcceptsMaximalValidIds) {
  // One below the sentinels is still a legal id and must parse.
  ProfileCodec::Decoded R = ProfileCodec::decode("cbsvm-dcg 1\n4294967294 4294967294 3\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Graph->weight({4294967294u, 4294967294u}), 3u);
}

TEST(ProfileIO, SkipsCommentsAndBlankLines) {
  ProfileCodec::Decoded R =
      ProfileCodec::decode("cbsvm-dcg 1\n# hello\n\n1 2 3\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Graph->weight({1, 2}), 3u);
}

//===----------------------------------------------------------------------===//
// The v2 envelope: run metadata for the profile repository.
//===----------------------------------------------------------------------===//

TEST(ProfileCodecV2, RoundTripsMetadata) {
  ProfileMeta Meta;
  Meta.ProgramHash = 0xdeadbeefcafef00dull;
  Meta.Personality = "jikes";
  Meta.Runs = 7;
  Meta.Cycles = 123'456'789;
  std::string Text = ProfileCodec::encode(sampleGraph(), Meta);
  ProfileCodec::Decoded R = ProfileCodec::decode(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Version, ProfileCodec::V2);
  EXPECT_EQ(R.Meta.ProgramHash, Meta.ProgramHash);
  EXPECT_EQ(R.Meta.Personality, Meta.Personality);
  EXPECT_EQ(R.Meta.Runs, Meta.Runs);
  EXPECT_EQ(R.Meta.Cycles, Meta.Cycles);
  EXPECT_EQ(R.Graph->totalWeight(), sampleGraph().totalWeight());
  // And the re-encode is byte-identical.
  EXPECT_EQ(ProfileCodec::encode(*R.Graph, R.Meta), Text);
}

TEST(ProfileCodecV2, V1ReadsWithDefaultMeta) {
  ProfileCodec::Decoded R = ProfileCodec::decode("cbsvm-dcg 1\n1 2 3\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Version, ProfileCodec::V1);
  EXPECT_EQ(R.Meta.ProgramHash, 0u);
  EXPECT_TRUE(R.Meta.Personality.empty());
  EXPECT_EQ(R.Meta.Runs, 0u);
  EXPECT_EQ(R.Meta.Cycles, 0u);
}

TEST(ProfileCodecV2, UnknownVersionHasExactMessage) {
  ProfileCodec::Decoded R = ProfileCodec::decode("cbsvm-dcg 3\n1 2 3\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error, "unsupported version 3 (supported: 1, 2)");
}

TEST(ProfileCodecV2, RejectsMalformedMetadata) {
  // Every metadata error names its line and shape.
  ProfileCodec::Decoded Dup = ProfileCodec::decode(
      "cbsvm-dcg 2\n!runs 1\n!runs 2\n1 2 3\n");
  ASSERT_FALSE(Dup.ok());
  EXPECT_NE(Dup.Error.find("duplicate metadata key 'runs'"),
            std::string::npos)
      << Dup.Error;

  ProfileCodec::Decoded Unknown =
      ProfileCodec::decode("cbsvm-dcg 2\n!bogus 1\n1 2 3\n");
  ASSERT_FALSE(Unknown.ok());
  EXPECT_NE(Unknown.Error.find("unknown metadata key 'bogus'"),
            std::string::npos)
      << Unknown.Error;

  ProfileCodec::Decoded BadHash =
      ProfileCodec::decode("cbsvm-dcg 2\n!program xyz\n1 2 3\n");
  ASSERT_FALSE(BadHash.ok());
  EXPECT_NE(BadHash.Error.find("bad program hash 'xyz'"), std::string::npos)
      << BadHash.Error;

  // A v1 file must not smuggle metadata lines: '!' is not a comment
  // there, so it falls through to the edge parser and fails.
  EXPECT_FALSE(ProfileCodec::decode("cbsvm-dcg 1\n!runs 1\n1 2 3\n").ok());
}

TEST(ProfileCodecV2, LegacyEncodeIsV1ByteCompatible) {
  // encode(DCG) with no metadata still writes the v1 format, so every
  // pre-repository byte-equality check and golden fixture still holds.
  std::string Text = ProfileCodec::encode(sampleGraph());
  EXPECT_EQ(Text.rfind("cbsvm-dcg 1\n", 0), 0u) << Text;
  EXPECT_EQ(Text.find('!'), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Golden file: the on-disk text format is a contract. If either of
// these tests fails, the format changed — bump the version and write a
// migration, don't regenerate the fixture.
//===----------------------------------------------------------------------===//

namespace {

std::string readFixture(const char *Name) {
  std::ifstream In(std::string(CBSVM_FIXTURE_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << "missing fixture " << Name;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

TEST(ProfileIO, GoldenFixtureMatchesSerializer) {
  DynamicCallGraph DCG;
  DCG.addSample({3, 7}, 100);
  DCG.addSample({1, 2}, 40);
  DCG.addSample({9, 0}, 1);
  DCG.addSample({4294967294u, 4294967294u}, 12);
  EXPECT_EQ(ProfileCodec::encode(DCG.snapshot()), readFixture("profile_v1.dcg"));
}

TEST(ProfileIO, GoldenFixtureRoundTripsByteExactly) {
  std::string Golden = readFixture("profile_v1.dcg");
  ProfileCodec::Decoded R = ProfileCodec::decode(Golden);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Graph->numEdges(), 4u);
  EXPECT_EQ(R.Graph->totalWeight(), 153u);
  EXPECT_EQ(ProfileCodec::encode(*R.Graph), Golden);
}

TEST(ProfileIO, ValidatesRealProfilesAgainstTheirProgram) {
  bc::Program P = fuzz::generateRandomProgram(5);
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::Exhaustive;
  Config.Profiler.ChargeExhaustiveCounters = false;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  EXPECT_EQ(validateAgainst(VM.profile(), P), "");
}

TEST(ProfileIO, ValidateCatchesForeignEdges) {
  bc::Program P = fuzz::generateRandomProgram(6);
  DynamicCallGraph Bogus;
  Bogus.addSample({static_cast<bc::SiteId>(P.numSites() + 5), 0});
  EXPECT_NE(validateAgainst(Bogus.snapshot(), P), "");

  DynamicCallGraph WrongCallee;
  WrongCallee.addSample({0, static_cast<bc::MethodId>(P.numMethods() + 3)});
  EXPECT_NE(validateAgainst(WrongCallee.snapshot(), P), "");
}

TEST(ProfileIO, ValidateCatchesImpossibleDispatch) {
  // A static call site attributed to a different callee.
  bc::Program P = fuzz::generateRandomProgram(7);
  bc::SiteId StaticSite = bc::InvalidSiteId;
  bc::MethodId RealCallee = bc::InvalidMethodId;
  for (bc::SiteId S = 0; S != P.numSites(); ++S) {
    const bc::SiteInfo &Info = P.site(S);
    const bc::Instruction &I = P.method(Info.Caller).Code[Info.PC];
    if (I.Op == bc::Opcode::InvokeStatic) {
      StaticSite = S;
      RealCallee = static_cast<bc::MethodId>(I.A);
      break;
    }
  }
  ASSERT_NE(StaticSite, bc::InvalidSiteId);
  DynamicCallGraph Wrong;
  bc::MethodId Other = RealCallee == 0 ? 1 : 0;
  Wrong.addSample({StaticSite, Other});
  EXPECT_NE(validateAgainst(Wrong.snapshot(), P), "");
}

TEST(ProfileIO, CollectedProfileSurvivesRoundTripAndValidates) {
  bc::Program P = fuzz::generateRandomProgram(8);
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.SamplesPerTick = 64;
  Config.TimerPeriodCycles = 2'000;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  ProfileCodec::Decoded R = ProfileCodec::decode(ProfileCodec::encode(VM.profile()));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(validateAgainst(*R.Graph, P), "");
  EXPECT_NEAR(overlap(*R.Graph, VM.profile()), 100.0, 1e-9);
}
