//===- tests/OSRTest.cpp - on-stack replacement tests --------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of yieldpoint-based on-stack replacement, in both
// directions: a long-running frame transfers onto the newer installed
// version at its next taken backedge (promotion OSR), and a frame whose
// pinned version was invalidated transfers off the dead code instead of
// limping at baseline speed until it returns (deopt OSR). The battery
// also pins the contract around the feature: with EnableOSR off the VM
// is byte-identical to a build that predates the subsystem, transfers
// are byte-identical at any --compile-jobs count, the conservative-pin
// cap composes with OSR, and the code-cache graveyard is fully
// reclaimed once the last pinned frame has transferred out.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"
#include "experiments/Experiments.h"
#include "opt/InlineOracle.h"
#include "profiling/ProfileCodec.h"
#include "telemetry/MetricRegistry.h"
#include "vm/VirtualMachine.h"
#include "workloads/Patterns.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::bc;

namespace {

/// One hot method running ONE long counted loop with a virtual site.
/// The loop counter counts down from \p Total; the dispatched receiver
/// is class A until \p FlipAt iterations remain, then class B. With
/// FlipAt = 0 the site is monomorphic for the whole run (the promotion
/// shape); with FlipAt = Total/2 the dominant receiver dies mid-loop
/// while the frame is still inside it (the deopt-OSR shape — exactly
/// the long-lived frame OSR-less deoptimization cannot repair).
Program longLoopProgram(int64_t Total, int64_t FlipAt) {
  ProgramBuilder PB;
  wl::ClassFamily Family = wl::makeClassFamily(PB, "OsrHandler", 2);
  SelectorId Sel = PB.addSelector("handle", 2);
  wl::implementSelector(PB, Family, Sel, {6, 6}, {3, 3});

  // loop(count): locals 0 count, 1 pick, 2 acc, 3..4 receivers.
  MethodId Loop = PB.declareStatic("loop", {ValKind::Int},
                                   /*HasResult=*/true, ValKind::Int);
  {
    MethodBuilder MB = PB.defineMethod(Loop);
    MB.iconst(0).istore(2);
    wl::emitReceiverInit(MB, Family.Subclasses, /*FirstSlot=*/3);
    Label Head = MB.newLabel(), Exit = MB.newLabel();
    Label Second = MB.newLabel(), Picked = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    MB.work(30);
    // pick = (count - FlipAt > 0) ? 0 : 15 — A first, B for the tail.
    MB.iload(0).iconst(static_cast<int32_t>(FlipAt)).isub().ifLe(Second);
    MB.iconst(0).istore(1).jump(Picked);
    MB.bind(Second).iconst(15).istore(1);
    MB.bind(Picked);
    wl::emitPickReceiver(MB, 1, {{3, 8}, {4, 16}}, 16);
    MB.iload(0).invokeVirtual(Sel).iload(2).iadd().istore(2);
    MB.iinc(0, -1).jump(Head);
    MB.bind(Exit).iload(2).iret();
    MB.finish();
  }

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(Total).invokeStatic(Loop).print();
    MB.finish();
  }
  return PB.finish(Main);
}

/// Counter value from the VM's metric registry, 0 when unregistered.
uint64_t counter(vm::VirtualMachine &VM, const char *Name) {
  const tel::Counter *C = VM.metrics().findCounter(Name);
  return C ? static_cast<uint64_t>(*C) : 0;
}

uint64_t gauge(vm::VirtualMachine &VM, const char *Name) {
  const tel::Gauge *G = VM.metrics().findGauge(Name);
  return G ? static_cast<uint64_t>(*G) : 0;
}

struct OsrRun {
  std::vector<int64_t> Output;
  uint64_t Cycles = 0;
  uint64_t Entries = 0;
  uint64_t Exits = 0;
  uint64_t FramesDeopted = 0;
  uint64_t GraveyardInstructions = 0;
  uint64_t ReclaimedInstructions = 0;
  uint64_t Reclaims = 0;
  uint64_t RetiredVersions = 0; ///< recompiles + invalidations
  std::string Profile;
  aos::DeoptStats Deopt;
};

/// Runs \p P under the adaptive system (DeoptTest's configuration) with
/// OSR on or off.
OsrRun runWithOsr(const Program &P, bool EnableOSR,
                  aos::DeoptConfig Deopt = {}, uint32_t CompileJobs = 0,
                  double LatencyScale = 1.0) {
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  Config.Profiler.DecayEveryTicks = 4;
  Config.Profiler.DecayFactor = 0.5;
  Config.TimerPeriodCycles = 20'000;
  Config.Costs.CompileLatencyScale = LatencyScale;
  Config.EnableOSR = EnableOSR;

  aos::AOSConfig AC;
  AC.Deopt = Deopt;
  AC.CompileJobs = CompileJobs;
  AC.Level1Samples = 2;
  AC.Level2Samples = 3;
  opt::NewJikesOracle Oracle;
  aos::AdaptiveSystem AOS(&Oracle, AC);
  vm::VirtualMachine VM(P, Config);
  VM.setClient(&AOS);
  EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();

  OsrRun R;
  R.Output = VM.output();
  R.Cycles = VM.stats().Cycles;
  R.Entries = counter(VM, "vm.osr_entries");
  R.Exits = counter(VM, "vm.osr_exits");
  R.FramesDeopted = counter(VM, "vm.frames_deopted");
  R.GraveyardInstructions = gauge(VM, "code.graveyard_instructions");
  R.ReclaimedInstructions =
      gauge(VM, "code.graveyard_reclaimed_instructions");
  R.Reclaims = gauge(VM, "code.graveyard_reclaims");
  R.RetiredVersions =
      gauge(VM, "code.recompiles") + gauge(VM, "code.invalidations");
  R.Profile = prof::ProfileCodec::encode(VM.profile());
  if (AOS.deoptController())
    R.Deopt = AOS.deoptController()->stats();
  return R;
}

/// The reference semantics: no adaptive system at all.
std::vector<int64_t> baselineOutput(const Program &P) {
  vm::VMConfig Config;
  Config.MaxCycles = 4'000'000'000ull;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();
  return VM.output();
}

} // namespace

TEST(Osr, PromotionTransfersLongRunningFrame) {
  // One frame spans the whole run; every install for `loop` lands while
  // that frame is mid-loop, so without OSR the new versions would never
  // execute at all.
  Program P = longLoopProgram(200'000, /*FlipAt=*/0);
  OsrRun R = runWithOsr(P, /*EnableOSR=*/true);

  EXPECT_GE(R.Entries, 1u)
      << "the promoted version must be entered at a backedge yieldpoint";
  EXPECT_EQ(R.Exits, 0u) << "nothing was invalidated in this run";
  EXPECT_EQ(R.Output, baselineOutput(P))
      << "transferring a live frame must not change what it computes";

  // The same run without OSR is strictly slower: the single frame stays
  // on the baseline-compiled version to the end.
  OsrRun Stale = runWithOsr(P, /*EnableOSR=*/false);
  EXPECT_EQ(Stale.Entries, 0u);
  EXPECT_EQ(R.Output, Stale.Output);
  EXPECT_LT(R.Cycles, Stale.Cycles)
      << "promotion OSR must let the long-running frame use the "
         "optimized code it paid to compile";
}

TEST(Osr, DeoptExitTransfersOffInvalidatedCode) {
  // The forced storm invalidates every install at the next taken
  // yieldpoint; frames reconcile to Deopted, and with OSR on each one
  // must transfer off the dead version at its next loop header.
  Program P = longLoopProgram(100'000, /*FlipAt=*/0);
  aos::DeoptConfig Deopt;
  Deopt.Enabled = true;
  Deopt.ForceStormForTesting = true;
  OsrRun R = runWithOsr(P, /*EnableOSR=*/true, Deopt);

  EXPECT_GE(R.FramesDeopted, 1u) << "the storm never caught a live frame";
  EXPECT_GE(R.Exits, 1u)
      << "a deopted frame inside a loop must OSR-exit at the next header";
  EXPECT_EQ(R.Output, baselineOutput(P));
}

TEST(Osr, LongLivedFrameRecoversFromMidLoopDeopt) {
  // The receiver flips while the one long-lived frame is mid-loop: the
  // guard dies, the version is invalidated, and the frame still has
  // half the loop ahead of it. Without OSR that deopt is a pure loss
  // (the frame limps at baseline speed to the end and the repair is
  // never entered); with OSR the frame transfers to the repair.
  Program P = longLoopProgram(200'000, /*FlipAt=*/100'000);
  aos::DeoptConfig Deopt;
  Deopt.Enabled = true;
  Deopt.DominanceThresholdPct = 40.0;
  Deopt.MinSiteWeight = 4;

  OsrRun NoOsr = runWithOsr(P, /*EnableOSR=*/false, Deopt);
  OsrRun Osr = runWithOsr(P, /*EnableOSR=*/true, Deopt);

  ASSERT_GE(Osr.Deopt.Deopts, 1u)
      << "the mid-loop dominance flip must deoptimize the loop method";
  EXPECT_GE(Osr.Exits, 1u);
  EXPECT_EQ(Osr.Output, baselineOutput(P));
  EXPECT_EQ(Osr.Output, NoOsr.Output);
  EXPECT_LE(Osr.Cycles, NoOsr.Cycles)
      << "transferring off invalidated code must never cost more than "
         "limping on it at baseline speed";
}

TEST(Osr, ConservativePinInteractionUnderStorm) {
  // MaxDeoptsPerMethod = 1: the first storm invalidation pins methods
  // to the conservative plan. OSR must compose — deopted frames
  // transfer onto the conservative repair, and repeated transfers stay
  // semantics-preserving.
  Program P = longLoopProgram(100'000, /*FlipAt=*/0);
  aos::DeoptConfig Deopt;
  Deopt.Enabled = true;
  Deopt.ForceStormForTesting = true;
  Deopt.MaxDeoptsPerMethod = 1;
  OsrRun R = runWithOsr(P, /*EnableOSR=*/true, Deopt);

  EXPECT_GE(R.Deopt.ConservativePins, 1u)
      << "one deopt must pin under MaxDeoptsPerMethod=1";
  EXPECT_GE(R.Exits, 1u);
  EXPECT_EQ(R.Output, baselineOutput(P));
}

TEST(Osr, OffByDefaultAndFullyInert) {
  // EnableOSR defaults to off, and an OSR-off run — even one with
  // plenty of invalidations — must never transfer a frame or touch the
  // graveyard: byte-compat with builds that predate the subsystem.
  EXPECT_FALSE(vm::VMConfig().EnableOSR);

  Program P = longLoopProgram(100'000, /*FlipAt=*/0);
  aos::DeoptConfig Deopt;
  Deopt.Enabled = true;
  Deopt.ForceStormForTesting = true;
  OsrRun R = runWithOsr(P, /*EnableOSR=*/false, Deopt);

  EXPECT_EQ(R.Entries, 0u);
  EXPECT_EQ(R.Exits, 0u);
  EXPECT_EQ(R.Reclaims, 0u);
  EXPECT_EQ(R.ReclaimedInstructions, 0u)
      << "pin tracking off must keep the graveyard untouched";
  EXPECT_EQ(R.Output, baselineOutput(P));
}

TEST(Osr, ByteIdenticalAcrossCompileJobs) {
  // Transfers happen on the VM thread at taken backedge yieldpoints in
  // virtual time; worker threads only pre-compute pure compile results.
  Program P = longLoopProgram(200'000, /*FlipAt=*/100'000);
  aos::DeoptConfig Deopt;
  Deopt.Enabled = true;
  Deopt.DominanceThresholdPct = 40.0;
  Deopt.MinSiteWeight = 4;

  OsrRun Jobs0 = runWithOsr(P, /*EnableOSR=*/true, Deopt, /*Jobs=*/0);
  OsrRun Jobs4 = runWithOsr(P, /*EnableOSR=*/true, Deopt, /*Jobs=*/4);

  EXPECT_GE(Jobs0.Entries + Jobs0.Exits, 1u)
      << "the comparison must actually exercise a transfer";
  EXPECT_EQ(Jobs0.Output, Jobs4.Output);
  EXPECT_EQ(Jobs0.Cycles, Jobs4.Cycles);
  EXPECT_EQ(Jobs0.Entries, Jobs4.Entries);
  EXPECT_EQ(Jobs0.Exits, Jobs4.Exits);
  EXPECT_EQ(Jobs0.Reclaims, Jobs4.Reclaims);
  EXPECT_EQ(Jobs0.Profile, Jobs4.Profile)
      << "profiles must serialize byte-identically at any job count";
}

TEST(Osr, GraveyardFullyReclaimedAtEndOfRun) {
  // Every retired version is eventually unpinned — frames either return
  // or transfer out — so by end of run the graveyard must be empty and
  // the reclaim count must equal every version ever retired. This is
  // the accounting the pre-OSR CodeCache documented as impossible
  // ("frames may still be executing graveyard code").
  Program P = longLoopProgram(200'000, /*FlipAt=*/100'000);
  aos::DeoptConfig Deopt;
  Deopt.Enabled = true;
  Deopt.DominanceThresholdPct = 40.0;
  Deopt.MinSiteWeight = 4;
  OsrRun R = runWithOsr(P, /*EnableOSR=*/true, Deopt);

  EXPECT_GE(R.Deopt.Deopts, 1u);
  EXPECT_EQ(R.GraveyardInstructions, 0u)
      << "a retired version survived the last unpin";
  EXPECT_GT(R.ReclaimedInstructions, 0u);
  EXPECT_EQ(R.Reclaims, R.RetiredVersions)
      << "every retired version (recompile or invalidation) must be "
         "reclaimed exactly once";
}
