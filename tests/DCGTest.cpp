//===- tests/DCGTest.cpp - DCG and overlap metric tests ------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/DynamicCallGraph.h"
#include "profiling/OverlapMetric.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::prof;

namespace {

CallEdge edge(uint32_t Site, uint32_t Callee) { return {Site, Callee}; }

DynamicCallGraph randomDCG(RandomEngine &RNG, size_t NumEdges,
                           uint64_t MaxWeight) {
  DynamicCallGraph DCG;
  for (size_t I = 0; I != NumEdges; ++I)
    DCG.addSample(edge(static_cast<uint32_t>(RNG.nextBelow(64)),
                       static_cast<uint32_t>(RNG.nextBelow(32))),
                  RNG.nextBelow(MaxWeight) + 1);
  return DCG;
}

} // namespace

//===----------------------------------------------------------------------===//
// DynamicCallGraph (write side) read through snapshots
//===----------------------------------------------------------------------===//

TEST(DCG, AccumulatesWeights) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(1, 2));
  DCG.addSample(edge(1, 2), 4);
  DCG.addSample(edge(1, 3), 5);
  DCGSnapshot S = DCG.snapshot();
  EXPECT_EQ(S.weight(edge(1, 2)), 5u);
  EXPECT_EQ(S.weight(edge(1, 3)), 5u);
  EXPECT_EQ(S.weight(edge(9, 9)), 0u);
  EXPECT_EQ(S.totalWeight(), 10u);
  EXPECT_EQ(S.numEdges(), 2u);
  EXPECT_EQ(DCG.totalWeight(), 10u);
  EXPECT_EQ(DCG.numEdges(), 2u);
}

TEST(DCG, FractionNormalizes) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(0, 1), 3);
  DCG.addSample(edge(0, 2), 1);
  DCGSnapshot S = DCG.snapshot();
  EXPECT_DOUBLE_EQ(S.fraction(edge(0, 1)), 0.75);
  EXPECT_DOUBLE_EQ(S.fraction(edge(0, 2)), 0.25);
  EXPECT_DOUBLE_EQ(S.fraction(edge(5, 5)), 0.0);
}

TEST(DCG, EmptyFractionIsZero) {
  DynamicCallGraph DCG;
  EXPECT_DOUBLE_EQ(DCG.snapshot().fraction(edge(0, 1)), 0.0);
  EXPECT_TRUE(DCG.empty());
  EXPECT_TRUE(DCG.snapshot().empty());
}

TEST(DCG, SiteDistributionSortedHeaviestFirst) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(7, 1), 10);
  DCG.addSample(edge(7, 2), 30);
  DCG.addSample(edge(7, 3), 20);
  DCG.addSample(edge(8, 1), 99); // Different site: excluded.
  auto Dist = DCG.snapshot().siteDistribution(7);
  ASSERT_EQ(Dist.size(), 3u);
  EXPECT_EQ(Dist[0].first.Callee, 2u);
  EXPECT_EQ(Dist[1].first.Callee, 3u);
  EXPECT_EQ(Dist[2].first.Callee, 1u);
}

TEST(DCG, MergeAddsWeights) {
  DynamicCallGraph A, B;
  A.addSample(edge(1, 1), 2);
  B.addSample(edge(1, 1), 3);
  B.addSample(edge(2, 2), 4);
  A.merge(B);
  DCGSnapshot S = A.snapshot();
  EXPECT_EQ(S.weight(edge(1, 1)), 5u);
  EXPECT_EQ(S.weight(edge(2, 2)), 4u);
  EXPECT_EQ(S.totalWeight(), 9u);
}

TEST(DCG, SelfMergeDoublesEveryWeight) {
  // Regression: merging a graph into itself used to iterate the edge
  // map while inserting into it — a rehash mid-merge corrupted the
  // weights. Self-merge is now doubling in place.
  DynamicCallGraph DCG;
  for (uint32_t I = 0; I != 100; ++I)
    DCG.addSample(edge(I, I % 7), I + 1);
  size_t EdgesBefore = DCG.numEdges();
  uint64_t TotalBefore = DCG.totalWeight();
  DCG.merge(DCG);
  EXPECT_EQ(DCG.numEdges(), EdgesBefore);
  EXPECT_EQ(DCG.totalWeight(), TotalBefore * 2);
  DCGSnapshot S = DCG.snapshot();
  for (uint32_t I = 0; I != 100; ++I)
    EXPECT_EQ(S.weight(edge(I, I % 7)), uint64_t(I + 1) * 2);
}

TEST(DCG, SelfMergeMatchesMergingACopy) {
  RandomEngine RNG(3);
  DynamicCallGraph A = randomDCG(RNG, 200, 1000);
  DynamicCallGraph B = A;    // independent copy
  DynamicCallGraph Copy = A; // merge source snapshot
  A.merge(A);
  B.merge(Copy);
  EXPECT_EQ(A.totalWeight(), B.totalWeight());
  EXPECT_EQ(A.numEdges(), B.numEdges());
  EXPECT_EQ(A.snapshot().sortedEdges(), B.snapshot().sortedEdges());
}

TEST(DCG, DecayHalvesAndDropsZeroEdges) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(0, 0), 100);
  DCG.addSample(edge(1, 1), 1); // rounds to zero at factor 0.5
  DCG.decay(0.5);
  DCGSnapshot S = DCG.snapshot();
  EXPECT_EQ(S.weight(edge(0, 0)), 50u);
  EXPECT_EQ(S.weight(edge(1, 1)), 0u);
  EXPECT_EQ(S.numEdges(), 1u);
  EXPECT_EQ(S.totalWeight(), 50u);
}

TEST(DCG, ZeroCountSampleLeavesNoResidentEdge) {
  // Regression: addSample with Count == 0 used to create a resident
  // weight-0 map entry that survived until the next decay truncation,
  // bloating every snapshot, serialized profile, and overlap
  // computation in between.
  DynamicCallGraph DCG;
  DCG.addSample(edge(0, 0), 0);
  EXPECT_EQ(DCG.numEdges(), 0u);
  EXPECT_TRUE(DCG.snapshot().empty());

  DCG.addSample(edge(0, 0), 5);
  DCG.addSample(edge(1, 1), 0);
  EXPECT_EQ(DCG.numEdges(), 1u);
  EXPECT_EQ(DCG.totalWeight(), 5u);
  EXPECT_EQ(DCG.snapshot().numEdges(), 1u);
}

TEST(DCG, DecayToZeroShrinksSnapshotEdgeCount) {
  // Long-run hygiene: edges whose weight truncates to zero must leave
  // the shards entirely, so the snapshot edge count shrinks with every
  // decay instead of accumulating dead entries.
  DynamicCallGraph DCG;
  for (uint32_t I = 0; I != 16; ++I)
    DCG.addSample(edge(I, I), 1);
  DCG.addSample(edge(100, 100), 1'000'000);
  EXPECT_EQ(DCG.snapshot().numEdges(), 17u);

  DCG.decay(0.5); // every weight-1 edge truncates to 0
  DCGSnapshot S = DCG.snapshot();
  EXPECT_EQ(S.numEdges(), 1u) << "dead edges must not stay resident";
  EXPECT_EQ(DCG.numEdges(), 1u);
  EXPECT_EQ(S.weight(edge(100, 100)), 500'000u);

  // Decay all the way to an empty repository.
  for (int I = 0; I != 40 && DCG.numEdges() != 0; ++I)
    DCG.decay(0.5);
  EXPECT_EQ(DCG.numEdges(), 0u);
  EXPECT_TRUE(DCG.snapshot().empty());
}

TEST(DCG, DecayImmediatelyFollowedBySnapshotIsFresh) {
  // Regression guard for the snapshot epoch cache: a snapshot taken in
  // the same instant as a decay (the AOS organizer does exactly this —
  // decay on the tick, then publish) must see the decayed weights, not
  // a cached pre-decay snapshot.
  DynamicCallGraph DCG;
  DCG.addSample(edge(0, 0), 64);
  DCG.addSample(edge(2, 3), 7);
  DCGSnapshot Before = DCG.snapshot(); // primes the epoch cache
  uint64_t EpochBefore = DCG.epoch();
  DCG.decay(0.5);
  EXPECT_GT(DCG.epoch(), EpochBefore) << "decay must bump the epoch";

  DCGSnapshot After = DCG.snapshot();
  EXPECT_EQ(After.weight(edge(0, 0)), 32u);
  EXPECT_EQ(After.weight(edge(2, 3)), 3u);
  EXPECT_EQ(Before.weight(edge(0, 0)), 64u)
      << "the earlier snapshot stays frozen";

  // Back-to-back decay + snapshot cycles keep agreeing (no stale
  // cache reuse across repeated same-tick sequences).
  DCG.decay(0.5);
  EXPECT_EQ(DCG.snapshot().weight(edge(0, 0)), 16u);
  DCG.decay(0.5);
  EXPECT_EQ(DCG.snapshot().weight(edge(0, 0)), 8u);
  EXPECT_EQ(DCG.snapshot().weight(edge(2, 3)), 0u)
      << "7 -> 3 -> 1 -> 0: the edge decays away entirely";
}

TEST(DCGDeathTest, DecayRejectsFactorAtOrAboveOne) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(0, 0), 10);
  EXPECT_DEATH(DCG.decay(1.0), "factor must be in \\(0, 1\\)");
  EXPECT_DEATH(DCG.decay(2.5), "factor must be in \\(0, 1\\)");
}

TEST(DCGDeathTest, DecayRejectsFactorAtOrBelowZero) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(0, 0), 10);
  EXPECT_DEATH(DCG.decay(0.0), "factor must be in \\(0, 1\\)");
  EXPECT_DEATH(DCG.decay(-0.5), "factor must be in \\(0, 1\\)");
}

TEST(DCG, ClearResets) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(1, 1), 5);
  DCG.clear();
  EXPECT_TRUE(DCG.empty());
  EXPECT_EQ(DCG.totalWeight(), 0u);
  EXPECT_TRUE(DCG.snapshot().empty());
}

//===----------------------------------------------------------------------===//
// Sharding
//===----------------------------------------------------------------------===//

TEST(DCG, ShardCountClampsToPowerOfTwo) {
  EXPECT_EQ(DynamicCallGraph(0).numShards(), 1u);
  EXPECT_EQ(DynamicCallGraph(1).numShards(), 1u);
  EXPECT_EQ(DynamicCallGraph(2).numShards(), 2u);
  EXPECT_EQ(DynamicCallGraph(3).numShards(), 4u);
  EXPECT_EQ(DynamicCallGraph(8).numShards(), 8u);
  EXPECT_EQ(DynamicCallGraph(33).numShards(), 64u);
  EXPECT_EQ(DynamicCallGraph(100000).numShards(),
            DynamicCallGraph::MaxShards);
}

TEST(DCG, ShardedSnapshotMatchesSerial) {
  // The shard count is a concurrency knob, never a semantics knob: the
  // same samples produce bitwise-identical snapshots at any count.
  RandomEngine RNG(23);
  std::vector<std::pair<CallEdge, uint64_t>> Samples;
  for (int I = 0; I != 500; ++I)
    Samples.push_back({edge(static_cast<uint32_t>(RNG.nextBelow(128)),
                            static_cast<uint32_t>(RNG.nextBelow(32))),
                       RNG.nextBelow(50) + 1});
  DynamicCallGraph Serial(1), Sharded(8);
  for (const auto &[E, W] : Samples) {
    Serial.addSample(E, W);
    Sharded.addSample(E, W);
  }
  EXPECT_EQ(Serial.snapshot().sortedEdges(), Sharded.snapshot().sortedEdges());
  EXPECT_EQ(Serial.totalWeight(), Sharded.totalWeight());
  EXPECT_EQ(Serial.numEdges(), Sharded.numEdges());
}

TEST(DCG, AddBatchMatchesPerSampleAdds) {
  std::vector<CallEdge> Batch;
  for (uint32_t I = 0; I != 300; ++I)
    Batch.push_back(edge(I % 17, I % 5));
  for (unsigned Shards : {1u, 8u}) {
    DynamicCallGraph ByBatch(Shards), BySample(Shards);
    ByBatch.addBatch(Batch.data(), Batch.size());
    for (CallEdge E : Batch)
      BySample.addSample(E);
    EXPECT_EQ(ByBatch.snapshot().sortedEdges(),
              BySample.snapshot().sortedEdges());
  }
}

TEST(DCG, CopyAndMergeAcrossShardCounts) {
  DynamicCallGraph A(8);
  for (uint32_t I = 0; I != 64; ++I)
    A.addSample(edge(I, I % 3), I + 1);
  DynamicCallGraph B = A; // copy keeps shard count and weights
  EXPECT_EQ(B.numShards(), 8u);
  EXPECT_EQ(A.snapshot().sortedEdges(), B.snapshot().sortedEdges());

  DynamicCallGraph C(2);
  C.addSample(edge(0, 0), 5);
  C.merge(A); // merging across different shard counts
  EXPECT_EQ(C.totalWeight(), A.totalWeight() + 5);
}

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

TEST(DCGSnapshotTest, ImmutableUnderLaterMutation) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(1, 1), 10);
  DCGSnapshot Before = DCG.snapshot();
  DCG.addSample(edge(1, 1), 90);
  DCG.addSample(edge(2, 2), 7);
  EXPECT_EQ(Before.weight(edge(1, 1)), 10u);
  EXPECT_EQ(Before.numEdges(), 1u);
  EXPECT_EQ(Before.totalWeight(), 10u);
  DCGSnapshot After = DCG.snapshot();
  EXPECT_EQ(After.weight(edge(1, 1)), 100u);
  EXPECT_EQ(After.numEdges(), 2u);
}

TEST(DCGSnapshotTest, EpochCacheReusesUnchangedSnapshot) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(1, 1), 3);
  DCGSnapshot A = DCG.snapshot();
  DCGSnapshot B = DCG.snapshot();
  // No mutation in between: both snapshots share one materialization.
  EXPECT_EQ(&A.sortedEdges(), &B.sortedEdges());
  EXPECT_EQ(A.epoch(), B.epoch());
  DCG.addSample(edge(1, 1));
  DCGSnapshot C = DCG.snapshot();
  EXPECT_NE(&A.sortedEdges(), &C.sortedEdges());
  EXPECT_GT(C.epoch(), A.epoch());
}

TEST(DCGSnapshotTest, SortedEdgesCanonicalOrder) {
  RandomEngine RNG(5);
  DCGSnapshot S = randomDCG(RNG, 100, 50).snapshot();
  const auto &A = S.sortedEdges();
  for (size_t I = 1; I < A.size(); ++I)
    EXPECT_TRUE(A[I - 1].first < A[I].first);
}

TEST(DCGSnapshotTest, FromEdgesCoalescesDuplicates) {
  std::vector<DCGSnapshot::Edge> Edges = {
      {edge(3, 1), 5}, {edge(1, 1), 2}, {edge(3, 1), 7}, {edge(1, 1), 1}};
  DCGSnapshot S = DCGSnapshot::fromEdges(std::move(Edges));
  EXPECT_EQ(S.numEdges(), 2u);
  EXPECT_EQ(S.weight(edge(1, 1)), 3u);
  EXPECT_EQ(S.weight(edge(3, 1)), 12u);
  EXPECT_EQ(S.totalWeight(), 15u);
}

TEST(DCGSnapshotTest, DefaultConstructedIsEmpty) {
  DCGSnapshot S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.numEdges(), 0u);
  EXPECT_EQ(S.totalWeight(), 0u);
  EXPECT_TRUE(S.siteDistribution(0).empty());
  EXPECT_DOUBLE_EQ(S.fraction(edge(0, 0)), 0.0);
}

//===----------------------------------------------------------------------===//
// Overlap metric (§6.2)
//===----------------------------------------------------------------------===//

TEST(Overlap, IdenticalProfilesScore100) {
  RandomEngine RNG(7);
  DCGSnapshot S = randomDCG(RNG, 50, 100).snapshot();
  EXPECT_NEAR(overlap(S, S), 100.0, 1e-9);
}

TEST(Overlap, ScaledProfilesScore100) {
  // The metric compares percentages: doubling all weights changes
  // nothing.
  DynamicCallGraph A, B;
  A.addSample(edge(1, 1), 3);
  A.addSample(edge(2, 2), 7);
  B.addSample(edge(1, 1), 6);
  B.addSample(edge(2, 2), 14);
  EXPECT_NEAR(overlap(A.snapshot(), B.snapshot()), 100.0, 1e-9);
}

TEST(Overlap, DisjointProfilesScore0) {
  DynamicCallGraph A, B;
  A.addSample(edge(1, 1), 5);
  B.addSample(edge(2, 2), 5);
  EXPECT_DOUBLE_EQ(overlap(A.snapshot(), B.snapshot()), 0.0);
}

TEST(Overlap, EmptyRules) {
  DynamicCallGraph NonEmpty;
  NonEmpty.addSample(edge(1, 1));
  DCGSnapshot Empty, Full = NonEmpty.snapshot();
  EXPECT_DOUBLE_EQ(overlap(Empty, Empty), 100.0);
  EXPECT_DOUBLE_EQ(overlap(Empty, Full), 0.0);
  EXPECT_DOUBLE_EQ(overlap(Full, Empty), 0.0);
}

TEST(Overlap, IsSymmetric) {
  RandomEngine RNG(11);
  for (int Trial = 0; Trial != 20; ++Trial) {
    DCGSnapshot A = randomDCG(RNG, 30, 40).snapshot();
    DCGSnapshot B = randomDCG(RNG, 30, 40).snapshot();
    EXPECT_NEAR(overlap(A, B), overlap(B, A), 1e-9);
  }
}

TEST(Overlap, BoundedZeroToHundred) {
  RandomEngine RNG(13);
  for (int Trial = 0; Trial != 50; ++Trial) {
    DCGSnapshot A = randomDCG(RNG, 20, 30).snapshot();
    DCGSnapshot B = randomDCG(RNG, 20, 30).snapshot();
    double V = overlap(A, B);
    EXPECT_GE(V, 0.0);
    EXPECT_LE(V, 100.0 + 1e-9);
  }
}

TEST(Overlap, HalfWeightMatch) {
  // B has one of A's two equal edges: overlap is 50 + min portion.
  DynamicCallGraph A, B;
  A.addSample(edge(1, 1), 50);
  A.addSample(edge(2, 2), 50);
  B.addSample(edge(1, 1), 100);
  EXPECT_NEAR(overlap(A.snapshot(), B.snapshot()), 50.0, 1e-9);
}

TEST(Overlap, SkewMismatchScoresPartial) {
  DynamicCallGraph A, B;
  A.addSample(edge(1, 1), 80);
  A.addSample(edge(2, 2), 20);
  B.addSample(edge(1, 1), 20);
  B.addSample(edge(2, 2), 80);
  // min(80,20) + min(20,80) = 40.
  EXPECT_NEAR(overlap(A.snapshot(), B.snapshot()), 40.0, 1e-9);
}

TEST(Overlap, PerfectSubsampleConvergence) {
  // Sampling a profile uniformly at random converges to 100 as the
  // sample count grows (the property the accuracy experiments rely on).
  RandomEngine RNG(17);
  DynamicCallGraph Perfect;
  std::vector<CallEdge> Population;
  for (uint32_t I = 0; I != 10; ++I) {
    uint64_t W = (I + 1) * 10;
    Perfect.addSample(edge(I, I), W);
    for (uint64_t K = 0; K != W; ++K)
      Population.push_back(edge(I, I));
  }
  double Prev = 0;
  for (size_t N : {10u, 100u, 5000u}) {
    DynamicCallGraph Sampled;
    for (size_t K = 0; K != N; ++K)
      Sampled.addSample(Population[RNG.nextBelow(Population.size())]);
    double Acc = accuracy(Sampled.snapshot(), Perfect.snapshot());
    EXPECT_GE(Acc, Prev - 5.0) << "accuracy should improve with samples";
    Prev = Acc;
  }
  EXPECT_GT(Prev, 95.0);
}

TEST(Overlap, MissingTailCapsAccuracy) {
  // A sampler that only ever sees the head of the distribution cannot
  // exceed the head's weight share — the Figure 1 failure mode.
  DynamicCallGraph Perfect, HeadOnly;
  Perfect.addSample(edge(0, 0), 60);
  Perfect.addSample(edge(1, 1), 40);
  HeadOnly.addSample(edge(0, 0), 1000);
  EXPECT_NEAR(accuracy(HeadOnly.snapshot(), Perfect.snapshot()), 60.0, 1e-9);
}
