//===- tests/DCGTest.cpp - DCG and overlap metric tests ------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/DynamicCallGraph.h"
#include "profiling/OverlapMetric.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::prof;

namespace {

CallEdge edge(uint32_t Site, uint32_t Callee) { return {Site, Callee}; }

DynamicCallGraph randomDCG(RandomEngine &RNG, size_t NumEdges,
                           uint64_t MaxWeight) {
  DynamicCallGraph DCG;
  for (size_t I = 0; I != NumEdges; ++I)
    DCG.addSample(edge(static_cast<uint32_t>(RNG.nextBelow(64)),
                       static_cast<uint32_t>(RNG.nextBelow(32))),
                  RNG.nextBelow(MaxWeight) + 1);
  return DCG;
}

} // namespace

//===----------------------------------------------------------------------===//
// DynamicCallGraph
//===----------------------------------------------------------------------===//

TEST(DCG, AccumulatesWeights) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(1, 2));
  DCG.addSample(edge(1, 2), 4);
  DCG.addSample(edge(1, 3), 5);
  EXPECT_EQ(DCG.weight(edge(1, 2)), 5u);
  EXPECT_EQ(DCG.weight(edge(1, 3)), 5u);
  EXPECT_EQ(DCG.weight(edge(9, 9)), 0u);
  EXPECT_EQ(DCG.totalWeight(), 10u);
  EXPECT_EQ(DCG.numEdges(), 2u);
}

TEST(DCG, FractionNormalizes) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(0, 1), 3);
  DCG.addSample(edge(0, 2), 1);
  EXPECT_DOUBLE_EQ(DCG.fraction(edge(0, 1)), 0.75);
  EXPECT_DOUBLE_EQ(DCG.fraction(edge(0, 2)), 0.25);
  EXPECT_DOUBLE_EQ(DCG.fraction(edge(5, 5)), 0.0);
}

TEST(DCG, EmptyFractionIsZero) {
  DynamicCallGraph DCG;
  EXPECT_DOUBLE_EQ(DCG.fraction(edge(0, 1)), 0.0);
  EXPECT_TRUE(DCG.empty());
}

TEST(DCG, SiteDistributionSortedHeaviestFirst) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(7, 1), 10);
  DCG.addSample(edge(7, 2), 30);
  DCG.addSample(edge(7, 3), 20);
  DCG.addSample(edge(8, 1), 99); // Different site: excluded.
  auto Dist = DCG.siteDistribution(7);
  ASSERT_EQ(Dist.size(), 3u);
  EXPECT_EQ(Dist[0].first.Callee, 2u);
  EXPECT_EQ(Dist[1].first.Callee, 3u);
  EXPECT_EQ(Dist[2].first.Callee, 1u);
}

TEST(DCG, MergeAddsWeights) {
  DynamicCallGraph A, B;
  A.addSample(edge(1, 1), 2);
  B.addSample(edge(1, 1), 3);
  B.addSample(edge(2, 2), 4);
  A.merge(B);
  EXPECT_EQ(A.weight(edge(1, 1)), 5u);
  EXPECT_EQ(A.weight(edge(2, 2)), 4u);
  EXPECT_EQ(A.totalWeight(), 9u);
}

TEST(DCG, SelfMergeDoublesEveryWeight) {
  // Regression: merging a graph into itself used to iterate the edge
  // map while inserting into it — a rehash mid-merge corrupted the
  // weights. Self-merge is now doubling in place.
  DynamicCallGraph DCG;
  for (uint32_t I = 0; I != 100; ++I)
    DCG.addSample(edge(I, I % 7), I + 1);
  size_t EdgesBefore = DCG.numEdges();
  uint64_t TotalBefore = DCG.totalWeight();
  DCG.merge(DCG);
  EXPECT_EQ(DCG.numEdges(), EdgesBefore);
  EXPECT_EQ(DCG.totalWeight(), TotalBefore * 2);
  for (uint32_t I = 0; I != 100; ++I)
    EXPECT_EQ(DCG.weight(edge(I, I % 7)), uint64_t(I + 1) * 2);
}

TEST(DCG, SelfMergeMatchesMergingACopy) {
  RandomEngine RNG(3);
  DynamicCallGraph A = randomDCG(RNG, 200, 1000);
  DynamicCallGraph B = A;    // independent copy
  DynamicCallGraph Copy = A; // merge source snapshot
  A.merge(A);
  B.merge(Copy);
  EXPECT_EQ(A.totalWeight(), B.totalWeight());
  EXPECT_EQ(A.numEdges(), B.numEdges());
  A.forEachEdge(
      [&](CallEdge E, uint64_t W) { EXPECT_EQ(B.weight(E), W); });
}

TEST(DCG, DecayHalvesAndDropsZeroEdges) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(0, 0), 100);
  DCG.addSample(edge(1, 1), 1); // rounds to zero at factor 0.5
  DCG.decay(0.5);
  EXPECT_EQ(DCG.weight(edge(0, 0)), 50u);
  EXPECT_EQ(DCG.weight(edge(1, 1)), 0u);
  EXPECT_EQ(DCG.numEdges(), 1u);
  EXPECT_EQ(DCG.totalWeight(), 50u);
}

TEST(DCGDeathTest, DecayRejectsFactorAtOrAboveOne) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(0, 0), 10);
  EXPECT_DEATH(DCG.decay(1.0), "factor must be in \\(0, 1\\)");
  EXPECT_DEATH(DCG.decay(2.5), "factor must be in \\(0, 1\\)");
}

TEST(DCGDeathTest, DecayRejectsFactorAtOrBelowZero) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(0, 0), 10);
  EXPECT_DEATH(DCG.decay(0.0), "factor must be in \\(0, 1\\)");
  EXPECT_DEATH(DCG.decay(-0.5), "factor must be in \\(0, 1\\)");
}

TEST(DCG, ClearResets) {
  DynamicCallGraph DCG;
  DCG.addSample(edge(1, 1), 5);
  DCG.clear();
  EXPECT_TRUE(DCG.empty());
  EXPECT_EQ(DCG.totalWeight(), 0u);
}

TEST(DCG, SortedEdgesDeterministic) {
  RandomEngine RNG(5);
  DynamicCallGraph DCG = randomDCG(RNG, 100, 50);
  auto A = DCG.sortedEdges();
  auto B = DCG.sortedEdges();
  EXPECT_EQ(A, B);
  for (size_t I = 1; I < A.size(); ++I)
    EXPECT_TRUE(A[I - 1].first < A[I].first);
}

//===----------------------------------------------------------------------===//
// Overlap metric (§6.2)
//===----------------------------------------------------------------------===//

TEST(Overlap, IdenticalProfilesScore100) {
  RandomEngine RNG(7);
  DynamicCallGraph DCG = randomDCG(RNG, 50, 100);
  EXPECT_NEAR(overlap(DCG, DCG), 100.0, 1e-9);
}

TEST(Overlap, ScaledProfilesScore100) {
  // The metric compares percentages: doubling all weights changes
  // nothing.
  DynamicCallGraph A, B;
  A.addSample(edge(1, 1), 3);
  A.addSample(edge(2, 2), 7);
  B.addSample(edge(1, 1), 6);
  B.addSample(edge(2, 2), 14);
  EXPECT_NEAR(overlap(A, B), 100.0, 1e-9);
}

TEST(Overlap, DisjointProfilesScore0) {
  DynamicCallGraph A, B;
  A.addSample(edge(1, 1), 5);
  B.addSample(edge(2, 2), 5);
  EXPECT_DOUBLE_EQ(overlap(A, B), 0.0);
}

TEST(Overlap, EmptyRules) {
  DynamicCallGraph Empty, NonEmpty;
  NonEmpty.addSample(edge(1, 1));
  EXPECT_DOUBLE_EQ(overlap(Empty, Empty), 100.0);
  EXPECT_DOUBLE_EQ(overlap(Empty, NonEmpty), 0.0);
  EXPECT_DOUBLE_EQ(overlap(NonEmpty, Empty), 0.0);
}

TEST(Overlap, IsSymmetric) {
  RandomEngine RNG(11);
  for (int Trial = 0; Trial != 20; ++Trial) {
    DynamicCallGraph A = randomDCG(RNG, 30, 40);
    DynamicCallGraph B = randomDCG(RNG, 30, 40);
    EXPECT_NEAR(overlap(A, B), overlap(B, A), 1e-9);
  }
}

TEST(Overlap, BoundedZeroToHundred) {
  RandomEngine RNG(13);
  for (int Trial = 0; Trial != 50; ++Trial) {
    DynamicCallGraph A = randomDCG(RNG, 20, 30);
    DynamicCallGraph B = randomDCG(RNG, 20, 30);
    double V = overlap(A, B);
    EXPECT_GE(V, 0.0);
    EXPECT_LE(V, 100.0 + 1e-9);
  }
}

TEST(Overlap, HalfWeightMatch) {
  // B has one of A's two equal edges: overlap is 50 + min portion.
  DynamicCallGraph A, B;
  A.addSample(edge(1, 1), 50);
  A.addSample(edge(2, 2), 50);
  B.addSample(edge(1, 1), 100);
  EXPECT_NEAR(overlap(A, B), 50.0, 1e-9);
}

TEST(Overlap, SkewMismatchScoresPartial) {
  DynamicCallGraph A, B;
  A.addSample(edge(1, 1), 80);
  A.addSample(edge(2, 2), 20);
  B.addSample(edge(1, 1), 20);
  B.addSample(edge(2, 2), 80);
  // min(80,20) + min(20,80) = 40.
  EXPECT_NEAR(overlap(A, B), 40.0, 1e-9);
}

TEST(Overlap, PerfectSubsampleConvergence) {
  // Sampling a profile uniformly at random converges to 100 as the
  // sample count grows (the property the accuracy experiments rely on).
  RandomEngine RNG(17);
  DynamicCallGraph Perfect;
  std::vector<CallEdge> Population;
  for (uint32_t I = 0; I != 10; ++I) {
    uint64_t W = (I + 1) * 10;
    Perfect.addSample(edge(I, I), W);
    for (uint64_t K = 0; K != W; ++K)
      Population.push_back(edge(I, I));
  }
  double Prev = 0;
  for (size_t N : {10u, 100u, 5000u}) {
    DynamicCallGraph Sampled;
    for (size_t K = 0; K != N; ++K)
      Sampled.addSample(Population[RNG.nextBelow(Population.size())]);
    double Acc = accuracy(Sampled, Perfect);
    EXPECT_GE(Acc, Prev - 5.0) << "accuracy should improve with samples";
    Prev = Acc;
  }
  EXPECT_GT(Prev, 95.0);
}

TEST(Overlap, MissingTailCapsAccuracy) {
  // A sampler that only ever sees the head of the distribution cannot
  // exceed the head's weight share — the Figure 1 failure mode.
  DynamicCallGraph Perfect, HeadOnly;
  Perfect.addSample(edge(0, 0), 60);
  Perfect.addSample(edge(1, 1), 40);
  HeadOnly.addSample(edge(0, 0), 1000);
  EXPECT_NEAR(accuracy(HeadOnly, Perfect), 60.0, 1e-9);
}
