//===- tests/RandomProgramGen.h - random program fuzzer ----------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generator of random, verifier-clean programs used for differential
/// testing: the optimizer and inliner must preserve the Print output of
/// any generated program. Generated programs have:
///   - a DAG of static methods (method i calls only j < i, so they
///     terminate),
///   - a small class family with a virtual selector (so guarded
///     inlining has something to do),
///   - bounded counted loops, branch diamonds, field traffic, and
///     guarded division.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_TESTS_RANDOMPROGRAMGEN_H
#define CBSVM_TESTS_RANDOMPROGRAMGEN_H

#include "bytecode/Builder.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace cbs::fuzz {

inline bc::Program generateRandomProgram(uint64_t Seed) {
  using namespace bc;
  RandomEngine RNG(Seed * 0x9E3779B97F4A7C15ULL + 1);
  ProgramBuilder PB;

  // Class family with one selector, 1-3 implementations.
  ClassId Base = PB.addClass("RBase", InvalidClassId, 2);
  uint32_t NumImpls = 1 + static_cast<uint32_t>(RNG.nextBelow(3));
  std::vector<ClassId> Classes;
  SelectorId Sel = PB.addSelector("rsel", 2);
  for (uint32_t I = 0; I != NumImpls; ++I) {
    ClassId C = PB.addClass("RC" + std::to_string(I), Base, 1);
    Classes.push_back(C);
    MethodId Impl = PB.declareVirtual(C, Sel, "", {}, /*HasResult=*/true);
    MethodBuilder MB = PB.defineMethod(Impl);
    MB.iload(1).iconst(static_cast<int32_t>(RNG.nextBelow(90)) + 1);
    switch (RNG.nextBelow(3)) {
    case 0:
      MB.iadd();
      break;
    case 1:
      MB.imul();
      break;
    default:
      MB.ixor();
      break;
    }
    if (RNG.nextBool(0.5))
      MB.work(static_cast<int32_t>(RNG.nextBelow(10)) + 1);
    MB.iret();
    MB.finish();
  }

  // Static method DAG.
  uint32_t NumMethods = 3 + static_cast<uint32_t>(RNG.nextBelow(5));
  std::vector<MethodId> Methods;
  std::vector<uint32_t> ArgCounts;
  for (uint32_t M = 0; M != NumMethods; ++M) {
    uint32_t NumArgs = static_cast<uint32_t>(RNG.nextBelow(3));
    ArgCounts.push_back(NumArgs);
    Methods.push_back(PB.declareStatic(
        "rm" + std::to_string(M),
        std::vector<ValKind>(NumArgs, ValKind::Int), /*HasResult=*/true));
  }

  for (uint32_t M = 0; M != NumMethods; ++M) {
    MethodBuilder MB = PB.defineMethod(Methods[M]);
    uint32_t NumArgs = ArgCounts[M];
    uint32_t Depth = 0; // Tracked operand stack depth.
    uint32_t NextLocal = NumArgs + 1; // Reserve one scratch int local.
    MB.iconst(0).istore(NumArgs);     // Scratch accumulator.

    auto pushRandomValue = [&] {
      if (NumArgs > 0 && RNG.nextBool(0.4))
        MB.iload(RNG.nextBelow(NumArgs));
      else
        MB.iconst(static_cast<int32_t>(RNG.nextInRange(-50, 50)));
      ++Depth;
    };

    uint32_t Steps = 4 + static_cast<uint32_t>(RNG.nextBelow(14));
    for (uint32_t S = 0; S != Steps; ++S) {
      switch (RNG.nextBelow(10)) {
      case 0:
      case 1:
        pushRandomValue();
        break;
      case 2: // Binary arithmetic.
        if (Depth < 2) {
          pushRandomValue();
          break;
        }
        switch (RNG.nextBelow(5)) {
        case 0:
          MB.iadd();
          break;
        case 1:
          MB.isub();
          break;
        case 2:
          MB.imul();
          break;
        case 3:
          MB.iand();
          break;
        default:
          MB.ixor();
          break;
        }
        --Depth;
        break;
      case 3: // Guarded division by a nonzero constant.
        if (Depth < 1) {
          pushRandomValue();
          break;
        }
        MB.iconst(static_cast<int32_t>(RNG.nextBelow(9)) + 1).idiv();
        break;
      case 4: // Accumulate into the scratch local.
        if (Depth < 1) {
          pushRandomValue();
          break;
        }
        MB.iload(NumArgs).iadd().istore(NumArgs);
        --Depth;
        break;
      case 5: { // Call a lower static method.
        if (M == 0)
          break;
        uint32_t Callee = static_cast<uint32_t>(RNG.nextBelow(M));
        for (uint32_t A = 0; A != ArgCounts[Callee]; ++A)
          pushRandomValue();
        MB.invokeStatic(Methods[Callee]);
        Depth -= ArgCounts[Callee];
        ++Depth;
        break;
      }
      case 6: { // Virtual call on a random receiver class.
        MB.newObject(Classes[RNG.nextBelow(Classes.size())]);
        pushRandomValue();
        MB.invokeVirtual(Sel);
        // Receiver + arg consumed, result pushed: net 0 vs the push.
        break;
      }
      case 7: { // Bounded counted loop accumulating into scratch.
        uint32_t Counter = NextLocal++;
        int32_t Count = static_cast<int32_t>(RNG.nextBelow(6)) + 1;
        MB.iconst(Count).istore(Counter);
        Label Head = MB.newLabel(), Exit = MB.newLabel();
        MB.bind(Head).iload(Counter).ifLe(Exit);
        MB.iload(NumArgs).iconst(3).iadd().istore(NumArgs);
        if (RNG.nextBool(0.3))
          MB.work(static_cast<int32_t>(RNG.nextBelow(20)) + 1);
        MB.iinc(Counter, -1).jump(Head);
        MB.bind(Exit);
        break;
      }
      case 8: { // Branch diamond merging one value.
        if (Depth < 1) {
          pushRandomValue();
          break;
        }
        Label Else = MB.newLabel(), Join = MB.newLabel();
        MB.ifEq(Else);
        --Depth;
        MB.iconst(static_cast<int32_t>(RNG.nextBelow(100))).jump(Join);
        MB.bind(Else).iconst(static_cast<int32_t>(RNG.nextBelow(100)) + 100);
        MB.bind(Join);
        ++Depth;
        break;
      }
      default: // Field round-trip through a fresh object.
        MB.newObject(Base).astore(NextLocal);
        MB.aload(NextLocal);
        MB.iconst(static_cast<int32_t>(RNG.nextBelow(1000)));
        MB.putField(RNG.nextBelow(2));
        ++NextLocal;
        break;
      }
    }

    // Fold everything on the stack into one return value.
    if (Depth == 0) {
      MB.iload(NumArgs);
      ++Depth;
    }
    while (Depth > 1) {
      MB.ixor();
      --Depth;
    }
    MB.iload(NumArgs).iadd().iret();
    MB.finish();
  }

  // main: call a handful of methods and print the results.
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    uint32_t Calls = 2 + static_cast<uint32_t>(RNG.nextBelow(4));
    for (uint32_t C = 0; C != Calls; ++C) {
      uint32_t Callee = static_cast<uint32_t>(RNG.nextBelow(NumMethods));
      for (uint32_t A = 0; A != ArgCounts[Callee]; ++A)
        MB.iconst(static_cast<int32_t>(RNG.nextInRange(-9, 9)));
      MB.invokeStatic(Methods[Callee]).print();
    }
    MB.finish();
  }
  return PB.finish(Main);
}

} // namespace cbs::fuzz

#endif // CBSVM_TESTS_RANDOMPROGRAMGEN_H
