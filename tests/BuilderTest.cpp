//===- tests/BuilderTest.cpp - program builder tests ---------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Printer.h"
#include "bytecode/Verifier.h"

#include <gtest/gtest.h>

#include <functional>

using namespace cbs;
using namespace cbs::bc;

namespace {

Program singleMethodProgram(const std::function<void(MethodBuilder &)> &Fill) {
  ProgramBuilder PB;
  MethodId Main = PB.declareStatic("main");
  MethodBuilder MB = PB.defineMethod(Main);
  Fill(MB);
  MB.finish();
  return PB.finish(Main);
}

} // namespace

TEST(Builder, EmptyVoidMethodGetsImplicitReturn) {
  Program P = singleMethodProgram([](MethodBuilder &) {});
  ASSERT_EQ(P.method(0).Code.size(), 1u);
  EXPECT_EQ(P.method(0).Code[0].Op, Opcode::Return);
}

TEST(Builder, ExplicitReturnNotDuplicated) {
  Program P = singleMethodProgram([](MethodBuilder &MB) { MB.ret(); });
  EXPECT_EQ(P.method(0).Code.size(), 1u);
}

TEST(Builder, LabelsResolveForwardAndBackward) {
  Program P = singleMethodProgram([](MethodBuilder &MB) {
    Label Back = MB.newLabel();
    Label Fwd = MB.newLabel();
    MB.iconst(0).istore(0);
    MB.bind(Back);                 // pc 2
    MB.iload(0).ifGt(Fwd);         // pc 3
    MB.iinc(0, 1).jump(Back);
    MB.bind(Fwd).ret();
  });
  const Method &M = P.method(0);
  // ifGt target is the final return; goto target is pc 2.
  EXPECT_EQ(M.Code[3].Op, Opcode::IfGt);
  EXPECT_EQ(static_cast<size_t>(M.Code[3].A), M.Code.size() - 1);
  EXPECT_EQ(M.Code[5].Op, Opcode::Goto);
  EXPECT_EQ(M.Code[5].A, 2);
  EXPECT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).str();
}

TEST(Builder, LabelBoundAtEndTargetsImplicitReturn) {
  Program P = singleMethodProgram([](MethodBuilder &MB) {
    Label End = MB.newLabel();
    MB.jump(End);
    MB.bind(End);
  });
  const Method &M = P.method(0);
  ASSERT_EQ(M.Code.size(), 2u);
  EXPECT_EQ(M.Code[0].A, 1);
  EXPECT_EQ(M.Code[1].Op, Opcode::Return);
}

TEST(Builder, NumLocalsCoversArgsAndSlots) {
  ProgramBuilder PB;
  MethodId Id = PB.declareStatic("f", {ValKind::Int, ValKind::Int});
  MethodBuilder MB = PB.defineMethod(Id);
  MB.iconst(1).istore(7);
  MB.finish();
  MethodId Main = PB.declareStatic("main");
  MethodBuilder MainB = PB.defineMethod(Main);
  MainB.iconst(1).iconst(2).invokeStatic(Id);
  MainB.finish();
  Program P = PB.finish(Main);
  EXPECT_EQ(P.method(Id).NumLocals, 8u);
}

TEST(Builder, SiteIdsAreUniqueAndMapBack) {
  ProgramBuilder PB;
  MethodId Leaf = PB.declareStatic("leaf");
  {
    MethodBuilder MB = PB.defineMethod(Leaf);
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Leaf).invokeStatic(Leaf).invokeStatic(Leaf);
    MB.finish();
  }
  Program P = PB.finish(Main);
  ASSERT_EQ(P.numSites(), 3u);
  for (SiteId S = 0; S != 3; ++S) {
    EXPECT_EQ(P.site(S).Caller, Main);
    EXPECT_EQ(P.site(S).PC, S);
    EXPECT_EQ(P.method(Main).Code[S].Site, S);
  }
}

TEST(Builder, VirtualDeclarationWiresVTable) {
  ProgramBuilder PB;
  ClassId Base = PB.addClass("Base", InvalidClassId, 1);
  ClassId Sub = PB.addClass("Sub", Base, 1);
  SelectorId Sel = PB.addSelector("f", 1);
  MethodId BaseImpl =
      PB.declareVirtual(Base, Sel, "", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(BaseImpl);
    MB.iconst(1).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.newObject(Sub).invokeVirtual(Sel).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  // Sub inherits Base's implementation.
  EXPECT_EQ(P.hierarchy().lookup(Sub, Sel), BaseImpl);
  EXPECT_EQ(P.hierarchy().lookup(Base, Sel), BaseImpl);
  EXPECT_TRUE(P.hierarchy().derivesFrom(Sub, Base));
  EXPECT_FALSE(P.hierarchy().derivesFrom(Base, Sub));
}

TEST(Builder, OverrideShadowsInherited) {
  ProgramBuilder PB;
  ClassId Base = PB.addClass("Base", InvalidClassId, 0);
  ClassId Sub = PB.addClass("Sub", Base, 0);
  SelectorId Sel = PB.addSelector("f", 1);
  MethodId BaseImpl = PB.declareVirtual(Base, Sel);
  MethodId SubImpl = PB.declareVirtual(Sub, Sel);
  for (MethodId Id : {BaseImpl, SubImpl}) {
    MethodBuilder MB = PB.defineMethod(Id);
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.finish();
  }
  Program P = PB.finish(Main);
  EXPECT_EQ(P.hierarchy().lookup(Sub, Sel), SubImpl);
  EXPECT_EQ(P.hierarchy().lookup(Base, Sel), BaseImpl);
  auto Receivers = P.hierarchy().receiversOf(Sel, BaseImpl);
  ASSERT_EQ(Receivers.size(), 1u);
  EXPECT_EQ(Receivers[0], Base);
}

TEST(Builder, FieldsAccumulateThroughInheritance) {
  ProgramBuilder PB;
  ClassId A = PB.addClass("A", InvalidClassId, 2);
  ClassId B = PB.addClass("B", A, 3);
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.finish();
  }
  Program P = PB.finish(Main);
  EXPECT_EQ(P.hierarchy().classOf(A).NumFields, 2u);
  EXPECT_EQ(P.hierarchy().classOf(B).NumFields, 5u);
}

TEST(Builder, SizeBytesMatchesOpcodeSizes) {
  Program P = singleMethodProgram([](MethodBuilder &MB) {
    MB.iconst(1).istore(0).iload(0).print();
  });
  // iconst(2) + istore(2) + iload(2) + print(1) + implicit return(1).
  EXPECT_EQ(P.method(0).sizeBytes(), 8u);
}

TEST(Builder, QualifiedNames) {
  ProgramBuilder PB;
  ClassId C = PB.addClass("Widget", InvalidClassId, 0);
  SelectorId Sel = PB.addSelector("render", 1);
  MethodId V = PB.declareVirtual(C, Sel);
  {
    MethodBuilder MB = PB.defineMethod(V);
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.finish();
  }
  Program P = PB.finish(Main);
  EXPECT_EQ(P.qualifiedName(V), "Widget::render");
  EXPECT_EQ(P.qualifiedName(Main), "main");
}

TEST(Builder, PrinterSmokeTest) {
  ProgramBuilder PB;
  ClassId C = PB.addClass("K", InvalidClassId, 1);
  SelectorId Sel = PB.addSelector("m", 1);
  MethodId V = PB.declareVirtual(C, Sel, "", {}, true);
  {
    MethodBuilder MB = PB.defineMethod(V);
    MB.work(5).iconst(1).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.newObject(C).invokeVirtual(Sel).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  std::string Out = printProgram(P);
  EXPECT_NE(Out.find("invokevirtual m"), std::string::npos);
  EXPECT_NE(Out.find("K::m"), std::string::npos);
  EXPECT_NE(Out.find("work 5"), std::string::npos);
}

TEST(Builder, MutualRecursionViaForwardDeclaration) {
  ProgramBuilder PB;
  MethodId F = PB.declareStatic("f", {ValKind::Int}, true);
  MethodId G = PB.declareStatic("g", {ValKind::Int}, true);
  {
    MethodBuilder MB = PB.defineMethod(F);
    Label Base = MB.newLabel();
    MB.iload(0).ifLe(Base);
    MB.iload(0).iconst(1).isub().invokeStatic(G).iret();
    MB.bind(Base).iconst(0).iret();
    MB.finish();
  }
  {
    MethodBuilder MB = PB.defineMethod(G);
    MB.iload(0).invokeStatic(F).iconst(1).iadd().iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(5).invokeStatic(F).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  EXPECT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).str();
}
