//===- tests/OracleTest.cpp - inline oracle policy tests -----------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// Pins down the decision rules of the three inliners the paper
// compares: the old Jikes 1%-cliff, the new linear-threshold + 40%
// distribution rule, and J9's static heuristics with cold-site
// suppression.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "opt/InlineOracle.h"
#include "profiling/DynamicCallGraph.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::opt;

namespace {

/// A program with:
///  - site 0: static call to a tiny callee
///  - site 1: static call to a mid-sized callee (~40B)
///  - site 2: static call to a large callee (~90B)
///  - site 3: virtual call with three implementations (A, B, C)
struct OracleFixture {
  OracleFixture() {
    auto MakeStatic = [&](const char *Name, unsigned PadPairs) {
      MethodId Id =
          PB.declareStatic(Name, {ValKind::Int}, /*HasResult=*/true);
      MethodBuilder MB = PB.defineMethod(Id);
      MB.iload(0);
      for (unsigned K = 0; K != PadPairs; ++K)
        MB.iconst(static_cast<int32_t>(K)).ixor();
      MB.iret();
      MB.finish();
      return Id;
    };
    Tiny = MakeStatic("tiny", 1);     // ~8B
    Mid = MakeStatic("mid", 11);      // ~38B
    Large = MakeStatic("large", 28);  // ~89B

    ClassId Base = PB.addClass("Base", InvalidClassId, 0);
    Sel = PB.addSelector("m", 2);
    for (int I = 0; I != 3; ++I) {
      ClassId C = PB.addClass(std::string("C") + char('A' + I), Base, 0);
      Classes.push_back(C);
      MethodId Impl = PB.declareVirtual(C, Sel, "", {}, /*HasResult=*/true);
      MethodBuilder MB = PB.defineMethod(Impl);
      MB.iload(1).iconst(I).iadd().iret();
      MB.finish();
      Impls.push_back(Impl);
    }

    MethodId Main = PB.declareStatic("main");
    {
      MethodBuilder MB = PB.defineMethod(Main);
      MB.iconst(1).invokeStatic(Tiny).istore(0);   // site 0
      MB.iconst(1).invokeStatic(Mid).istore(0);    // site 1
      MB.iconst(1).invokeStatic(Large).istore(0);  // site 2
      MB.newObject(Classes[0]).iconst(1).invokeVirtual(Sel).istore(0);
      MB.iload(0).print();
      MB.finish();
    }
    P.emplace(PB.finish(Main));
  }

  /// DCG helper: weight per site as a fraction of Total.
  prof::DCGSnapshot
  makeDCG(uint64_t Site0, uint64_t Site1, uint64_t Site2,
          std::vector<uint64_t> VirtualSplit = {}) {
    prof::DynamicCallGraph DCG;
    if (Site0)
      DCG.addSample({0, Tiny}, Site0);
    if (Site1)
      DCG.addSample({1, Mid}, Site1);
    if (Site2)
      DCG.addSample({2, Large}, Site2);
    for (size_t I = 0; I != VirtualSplit.size(); ++I)
      if (VirtualSplit[I])
        DCG.addSample({3, Impls[I]}, VirtualSplit[I]);
    return DCG.snapshot();
  }

  ProgramBuilder PB;
  MethodId Tiny, Mid, Large;
  SelectorId Sel;
  std::vector<ClassId> Classes;
  std::vector<MethodId> Impls;
  std::optional<Program> P;
};

} // namespace

TEST(TrivialOracle, InlinesOnlyTinyCallees) {
  OracleFixture FX;
  InlinePlan Plan = TrivialOracle().plan(*FX.P, prof::DCGSnapshot());
  ASSERT_NE(Plan.decisionFor(0), nullptr);
  EXPECT_EQ(Plan.decisionFor(0)->K, InlineDecision::Kind::Direct);
  EXPECT_EQ(Plan.decisionFor(1), nullptr);
  EXPECT_EQ(Plan.decisionFor(2), nullptr);
  // Virtual site: polymorphic by CHA, so no trivial devirtualization.
  EXPECT_EQ(Plan.decisionFor(3), nullptr);
}

TEST(TrivialOracle, DevirtualizesCHAMonomorphic) {
  ProgramBuilder PB;
  ClassId C = PB.addClass("K", InvalidClassId, 0);
  SelectorId Sel = PB.addSelector("only", 1);
  MethodId Impl = PB.declareVirtual(C, Sel, "", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(Impl);
    MB.iconst(1).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.newObject(C).invokeVirtual(Sel).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  InlinePlan Plan = TrivialOracle().plan(P, prof::DCGSnapshot());
  ASSERT_NE(Plan.decisionFor(0), nullptr);
  EXPECT_EQ(Plan.decisionFor(0)->K, InlineDecision::Kind::Direct);
  EXPECT_EQ(Plan.decisionFor(0)->Target, Impl);
}

TEST(OldJikes, IgnoresNonHotProfileData) {
  OracleFixture FX;
  // Mid callee has 0.9% of total weight: below the 1% cliff.
  prof::DCGSnapshot DCG = FX.makeDCG(991, 9, 0);
  InlinePlan Plan = OldJikesOracle().plan(*FX.P, DCG);
  EXPECT_EQ(Plan.decisionFor(1), nullptr)
      << "0.9% edge must be completely ignored (the old conservatism)";
  // Above the cliff it inlines.
  prof::DCGSnapshot Hot = FX.makeDCG(900, 100, 0);
  Plan = OldJikesOracle().plan(*FX.P, Hot);
  ASSERT_NE(Plan.decisionFor(1), nullptr);
  EXPECT_EQ(Plan.decisionFor(1)->K, InlineDecision::Kind::Direct);
}

TEST(OldJikes, HotSizeThresholdStillBoundsCallee) {
  OracleFixture FX;
  prof::DCGSnapshot DCG = FX.makeDCG(0, 0, 1000);
  InlinePlan Plan = OldJikesOracle().plan(*FX.P, DCG);
  // Large (~90B) exceeds HotSizeBytes (60): not inlined even at 100%.
  EXPECT_EQ(Plan.decisionFor(2), nullptr);
}

TEST(NewJikes, ThresholdScalesWithEdgeWeight) {
  OracleFixture FX;
  // Mid (~38B) exceeds the base threshold (24B), so a cold edge is not
  // inlined...
  prof::DCGSnapshot Cold = FX.makeDCG(1000, 1, 0);
  InlinePlan Plan = NewJikesOracle().plan(*FX.P, Cold);
  EXPECT_EQ(Plan.decisionFor(1), nullptr);
  // ...but there is no 1% cliff: a 3% edge already buys ~54B.
  prof::DCGSnapshot Warm = FX.makeDCG(970, 30, 0);
  Plan = NewJikesOracle().plan(*FX.P, Warm);
  ASSERT_NE(Plan.decisionFor(1), nullptr)
      << "the new inliner exploits non-hot profile data";
  EXPECT_EQ(Plan.decisionFor(1)->K, InlineDecision::Kind::Direct);
}

TEST(NewJikes, MaxSizeBoundIsRespected) {
  OracleFixture FX;
  NewJikesOracle::Params Params;
  Params.MaxSizeBytes = 80;
  prof::DCGSnapshot AllHot = FX.makeDCG(0, 0, 1000);
  InlinePlan Plan = NewJikesOracle(Params).plan(*FX.P, AllHot);
  EXPECT_EQ(Plan.decisionFor(2), nullptr)
      << "bounded by maximum allowable size (§5.1)";
}

TEST(NewJikes, FortyPercentRuleSelectsGuardedTargets) {
  OracleFixture FX;
  // Split 50/45/5: the first two targets pass the 40% bar.
  prof::DCGSnapshot DCG = FX.makeDCG(0, 0, 0, {50, 45, 5});
  InlinePlan Plan = NewJikesOracle().plan(*FX.P, DCG);
  ASSERT_NE(Plan.decisionFor(3), nullptr);
  const InlineDecision &D = *Plan.decisionFor(3);
  EXPECT_EQ(D.K, InlineDecision::Kind::Guarded);
  ASSERT_EQ(D.Guarded.size(), 2u);
  EXPECT_EQ(D.Guarded[0].Target, FX.Impls[0]);
  EXPECT_EQ(D.Guarded[1].Target, FX.Impls[1]);

  // Megamorphic 34/33/33: nobody passes 40%, no guarded inlining.
  prof::DCGSnapshot Flat = FX.makeDCG(0, 0, 0, {34, 33, 33});
  Plan = NewJikesOracle().plan(*FX.P, Flat);
  EXPECT_EQ(Plan.decisionFor(3), nullptr);
}

TEST(NewJikes, GuardClassesComeFromHierarchy) {
  OracleFixture FX;
  prof::DCGSnapshot DCG = FX.makeDCG(0, 0, 0, {100, 0, 0});
  InlinePlan Plan = NewJikesOracle().plan(*FX.P, DCG);
  ASSERT_NE(Plan.decisionFor(3), nullptr);
  const InlineDecision &D = *Plan.decisionFor(3);
  ASSERT_EQ(D.Guarded.size(), 1u);
  EXPECT_EQ(D.Guarded[0].GuardClasses,
            std::vector<ClassId>{FX.Classes[0]});
}

TEST(J9, StaticHeuristicsAreAggressive) {
  OracleFixture FX;
  J9Oracle::Params Params;
  Params.UseDynamic = false;
  InlinePlan Plan = J9Oracle(Params).plan(*FX.P, prof::DCGSnapshot());
  // Mid (~38B <= 48B) is inlined with no profile at all.
  ASSERT_NE(Plan.decisionFor(1), nullptr);
  EXPECT_EQ(Plan.decisionFor(1)->K, InlineDecision::Kind::Direct);
  // Large is not.
  EXPECT_EQ(Plan.decisionFor(2), nullptr);
}

TEST(J9, ColdSitesOverrideStaticDecision) {
  OracleFixture FX;
  // Site 1 is present but far below the cold cutoff.
  prof::DCGSnapshot DCG = FX.makeDCG(1'000'000, 1, 0);
  InlinePlan Plan = J9Oracle().plan(*FX.P, DCG);
  EXPECT_EQ(Plan.decisionFor(1), nullptr)
      << "cold call sites are not inlined (§5.2)";
  // Absent sites are cold too.
  EXPECT_EQ(Plan.decisionFor(2), nullptr);
  // Trivial callees are exempt from the suppression.
  ASSERT_NE(Plan.decisionFor(0), nullptr);
}

TEST(J9, HotSitesGetBoostedThresholds) {
  OracleFixture FX;
  // Large (~90B) exceeds the static 48B, but a 30% site boosts past it.
  prof::DCGSnapshot DCG = FX.makeDCG(700, 0, 300);
  InlinePlan Plan = J9Oracle().plan(*FX.P, DCG);
  ASSERT_NE(Plan.decisionFor(2), nullptr);
  EXPECT_EQ(Plan.decisionFor(2)->K, InlineDecision::Kind::Direct);
}

TEST(J9, DynamicNeedsNonEmptyProfile) {
  OracleFixture FX;
  // With an empty DCG the dynamic heuristics fall back to static
  // behaviour rather than treating everything as cold.
  InlinePlan Plan = J9Oracle().plan(*FX.P, prof::DCGSnapshot());
  ASSERT_NE(Plan.decisionFor(1), nullptr);
}

TEST(Oracles, ChaMonomorphicHelper) {
  OracleFixture FX;
  MethodId Target;
  EXPECT_FALSE(chaMonomorphic(*FX.P, FX.Sel, Target))
      << "three implementations";
}
