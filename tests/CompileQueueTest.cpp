//===- tests/CompileQueueTest.cpp - background compile pipeline tests ----------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile queue's deterministic contracts: backpressure policies
/// (coalescing, eviction, rejection), ready-cycle gating and priority
/// ordering at popReady, and the end-to-end guarantees of the async
/// pipeline — byte-identical runs at any --compile-jobs count, stale
/// plans re-validated at the install point, and modelled latency
/// actually shifting install timing in virtual time.
///
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"
#include "aos/CompileQueue.h"
#include "experiments/Experiments.h"
#include "profiling/ProfileCodec.h"
#include "telemetry/TraceSink.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace cbs;
using namespace cbs::aos;

namespace {

CompileRequest request(bc::MethodId Method, int Level, double Priority,
                       CompileQueue &Q, uint64_t ReadyCycle = 0) {
  CompileRequest R;
  R.Method = Method;
  R.Level = Level;
  R.Priority = Priority;
  R.ReadyCycle = ReadyCycle;
  R.Seq = Q.nextSeq();
  return R;
}

} // namespace

TEST(CompileQueue, CoalesceUpgradesLevelAndKeepsSeq) {
  CompileQueue Q(8);
  CompileRequest First = request(/*Method=*/3, /*Level=*/1, /*Priority=*/5, Q);
  uint64_t FirstSeq = First.Seq;
  ASSERT_EQ(Q.enqueue(std::move(First)), EnqueueResult::Added);

  // A higher-level request for the same method supersedes the pending
  // entry wholesale but keeps its queue position (the original Seq).
  EXPECT_EQ(Q.enqueue(request(3, 2, 4, Q)), EnqueueResult::Coalesced);
  EXPECT_EQ(Q.depth(), 1u);
  EXPECT_EQ(Q.pendingLevel(3), 2);

  std::optional<CompileRequest> Popped = Q.popReady(/*Now=*/1'000);
  ASSERT_TRUE(Popped.has_value());
  EXPECT_EQ(Popped->Level, 2);
  EXPECT_EQ(Popped->Seq, FirstSeq);
  // Priority rises to max(old, new) on coalesce in either direction.
  EXPECT_EQ(Popped->Priority, 5);
}

TEST(CompileQueue, CoalesceSameLevelRaisesPriority) {
  CompileQueue Q(8);
  ASSERT_EQ(Q.enqueue(request(1, 1, 2, Q)), EnqueueResult::Added);
  ASSERT_EQ(Q.enqueue(request(2, 1, 5, Q)), EnqueueResult::Added);
  // Method 1 re-requested at the same level with a hotter score: no
  // second entry, but the pending one's priority rises past method 2's.
  EXPECT_EQ(Q.enqueue(request(1, 1, 9, Q)), EnqueueResult::Coalesced);
  EXPECT_EQ(Q.depth(), 2u);

  std::optional<CompileRequest> Popped = Q.popReady(0);
  ASSERT_TRUE(Popped.has_value());
  EXPECT_EQ(Popped->Method, 1u);
  EXPECT_EQ(Popped->Priority, 9);
}

TEST(CompileQueue, OverflowEvictsLowestPriority) {
  CompileQueue Q(2);
  ASSERT_EQ(Q.enqueue(request(1, 1, 10, Q)), EnqueueResult::Added);
  ASSERT_EQ(Q.enqueue(request(2, 1, 3, Q)), EnqueueResult::Added);

  std::optional<CompileRequest> Evicted;
  EXPECT_EQ(Q.enqueue(request(3, 1, 7, Q), &Evicted),
            EnqueueResult::EvictedLowest);
  ASSERT_TRUE(Evicted.has_value());
  EXPECT_EQ(Evicted->Method, 2u);
  EXPECT_EQ(Q.depth(), 2u);
  EXPECT_EQ(Q.pendingLevel(2), -1);
  EXPECT_EQ(Q.pendingLevel(3), 1);
}

TEST(CompileQueue, OverflowRejectsWeakerNewcomer) {
  CompileQueue Q(2);
  ASSERT_EQ(Q.enqueue(request(1, 1, 10, Q)), EnqueueResult::Added);
  ASSERT_EQ(Q.enqueue(request(2, 1, 5, Q)), EnqueueResult::Added);

  // Equal priority does not outrank the incumbent: FIFO wins ties.
  EXPECT_EQ(Q.enqueue(request(3, 1, 5, Q)), EnqueueResult::Rejected);
  EXPECT_EQ(Q.enqueue(request(4, 1, 1, Q)), EnqueueResult::Rejected);
  EXPECT_EQ(Q.depth(), 2u);
  EXPECT_EQ(Q.pendingLevel(1), 1);
  EXPECT_EQ(Q.pendingLevel(2), 1);
}

TEST(CompileQueue, PopReadyGatesOnReadyCycle) {
  CompileQueue Q(8);
  ASSERT_EQ(Q.enqueue(request(1, 1, 10, Q, /*ReadyCycle=*/500)),
            EnqueueResult::Added);
  ASSERT_EQ(Q.enqueue(request(2, 1, 2, Q, /*ReadyCycle=*/100)),
            EnqueueResult::Added);

  // Nothing has passed its modelled latency yet.
  EXPECT_FALSE(Q.popReady(/*Now=*/99).has_value());

  // At cycle 100 only the low-priority request is ready: ready-cycle
  // gating comes before priority.
  std::optional<CompileRequest> Popped = Q.popReady(100);
  ASSERT_TRUE(Popped.has_value());
  EXPECT_EQ(Popped->Method, 2u);

  Popped = Q.popReady(100);
  EXPECT_FALSE(Popped.has_value());

  Popped = Q.popReady(500);
  ASSERT_TRUE(Popped.has_value());
  EXPECT_EQ(Popped->Method, 1u);
  EXPECT_EQ(Q.depth(), 0u);
}

TEST(CompileQueue, PopReadyOrdersByPriorityThenSeq) {
  CompileQueue Q(8);
  ASSERT_EQ(Q.enqueue(request(1, 1, 3, Q)), EnqueueResult::Added);
  ASSERT_EQ(Q.enqueue(request(2, 1, 7, Q)), EnqueueResult::Added);
  ASSERT_EQ(Q.enqueue(request(3, 1, 7, Q)), EnqueueResult::Added);
  ASSERT_EQ(Q.enqueue(request(4, 1, 5, Q)), EnqueueResult::Added);

  std::vector<bc::MethodId> Order;
  while (std::optional<CompileRequest> R = Q.popReady(0))
    Order.push_back(R->Method);
  EXPECT_EQ(Order, (std::vector<bc::MethodId>{2, 3, 4, 1}));
}

namespace {

/// One full run of a Table 1 workload under the adaptive system; the
/// byte-level artifacts are everything `cbsvm run --save --metrics-json`
/// would write plus the AOS's own counters.
struct AOSRunArtifacts {
  std::string Profile;
  std::string Metrics;
  uint64_t Cycles = 0;
  uint64_t Installs = 0;
  uint64_t StaleDrops = 0;
  uint64_t Deopts = 0;
};

AOSRunArtifacts runWorkload(const char *Name, uint32_t CompileJobs,
                            double LatencyScale = 1.0,
                            tel::TraceSink *Trace = nullptr,
                            DeoptConfig Deopt = {}) {
  const wl::WorkloadInfo *W = wl::findWorkload(Name);
  bc::Program P = W ? W->Build(wl::InputSize::Small, /*Seed=*/1)
                    : wl::buildPhased(wl::InputSize::Small, /*Seed=*/1);
  vm::VMConfig Config =
      exp::jitOnlyConfig(P, vm::Personality::JikesRVM, /*Seed=*/1);
  Config.Costs.CompileLatencyScale = LatencyScale;
  Config.Trace = Trace;

  AOSConfig AC;
  AC.CompileJobs = CompileJobs;
  AC.Deopt = Deopt;
  opt::NewJikesOracle Oracle;
  AdaptiveSystem AOS(&Oracle, AC);
  vm::VirtualMachine VM(P, Config);
  VM.setClient(&AOS);
  EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();

  AOSRunArtifacts A;
  A.Profile = prof::ProfileCodec::encode(VM.profile());
  A.Metrics = VM.metrics().toJson();
  A.Cycles = VM.stats().Cycles;
  A.Installs = AOS.stats().QueueInstalls;
  A.StaleDrops = AOS.stats().QueueStaleDrops;
  if (AOS.deoptController())
    A.Deopts = AOS.deoptController()->stats().Deopts;
  return A;
}

} // namespace

TEST(CompileQueue, WorkerThreadsAreByteIdentical) {
  // The deterministic-install contract: worker threads only pre-compute
  // pure compile results, installs stay pinned to virtual-time points,
  // so every artifact of the run is byte-identical at any job count.
  AOSRunArtifacts Jobs0 = runWorkload("jess", 0);
  AOSRunArtifacts Jobs1 = runWorkload("jess", 1);
  AOSRunArtifacts Jobs4 = runWorkload("jess", 4);

  EXPECT_GT(Jobs0.Installs, 0u) << "workload too small to exercise the queue";
  EXPECT_EQ(Jobs0.Profile, Jobs1.Profile);
  EXPECT_EQ(Jobs0.Profile, Jobs4.Profile);
  EXPECT_EQ(Jobs0.Metrics, Jobs1.Metrics);
  EXPECT_EQ(Jobs0.Metrics, Jobs4.Metrics);
  EXPECT_EQ(Jobs0.Cycles, Jobs4.Cycles);
}

TEST(CompileQueue, ByteIdenticalUnderLongLatency) {
  // Same contract with requests living long enough in the queue for
  // worker results to genuinely arrive out of order.
  AOSRunArtifacts Jobs0 = runWorkload("phased", 0, /*LatencyScale=*/25);
  AOSRunArtifacts Jobs4 = runWorkload("phased", 4, /*LatencyScale=*/25);
  EXPECT_EQ(Jobs0.Profile, Jobs4.Profile);
  EXPECT_EQ(Jobs0.Metrics, Jobs4.Metrics);
  EXPECT_EQ(Jobs0.Cycles, Jobs4.Cycles);
}

TEST(CompileQueue, DeoptStormByteIdenticalAcrossJobs) {
  // The determinism contract must survive the harshest deopt schedule:
  // under the forced-invalidation storm every install is invalidated at
  // the next taken yieldpoint and recompiled, with requests dropped
  // stale along the way. Worker threads still may not move any install
  // or invalidation in virtual time.
  DeoptConfig Storm;
  Storm.Enabled = true;
  Storm.ForceStormForTesting = true;
  AOSRunArtifacts Jobs0 = runWorkload("jess", 0, 1.0, nullptr, Storm);
  AOSRunArtifacts Jobs4 = runWorkload("jess", 4, 1.0, nullptr, Storm);

  EXPECT_GT(Jobs0.Deopts, 0u) << "storm produced no deopts to schedule";
  EXPECT_EQ(Jobs0.Profile, Jobs4.Profile);
  EXPECT_EQ(Jobs0.Metrics, Jobs4.Metrics);
  EXPECT_EQ(Jobs0.Cycles, Jobs4.Cycles);
  EXPECT_EQ(Jobs0.Deopts, Jobs4.Deopts);
}

TEST(CompileQueue, StalePlansAreReValidatedAtInstall) {
  // With a long modelled latency on the phase-shift program, plans
  // go stale between decision and install: the install point must
  // drop and re-enqueue rather than install against the old phase.
  AOSRunArtifacts A = runWorkload("phased", 0, /*LatencyScale=*/25);
  EXPECT_GE(A.StaleDrops, 1u);
  EXPECT_GT(A.Installs, 0u) << "re-enqueue must not starve installs";
}

TEST(CompileQueue, LatencyShiftsInstallTiming) {
  auto FirstInstallCycle = [](const tel::CollectorSink &Sink) {
    uint64_t First = UINT64_MAX;
    for (const tel::TraceEvent &E : Sink.events())
      if (E.Kind == tel::EventKind::CompileInstall)
        First = std::min(First, E.Cycles);
    return First;
  };

  tel::CollectorSink Fast, Slow;
  runWorkload("jess", 0, /*LatencyScale=*/0, &Fast);
  runWorkload("jess", 0, /*LatencyScale=*/50, &Slow);

  uint64_t FastFirst = FirstInstallCycle(Fast);
  uint64_t SlowFirst = FirstInstallCycle(Slow);
  ASSERT_NE(FastFirst, UINT64_MAX) << "no installs at latency scale 0";
  ASSERT_NE(SlowFirst, UINT64_MAX) << "no installs at latency scale 50";
  EXPECT_LT(FastFirst, SlowFirst)
      << "modelled latency must delay the first install in virtual time";
}

TEST(CompileQueue, EnqueueAndInstallEventsAreTraced) {
  tel::CollectorSink Sink;
  runWorkload("jess", 0, /*LatencyScale=*/1, &Sink);

  uint64_t Enqueues = 0, Installs = 0;
  for (const tel::TraceEvent &E : Sink.events()) {
    if (E.Kind == tel::EventKind::CompileEnqueue) {
      ++Enqueues;
      EXPECT_GE(E.C, E.Cycles) << "ready cycle precedes the enqueue";
    }
    if (E.Kind == tel::EventKind::CompileInstall)
      ++Installs;
  }
  EXPECT_GT(Enqueues, 0u);
  EXPECT_GT(Installs, 0u);
  EXPECT_GE(Enqueues, Installs);
}
