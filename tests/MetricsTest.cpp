//===- tests/MetricsTest.cpp - additional accuracy metric tests -----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/Metrics.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::prof;

namespace {

DynamicCallGraph graph(std::initializer_list<std::pair<uint32_t, uint64_t>>
                           EdgesAndWeights) {
  DynamicCallGraph DCG;
  for (auto [Id, W] : EdgesAndWeights)
    DCG.addSample({Id, Id}, W);
  return DCG;
}

} // namespace

TEST(HotEdgeCoverage, FullWhenAllHotEdgesPresent) {
  DynamicCallGraph Perfect = graph({{0, 100}, {1, 50}, {2, 1}});
  DynamicCallGraph Sampled = graph({{0, 3}, {1, 1}});
  EXPECT_DOUBLE_EQ(hotEdgeCoverage(Sampled, Perfect, 2), 1.0);
}

TEST(HotEdgeCoverage, PenalizesMissingHotEdges) {
  DynamicCallGraph Perfect = graph({{0, 100}, {1, 50}, {2, 25}, {3, 12}});
  DynamicCallGraph Sampled = graph({{0, 10}, {3, 1}});
  // Of the top 4, edges 0 and 3 are present.
  EXPECT_DOUBLE_EQ(hotEdgeCoverage(Sampled, Perfect, 4), 0.5);
}

TEST(HotEdgeCoverage, IgnoresWeightsOnlyPresence) {
  // Garbled weights don't matter to coverage — the old inliner's view.
  DynamicCallGraph Perfect = graph({{0, 100}, {1, 99}});
  DynamicCallGraph Garbled = graph({{0, 1}, {1, 1000}});
  EXPECT_DOUBLE_EQ(hotEdgeCoverage(Garbled, Perfect, 2), 1.0);
}

TEST(HotEdgeCoverage, EmptyPerfectIsVacuouslyCovered) {
  DynamicCallGraph Empty;
  EXPECT_DOUBLE_EQ(hotEdgeCoverage(Empty, Empty, 10), 1.0);
}

TEST(HotOrderAgreement, PerfectOrderScoresOne) {
  DynamicCallGraph Perfect = graph({{0, 100}, {1, 50}, {2, 25}});
  DynamicCallGraph Sampled = graph({{0, 9}, {1, 5}, {2, 2}});
  EXPECT_DOUBLE_EQ(hotOrderAgreement(Sampled, Perfect, 3), 1.0);
}

TEST(HotOrderAgreement, InvertedOrderScoresZero) {
  DynamicCallGraph Perfect = graph({{0, 100}, {1, 50}, {2, 25}});
  DynamicCallGraph Sampled = graph({{0, 1}, {1, 5}, {2, 9}});
  EXPECT_DOUBLE_EQ(hotOrderAgreement(Sampled, Perfect, 3), 0.0);
}

TEST(HotOrderAgreement, MissingEdgesCountAsZeroWeight) {
  DynamicCallGraph Perfect = graph({{0, 100}, {1, 50}});
  DynamicCallGraph Sampled = graph({{0, 5}});
  // Edge 1 missing => weight 0 < 5: order preserved.
  EXPECT_DOUBLE_EQ(hotOrderAgreement(Sampled, Perfect, 2), 1.0);
}

TEST(HotOrderAgreement, SampledTiesScoreHalf) {
  DynamicCallGraph Perfect = graph({{0, 100}, {1, 50}});
  DynamicCallGraph Sampled = graph({{0, 5}, {1, 5}});
  EXPECT_DOUBLE_EQ(hotOrderAgreement(Sampled, Perfect, 2), 0.5);
}

TEST(HotOrderAgreement, TrueTiesAreSkipped) {
  DynamicCallGraph Perfect = graph({{0, 50}, {1, 50}});
  DynamicCallGraph Sampled = graph({{0, 1}, {1, 99}});
  EXPECT_DOUBLE_EQ(hotOrderAgreement(Sampled, Perfect, 2), 1.0)
      << "no comparable pairs -> vacuous agreement";
}

TEST(SiteDistributionError, ZeroForMatchingDistributions) {
  DynamicCallGraph Perfect, Sampled;
  Perfect.addSample({7, 1}, 80);
  Perfect.addSample({7, 2}, 20);
  Sampled.addSample({7, 1}, 8);
  Sampled.addSample({7, 2}, 2);
  EXPECT_NEAR(siteDistributionError(Sampled, Perfect), 0.0, 1e-9);
}

TEST(SiteDistributionError, MaxForUnsampledSites) {
  DynamicCallGraph Perfect, Sampled;
  Perfect.addSample({7, 1}, 80);
  EXPECT_NEAR(siteDistributionError(Sampled, Perfect), 2.0, 1e-9);
}

TEST(SiteDistributionError, MeasuresSkewMismatch) {
  DynamicCallGraph Perfect, Sampled;
  Perfect.addSample({7, 1}, 50);
  Perfect.addSample({7, 2}, 50);
  Sampled.addSample({7, 1}, 100); // Sampler saw only one target.
  // |1.0-0.5| + |0-0.5| = 1.0.
  EXPECT_NEAR(siteDistributionError(Sampled, Perfect), 1.0, 1e-9);
}

TEST(SiteDistributionError, AveragesOverSites) {
  DynamicCallGraph Perfect, Sampled;
  Perfect.addSample({1, 1}, 10); // Site 1: matched exactly.
  Sampled.addSample({1, 1}, 99);
  Perfect.addSample({2, 2}, 10); // Site 2: never sampled.
  EXPECT_NEAR(siteDistributionError(Sampled, Perfect), 1.0, 1e-9);
}

TEST(Decay, HalvesWeightsAndDropsDust) {
  DynamicCallGraph DCG = graph({{0, 100}, {1, 1}});
  DCG.decay(0.5);
  EXPECT_EQ(DCG.weight({0, 0}), 50u);
  EXPECT_EQ(DCG.weight({1, 1}), 0u) << "decayed-to-zero edges drop";
  EXPECT_EQ(DCG.numEdges(), 1u);
  EXPECT_EQ(DCG.totalWeight(), 50u);
}

TEST(Decay, RepeatedDecayConvergesToEmpty) {
  DynamicCallGraph DCG = graph({{0, 1000}});
  for (int I = 0; I != 30; ++I)
    DCG.decay(0.5);
  EXPECT_TRUE(DCG.empty());
}

TEST(Decay, PreservesRelativeOrder) {
  DynamicCallGraph DCG = graph({{0, 1000}, {1, 500}, {2, 100}});
  DCG.decay(0.9);
  EXPECT_GT(DCG.weight({0, 0}), DCG.weight({1, 1}));
  EXPECT_GT(DCG.weight({1, 1}), DCG.weight({2, 2}));
}
