//===- tests/MetricsTest.cpp - additional accuracy metric tests -----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/DynamicCallGraph.h"
#include "profiling/Metrics.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::prof;

namespace {

DCGSnapshot graph(std::initializer_list<std::pair<uint32_t, uint64_t>>
                      EdgesAndWeights) {
  std::vector<DCGSnapshot::Edge> Edges;
  for (auto [Id, W] : EdgesAndWeights)
    Edges.push_back({{Id, Id}, W});
  return DCGSnapshot::fromEdges(std::move(Edges));
}

DynamicCallGraph liveGraph(std::initializer_list<std::pair<uint32_t, uint64_t>>
                               EdgesAndWeights) {
  DynamicCallGraph DCG;
  for (auto [Id, W] : EdgesAndWeights)
    DCG.addSample({Id, Id}, W);
  return DCG;
}

} // namespace

TEST(HotEdgeCoverage, FullWhenAllHotEdgesPresent) {
  DCGSnapshot Perfect = graph({{0, 100}, {1, 50}, {2, 1}});
  DCGSnapshot Sampled = graph({{0, 3}, {1, 1}});
  EXPECT_DOUBLE_EQ(hotEdgeCoverage(Sampled, Perfect, 2), 1.0);
}

TEST(HotEdgeCoverage, PenalizesMissingHotEdges) {
  DCGSnapshot Perfect = graph({{0, 100}, {1, 50}, {2, 25}, {3, 12}});
  DCGSnapshot Sampled = graph({{0, 10}, {3, 1}});
  // Of the top 4, edges 0 and 3 are present.
  EXPECT_DOUBLE_EQ(hotEdgeCoverage(Sampled, Perfect, 4), 0.5);
}

TEST(HotEdgeCoverage, IgnoresWeightsOnlyPresence) {
  // Garbled weights don't matter to coverage — the old inliner's view.
  DCGSnapshot Perfect = graph({{0, 100}, {1, 99}});
  DCGSnapshot Garbled = graph({{0, 1}, {1, 1000}});
  EXPECT_DOUBLE_EQ(hotEdgeCoverage(Garbled, Perfect, 2), 1.0);
}

TEST(HotEdgeCoverage, EmptyPerfectIsVacuouslyCovered) {
  DCGSnapshot Empty;
  EXPECT_DOUBLE_EQ(hotEdgeCoverage(Empty, Empty, 10), 1.0);
}

TEST(HotOrderAgreement, PerfectOrderScoresOne) {
  DCGSnapshot Perfect = graph({{0, 100}, {1, 50}, {2, 25}});
  DCGSnapshot Sampled = graph({{0, 9}, {1, 5}, {2, 2}});
  EXPECT_DOUBLE_EQ(hotOrderAgreement(Sampled, Perfect, 3), 1.0);
}

TEST(HotOrderAgreement, InvertedOrderScoresZero) {
  DCGSnapshot Perfect = graph({{0, 100}, {1, 50}, {2, 25}});
  DCGSnapshot Sampled = graph({{0, 1}, {1, 5}, {2, 9}});
  EXPECT_DOUBLE_EQ(hotOrderAgreement(Sampled, Perfect, 3), 0.0);
}

TEST(HotOrderAgreement, MissingEdgesCountAsZeroWeight) {
  DCGSnapshot Perfect = graph({{0, 100}, {1, 50}});
  DCGSnapshot Sampled = graph({{0, 5}});
  // Edge 1 missing => weight 0 < 5: order preserved.
  EXPECT_DOUBLE_EQ(hotOrderAgreement(Sampled, Perfect, 2), 1.0);
}

TEST(HotOrderAgreement, SampledTiesScoreHalf) {
  DCGSnapshot Perfect = graph({{0, 100}, {1, 50}});
  DCGSnapshot Sampled = graph({{0, 5}, {1, 5}});
  EXPECT_DOUBLE_EQ(hotOrderAgreement(Sampled, Perfect, 2), 0.5);
}

TEST(HotOrderAgreement, TrueTiesAreSkipped) {
  DCGSnapshot Perfect = graph({{0, 50}, {1, 50}});
  DCGSnapshot Sampled = graph({{0, 1}, {1, 99}});
  EXPECT_DOUBLE_EQ(hotOrderAgreement(Sampled, Perfect, 2), 1.0)
      << "no comparable pairs -> vacuous agreement";
}

TEST(SiteDistributionError, ZeroForMatchingDistributions) {
  DCGSnapshot Perfect = DCGSnapshot::fromEdges(
      {{{7, 1}, 80}, {{7, 2}, 20}});
  DCGSnapshot Sampled = DCGSnapshot::fromEdges({{{7, 1}, 8}, {{7, 2}, 2}});
  EXPECT_NEAR(siteDistributionError(Sampled, Perfect), 0.0, 1e-9);
}

TEST(SiteDistributionError, MaxForUnsampledSites) {
  DCGSnapshot Perfect = DCGSnapshot::fromEdges({{{7, 1}, 80}});
  DCGSnapshot Sampled;
  EXPECT_NEAR(siteDistributionError(Sampled, Perfect), 2.0, 1e-9);
}

TEST(SiteDistributionError, MeasuresSkewMismatch) {
  DCGSnapshot Perfect = DCGSnapshot::fromEdges(
      {{{7, 1}, 50}, {{7, 2}, 50}});
  // Sampler saw only one target.
  DCGSnapshot Sampled = DCGSnapshot::fromEdges({{{7, 1}, 100}});
  // |1.0-0.5| + |0-0.5| = 1.0.
  EXPECT_NEAR(siteDistributionError(Sampled, Perfect), 1.0, 1e-9);
}

TEST(SiteDistributionError, AveragesOverSites) {
  DCGSnapshot Perfect = DCGSnapshot::fromEdges(
      {{{1, 1}, 10}, {{2, 2}, 10}}); // Site 1 matched; site 2 unsampled.
  DCGSnapshot Sampled = DCGSnapshot::fromEdges({{{1, 1}, 99}});
  EXPECT_NEAR(siteDistributionError(Sampled, Perfect), 1.0, 1e-9);
}

TEST(Decay, HalvesWeightsAndDropsDust) {
  DynamicCallGraph DCG = liveGraph({{0, 100}, {1, 1}});
  DCG.decay(0.5);
  DCGSnapshot S = DCG.snapshot();
  EXPECT_EQ(S.weight({0, 0}), 50u);
  EXPECT_EQ(S.weight({1, 1}), 0u) << "decayed-to-zero edges drop";
  EXPECT_EQ(S.numEdges(), 1u);
  EXPECT_EQ(S.totalWeight(), 50u);
}

TEST(Decay, RepeatedDecayConvergesToEmpty) {
  DynamicCallGraph DCG = liveGraph({{0, 1000}});
  for (int I = 0; I != 30; ++I)
    DCG.decay(0.5);
  EXPECT_TRUE(DCG.empty());
}

TEST(Decay, PreservesRelativeOrder) {
  DynamicCallGraph DCG = liveGraph({{0, 1000}, {1, 500}, {2, 100}});
  DCG.decay(0.9);
  DCGSnapshot S = DCG.snapshot();
  EXPECT_GT(S.weight({0, 0}), S.weight({1, 1}));
  EXPECT_GT(S.weight({1, 1}), S.weight({2, 2}));
}
