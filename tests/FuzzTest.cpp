//===- tests/FuzzTest.cpp - differential fuzzing subsystem tests ---------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the src/fuzz subsystem: spec building and JSON round
// trips, shape knobs, the delta-debugging reducer (via a deliberately
// broken oracle with a planted violation), replayable artifacts, and
// the campaign driver's determinism across job counts.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Artifact.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Oracle.h"
#include "fuzz/ProgramGenerator.h"
#include "fuzz/Reducer.h"

#include "bytecode/Verifier.h"
#include "support/Json.h"
#include "telemetry/MetricRegistry.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace cbs;
using namespace cbs::fuzz;

namespace {

const Oracle &brokenOracle(OracleRegistry &Registry) {
  addBrokenOracleForTesting(Registry);
  const Oracle *O = Registry.find("broken");
  EXPECT_NE(O, nullptr);
  return *O;
}

} // namespace

//===----------------------------------------------------------------------===//
// Generator and spec
//===----------------------------------------------------------------------===//

TEST(ProgramSpec, GeneratedSpecsValidateAndBuild) {
  ProgramGenerator Gen;
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    ProgramSpec Spec = Gen.makeSpec(Seed);
    EXPECT_EQ(validateSpec(Spec), "") << "seed " << Seed;
    bc::Program P = buildProgram(Spec);
    bc::VerifyResult V = bc::verifyProgram(P);
    EXPECT_TRUE(V.ok()) << "seed " << Seed << ": " << V.str();
  }
}

TEST(ProgramSpec, JsonRoundTripIsExact) {
  ProgramGenerator Gen(ShapeConfig::threaded());
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    ProgramSpec Spec = Gen.makeSpec(Seed);
    json::JsonWriter W;
    writeSpec(Spec, W);
    std::string First = W.take();

    json::JsonParseResult Parsed = json::parseJson(First);
    ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
    std::string Error;
    ProgramSpec Back = parseSpec(*Parsed.Value, Error);
    ASSERT_EQ(Error, "");

    json::JsonWriter W2;
    writeSpec(Back, W2);
    EXPECT_EQ(First, W2.take()) << "seed " << Seed;
  }
}

TEST(ProgramSpec, ParseRejectsDanglingReferences) {
  ProgramSpec Spec = ProgramGenerator().makeSpec(3);
  json::JsonWriter W;
  writeSpec(Spec, W);
  // Corrupt a callee index beyond the method count.
  json::JsonParseResult Parsed = json::parseJson(W.take());
  ASSERT_TRUE(Parsed.ok());
  json::JsonValue Doc = *Parsed.Value;
  for (auto &[Key, Value] : Doc.Members)
    if (Key == "mainCalls" && !Value.Elements.empty())
      for (auto &[CKey, CValue] : Value.Elements[0].Members)
        if (CKey == "callee") {
          CValue.NumVal = 1000;
          CValue.Str = "1000";
        }
  std::string Error;
  parseSpec(Doc, Error);
  EXPECT_NE(Error, "");
}

TEST(ProgramGenerator, SameSeedSameSpecAcrossInstances) {
  ProgramGenerator A, B;
  for (uint64_t Seed : {1ull, 7ull, 42ull}) {
    json::JsonWriter WA, WB;
    writeSpec(A.makeSpec(Seed), WA);
    writeSpec(B.makeSpec(Seed), WB);
    EXPECT_EQ(WA.take(), WB.take());
  }
}

TEST(ProgramGenerator, ShapeKnobsBoundTheSpec) {
  ShapeConfig Shape;
  Shape.MinMethods = Shape.MaxMethods = 2;
  Shape.MinSteps = 1;
  Shape.MaxSteps = 3;
  Shape.MinVirtualImpls = Shape.MaxVirtualImpls = 1;
  Shape.MinMainCalls = Shape.MaxMainCalls = 2;
  Shape.MaxWorkerThreads = 2;
  ProgramGenerator Gen(Shape);
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    ProgramSpec Spec = Gen.makeSpec(Seed);
    EXPECT_EQ(Spec.Methods.size(), 2u);
    EXPECT_EQ(Spec.Impls.size(), 1u);
    EXPECT_EQ(Spec.MainCalls.size(), 2u);
    EXPECT_LE(Spec.Workers.size(), 2u);
    for (const MethodSpec &M : Spec.Methods)
      EXPECT_LE(M.Steps.size(), 3u);
  }
}

TEST(ProgramGenerator, ShapeJsonRoundTrip) {
  ShapeConfig Shape = ShapeConfig::threaded();
  Shape.MaxMethods = 11;
  json::JsonWriter W;
  writeShape(Shape, W);
  json::JsonParseResult Parsed = json::parseJson(W.take());
  ASSERT_TRUE(Parsed.ok());
  std::string Error;
  ShapeConfig Back = parseShape(*Parsed.Value, Error);
  EXPECT_EQ(Error, "");
  EXPECT_EQ(Back.MaxMethods, 11u);
  EXPECT_EQ(Back.MaxWorkerThreads, Shape.MaxWorkerThreads);
  EXPECT_EQ(Back.MaxCallRepeat, Shape.MaxCallRepeat);
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

// The planted violation: the broken oracle rejects any program that
// prints. Reduction must deliver a strictly smaller spec that still
// fails, and the fixpoint for this oracle is the minimal printing
// program (one impl, one method, one main call).
TEST(Reducer, PlantedViolationShrinksToMinimum) {
  OracleRegistry Registry;
  const Oracle &Broken = brokenOracle(Registry);

  ProgramSpec Spec = ProgramGenerator().makeSpec(1);
  bc::Program P = buildProgram(Spec);
  std::string Message = Broken.check({P, 1});
  ASSERT_NE(Message, "") << "the broken oracle must reject any printing "
                            "program";

  ReduceResult R = reduceSpec(Spec, Broken, 1, Message);
  EXPECT_LT(R.Spec.atomCount(), Spec.atomCount())
      << "reduction must strictly shrink the planted violation";
  EXPECT_EQ(R.Spec.atomCount(), 3u)
      << "fixpoint is impl + method + main call";
  EXPECT_GT(R.ChecksUsed, 0u);
  EXPECT_GT(R.Accepted, 0u);

  // The minimized program still fails the same oracle.
  bc::Program Reduced = buildProgram(R.Spec);
  EXPECT_TRUE(bc::verifyProgram(Reduced).ok());
  EXPECT_NE(Broken.check({Reduced, 1}), "");
  EXPECT_EQ(R.Message, Broken.check({Reduced, 1}));
}

TEST(Reducer, PassingProgramIsLeftAlone) {
  // Against a built-in oracle that the program satisfies, reduceSpec's
  // precondition is violated; emulate the caller's guard instead: no
  // reduction is attempted when check() passes.
  OracleRegistry Registry = OracleRegistry::builtin();
  ProgramSpec Spec = ProgramGenerator().makeSpec(2);
  bc::Program P = buildProgram(Spec);
  EXPECT_EQ(Registry.all()[0]->check({P, 2}), "");
}

TEST(Reducer, BudgetBoundsChecks) {
  OracleRegistry Registry;
  const Oracle &Broken = brokenOracle(Registry);
  ProgramSpec Spec = ProgramGenerator().makeSpec(5);
  ReduceOptions Options;
  Options.MaxChecks = 7;
  ReduceResult R = reduceSpec(Spec, Broken, 5, "planted", Options);
  EXPECT_LE(R.ChecksUsed, 7u);
}

//===----------------------------------------------------------------------===//
// Artifacts and replay
//===----------------------------------------------------------------------===//

TEST(Artifact, RoundTripPreservesEverything) {
  Artifact A;
  A.Seed = 99;
  A.Shape = ShapeConfig::threaded();
  A.OracleId = "output-stability";
  A.Message = "some \"quoted\" divergence";
  A.Spec = ProgramGenerator().makeSpec(99);

  std::string Text = writeArtifact(A);
  std::string Error;
  Artifact B = parseArtifact(Text, Error);
  ASSERT_EQ(Error, "");
  EXPECT_EQ(B.Seed, 99u);
  EXPECT_EQ(B.OracleId, "output-stability");
  EXPECT_EQ(B.Message, A.Message);
  EXPECT_EQ(B.Shape.MaxWorkerThreads, A.Shape.MaxWorkerThreads);
  EXPECT_EQ(writeArtifact(B), Text) << "artifact serialization is stable";
}

TEST(Artifact, ParseRejectsGarbage) {
  std::string Error;
  parseArtifact("not json", Error);
  EXPECT_NE(Error, "");
  parseArtifact("{\"version\": 2}", Error);
  EXPECT_NE(Error, "") << "unknown versions are rejected";
  parseArtifact("{\"version\": 1, \"oracle\": \"x\"}", Error);
  EXPECT_NE(Error, "") << "a spec is required";
}

TEST(Artifact, ReplayReproducesAReducedViolation) {
  OracleRegistry Registry;
  const Oracle &Broken = brokenOracle(Registry);

  ProgramSpec Spec = ProgramGenerator().makeSpec(4);
  std::string Message = Broken.check({buildProgram(Spec), 4});
  ASSERT_NE(Message, "");
  ReduceResult R = reduceSpec(Spec, Broken, 4, Message);

  Artifact A;
  A.Seed = 4;
  A.OracleId = "broken";
  A.Message = R.Message;
  A.Spec = R.Spec;

  // Through the serialized form, as `cbsvm fuzz --replay` would.
  std::string Error;
  Artifact Loaded = parseArtifact(writeArtifact(A), Error);
  ASSERT_EQ(Error, "");
  std::string Replayed = replayArtifact(Loaded, Registry, Error);
  EXPECT_EQ(Error, "");
  EXPECT_EQ(Replayed, R.Message) << "replay reproduces the exact violation";
}

TEST(Artifact, ReplayRejectsUnknownOracle) {
  Artifact A;
  A.OracleId = "no-such-oracle";
  A.Spec = ProgramGenerator().makeSpec(1);
  OracleRegistry Registry = OracleRegistry::builtin();
  std::string Error;
  replayArtifact(A, Registry, Error);
  EXPECT_NE(Error, "");
}

//===----------------------------------------------------------------------===//
// Campaign driver
//===----------------------------------------------------------------------===//

TEST(Fuzzer, CleanCampaignOnBuiltinOracles) {
  FuzzOptions Options;
  Options.Runs = 10;
  Options.SeedBase = 1;
  tel::MetricRegistry Metrics;
  std::ostringstream Log;
  FuzzReport Report =
      runFuzz(Options, OracleRegistry::builtin(), &Metrics, &Log);
  EXPECT_TRUE(Report.clean()) << Log.str();
  EXPECT_EQ(Report.Runs, 10u);
  // 10 runs x the 8 builtin oracles.
  EXPECT_EQ(Report.OracleChecks, 80u);
  EXPECT_EQ(Metrics.counter("fuzz.runs").Value, 10u);
  EXPECT_EQ(Metrics.counter("fuzz.oracle_checks").Value, 80u);
  EXPECT_EQ(Metrics.counter("fuzz.violations").Value, 0u);
}

TEST(Fuzzer, JobsDoNotChangeTheReport) {
  auto Campaign = [](unsigned Jobs) {
    FuzzOptions Options;
    Options.Runs = 12;
    Options.SeedBase = 50;
    Options.Jobs = Jobs;
    OracleRegistry Registry;
    addBrokenOracleForTesting(Registry);
    std::ostringstream Log;
    FuzzReport Report = runFuzz(Options, Registry, nullptr, &Log);
    return std::pair(Log.str(), Report.Violations.size());
  };
  auto Serial = Campaign(1);
  auto Parallel = Campaign(4);
  EXPECT_EQ(Serial.first, Parallel.first)
      << "log output must be byte-identical across job counts";
  EXPECT_EQ(Serial.second, Parallel.second);
}

TEST(Fuzzer, ViolationsCarryReplayableArtifacts) {
  FuzzOptions Options;
  Options.Runs = 3;
  Options.SeedBase = 1;
  Options.OracleFilter = "broken";
  OracleRegistry Registry;
  addBrokenOracleForTesting(Registry);
  tel::MetricRegistry Metrics;
  FuzzReport Report = runFuzz(Options, Registry, &Metrics, nullptr);
  ASSERT_EQ(Report.Violations.size(), 3u);
  EXPECT_EQ(Metrics.counter("fuzz.violations").Value, 3u);
  EXPECT_GT(Metrics.counter("fuzz.reduce_checks").Value, 0u);

  for (const Violation &V : Report.Violations) {
    EXPECT_LT(V.ReducedAtoms, V.OriginalAtoms);
    std::string Error;
    Artifact A = parseArtifact(V.ArtifactJson, Error);
    ASSERT_EQ(Error, "") << V.ArtifactJson;
    std::string Replayed = replayArtifact(A, Registry, Error);
    EXPECT_EQ(Error, "");
    EXPECT_EQ(Replayed, V.Message);
  }
}

TEST(Fuzzer, OracleFilterSelectsOne) {
  FuzzOptions Options;
  Options.Runs = 2;
  Options.OracleFilter = "profile-roundtrip";
  FuzzReport Report = runFuzz(Options, OracleRegistry::builtin());
  EXPECT_EQ(Report.OracleChecks, 2u) << "one oracle per run";
}
