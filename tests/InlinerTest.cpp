//===- tests/InlinerTest.cpp - bytecode inliner tests --------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// The inliner is a real bytecode transformation; these tests check its
// mechanics (locals remapping, return splicing, guard layout, budget /
// depth / recursion limits) and, most importantly, *semantic
// equivalence*: a program compiled through any inline plan must produce
// the same Print output as the original.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Printer.h"
#include "bytecode/Verifier.h"
#include "opt/Compiler.h"
#include "opt/InlineOracle.h"
#include "opt/Inliner.h"
#include "fuzz/ProgramGenerator.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::opt;

namespace {

/// Runs \p P with every method compiled through \p Plan at \p Level and
/// returns the output.
std::vector<int64_t> runWithPlan(const Program &P, const InlinePlan &Plan,
                                 int Level = 0,
                                 bool RunOptimizer = false) {
  vm::VMConfig Config;
  Config.MaxCycles = 500'000'000;
  Config.JITLevel = Level;
  auto Shared = std::make_shared<InlinePlan>(Plan);
  CompileOptions CO;
  CO.RunOptimizer = RunOptimizer;
  Config.CompileHook = makeCompileHook(Shared, Config.Costs, CO);
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();
  return VM.output();
}

std::vector<int64_t> runPlain(const Program &P) {
  return runWithPlan(P, InlinePlan());
}

/// Verifies the inlined body of every method under \p Plan.
void verifyAllInlined(const Program &P, const InlinePlan &Plan) {
  for (MethodId M = 0; M != P.numMethods(); ++M) {
    InlineResult R = inlineMethod(P, M, Plan);
    VerifyResult V = verifyMethodBody(P, M, R.Code, R.NumLocals);
    EXPECT_TRUE(V.ok()) << P.qualifiedName(M) << ":\n"
                        << V.str() << printCode(P, M, R.Code);
  }
}

} // namespace

TEST(Inliner, EmptyPlanIsIdentity) {
  Program P = fuzz::generateRandomProgram(1);
  InlinePlan Empty;
  for (MethodId M = 0; M != P.numMethods(); ++M) {
    InlineResult R = inlineMethod(P, M, Empty);
    EXPECT_EQ(R.Code.size(), P.method(M).Code.size());
    EXPECT_EQ(R.InlinedBodies, 0u);
  }
}

TEST(Inliner, DirectInlineRemovesCallAndPreservesSemantics) {
  ProgramBuilder PB;
  MethodId Callee = PB.declareStatic("callee", {ValKind::Int, ValKind::Int},
                                     /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(Callee);
    MB.iload(0).iload(1).isub().iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(9).iconst(4).invokeStatic(Callee).print();
    MB.finish();
  }
  Program P = PB.finish(Main);

  InlinePlan Plan;
  Plan.Decisions[0] = {InlineDecision::Kind::Direct, Callee, {}};

  InlineResult R = inlineMethod(P, Main, Plan);
  EXPECT_EQ(R.InlinedBodies, 1u);
  for (const Instruction &I : R.Code)
    EXPECT_FALSE(isCall(I.Op)) << "call should be gone";
  EXPECT_TRUE(verifyMethodBody(P, Main, R.Code, R.NumLocals).ok());

  EXPECT_EQ(runWithPlan(P, Plan), runPlain(P));
  EXPECT_EQ(runPlain(P), (std::vector<int64_t>{5}));
}

TEST(Inliner, CalleeWithBranchesAndLocalsRemapsCorrectly) {
  ProgramBuilder PB;
  // callee(n): loop computing n * 3 via additions, using locals.
  MethodId Callee = PB.declareStatic("callee", {ValKind::Int},
                                     /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(Callee);
    MB.iconst(0).istore(1);
    MB.iconst(3).istore(2);
    Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(2).ifLe(Exit);
    MB.iload(1).iload(0).iadd().istore(1);
    MB.iinc(2, -1).jump(Head);
    MB.bind(Exit).iload(1).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    // Caller uses the same local slots to catch remapping bugs.
    MB.iconst(100).istore(1);
    MB.iconst(7).invokeStatic(Callee).print();
    MB.iload(1).print(); // Caller's local 1 must be intact.
    MB.finish();
  }
  Program P = PB.finish(Main);

  InlinePlan Plan;
  Plan.Decisions[0] = {InlineDecision::Kind::Direct, Callee, {}};
  verifyAllInlined(P, Plan);
  EXPECT_EQ(runWithPlan(P, Plan), (std::vector<int64_t>{21, 100}));
}

TEST(Inliner, GuardedInlineHitAndMissPaths) {
  ProgramBuilder PB;
  ClassId A = PB.addClass("A", InvalidClassId, 0);
  ClassId B = PB.addClass("B", InvalidClassId, 0);
  SelectorId Sel = PB.addSelector("val", 1);
  MethodId MA = PB.declareVirtual(A, Sel, "", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(MA);
    MB.iconst(111).iret();
    MB.finish();
  }
  MethodId MB_ = PB.declareVirtual(B, Sel, "", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(MB_);
    MB.iconst(222).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.newObject(A).invokeVirtual(Sel).print(); // site 0
    MB.newObject(B).invokeVirtual(Sel).print(); // site 1
    MB.finish();
  }
  Program P = PB.finish(Main);

  // Guard only predicts A at both sites; B must fall back to the call.
  InlinePlan Plan;
  InlineDecision D;
  D.K = InlineDecision::Kind::Guarded;
  D.Guarded.push_back({MA, {A}});
  Plan.Decisions[0] = D;
  Plan.Decisions[1] = D;

  verifyAllInlined(P, Plan);
  EXPECT_EQ(runWithPlan(P, Plan), (std::vector<int64_t>{111, 222}));

  // The fallback call must keep its original site id so residual calls
  // profile correctly.
  InlineResult R = inlineMethod(P, Main, Plan);
  bool FoundSite1Fallback = false;
  for (const Instruction &I : R.Code)
    if (I.Op == Opcode::InvokeVirtual && I.Site == 1)
      FoundSite1Fallback = true;
  EXPECT_TRUE(FoundSite1Fallback);
}

TEST(Inliner, MultiTargetGuardChainsDispatchCorrectly) {
  ProgramBuilder PB;
  ClassId A = PB.addClass("A", InvalidClassId, 0);
  ClassId B = PB.addClass("B", InvalidClassId, 0);
  ClassId C = PB.addClass("C", InvalidClassId, 0);
  SelectorId Sel = PB.addSelector("val", 1);
  std::vector<MethodId> Impls;
  int32_t Val = 100;
  for (ClassId K : {A, B, C}) {
    MethodId M = PB.declareVirtual(K, Sel, "", {}, /*HasResult=*/true);
    MethodBuilder MB = PB.defineMethod(M);
    MB.iconst(Val).iret();
    Val += 100;
    MB.finish();
    Impls.push_back(M);
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    for (ClassId K : {A, B, C, B, A})
      MB.newObject(K).invokeVirtual(Sel).print();
    MB.finish();
  }
  Program P = PB.finish(Main);

  InlinePlan Plan;
  InlineDecision D;
  D.K = InlineDecision::Kind::Guarded;
  D.Guarded.push_back({Impls[0], {A}});
  D.Guarded.push_back({Impls[1], {B}});
  for (SiteId S = 0; S != 5; ++S)
    Plan.Decisions[S] = D;

  verifyAllInlined(P, Plan);
  EXPECT_EQ(runWithPlan(P, Plan),
            (std::vector<int64_t>{100, 200, 300, 200, 100}));
}

TEST(Inliner, RecursionIsCutNotInfinite) {
  ProgramBuilder PB;
  MethodId F = PB.declareStatic("f", {ValKind::Int}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(F);
    Label Base = MB.newLabel();
    MB.iload(0).ifLe(Base);
    MB.iload(0).iconst(1).isub().invokeStatic(F).iconst(1).iadd().iret();
    MB.bind(Base).iconst(0).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(6).invokeStatic(F).print();
    MB.finish();
  }
  Program P = PB.finish(Main);

  InlinePlan Plan;
  // Ask for f to be inlined everywhere, including inside itself.
  for (SiteId S = 0; S != P.numSites(); ++S)
    Plan.Decisions[S] = {InlineDecision::Kind::Direct, F, {}};

  verifyAllInlined(P, Plan);
  EXPECT_EQ(runWithPlan(P, Plan), (std::vector<int64_t>{6}));
}

TEST(Inliner, DepthLimitBoundsNesting) {
  // Chain a -> b -> c -> d; with MaxDepth 2 only two levels splice.
  ProgramBuilder PB;
  std::vector<MethodId> Chain;
  for (int I = 0; I != 4; ++I)
    Chain.push_back(PB.declareStatic("m" + std::to_string(I), {},
                                     /*HasResult=*/true));
  for (int I = 0; I != 4; ++I) {
    MethodBuilder MB = PB.defineMethod(Chain[I]);
    if (I == 3)
      MB.iconst(42);
    else
      MB.invokeStatic(Chain[I + 1]);
    MB.iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Chain[0]).print();
    MB.finish();
  }
  Program P = PB.finish(Main);

  InlinePlan Plan;
  for (SiteId S = 0; S != P.numSites(); ++S) {
    const SiteInfo &Info = P.site(S);
    const Instruction &I = P.method(Info.Caller).Code[Info.PC];
    Plan.Decisions[S] = {InlineDecision::Kind::Direct,
                         static_cast<MethodId>(I.A),
                         {}};
  }

  InlinerOptions Opts;
  Opts.MaxDepth = 2;
  InlineResult R = inlineMethod(P, Main, Plan, Opts);
  EXPECT_EQ(R.InlinedBodies, 2u);
  bool HasResidualCall = false;
  for (const Instruction &I : R.Code)
    HasResidualCall |= isCall(I.Op);
  EXPECT_TRUE(HasResidualCall);
  EXPECT_EQ(runWithPlan(P, Plan), (std::vector<int64_t>{42}));
}

TEST(Inliner, SizeBudgetFallsBackToCalls) {
  ProgramBuilder PB;
  MethodId Big = PB.declareStatic("big", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(Big);
    for (int I = 0; I != 60; ++I)
      MB.iconst(I).istore(1);
    MB.iconst(1).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    for (int I = 0; I != 10; ++I)
      MB.invokeStatic(Big).print();
    MB.finish();
  }
  Program P = PB.finish(Main);

  InlinePlan Plan;
  for (SiteId S = 0; S != P.numSites(); ++S)
    Plan.Decisions[S] = {InlineDecision::Kind::Direct, Big, {}};

  InlinerOptions Opts;
  Opts.MaxResultInstructions = 300;
  InlineResult R = inlineMethod(P, Main, Plan, Opts);
  EXPECT_GT(R.BudgetSkips, 0u);
  EXPECT_LE(R.Code.size(), 300u + 130u); // Budget plus one body of slack.
  EXPECT_TRUE(verifyMethodBody(P, Main, R.Code, R.NumLocals).ok());
}

TEST(Inliner, CompileMethodTracksCostAndScale) {
  Program P = fuzz::generateRandomProgram(3);
  InlinePlan Plan = TrivialOracle().plan(P, prof::DCGSnapshot());
  vm::CostModel Costs;
  vm::CompiledMethod L0 =
      compileMethod(P, P.entryMethod(), 0, Plan, Costs);
  vm::CompiledMethod L2 =
      compileMethod(P, P.entryMethod(), 2, Plan, Costs);
  EXPECT_LT(L2.ScaleQ8, L0.ScaleQ8);
  EXPECT_GT(L2.CompileCostCycles, L0.CompileCostCycles);
}

//===----------------------------------------------------------------------===//
// Differential equivalence over random programs and oracles
//===----------------------------------------------------------------------===//

class InlineDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InlineDifferentialTest, OraclePlansPreserveSemantics) {
  Program P = fuzz::generateRandomProgram(GetParam());
  ASSERT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).str();
  std::vector<int64_t> Expected = runPlain(P);

  // Perfect profile to drive the profile-directed oracles.
  vm::VMConfig ExConfig;
  ExConfig.Profiler.Kind = vm::ProfilerKind::Exhaustive;
  ExConfig.Profiler.ChargeExhaustiveCounters = false;
  vm::VirtualMachine ExVM(P, ExConfig);
  ExVM.run();
  prof::DCGSnapshot DCG = ExVM.profile();

  TrivialOracle Trivial;
  OldJikesOracle Old;
  NewJikesOracle New;
  J9Oracle J9;
  for (const InlineOracle *O :
       std::initializer_list<const InlineOracle *>{&Trivial, &Old, &New,
                                                   &J9}) {
    InlinePlan Plan = O->plan(P, DCG);
    verifyAllInlined(P, Plan);
    EXPECT_EQ(runWithPlan(P, Plan, /*Level=*/0), Expected)
        << "oracle " << O->name();
    EXPECT_EQ(runWithPlan(P, Plan, /*Level=*/2, /*RunOptimizer=*/true),
              Expected)
        << "oracle " << O->name() << " with optimizer";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InlineDifferentialTest,
                         ::testing::Range<uint64_t>(1, 26));
