//===- tests/CodePatchingTest.cpp - code-patching baseline tests ---------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/CodePatchingProfiler.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::prof;

TEST(CodePatching, NotListeningUntilPromoted) {
  CodePatchingProfiler CP(4);
  EXPECT_FALSE(CP.isListening(0));
  CP.onMethodPromoted(0, /*NowCycles=*/100);
  EXPECT_TRUE(CP.isListening(0));
  EXPECT_FALSE(CP.isListening(1));
  EXPECT_EQ(CP.methodsInstrumented(), 1u);
}

TEST(CodePatching, ListenerUninstallsAfterQuota) {
  CodePatchingParams Params;
  Params.SamplesPerMethod = 3;
  CodePatchingProfiler CP(2, Params);
  DynamicCallGraph Repo;
  CP.onMethodPromoted(0, 0);
  CP.onListenedEntry(0, {5, 0}, 100, Repo);
  CP.onListenedEntry(0, {5, 0}, 200, Repo);
  EXPECT_TRUE(CP.isListening(0));
  CP.onListenedEntry(0, {6, 0}, 300, Repo);
  EXPECT_FALSE(CP.isListening(0)) << "listener must patch itself out";
  EXPECT_EQ(CP.listenerExecutions(), 3u);
  EXPECT_EQ(Repo.numEdges(), 2u);
}

TEST(CodePatching, RepromotionIsIdempotent) {
  CodePatchingParams Params;
  Params.SamplesPerMethod = 1;
  CodePatchingProfiler CP(1, Params);
  DynamicCallGraph Repo;
  CP.onMethodPromoted(0, 0);
  CP.onListenedEntry(0, {1, 0}, 10, Repo);
  EXPECT_FALSE(CP.isListening(0));
  // A second promotion must not reinstall the listener (Done state).
  CP.onMethodPromoted(0, 20);
  EXPECT_FALSE(CP.isListening(0));
  EXPECT_EQ(CP.methodsInstrumented(), 1u);
}

TEST(CodePatching, FrequencyCorrectionWeighsHotMethodsMore) {
  // Two methods each collect 4 samples, but the hot one collects them
  // over 10x fewer cycles: its edges must end up ~10x heavier.
  CodePatchingParams Params;
  Params.SamplesPerMethod = 4;
  CodePatchingProfiler CP(2, Params);
  DynamicCallGraph Repo;
  CP.onMethodPromoted(0, 0);
  CP.onMethodPromoted(1, 0);
  for (uint64_t I = 1; I <= 4; ++I)
    CP.onListenedEntry(0, {1, 0}, I * 100, Repo); // hot: 400 cycles
  for (uint64_t I = 1; I <= 4; ++I)
    CP.onListenedEntry(1, {2, 1}, I * 1000, Repo); // cold: 4000 cycles
  uint64_t HotWeight = Repo.snapshot().weight({1, 0});
  uint64_t ColdWeight = Repo.snapshot().weight({2, 1});
  ASSERT_GT(ColdWeight, 0u);
  EXPECT_NEAR(static_cast<double>(HotWeight) / ColdWeight, 10.0, 1.0);
}

TEST(CodePatching, FlushIncompleteDrainsPartialWindows) {
  CodePatchingParams Params;
  Params.SamplesPerMethod = 100;
  CodePatchingProfiler CP(1, Params);
  DynamicCallGraph Repo;
  CP.onMethodPromoted(0, 0);
  CP.onListenedEntry(0, {3, 0}, 50, Repo);
  EXPECT_EQ(Repo.numEdges(), 0u) << "window still open";
  CP.flushIncomplete(1000, Repo);
  EXPECT_EQ(Repo.numEdges(), 1u);
  EXPECT_FALSE(CP.isListening(0));
  // Second flush is a no-op.
  CP.flushIncomplete(2000, Repo);
  EXPECT_EQ(Repo.numEdges(), 1u);
}

TEST(CodePatching, DistinctEdgesWithinOneMethod) {
  CodePatchingParams Params;
  Params.SamplesPerMethod = 6;
  CodePatchingProfiler CP(1, Params);
  DynamicCallGraph Repo;
  CP.onMethodPromoted(0, 0);
  // Entered from three different call sites with a 3:2:1 split.
  for (int I = 0; I != 3; ++I)
    CP.onListenedEntry(0, {10, 0}, 10 * (I + 1), Repo);
  for (int I = 0; I != 2; ++I)
    CP.onListenedEntry(0, {11, 0}, 40 + 10 * I, Repo);
  CP.onListenedEntry(0, {12, 0}, 60, Repo);
  ASSERT_EQ(Repo.numEdges(), 3u);
  prof::DCGSnapshot S = Repo.snapshot();
  EXPECT_GT(S.weight({10, 0}), S.weight({11, 0}));
  EXPECT_GT(S.weight({11, 0}), S.weight({12, 0}));
}
