//===- tests/DCGConcurrencyTest.cpp - sharded DCG concurrency tests -------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// Real OS-thread stress over the sharded profile repository: concurrent
// buffered writers, snapshot isolation under mutation, and the
// determinism contract — an 8-shard repository written by racing
// threads serializes byte-identically to a serial 1-shard one. These
// are the tests the CBSVM_SANITIZE=thread stage of scripts/check.sh
// runs under TSan.
//
//===----------------------------------------------------------------------===//

#include "profiling/DynamicCallGraph.h"
#include "profiling/ProfileCodec.h"
#include "profiling/SampleBuffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cbs;
using namespace cbs::prof;

namespace {

/// The deterministic per-thread workload: thread T's I-th sample. Keeps
/// edges overlapping across threads so shards and map slots contend.
CallEdge edgeFor(unsigned Thread, unsigned I) {
  uint32_t Site = (I * 7 + Thread * 3) % 97;
  return {Site, Site % 11};
}

} // namespace

TEST(DCGConcurrency, ConcurrentBufferedWritersLoseNothing) {
  constexpr unsigned NumThreads = 8;
  constexpr unsigned SamplesPerThread = 20'000;
  DynamicCallGraph Repo(8);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&Repo, T] {
      SampleBuffer Buffer(64);
      for (unsigned I = 0; I != SamplesPerThread; ++I)
        if (Buffer.append(edgeFor(T, I)))
          Buffer.flushInto(Repo);
      Buffer.flushInto(Repo);
      EXPECT_EQ(Buffer.droppedCount(), 0u);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Repo.totalWeight(), uint64_t(NumThreads) * SamplesPerThread);
}

TEST(DCGConcurrency, UnbufferedWritersAndMergeRace) {
  // addSample and merge from different threads, no buffers: the raw
  // shard-locking paths.
  DynamicCallGraph Repo(4);
  DynamicCallGraph Side;
  for (unsigned I = 0; I != 100; ++I)
    Side.addSample(edgeFor(9, I));
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 4; ++T)
    Threads.emplace_back([&Repo, T] {
      for (unsigned I = 0; I != 5'000; ++I)
        Repo.addSample(edgeFor(T, I));
    });
  Threads.emplace_back([&Repo, &Side] {
    for (unsigned I = 0; I != 50; ++I)
      Repo.merge(Side);
  });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Repo.totalWeight(), 4u * 5'000 + 50u * Side.totalWeight());
}

TEST(DCGConcurrency, SnapshotsAreBatchAtomic) {
  // A reader snapshotting mid-run must always see a whole number of
  // flushed batches: addBatch holds every touched shard lock while a
  // snapshot needs all of them, so a half-applied batch is never
  // observable.
  constexpr unsigned BatchSize = 32;
  constexpr unsigned NumBatches = 400;
  DynamicCallGraph Repo(8);
  std::atomic<bool> Done{false};
  std::thread Writer([&] {
    SampleBuffer Buffer(BatchSize);
    for (unsigned I = 0; I != NumBatches * BatchSize; ++I)
      if (Buffer.append(edgeFor(0, I)))
        Buffer.flushInto(Repo);
    Buffer.flushInto(Repo);
    Done.store(true, std::memory_order_release);
  });
  // Loop until the writer is done AND we got at least one snapshot in:
  // under load the writer can finish before this thread is scheduled,
  // and a post-completion snapshot still must see whole batches.
  unsigned Reads = 0;
  while (!Done.load(std::memory_order_acquire) || Reads == 0) {
    DCGSnapshot S = Repo.snapshot();
    EXPECT_EQ(S.totalWeight() % BatchSize, 0u)
        << "snapshot observed a torn batch";
    ++Reads;
  }
  Writer.join();
  EXPECT_GT(Reads, 0u);
  EXPECT_EQ(Repo.snapshot().totalWeight(),
            uint64_t(NumBatches) * BatchSize);
}

TEST(DCGConcurrency, SnapshotIsImmutableUnderConcurrentWrites) {
  DynamicCallGraph Repo(8);
  for (unsigned I = 0; I != 500; ++I)
    Repo.addSample(edgeFor(1, I));
  DCGSnapshot Before = Repo.snapshot();
  uint64_t FrozenTotal = Before.totalWeight();
  std::vector<DCGSnapshot::Edge> FrozenEdges = Before.sortedEdges();
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 4; ++T)
    Threads.emplace_back([&Repo, T] {
      for (unsigned I = 0; I != 2'000; ++I)
        Repo.addSample(edgeFor(T, I));
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Before.totalWeight(), FrozenTotal);
  EXPECT_EQ(Before.sortedEdges(), FrozenEdges);
  EXPECT_GT(Repo.snapshot().totalWeight(), FrozenTotal);
}

TEST(DCGConcurrency, ShardedConcurrentMatchesSerialBitwise) {
  // The determinism contract behind the check.sh cmp stage: the same
  // logical samples produce byte-identical serialized profiles whether
  // they went through 1 shard on 1 thread or 8 shards on 8 racing
  // threads, in any interleaving.
  constexpr unsigned NumThreads = 8;
  constexpr unsigned SamplesPerThread = 10'000;
  DynamicCallGraph Serial(1);
  for (unsigned T = 0; T != NumThreads; ++T)
    for (unsigned I = 0; I != SamplesPerThread; ++I)
      Serial.addSample(edgeFor(T, I));

  DynamicCallGraph Sharded(8);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&Sharded, T] {
      SampleBuffer Buffer(128);
      for (unsigned I = 0; I != SamplesPerThread; ++I)
        if (Buffer.append(edgeFor(T, I)))
          Buffer.flushInto(Sharded);
      Buffer.flushInto(Sharded);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(ProfileCodec::encode(Sharded.snapshot()),
            ProfileCodec::encode(Serial.snapshot()));
}

TEST(DCGConcurrency, ConcurrentSnapshotsSeeMonotoneTotals) {
  // Weights only grow while no decay/clear runs, so a reader's
  // successive snapshots must never go backwards.
  DynamicCallGraph Repo(8);
  std::atomic<bool> Done{false};
  std::thread Writer([&] {
    for (unsigned I = 0; I != 30'000; ++I)
      Repo.addSample(edgeFor(2, I));
    Done.store(true, std::memory_order_release);
  });
  uint64_t Last = 0;
  while (!Done.load(std::memory_order_acquire)) {
    uint64_t Now = Repo.snapshot().totalWeight();
    EXPECT_GE(Now, Last);
    Last = Now;
  }
  Writer.join();
  EXPECT_EQ(Repo.snapshot().totalWeight(), 30'000u);
}
