//===- tests/OptimizerTest.cpp - optimizer pass tests --------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Verifier.h"
#include "opt/Inliner.h"
#include "opt/Optimizer.h"
#include "opt/Passes.h"
#include "fuzz/ProgramGenerator.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::opt;

namespace {

using O = Opcode;
using I = Instruction;

/// A one-method program context for pass tests (the passes need a
/// Program for call signatures).
struct Ctx {
  Ctx() {
    ProgramBuilder PB;
    Helper = PB.declareStatic("h", {ValKind::Int}, /*HasResult=*/true);
    {
      MethodBuilder MB = PB.defineMethod(Helper);
      MB.iload(0).iret();
      MB.finish();
    }
    MethodId Main = PB.declareStatic("main");
    {
      MethodBuilder MB = PB.defineMethod(Main);
      MB.finish();
    }
    P.emplace(PB.finish(Main));
  }
  MethodId Helper;
  std::optional<Program> P;
};

} // namespace

//===----------------------------------------------------------------------===//
// foldConstants
//===----------------------------------------------------------------------===//

TEST(FoldConstants, FoldsBinops) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::IConst, 6}, {O::IConst, 7}, {O::IMul}, {O::Print}, {O::Return}};
  EXPECT_TRUE(foldConstants(*C.P, Code));
  removeNops(*C.P, Code);
  ASSERT_EQ(Code.size(), 3u);
  EXPECT_EQ(Code[0].Op, O::IConst);
  EXPECT_EQ(Code[0].A, 42);
}

TEST(FoldConstants, NeverFoldsTrappingDivision) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::IConst, 6}, {O::IConst, 0}, {O::IDiv}, {O::Print}, {O::Return}};
  EXPECT_FALSE(foldConstants(*C.P, Code));
  EXPECT_EQ(Code[2].Op, O::IDiv) << "div-by-zero trap must be preserved";
}

TEST(FoldConstants, FoldsDivisionByNonzero) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::IConst, 42}, {O::IConst, 7}, {O::IDiv}, {O::Print}, {O::Return}};
  EXPECT_TRUE(foldConstants(*C.P, Code));
  removeNops(*C.P, Code);
  EXPECT_EQ(Code[0].A, 6);
}

TEST(FoldConstants, SkipsWhenPatternSpansBranchTarget) {
  Ctx C;
  // Someone jumps between the two constants: folding would break them.
  std::vector<Instruction> Code = {
      {O::Goto, 2},   // 0
      {O::IConst, 1}, // 1 (dead, but makes pc 2 a pattern middle)
      {O::IConst, 2}, // 2 <- branch target
      {O::IAdd},      // 3: would need operands from both paths
      {O::Print},     {O::Return}};
  // Target at pc 2 means Code[1], Code[2] cannot both be nop'd... the
  // implementation requires I-1 (pc 2) to not be a target: it is, so
  // nothing happens to the pattern at pc 3.
  foldConstants(*C.P, Code);
  EXPECT_EQ(Code[3].Op, O::IAdd);
}

TEST(FoldConstants, FoldsConstantConditions) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::IConst, 0}, {O::IfEq, 3}, {O::Nop}, {O::IConst, 1},
      {O::Print},     {O::Return}};
  EXPECT_TRUE(foldConstants(*C.P, Code));
  EXPECT_EQ(Code[1].Op, O::Goto) << "ifeq of constant 0 is always taken";
  std::vector<Instruction> Code2 = {
      {O::IConst, 5}, {O::IfEq, 3}, {O::Nop}, {O::IConst, 1},
      {O::Print},     {O::Return}};
  EXPECT_TRUE(foldConstants(*C.P, Code2));
  EXPECT_EQ(Code2[1].Op, O::Nop) << "ifeq of constant 5 never taken";
}

TEST(FoldConstants, AlgebraicIdentities) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::ILoad, 0}, {O::IConst, 0}, {O::IAdd}, {O::Print}, {O::Return}};
  EXPECT_TRUE(foldConstants(*C.P, Code));
  removeNops(*C.P, Code);
  ASSERT_EQ(Code.size(), 3u);
  EXPECT_EQ(Code[0].Op, O::ILoad);
}

TEST(FoldConstants, WrapAroundMatchesInterpreter) {
  Ctx C;
  // INT32_MAX + 1 does not fit an IConst immediate: must not fold.
  std::vector<Instruction> Code = {{O::IConst, INT32_MAX},
                                   {O::IConst, 1},
                                   {O::IAdd},
                                   {O::Print},
                                   {O::Return}};
  EXPECT_FALSE(foldConstants(*C.P, Code));
}

//===----------------------------------------------------------------------===//
// propagateLocalConstants
//===----------------------------------------------------------------------===//

TEST(LocalConstProp, PropagatesThroughStores) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::IConst, 9}, {O::IStore, 0}, {O::ILoad, 0}, {O::Print},
      {O::Return}};
  EXPECT_TRUE(propagateLocalConstants(*C.P, Code));
  EXPECT_EQ(Code[2].Op, O::IConst);
  EXPECT_EQ(Code[2].A, 9);
}

TEST(LocalConstProp, TracksIInc) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::IConst, 9}, {O::IStore, 0}, {O::IInc, 0, 5}, {O::ILoad, 0},
      {O::Print},     {O::Return}};
  EXPECT_TRUE(propagateLocalConstants(*C.P, Code));
  EXPECT_EQ(Code[3].Op, O::IConst);
  EXPECT_EQ(Code[3].A, 14);
}

TEST(LocalConstProp, ResetsAtBranchTargets) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::IConst, 9}, {O::IStore, 0},
      {O::ILoad, 1},  {O::IfEq, 6},     // Some branch...
      {O::IConst, 1}, {O::IStore, 0},   // ...that may change local 0.
      {O::ILoad, 0},                    // 6: merge point, value unknown.
      {O::Print},     {O::Return}};
  propagateLocalConstants(*C.P, Code);
  EXPECT_EQ(Code[6].Op, O::ILoad) << "merge point must not be rewritten";
}

TEST(LocalConstProp, CallsDoNotClobberLocals) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::IConst, 9},
      {O::IStore, 0},
      {O::IConst, 1},
      I(O::InvokeStatic, static_cast<int32_t>(C.Helper), 1, 0),
      {O::IStore, 1},
      {O::ILoad, 0},
      {O::Print},
      {O::Return}};
  EXPECT_TRUE(propagateLocalConstants(*C.P, Code));
  EXPECT_EQ(Code[5].Op, O::IConst) << "locals are private to the frame";
}

//===----------------------------------------------------------------------===//
// simplifyBranches / removeUnreachable / removeNops / fuseWork
//===----------------------------------------------------------------------===//

TEST(SimplifyBranches, CollapsesGotoChains) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::Goto, 2}, {O::Return}, {O::Goto, 4}, {O::Return}, {O::Return}};
  EXPECT_TRUE(simplifyBranches(*C.P, Code));
  EXPECT_EQ(Code[0].A, 4);
}

TEST(SimplifyBranches, GotoToNextBecomesNop) {
  Ctx C;
  std::vector<Instruction> Code = {{O::Goto, 1}, {O::Return}};
  EXPECT_TRUE(simplifyBranches(*C.P, Code));
  EXPECT_EQ(Code[0].Op, O::Nop);
}

TEST(SimplifyBranches, LeavesGotoSelfLoops) {
  Ctx C;
  std::vector<Instruction> Code = {{O::Goto, 0}, {O::Return}};
  simplifyBranches(*C.P, Code);
  EXPECT_EQ(Code[0].Op, O::Goto);
  EXPECT_EQ(Code[0].A, 0);
}

TEST(RemoveUnreachable, NopsDeadCode) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::Goto, 3}, {O::IConst, 1}, {O::Print}, {O::Return}};
  EXPECT_TRUE(removeUnreachable(*C.P, Code));
  EXPECT_EQ(Code[1].Op, O::Nop);
  EXPECT_EQ(Code[2].Op, O::Nop);
  EXPECT_EQ(Code[3].Op, O::Return);
}

TEST(RemoveNops, CompactsAndRemapsBranches) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::Nop}, {O::ILoad, 0}, {O::IfEq, 5}, {O::Nop}, {O::Print},
      {O::Return}};
  // pc5 Return; Print at 4 needs a value... construct coherently:
  Code = {{O::Nop},      // 0
          {O::ILoad, 0}, // 1
          {O::IfEq, 5},  // 2 -> 5
          {O::Nop},      // 3
          {O::Goto, 5},  // 4 -> 5
          {O::Return}};  // 5
  EXPECT_TRUE(removeNops(*C.P, Code));
  ASSERT_EQ(Code.size(), 4u);
  EXPECT_EQ(Code[1].Op, O::IfEq);
  EXPECT_EQ(Code[1].A, 3);
  EXPECT_EQ(Code[2].A, 3);
}

TEST(FuseWork, MergesAdjacentWork) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::Work, 10}, {O::Work, 20}, {O::Work, 5}, {O::Return}};
  EXPECT_TRUE(fuseWork(*C.P, Code));
  removeNops(*C.P, Code);
  // One fusion pass merges pairs; run to fixpoint.
  while (fuseWork(*C.P, Code))
    removeNops(*C.P, Code);
  ASSERT_EQ(Code.size(), 2u);
  EXPECT_EQ(Code[0].A, 35);
}

TEST(FuseWork, RespectsBranchTargets) {
  Ctx C;
  std::vector<Instruction> Code = {
      {O::Work, 10}, {O::Work, 20}, {O::Goto, 1}, {O::Return}};
  // pc1 is a branch target: fusing would change the looped work amount.
  EXPECT_FALSE(fuseWork(*C.P, Code));
}

//===----------------------------------------------------------------------===//
// Whole-pipeline differential tests
//===----------------------------------------------------------------------===//

namespace {

std::vector<int64_t> runAtLevel(const Program &P, int Level) {
  vm::VMConfig Config;
  Config.MaxCycles = 500'000'000;
  Config.JITLevel = Level;
  // Hook: no inlining, optimizer only.
  Config.CompileHook = [](const Program &Prog, MethodId Id,
                          int L) -> vm::CompiledMethod {
    vm::CostModel Costs;
    vm::CompiledMethod CM =
        vm::CodeCache::compileBaseline(Prog, Id, L, Costs);
    optimizeCode(Prog, CM.Code, L);
    return CM;
  };
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();
  return VM.output();
}

} // namespace

class OptimizerDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(OptimizerDifferentialTest, OutputUnchangedByOptimization) {
  Program P = fuzz::generateRandomProgram(GetParam());
  std::vector<int64_t> L0 = runAtLevel(P, 0);
  EXPECT_EQ(runAtLevel(P, 1), L0);
  EXPECT_EQ(runAtLevel(P, 2), L0);
}

TEST_P(OptimizerDifferentialTest, OptimizedCodeVerifies) {
  Program P = fuzz::generateRandomProgram(GetParam() + 1000);
  for (MethodId M = 0; M != P.numMethods(); ++M) {
    std::vector<Instruction> Code = P.method(M).Code;
    optimizeCode(P, Code, 2);
    VerifyResult V =
        verifyMethodBody(P, M, Code, P.method(M).NumLocals);
    EXPECT_TRUE(V.ok()) << P.qualifiedName(M) << "\n" << V.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerDifferentialTest,
                         ::testing::Range<uint64_t>(1, 31));

TEST(Optimizer, Level0IsIdentity) {
  Program P = fuzz::generateRandomProgram(77);
  std::vector<Instruction> Code = P.method(P.entryMethod()).Code;
  OptimizerStats S = optimizeCode(P, Code, 0);
  EXPECT_FALSE(S.AnyChange);
  EXPECT_EQ(Code.size(), P.method(P.entryMethod()).Code.size());
}

TEST(Optimizer, InliningEnablesCrossBoundaryFolding) {
  // callee(k) { return k * 2; } called with constant 21: after inlining
  // plus optimization, the whole computation folds to a constant.
  ProgramBuilder PB;
  MethodId Callee = PB.declareStatic("callee", {ValKind::Int},
                                     /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(Callee);
    MB.iload(0).iconst(2).imul().iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(21).invokeStatic(Callee).print();
    MB.finish();
  }
  Program P = PB.finish(Main);

  InlinePlan Plan;
  Plan.Decisions[0] = {InlineDecision::Kind::Direct, Callee, {}};
  InlineResult R = inlineMethod(P, Main, Plan);
  optimizeCode(P, R.Code, 2);

  // The optimized body is just: iconst 42; print; return.
  ASSERT_LE(R.Code.size(), 3u);
  EXPECT_EQ(R.Code[0].Op, O::IConst);
  EXPECT_EQ(R.Code[0].A, 42);
}
