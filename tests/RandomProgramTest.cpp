//===- tests/RandomProgramTest.cpp - fuzzer-driven property tests --------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// Whole-system property tests over randomly generated programs: the
// generator must produce verifier-clean, terminating, deterministic
// programs, and the profilers must obey their invariants on arbitrary
// call structures (samples are a subset of executed calls; exhaustive
// weights equal call counts; profiling never perturbs program output).
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"

#include "bytecode/Verifier.h"
#include "profiling/OverlapMetric.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::bc;

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, GeneratedProgramsVerify) {
  Program P = fuzz::generateRandomProgram(GetParam());
  VerifyResult V = verifyProgram(P);
  EXPECT_TRUE(V.ok()) << V.str();
}

TEST_P(RandomProgramTest, GeneratedProgramsTerminateDeterministically) {
  Program P = fuzz::generateRandomProgram(GetParam());
  auto Run = [&] {
    vm::VMConfig Config;
    Config.MaxCycles = 200'000'000;
    vm::VirtualMachine VM(P, Config);
    EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();
    return std::pair(VM.output(), VM.stats().Cycles);
  };
  auto A = Run(), B = Run();
  EXPECT_EQ(A, B);
  EXPECT_FALSE(A.first.empty()) << "main always prints";
}

TEST_P(RandomProgramTest, SameSeedSameProgram) {
  Program A = fuzz::generateRandomProgram(GetParam());
  Program B = fuzz::generateRandomProgram(GetParam());
  ASSERT_EQ(A.numMethods(), B.numMethods());
  for (MethodId M = 0; M != A.numMethods(); ++M) {
    ASSERT_EQ(A.method(M).Code.size(), B.method(M).Code.size());
    for (size_t PC = 0; PC != A.method(M).Code.size(); ++PC) {
      EXPECT_EQ(A.method(M).Code[PC].Op, B.method(M).Code[PC].Op);
      EXPECT_EQ(A.method(M).Code[PC].A, B.method(M).Code[PC].A);
    }
  }
}

TEST_P(RandomProgramTest, ProfilersDoNotPerturbOutput) {
  Program P = fuzz::generateRandomProgram(GetParam());
  std::vector<std::vector<int64_t>> Outputs;
  for (vm::ProfilerKind Kind :
       {vm::ProfilerKind::None, vm::ProfilerKind::Exhaustive,
        vm::ProfilerKind::Timer, vm::ProfilerKind::CBS,
        vm::ProfilerKind::CodePatching}) {
    vm::VMConfig Config;
    Config.MaxCycles = 200'000'000;
    Config.Profiler.Kind = Kind;
    Config.Profiler.CBS.Stride = 2;
    Config.Profiler.CBS.SamplesPerTick = 4;
    vm::VirtualMachine VM(P, Config);
    EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();
    Outputs.push_back(VM.output());
  }
  for (size_t I = 1; I != Outputs.size(); ++I)
    EXPECT_EQ(Outputs[I], Outputs[0]);
}

TEST_P(RandomProgramTest, SampledProfileIsSubsetOfExhaustive) {
  Program P = fuzz::generateRandomProgram(GetParam());

  vm::VMConfig ExConfig;
  ExConfig.Profiler.Kind = vm::ProfilerKind::Exhaustive;
  ExConfig.Profiler.ChargeExhaustiveCounters = false;
  vm::VirtualMachine ExVM(P, ExConfig);
  ExVM.run();
  prof::DCGSnapshot Perfect = ExVM.profile();
  EXPECT_EQ(Perfect.totalWeight(), ExVM.stats().CallsExecuted);

  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 1;
  Config.Profiler.CBS.SamplesPerTick = 1000;
  // Short programs may take no samples; force a tiny timer period so at
  // least some windows open.
  Config.TimerPeriodCycles = 500;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  VM.profile().forEachEdge([&](prof::CallEdge E, uint64_t) {
    EXPECT_GT(Perfect.weight(E), 0u)
        << "sampled an edge that never executed";
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(1, 51));
