//===- tests/RandomProgramTest.cpp - fuzzer-driven property tests --------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// Whole-system property tests over randomly generated programs: the
// generator must produce verifier-clean, terminating, deterministic
// programs, and every built-in differential oracle must hold on
// arbitrary call structures — including the multi-threaded, phase-shift
// shapes the default knobs don't reach.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"
#include "fuzz/ProgramGenerator.h"

#include "bytecode/Verifier.h"
#include "profiling/OverlapMetric.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::bc;

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, GeneratedProgramsVerify) {
  Program P = fuzz::generateRandomProgram(GetParam());
  VerifyResult V = verifyProgram(P);
  EXPECT_TRUE(V.ok()) << V.str();
}

TEST_P(RandomProgramTest, GeneratedProgramsTerminateDeterministically) {
  Program P = fuzz::generateRandomProgram(GetParam());
  auto Run = [&] {
    vm::VMConfig Config;
    Config.MaxCycles = 200'000'000;
    vm::VirtualMachine VM(P, Config);
    EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();
    return std::pair(VM.output(), VM.stats().Cycles);
  };
  auto A = Run(), B = Run();
  EXPECT_EQ(A, B);
  EXPECT_FALSE(A.first.empty()) << "main always prints";
}

TEST_P(RandomProgramTest, SameSeedSameProgram) {
  Program A = fuzz::generateRandomProgram(GetParam());
  Program B = fuzz::generateRandomProgram(GetParam());
  ASSERT_EQ(A.numMethods(), B.numMethods());
  for (MethodId M = 0; M != A.numMethods(); ++M) {
    ASSERT_EQ(A.method(M).Code.size(), B.method(M).Code.size());
    for (size_t PC = 0; PC != A.method(M).Code.size(); ++PC) {
      EXPECT_EQ(A.method(M).Code[PC].Op, B.method(M).Code[PC].Op);
      EXPECT_EQ(A.method(M).Code[PC].A, B.method(M).Code[PC].A);
    }
  }
}

// The oracle registry is the productized form of the old hand-written
// property tests (profilers don't perturb output; sampled ⊆ exhaustive;
// profiles round-trip; shards don't matter) — every built-in invariant
// must hold on every seed.
TEST_P(RandomProgramTest, BuiltinOraclesHold) {
  Program P = fuzz::generateRandomProgram(GetParam());
  fuzz::OracleRegistry Registry = fuzz::OracleRegistry::builtin();
  for (const auto &O : Registry.all())
    EXPECT_EQ(O->check({P, GetParam()}), "") << "oracle " << O->id();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(1, 51));

class ThreadedProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThreadedProgramTest, ThreadedShapesVerifyAndHold) {
  fuzz::ProgramGenerator Gen(fuzz::ShapeConfig::threaded());
  Program P = Gen.generate(GetParam());
  VerifyResult V = verifyProgram(P);
  ASSERT_TRUE(V.ok()) << V.str();
  fuzz::OracleRegistry Registry = fuzz::OracleRegistry::builtin();
  for (const auto &O : Registry.all())
    EXPECT_EQ(O->check({P, GetParam()}), "") << "oracle " << O->id();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadedProgramTest,
                         ::testing::Range<uint64_t>(1, 26));

class LongLoopProgramTest : public ::testing::TestWithParam<uint64_t> {};

// The long-loop shape keeps frames inside loops long enough for
// installs and invalidations to land mid-loop — the programs where
// on-stack replacement actually fires. Verify the shape and hold the
// OSR invariant on every seed; the full oracle set would mostly re-run
// what RandomProgramTest already covers, only slower.
TEST_P(LongLoopProgramTest, LongLoopShapesVerifyAndOsrHolds) {
  fuzz::ProgramGenerator Gen(fuzz::ShapeConfig::longLoops());
  Program P = Gen.generate(GetParam());
  VerifyResult V = verifyProgram(P);
  ASSERT_TRUE(V.ok()) << V.str();
  fuzz::OracleRegistry Registry = fuzz::OracleRegistry::builtin();
  const fuzz::Oracle *Osr = Registry.find("osr-stability");
  ASSERT_NE(Osr, nullptr);
  EXPECT_EQ(Osr->check({P, GetParam()}), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, LongLoopProgramTest,
                         ::testing::Range<uint64_t>(1, 16));
