//===- tests/AOSTest.cpp - adaptive optimization tests -------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"
#include "bytecode/Builder.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::bc;

namespace {

/// A hot loop in one method plus a method executed once.
Program hotColdProgram() {
  ProgramBuilder PB;
  MethodId Cold = PB.declareStatic("coldOnce", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(Cold);
    MB.work(100).iconst(1).iret();
    MB.finish();
  }
  MethodId Hot = PB.declareStatic("hotLoop", {ValKind::Int},
                                  /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(Hot);
    MB.iconst(0).istore(1);
    Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    MB.work(50).iload(1).iconst(3).iadd().istore(1);
    MB.iinc(0, -1).jump(Head);
    MB.bind(Exit).iload(1).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    // Call hotLoop repeatedly: these runs leave OSR off, so recompiled
    // versions only take effect on fresh invocations, as in the paper's
    // VMs.
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Cold).istore(0);
    MB.iconst(2'000).istore(1);
    Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(1).ifLe(Exit);
    MB.iconst(200).invokeStatic(Hot).iload(0).iadd().istore(0);
    MB.iinc(1, -1).jump(Head);
    MB.bind(Exit).iload(0).print();
    MB.finish();
  }
  return PB.finish(Main);
}

} // namespace

TEST(AOS, PromotesHotMethodsOnly) {
  Program P = hotColdProgram();
  vm::VMConfig Config;
  Config.TimerPeriodCycles = 100'000;
  vm::VirtualMachine VM(P, Config);
  aos::AdaptiveSystem AOS(nullptr);
  VM.setClient(&AOS);
  EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();

  // hotLoop dominates execution: it must have been recompiled.
  MethodId Hot = 1, Cold = 0;
  EXPECT_GT(VM.codeCache().activeLevel(Hot), 0);
  EXPECT_EQ(VM.codeCache().activeLevel(Cold), 0)
      << "cold code stays at the baseline level";
  EXPECT_GT(AOS.stats().Recompilations, 0u);
  EXPECT_GT(AOS.stats().Ticks, 0u);
}

TEST(AOS, ReachesLevel2WithEnoughSamples) {
  Program P = hotColdProgram();
  vm::VMConfig Config;
  Config.TimerPeriodCycles = 50'000; // More ticks -> more samples.
  vm::VirtualMachine VM(P, Config);
  aos::AOSConfig AC;
  AC.Level1Samples = 2;
  AC.Level2Samples = 6;
  aos::AdaptiveSystem AOS(nullptr, AC);
  VM.setClient(&AOS);
  VM.run();
  EXPECT_EQ(VM.codeCache().activeLevel(1), 2);
  EXPECT_GT(AOS.stats().PromotionsToL2, 0u);
}

TEST(AOS, CostBenefitBlocksExpensiveCompiles) {
  Program P = hotColdProgram();
  vm::VMConfig Config;
  Config.TimerPeriodCycles = 100'000;
  vm::VirtualMachine VM(P, Config);
  aos::AOSConfig AC;
  AC.CostBenefitFactor = 1e9; // Nothing can ever pay for itself.
  aos::AdaptiveSystem AOS(nullptr, AC);
  VM.setClient(&AOS);
  VM.run();
  EXPECT_EQ(AOS.stats().Recompilations, 0u);
}

TEST(AOS, RecompiledCodeRunsFasterSameOutput) {
  Program P = hotColdProgram();
  auto Run = [&](bool Adaptive) {
    vm::VMConfig Config;
    Config.TimerPeriodCycles = 100'000;
    vm::VirtualMachine VM(P, Config);
    aos::AdaptiveSystem AOS(nullptr);
    if (Adaptive)
      VM.setClient(&AOS);
    VM.run();
    return std::pair(VM.output(), VM.stats().Cycles);
  };
  auto Baseline = Run(false);
  auto Adaptive = Run(true);
  EXPECT_EQ(Adaptive.first, Baseline.first)
      << "recompilation must not change semantics";
  EXPECT_LT(Adaptive.second, Baseline.second)
      << "optimized code must be faster in modelled cycles";
}

TEST(AOS, ProfileDirectedPlansInlineHotEdges) {
  // With a CBS profile and the new inliner, the hot callee inside the
  // loop should get inlined at recompilation, beating trivial plans.
  bc::Program P = wl::buildJess(wl::InputSize::Large, 7);
  auto Throughput = [&](const opt::InlineOracle *Oracle) {
    vm::VMConfig Config;
    Config.Profiler.Kind = vm::ProfilerKind::CBS;
    Config.Profiler.CBS.Stride = 3;
    Config.Profiler.CBS.SamplesPerTick = 16;
    vm::VirtualMachine VM(P, Config);
    aos::AdaptiveSystem AOS(Oracle);
    VM.setClient(&AOS);
    VM.run(6'000'000); // Warmup.
    uint64_t C0 = VM.stats().Cycles, I0 = VM.stats().Instructions;
    VM.run(12'000'000);
    return static_cast<double>(VM.stats().Instructions - I0) /
           static_cast<double>(VM.stats().Cycles - C0);
  };
  opt::NewJikesOracle Oracle;
  double WithInlining = Throughput(&Oracle);
  double TrivialOnly = Throughput(nullptr);
  EXPECT_GT(WithInlining, TrivialOnly * 1.01)
      << "profile-directed inlining must show a measurable speedup";
}

TEST(AOS, PlanRefreshesPeriodically) {
  Program P = hotColdProgram();
  vm::VMConfig Config;
  Config.TimerPeriodCycles = 50'000;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  vm::VirtualMachine VM(P, Config);
  aos::AOSConfig AC;
  AC.PlanRefreshTicks = 1;
  AC.Level1Samples = 1;
  AC.Level2Samples = 2;
  opt::NewJikesOracle Oracle;
  aos::AdaptiveSystem AOS(&Oracle, AC);
  VM.setClient(&AOS);
  VM.run();
  EXPECT_GE(AOS.stats().PlansComputed, 1u);
}
