//===- tests/QualityMonitorTest.cpp - self-observability tests -----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// The profiler self-observability stack: the online quality monitor
// (overlap/churn/confidence pins, phase-shift flagging), the
// per-component overhead attribution (the partition invariant over
// vm.profiling_cycles), the flight recorder (ring retention, every
// anomaly trigger, the MaxDumps cap), sample_drop event payloads, and
// the determinism contract — monitor and recorder JSON byte-identical
// across shard counts and ParallelRunner job counts.
//
//===----------------------------------------------------------------------===//

#include "experiments/Experiments.h"
#include "experiments/ParallelRunner.h"
#include "profiling/DynamicCallGraph.h"
#include "profiling/QualityMonitor.h"
#include "support/Json.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/TraceSink.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::prof;

namespace {

DCGSnapshot snapshotOf(std::initializer_list<std::pair<CallEdge, uint64_t>> Edges) {
  DynamicCallGraph DCG;
  for (const auto &[Edge, Weight] : Edges)
    DCG.addSample(Edge, Weight);
  return DCG.snapshot();
}

std::string monitorJson(const ProfileQualityMonitor &M) {
  json::JsonWriter W;
  M.writeJson(W);
  return W.take();
}

} // namespace

//===----------------------------------------------------------------------===//
// Monitor unit behaviour
//===----------------------------------------------------------------------===//

TEST(QualityMonitor, EdgeConfidencePins) {
  // confidence = 100 * (1 - 1/sqrt(w)), clamped at 0.
  EXPECT_DOUBLE_EQ(ProfileQualityMonitor::edgeConfidencePct(0), 0.0);
  EXPECT_DOUBLE_EQ(ProfileQualityMonitor::edgeConfidencePct(1), 0.0);
  EXPECT_DOUBLE_EQ(ProfileQualityMonitor::edgeConfidencePct(4), 50.0);
  EXPECT_DOUBLE_EQ(ProfileQualityMonitor::edgeConfidencePct(100), 90.0);
}

TEST(QualityMonitor, FirstWindowIsVacuouslyConverged) {
  tel::MetricRegistry R;
  ProfileQualityMonitor M({/*EveryTicks=*/1}, R);
  const QualityWindow &W =
      M.onWindow(snapshotOf({{{1, 2}, 16}}), /*Tick=*/1, /*Cycles=*/100);
  EXPECT_EQ(W.Index, 1u);
  EXPECT_DOUBLE_EQ(W.OverlapPct, 100.0);
  EXPECT_FALSE(W.PhaseShift);
  EXPECT_FALSE(M.converged()) << "needs two windows";
  EXPECT_DOUBLE_EQ(W.MeanConfidencePct,
                   ProfileQualityMonitor::edgeConfidencePct(16));
}

TEST(QualityMonitor, IdenticalSnapshotsConverge) {
  tel::MetricRegistry R;
  ProfileQualityMonitor M({/*EveryTicks=*/1}, R);
  DCGSnapshot S = snapshotOf({{{1, 2}, 8}, {{3, 4}, 8}});
  M.onWindow(S, 1, 100);
  const QualityWindow &W = M.onWindow(S, 2, 200);
  EXPECT_DOUBLE_EQ(W.OverlapPct, 100.0);
  EXPECT_EQ(W.HotNew, 0u);
  EXPECT_EQ(W.HotVanished, 0u);
  EXPECT_FALSE(W.PhaseShift);
  EXPECT_TRUE(M.converged());
  EXPECT_EQ(M.phaseShiftCount(), 0u);
}

TEST(QualityMonitor, DisjointSnapshotsArePhaseShift) {
  tel::MetricRegistry R;
  ProfileQualityMonitor M({/*EveryTicks=*/1, /*PhaseShiftOverlapPct=*/50.0}, R);
  M.onWindow(snapshotOf({{{1, 2}, 32}}), 1, 100);
  const QualityWindow &W = M.onWindow(snapshotOf({{{3, 4}, 32}}), 2, 200);
  EXPECT_DOUBLE_EQ(W.OverlapPct, 0.0);
  EXPECT_TRUE(W.PhaseShift);
  EXPECT_EQ(W.HotNew, 1u);
  EXPECT_EQ(W.HotVanished, 1u);
  EXPECT_EQ(M.phaseShiftCount(), 1u);
  EXPECT_FALSE(M.converged());
}

TEST(QualityMonitor, EmptySnapshotsNeverShift) {
  // An immature (still-empty) or fully decayed profile is not a phase
  // shift: the flag means "the hot set moved", not "there is no data".
  tel::MetricRegistry R;
  ProfileQualityMonitor M({/*EveryTicks=*/1}, R);
  EXPECT_FALSE(M.onWindow(snapshotOf({}), 1, 100).PhaseShift);
  EXPECT_FALSE(M.onWindow(snapshotOf({{{1, 2}, 4}}), 2, 200).PhaseShift);
  EXPECT_FALSE(M.onWindow(snapshotOf({}), 3, 300).PhaseShift);
  EXPECT_EQ(M.phaseShiftCount(), 0u);
}

TEST(QualityMonitor, HotSetChurnCountsTopEdgesOnly) {
  // With HotEdges=1, only the single hottest edge participates in churn
  // accounting; a new cold edge is invisible to hot+/hot-.
  tel::MetricRegistry R;
  ProfileQualityMonitor M(
      {/*EveryTicks=*/1, /*PhaseShiftOverlapPct=*/50.0, /*HotEdges=*/1}, R);
  M.onWindow(snapshotOf({{{1, 2}, 100}, {{5, 6}, 1}}), 1, 100);
  const QualityWindow &W =
      M.onWindow(snapshotOf({{{1, 2}, 100}, {{7, 8}, 1}}), 2, 200);
  EXPECT_EQ(W.HotNew, 0u);
  EXPECT_EQ(W.HotVanished, 0u);
}

TEST(QualityMonitor, PublishesRegistryMetrics) {
  tel::MetricRegistry R;
  ProfileQualityMonitor M({/*EveryTicks=*/1}, R);
  M.onWindow(snapshotOf({{{1, 2}, 4}}), 1, 100);
  M.onWindow(snapshotOf({{{1, 2}, 4}}), 2, 200);
  ASSERT_NE(R.findCounter("dcg.quality.windows"), nullptr);
  EXPECT_EQ(uint64_t(*R.findCounter("dcg.quality.windows")), 2u);
  EXPECT_EQ(uint64_t(*R.findCounter("dcg.quality.phase_shifts")), 0u);
  ASSERT_NE(R.findGauge("dcg.quality.overlap_bp"), nullptr);
  EXPECT_EQ(uint64_t(*R.findGauge("dcg.quality.overlap_bp")), 10'000u);
  ASSERT_NE(R.findHistogram("dcg.quality.edge_confidence_pct"), nullptr);
  EXPECT_EQ(R.findHistogram("dcg.quality.edge_confidence_pct")->count(), 2u);
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, RingKeepsNewestTail) {
  tel::FlightRecorderConfig C;
  C.EventCapacity = 4;
  tel::FlightRecorder FR(C);
  for (uint32_t I = 0; I != 10; ++I)
    FR.event(tel::TraceEvent::sample(/*Cycles=*/I, /*Thread=*/0,
                                     /*Callee=*/I, /*Site=*/0));
  FR.requestDump("end_of_run", /*Cycles=*/10);
  ASSERT_EQ(FR.dumps().size(), 1u);
  const tel::FlightRecorder::Dump &D = FR.dumps().front();
  EXPECT_EQ(D.TotalEventsAtDump, 10u);
  ASSERT_EQ(D.Events.size(), 4u);
  EXPECT_EQ(D.Events.front().A, 6u) << "oldest retained event first";
  EXPECT_EQ(D.Events.back().A, 9u);
}

TEST(FlightRecorder, PhaseShiftAndTrapTrigger) {
  tel::FlightRecorder FR;
  FR.event(tel::TraceEvent::phaseShift(100, 0, /*OverlapBp=*/1200,
                                       /*Window=*/3));
  FR.event(tel::TraceEvent::trap(200, 0, /*Method=*/7, /*PC=*/42));
  ASSERT_EQ(FR.dumps().size(), 2u);
  EXPECT_EQ(FR.dumps()[0].Trigger, "phase_shift");
  EXPECT_EQ(FR.dumps()[1].Trigger, "trap");
  EXPECT_EQ(FR.triggerCount(), 2u);
}

TEST(FlightRecorder, DropSpikeFiresOncePerWindow) {
  tel::FlightRecorderConfig C;
  C.DropSpikeThreshold = 100;
  tel::FlightRecorder FR(C);
  // Two drop events accumulate within one window; the spike fires once.
  FR.event(tel::TraceEvent::sampleDrop(10, 0, /*Capacity=*/8, /*Dropped=*/60));
  EXPECT_EQ(FR.dumps().size(), 0u);
  FR.event(tel::TraceEvent::sampleDrop(20, 0, 8, 60));
  FR.event(tel::TraceEvent::sampleDrop(30, 0, 8, 60));
  ASSERT_EQ(FR.dumps().size(), 1u);
  EXPECT_EQ(FR.dumps().front().Trigger, "drop_spike");
  // A window boundary resets the accumulator and re-arms the trigger.
  FR.noteWindow({});
  FR.event(tel::TraceEvent::sampleDrop(40, 0, 8, 120));
  EXPECT_EQ(FR.dumps().size(), 2u);
}

TEST(FlightRecorder, OverheadBudgetFiresOnRisingEdge) {
  tel::FlightRecorderConfig C;
  C.OverheadBudgetPct = 2.0; // 200 basis points
  tel::FlightRecorder FR(C);
  tel::RecorderWindow W;
  W.OverheadBp = 100;
  FR.noteWindow(W);
  EXPECT_EQ(FR.dumps().size(), 0u);
  W.OverheadBp = 300;
  FR.noteWindow(W); // crossing: fires
  FR.noteWindow(W); // still over: no re-fire
  ASSERT_EQ(FR.dumps().size(), 1u);
  EXPECT_EQ(FR.dumps().front().Trigger, "overhead_budget");
  W.OverheadBp = 100;
  FR.noteWindow(W); // back under budget
  W.OverheadBp = 300;
  FR.noteWindow(W); // second crossing
  EXPECT_EQ(FR.dumps().size(), 2u);
}

TEST(FlightRecorder, MaxDumpsCapsDumpsNotTriggers) {
  tel::FlightRecorderConfig C;
  C.MaxDumps = 1;
  tel::FlightRecorder FR(C);
  FR.event(tel::TraceEvent::trap(100, 0, 1, 1));
  FR.event(tel::TraceEvent::trap(200, 0, 2, 2));
  EXPECT_EQ(FR.dumps().size(), 1u);
  EXPECT_EQ(FR.triggerCount(), 2u);
}

TEST(FlightRecorder, JsonIsValid) {
  tel::FlightRecorder FR;
  FR.event(tel::TraceEvent::phaseShift(100, 0, 1200, 3));
  FR.noteWindow({});
  std::string Json = FR.toJson();
  json::JsonParseResult R = json::parseJson(Json);
  ASSERT_TRUE(R.Value.has_value()) << R.Error;
  EXPECT_NE(Json.find("\"phase_shift\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// VM integration
//===----------------------------------------------------------------------===//

namespace {

/// The monitored phase-shift configuration the acceptance runs use:
/// CBS profiling, aggressive decay (so the repository is
/// recency-weighted), a quality window every 4 ticks.
vm::VMConfig monitoredConfig(const bc::Program &P, uint64_t Seed) {
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, Seed);
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS = {/*Stride=*/3, /*SamplesPerTick=*/16};
  Config.Profiler.DecayEveryTicks = 4;
  Config.Profiler.DecayFactor = 0.5;
  Config.Profiler.Quality.EveryTicks = 4;
  Config.Profiler.Quality.PhaseShiftOverlapPct = 75.0;
  return Config;
}

} // namespace

TEST(QualityMonitorVM, PhaseShiftDetectedOnPhasedWorkload) {
  bc::Program P = wl::buildPhased(wl::InputSize::Small, /*Seed=*/1);
  vm::VirtualMachine VM(P, monitoredConfig(P, 1));
  EXPECT_EQ(VM.run(), vm::RunState::Finished);
  const ProfileQualityMonitor *M = VM.qualityMonitor();
  ASSERT_NE(M, nullptr);
  EXPECT_GE(M->windowCount(), 8u);
  EXPECT_GE(M->phaseShiftCount(), 1u)
      << "the phased program's hot-set swap must register as a shift";
  // The profile re-converges once the second phase is established.
  EXPECT_TRUE(M->converged());
}

TEST(QualityMonitorVM, DisabledByDefault) {
  bc::Program P = wl::buildPhased(wl::InputSize::Small, 1);
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.qualityMonitor(), nullptr);
  EXPECT_EQ(VM.run(), vm::RunState::Finished);
  EXPECT_EQ(VM.qualityMonitor(), nullptr);
}

TEST(QualityMonitorVM, ProfilingCyclesPartitionInvariant) {
  // The first six overhead.* components partition vm.profiling_cycles
  // exactly; yieldpoint servicing and shard waits are attribute-only.
  bc::Program P = wl::buildPhased(wl::InputSize::Small, 1);
  vm::VirtualMachine VM(P, monitoredConfig(P, 1));
  EXPECT_EQ(VM.run(), vm::RunState::Finished);
  const tel::MetricRegistry &R = VM.metrics();
  auto C = [&R](const char *Name) {
    const tel::Counter *Counter = R.findCounter(Name);
    EXPECT_NE(Counter, nullptr) << Name;
    return Counter ? uint64_t(*Counter) : 0;
  };
  uint64_t Partition =
      C("overhead.entry_check") + C("overhead.counter_update") +
      C("overhead.listener") + C("overhead.stack_walk") +
      C("overhead.buffer_flush") + C("overhead.snapshot");
  EXPECT_EQ(Partition, C("vm.profiling_cycles"));
  EXPECT_GT(Partition, 0u);
  EXPECT_EQ(VM.overheadCycles(), Partition + C("overhead.yieldpoint_taken") +
                                     C("overhead.shard_wait"));
  ASSERT_NE(R.findGauge("overhead.total_fraction_bp"), nullptr);
  EXPECT_EQ(uint64_t(*R.findGauge("overhead.total_fraction_bp")),
            10'000 * VM.overheadCycles() / VM.cycles());
}

TEST(QualityMonitorVM, FreeExhaustiveChargesNoOverhead) {
  // The reference configuration (exhaustive, uncharged) must stay
  // cost-free: no overhead component may charge execution time.
  bc::Program P = wl::buildPhased(wl::InputSize::Small, 1);
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::Exhaustive;
  Config.Profiler.ChargeExhaustiveCounters = false;
  Config.Profiler.Quality.EveryTicks = 4;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Finished);
  EXPECT_EQ(uint64_t(*VM.metrics().findCounter("vm.profiling_cycles")), 0u);
}

TEST(QualityMonitorVM, SampleDropEventCarriesCapacity) {
  bc::Program P = wl::buildPhased(wl::InputSize::Small, 1);
  vm::VMConfig Config = monitoredConfig(P, 1);
  Config.Profiler.SampleBufferCapacity = 1; // starve the buffer
  tel::CollectorSink Sink;
  Config.Trace = &Sink;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Finished);
  size_t Drops = 0;
  uint64_t Dropped = 0;
  for (const tel::TraceEvent &E : Sink.events())
    if (E.Kind == tel::EventKind::SampleDrop) {
      ++Drops;
      EXPECT_EQ(E.A, 1u) << "payload A is the buffer capacity";
      Dropped += E.C;
    }
  EXPECT_GT(Drops, 0u);
  EXPECT_EQ(Dropped,
            uint64_t(*VM.metrics().findCounter("dcg.dropped_samples")));
}

TEST(QualityMonitorVM, RecorderDumpsPhaseShiftAnomaly) {
  bc::Program P = wl::buildPhased(wl::InputSize::Small, 1);
  vm::VMConfig Config = monitoredConfig(P, 1);
  tel::FlightRecorder FR;
  Config.Recorder = &FR;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Finished);
  ASSERT_GE(FR.dumps().size(), 1u);
  EXPECT_EQ(FR.dumps().front().Trigger, "phase_shift");
  // The dump's rolling windows carry the monitor's overlap timeline.
  EXPECT_FALSE(FR.dumps().front().Windows.empty());
  EXPECT_GT(FR.countOf(tel::EventKind::PhaseShift), 0u);
}

TEST(QualityMonitorVM, RecorderObserverDoesNotPerturbRun) {
  bc::Program P = wl::buildPhased(wl::InputSize::Small, 1);
  vm::VirtualMachine Plain(P, monitoredConfig(P, 1));
  EXPECT_EQ(Plain.run(), vm::RunState::Finished);

  vm::VMConfig Config = monitoredConfig(P, 1);
  tel::FlightRecorder FR;
  Config.Recorder = &FR;
  vm::VirtualMachine Recorded(P, Config);
  EXPECT_EQ(Recorded.run(), vm::RunState::Finished);

  EXPECT_EQ(Plain.cycles(), Recorded.cycles());
  EXPECT_EQ(monitorJson(*Plain.qualityMonitor()),
            monitorJson(*Recorded.qualityMonitor()));
}

//===----------------------------------------------------------------------===//
// Determinism: shard count and job count must not change a byte
//===----------------------------------------------------------------------===//

namespace {

/// One monitored run; returns the monitor + recorder JSON.
std::string monitoredRunJson(unsigned Shards) {
  bc::Program P = wl::buildPhased(wl::InputSize::Small, 1);
  vm::VMConfig Config = monitoredConfig(P, 1);
  Config.Profiler.DCGShards = Shards;
  tel::FlightRecorder FR;
  Config.Recorder = &FR;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Finished);
  return monitorJson(*VM.qualityMonitor()) + "\n" + FR.toJson();
}

} // namespace

TEST(QualityMonitorDeterminism, ByteIdenticalAcrossShardCounts) {
  std::string OneShard = monitoredRunJson(1);
  EXPECT_EQ(OneShard, monitoredRunJson(8));
  EXPECT_EQ(OneShard, monitoredRunJson(1)) << "repeat run must be identical";
}

TEST(QualityMonitorDeterminism, ByteIdenticalAcrossJobCounts) {
  auto RunWithJobs = [](unsigned Jobs) {
    std::vector<std::string> Reports(4);
    exp::ParallelConfig Config;
    Config.Jobs = Jobs;
    exp::ParallelRunner Runner(Config);
    Runner.run(Reports.size(), [&Reports](exp::ParallelRunner::TaskContext &Ctx) {
      bc::Program P = wl::buildPhased(wl::InputSize::Small, Ctx.Index + 1);
      vm::VMConfig VC = monitoredConfig(P, Ctx.Index + 1);
      tel::FlightRecorder FR;
      VC.Recorder = &FR;
      vm::VirtualMachine VM(P, VC);
      VM.run();
      Reports[Ctx.Index] = monitorJson(*VM.qualityMonitor()) + FR.toJson();
    });
    return Reports;
  };
  EXPECT_EQ(RunWithJobs(1), RunWithJobs(8));
}
