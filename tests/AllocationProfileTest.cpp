//===- tests/AllocationProfileTest.cpp - §8 generalization tests ----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/AllocationProfile.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::prof;

TEST(AllocationProfile, BasicAccounting) {
  AllocationProfile AP;
  AP.addSample(2, 10);
  AP.addSample(0, 30);
  AP.addSample(2, 10);
  EXPECT_EQ(AP.weight(2), 20u);
  EXPECT_EQ(AP.weight(0), 30u);
  EXPECT_EQ(AP.weight(7), 0u);
  EXPECT_EQ(AP.totalWeight(), 50u);
  EXPECT_DOUBLE_EQ(AP.fraction(0), 0.6);
  auto Sorted = AP.sorted();
  ASSERT_EQ(Sorted.size(), 2u);
  EXPECT_EQ(Sorted[0].first, 0u);
}

TEST(AllocationProfile, OverlapMirrorsDCGMetric) {
  AllocationProfile A, B, C;
  A.addSample(0, 50);
  A.addSample(1, 50);
  B.addSample(0, 5);
  B.addSample(1, 5);
  C.addSample(2, 10);
  EXPECT_NEAR(A.overlapWith(B), 100.0, 1e-9);
  EXPECT_NEAR(A.overlapWith(C), 0.0, 1e-9);
  EXPECT_NEAR(A.overlapWith(A), 100.0, 1e-9);
  AllocationProfile Empty;
  EXPECT_NEAR(Empty.overlapWith(Empty), 100.0, 1e-9);
  EXPECT_NEAR(Empty.overlapWith(A), 0.0, 1e-9);
}

TEST(AllocationProfile, HeapTracksGroundTruth) {
  // jbb allocates one Order per transaction plus per-iteration receiver
  // objects; the heap's per-class counts are the exhaustive histogram.
  bc::Program P = wl::buildJbb(wl::InputSize::Small, 1);
  vm::VMConfig Config;
  Config.MaxCycles = 2'000'000'000;
  vm::VirtualMachine VM(P, Config);
  ASSERT_EQ(VM.run(), vm::RunState::Finished);
  prof::AllocationProfile Truth = VM.trueAllocationProfile();
  EXPECT_GT(Truth.totalWeight(), 10'000u);
  EXPECT_EQ(Truth.totalWeight(), VM.heap().numObjects());
}

TEST(AllocationProfile, SampledHistogramConvergesToTruth) {
  bc::Program P = wl::buildJbb(wl::InputSize::Small, 1);
  vm::VMConfig Config;
  Config.MaxCycles = 2'000'000'000;
  Config.Profiler.ProfileAllocations = true;
  Config.Profiler.AllocCBS.Stride = 3;
  Config.Profiler.AllocCBS.SamplesPerTick = 16;
  vm::VirtualMachine VM(P, Config);
  ASSERT_EQ(VM.run(), vm::RunState::Finished);

  prof::AllocationProfile Truth = VM.trueAllocationProfile();
  const prof::AllocationProfile &Sampled = VM.allocationProfile();
  ASSERT_GT(Sampled.totalWeight(), 100u);
  EXPECT_GT(Sampled.overlapWith(Truth), 85.0)
      << "CBS over allocation events must resolve the class histogram";
}

TEST(AllocationProfile, SamplerOffByDefault) {
  bc::Program P = wl::buildJbb(wl::InputSize::Small, 1);
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  EXPECT_TRUE(VM.allocationProfile().empty());
}

TEST(AllocationProfile, WorksAlongsideCallGraphProfiling) {
  // The §8 point: the same mechanism serves two frequency profiles at
  // once without interfering.
  bc::Program P = wl::buildMtrt(wl::InputSize::Small, 1);
  vm::VMConfig Config;
  Config.MaxCycles = 2'000'000'000;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  Config.Profiler.ProfileAllocations = true;
  Config.Profiler.AllocCBS.SamplesPerTick = 8;
  vm::VirtualMachine VM(P, Config);
  ASSERT_EQ(VM.run(), vm::RunState::Finished);
  EXPECT_FALSE(VM.profile().empty());
  EXPECT_FALSE(VM.allocationProfile().empty());
  EXPECT_GT(VM.allocationProfile().overlapWith(VM.trueAllocationProfile()),
            70.0);
}

TEST(AllocationProfile, SamplingCostsShowUpButStaySmall) {
  bc::Program P = wl::buildJbb(wl::InputSize::Small, 1);
  auto Cycles = [&](bool Profile) {
    vm::VMConfig Config;
    Config.MaxCycles = 2'000'000'000;
    Config.Profiler.ProfileAllocations = Profile;
    Config.Profiler.AllocCBS.Stride = 3;
    Config.Profiler.AllocCBS.SamplesPerTick = 16;
    vm::VirtualMachine VM(P, Config);
    VM.run();
    return VM.stats().Cycles;
  };
  uint64_t Off = Cycles(false), On = Cycles(true);
  EXPECT_GT(On, Off);
  EXPECT_LT(100.0 * (On - Off) / Off, 1.0)
      << "allocation sampling must stay under 1% overhead";
}
