//===- tests/CodeCacheTest.cpp - code cache lifecycle tests --------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// Install / invalidate / reinstall cycles on the CodeCache directly:
// capacity accounting must stay exact through every transition, the
// invalidation epoch must advance exactly when a version is retired
// without replacement, and a double-install of an identical version is
// a checked error rather than a silent graveyard leak. With pin
// tracking on (the OSR configuration) the accounting extends to
// reclamation: a retired version is freed exactly when its last pinned
// frame leaves, and never before.
//
//===----------------------------------------------------------------------===//

#include "vm/CodeCache.h"

#include "bytecode/Builder.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::vm;

namespace {

/// Two tiny methods, enough for independent install chains.
Program twoMethodProgram() {
  ProgramBuilder PB;
  MethodId A = PB.declareStatic("alpha", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(A);
    MB.work(10).iconst(1).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(A).print();
    MB.finish();
  }
  return PB.finish(Main);
}

} // namespace

TEST(CodeCache, InstallTracksActiveAccounting) {
  Program P = twoMethodProgram();
  CodeCache Cache(P);
  CostModel Costs;

  EXPECT_EQ(Cache.active(0), nullptr);
  EXPECT_EQ(Cache.activeLevel(0), -1);
  EXPECT_EQ(Cache.activeCodeInstructions(), 0u);

  const CompiledMethod *L0 =
      Cache.install(CodeCache::compileBaseline(P, 0, 0, Costs));
  ASSERT_NE(L0, nullptr);
  EXPECT_EQ(Cache.active(0), L0);
  EXPECT_EQ(Cache.activeLevel(0), 0);
  EXPECT_EQ(Cache.activeCodeInstructions(), L0->Code.size());
  EXPECT_EQ(Cache.graveyardCodeInstructions(), 0u);
  EXPECT_EQ(Cache.numCompiles(), 1u);
  EXPECT_EQ(Cache.numRecompiles(), 0u);
}

TEST(CodeCache, RecompileRetiresOldVersionToGraveyard) {
  Program P = twoMethodProgram();
  CodeCache Cache(P);
  CostModel Costs;

  const CompiledMethod *L0 =
      Cache.install(CodeCache::compileBaseline(P, 0, 0, Costs));
  size_t L0Size = L0->Code.size();
  const CompiledMethod *L1 =
      Cache.install(CodeCache::compileBaseline(P, 0, 1, Costs));

  EXPECT_EQ(Cache.active(0), L1);
  EXPECT_EQ(Cache.activeLevel(0), 1);
  EXPECT_EQ(Cache.numRecompiles(), 1u);
  EXPECT_EQ(Cache.graveyardSize(), 1u);
  EXPECT_EQ(Cache.activeCodeInstructions(), L1->Code.size());
  EXPECT_EQ(Cache.graveyardCodeInstructions(), L0Size);
  // A recompile is not a deoptimization: the retired version is intact
  // and the method's invalidation epoch does not move.
  EXPECT_FALSE(L0->Invalidated);
  EXPECT_EQ(Cache.invalidationEpoch(0), 0u);
  EXPECT_EQ(Cache.numInvalidations(), 0u);
}

TEST(CodeCache, InvalidateRetiresWithNoReplacement) {
  Program P = twoMethodProgram();
  CodeCache Cache(P);
  CostModel Costs;

  const CompiledMethod *L1 =
      Cache.install(CodeCache::compileBaseline(P, 0, 1, Costs));
  size_t L1Size = L1->Code.size();

  const CompiledMethod *Retired = Cache.invalidate(0);
  ASSERT_EQ(Retired, L1) << "the retired version stays alive in the graveyard";
  EXPECT_TRUE(Retired->Invalidated);
  EXPECT_EQ(Cache.active(0), nullptr);
  EXPECT_EQ(Cache.activeLevel(0), -1);
  EXPECT_EQ(Cache.invalidationEpoch(0), 1u);
  EXPECT_EQ(Cache.numInvalidations(), 1u);
  EXPECT_EQ(Cache.activeCodeInstructions(), 0u);
  EXPECT_EQ(Cache.graveyardCodeInstructions(), L1Size);
  EXPECT_EQ(Cache.graveyardSize(), 1u);
}

TEST(CodeCache, InvalidateWithNothingActiveIsANoOp) {
  Program P = twoMethodProgram();
  CodeCache Cache(P);
  EXPECT_EQ(Cache.invalidate(0), nullptr);
  EXPECT_EQ(Cache.invalidationEpoch(0), 0u)
      << "the epoch only advances when a version is actually retired";
  EXPECT_EQ(Cache.numInvalidations(), 0u);
}

TEST(CodeCache, ReinstallAfterInvalidateStartsAFreshChain) {
  Program P = twoMethodProgram();
  CodeCache Cache(P);
  CostModel Costs;

  Cache.install(CodeCache::compileBaseline(P, 0, 1, Costs));
  Cache.invalidate(0);

  // Same (level, plan generation) as the invalidated version: legal,
  // because the active slot is empty — this is exactly the recompile a
  // deoptimization enqueues.
  const CompiledMethod *Again =
      Cache.install(CodeCache::compileBaseline(P, 0, 1, Costs));
  EXPECT_EQ(Cache.active(0), Again);
  EXPECT_FALSE(Again->Invalidated);
  EXPECT_EQ(Cache.invalidationEpoch(0), 1u);
  EXPECT_EQ(Cache.activeCodeInstructions(), Again->Code.size());

  // A second deopt cycle keeps the books exact.
  size_t FirstGraveyard = Cache.graveyardCodeInstructions();
  Cache.invalidate(0);
  EXPECT_EQ(Cache.invalidationEpoch(0), 2u);
  EXPECT_EQ(Cache.activeCodeInstructions(), 0u);
  EXPECT_EQ(Cache.graveyardCodeInstructions(),
            FirstGraveyard + Again->Code.size());
  EXPECT_EQ(Cache.graveyardSize(), 2u);
}

TEST(CodeCache, EpochsAreTrackedPerMethod) {
  Program P = twoMethodProgram();
  CodeCache Cache(P);
  CostModel Costs;

  Cache.install(CodeCache::compileBaseline(P, 0, 0, Costs));
  Cache.install(CodeCache::compileBaseline(P, 1, 0, Costs));
  Cache.invalidate(0);
  EXPECT_EQ(Cache.invalidationEpoch(0), 1u);
  EXPECT_EQ(Cache.invalidationEpoch(1), 0u)
      << "invalidating one method must not advance another's epoch";
}

TEST(CodeCache, DoubleInstallOfIdenticalVersionIsFatal) {
  Program P = twoMethodProgram();
  CodeCache Cache(P);
  CostModel Costs;
  Cache.install(CodeCache::compileBaseline(P, 0, 1, Costs));
  EXPECT_DEATH(Cache.install(CodeCache::compileBaseline(P, 0, 1, Costs)),
               "double-install of method 0");
}

TEST(CodeCache, HigherLevelOrNewerPlanIsNotADoubleInstall) {
  Program P = twoMethodProgram();
  CodeCache Cache(P);
  CostModel Costs;
  Cache.install(CodeCache::compileBaseline(P, 0, 1, Costs));

  // Same level, newer plan generation: a legitimate reoptimization.
  CompiledMethod NewPlan = CodeCache::compileBaseline(P, 0, 1, Costs);
  NewPlan.PlanGeneration = 3;
  Cache.install(std::move(NewPlan));
  EXPECT_EQ(Cache.active(0)->PlanGeneration, 3u);
  EXPECT_EQ(Cache.numRecompiles(), 1u);

  // Higher level: also legitimate.
  Cache.install(CodeCache::compileBaseline(P, 0, 2, Costs));
  EXPECT_EQ(Cache.activeLevel(0), 2);
  EXPECT_EQ(Cache.numRecompiles(), 2u);
}

TEST(CodeCache, PinnedRetiredVersionReclaimedAtLastUnpin) {
  // The regression pin tracking exists for: a version invalidated while
  // a live frame still executes it must survive exactly until that
  // frame transfers out (OSR) or returns, then be reclaimed with exact
  // capacity accounting. Pre-OSR the cache documented this case as
  // unreclaimable and the graveyard only grew.
  Program P = twoMethodProgram();
  CodeCache Cache(P);
  CostModel Costs;
  Cache.setPinTracking(true);

  const CompiledMethod *V1 =
      Cache.install(CodeCache::compileBaseline(P, 0, 0, Costs));
  size_t V1Size = V1->Code.size();
  Cache.pinFrame(V1); // a frame enters the version
  Cache.pinFrame(V1); // ...and a second one

  // Retired while pinned: kept alive, fully accounted in the graveyard.
  Cache.invalidate(0);
  EXPECT_EQ(Cache.graveyardCodeInstructions(), V1Size);
  EXPECT_EQ(Cache.graveyardSize(), 1u);
  EXPECT_EQ(Cache.reclaimedCodeInstructions(), 0u);
  EXPECT_EQ(Cache.numReclaims(), 0u);

  // First frame leaves: still pinned by the second, still alive.
  Cache.unpinFrame(V1);
  EXPECT_EQ(Cache.graveyardCodeInstructions(), V1Size);
  EXPECT_EQ(Cache.numReclaims(), 0u);

  // Last frame transfers out: reclaimed on the spot, books exact.
  Cache.unpinFrame(V1);
  EXPECT_EQ(Cache.graveyardCodeInstructions(), 0u);
  EXPECT_EQ(Cache.graveyardSize(), 0u);
  EXPECT_EQ(Cache.reclaimedCodeInstructions(), V1Size);
  EXPECT_EQ(Cache.numReclaims(), 1u);
}

TEST(CodeCache, UnpinnedRetireeReclaimedImmediatelyOnRecompile) {
  // install() retiring a version with no pinned frames frees it right
  // away — no frame will ever report an unpin for it.
  Program P = twoMethodProgram();
  CodeCache Cache(P);
  CostModel Costs;
  Cache.setPinTracking(true);

  const CompiledMethod *V1 =
      Cache.install(CodeCache::compileBaseline(P, 0, 0, Costs));
  size_t V1Size = V1->Code.size();
  Cache.install(CodeCache::compileBaseline(P, 0, 1, Costs));
  EXPECT_EQ(Cache.graveyardCodeInstructions(), 0u);
  EXPECT_EQ(Cache.graveyardSize(), 0u);
  EXPECT_EQ(Cache.reclaimedCodeInstructions(), V1Size);
  EXPECT_EQ(Cache.numReclaims(), 1u);
}

TEST(CodeCache, PinTrackingOffKeepsGraveyardBehaviour) {
  // Without setPinTracking the pre-OSR contract holds bit for bit: the
  // graveyard only grows, and pin/unpin/reclaim are no-ops.
  Program P = twoMethodProgram();
  CodeCache Cache(P);
  CostModel Costs;

  const CompiledMethod *V1 =
      Cache.install(CodeCache::compileBaseline(P, 0, 0, Costs));
  size_t V1Size = V1->Code.size();
  Cache.pinFrame(V1);
  Cache.install(CodeCache::compileBaseline(P, 0, 1, Costs));
  Cache.unpinFrame(V1);
  EXPECT_FALSE(Cache.reclaimIfUnpinned(V1));
  EXPECT_EQ(Cache.graveyardCodeInstructions(), V1Size);
  EXPECT_EQ(Cache.graveyardSize(), 1u);
  EXPECT_EQ(Cache.reclaimedCodeInstructions(), 0u);
  EXPECT_EQ(Cache.numReclaims(), 0u);
}
