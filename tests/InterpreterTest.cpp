//===- tests/InterpreterTest.cpp - execution semantics tests -------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Verifier.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <functional>

using namespace cbs;
using namespace cbs::bc;

namespace {

Program buildMain(const std::function<void(ProgramBuilder &, MethodBuilder &)>
                      &Fill) {
  ProgramBuilder PB;
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    Fill(PB, MB);
    MB.finish();
  }
  return PB.finish(Main);
}

/// Runs a verified program and returns its Print output.
std::vector<int64_t> runProgram(const Program &P,
                                vm::RunState Expected = vm::RunState::Finished) {
  VerifyResult V = verifyProgram(P);
  EXPECT_TRUE(V.ok()) << V.str();
  vm::VMConfig Config;
  Config.MaxCycles = 500'000'000;
  vm::VirtualMachine VM(P, Config);
  vm::RunState State = VM.run();
  EXPECT_EQ(State, Expected) << VM.trapMessage();
  return VM.output();
}

} // namespace

//===----------------------------------------------------------------------===//
// Arithmetic semantics (parameterized)
//===----------------------------------------------------------------------===//

struct BinopCase {
  Opcode Op;
  int64_t L, R, Expected;
};

class BinopTest : public ::testing::TestWithParam<BinopCase> {};

TEST_P(BinopTest, Evaluates) {
  const BinopCase &C = GetParam();
  Program P = buildMain([&](ProgramBuilder &, MethodBuilder &MB) {
    MB.iconst(C.L).iconst(C.R);
    switch (C.Op) {
    case Opcode::IAdd:
      MB.iadd();
      break;
    case Opcode::ISub:
      MB.isub();
      break;
    case Opcode::IMul:
      MB.imul();
      break;
    case Opcode::IDiv:
      MB.idiv();
      break;
    case Opcode::IRem:
      MB.irem();
      break;
    case Opcode::IAnd:
      MB.iand();
      break;
    case Opcode::IOr:
      MB.ior();
      break;
    case Opcode::IXor:
      MB.ixor();
      break;
    case Opcode::IShl:
      MB.ishl();
      break;
    case Opcode::IShr:
      MB.ishr();
      break;
    default:
      FAIL() << "unexpected opcode";
    }
    MB.print();
  });
  std::vector<int64_t> Out = runProgram(P);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], C.Expected);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinopTest,
    ::testing::Values(
        BinopCase{Opcode::IAdd, 2, 3, 5},
        BinopCase{Opcode::IAdd, INT32_MAX, 1, int64_t(INT32_MAX) + 1},
        BinopCase{Opcode::ISub, 2, 3, -1},
        BinopCase{Opcode::IMul, -4, 6, -24},
        BinopCase{Opcode::IDiv, 7, 2, 3},
        BinopCase{Opcode::IDiv, -7, 2, -3},
        BinopCase{Opcode::IRem, 7, 3, 1},
        BinopCase{Opcode::IRem, -7, 3, -1},
        BinopCase{Opcode::IAnd, 0b1100, 0b1010, 0b1000},
        BinopCase{Opcode::IOr, 0b1100, 0b1010, 0b1110},
        BinopCase{Opcode::IXor, 0b1100, 0b1010, 0b0110},
        BinopCase{Opcode::IShl, 3, 4, 48},
        BinopCase{Opcode::IShl, 1, 64, 1},   // count masked to 63
        BinopCase{Opcode::IShr, -16, 2, -4}, // arithmetic shift
        BinopCase{Opcode::IShr, 1024, 3, 128}));

TEST(Interpreter, NegationAndIncrement) {
  Program P = buildMain([](ProgramBuilder &, MethodBuilder &MB) {
    MB.iconst(5).ineg().print();
    MB.iconst(10).istore(0).iinc(0, -3).iload(0).print();
  });
  EXPECT_EQ(runProgram(P), (std::vector<int64_t>{-5, 7}));
}

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

TEST(Interpreter, CountedLoopSumsCorrectly) {
  Program P = buildMain([](ProgramBuilder &, MethodBuilder &MB) {
    // sum 1..100 == 5050
    MB.iconst(0).istore(1);
    MB.iconst(100).istore(0);
    Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    MB.iload(1).iload(0).iadd().istore(1);
    MB.iinc(0, -1).jump(Head);
    MB.bind(Exit).iload(1).print();
  });
  EXPECT_EQ(runProgram(P), (std::vector<int64_t>{5050}));
}

TEST(Interpreter, ConditionalFamiliesBranchCorrectly) {
  // For each condition opcode, print 1 when taken with operand -1, 0, 1.
  struct Case {
    std::function<MethodBuilder &(MethodBuilder &, Label)> Emit;
    int64_t Operand;
    bool Taken;
  };
  auto run = [&](auto EmitBranch, int64_t V) {
    Program P = buildMain([&](ProgramBuilder &, MethodBuilder &MB) {
      Label L = MB.newLabel();
      MB.iconst(V);
      EmitBranch(MB, L);
      MB.iconst(0).print().ret();
      MB.bind(L).iconst(1).print();
    });
    return runProgram(P)[0] == 1;
  };
  EXPECT_TRUE(run([](MethodBuilder &MB, Label L) { MB.ifEq(L); }, 0));
  EXPECT_FALSE(run([](MethodBuilder &MB, Label L) { MB.ifEq(L); }, 2));
  EXPECT_TRUE(run([](MethodBuilder &MB, Label L) { MB.ifNe(L); }, 2));
  EXPECT_TRUE(run([](MethodBuilder &MB, Label L) { MB.ifLt(L); }, -1));
  EXPECT_FALSE(run([](MethodBuilder &MB, Label L) { MB.ifLt(L); }, 0));
  EXPECT_TRUE(run([](MethodBuilder &MB, Label L) { MB.ifLe(L); }, 0));
  EXPECT_TRUE(run([](MethodBuilder &MB, Label L) { MB.ifGt(L); }, 1));
  EXPECT_TRUE(run([](MethodBuilder &MB, Label L) { MB.ifGe(L); }, 0));
}

TEST(Interpreter, CompareBranches) {
  auto run = [&](auto EmitBranch, int64_t L0, int64_t R0) {
    Program P = buildMain([&](ProgramBuilder &, MethodBuilder &MB) {
      Label L = MB.newLabel();
      MB.iconst(L0).iconst(R0);
      EmitBranch(MB, L);
      MB.iconst(0).print().ret();
      MB.bind(L).iconst(1).print();
    });
    return runProgram(P)[0] == 1;
  };
  EXPECT_TRUE(run([](MethodBuilder &MB, Label L) { MB.ifICmpEq(L); }, 4, 4));
  EXPECT_TRUE(run([](MethodBuilder &MB, Label L) { MB.ifICmpNe(L); }, 4, 5));
  EXPECT_TRUE(run([](MethodBuilder &MB, Label L) { MB.ifICmpLt(L); }, 3, 5));
  EXPECT_FALSE(run([](MethodBuilder &MB, Label L) { MB.ifICmpLt(L); }, 5, 5));
  EXPECT_TRUE(run([](MethodBuilder &MB, Label L) { MB.ifICmpGe(L); }, 5, 5));
}

//===----------------------------------------------------------------------===//
// Objects and fields
//===----------------------------------------------------------------------===//

TEST(Interpreter, FieldsStoreAndLoad) {
  Program P = buildMain([](ProgramBuilder &PB, MethodBuilder &MB) {
    ClassId C = PB.addClass("C", InvalidClassId, 2);
    MB.newObject(C).astore(0);
    MB.aload(0);
    MB.iconst(42);
    MB.putField(1);
    MB.aload(0).getField(1).print();
    MB.aload(0).getField(0).print(); // untouched field is zero
  });
  EXPECT_EQ(runProgram(P), (std::vector<int64_t>{42, 0}));
}

TEST(Interpreter, ClassEqIsExact) {
  Program P = buildMain([](ProgramBuilder &PB, MethodBuilder &MB) {
    ClassId Base = PB.addClass("Base", InvalidClassId, 0);
    ClassId Sub = PB.addClass("Sub", Base, 0);
    MB.newObject(Sub).classEq(Sub).print();  // 1
    MB.newObject(Sub).classEq(Base).print(); // 0: exact match only
    MB.aconstNull().classEq(Base).print();   // 0: null matches nothing
  });
  EXPECT_EQ(runProgram(P), (std::vector<int64_t>{1, 0, 0}));
}

//===----------------------------------------------------------------------===//
// Calls and dispatch
//===----------------------------------------------------------------------===//

TEST(Interpreter, StaticCallPassesArgsAndReturns) {
  ProgramBuilder PB;
  MethodId F = PB.declareStatic("f", {ValKind::Int, ValKind::Int},
                                /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(F);
    MB.iload(0).iload(1).isub().iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(10).iconst(3).invokeStatic(F).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  EXPECT_EQ(runProgram(P), (std::vector<int64_t>{7}));
}

TEST(Interpreter, VirtualDispatchSelectsByReceiverClass) {
  ProgramBuilder PB;
  ClassId A = PB.addClass("A", InvalidClassId, 0);
  ClassId B = PB.addClass("B", A, 0);
  SelectorId Sel = PB.addSelector("tag", 1);
  MethodId MA = PB.declareVirtual(A, Sel, "", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(MA);
    MB.iconst(100).iret();
    MB.finish();
  }
  MethodId MB2 = PB.declareVirtual(B, Sel, "", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(MB2);
    MB.iconst(200).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.newObject(A).invokeVirtual(Sel).print();
    MB.newObject(B).invokeVirtual(Sel).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  EXPECT_EQ(runProgram(P), (std::vector<int64_t>{100, 200}));
}

TEST(Interpreter, InheritedMethodReceivesSubclassInstance) {
  ProgramBuilder PB;
  ClassId A = PB.addClass("A", InvalidClassId, 1);
  ClassId B = PB.addClass("B", A, 1);
  SelectorId Sel = PB.addSelector("firstField", 1);
  MethodId MA = PB.declareVirtual(A, Sel, "", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(MA);
    MB.aload(0).getField(0).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.newObject(B).astore(0);
    MB.aload(0).iconst(9).putField(0);
    MB.aload(0).invokeVirtual(Sel).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  EXPECT_EQ(runProgram(P), (std::vector<int64_t>{9}));
}

TEST(Interpreter, RecursionComputesFactorial) {
  ProgramBuilder PB;
  MethodId Fact = PB.declareStatic("fact", {ValKind::Int},
                                   /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(Fact);
    Label Base = MB.newLabel();
    MB.iload(0).iconst(1).ifICmpLt(Base);
    MB.iload(0).iload(0).iconst(1).isub().invokeStatic(Fact).imul().iret();
    MB.bind(Base).iconst(1).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(10).invokeStatic(Fact).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  EXPECT_EQ(runProgram(P), (std::vector<int64_t>{3628800}));
}

//===----------------------------------------------------------------------===//
// Traps
//===----------------------------------------------------------------------===//

TEST(Interpreter, DivisionByZeroTraps) {
  Program P = buildMain([](ProgramBuilder &, MethodBuilder &MB) {
    MB.iconst(1).iconst(0).idiv().print();
  });
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Trapped);
  EXPECT_NE(VM.trapMessage().find("division by zero"), std::string::npos);
}

TEST(Interpreter, RemainderByZeroTraps) {
  Program P = buildMain([](ProgramBuilder &, MethodBuilder &MB) {
    MB.iconst(1).iconst(0).irem().print();
  });
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Trapped);
}

TEST(Interpreter, NullFieldAccessTraps) {
  Program P = buildMain([](ProgramBuilder &PB, MethodBuilder &MB) {
    PB.addClass("C", InvalidClassId, 1);
    MB.aconstNull().getField(0).print();
  });
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Trapped);
  EXPECT_NE(VM.trapMessage().find("null"), std::string::npos);
}

TEST(Interpreter, FieldIndexOutOfRangeTraps) {
  Program P = buildMain([](ProgramBuilder &PB, MethodBuilder &MB) {
    ClassId C = PB.addClass("C", InvalidClassId, 1);
    MB.newObject(C).getField(5).print();
  });
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Trapped);
}

TEST(Interpreter, NullReceiverTraps) {
  ProgramBuilder PB;
  ClassId A = PB.addClass("A", InvalidClassId, 0);
  SelectorId Sel = PB.addSelector("m", 1);
  MethodId MA = PB.declareVirtual(A, Sel);
  {
    MethodBuilder MB = PB.defineMethod(MA);
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.aconstNull().invokeVirtual(Sel);
    MB.finish();
  }
  Program P = PB.finish(Main);
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Trapped);
}

TEST(Interpreter, DoesNotUnderstandTraps) {
  ProgramBuilder PB;
  ClassId A = PB.addClass("A", InvalidClassId, 0);
  ClassId B = PB.addClass("B", InvalidClassId, 0);
  SelectorId Sel = PB.addSelector("m", 1);
  MethodId MA = PB.declareVirtual(A, Sel);
  {
    MethodBuilder MB = PB.defineMethod(MA);
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.newObject(B).invokeVirtual(Sel); // B does not implement m.
    MB.finish();
  }
  Program P = PB.finish(Main);
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Trapped);
  EXPECT_NE(VM.trapMessage().find("does not understand"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Halting, limits, stats
//===----------------------------------------------------------------------===//

TEST(Interpreter, HaltStopsTheMachine) {
  Program P = buildMain([](ProgramBuilder &, MethodBuilder &MB) {
    MB.iconst(1).print().halt();
    MB.iconst(2).print(); // Unreachable.
  });
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Halted);
  EXPECT_EQ(VM.output(), (std::vector<int64_t>{1}));
}

TEST(Interpreter, MaxCyclesStopsInfiniteLoop) {
  Program P = buildMain([](ProgramBuilder &, MethodBuilder &MB) {
    Label Head = MB.newLabel();
    MB.bind(Head).work(100).jump(Head);
  });
  vm::VMConfig Config;
  Config.MaxCycles = 1'000'000;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::CycleLimit);
  EXPECT_GE(VM.stats().Cycles, Config.MaxCycles);
}

TEST(Interpreter, CycleBudgetIsResumable) {
  Program P = buildMain([](ProgramBuilder &, MethodBuilder &MB) {
    MB.iconst(1000000).istore(0);
    Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    MB.work(50).iinc(0, -1).jump(Head);
    MB.bind(Exit).iconst(7).print();
  });
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(1'000'000), vm::RunState::Running);
  while (VM.run(10'000'000) == vm::RunState::Running)
    ;
  EXPECT_EQ(VM.state(), vm::RunState::Finished);
  EXPECT_EQ(VM.output(), (std::vector<int64_t>{7}));
}

TEST(Interpreter, StatsCountCallsAndInstructions) {
  ProgramBuilder PB;
  MethodId F = PB.declareStatic("f");
  {
    MethodBuilder MB = PB.defineMethod(F);
    MB.work(10);
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(F).invokeStatic(F).invokeStatic(F);
    MB.finish();
  }
  Program P = PB.finish(Main);
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  EXPECT_EQ(VM.stats().CallsExecuted, 3u);
  // Work counts its modelled cycles as instructions.
  EXPECT_GE(VM.stats().Instructions, 30u);
  EXPECT_EQ(VM.methodsExecuted(), 2u);
  EXPECT_EQ(VM.invocationCounts()[F], 3u);
}

TEST(Interpreter, DeterministicAcrossRuns) {
  auto Run = [] {
    Program P = buildMain([](ProgramBuilder &, MethodBuilder &MB) {
      MB.iconst(12345).istore(0);
      MB.iconst(0).istore(1);
      Label Head = MB.newLabel(), Exit = MB.newLabel();
      MB.bind(Head).iload(0).ifLe(Exit);
      MB.iload(1).iload(0).ixor().istore(1);
      MB.iinc(0, -7).jump(Head);
      MB.bind(Exit).iload(1).print();
    });
    vm::VMConfig Config;
    vm::VirtualMachine VM(P, Config);
    VM.run();
    return std::pair(VM.output(), VM.stats().Cycles);
  };
  auto A = Run();
  auto B = Run();
  EXPECT_EQ(A.first, B.first);
  EXPECT_EQ(A.second, B.second);
}
