//===- tests/TelemetryTest.cpp - telemetry subsystem tests ---------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// The JSON layer (writer/parser round trips, error rejection), the
// metric registry (histogram bucket boundaries, address stability,
// deterministic rendering), the trace sinks (event counts cross-checked
// against VMStats, Chrome trace_event well-formedness), and the
// determinism guarantee: identical runs produce byte-identical trace
// and metrics JSON.
//
//===----------------------------------------------------------------------===//

#include "experiments/Experiments.h"
#include "opt/InlineOracle.h"
#include "support/Json.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/TraceSink.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::tel;

//===----------------------------------------------------------------------===//
// JSON writer and parser
//===----------------------------------------------------------------------===//

TEST(Json, WriterBasics) {
  json::JsonWriter W;
  W.beginObject();
  W.key("n");
  W.value(uint64_t(42));
  W.key("s");
  W.value("a\"b\\c\n");
  W.key("list");
  W.beginArray();
  W.value(1);
  W.value(2.5);
  W.value(true);
  W.null();
  W.endArray();
  W.endObject();
  EXPECT_EQ(W.take(),
            "{\"n\":42,\"s\":\"a\\\"b\\\\c\\n\",\"list\":[1,2.5,true,null]}");
}

TEST(Json, ParseRoundTripIsByteExact) {
  // Numbers keep their lexeme, member order is preserved, so the parse
  // of writer output re-serializes byte-identically.
  std::string Doc = "{\"a\":1e-3,\"b\":[0,-7,3.25],\"c\":{\"x\":\"y\"},"
                    "\"d\":null,\"e\":false}";
  json::JsonParseResult R = json::parseJson(Doc);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(json::writeJson(*R.Value), Doc);
}

TEST(Json, ParserRejectsMalformed) {
  EXPECT_FALSE(json::parseJson("").ok());
  EXPECT_FALSE(json::parseJson("{").ok());
  EXPECT_FALSE(json::parseJson("{\"a\":}").ok());
  EXPECT_FALSE(json::parseJson("[1,]").ok());
  EXPECT_FALSE(json::parseJson("[1] garbage").ok());
  EXPECT_FALSE(json::parseJson("nan").ok());
  EXPECT_FALSE(json::parseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(json::parseJson("\"unterminated").ok());
}

TEST(Json, ParserAccessors) {
  json::JsonParseResult R =
      json::parseJson("{\"n\":3.5,\"arr\":[1,2],\"s\":\"hi\"}");
  ASSERT_TRUE(R.ok());
  EXPECT_DOUBLE_EQ(R.Value->numberOr("n", 0), 3.5);
  EXPECT_DOUBLE_EQ(R.Value->numberOr("missing", -1), -1);
  const json::JsonValue *Arr = R.Value->find("arr");
  ASSERT_NE(Arr, nullptr);
  ASSERT_TRUE(Arr->isArray());
  EXPECT_EQ(Arr->Elements.size(), 2u);
  EXPECT_EQ(R.Value->find("s")->Str, "hi");
}

//===----------------------------------------------------------------------===//
// Metric registry
//===----------------------------------------------------------------------===//

TEST(MetricRegistry, HistogramBucketBoundaries) {
  // Bucket 0 holds only 0; bucket k holds [2^(k-1), 2^k).
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(Histogram::bucketIndex(7), 3u);
  EXPECT_EQ(Histogram::bucketIndex(8), 4u);
  EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX), 64u);
  EXPECT_EQ(Histogram::bucketLow(0), 0u);
  EXPECT_EQ(Histogram::bucketLow(1), 1u);
  EXPECT_EQ(Histogram::bucketLow(4), 8u);

  Histogram H;
  for (uint64_t V : {0, 1, 2, 3, 4, 7, 8})
    H.record(V);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 2u);
  EXPECT_EQ(H.bucketCount(3), 2u);
  EXPECT_EQ(H.bucketCount(4), 1u);
  EXPECT_EQ(H.count(), 7u);
  EXPECT_EQ(H.sum(), 25u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 8u);
}

TEST(MetricRegistry, HistogramQuantilePins) {
  // {1, 2, 4, 8}: the p50 rank (2) lands at the top of bucket [2, 4),
  // interpolating to exactly 4; p90 and p99 interpolate past the
  // recorded maximum and clamp to it.
  Histogram H;
  for (uint64_t V : {1, 2, 4, 8})
    H.record(V);
  EXPECT_DOUBLE_EQ(H.quantile(0.50), 4.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.90), 8.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.99), 8.0);

  // A single-valued histogram is exact at every quantile (the clamp to
  // [min, max] collapses the bucket interpolation).
  Histogram Single;
  Single.record(100);
  EXPECT_DOUBLE_EQ(Single.quantile(0.50), 100.0);
  EXPECT_DOUBLE_EQ(Single.quantile(0.99), 100.0);

  Histogram Flat;
  for (int I = 0; I != 4; ++I)
    Flat.record(4);
  EXPECT_DOUBLE_EQ(Flat.quantile(0.50), 4.0);
  EXPECT_DOUBLE_EQ(Flat.quantile(0.90), 4.0);

  // An empty histogram has no quantiles — NaN, never a fabricated 0
  // (which a real all-zero distribution legitimately produces below).
  Histogram Empty;
  EXPECT_TRUE(std::isnan(Empty.quantile(0.50)));
  EXPECT_TRUE(std::isnan(Empty.quantile(0.0)));
  EXPECT_TRUE(std::isnan(Empty.quantile(1.0)));

  Histogram Zero;
  Zero.record(0);
  EXPECT_DOUBLE_EQ(Zero.quantile(0.50), 0.0);

  // count == 1 is exact at every quantile.
  Histogram One;
  One.record(37);
  EXPECT_DOUBLE_EQ(One.quantile(0.0), 37.0);
  EXPECT_DOUBLE_EQ(One.quantile(0.50), 37.0);
  EXPECT_DOUBLE_EQ(One.quantile(1.0), 37.0);

  // All samples in one bucket: interpolation stays inside the bucket
  // and the clamp keeps the result within the recorded [min, max].
  Histogram OneBucket;
  for (uint64_t V : {9, 10, 11, 12})
    OneBucket.record(V); // all in [8, 16)
  EXPECT_GE(OneBucket.quantile(0.50), 9.0);
  EXPECT_LE(OneBucket.quantile(0.50), 12.0);
  EXPECT_DOUBLE_EQ(OneBucket.quantile(0.99), 12.0);
}

TEST(MetricRegistry, HistogramJsonCarriesQuantiles) {
  MetricRegistry R;
  Histogram &H = R.histogram("h.values");
  for (uint64_t V : {1, 2, 4, 8})
    H.record(V);
  std::string Json = R.toJson();
  EXPECT_NE(Json.find("\"p50\":4"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"p90\":8"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"p99\":8"), std::string::npos) << Json;
}

TEST(MetricRegistry, EmptyHistogramJsonOmitsQuantiles) {
  // A registered-but-never-recorded histogram must not fabricate
  // quantiles in the report: the p50/p90/p99 keys are omitted (JSON
  // has no NaN), while count/sum/min/max stay.
  MetricRegistry R;
  R.histogram("h.empty");
  std::string Json = R.toJson();
  EXPECT_EQ(Json.find("p50"), std::string::npos) << Json;
  EXPECT_EQ(Json.find("p90"), std::string::npos) << Json;
  EXPECT_EQ(Json.find("p99"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"h.empty\":{\"count\":0"), std::string::npos) << Json;
}

TEST(MetricRegistry, SameNameSameAddress) {
  MetricRegistry R;
  Counter &C1 = R.counter("a.count");
  Counter &C2 = R.counter("a.count");
  EXPECT_EQ(&C1, &C2);
  C1 += 3;
  ++C2;
  EXPECT_EQ(uint64_t(C1), 4u);
  EXPECT_EQ(R.findCounter("a.count")->Value, 4u);
  EXPECT_EQ(R.findCounter("missing"), nullptr);

  Gauge &G = R.gauge("a.gauge");
  G = 17;
  G.accumulateMax(5);
  EXPECT_EQ(uint64_t(*R.findGauge("a.gauge")), 17u);
  EXPECT_EQ(R.size(), 2u);
}

TEST(MetricRegistry, MergeAccumulatesByKind) {
  MetricRegistry Parent, Child;
  Parent.counter("c") += 10;
  Parent.gauge("g") = 1;
  Parent.histogram("h").record(4);
  Child.counter("c") += 5;
  Child.counter("only.child") += 2;
  Child.gauge("g") = 9;
  Child.histogram("h").record(100);

  Parent.merge(Child);
  // Counters add; names unique to the child are created.
  EXPECT_EQ(uint64_t(*Parent.findCounter("c")), 15u);
  EXPECT_EQ(uint64_t(*Parent.findCounter("only.child")), 2u);
  // Gauges take the merged-in value (last write wins).
  EXPECT_EQ(uint64_t(*Parent.findGauge("g")), 9u);
  // Histograms merge pointwise: counts/sums add, extrema combine.
  const Histogram *H = Parent.findHistogram("h");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->count(), 2u);
  EXPECT_EQ(H->sum(), 104u);
  EXPECT_EQ(H->min(), 4u);
  EXPECT_EQ(H->max(), 100u);
  // The child is untouched.
  EXPECT_EQ(uint64_t(*Child.findCounter("c")), 5u);
}

TEST(MetricRegistry, MergeEmptyIsANoOp) {
  MetricRegistry Parent, Empty;
  Parent.counter("c") += 3;
  std::string Before = Parent.toJson();
  Parent.merge(Empty);
  EXPECT_EQ(Parent.toJson(), Before);
}

TEST(TraceSink, CollectorDrainReplaysInOrderAndClears) {
  CollectorSink Child, Parent;
  for (uint32_t I = 0; I != 10; ++I)
    Child.event(TraceEvent::timerTick(I, 0, I));
  Child.drainTo(Parent);
  EXPECT_EQ(Child.numEvents(), 0u);
  ASSERT_EQ(Parent.numEvents(), 10u);
  for (uint32_t I = 0; I != 10; ++I)
    EXPECT_EQ(Parent.events()[I].A, I);
  // Draining an empty collector adds nothing.
  Child.drainTo(Parent);
  EXPECT_EQ(Parent.numEvents(), 10u);
}

TEST(MetricRegistry, JsonIsSortedAndValid) {
  MetricRegistry R;
  R.counter("z.last") += 2;
  R.counter("a.first") += 1;
  R.gauge("m.middle") = 7;
  R.histogram("h.hist").record(5);
  std::string Doc = R.toJson();

  json::JsonParseResult Parsed = json::parseJson(Doc);
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  const json::JsonValue *Counters = Parsed.Value->find("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_EQ(Counters->Members.size(), 2u);
  // std::map iteration: names come out sorted.
  EXPECT_EQ(Counters->Members[0].first, "a.first");
  EXPECT_EQ(Counters->Members[1].first, "z.last");

  const json::JsonValue *Hists = Parsed.Value->find("histograms");
  ASSERT_NE(Hists, nullptr);
  const json::JsonValue *H = Hists->find("h.hist");
  ASSERT_NE(H, nullptr);
  EXPECT_DOUBLE_EQ(H->numberOr("count", 0), 1);
  EXPECT_DOUBLE_EQ(H->numberOr("sum", 0), 5);
  const json::JsonValue *Buckets = H->find("buckets");
  ASSERT_NE(Buckets, nullptr);
  ASSERT_EQ(Buckets->Elements.size(), 1u); // only non-empty buckets
  EXPECT_DOUBLE_EQ(Buckets->Elements[0].numberOr("lo", -1), 4); // [4,8)
  EXPECT_DOUBLE_EQ(Buckets->Elements[0].numberOr("count", -1), 1);

  // The text rendering mentions every metric.
  std::string Text = R.toText();
  for (const char *Name : {"a.first", "z.last", "m.middle", "h.hist"})
    EXPECT_NE(Text.find(Name), std::string::npos) << Name;
}

//===----------------------------------------------------------------------===//
// Trace sinks
//===----------------------------------------------------------------------===//

TEST(TraceSink, RingBufferOverflowKeepsNewestAndCounts) {
  RingBufferSink Sink(/*Capacity=*/4);
  for (uint64_t I = 0; I != 10; ++I)
    Sink.event(TraceEvent::sample(I, 0, 1, 2));
  Sink.event(TraceEvent::gc(10, 0, 64));
  EXPECT_EQ(Sink.totalEvents(), 11u);
  EXPECT_EQ(Sink.countOf(EventKind::Sample), 10u);
  EXPECT_EQ(Sink.countOf(EventKind::GC), 1u);

  std::vector<TraceEvent> Kept = Sink.snapshot();
  ASSERT_EQ(Kept.size(), 4u);
  // Oldest-first: the samples at cycles 7, 8, 9 then the GC at 10.
  EXPECT_EQ(Kept.front().Cycles, 7u);
  EXPECT_EQ(Kept.back().Kind, EventKind::GC);
  EXPECT_EQ(Kept.back().C, 64u);
}

/// Runs \p Workload small with CBS profiling and \p Sink installed.
template <typename Sink>
static vm::VMStats runWithSink(const char *Workload, Sink &S,
                               uint64_t Seed = 1) {
  const wl::WorkloadInfo *W = wl::findWorkload(Workload);
  bc::Program P = W->Build(wl::InputSize::Small, Seed);
  vm::VMConfig Config =
      exp::jitOnlyConfig(P, vm::Personality::JikesRVM, Seed);
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  Config.Trace = &S;
  vm::VirtualMachine VM(P, Config);
  EXPECT_NE(VM.run(), vm::RunState::Trapped);
  return VM.stats();
}

TEST(TraceSink, EventCountsMatchVMStats) {
  // jbb: multithreaded and allocating, so every kind of count is
  // non-trivial.
  RingBufferSink Sink(16);
  vm::VMStats Stats = runWithSink("jbb", Sink);

  EXPECT_EQ(Sink.countOf(EventKind::Sample), Stats.SamplesTaken);
  EXPECT_EQ(Sink.countOf(EventKind::TimerTick), Stats.TimerTicks);
  EXPECT_EQ(Sink.countOf(EventKind::GC), Stats.GCCount);
  EXPECT_EQ(Sink.countOf(EventKind::ThreadSwitch), Stats.ThreadSwitches);
  EXPECT_GT(Stats.SamplesTaken, 0u);
  EXPECT_GT(Stats.GCCount, 0u);
  EXPECT_GT(Stats.ThreadSwitches, 0u);
  // Every CBS window that was armed was eventually disarmed or the run
  // ended; arms bound disarms.
  EXPECT_GE(Sink.countOf(EventKind::WindowArm),
            Sink.countOf(EventKind::WindowDisarm));
  EXPECT_GT(Sink.countOf(EventKind::WindowArm), 0u);
  // Compiles come in start/finish pairs.
  EXPECT_EQ(Sink.countOf(EventKind::CompileStart),
            Sink.countOf(EventKind::CompileFinish));
}

TEST(TraceSink, ChromeTraceIsWellFormed) {
  ChromeTraceSink Sink;
  vm::VMStats Stats = runWithSink("compress", Sink);
  ASSERT_GT(Sink.numEvents(), 0u);

  json::JsonParseResult R = json::parseJson(Sink.str());
  ASSERT_TRUE(R.ok()) << R.Error;
  const json::JsonValue *Events = R.Value->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());

  uint64_t Samples = 0, Begins = 0, Ends = 0;
  for (const json::JsonValue &E : Events->Elements) {
    const json::JsonValue *Name = E.find("name");
    const json::JsonValue *Phase = E.find("ph");
    ASSERT_NE(Name, nullptr);
    ASSERT_NE(Phase, nullptr);
    EXPECT_NE(E.find("ts"), nullptr);
    EXPECT_NE(E.find("pid"), nullptr);
    EXPECT_NE(E.find("tid"), nullptr);
    if (Name->Str == "sample")
      ++Samples;
    if (Phase->Str == "B")
      ++Begins;
    if (Phase->Str == "E")
      ++Ends;
  }
  EXPECT_EQ(Samples, Stats.SamplesTaken);
  EXPECT_EQ(Begins, Ends); // compile durations pair up
  EXPECT_GT(Begins, 0u);
}

//===----------------------------------------------------------------------===//
// VM integration
//===----------------------------------------------------------------------===//

TEST(Telemetry, StatsFacadeMatchesRegistry) {
  const wl::WorkloadInfo *W = wl::findWorkload("jess");
  bc::Program P = W->Build(wl::InputSize::Small, 1);
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  vm::VirtualMachine VM(P, Config);
  VM.run();

  const vm::VMStats &Stats = VM.stats();
  const MetricRegistry &R = VM.metrics();
  EXPECT_EQ(Stats.Cycles, R.findCounter("vm.cycles")->Value);
  EXPECT_EQ(Stats.Instructions, R.findCounter("vm.instructions")->Value);
  EXPECT_EQ(Stats.SamplesTaken, R.findCounter("vm.samples_taken")->Value);
  EXPECT_EQ(Stats.TimerTicks, R.findCounter("vm.timer_ticks")->Value);
  EXPECT_EQ(Stats.MaxStackDepth, R.findGauge("vm.max_stack_depth")->Value);
  // Sample-depth histogram saw exactly the samples.
  EXPECT_EQ(R.findHistogram("vm.sample_stack_depth")->count(),
            Stats.SamplesTaken);
}

TEST(Telemetry, NoSinkNoEventsStillSameRun) {
  // The same seed with and without a sink must execute identically —
  // tracing is an observer, never a participant.
  RingBufferSink Sink;
  vm::VMStats WithSink = runWithSink("jess", Sink);

  const wl::WorkloadInfo *W = wl::findWorkload("jess");
  bc::Program P = W->Build(wl::InputSize::Small, 1);
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  EXPECT_EQ(VM.stats().Cycles, WithSink.Cycles);
  EXPECT_EQ(VM.stats().SamplesTaken, WithSink.SamplesTaken);
  EXPECT_EQ(VM.traceSink(), nullptr);
}

TEST(Telemetry, DeterministicTraceAndMetrics) {
  // Byte-identical trace and metrics JSON across two identical runs.
  auto once = [](std::string &TraceOut, std::string &MetricsOut) {
    const wl::WorkloadInfo *W = wl::findWorkload("jbb");
    bc::Program P = W->Build(wl::InputSize::Small, 7);
    vm::VMConfig Config =
        exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 7);
    Config.Profiler.Kind = vm::ProfilerKind::CBS;
    Config.Profiler.CBS.Stride = 3;
    Config.Profiler.CBS.SamplesPerTick = 16;
    ChromeTraceSink Sink;
    Config.Trace = &Sink;
    vm::VirtualMachine VM(P, Config);
    VM.run();
    TraceOut = Sink.str();
    MetricsOut = VM.metrics().toJson();
  };
  std::string Trace1, Metrics1, Trace2, Metrics2;
  once(Trace1, Metrics1);
  once(Trace2, Metrics2);
  EXPECT_EQ(Trace1, Trace2);
  EXPECT_EQ(Metrics1, Metrics2);
  EXPECT_FALSE(Trace1.empty());
}

TEST(Telemetry, DeterministicAdaptiveRun) {
  // The AOS emits inline_decision events from an unordered plan map;
  // sorting by site keeps the full adaptive trace reproducible.
  static opt::NewJikesOracle Oracle;
  auto once = [](std::string &TraceOut) {
    bc::Program P =
        wl::findWorkload("mtrt")->Build(wl::InputSize::Small, 3);
    ChromeTraceSink Sink;
    exp::SpeedupOptions Options;
    Options.Oracle = &Oracle;
    Options.Prof = exp::chosenCBS(vm::Personality::JikesRVM);
    Options.WarmupCycles = 2'000'000;
    Options.MeasureCycles = 2'000'000;
    Options.Seed = 3;
    Options.Trace = &Sink;
    exp::ThroughputResult R = exp::measureThroughput(P, Options);
    EXPECT_GT(R.Stats.Cycles, 0u);
    TraceOut = Sink.str();
  };
  std::string Trace1, Trace2;
  once(Trace1);
  once(Trace2);
  EXPECT_EQ(Trace1, Trace2);

  // The adaptive run actually traced inlining decisions.
  json::JsonParseResult R = json::parseJson(Trace1);
  ASSERT_TRUE(R.ok()) << R.Error;
  bool SawInline = false;
  for (const json::JsonValue &E : R.Value->find("traceEvents")->Elements)
    if (const json::JsonValue *Name = E.find("name"))
      SawInline = SawInline || Name->Str == "inline_decision";
  EXPECT_TRUE(SawInline);
}

TEST(Telemetry, AOSGaugesPublished) {
  bc::Program P = wl::findWorkload("jess")->Build(wl::InputSize::Small, 1);
  opt::NewJikesOracle Oracle;
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler = exp::chosenCBS(vm::Personality::JikesRVM);
  vm::VirtualMachine VM(P, Config);
  aos::AdaptiveSystem AOS(&Oracle);
  VM.setClient(&AOS);
  VM.run();

  const MetricRegistry &R = VM.metrics();
  ASSERT_NE(R.findGauge("aos.ticks"), nullptr);
  EXPECT_EQ(R.findGauge("aos.ticks")->Value, AOS.stats().Ticks);
  EXPECT_EQ(R.findGauge("aos.recompilations")->Value,
            AOS.stats().Recompilations);
  EXPECT_EQ(R.findGauge("aos.plans_computed")->Value,
            AOS.stats().PlansComputed);
  EXPECT_GT(AOS.stats().Ticks, 0u);
}
