//===- tests/VerifierTest.cpp - bytecode verifier tests ------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// The verifier is what lets the interpreter run untyped slots at full
// speed, so these tests cover both directions extensively: valid shapes
// must pass, and every class of malformed code must be rejected.
// Synthetic (builder-unreachable) code is checked via verifyMethodBody.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Verifier.h"

#include <gtest/gtest.h>

#include <functional>

using namespace cbs;
using namespace cbs::bc;

namespace {

/// A program with one static method "f" (int arg, int result) plus a
/// virtual selector for call tests; f's body is replaced per test via
/// verifyMethodBody.
struct Fixture {
  Fixture() {
    Helper = PB.declareStatic("helper", {ValKind::Int}, /*HasResult=*/true);
    {
      MethodBuilder MB = PB.defineMethod(Helper);
      MB.iload(0).iret();
      MB.finish();
    }
    VoidHelper = PB.declareStatic("voidHelper");
    {
      MethodBuilder MB = PB.defineMethod(VoidHelper);
      MB.finish();
    }
    Klass = PB.addClass("K", InvalidClassId, 2);
    Sel = PB.addSelector("m", 2);
    VMeth = PB.declareVirtual(Klass, Sel, "", {}, /*HasResult=*/true);
    {
      MethodBuilder MB = PB.defineMethod(VMeth);
      MB.iload(1).iret();
      MB.finish();
    }
    F = PB.declareStatic("f", {ValKind::Int}, /*HasResult=*/true);
    {
      MethodBuilder MB = PB.defineMethod(F);
      MB.iload(0).iret();
      MB.finish();
    }
    Main = PB.declareStatic("main");
    {
      MethodBuilder MB = PB.defineMethod(Main);
      MB.finish();
    }
    P = PB.finish(Main);
  }

  VerifyResult check(std::vector<Instruction> Code, uint32_t NumLocals = 4) {
    return verifyMethodBody(*P, F, Code, NumLocals);
  }

  ProgramBuilder PB;
  MethodId Helper, VoidHelper, VMeth, F, Main;
  ClassId Klass;
  SelectorId Sel;
  std::optional<Program> P;
};

using I = Instruction;
using O = Opcode;

} // namespace

TEST(Verifier, AcceptsMinimalBody) {
  Fixture FX;
  EXPECT_TRUE(FX.check({{O::IConst, 1}, {O::IReturn}}).ok());
}

TEST(Verifier, RejectsEmptyBody) {
  Fixture FX;
  EXPECT_FALSE(FX.check({}).ok());
}

TEST(Verifier, RejectsFallOffEnd) {
  Fixture FX;
  VerifyResult R = FX.check({{O::IConst, 1}});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("falls off the end"), std::string::npos);
}

TEST(Verifier, RejectsStackUnderflow) {
  Fixture FX;
  EXPECT_FALSE(FX.check({{O::IAdd}, {O::IReturn}}).ok());
  EXPECT_FALSE(FX.check({{O::IConst, 1}, {O::IAdd}, {O::IReturn}}).ok());
  EXPECT_FALSE(FX.check({{O::IStore, 1}, {O::IConst, 0}, {O::IReturn}}).ok());
  EXPECT_FALSE(FX.check({{O::Print}, {O::IConst, 0}, {O::IReturn}}).ok());
}

TEST(Verifier, RejectsKindMismatch) {
  Fixture FX;
  // Storing an int as a ref.
  EXPECT_FALSE(FX.check({{O::IConst, 1}, {O::AStore, 1}, {O::IConst, 0},
                         {O::IReturn}})
                   .ok());
  // getfield on an int.
  EXPECT_FALSE(
      FX.check({{O::IConst, 1}, {O::GetField, 0}, {O::IReturn}}).ok());
  // Arithmetic on a ref.
  EXPECT_FALSE(FX.check({{O::AConstNull}, {O::IConst, 1}, {O::IAdd},
                         {O::IReturn}})
                   .ok());
  // Returning a ref from an int method.
  EXPECT_FALSE(FX.check({{O::AConstNull}, {O::AReturn}}).ok());
}

TEST(Verifier, AcceptsRefDiscipline) {
  Fixture FX;
  EXPECT_TRUE(FX.check({{O::New, 0},
                        {O::AStore, 1},
                        {O::ALoad, 1},
                        {O::GetField, 1},
                        {O::IReturn}})
                  .ok());
}

TEST(Verifier, RejectsUninitializedLocal) {
  Fixture FX;
  VerifyResult R = FX.check({{O::ILoad, 2}, {O::IReturn}});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("uninitialized"), std::string::npos);
}

TEST(Verifier, ArgumentsAreInitialized) {
  Fixture FX;
  EXPECT_TRUE(FX.check({{O::ILoad, 0}, {O::IReturn}}).ok());
}

TEST(Verifier, RejectsLocalOutOfRange) {
  Fixture FX;
  EXPECT_FALSE(FX.check({{O::ILoad, 9}, {O::IReturn}}, 4).ok());
  EXPECT_FALSE(
      FX.check({{O::IConst, 1}, {O::IStore, 4}, {O::IConst, 0}, {O::IReturn}},
               4)
          .ok());
  EXPECT_FALSE(FX.check({{O::IInc, 4, 1}, {O::IConst, 0}, {O::IReturn}}, 4)
                   .ok());
}

TEST(Verifier, RejectsBranchTargetOutOfRange) {
  Fixture FX;
  EXPECT_FALSE(FX.check({{O::Goto, 99}, {O::IConst, 0}, {O::IReturn}}).ok());
  EXPECT_FALSE(FX.check({{O::Goto, -1}, {O::IConst, 0}, {O::IReturn}}).ok());
}

TEST(Verifier, RejectsStackDepthMismatchAtMerge) {
  Fixture FX;
  // Path A pushes one value, path B pushes two, merging at pc 5.
  EXPECT_FALSE(FX.check({{O::ILoad, 0},    // 0: cond
                         {O::IfEq, 4},     // 1: if 0 goto 4
                         {O::IConst, 1},   // 2
                         {O::Goto, 6},     // 3 -> merge with depth 1
                         {O::IConst, 1},   // 4
                         {O::IConst, 2},   // 5 (falls to 6 with depth 2)
                         {O::IReturn}})    // 6
                   .ok());
}

TEST(Verifier, AcceptsBalancedMerge) {
  Fixture FX;
  EXPECT_TRUE(FX.check({{O::ILoad, 0},
                        {O::IfEq, 4},
                        {O::IConst, 1},
                        {O::Goto, 5},
                        {O::IConst, 2},
                        {O::IReturn}})
                  .ok());
}

TEST(Verifier, ConflictingLocalKindsOnlyErrorWhenUsed) {
  Fixture FX;
  // Local 1 holds an int on one path, a ref on the other; never read:
  // allowed.
  EXPECT_TRUE(FX.check({{O::ILoad, 0},
                        {O::IfEq, 5},
                        {O::IConst, 1},
                        {O::IStore, 1},
                        {O::Goto, 7},
                        {O::AConstNull},
                        {O::AStore, 1},
                        {O::IConst, 0},
                        {O::IReturn}})
                  .ok());
  // Same, but read afterwards: rejected.
  EXPECT_FALSE(FX.check({{O::ILoad, 0},
                         {O::IfEq, 5},
                         {O::IConst, 1},
                         {O::IStore, 1},
                         {O::Goto, 7},
                         {O::AConstNull},
                         {O::AStore, 1},
                         {O::ILoad, 1},
                         {O::IReturn}})
                   .ok());
}

TEST(Verifier, CallArityAndKinds) {
  Fixture FX;
  SiteId S0 = 0; // Any site id is fine for verifyMethodBody.
  // Correct call.
  EXPECT_TRUE(FX.check({{O::IConst, 5},
                        I(O::InvokeStatic, static_cast<int32_t>(FX.Helper), 1,
                          S0),
                        {O::IReturn}})
                  .ok());
  // Wrong declared arity.
  EXPECT_FALSE(FX.check({{O::IConst, 5},
                         I(O::InvokeStatic, static_cast<int32_t>(FX.Helper),
                           2, S0),
                         {O::IReturn}})
                   .ok());
  // Wrong operand kind.
  EXPECT_FALSE(FX.check({{O::AConstNull},
                         I(O::InvokeStatic, static_cast<int32_t>(FX.Helper),
                           1, S0),
                         {O::IReturn}})
                   .ok());
  // Unknown method id.
  EXPECT_FALSE(FX.check({{O::IConst, 5},
                         I(O::InvokeStatic, 12345, 1, S0),
                         {O::IReturn}})
                   .ok());
  // Void helper leaves nothing on the stack.
  EXPECT_FALSE(FX.check({I(O::InvokeStatic,
                           static_cast<int32_t>(FX.VoidHelper), 0, S0),
                         {O::IReturn}})
                   .ok());
}

TEST(Verifier, VirtualCallChecks) {
  Fixture FX;
  // Correct: receiver + int arg.
  EXPECT_TRUE(FX.check({{O::New, static_cast<int32_t>(FX.Klass)},
                        {O::IConst, 3},
                        I(O::InvokeVirtual, static_cast<int32_t>(FX.Sel), 2,
                          0),
                        {O::IReturn}})
                  .ok());
  // Receiver must be a ref.
  EXPECT_FALSE(FX.check({{O::IConst, 1},
                         {O::IConst, 3},
                         I(O::InvokeVirtual, static_cast<int32_t>(FX.Sel), 2,
                           0),
                         {O::IReturn}})
                   .ok());
  // Unknown selector.
  EXPECT_FALSE(FX.check({{O::New, static_cast<int32_t>(FX.Klass)},
                         {O::IConst, 3},
                         I(O::InvokeVirtual, 777, 2, 0),
                         {O::IReturn}})
                   .ok());
}

TEST(Verifier, ReturnKindChecks) {
  Fixture FX;
  // Void return from an int method.
  EXPECT_FALSE(FX.check({{O::Return}}).ok());
}

TEST(Verifier, WorkMustBePositive) {
  Fixture FX;
  EXPECT_FALSE(FX.check({{O::Work, 0}, {O::IConst, 0}, {O::IReturn}}).ok());
  EXPECT_TRUE(FX.check({{O::Work, 1}, {O::IConst, 0}, {O::IReturn}}).ok());
}

TEST(Verifier, UnknownClassRejected) {
  Fixture FX;
  EXPECT_FALSE(FX.check({{O::New, 55}, {O::AStore, 1}, {O::IConst, 0},
                         {O::IReturn}})
                   .ok());
  EXPECT_FALSE(FX.check({{O::AConstNull}, {O::ClassEq, 55}, {O::IReturn}})
                   .ok());
}

TEST(Verifier, SpawnTargetChecks) {
  Fixture FX;
  // Spawn of a void argumentless method: fine.
  EXPECT_TRUE(FX.check({I(O::Spawn, static_cast<int32_t>(FX.VoidHelper)),
                        {O::IConst, 0},
                        {O::IReturn}})
                  .ok());
  // Spawn of a method with arguments / result: rejected.
  EXPECT_FALSE(FX.check({I(O::Spawn, static_cast<int32_t>(FX.Helper)),
                         {O::IConst, 0},
                         {O::IReturn}})
                   .ok());
}

TEST(Verifier, LoopWithConsistentState) {
  Fixture FX;
  EXPECT_TRUE(FX.check({{O::IConst, 10},
                        {O::IStore, 1},
                        {O::ILoad, 1},   // 2: loop head
                        {O::IfLe, 6},
                        {O::IInc, 1, -1},
                        {O::Goto, 2},
                        {O::ILoad, 1},
                        {O::IReturn}})
                  .ok());
}

TEST(Verifier, LoopAccumulatingStackRejected) {
  Fixture FX;
  // Each iteration pushes without popping: depth mismatch at the head.
  EXPECT_FALSE(FX.check({{O::IConst, 0},  // 0 (head target: depth varies)
                         {O::ILoad, 0},
                         {O::IfEq, 0},
                         {O::IReturn}})
                   .ok());
}

TEST(Verifier, WholeProgramChecksEntrySignature) {
  ProgramBuilder PB;
  MethodId Entry = PB.declareStatic("entry", {ValKind::Int});
  {
    MethodBuilder MB = PB.defineMethod(Entry);
    MB.finish();
  }
  Program P = PB.finish(Entry);
  VerifyResult R = verifyProgram(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("entry method"), std::string::npos);
}

TEST(Verifier, WholeProgramChecksSelectorSignatureConsistency) {
  ProgramBuilder PB;
  ClassId A = PB.addClass("A", InvalidClassId, 0);
  ClassId B = PB.addClass("B", InvalidClassId, 0);
  SelectorId Sel = PB.addSelector("m", 1);
  MethodId MA = PB.declareVirtual(A, Sel, "", {}, /*HasResult=*/true);
  MethodId MB_ = PB.declareVirtual(B, Sel, "", {}, /*HasResult=*/false);
  {
    MethodBuilder MB = PB.defineMethod(MA);
    MB.iconst(1).iret();
    MB.finish();
  }
  {
    MethodBuilder MB = PB.defineMethod(MB_);
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.finish();
  }
  Program P = PB.finish(Main);
  VerifyResult R = verifyProgram(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("mismatched signatures"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Diagnostic shape: generated programs have opaque bodies, so a usable
// error must carry the qualified method name and the instruction index.
//===----------------------------------------------------------------------===//

TEST(Verifier, ErrorsNameTheMethodAndInstruction) {
  Fixture FX;
  VerifyResult R = FX.check({{O::IConst, 1}, {O::IAdd}, {O::IReturn}});
  ASSERT_FALSE(R.ok());
  // Static method: plain name, the failing pc, and the opcode.
  EXPECT_NE(R.str().find("method 'f' pc 1 (iadd)"), std::string::npos)
      << R.str();
}

TEST(Verifier, VirtualMethodErrorsUseTheQualifiedName) {
  // VMeth was declared with an empty name, so it inherits the bare
  // selector name "m". The diagnostic must qualify it with the owner
  // class — every implementation of a selector shares the bare name,
  // and "method 'm'" would not say which body is broken.
  Fixture FX;
  VerifyResult R =
      verifyMethodBody(*FX.P, FX.VMeth, {{O::IAdd}, {O::IReturn}}, 4);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("method 'K::m' pc 0 (iadd)"), std::string::npos)
      << R.str();
  EXPECT_EQ(R.str().find("method 'm'"), std::string::npos) << R.str();
}

TEST(Verifier, WholeProgramErrorsCarryTheQualifiedName) {
  // Same shape requirement through verifyProgram, where the offending
  // body sits inside a full program rather than being handed in.
  ProgramBuilder PB;
  ClassId K = PB.addClass("Widget", InvalidClassId, 0);
  SelectorId Sel = PB.addSelector("spin", 1);
  MethodId M = PB.declareVirtual(K, Sel, "", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(M);
    MB.iadd().iret(); // Underflows at pc 0.
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.finish();
  }
  Program P = PB.finish(Main);
  VerifyResult R = verifyProgram(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("method 'Widget::spin' pc 0"), std::string::npos)
      << R.str();
}

TEST(Verifier, AcceptsConditionalFamilies) {
  Fixture FX;
  for (O Cond : {O::IfEq, O::IfNe, O::IfLt, O::IfLe, O::IfGt, O::IfGe}) {
    EXPECT_TRUE(FX.check({{O::ILoad, 0},
                          {Cond, 3},
                          {O::Nop},
                          {O::IConst, 0},
                          {O::IReturn}})
                    .ok())
        << opcodeName(Cond);
  }
  for (O Cmp : {O::IfICmpEq, O::IfICmpNe, O::IfICmpLt, O::IfICmpGe}) {
    EXPECT_TRUE(FX.check({{O::ILoad, 0},
                          {O::IConst, 2},
                          {Cmp, 4},
                          {O::Nop},
                          {O::IConst, 0},
                          {O::IReturn}})
                    .ok())
        << opcodeName(Cmp);
  }
}
