//===- tests/WorkloadTest.cpp - benchmark suite tests --------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Verifier.h"
#include "experiments/Experiments.h"
#include "profiling/OverlapMetric.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::wl;

class WorkloadSuiteTest : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadSuiteTest, BuildsAndVerifies) {
  const WorkloadInfo *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  for (InputSize Size : {InputSize::Small, InputSize::Large}) {
    bc::Program P = W->Build(Size, 1);
    bc::VerifyResult V = bc::verifyProgram(P);
    EXPECT_TRUE(V.ok()) << W->Name << "-" << inputSizeName(Size) << "\n"
                        << V.str();
  }
}

TEST_P(WorkloadSuiteTest, RunsToCompletionDeterministically) {
  const WorkloadInfo *W = findWorkload(GetParam());
  bc::Program P = W->Build(InputSize::Small, 2);
  auto Run = [&] {
    vm::VMConfig Config;
    Config.MaxCycles = 2'000'000'000;
    vm::VirtualMachine VM(P, Config);
    EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();
    return std::pair(VM.output(), VM.stats().Cycles);
  };
  auto A = Run(), B = Run();
  EXPECT_EQ(A, B);
  EXPECT_FALSE(A.first.empty()) << "workloads print a checksum";
}

TEST_P(WorkloadSuiteTest, SeedsVaryTheProgram) {
  const WorkloadInfo *W = findWorkload(GetParam());
  bc::Program A = W->Build(InputSize::Small, 1);
  bc::Program B = W->Build(InputSize::Small, 99);
  // The structure is fixed; seed-dependent work constants differ.
  EXPECT_EQ(A.numMethods(), B.numMethods());
  bool AnyDifference = false;
  for (bc::MethodId M = 0; M != A.numMethods(); ++M) {
    if (A.method(M).Code.size() != B.method(M).Code.size()) {
      AnyDifference = true;
      break;
    }
    for (size_t PC = 0; PC != A.method(M).Code.size(); ++PC)
      if (A.method(M).Code[PC].A != B.method(M).Code[PC].A) {
        AnyDifference = true;
        break;
      }
  }
  EXPECT_TRUE(AnyDifference);
}

TEST_P(WorkloadSuiteTest, LargeRunsLongerThanSmall) {
  const WorkloadInfo *W = findWorkload(GetParam());
  auto Cycles = [&](InputSize Size) {
    bc::Program P = W->Build(Size, 1);
    vm::VMConfig Config;
    Config.MaxCycles = 2'000'000'000;
    vm::VirtualMachine VM(P, Config);
    VM.run();
    return VM.stats().Cycles;
  };
  uint64_t Small = Cycles(InputSize::Small);
  uint64_t Large = Cycles(InputSize::Large);
  EXPECT_GT(Large, 3 * Small);
  // Small inputs land in the calibrated range (~4-25M cycles).
  EXPECT_GT(Small, 2'000'000u);
  EXPECT_LT(Small, 40'000'000u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadSuiteTest,
    ::testing::Values("compress", "jess", "db", "javac", "mpegaudio",
                      "mtrt", "jack", "ipsixql", "xerces", "daikon",
                      "kawa", "jbb", "soot"));

TEST(Workloads, SuiteHasThirteenBenchmarks) {
  EXPECT_EQ(suite().size(), 13u);
  EXPECT_EQ(findWorkload("nosuch"), nullptr);
}

TEST(Workloads, MultithreadedFlagsMatchSpawnUsage) {
  for (const WorkloadInfo &W : suite()) {
    bc::Program P = W.Build(InputSize::Small, 1);
    bool HasSpawn = false;
    for (bc::MethodId M = 0; M != P.numMethods(); ++M)
      for (const bc::Instruction &I : P.method(M).Code)
        HasSpawn |= I.Op == bc::Opcode::Spawn;
    EXPECT_EQ(HasSpawn, W.Multithreaded) << W.Name;
  }
}

TEST(Workloads, MethodsExecutedTrackTable1) {
  // Paper Table 1 methods-executed counts; ours should be within ~25%.
  struct Expect {
    const char *Name;
    size_t Paper;
  };
  const Expect Expected[] = {
      {"compress", 243}, {"jess", 662},   {"db", 258},    {"javac", 939},
      {"mpegaudio", 416}, {"mtrt", 368},  {"jack", 477},  {"ipsixql", 459},
      {"xerces", 719},   {"daikon", 1671}, {"kawa", 1794}, {"jbb", 597},
      {"soot", 1215},
  };
  for (const Expect &E : Expected) {
    const WorkloadInfo *W = findWorkload(E.Name);
    bc::Program P = W->Build(InputSize::Small, 1);
    exp::PerfectProfile PP =
        exp::runPerfect(P, vm::Personality::JikesRVM, 1);
    double Ratio =
        static_cast<double>(PP.MethodsExecuted) / static_cast<double>(E.Paper);
    EXPECT_GT(Ratio, 0.70) << E.Name << " executed " << PP.MethodsExecuted;
    EXPECT_LT(Ratio, 1.30) << E.Name << " executed " << PP.MethodsExecuted;
  }
}

TEST(Workloads, Figure1ProgramShape) {
  bc::Program P = buildFigure1(500, 1000);
  ASSERT_TRUE(bc::verifyProgram(P).ok());
  exp::PerfectProfile PP = exp::runPerfect(P, vm::Personality::JikesRVM, 1);
  // Exactly two hot edges, equal weight.
  ASSERT_EQ(PP.DCG.numEdges(), 2u);
  auto Edges = PP.DCG.sortedEdges();
  EXPECT_EQ(Edges[0].second, Edges[1].second);
}

TEST(Workloads, Figure1TimerBiasReproduces) {
  // The paper's Figure 1 claim: timer sampling sees call_1 hot and
  // call_2 cold, while both execute equally often.
  bc::Program P = buildFigure1(800, 200'000);
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::Timer;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  prof::DCGSnapshot DCG = VM.profile();
  ASSERT_GE(DCG.numEdges(), 1u);
  auto Dist0 = DCG.siteDistribution(0); // call_1's site
  auto Dist1 = DCG.siteDistribution(1); // call_2's site
  uint64_t W1 = Dist0.empty() ? 0 : Dist0.front().second;
  uint64_t W2 = Dist1.empty() ? 0 : Dist1.front().second;
  EXPECT_GT(W1, 10 * std::max<uint64_t>(W2, 1))
      << "timer sampling must massively over-weight call_1";
}

TEST(Workloads, Figure1CBSSplitsEvenly) {
  bc::Program P = buildFigure1(800, 200'000);
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler = exp::chosenCBS(vm::Personality::JikesRVM);
  vm::VirtualMachine VM(P, Config);
  VM.run();
  prof::DCGSnapshot DCG = VM.profile();
  auto Dist0 = DCG.siteDistribution(0);
  auto Dist1 = DCG.siteDistribution(1);
  ASSERT_FALSE(Dist0.empty());
  ASSERT_FALSE(Dist1.empty());
  double Ratio = static_cast<double>(Dist0.front().second) /
                 static_cast<double>(Dist1.front().second);
  EXPECT_NEAR(Ratio, 1.0, 0.15) << "CBS must see both calls equally";
}

TEST(Workloads, AdversaryDefeatsFixedSkipOnly) {
  // §4: with a fixed initial skip aligned to the burst, CBS keeps
  // sampling the same calls; randomizing the skip fixes it.
  uint32_t Stride = 4, Samples = 2;
  bc::Program P = buildAdversary(Stride * Samples + 1, 120'000);
  auto DecoyShare = [&](prof::SkipPolicy Skip) {
    vm::VMConfig Config =
        exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
    Config.Profiler.Kind = vm::ProfilerKind::CBS;
    Config.Profiler.CBS.Stride = Stride;
    Config.Profiler.CBS.SamplesPerTick = Samples;
    Config.Profiler.CBS.Skip = Skip;
    vm::VirtualMachine VM(P, Config);
    VM.run();
    prof::DCGSnapshot DCG = VM.profile();
    uint64_t Decoy = 0, Total = DCG.totalWeight();
    DCG.forEachEdge([&](prof::CallEdge E, uint64_t W) {
      if (P.qualifiedName(E.Callee) == "decoy")
        Decoy += W;
    });
    return Total == 0 ? 0.0
                      : static_cast<double>(Decoy) /
                            static_cast<double>(Total);
  };
  double FixedShare = DecoyShare(prof::SkipPolicy::Fixed);
  double RandomShare = DecoyShare(prof::SkipPolicy::Random);
  double TrueShare = 1.0 / (Stride * Samples + 1);
  // Randomized skips track the true share far better than fixed.
  EXPECT_LT(std::abs(RandomShare - TrueShare),
            std::abs(FixedShare - TrueShare))
      << "fixed=" << FixedShare << " random=" << RandomShare
      << " true=" << TrueShare;
}

TEST(Workloads, PhasedProgramShiftsHotSet) {
  bc::Program P = buildPhased(InputSize::Small, 1);
  ASSERT_TRUE(bc::verifyProgram(P).ok());
  // Run exhaustively to the midpoint and to the end: the two halves'
  // profiles must be nearly disjoint in their hot edges.
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::Exhaustive;
  Config.Profiler.ChargeExhaustiveCounters = false;
  vm::VirtualMachine Whole(P, Config);
  Whole.run();
  uint64_t Mid = Whole.stats().Cycles / 2;

  vm::VirtualMachine VM(P, Config);
  VM.run(Mid);
  prof::DCGSnapshot FirstHalf = VM.profile();
  prof::DCGSnapshot WholeDCG = Whole.profile();
  std::vector<prof::DCGSnapshot::Edge> Shifted;
  WholeDCG.forEachEdge([&](prof::CallEdge E, uint64_t W) {
    uint64_t Before = FirstHalf.weight(E);
    if (W > Before)
      Shifted.push_back({E, W - Before});
  });
  prof::DCGSnapshot SecondHalf =
      prof::DCGSnapshot::fromEdges(std::move(Shifted));
  EXPECT_LT(prof::overlap(FirstHalf, SecondHalf), 40.0)
      << "phases must have mostly disjoint profiles";
}

TEST(Workloads, DecayTracksPhaseShift) {
  bc::Program P = buildPhased(InputSize::Small, 1);
  // Phase-B ground truth.
  vm::VMConfig ExConfig =
      exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  ExConfig.Profiler.Kind = vm::ProfilerKind::Exhaustive;
  ExConfig.Profiler.ChargeExhaustiveCounters = false;
  vm::VirtualMachine Whole(P, ExConfig);
  Whole.run();
  uint64_t Mid = Whole.stats().Cycles / 2;
  vm::VirtualMachine Half(P, ExConfig);
  Half.run(Mid);
  prof::DCGSnapshot PhaseB;
  {
    prof::DCGSnapshot FirstHalf = Half.profile();
    std::vector<prof::DCGSnapshot::Edge> Shifted;
    Whole.profile().forEachEdge([&](prof::CallEdge E, uint64_t W) {
      uint64_t Before = FirstHalf.weight(E);
      if (W > Before)
        Shifted.push_back({E, W - Before});
    });
    PhaseB = prof::DCGSnapshot::fromEdges(std::move(Shifted));
  }

  auto FinalAccuracy = [&](bool Decay) {
    vm::VMConfig Config =
        exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
    Config.Profiler = exp::chosenCBS(vm::Personality::JikesRVM);
    if (Decay) {
      Config.Profiler.DecayEveryTicks = 8;
      Config.Profiler.DecayFactor = 0.7;
    }
    vm::VirtualMachine VM(P, Config);
    VM.run();
    return prof::accuracy(VM.profile(), PhaseB);
  };
  double Plain = FinalAccuracy(false);
  double Decayed = FinalAccuracy(true);
  EXPECT_GT(Decayed, Plain + 10.0)
      << "decay must make the repository track the current phase";
}
