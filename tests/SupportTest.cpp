//===- tests/SupportTest.cpp - support library tests ---------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <clocale>
#include <set>
#include <stdexcept>

using namespace cbs;

//===----------------------------------------------------------------------===//
// RandomEngine
//===----------------------------------------------------------------------===//

TEST(RandomEngine, DeterministicForSeed) {
  RandomEngine A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomEngine, DifferentSeedsDiffer) {
  RandomEngine A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_EQ(Same, 0);
}

TEST(RandomEngine, ReseedRestartsStream) {
  RandomEngine A(7);
  uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(RandomEngine, NextBelowRespectsBound) {
  RandomEngine RNG(3);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(RNG.nextBelow(Bound), Bound);
  }
}

TEST(RandomEngine, NextBelowOneAlwaysZero) {
  RandomEngine RNG(5);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(RNG.nextBelow(1), 0u);
}

TEST(RandomEngine, NextBelowCoversAllResidues) {
  RandomEngine RNG(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(RNG.nextBelow(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RandomEngine, NextInRangeInclusive) {
  RandomEngine RNG(13);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = RNG.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RandomEngine, NextDoubleInUnitInterval) {
  RandomEngine RNG(17);
  for (int I = 0; I < 1000; ++I) {
    double D = RNG.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomEngine, NextBoolExtremes) {
  RandomEngine RNG(19);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(RNG.nextBool(0.0));
    EXPECT_TRUE(RNG.nextBool(1.0));
  }
}

TEST(RandomEngine, NextBoolRoughlyCalibrated) {
  RandomEngine RNG(23);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += RNG.nextBool(0.25);
  EXPECT_NEAR(Hits / 10000.0, 0.25, 0.03);
}

TEST(RandomEngine, ShufflePreservesElements) {
  RandomEngine RNG(29);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Sorted = V;
  RNG.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Sorted);
}

TEST(RandomEngine, PickWeightedFollowsWeights) {
  RandomEngine RNG(31);
  std::vector<double> Weights = {1.0, 3.0};
  int Count1 = 0;
  for (int I = 0; I < 8000; ++I)
    if (RNG.pickWeighted(Weights) == 1)
      ++Count1;
  EXPECT_NEAR(Count1 / 8000.0, 0.75, 0.03);
}

TEST(RandomEngine, PickWeightedSkipsZeroWeights) {
  RandomEngine RNG(37);
  std::vector<double> Weights = {0.0, 1.0, 0.0};
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(RNG.pickWeighted(Weights), 1u);
}

//===----------------------------------------------------------------------===//
// ZipfDistribution
//===----------------------------------------------------------------------===//

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfDistribution Z(16, 1.0);
  double Sum = 0;
  for (size_t I = 0; I != Z.size(); ++I)
    Sum += Z.probability(I);
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(Zipf, RankZeroIsHeaviest) {
  ZipfDistribution Z(10, 1.2);
  for (size_t I = 1; I != Z.size(); ++I)
    EXPECT_GT(Z.probability(0), Z.probability(I));
}

TEST(Zipf, ZeroExponentIsUniform) {
  ZipfDistribution Z(8, 0.0);
  for (size_t I = 0; I != Z.size(); ++I)
    EXPECT_NEAR(Z.probability(I), 1.0 / 8, 1e-9);
}

TEST(Zipf, SampleMatchesDistribution) {
  ZipfDistribution Z(4, 1.0);
  RandomEngine RNG(41);
  std::vector<int> Counts(4, 0);
  const int N = 40000;
  for (int I = 0; I < N; ++I)
    ++Counts[Z.sample(RNG)];
  for (size_t I = 0; I != 4; ++I)
    EXPECT_NEAR(Counts[I] / double(N), Z.probability(I), 0.02);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(Statistics, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0);
  EXPECT_DOUBLE_EQ(mean({-2, 2}), 0);
}

TEST(Statistics, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({7}), 7);
  EXPECT_DOUBLE_EQ(median({}), 0);
}

TEST(Statistics, MedianIgnoresOutliers) {
  EXPECT_DOUBLE_EQ(median({1, 2, 3, 4, 1000}), 3);
}

TEST(Statistics, Geomean) {
  EXPECT_NEAR(geomean({1, 100}), 10, 1e-9);
  EXPECT_NEAR(geomean({2, 8}), 4, 1e-9);
  EXPECT_DOUBLE_EQ(geomean({}), 0);
}

TEST(Statistics, StdDev) {
  EXPECT_DOUBLE_EQ(stddev({5}), 0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.01);
}

TEST(Statistics, Percentile) {
  std::vector<double> V = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(V, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(V, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(V, 50), 25);
}

//===----------------------------------------------------------------------===//
// TablePrinter
//===----------------------------------------------------------------------===//

TEST(TablePrinter, AlignsColumns) {
  TablePrinter TP;
  TP.setHeader({"name", "value"});
  TP.addRow({"a", "1"});
  TP.addRow({"long-name", "22"});
  std::string Out = TP.render();
  EXPECT_NE(Out.find("long-name"), std::string::npos);
  EXPECT_NE(Out.find("name"), std::string::npos);
  // Every line has the same length (aligned columns).
  size_t FirstNL = Out.find('\n');
  ASSERT_NE(FirstNL, std::string::npos);
}

TEST(TablePrinter, FormatDouble) {
  EXPECT_EQ(TablePrinter::formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::formatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(TablePrinter::formatPercent(38.0, 0), "38");
}

TEST(TablePrinter, SeparatorAndPadding) {
  TablePrinter TP;
  TP.setHeader({"a"});
  TP.addRow({"1", "extra"});
  TP.addSeparator();
  TP.addRow({});
  std::string Out = TP.render();
  EXPECT_NE(Out.find("extra"), std::string::npos);
  EXPECT_NE(Out.find("---"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ArgParser
//===----------------------------------------------------------------------===//

namespace {

/// Parser over \p Arguments whose errors surface as exceptions, so the
/// rejection paths are testable in-process (the default handler exits).
support::ArgParser parser(std::vector<std::string> Arguments) {
  support::ArgParser P(std::move(Arguments));
  P.setErrorHandler(
      [](const std::string &M) { throw std::runtime_error(M); });
  return P;
}

} // namespace

TEST(ArgParser, PositionalsComeInOrder) {
  support::ArgParser P = parser({"run", "prog.cbs"});
  EXPECT_EQ(P.positional("command"), "run");
  EXPECT_EQ(P.positional("program"), "prog.cbs");
  P.finish();
}

TEST(ArgParser, MissingPositionalFails) {
  support::ArgParser P = parser({});
  EXPECT_THROW(P.positional("command"), std::runtime_error);
}

TEST(ArgParser, OptionReturnsValueOrDefault) {
  support::ArgParser P = parser({"--json", "out.json"});
  EXPECT_EQ(P.option("--json", ""), "out.json");
  EXPECT_EQ(P.option("--save", "none"), "none");
  P.finish();
}

TEST(ArgParser, TrailingOptionWithoutValueFails) {
  support::ArgParser P = parser({"--json"});
  EXPECT_THROW(P.option("--json", ""), std::runtime_error);
}

TEST(ArgParser, OptionsAndPositionalsInterleave) {
  // Options must be pulled before positionals: an option's value is
  // indistinguishable from a positional until its name consumes it.
  support::ArgParser P = parser({"--jobs", "4", "compare", "--seed", "9"});
  EXPECT_EQ(P.optionUInt("--jobs", 0, 1, 1024), 4u);
  EXPECT_EQ(P.optionUInt("--seed", 1, 1, UINT64_MAX), 9u);
  EXPECT_EQ(P.positional("command"), "compare");
  P.finish();
}

TEST(ArgParser, OptionUIntStrictness) {
  // The whole value must lex as a plain decimal integer: no trailing
  // junk, no sign, no whitespace — strtoull accepts all three.
  for (const char *Bad : {"12x", "0x10", "+5", "-5", " 5", "5 "}) {
    support::ArgParser P = parser({"--stride", Bad});
    EXPECT_THROW(P.optionUInt("--stride", 1, 1, 100), std::runtime_error)
        << "accepted '" << Bad << "'";
  }
}

TEST(ArgParser, OptionUIntRangeChecked) {
  EXPECT_THROW(parser({"--stride", "0"}).optionUInt("--stride", 1, 1, 100),
               std::runtime_error);
  EXPECT_THROW(parser({"--stride", "101"}).optionUInt("--stride", 1, 1, 100),
               std::runtime_error);
  EXPECT_EQ(parser({"--stride", "100"}).optionUInt("--stride", 1, 1, 100),
            100u);
}

TEST(ArgParser, OptionUIntDefaultWhenAbsent) {
  support::ArgParser P = parser({});
  EXPECT_EQ(P.optionUInt("--jobs", 7, 1, 1024), 7u);
  P.finish();
}

TEST(ArgParser, OptionDoubleStrictness) {
  // Same contract as optionUInt: the whole value must lex as a plain
  // decimal number — no trailing junk ("0.9x"), no inf/nan, no hex
  // floats, no whitespace.
  for (const char *Bad :
       {"0.9x", "1e", "nan", "NaN", "inf", "-inf", "0x1p2", " 0.5", "0.5 ",
        "1.2.3", "--", "e5"}) {
    support::ArgParser P = parser({"--decay-factor", Bad});
    EXPECT_THROW(P.optionDouble("--decay-factor", 0.5, 0.0, 1.0),
                 std::runtime_error)
        << "accepted '" << Bad << "'";
  }
}

TEST(ArgParser, OptionDoubleAcceptsPlainDecimals) {
  EXPECT_DOUBLE_EQ(
      parser({"--f", "0.9"}).optionDouble("--f", 0.0, 0.0, 1.0), 0.9);
  EXPECT_DOUBLE_EQ(
      parser({"--f", "+0.25"}).optionDouble("--f", 0.0, 0.0, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(
      parser({"--f", "-2"}).optionDouble("--f", 0.0, -10.0, 10.0), -2.0);
  EXPECT_DOUBLE_EQ(
      parser({"--f", "1e2"}).optionDouble("--f", 0.0, 0.0, 1000.0), 100.0);
  EXPECT_DOUBLE_EQ(parser({}).optionDouble("--f", 0.75, 0.0, 1.0), 0.75);
}

TEST(ArgParser, OptionDoubleRangeChecked) {
  EXPECT_THROW(
      parser({"--f", "1.5"}).optionDouble("--f", 0.5, 0.0, 1.0),
      std::runtime_error);
  EXPECT_THROW(
      parser({"--f", "-0.1"}).optionDouble("--f", 0.5, 0.0, 1.0),
      std::runtime_error);
  // Overflow to infinity is out of any finite range.
  EXPECT_THROW(
      parser({"--f", "1e999"}).optionDouble("--f", 0.5, 0.0, 1e308),
      std::runtime_error);
}

TEST(ArgParser, OptionDoubleIsLocaleIndependent) {
  // Under a comma-decimal locale, strtod("0.9") stops at the period and
  // yields 0 — a silently wrong profile decay factor. The parser must
  // read the C-locale decimal point regardless of the process locale.
  std::string Saved = std::setlocale(LC_NUMERIC, nullptr);
  bool HaveLocale = std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
                    std::setlocale(LC_NUMERIC, "de_DE.utf8") != nullptr;
  if (!HaveLocale)
    GTEST_SKIP() << "no comma-decimal locale available in this image";
  double Parsed =
      parser({"--f", "0.9"}).optionDouble("--f", 0.0, 0.0, 1.0);
  std::setlocale(LC_NUMERIC, Saved.c_str());
  EXPECT_DOUBLE_EQ(Parsed, 0.9);
}

TEST(ArgParser, FlagConsumesAndReports) {
  support::ArgParser P = parser({"--force"});
  EXPECT_TRUE(P.flag("--force"));
  EXPECT_FALSE(P.flag("--force")) << "second query sees it consumed";
  EXPECT_FALSE(P.flag("--quiet"));
  P.finish();
}

TEST(ArgParser, FinishRejectsLeftovers) {
  support::ArgParser P = parser({"--jbos", "8"});
  EXPECT_THROW(P.finish(), std::runtime_error)
      << "typos must not be silently ignored";
}

TEST(ArgParser, SkipsArgvZero) {
  const char *Argv[] = {"cbsvm", "run"};
  support::ArgParser P(2, const_cast<char *const *>(Argv));
  P.setErrorHandler(
      [](const std::string &M) { throw std::runtime_error(M); });
  EXPECT_EQ(P.positional("command"), "run");
  P.finish();
}
