//===- tests/ProfileRepositoryTest.cpp - cross-run profile store tests ---------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"
#include "fuzz/ProgramGenerator.h"
#include "opt/InlineOracle.h"
#include "profiling/ProfileCodec.h"
#include "profiling/ProfileRepository.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cbs;
using namespace cbs::prof;

namespace fs = std::filesystem;

namespace {

/// Fresh empty directory under the test temp root, wiped on entry so
/// reruns are hermetic.
std::string freshDir(const char *Name) {
  fs::path P = fs::path(testing::TempDir()) /
               (std::string("cbsvm-repo-") + Name);
  fs::remove_all(P);
  fs::create_directories(P);
  return P.string();
}

DCGSnapshot graphOf(std::initializer_list<DCGSnapshot::Edge> Edges) {
  return DCGSnapshot::fromEdges(std::vector<DCGSnapshot::Edge>(Edges));
}

RepoKey keyFor(const char *Workload, uint64_t Hash = 0xabcdef0011223344ull,
               const char *Pers = "jikes") {
  RepoKey K;
  K.Workload = Workload;
  K.ProgramHash = Hash;
  K.Personality = Pers;
  return K;
}

void writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out.good());
  Out << Contents;
}

} // namespace

//===----------------------------------------------------------------------===//
// Merge math — pinned. The merge is a documented integer formula; if
// these numbers change, the repository format effectively changed.
//===----------------------------------------------------------------------===//

TEST(ProfileRepository, MergeMathIsPinned) {
  // New run: total weight W = 600, so
  //   conf = 10000 * 600 / (600 + 1024) = 3694   (integer division)
  // and with AgeDecayBp = 5000:
  //   merged(1,2) = 1000 * 5000/10000 + 500 * 3694/10000 = 500 + 184 = 684
  //   merged(3,4) = 0 + 100 * 3694/10000 = 36
  DCGSnapshot Old = graphOf({{{1, 2}, 1000}});
  DCGSnapshot New = graphOf({{{1, 2}, 500}, {{3, 4}, 100}});
  DCGSnapshot Merged = ProfileRepository::merge(Old, New);
  EXPECT_EQ(Merged.numEdges(), 2u);
  EXPECT_EQ(Merged.weight({1, 2}), 684u);
  EXPECT_EQ(Merged.weight({3, 4}), 36u);
}

TEST(ProfileRepository, MergeDropsZeroRoundedEdges) {
  // An old weight-1 edge decays to 0 (1 * 5000/10000), and a new edge
  // from a near-zero-confidence run rounds to 0 too: neither survives.
  DCGSnapshot Old = graphOf({{{1, 1}, 1}, {{2, 2}, 100}});
  DCGSnapshot New = graphOf({{{9, 9}, 1}}); // W=1 -> conf = 10000/1025 = 9
  DCGSnapshot Merged = ProfileRepository::merge(Old, New);
  EXPECT_EQ(Merged.weight({1, 1}), 0u);
  EXPECT_EQ(Merged.weight({9, 9}), 0u);
  EXPECT_EQ(Merged.weight({2, 2}), 50u);
  EXPECT_EQ(Merged.numEdges(), 1u);
}

TEST(ProfileRepository, RepeatedCommitsAgeDecayOldEvidence) {
  std::string Dir = freshDir("age-decay");
  ProfileRepository Repo(Dir);
  RepoKey Key = keyFor("w");

  // First commit is verbatim; an edge the program then never exercises
  // again halves (decays) on every later commit.
  DCGSnapshot First = graphOf({{{1, 2}, 4096}});
  DCGSnapshot Later = graphOf({{{3, 4}, 1'000'000}}); // conf ~ 9989
  ASSERT_TRUE(Repo.commit(Key, First, 100).Committed);
  uint64_t Prev = 4096;
  for (int I = 0; I != 3; ++I) {
    ASSERT_TRUE(Repo.commit(Key, Later, 100).Committed);
    RepoLoadResult L = Repo.load(Key);
    ASSERT_TRUE(L.ok()) << L.Diagnostic;
    uint64_t Now = L.Entry->Graph.weight({1, 2});
    EXPECT_EQ(Now, Prev / 2) << "commit " << I;
    Prev = Now;
  }
  RepoLoadResult L = Repo.load(Key);
  ASSERT_TRUE(L.ok());
  EXPECT_EQ(L.Entry->Meta.Runs, 4u);
  EXPECT_EQ(L.Entry->Meta.Cycles, 400u);
}

TEST(ProfileRepository, FirstCommitStoresRunVerbatim) {
  std::string Dir = freshDir("first-commit");
  ProfileRepository Repo(Dir);
  RepoKey Key = keyFor("phased");

  DCGSnapshot Run = graphOf({{{5, 6}, 77}, {{7, 8}, 3}});
  RepoCommitResult C = Repo.commit(Key, Run, 12345);
  ASSERT_TRUE(C.Committed) << C.Error;
  EXPECT_EQ(C.Runs, 1u);

  RepoLoadResult L = Repo.load(Key);
  ASSERT_TRUE(L.ok()) << L.Diagnostic;
  EXPECT_EQ(ProfileCodec::encode(L.Entry->Graph), ProfileCodec::encode(Run));
  EXPECT_EQ(L.Entry->Meta.Runs, 1u);
  EXPECT_EQ(L.Entry->Meta.Cycles, 12345u);
  EXPECT_EQ(L.Entry->Meta.ProgramHash, Key.ProgramHash);
  EXPECT_EQ(L.Entry->Meta.Personality, Key.Personality);
}

//===----------------------------------------------------------------------===//
// Rejection paths: a bad entry is a clean skip with a diagnostic,
// never a crash and never a silently-seeded profile.
//===----------------------------------------------------------------------===//

TEST(ProfileRepository, MissingEntryIsAPlainMiss) {
  ProfileRepository Repo(freshDir("miss"));
  RepoLoadResult L = Repo.load(keyFor("nothing-here"));
  EXPECT_FALSE(L.ok());
  EXPECT_FALSE(L.Rejected);
  EXPECT_TRUE(L.Diagnostic.empty());
}

TEST(ProfileRepository, RejectsCorruptTruncatedAndWrongVersionEntries) {
  std::string Dir = freshDir("reject");
  ProfileRepository Repo(Dir);
  RepoKey Key = keyFor("w");
  std::string Path = Repo.pathFor("w");

  writeFile(Path, "complete garbage\n");
  RepoLoadResult Garbage = Repo.load(Key);
  EXPECT_FALSE(Garbage.ok());
  EXPECT_TRUE(Garbage.Rejected);
  EXPECT_NE(Garbage.Diagnostic.find("corrupt repository entry"),
            std::string::npos)
      << Garbage.Diagnostic;

  // Truncated mid-edge: decodes as a malformed line.
  writeFile(Path, "cbsvm-dcg 2\n!program 00000000000000aa\n!personality "
                  "jikes\n!runs 1\n!cycles 5\n1 2");
  RepoLoadResult Truncated = Repo.load(Key);
  EXPECT_FALSE(Truncated.ok());
  EXPECT_TRUE(Truncated.Rejected);
  EXPECT_NE(Truncated.Diagnostic.find("malformed edge"), std::string::npos)
      << Truncated.Diagnostic;

  writeFile(Path, "cbsvm-dcg 3\n1 2 3\n");
  RepoLoadResult Future = Repo.load(Key);
  EXPECT_FALSE(Future.ok());
  EXPECT_TRUE(Future.Rejected);
  EXPECT_NE(Future.Diagnostic.find("unsupported version 3 (supported: 1, 2)"),
            std::string::npos)
      << Future.Diagnostic;

  // v1 decodes but has no provenance — unusable as repository advice.
  writeFile(Path, "cbsvm-dcg 1\n1 2 3\n");
  RepoLoadResult V1 = Repo.load(Key);
  EXPECT_FALSE(V1.ok());
  EXPECT_TRUE(V1.Rejected);
  EXPECT_NE(V1.Diagnostic.find("is v1 (no provenance metadata)"),
            std::string::npos)
      << V1.Diagnostic;
}

TEST(ProfileRepository, RejectsHashAndPersonalityMismatches) {
  std::string Dir = freshDir("mismatch");
  ProfileRepository Repo(Dir);
  DCGSnapshot Run = graphOf({{{1, 2}, 10}});
  ASSERT_TRUE(Repo.commit(keyFor("w", 0xaa, "jikes"), Run, 1).Committed);

  RepoLoadResult Hash = Repo.load(keyFor("w", 0xbb, "jikes"));
  EXPECT_FALSE(Hash.ok());
  EXPECT_TRUE(Hash.Rejected);
  EXPECT_NE(Hash.Diagnostic.find("program hash mismatch for 'w'"),
            std::string::npos)
      << Hash.Diagnostic;

  RepoLoadResult Pers = Repo.load(keyFor("w", 0xaa, "j9"));
  EXPECT_FALSE(Pers.ok());
  EXPECT_TRUE(Pers.Rejected);
  EXPECT_NE(Pers.Diagnostic.find("personality mismatch for 'w'"),
            std::string::npos)
      << Pers.Diagnostic;
}

TEST(ProfileRepository, CommitOverRejectedEntryUpgradesIt) {
  // A v1 (or foreign-program) file is treated as absent: the commit
  // replaces it with a fresh v2 entry, Runs restarting at 1.
  std::string Dir = freshDir("upgrade");
  ProfileRepository Repo(Dir);
  RepoKey Key = keyFor("w");
  writeFile(Repo.pathFor("w"), "cbsvm-dcg 1\n1 2 3\n");

  DCGSnapshot Run = graphOf({{{1, 2}, 10}});
  RepoCommitResult C = Repo.commit(Key, Run, 7);
  ASSERT_TRUE(C.Committed) << C.Error;
  EXPECT_EQ(C.Runs, 1u);
  RepoLoadResult L = Repo.load(Key);
  ASSERT_TRUE(L.ok()) << L.Diagnostic;
  EXPECT_EQ(L.Entry->Graph.weight({1, 2}), 10u);
}

TEST(ProfileRepository, ConcurrentStyleCommitsAreLastWriterWinsAndClean) {
  // Two repository handles on the same directory (two "processes").
  // Each commit re-reads the file it is merging over and renames its
  // temp file into place, so the final file is always one writer's
  // complete output — decodable, with no temp droppings left behind.
  std::string Dir = freshDir("last-writer");
  ProfileRepository A(Dir), B(Dir);
  RepoKey Key = keyFor("w");
  ASSERT_TRUE(A.commit(Key, graphOf({{{1, 2}, 100}}), 10).Committed);
  ASSERT_TRUE(B.commit(Key, graphOf({{{3, 4}, 200}}), 20).Committed);

  RepoLoadResult L = A.load(Key);
  ASSERT_TRUE(L.ok()) << L.Diagnostic;
  EXPECT_EQ(L.Entry->Meta.Runs, 2u);
  EXPECT_EQ(L.Entry->Meta.Cycles, 30u);

  size_t Files = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    ++Files;
    EXPECT_EQ(E.path().extension(), ".dcg") << E.path();
  }
  EXPECT_EQ(Files, 1u);
}

TEST(ProfileRepository, PathForSanitizesWorkloadNames) {
  ProfileRepository Repo("repo");
  EXPECT_EQ(Repo.pathFor("jess"), "repo/jess.dcg");
  EXPECT_EQ(Repo.pathFor("../../etc/passwd"), "repo/______etc_passwd.dcg");
  EXPECT_EQ(Repo.pathFor(""), "repo/_.dcg");
}

//===----------------------------------------------------------------------===//
// Warm start end to end: the repository entry pre-enqueues compiles at
// cycle 0, the run stays semantically identical, and both the run and
// the repository bytes are identical at any --compile-jobs count.
//===----------------------------------------------------------------------===//

namespace {

struct WarmRun {
  vm::RunState State = vm::RunState::Running;
  std::vector<int64_t> Output;
  std::string Profile;
  uint64_t FirstInstallCycle = 0;
  uint64_t WarmEnqueued = 0;
  std::string RepoBytes;
};

/// One AOS run of \p P against repository directory \p Dir (load +
/// shutdown commit, exactly like the driver wires it).
WarmRun runWithRepo(const bc::Program &P, const std::string &Dir,
                    uint32_t CompileJobs) {
  ProfileRepository Repo(Dir);
  RepoKey Key = keyFor("gen", 0x1234, "jikes");

  vm::VMConfig Config;
  Config.Seed = 11;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 2;
  Config.Profiler.CBS.SamplesPerTick = 4;
  Config.TimerPeriodCycles = 2'000;
  Config.Costs.CompileLatencyScale = 1;

  aos::AOSConfig AC;
  AC.CompileJobs = CompileJobs;
  RepoLoadResult L = Repo.load(Key);
  if (L.ok())
    AC.WarmStart.Profile =
        std::make_shared<const prof::DCGSnapshot>(L.Entry->Graph);

  Config.OnShutdown = [&](vm::VirtualMachine &VM) {
    if (VM.state() == vm::RunState::Finished)
      Repo.commit(Key, VM.profile(), VM.cycles());
  };

  opt::NewJikesOracle Oracle;
  aos::AdaptiveSystem AOS(&Oracle, AC);
  vm::VirtualMachine VM(P, Config);
  VM.setClient(&AOS);

  WarmRun R;
  R.State = VM.run();
  R.Output = VM.output();
  R.Profile = ProfileCodec::encode(VM.profile());
  R.FirstInstallCycle = AOS.stats().FirstInstallCycle;
  R.WarmEnqueued = AOS.stats().WarmEnqueued;
  std::ifstream In(Repo.pathFor("gen"), std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  R.RepoBytes = SS.str();
  return R;
}

} // namespace

TEST(ProfileRepository, WarmStartIsDeterministicAcrossCompileJobs) {
  bc::Program P = fuzz::generateRandomProgram(42);

  // Cold pass populates one repository per jobs count; warm pass reads
  // it back. Byte-identity at jobs 1-vs-8 must hold for the run output,
  // the collected profile, and the repository file itself.
  std::string Dir1 = freshDir("warm-jobs1");
  std::string Dir8 = freshDir("warm-jobs8");

  WarmRun Cold1 = runWithRepo(P, Dir1, 1);
  WarmRun Cold8 = runWithRepo(P, Dir8, 8);
  ASSERT_EQ(Cold1.State, vm::RunState::Finished);
  EXPECT_EQ(Cold1.Output, Cold8.Output);
  EXPECT_EQ(Cold1.Profile, Cold8.Profile);
  EXPECT_EQ(Cold1.RepoBytes, Cold8.RepoBytes);
  EXPECT_FALSE(Cold1.RepoBytes.empty());
  EXPECT_EQ(Cold1.WarmEnqueued, 0u);

  WarmRun Warm1 = runWithRepo(P, Dir1, 1);
  WarmRun Warm8 = runWithRepo(P, Dir8, 8);
  EXPECT_EQ(Warm1.Output, Warm8.Output);
  EXPECT_EQ(Warm1.Profile, Warm8.Profile);
  EXPECT_EQ(Warm1.RepoBytes, Warm8.RepoBytes);
  EXPECT_EQ(Warm1.FirstInstallCycle, Warm8.FirstInstallCycle);
  EXPECT_EQ(Warm1.WarmEnqueued, Warm8.WarmEnqueued);

  // Warm semantics match cold semantics: advice changes scheduling,
  // never results.
  EXPECT_EQ(Warm1.Output, Cold1.Output);

  // And the warm start actually happened: methods were pre-enqueued,
  // and when the cold run installed anything at all, the warm run's
  // first install lands strictly earlier.
  if (Cold1.FirstInstallCycle > 0) {
    EXPECT_GT(Warm1.WarmEnqueued, 0u);
    EXPECT_LT(Warm1.FirstInstallCycle, Cold1.FirstInstallCycle);
  }
}
