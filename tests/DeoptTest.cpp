//===- tests/DeoptTest.cpp - deoptimization subsystem tests --------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of guard policing and deoptimization: a guarded
// inline whose assumed receiver loses dominance is deoptimized and
// recompiled; a quality-monitor phase shift invalidates speculation
// wholesale; the forced-invalidation storm (every install deoptimized
// at the next taken yieldpoint) never perturbs program semantics; the
// deopt cap pins a flapping method to the conservative plan; and
// in-flight compile requests for a deoptimized method are dropped as
// stale.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"
#include "experiments/Experiments.h"
#include "opt/InlineOracle.h"
#include "telemetry/MetricRegistry.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::bc;

namespace {

/// A program with ONE virtual site whose dominant receiver flips
/// mid-run: main calls loop(N, 0) — every dispatch binds class A —
/// then loop(N, 15) — every dispatch binds class B. With profile decay
/// on, the DCG's dominant callee at the site flips during the second
/// half, killing any guard that assumed A.
Program shiftingReceiverProgram(int64_t PerPhase) {
  ProgramBuilder PB;
  wl::ClassFamily Family = wl::makeClassFamily(PB, "ShiftHandler", 2);
  SelectorId Sel = PB.addSelector("handle", 2);
  wl::implementSelector(PB, Family, Sel, {6, 6}, {3, 3});

  // loop(count, pick): locals 0 count, 1 pick, 2 acc, 3..4 receivers.
  MethodId Loop = PB.declareStatic("loop", {ValKind::Int, ValKind::Int},
                                   /*HasResult=*/true, ValKind::Int);
  {
    MethodBuilder MB = PB.defineMethod(Loop);
    MB.iconst(0).istore(2);
    wl::emitReceiverInit(MB, Family.Subclasses, /*FirstSlot=*/3);
    Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    MB.work(30);
    // pick < 8 -> slot 3 (class A); pick >= 8 -> slot 4 (class B).
    wl::emitPickReceiver(MB, 1, {{3, 8}, {4, 16}}, 16);
    MB.iload(0).invokeVirtual(Sel).iload(2).iadd().istore(2);
    MB.iinc(0, -1).jump(Head);
    MB.bind(Exit).iload(2).iret();
    MB.finish();
  }

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(PerPhase).iconst(0).invokeStatic(Loop).istore(0);
    MB.iconst(PerPhase).iconst(15).invokeStatic(Loop).iload(0).iadd().istore(0);
    MB.iload(0).print();
    MB.finish();
  }
  return PB.finish(Main);
}

/// Counter value from the VM's metric registry, 0 when unregistered.
uint64_t counter(vm::VirtualMachine &VM, const char *Name) {
  const tel::Counter *C = VM.metrics().findCounter(Name);
  return C ? static_cast<uint64_t>(*C) : 0;
}

struct DeoptRun {
  std::vector<int64_t> Output;
  uint64_t Cycles = 0;
  uint64_t VmDeopts = 0;
  uint64_t FramesDeopted = 0;
  aos::DeoptStats Stats;
  aos::AOSStats AOS;
};

/// Runs \p P under the adaptive system with \p Deopt policing.
DeoptRun runWithDeopt(const Program &P, aos::DeoptConfig Deopt,
                      double LatencyScale = 1.0, uint32_t CompileJobs = 0,
                      uint64_t TimerPeriod = 20'000) {
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  Config.Profiler.DecayEveryTicks = 4;
  Config.Profiler.DecayFactor = 0.5;
  Config.TimerPeriodCycles = TimerPeriod;
  Config.Costs.CompileLatencyScale = LatencyScale;

  aos::AOSConfig AC;
  AC.Deopt = Deopt;
  AC.CompileJobs = CompileJobs;
  AC.Level1Samples = 2;
  AC.Level2Samples = 3;
  opt::NewJikesOracle Oracle;
  aos::AdaptiveSystem AOS(&Oracle, AC);
  vm::VirtualMachine VM(P, Config);
  VM.setClient(&AOS);
  EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();

  DeoptRun R;
  R.Output = VM.output();
  R.Cycles = VM.stats().Cycles;
  R.VmDeopts = counter(VM, "vm.deopts");
  R.FramesDeopted = counter(VM, "vm.frames_deopted");
  if (AOS.deoptController())
    R.Stats = AOS.deoptController()->stats();
  R.AOS = AOS.stats();
  return R;
}

/// The reference semantics: no adaptive system at all.
std::vector<int64_t> baselineOutput(const Program &P) {
  vm::VMConfig Config;
  Config.MaxCycles = 4'000'000'000ull;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();
  return VM.output();
}

} // namespace

TEST(Deopt, GuardFailsWhenAssumedCalleeLosesDominance) {
  Program P = shiftingReceiverProgram(30'000);
  aos::DeoptConfig Deopt;
  Deopt.Enabled = true;
  Deopt.DominanceThresholdPct = 40.0;
  Deopt.MinSiteWeight = 4;
  DeoptRun R = runWithDeopt(P, Deopt);

  EXPECT_GT(R.Stats.GuardChecks, 0u) << "guarded versions were never policed";
  EXPECT_GE(R.Stats.GuardFailures, 1u)
      << "the dominance flip at the shared site must kill the guard";
  EXPECT_GE(R.Stats.Deopts, 1u);
  EXPECT_GE(R.Stats.Recompiles, 1u)
      << "every deopt enqueues a repair against the fresh plan";
  EXPECT_EQ(R.VmDeopts, R.Stats.Deopts)
      << "vm.deopts mirrors the controller's invalidations";
  EXPECT_EQ(R.Output, baselineOutput(P))
      << "deoptimization must never change what the program prints";
}

TEST(Deopt, PhaseShiftInvalidatesSpeculativeCode) {
  Program P = wl::buildPhased(wl::InputSize::Small, 1);
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  Config.Profiler.DecayEveryTicks = 8;
  Config.Profiler.DecayFactor = 0.8;
  // Arm the quality monitor; the phased workload's hot-set swap drops
  // the window overlap to ~66%, so 70% flags it as a phase shift.
  Config.Profiler.Quality.EveryTicks = 8;
  Config.Profiler.Quality.PhaseShiftOverlapPct = 70.0;

  aos::AOSConfig AC;
  AC.Deopt.Enabled = true;
  opt::NewJikesOracle Oracle;
  aos::AdaptiveSystem AOS(&Oracle, AC);
  vm::VirtualMachine VM(P, Config);
  VM.setClient(&AOS);
  EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();

  ASSERT_NE(AOS.deoptController(), nullptr);
  const aos::DeoptStats &S = AOS.deoptController()->stats();
  EXPECT_GE(VM.qualityMonitor()->phaseShiftCount(), 1u);
  EXPECT_GE(S.PhaseShiftDeopts, 1u)
      << "speculative code compiled before the shift must be invalidated";
  EXPECT_LE(S.PhaseShiftDeopts, S.Deopts);
  EXPECT_GE(S.Recompiles, 1u);
}

TEST(Deopt, ForcedStormAtEveryYieldpointPreservesSemantics) {
  // Latency scale 0: versions install at the very first taken
  // yieldpoint after the promotion decision — and the storm then
  // invalidates each one at the very next taken yieldpoint. The
  // harshest install/deopt interleaving the controller can produce.
  Program P = wl::buildJess(wl::InputSize::Small, 1);
  aos::DeoptConfig Deopt;
  Deopt.Enabled = true;
  Deopt.ForceStormForTesting = true;
  DeoptRun R = runWithDeopt(P, Deopt, /*LatencyScale=*/0);

  EXPECT_GE(R.Stats.Deopts, 1u) << "the storm never caught an install";
  EXPECT_EQ(R.Stats.Deopts, R.VmDeopts);
  EXPECT_GE(R.FramesDeopted, 1u)
      << "frames pinning invalidated versions must take the fallback path";
  EXPECT_EQ(R.Output, baselineOutput(P));
}

TEST(Deopt, StormDropsInFlightRecompilesAsStale) {
  // Zero modelled latency clusters enqueues, installs, and storm
  // invalidations onto the same ticks, so deopts land while promotion
  // requests for the same method are still queued — those requests were
  // decided against the plan the deopt just declared dead and must be
  // dropped, not installed. A high deopt cap keeps the repairs
  // speculative (conservative pins assume nothing and are exempt).
  Program P = wl::buildJess(wl::InputSize::Small, 1);
  aos::DeoptConfig Deopt;
  Deopt.Enabled = true;
  Deopt.ForceStormForTesting = true;
  Deopt.MaxDeoptsPerMethod = 1000;
  DeoptRun R = runWithDeopt(P, Deopt, /*LatencyScale=*/0);

  EXPECT_GE(R.Stats.Deopts, 1u);
  EXPECT_GE(R.Stats.StaleRequestsDropped, 1u)
      << "a deopt must drop the in-flight compile built on the dead plan";
  EXPECT_EQ(R.Output, baselineOutput(P));
}

TEST(Deopt, DeoptCapPinsMethodToConservativePlan) {
  Program P = wl::buildJess(wl::InputSize::Small, 1);
  aos::DeoptConfig Deopt;
  Deopt.Enabled = true;
  Deopt.ForceStormForTesting = true;
  Deopt.MaxDeoptsPerMethod = 1;
  DeoptRun R = runWithDeopt(P, Deopt, /*LatencyScale=*/0);

  EXPECT_GE(R.Stats.ConservativePins, 1u)
      << "one deopt must pin under MaxDeoptsPerMethod=1";
  EXPECT_EQ(R.Output, baselineOutput(P));
}

TEST(Deopt, DisabledControllerChangesNothing) {
  // Deopt off (the default): byte-identical to a run that predates the
  // subsystem entirely — no controller, no snapshots, no invalidations.
  Program P = wl::buildJess(wl::InputSize::Small, 1);
  aos::DeoptConfig Off; // Enabled = false
  DeoptRun Disabled = runWithDeopt(P, Off);
  EXPECT_EQ(Disabled.VmDeopts, 0u);
  EXPECT_EQ(Disabled.Stats.GuardChecks, 0u);

  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  Config.Profiler.DecayEveryTicks = 4;
  Config.Profiler.DecayFactor = 0.5;
  Config.TimerPeriodCycles = 20'000;
  Config.Costs.CompileLatencyScale = 1.0;
  aos::AOSConfig AC;
  AC.Level1Samples = 2;
  AC.Level2Samples = 3;
  opt::NewJikesOracle Oracle;
  aos::AdaptiveSystem AOS(&Oracle, AC);
  vm::VirtualMachine VM(P, Config);
  VM.setClient(&AOS);
  EXPECT_EQ(VM.run(), vm::RunState::Finished);
  EXPECT_EQ(AOS.deoptController(), nullptr);
  EXPECT_EQ(VM.output(), Disabled.Output);
  EXPECT_EQ(VM.stats().Cycles, Disabled.Cycles);
}

TEST(Deopt, StormIsByteIdenticalAcrossCompileJobs) {
  Program P = wl::buildJess(wl::InputSize::Small, 1);
  aos::DeoptConfig Deopt;
  Deopt.Enabled = true;
  Deopt.ForceStormForTesting = true;
  DeoptRun Jobs0 = runWithDeopt(P, Deopt, /*LatencyScale=*/1, /*Jobs=*/0);
  DeoptRun Jobs4 = runWithDeopt(P, Deopt, /*LatencyScale=*/1, /*Jobs=*/4);
  EXPECT_GE(Jobs0.Stats.Deopts, 1u);
  EXPECT_EQ(Jobs0.Output, Jobs4.Output);
  EXPECT_EQ(Jobs0.Cycles, Jobs4.Cycles);
  EXPECT_EQ(Jobs0.Stats.Deopts, Jobs4.Stats.Deopts);
  EXPECT_EQ(Jobs0.Stats.StaleRequestsDropped, Jobs4.Stats.StaleRequestsDropped);
}
