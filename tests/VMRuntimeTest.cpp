//===- tests/VMRuntimeTest.cpp - runtime services tests ------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// Timer ticks, yieldpoints, the two VM personalities, GC servicing,
// green-thread scheduling, the stack walker, and the profiler wiring
// inside the runtime services.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Verifier.h"
#include "vm/StackWalker.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <functional>

using namespace cbs;
using namespace cbs::bc;

namespace {

/// A program whose main loop calls leaf() repeatedly: Iterations calls,
/// one Work stretch per iteration.
Program callLoop(int64_t Iterations, int32_t WorkPerIter) {
  ProgramBuilder PB;
  MethodId Leaf = PB.declareStatic("leaf", {ValKind::Int},
                                   /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(Leaf);
    MB.work(5).iload(0).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(0).istore(1);
    MB.iconst(Iterations).istore(0);
    Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    if (WorkPerIter > 0)
      MB.work(WorkPerIter);
    MB.iload(0).invokeStatic(Leaf).istore(1);
    MB.iinc(0, -1).jump(Head);
    MB.bind(Exit).iload(1).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  EXPECT_TRUE(verifyProgram(P).ok());
  return P;
}

} // namespace

TEST(Runtime, TimerTicksMatchPeriod) {
  Program P = callLoop(50'000, 20);
  vm::VMConfig Config;
  Config.TimerPeriodCycles = 100'000;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  uint64_t ExpectedTicks = VM.stats().Cycles / Config.TimerPeriodCycles;
  EXPECT_NEAR(static_cast<double>(VM.stats().TimerTicks),
              static_cast<double>(ExpectedTicks), 2.0);
}

TEST(Runtime, NoProfilerMeansNoSamples) {
  Program P = callLoop(20'000, 20);
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  EXPECT_EQ(VM.stats().SamplesTaken, 0u);
  EXPECT_TRUE(VM.profile().empty());
  // Ticks were still serviced through taken yieldpoints.
  EXPECT_GT(VM.stats().TimerTicks, 0u);
  EXPECT_GE(VM.stats().YieldpointsTaken, VM.stats().TimerTicks);
}

TEST(Runtime, TimerProfilerTakesAtMostOneSamplePerTick) {
  Program P = callLoop(60'000, 20);
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::Timer;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  EXPECT_GT(VM.stats().SamplesTaken, 0u);
  EXPECT_LE(VM.stats().SamplesTaken, VM.stats().TimerTicks);
}

TEST(Runtime, CBSTakesSamplesPerTick) {
  Program P = callLoop(120'000, 10);
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 2;
  Config.Profiler.CBS.SamplesPerTick = 8;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  // Roughly SamplesPerTick per tick (call density is high enough).
  double PerTick = static_cast<double>(VM.stats().SamplesTaken) /
                   static_cast<double>(VM.stats().TimerTicks);
  EXPECT_GT(PerTick, 6.0);
  EXPECT_LE(PerTick, 8.5);
}

TEST(Runtime, CBSSamplesAreBoundedByCallCount) {
  Program P = callLoop(5'000, 0);
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 1;
  Config.Profiler.CBS.SamplesPerTick = 100000; // Saturating window.
  vm::VirtualMachine VM(P, Config);
  VM.run();
  // In the Jikes personality both prologues and epilogues are events.
  EXPECT_LE(VM.stats().SamplesTaken, 2 * VM.stats().CallsExecuted + 2);
}

TEST(Runtime, ExhaustiveProfilerMatchesCallCounts) {
  Program P = callLoop(10'000, 10);
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::Exhaustive;
  Config.Profiler.ChargeExhaustiveCounters = false;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  EXPECT_EQ(VM.profile().totalWeight(), VM.stats().CallsExecuted);
}

TEST(Runtime, ExhaustiveCounterCostShowsUp) {
  Program P = callLoop(20'000, 10);
  auto Run = [&](bool Charge) {
    vm::VMConfig Config;
    Config.Profiler.Kind = vm::ProfilerKind::Exhaustive;
    Config.Profiler.ChargeExhaustiveCounters = Charge;
    vm::VirtualMachine VM(P, Config);
    VM.run();
    return VM.stats().Cycles;
  };
  uint64_t Free = Run(false), Charged = Run(true);
  EXPECT_GT(Charged, Free);
  // 8 cycles per call on this workload is a >5% slowdown.
  EXPECT_GT(static_cast<double>(Charged - Free) / Free, 0.05);
}

TEST(Runtime, ExplicitEntryCheckAblationCosts) {
  Program P = callLoop(20'000, 10);
  auto Run = [&](bool Explicit) {
    vm::VMConfig Config;
    Config.ExplicitEntryCheck = Explicit;
    vm::VirtualMachine VM(P, Config);
    VM.run();
    return VM.stats().Cycles;
  };
  uint64_t Overloaded = Run(false), Explicit = Run(true);
  EXPECT_GT(Explicit, Overloaded)
      << "a VM without an overloadable check pays per entry (§4)";
}

TEST(Runtime, GCServicedThroughYieldpoints) {
  // Allocate heavily; the GC request must be serviced and charged.
  ProgramBuilder PB;
  ClassId C = PB.addClass("C", InvalidClassId, 8);
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(0).istore(1);
    MB.iconst(30'000).istore(0);
    Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    MB.newObject(C).astore(2);
    MB.aload(2).iload(0).putField(0);
    MB.iinc(0, -1).jump(Head);
    MB.bind(Exit).iload(1).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  vm::VMConfig Config;
  Config.GCThresholdBytes = 64 * 1024;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  // 30k objects * 80 bytes ≈ 2.4MB -> ~37 GCs at 64KB.
  EXPECT_GT(VM.stats().GCCount, 20u);
  EXPECT_LT(VM.stats().GCCount, 60u);
}

TEST(Runtime, SpawnedThreadsInterleave) {
  ProgramBuilder PB;
  MethodId Worker = PB.declareStatic("worker");
  {
    MethodBuilder MB = PB.defineMethod(Worker);
    MB.iconst(0).istore(1);
    MB.iconst(20'000).istore(0);
    Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    MB.work(40).iinc(0, -1).jump(Head);
    MB.bind(Exit).iconst(111).print();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.spawn(Worker).spawn(Worker);
    MB.iconst(222).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  vm::VMConfig Config;
  Config.TimerPeriodCycles = 50'000;
  vm::VirtualMachine VM(P, Config);
  EXPECT_EQ(VM.run(), vm::RunState::Finished);
  // All three threads completed (two 111 prints + one 222).
  ASSERT_EQ(VM.output().size(), 3u);
  EXPECT_EQ(VM.stats().ThreadsSpawned, 3u);
  EXPECT_GT(VM.stats().ThreadSwitches, 0u);
}

TEST(Runtime, PersonalitiesDifferInEpilogueEvents) {
  // Jikes samples at prologues and epilogues; J9 at entries only. With
  // a saturating CBS window, Jikes therefore sees ~2x the events.
  Program P = callLoop(30'000, 5);
  auto Samples = [&](vm::Personality Pers) {
    vm::VMConfig Config;
    Config.Pers = Pers;
    Config.Profiler.Kind = vm::ProfilerKind::CBS;
    Config.Profiler.CBS.Stride = 1;
    Config.Profiler.CBS.SamplesPerTick = 1000000;
    vm::VirtualMachine VM(P, Config);
    VM.run();
    return VM.stats().SamplesTaken;
  };
  uint64_t Jikes = Samples(vm::Personality::JikesRVM);
  uint64_t J9 = Samples(vm::Personality::J9);
  EXPECT_GT(Jikes, J9 + J9 / 2);
}

TEST(Runtime, StackWalkerReportsFullContext) {
  // Build main -> a -> b and sample inside b via the walker helpers.
  ProgramBuilder PB;
  MethodId B = PB.declareStatic("b", {ValKind::Int}, true);
  {
    MethodBuilder MB = PB.defineMethod(B);
    MB.iload(0).iret();
    MB.finish();
  }
  MethodId A = PB.declareStatic("a", {ValKind::Int}, true);
  {
    MethodBuilder MB = PB.defineMethod(A);
    MB.iload(0).invokeStatic(B).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(1).invokeStatic(A).print();
    MB.finish();
  }
  Program P = PB.finish(Main);
  // Context-sensitive CBS sampling records full paths into the CCT.
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.ContextSensitive = true;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  EXPECT_EQ(VM.state(), vm::RunState::Finished);
}

TEST(Runtime, ContextSensitiveCCTAgreesWithDCG) {
  bc::Program P = wl::buildJess(wl::InputSize::Small, 3);
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  Config.Profiler.ContextSensitive = true;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  EXPECT_EQ(VM.contextTree().totalWeight(), VM.stats().SamplesTaken);
  // Projecting leaf edges recovers (a superset of weights of) the flat
  // DCG: every flat sample that had a caller appears.
  prof::DCGSnapshot Flat = VM.contextTree().projectLeafEdges();
  EXPECT_EQ(Flat.totalWeight(), VM.profile().totalWeight());
}

TEST(Runtime, CompileCyclesAccountedOnFirstTouch) {
  Program P = callLoop(1'000, 5);
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  EXPECT_GT(VM.stats().CompileCycles, 0u);
  EXPECT_EQ(VM.codeCache().numCompiles(), 2u); // main + leaf
  EXPECT_EQ(VM.codeCache().numRecompiles(), 0u);
}

TEST(Runtime, SeedChangesCBSSampleChoice) {
  Program P = callLoop(40'000, 25);
  auto Profile = [&](uint64_t Seed) {
    vm::VMConfig Config;
    Config.Seed = Seed;
    Config.Profiler.Kind = vm::ProfilerKind::CBS;
    Config.Profiler.CBS.Stride = 13;
    Config.Profiler.CBS.SamplesPerTick = 2;
    vm::VirtualMachine VM(P, Config);
    VM.run();
    return std::pair(VM.stats().SamplesTaken, VM.output());
  };
  auto A = Profile(1), B = Profile(2);
  // Program output identical (the profiler never perturbs semantics).
  EXPECT_EQ(A.second, B.second);
}
