//===- tests/CCTTest.cpp - calling context tree tests --------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/CallingContextTree.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::prof;

namespace {

PathStep step(uint32_t Site, uint32_t Method) { return {Site, Method}; }

} // namespace

TEST(CCT, EmptyTree) {
  CallingContextTree CCT;
  EXPECT_EQ(CCT.numNodes(), 0u);
  EXPECT_EQ(CCT.totalWeight(), 0u);
  EXPECT_EQ(CCT.maxDepth(), 0u);
}

TEST(CCT, SinglePathCreatesChain) {
  CallingContextTree CCT;
  CCT.addPath({step(bc::InvalidSiteId, 0), step(10, 1), step(11, 2)});
  EXPECT_EQ(CCT.numNodes(), 3u);
  EXPECT_EQ(CCT.maxDepth(), 3u);
  EXPECT_EQ(CCT.totalWeight(), 1u);
}

TEST(CCT, SharedPrefixesShareNodes) {
  CallingContextTree CCT;
  CCT.addPath({step(bc::InvalidSiteId, 0), step(10, 1), step(11, 2)});
  CCT.addPath({step(bc::InvalidSiteId, 0), step(10, 1), step(12, 3)});
  // Root chain shared: 0, 1 shared; leaves 2 and 3 distinct.
  EXPECT_EQ(CCT.numNodes(), 4u);
}

TEST(CCT, ContextSensitivityDistinguishesCallers) {
  // The same callee reached through two different sites must be two
  // nodes — that is the information a context-insensitive DCG lacks.
  CallingContextTree CCT;
  CCT.addPath({step(bc::InvalidSiteId, 0), step(10, 5)});
  CCT.addPath({step(bc::InvalidSiteId, 0), step(20, 5)});
  EXPECT_EQ(CCT.numNodes(), 3u);
  DCGSnapshot Flat = CCT.projectLeafEdges();
  EXPECT_EQ(Flat.numEdges(), 2u);
  EXPECT_EQ(Flat.weight({10, 5}), 1u);
  EXPECT_EQ(Flat.weight({20, 5}), 1u);
}

TEST(CCT, LeafProjectionMatchesDirectDCG) {
  // Inserting random stacks and projecting the leaves must equal the
  // DCG a context-insensitive sampler would have built from the same
  // samples (the "extension loses nothing" claim).
  RandomEngine RNG(23);
  CallingContextTree CCT;
  DynamicCallGraph Direct;
  for (int Sample = 0; Sample != 500; ++Sample) {
    size_t Depth = 1 + RNG.nextBelow(6);
    std::vector<PathStep> Path;
    Path.push_back(step(bc::InvalidSiteId, 0));
    for (size_t D = 1; D != Depth; ++D)
      Path.push_back(step(static_cast<uint32_t>(RNG.nextBelow(8)),
                          static_cast<uint32_t>(RNG.nextBelow(5) + 1)));
    CCT.addPath(Path);
    if (Path.size() >= 2)
      Direct.addSample({Path.back().Site, Path.back().Method});
  }
  DCGSnapshot Projected = CCT.projectLeafEdges();
  EXPECT_EQ(Projected.totalWeight(), Direct.totalWeight());
  EXPECT_EQ(Projected.sortedEdges(), Direct.snapshot().sortedEdges());
}

TEST(CCT, TraverseWeightsCountPassThrough) {
  CallingContextTree CCT;
  CCT.addPath({step(bc::InvalidSiteId, 0), step(1, 1), step(2, 2)}, 3);
  CCT.addPath({step(bc::InvalidSiteId, 0), step(1, 1)}, 2);
  DCGSnapshot All = CCT.projectAllEdges();
  // Edge (1,1) was traversed by all 5 samples; (2,2) by 3.
  EXPECT_EQ(All.weight({1, 1}), 5u);
  EXPECT_EQ(All.weight({2, 2}), 3u);
}

TEST(CCT, WeightedInsertion) {
  CallingContextTree CCT;
  CCT.addPath({step(bc::InvalidSiteId, 0), step(1, 1)}, 10);
  EXPECT_EQ(CCT.totalWeight(), 10u);
  EXPECT_EQ(CCT.projectLeafEdges().weight({1, 1}), 10u);
}

TEST(CCT, RecursiveStacksNest) {
  // Recursion produces repeated (site, method) steps at different
  // depths: each must get its own node (context tree, not a graph).
  CallingContextTree CCT;
  CCT.addPath({step(bc::InvalidSiteId, 0), step(3, 7), step(3, 7),
               step(3, 7)});
  EXPECT_EQ(CCT.numNodes(), 4u);
  EXPECT_EQ(CCT.maxDepth(), 4u);
}
