//===- tests/VMConfigTest.cpp - config construction API tests ------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// VMConfig::fromArgs is the single validated entry from command-line
// options to a VM configuration, and ProfilerRegistry is the single
// table of profilers behind it. These tests pin the defaults, the
// rejection paths, and — deliberately, with exact string equality —
// the shape of the invalid-combination diagnostic, so no caller can
// grow its own variant of either.
//
//===----------------------------------------------------------------------===//

#include "vm/VMConfig.h"

#include "profiling/ProfilerRegistry.h"
#include "support/ArgParser.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace cbs;

namespace {

/// Parser whose errors surface as exceptions (the default handler
/// exits), carrying the diagnostic text for shape assertions.
support::ArgParser parser(std::vector<std::string> Arguments) {
  support::ArgParser P(std::move(Arguments));
  P.setErrorHandler(
      [](const std::string &M) { throw std::runtime_error(M); });
  return P;
}

/// The diagnostic fromArgs produces for \p Arguments, or "" when it
/// accepts them.
std::string rejection(std::vector<std::string> Arguments) {
  support::ArgParser P = parser(std::move(Arguments));
  try {
    vm::VMConfig::fromArgs(P);
  } catch (const std::runtime_error &E) {
    return E.what();
  }
  return "";
}

} // namespace

TEST(VMConfigFromArgs, DefaultsMatchThePaperConfiguration) {
  support::ArgParser P = parser({});
  vm::VMConfig Config = vm::VMConfig::fromArgs(P);
  P.finish();

  EXPECT_EQ(Config.Pers, vm::Personality::JikesRVM);
  EXPECT_EQ(Config.Seed, 1u);
  EXPECT_EQ(Config.Profiler.Kind, vm::ProfilerKind::CBS);
  EXPECT_EQ(Config.Profiler.CBS.Stride, 3u);
  EXPECT_EQ(Config.Profiler.CBS.SamplesPerTick, 16u);
  EXPECT_EQ(Config.Profiler.DCGShards, 1u);
  EXPECT_EQ(Config.Profiler.SampleBufferCapacity, 256u);
  EXPECT_EQ(Config.Profiler.DecayEveryTicks, 0u);
}

TEST(VMConfigFromArgs, ParsesSharedOptions) {
  support::ArgParser P = parser({"--personality", "j9", "--seed", "7",
                                 "--profiler", "timer", "--dcg-shards", "4",
                                 "--decay-ticks", "8", "--decay-factor",
                                 "0.5"});
  vm::VMConfig Config = vm::VMConfig::fromArgs(P);
  P.finish();

  EXPECT_EQ(Config.Pers, vm::Personality::J9);
  EXPECT_EQ(Config.Seed, 7u);
  EXPECT_EQ(Config.Profiler.Kind, vm::ProfilerKind::Timer);
  EXPECT_EQ(Config.Profiler.DCGShards, 4u);
  EXPECT_EQ(Config.Profiler.DecayEveryTicks, 8u);
  EXPECT_DOUBLE_EQ(Config.Profiler.DecayFactor, 0.5);
}

TEST(VMConfigFromArgs, RejectsUnknownPersonality) {
  EXPECT_EQ(rejection({"--personality", "hotspot"}),
            "unknown personality 'hotspot' (jikes, j9)");
}

TEST(VMConfigFromArgs, RejectsUnknownProfilerWithTheFullMenu) {
  EXPECT_EQ(rejection({"--profiler", "perf"}),
            "unknown profiler 'perf' (available: " +
                prof::ProfilerRegistry::instance().names() + ")");
}

TEST(VMConfigFromArgs, SamplingKnobsRequireASamplingProfiler) {
  // The exact message shape: name the offending option, then the fix.
  EXPECT_EQ(rejection({"--profiler", "patching", "--buffer-capacity", "64"}),
            "--buffer-capacity requires a sampling profiler "
            "(--profiler patching does not sample)");
  EXPECT_EQ(rejection({"--profiler", "none", "--stride", "2"}),
            "--stride requires a sampling profiler "
            "(--profiler none does not sample)");
  EXPECT_EQ(rejection({"--profiler", "exhaustive", "--samples", "8"}),
            "--samples requires a sampling profiler "
            "(--profiler exhaustive does not sample)");
}

TEST(VMConfigFromArgs, SamplingKnobsAcceptedBySamplingProfilers) {
  for (const char *Name : {"timer", "cbs"}) {
    support::ArgParser P = parser({"--profiler", Name, "--stride", "2",
                                   "--samples", "8", "--buffer-capacity",
                                   "64"});
    vm::VMConfig Config = vm::VMConfig::fromArgs(P);
    P.finish();
    EXPECT_EQ(Config.Profiler.CBS.Stride, 2u) << Name;
    EXPECT_EQ(Config.Profiler.CBS.SamplesPerTick, 8u) << Name;
    EXPECT_EQ(Config.Profiler.SampleBufferCapacity, 64u) << Name;
  }
}

TEST(ProfilerRegistry, EveryKindHasExactlyOneEntry) {
  const prof::ProfilerRegistry &R = prof::ProfilerRegistry::instance();
  EXPECT_EQ(R.all().size(), 5u);
  for (const prof::ProfilerDescriptor &D : R.all()) {
    EXPECT_EQ(R.find(D.Name), &D);
    EXPECT_EQ(R.find(D.Kind), &D);
    EXPECT_NE(D.Summary, nullptr);
  }
  EXPECT_EQ(R.find("no-such-profiler"), nullptr);
}

TEST(ProfilerRegistry, SamplingFlagMatchesTheMachinery) {
  const prof::ProfilerRegistry &R = prof::ProfilerRegistry::instance();
  EXPECT_TRUE(R.find("timer")->Sampling);
  EXPECT_TRUE(R.find("cbs")->Sampling);
  EXPECT_FALSE(R.find("none")->Sampling);
  EXPECT_FALSE(R.find("exhaustive")->Sampling);
  EXPECT_FALSE(R.find("patching")->Sampling);
}

TEST(ProfilerRegistry, ConfigureAppliesKindSpecificPolicy) {
  const prof::ProfilerRegistry &R = prof::ProfilerRegistry::instance();

  vm::ProfilerOptions Opts;
  ASSERT_TRUE(R.configure("exhaustive", Opts));
  EXPECT_EQ(Opts.Kind, vm::ProfilerKind::Exhaustive);
  // The reference profile is free; the charged instrumented-VM variant
  // is an explicit ablation, not the registry default.
  EXPECT_FALSE(Opts.ChargeExhaustiveCounters);

  vm::ProfilerOptions CbsOpts;
  ASSERT_TRUE(R.configure("cbs", CbsOpts));
  EXPECT_EQ(CbsOpts.Kind, vm::ProfilerKind::CBS);

  vm::ProfilerOptions Untouched;
  EXPECT_FALSE(R.configure("bogus", Untouched));
  EXPECT_EQ(Untouched.Kind, vm::ProfilerKind::None);
}

TEST(ProfilerRegistry, NamesListsThePresentationOrder) {
  EXPECT_EQ(prof::ProfilerRegistry::instance().names(),
            "none, exhaustive, timer, cbs, patching");
}
