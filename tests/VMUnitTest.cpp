//===- tests/VMUnitTest.cpp - VM component unit tests --------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// Unit coverage for the smaller VM components: the heap, the code
// cache, the cost model, and the sample buffer / organizer coupling.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "profiling/SampleBuffer.h"
#include "vm/CodeCache.h"
#include "vm/CostModel.h"
#include "vm/Heap.h"
#include "vm/StackWalker.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::bc;

namespace {

Program tinyProgram() {
  ProgramBuilder PB;
  MethodId Leaf = PB.declareStatic("leaf", {}, /*HasResult=*/true);
  {
    MethodBuilder MB = PB.defineMethod(Leaf);
    MB.work(5).iconst(1).iret();
    MB.finish();
  }
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Leaf).print();
    MB.finish();
  }
  return PB.finish(Main);
}

} // namespace

//===----------------------------------------------------------------------===//
// Heap
//===----------------------------------------------------------------------===//

TEST(Heap, AllocatesZeroedObjects) {
  ProgramBuilder PB;
  ClassId C = PB.addClass("C", InvalidClassId, 3);
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.finish();
  }
  Program P = PB.finish(Main);

  vm::Heap H;
  vm::Ref R = H.allocate(P.hierarchy().classOf(C));
  EXPECT_TRUE(H.validRef(R));
  EXPECT_EQ(H.classOf(R), C);
  EXPECT_EQ(H.numFields(R), 3u);
  for (uint32_t F = 0; F != 3; ++F)
    EXPECT_EQ(H.getField(R, F), 0);
}

TEST(Heap, FieldsAreIndependentAcrossObjects) {
  ProgramBuilder PB;
  ClassId C = PB.addClass("C", InvalidClassId, 2);
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.finish();
  }
  Program P = PB.finish(Main);

  vm::Heap H;
  vm::Ref A = H.allocate(P.hierarchy().classOf(C));
  vm::Ref B = H.allocate(P.hierarchy().classOf(C));
  H.putField(A, 0, 11);
  H.putField(B, 0, 22);
  EXPECT_EQ(H.getField(A, 0), 11);
  EXPECT_EQ(H.getField(B, 0), 22);
}

TEST(Heap, NullAndOutOfRangeRefsAreInvalid) {
  vm::Heap H;
  EXPECT_FALSE(H.validRef(0));
  EXPECT_FALSE(H.validRef(1));
  EXPECT_FALSE(H.validRef(100));
}

TEST(Heap, TracksBytesAndReset) {
  ProgramBuilder PB;
  ClassId C = PB.addClass("C", InvalidClassId, 4);
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.finish();
  }
  Program P = PB.finish(Main);

  vm::Heap H;
  H.allocate(P.hierarchy().classOf(C));
  H.allocate(P.hierarchy().classOf(C));
  // 16 header + 8 * 4 fields = 48 bytes each.
  EXPECT_EQ(H.bytesAllocated(), 96u);
  EXPECT_EQ(H.numObjects(), 2u);
  H.reset();
  EXPECT_EQ(H.numObjects(), 0u);
  EXPECT_FALSE(H.validRef(1));
}

//===----------------------------------------------------------------------===//
// CodeCache
//===----------------------------------------------------------------------===//

TEST(CodeCache, BaselineCompileCopiesOriginal) {
  Program P = tinyProgram();
  vm::CostModel Costs;
  vm::CompiledMethod CM =
      vm::CodeCache::compileBaseline(P, 0, /*Level=*/0, Costs);
  EXPECT_EQ(CM.Code.size(), P.method(0).Code.size());
  EXPECT_EQ(CM.ScaleQ8, 256u);
  EXPECT_GT(CM.CompileCostCycles, 0u);
}

TEST(CodeCache, LevelsScaleExecutionAndCost) {
  Program P = tinyProgram();
  vm::CostModel Costs;
  vm::CompiledMethod L0 = vm::CodeCache::compileBaseline(P, 0, 0, Costs);
  vm::CompiledMethod L1 = vm::CodeCache::compileBaseline(P, 0, 1, Costs);
  vm::CompiledMethod L2 = vm::CodeCache::compileBaseline(P, 0, 2, Costs);
  EXPECT_GT(L0.ScaleQ8, L1.ScaleQ8);
  EXPECT_GT(L1.ScaleQ8, L2.ScaleQ8);
  EXPECT_LT(L0.CompileCostCycles, L1.CompileCostCycles);
  EXPECT_LT(L1.CompileCostCycles, L2.CompileCostCycles);
}

TEST(CodeCache, InstallRetiresButKeepsOldVersionsAlive) {
  Program P = tinyProgram();
  vm::CostModel Costs;
  vm::CodeCache Cache(P);
  EXPECT_EQ(Cache.active(0), nullptr);
  EXPECT_EQ(Cache.activeLevel(0), -1);

  const vm::CompiledMethod *V0 =
      Cache.install(vm::CodeCache::compileBaseline(P, 0, 0, Costs));
  EXPECT_EQ(Cache.activeLevel(0), 0);
  const vm::CompiledMethod *V2 =
      Cache.install(vm::CodeCache::compileBaseline(P, 0, 2, Costs));
  EXPECT_EQ(Cache.activeLevel(0), 2);
  EXPECT_NE(V0, V2);
  // The retired version's storage must still be readable: frames may
  // keep executing it until they return or OSR-transfer off.
  EXPECT_EQ(V0->Level, 0);
  EXPECT_FALSE(V0->Code.empty());
  EXPECT_EQ(Cache.numCompiles(), 2u);
  EXPECT_EQ(Cache.numRecompiles(), 1u);
}

TEST(CodeCache, ScaledCostUsesQ8Fixedpoint) {
  vm::CompiledMethod CM;
  CM.ScaleQ8 = 128; // 0.5x
  EXPECT_EQ(CM.scaledCost(100), 50u);
  CM.ScaleQ8 = 256; // 1.0x
  EXPECT_EQ(CM.scaledCost(100), 100u);
}

//===----------------------------------------------------------------------===//
// CostModel
//===----------------------------------------------------------------------===//

TEST(CostModel, WorkChargesItsOperand) {
  vm::CostModel Costs;
  EXPECT_EQ(Costs.cost(Instruction(Opcode::Work, 123)), 123u);
}

TEST(CostModel, VirtualCallsCostMoreThanStatic) {
  vm::CostModel Costs;
  EXPECT_GT(Costs.cost(Instruction(Opcode::InvokeVirtual, 0, 1)),
            Costs.cost(Instruction(Opcode::InvokeStatic, 0, 0)));
}

TEST(CostModel, EveryOpcodeHasPositiveCost) {
  vm::CostModel Costs;
  for (int Op = 0; Op <= static_cast<int>(Opcode::Spawn); ++Op) {
    Instruction I(static_cast<Opcode>(Op), /*A=*/1, /*B=*/0);
    EXPECT_GT(Costs.cost(I), 0u) << opcodeName(static_cast<Opcode>(Op));
  }
}

//===----------------------------------------------------------------------===//
// SampleBuffer (listener/organizer decoupling)
//===----------------------------------------------------------------------===//

TEST(SampleBuffer, SignalsFullAtCapacity) {
  prof::SampleBuffer Buffer(3);
  EXPECT_FALSE(Buffer.append({1, 1}));
  EXPECT_FALSE(Buffer.append({2, 2}));
  EXPECT_TRUE(Buffer.append({3, 3}));
  EXPECT_EQ(Buffer.pendingCount(), 3u);
}

TEST(SampleBuffer, FlushFoldsIntoRepository) {
  prof::SampleBuffer Buffer(8);
  Buffer.append({1, 1});
  Buffer.append({1, 1});
  Buffer.append({2, 2});
  prof::DynamicCallGraph Repo;
  Buffer.flushInto(Repo);
  prof::DCGSnapshot S = Repo.snapshot();
  EXPECT_EQ(S.weight({1, 1}), 2u);
  EXPECT_EQ(S.weight({2, 2}), 1u);
  EXPECT_EQ(Buffer.pendingCount(), 0u);
  EXPECT_EQ(Buffer.flushCount(), 1u);
}

TEST(SampleBuffer, FlushIsIdempotentWhenEmpty) {
  prof::SampleBuffer Buffer(4);
  prof::DynamicCallGraph Repo;
  Buffer.flushInto(Repo);
  Buffer.flushInto(Repo);
  EXPECT_TRUE(Repo.empty());
  EXPECT_EQ(Buffer.flushCount(), 0u) << "empty flushes are not counted";
}

TEST(SampleBuffer, OverflowDropsAndCounts) {
  prof::SampleBuffer Buffer(2);
  EXPECT_FALSE(Buffer.append({1, 1}));
  EXPECT_TRUE(Buffer.append({2, 2})); // full: caller should flush now
  // Caller ignored the signal: further appends drop, and are counted.
  EXPECT_TRUE(Buffer.append({3, 3}));
  EXPECT_TRUE(Buffer.append({4, 4}));
  EXPECT_EQ(Buffer.pendingCount(), 2u);
  EXPECT_EQ(Buffer.droppedCount(), 2u);
  prof::DynamicCallGraph Repo;
  Buffer.flushInto(Repo);
  EXPECT_EQ(Repo.totalWeight(), 2u) << "dropped samples never land";
  // The delta accessor hands out each drop exactly once.
  EXPECT_EQ(Buffer.takeDroppedDelta(), 2u);
  EXPECT_EQ(Buffer.takeDroppedDelta(), 0u);
  EXPECT_EQ(Buffer.droppedCount(), 2u) << "cumulative count is preserved";
}

TEST(SampleBuffer, DrainedBufferAcceptsNewSamples) {
  prof::SampleBuffer Buffer(2);
  prof::DynamicCallGraph Repo;
  Buffer.append({1, 1});
  Buffer.append({1, 1});
  Buffer.flushInto(Repo);
  EXPECT_FALSE(Buffer.append({1, 1})) << "capacity is available again";
  Buffer.flushInto(Repo);
  EXPECT_EQ(Repo.snapshot().weight({1, 1}), 3u);
  EXPECT_EQ(Buffer.droppedCount(), 0u);
}

TEST(SampleBuffer, CapacityOneSignalsFullOnEveryAppend) {
  prof::SampleBuffer Buffer(1);
  prof::DynamicCallGraph Repo;
  // An owner that flushes whenever append() returns true never drops,
  // even at the degenerate capacity.
  for (int I = 0; I != 5; ++I) {
    EXPECT_TRUE(Buffer.append({1, 1}));
    Buffer.flushInto(Repo);
  }
  EXPECT_EQ(Buffer.droppedCount(), 0u);
  EXPECT_EQ(Buffer.flushCount(), 5u);
  EXPECT_EQ(Repo.snapshot().weight({1, 1}), 5u);
}

TEST(SampleBufferDeathTest, CapacityZeroIsAConfigurationError) {
  // A zero-capacity buffer would drop every sample while returning
  // true from append (telling the owner to busy-flush an always-empty
  // buffer); constructing one is a fatal configuration error.
  EXPECT_DEATH({ prof::SampleBuffer Buffer(0); },
               "SampleBuffer capacity must be at least 1");
}

TEST(SampleBuffer, AccountingAtTheExactCapacityBoundary) {
  prof::SampleBuffer Buffer(3);
  EXPECT_FALSE(Buffer.append({1, 1}));
  EXPECT_FALSE(Buffer.append({1, 1}));
  EXPECT_TRUE(Buffer.append({1, 1})) << "the filling append signals full";
  EXPECT_EQ(Buffer.pendingCount(), 3u);
  EXPECT_EQ(Buffer.droppedCount(), 0u)
      << "the append that fills the buffer is stored, not dropped";
  // One past the boundary: dropped, and the delta accessor sees exactly
  // that one even when interleaved with a flush.
  EXPECT_TRUE(Buffer.append({2, 2}));
  prof::DynamicCallGraph Repo;
  Buffer.flushInto(Repo);
  EXPECT_EQ(Buffer.takeDroppedDelta(), 1u);
  EXPECT_EQ(Repo.snapshot().weight({1, 1}), 3u);
  EXPECT_EQ(Repo.snapshot().weight({2, 2}), 0u);
  // Refill to the boundary again: the cumulative count keeps growing
  // but the delta restarts from the last report.
  Buffer.append({1, 1});
  Buffer.append({1, 1});
  Buffer.append({1, 1});
  Buffer.append({3, 3});
  EXPECT_EQ(Buffer.droppedCount(), 2u);
  EXPECT_EQ(Buffer.takeDroppedDelta(), 1u);
}

//===----------------------------------------------------------------------===//
// StackWalker (depth-0/1 stacks and non-call suspension points)
//===----------------------------------------------------------------------===//

namespace {

vm::CompiledMethod madeMethod(bc::MethodId Id,
                              std::vector<bc::Instruction> Code) {
  vm::CompiledMethod CM;
  CM.Id = Id;
  CM.Code = std::move(Code);
  return CM;
}

} // namespace

TEST(StackWalker, EmptyStackHasNoEdgeAndNoPath) {
  vm::Thread T;
  EXPECT_EQ(vm::topEdge(T), std::nullopt);
  EXPECT_TRUE(vm::walkStack(T).empty());
}

TEST(StackWalker, EntryFrameAloneYieldsNoEdge) {
  vm::CompiledMethod Entry =
      madeMethod(7, {bc::Instruction(bc::Opcode::Nop)});
  vm::Thread T;
  T.Frames.push_back({&Entry, 0, 0});

  EXPECT_EQ(vm::topEdge(T), std::nullopt)
      << "a depth-1 stack has no caller to attribute a sample to";
  std::vector<prof::PathStep> Path = vm::walkStack(T);
  ASSERT_EQ(Path.size(), 1u);
  EXPECT_EQ(Path[0].Site, bc::InvalidSiteId) << "thread entry has no site";
  EXPECT_EQ(Path[0].Method, 7u);
}

TEST(StackWalker, TopEdgeReadsTheCallersSuspendedSite) {
  vm::CompiledMethod Caller = madeMethod(
      3, {bc::Instruction(bc::Opcode::InvokeStatic, 4, 0, /*Site=*/11)});
  vm::CompiledMethod Callee =
      madeMethod(4, {bc::Instruction(bc::Opcode::Nop)});
  vm::Thread T;
  T.Frames.push_back({&Caller, 0, 0});
  T.Frames.push_back({&Callee, 0, 0});

  std::optional<prof::CallEdge> Edge = vm::topEdge(T);
  ASSERT_TRUE(Edge.has_value());
  EXPECT_EQ(Edge->Site, 11u);
  EXPECT_EQ(Edge->Callee, 4u);

  std::vector<prof::PathStep> Path = vm::walkStack(T);
  ASSERT_EQ(Path.size(), 2u);
  EXPECT_EQ(Path[0].Site, bc::InvalidSiteId);
  EXPECT_EQ(Path[1].Site, 11u);
  EXPECT_EQ(Path[1].Method, 4u);
}

TEST(StackWalker, NonCallSuspensionYieldsNoEdge) {
  // A caller frame suspended at a non-call instruction (e.g. mid-walk
  // during a GC-point sample) must not fabricate an edge.
  vm::CompiledMethod Caller =
      madeMethod(3, {bc::Instruction(bc::Opcode::Nop)});
  vm::CompiledMethod Callee =
      madeMethod(4, {bc::Instruction(bc::Opcode::Nop)});
  vm::Thread T;
  T.Frames.push_back({&Caller, 0, 0});
  T.Frames.push_back({&Callee, 0, 0});
  EXPECT_EQ(vm::topEdge(T), std::nullopt);
  std::vector<prof::PathStep> Path = vm::walkStack(T);
  ASSERT_EQ(Path.size(), 2u);
  EXPECT_EQ(Path[1].Site, bc::InvalidSiteId);
}
