//===- tests/ReportSchemaTest.cpp - report --json schema pin -------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// Golden-schema test for the machine-readable self-observability report
// (`cbsvm report --json`, built by aos::buildReportJson). Downstream
// consumers key on section and field names, so the schema is a
// contract: this test pins the top-level sections and the keys inside
// each — including the conditional aos/deopt/osr sections — and fails
// on any rename, removal, or accidental demotion of a section.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"
#include "aos/ReportJson.h"
#include "experiments/Experiments.h"
#include "opt/InlineOracle.h"
#include "profiling/DynamicCallGraph.h"
#include "support/Json.h"
#include "telemetry/FlightRecorder.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cbs;

namespace {

/// Member names of \p V in document order (empty if not an object).
std::vector<std::string> keysOf(const json::JsonValue &V) {
  std::vector<std::string> Keys;
  for (const auto &[Name, Member] : V.Members)
    Keys.push_back(Name);
  return Keys;
}

struct BuiltReport {
  json::JsonValue Doc;
};

/// Runs the phased workload under the full self-observability stack and
/// returns the parsed report. \p WithAOS attaches the adaptive system
/// (with deopt policing on); \p WithOSR additionally enables on-stack
/// replacement; \p WithWarm warm-starts the AOS from a prior run's
/// profile; \p WithRepo fills the driver's repo section.
BuiltReport buildReport(bool WithAOS, bool WithOSR, bool WithWarm = false,
                        bool WithRepo = false) {
  bc::Program P = wl::buildPhased(wl::InputSize::Small, 1);
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.Quality.EveryTicks = 8;
  Config.EnableOSR = WithOSR;

  tel::FlightRecorder Recorder((tel::FlightRecorderConfig()));
  Config.Recorder = &Recorder;

  aos::AOSConfig AC;
  AC.Deopt.Enabled = true;
  if (WithWarm) {
    // Any non-null snapshot marks the system warm-started.
    prof::DynamicCallGraph Seeded;
    Seeded.addSample({0, 0}, 100);
    AC.WarmStart.Profile =
        std::make_shared<const prof::DCGSnapshot>(Seeded.snapshot());
  }
  opt::NewJikesOracle Oracle;
  aos::AdaptiveSystem AOS(&Oracle, AC);
  vm::VirtualMachine VM(P, Config);
  if (WithAOS)
    VM.setClient(&AOS);
  EXPECT_EQ(VM.run(), vm::RunState::Finished) << VM.trapMessage();
  Recorder.requestDump("end_of_run", VM.cycles());

  aos::ReportInputs In;
  In.Workload = "phased";
  In.Size = wl::inputSizeName(wl::InputSize::Small);
  In.Seed = 1;
  In.State = vm::runStateName(vm::RunState::Finished);
  In.VM = &VM;
  In.AOS = WithAOS ? &AOS : nullptr;
  In.Recorder = &Recorder;
  if (WithRepo) {
    In.Repo.Present = true;
    In.Repo.Dir = "some/repo";
    In.Repo.Loaded = 1;
    In.Repo.Runs = 2;
    In.Repo.Committed = 1;
  }
  std::string Json = aos::buildReportJson(In);

  json::JsonParseResult R = json::parseJson(Json);
  EXPECT_TRUE(R.ok()) << R.Error;
  BuiltReport Out;
  if (R.ok())
    Out.Doc = *R.Value;
  return Out;
}

} // namespace

TEST(ReportSchema, TopLevelSectionsWithAosAndOsr) {
  BuiltReport R = buildReport(/*WithAOS=*/true, /*WithOSR=*/true);
  ASSERT_TRUE(R.Doc.isObject());
  EXPECT_EQ(keysOf(R.Doc),
            (std::vector<std::string>{"workload", "size", "seed", "state",
                                      "cycles", "quality", "overhead", "aos",
                                      "osr", "flightRecorder"}));
}

TEST(ReportSchema, ConditionalSectionsAbsentWithoutAosAndOsr) {
  BuiltReport R = buildReport(/*WithAOS=*/false, /*WithOSR=*/false);
  ASSERT_TRUE(R.Doc.isObject());
  EXPECT_EQ(keysOf(R.Doc),
            (std::vector<std::string>{"workload", "size", "seed", "state",
                                      "cycles", "quality", "overhead",
                                      "flightRecorder"}));
}

TEST(ReportSchema, QualitySectionKeys) {
  BuiltReport R = buildReport(/*WithAOS=*/true, /*WithOSR=*/true);
  const json::JsonValue *Quality = R.Doc.find("quality");
  ASSERT_NE(Quality, nullptr);
  EXPECT_EQ(keysOf(*Quality),
            (std::vector<std::string>{"everyTicks", "phaseThresholdPct",
                                      "hotEdges", "phaseShifts", "windows"}));
  const json::JsonValue *Windows = Quality->find("windows");
  ASSERT_NE(Windows, nullptr);
  ASSERT_TRUE(Windows->isArray());
  ASSERT_FALSE(Windows->Elements.empty()) << "the phased run spans windows";
  EXPECT_EQ(keysOf(Windows->Elements.front()),
            (std::vector<std::string>{"window", "tick", "cycles", "edges",
                                      "weight", "overlapPct", "hotNew",
                                      "hotVanished", "meanConfidencePct",
                                      "phaseShift"}));
}

TEST(ReportSchema, OverheadSectionKeys) {
  BuiltReport R = buildReport(/*WithAOS=*/true, /*WithOSR=*/true);
  const json::JsonValue *Overhead = R.Doc.find("overhead");
  ASSERT_NE(Overhead, nullptr);
  EXPECT_EQ(keysOf(*Overhead),
            (std::vector<std::string>{"components", "totalCycles", "vmCycles",
                                      "totalFractionPct"}));
  const json::JsonValue *Components = Overhead->find("components");
  ASSERT_NE(Components, nullptr);
  ASSERT_TRUE(Components->isArray());
  ASSERT_EQ(Components->Elements.size(),
            std::size(aos::OverheadComponentNames));
  for (size_t I = 0; I != Components->Elements.size(); ++I) {
    EXPECT_EQ(keysOf(Components->Elements[I]),
              (std::vector<std::string>{"name", "cycles", "fractionPct"}));
    const json::JsonValue *Name = Components->Elements[I].find("name");
    ASSERT_NE(Name, nullptr);
    EXPECT_EQ(Name->Str, aos::OverheadComponentNames[I]);
  }
}

TEST(ReportSchema, AosAndDeoptSectionKeys) {
  BuiltReport R = buildReport(/*WithAOS=*/true, /*WithOSR=*/true);
  const json::JsonValue *Aos = R.Doc.find("aos");
  ASSERT_NE(Aos, nullptr);
  EXPECT_EQ(keysOf(*Aos),
            (std::vector<std::string>{"recompilations", "promotionsToL1",
                                      "promotionsToL2", "reoptimizations",
                                      "plansComputed", "phaseShiftReplans",
                                      "queue", "deopt"}));
  const json::JsonValue *Queue = Aos->find("queue");
  ASSERT_NE(Queue, nullptr);
  EXPECT_EQ(keysOf(*Queue),
            (std::vector<std::string>{"depth", "enqueued", "installs",
                                      "stale_drops", "coalesced", "dropped",
                                      "firstInstallCycle"}));
  const json::JsonValue *Deopt = Aos->find("deopt");
  ASSERT_NE(Deopt, nullptr);
  EXPECT_EQ(keysOf(*Deopt),
            (std::vector<std::string>{"guardChecks", "guardFailures", "count",
                                      "phaseShiftDeopts", "conservativePins",
                                      "staleRequestsDropped", "recompiles"}));
}

TEST(ReportSchema, WarmSectionPresentOnlyWhenWarmStarted) {
  // Without a warm-start profile there is no "warm" subsection at all —
  // a cold run's aos section is byte-compatible with pre-repository
  // releases (modulo the queue's firstInstallCycle key).
  BuiltReport Cold = buildReport(/*WithAOS=*/true, /*WithOSR=*/false);
  const json::JsonValue *ColdAos = Cold.Doc.find("aos");
  ASSERT_NE(ColdAos, nullptr);
  EXPECT_EQ(ColdAos->find("warm"), nullptr);

  BuiltReport Warm = buildReport(/*WithAOS=*/true, /*WithOSR=*/false,
                                 /*WithWarm=*/true);
  const json::JsonValue *Aos = Warm.Doc.find("aos");
  ASSERT_NE(Aos, nullptr);
  EXPECT_EQ(keysOf(*Aos),
            (std::vector<std::string>{"recompilations", "promotionsToL1",
                                      "promotionsToL2", "reoptimizations",
                                      "plansComputed", "phaseShiftReplans",
                                      "queue", "warm", "deopt"}));
  const json::JsonValue *WarmSec = Aos->find("warm");
  ASSERT_NE(WarmSec, nullptr);
  EXPECT_EQ(keysOf(*WarmSec),
            (std::vector<std::string>{"enqueued", "installs"}));
}

TEST(ReportSchema, RepoSectionKeysAndPlacement) {
  BuiltReport R = buildReport(/*WithAOS=*/true, /*WithOSR=*/true,
                              /*WithWarm=*/false, /*WithRepo=*/true);
  ASSERT_TRUE(R.Doc.isObject());
  EXPECT_EQ(keysOf(R.Doc),
            (std::vector<std::string>{"workload", "size", "seed", "state",
                                      "cycles", "quality", "overhead", "aos",
                                      "osr", "repo", "flightRecorder"}));
  const json::JsonValue *Repo = R.Doc.find("repo");
  ASSERT_NE(Repo, nullptr);
  EXPECT_EQ(keysOf(*Repo),
            (std::vector<std::string>{"dir", "loaded", "rejected", "runs",
                                      "committed", "diagnostic"}));
}

TEST(ReportSchema, OsrSectionKeys) {
  BuiltReport R = buildReport(/*WithAOS=*/true, /*WithOSR=*/true);
  const json::JsonValue *Osr = R.Doc.find("osr");
  ASSERT_NE(Osr, nullptr);
  EXPECT_EQ(keysOf(*Osr),
            (std::vector<std::string>{"entries", "exits",
                                      "graveyardInstructions",
                                      "graveyardReclaimedInstructions",
                                      "graveyardReclaims"}));
}

TEST(ReportSchema, FlightRecorderSectionKeys) {
  BuiltReport R = buildReport(/*WithAOS=*/true, /*WithOSR=*/true);
  const json::JsonValue *Recorder = R.Doc.find("flightRecorder");
  ASSERT_NE(Recorder, nullptr);
  EXPECT_EQ(keysOf(*Recorder),
            (std::vector<std::string>{"eventCapacity", "totalEvents",
                                      "perKind", "triggers", "dumps"}));
  const json::JsonValue *Dumps = Recorder->find("dumps");
  ASSERT_NE(Dumps, nullptr);
  ASSERT_TRUE(Dumps->isArray());
  ASSERT_FALSE(Dumps->Elements.empty()) << "end_of_run dump always present";
  EXPECT_EQ(keysOf(Dumps->Elements.front()),
            (std::vector<std::string>{"trigger", "cycles",
                                      "totalEventsAtDump", "windows",
                                      "events"}));
}
