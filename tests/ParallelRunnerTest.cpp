//===- tests/ParallelRunnerTest.cpp - parallel engine tests --------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// The deterministic parallel experiment engine: job resolution, the
// every-index-exactly-once and strict-commit-order guarantees, per-task
// RNG independence from worker placement, telemetry merge/replay
// ordering, and — the property everything else exists for — bitwise
// equality of experiment results between --jobs 1 and --jobs 8.
//
// All suites here are named ParallelRunner* so `ctest -R
// '^ParallelRunner'` selects exactly this file (the TSan stage of
// scripts/check.sh relies on that).
//
//===----------------------------------------------------------------------===//

#include "experiments/Experiments.h"
#include "experiments/ParallelRunner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>

using namespace cbs;
using namespace cbs::exp;

namespace {

ParallelConfig withJobs(unsigned Jobs) {
  ParallelConfig Par;
  Par.Jobs = Jobs;
  return Par;
}

/// Restores (or clears) CBSVM_JOBS on scope exit so tests cannot leak
/// the variable into each other.
class ScopedJobsEnv {
public:
  explicit ScopedJobsEnv(const char *Value) {
    const char *Old = std::getenv("CBSVM_JOBS");
    HadOld = Old != nullptr;
    if (HadOld)
      OldValue = Old;
    if (Value)
      setenv("CBSVM_JOBS", Value, 1);
    else
      unsetenv("CBSVM_JOBS");
  }
  ~ScopedJobsEnv() {
    if (HadOld)
      setenv("CBSVM_JOBS", OldValue.c_str(), 1);
    else
      unsetenv("CBSVM_JOBS");
  }

private:
  bool HadOld;
  std::string OldValue;
};

} // namespace

TEST(ParallelRunnerJobs, ExplicitRequestWins) {
  ScopedJobsEnv Env("7");
  EXPECT_EQ(resolveJobs(3), 3u);
}

TEST(ParallelRunnerJobs, EnvironmentVariableApplies) {
  ScopedJobsEnv Env("7");
  EXPECT_EQ(resolveJobs(), 7u);
}

TEST(ParallelRunnerJobs, BogusEnvironmentFallsThrough) {
  for (const char *Bad : {"0", "-3", "garbage", "9999"}) {
    ScopedJobsEnv Env(Bad);
    EXPECT_GE(resolveJobs(), 1u) << "CBSVM_JOBS=" << Bad;
  }
}

TEST(ParallelRunnerJobs, DefaultIsAtLeastOne) {
  ScopedJobsEnv Env(nullptr);
  EXPECT_GE(resolveJobs(), 1u);
}

TEST(ParallelRunnerPool, EveryIndexRunsExactlyOnce) {
  constexpr size_t Tasks = 100;
  std::mutex M;
  std::multiset<size_t> Seen;
  ParallelRunner Runner(withJobs(4));
  Runner.run(Tasks, [&](ParallelRunner::TaskContext &Ctx) {
    std::lock_guard<std::mutex> Lock(M);
    Seen.insert(Ctx.Index);
  });
  ASSERT_EQ(Seen.size(), Tasks);
  for (size_t I = 0; I != Tasks; ++I)
    EXPECT_EQ(Seen.count(I), 1u) << "index " << I;
}

TEST(ParallelRunnerPool, CommitsInStrictIndexOrderOnCallingThread) {
  constexpr size_t Tasks = 64;
  const std::thread::id Caller = std::this_thread::get_id();
  std::vector<size_t> Order;
  ParallelRunner Runner(withJobs(8));
  Runner.run(
      Tasks, [](ParallelRunner::TaskContext &) {},
      [&](ParallelRunner::TaskContext &Ctx) {
        EXPECT_EQ(std::this_thread::get_id(), Caller);
        Order.push_back(Ctx.Index);
      });
  ASSERT_EQ(Order.size(), Tasks);
  for (size_t I = 0; I != Tasks; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ParallelRunnerPool, ZeroTasksIsANoOp) {
  ParallelRunner Runner(withJobs(8));
  bool Ran = false;
  Runner.run(0, [&](ParallelRunner::TaskContext &) { Ran = true; },
             [&](ParallelRunner::TaskContext &) { Ran = true; });
  EXPECT_FALSE(Ran);
  EXPECT_EQ(Runner.lastRun().Tasks, 0u);
}

TEST(ParallelRunnerPool, TaskRNGIsAFunctionOfIndexNotWorker) {
  constexpr size_t Tasks = 32;
  auto Draws = [](unsigned Jobs, uint64_t SeedBase) {
    ParallelConfig Par = withJobs(Jobs);
    Par.SeedBase = SeedBase;
    std::vector<uint64_t> Values(Tasks);
    ParallelRunner Runner(Par);
    Runner.run(Tasks, [&](ParallelRunner::TaskContext &Ctx) {
      Values[Ctx.Index] = Ctx.RNG.next();
    });
    return Values;
  };
  std::vector<uint64_t> Serial = Draws(1, 42);
  EXPECT_EQ(Draws(8, 42), Serial);
  EXPECT_EQ(Draws(3, 42), Serial);
  // Distinct indices get distinct streams, and the base seed matters.
  EXPECT_NE(Serial[0], Serial[1]);
  EXPECT_NE(Draws(1, 43), Serial);
  // The stream matches a directly seeded engine.
  EXPECT_EQ(Serial[5], RandomEngine(42 + 5).next());
}

TEST(ParallelRunnerTelemetry, MetricsMergeInIndexOrder) {
  constexpr size_t Tasks = 16;
  tel::MetricRegistry Parent;
  ParallelConfig Par = withJobs(8);
  Par.Metrics = &Parent;
  ParallelRunner Runner(Par);
  Runner.run(Tasks, [](ParallelRunner::TaskContext &Ctx) {
    Ctx.Metrics.counter("t.count") += Ctx.Index;
    Ctx.Metrics.gauge("t.last") = Ctx.Index;
    Ctx.Metrics.histogram("t.hist").record(Ctx.Index);
  });
  // Counters accumulate across all tasks.
  ASSERT_NE(Parent.findCounter("t.count"), nullptr);
  EXPECT_EQ(uint64_t(*Parent.findCounter("t.count")),
            Tasks * (Tasks - 1) / 2);
  // Gauges are last-write-wins, and commit order makes "last" the
  // highest grid index no matter which worker finished last.
  ASSERT_NE(Parent.findGauge("t.last"), nullptr);
  EXPECT_EQ(uint64_t(*Parent.findGauge("t.last")), Tasks - 1);
  // Histograms merge pointwise.
  ASSERT_NE(Parent.findHistogram("t.hist"), nullptr);
  EXPECT_EQ(Parent.findHistogram("t.hist")->count(), Tasks);
  EXPECT_EQ(Parent.findHistogram("t.hist")->max(), Tasks - 1);
}

TEST(ParallelRunnerTelemetry, TraceReplayMatchesSerialInterleaving) {
  constexpr size_t Tasks = 24;
  tel::CollectorSink Parent;
  ParallelConfig Par = withJobs(8);
  Par.Trace = &Parent;
  ParallelRunner Runner(Par);
  Runner.run(Tasks, [](ParallelRunner::TaskContext &Ctx) {
    // Two events per task; A carries the grid index.
    Ctx.Trace.event(tel::TraceEvent::timerTick(
        Ctx.Index, 0, static_cast<uint32_t>(Ctx.Index)));
    Ctx.Trace.event(tel::TraceEvent::sample(
        Ctx.Index, 0, static_cast<uint32_t>(Ctx.Index), 0));
  });
  ASSERT_EQ(Parent.numEvents(), Tasks * 2);
  for (size_t I = 0; I != Tasks; ++I) {
    EXPECT_EQ(Parent.events()[2 * I].Kind, tel::EventKind::TimerTick);
    EXPECT_EQ(Parent.events()[2 * I].A, I);
    EXPECT_EQ(Parent.events()[2 * I + 1].Kind, tel::EventKind::Sample);
    EXPECT_EQ(Parent.events()[2 * I + 1].A, I);
  }
}

TEST(ParallelRunnerTelemetry, PublishMetricsAggregatesAcrossRegions) {
  tel::MetricRegistry R;
  ParallelRunner::RunStats A;
  A.Jobs = 4;
  A.Tasks = 10;
  A.WallMicros = 1000;
  A.BusyMicros = 3000;
  ParallelRunner::publishMetrics(R, A);
  ParallelRunner::RunStats B;
  B.Jobs = 4;
  B.Tasks = 6;
  B.WallMicros = 500;
  B.BusyMicros = 1500;
  ParallelRunner::publishMetrics(R, B);
  EXPECT_EQ(uint64_t(*R.findCounter("runner.tasks")), 16u);
  EXPECT_EQ(uint64_t(*R.findCounter("runner.wall_us")), 1500u);
  EXPECT_EQ(uint64_t(*R.findCounter("runner.busy_us")), 4500u);
  EXPECT_EQ(uint64_t(*R.findGauge("runner.jobs")), 4u);
  // Speedup recomputed from the accumulated totals: 4500/1500 = 3.00x.
  EXPECT_EQ(uint64_t(*R.findGauge("runner.speedup_x100")), 300u);
}

TEST(ParallelRunnerTelemetry, RunStatsAccountForEveryTask) {
  constexpr size_t Tasks = 12;
  ParallelRunner Runner(withJobs(3));
  Runner.run(Tasks, [](ParallelRunner::TaskContext &) {});
  const ParallelRunner::RunStats &S = Runner.lastRun();
  EXPECT_EQ(S.Tasks, Tasks);
  EXPECT_EQ(S.Jobs, 3u);
  EXPECT_GE(S.speedup(), 0.0);
}

TEST(ParallelRunnerDeterminism, MedianAccuracyBitwiseEqualAcrossJobs) {
  const wl::WorkloadInfo &W = *wl::findWorkload("jess");
  AccuracyCell Serial =
      measureAccuracyMedian(W, wl::InputSize::Small, vm::Personality::JikesRVM,
                            chosenCBS(vm::Personality::JikesRVM), 5, 1,
                            withJobs(1));
  AccuracyCell Parallel =
      measureAccuracyMedian(W, wl::InputSize::Small, vm::Personality::JikesRVM,
                            chosenCBS(vm::Personality::JikesRVM), 5, 1,
                            withJobs(8));
  // Bitwise, not approximate: the engine promises the identical
  // floating-point accumulation order.
  EXPECT_EQ(Serial.OverheadPct, Parallel.OverheadPct);
  EXPECT_EQ(Serial.AccuracyPct, Parallel.AccuracyPct);
  EXPECT_EQ(Serial.SamplesTaken, Parallel.SamplesTaken);
}

TEST(ParallelRunnerDeterminism, SweepBitwiseEqualAcrossJobs) {
  std::vector<const wl::WorkloadInfo *> Workloads = {
      wl::findWorkload("jess"), wl::findWorkload("db")};
  auto Sweep = [&](unsigned Jobs) {
    return runSweep(vm::Personality::JikesRVM, Workloads,
                    wl::InputSize::Small, {1, 3}, {1, 4}, 2, 1,
                    withJobs(Jobs));
  };
  SweepResult Serial = Sweep(1);
  SweepResult Parallel = Sweep(8);
  ASSERT_EQ(Serial.Cells.size(), Parallel.Cells.size());
  for (size_t S = 0; S != Serial.Cells.size(); ++S) {
    ASSERT_EQ(Serial.Cells[S].size(), Parallel.Cells[S].size());
    for (size_t T = 0; T != Serial.Cells[S].size(); ++T) {
      EXPECT_EQ(Serial.Cells[S][T].OverheadPct,
                Parallel.Cells[S][T].OverheadPct)
          << "cell " << S << "," << T;
      EXPECT_EQ(Serial.Cells[S][T].AccuracyPct,
                Parallel.Cells[S][T].AccuracyPct)
          << "cell " << S << "," << T;
      EXPECT_EQ(Serial.Cells[S][T].SamplesTaken,
                Parallel.Cells[S][T].SamplesTaken)
          << "cell " << S << "," << T;
    }
  }
}

TEST(ParallelRunnerDeterminism, ExperimentCountersMatchAcrossJobs) {
  const wl::WorkloadInfo &W = *wl::findWorkload("jess");
  auto Run = [&](unsigned Jobs) {
    tel::MetricRegistry Parent;
    ParallelConfig Par = withJobs(Jobs);
    Par.Metrics = &Parent;
    measureAccuracyMedian(W, wl::InputSize::Small, vm::Personality::JikesRVM,
                          chosenCBS(vm::Personality::JikesRVM), 4, 1, Par);
    ASSERT_NE(Parent.findCounter("exp.vm_runs"), nullptr);
    EXPECT_EQ(uint64_t(*Parent.findCounter("exp.vm_runs")), 8u);
  };
  Run(1);
  Run(8);
}
