//===- tests/ExperimentTest.cpp - experiment harness tests ---------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end checks that the experiment harness reproduces the paper's
// qualitative results: base accuracy is poor, CBS accuracy is high at
// low overhead, accuracy grows with Samples, overhead grows with
// Samples, small inputs profile worse than large ones, and the
// steady-state speedup machinery behaves.
//
//===----------------------------------------------------------------------===//

#include "experiments/Experiments.h"

#include <gtest/gtest.h>

using namespace cbs;
using namespace cbs::exp;

namespace {

const wl::WorkloadInfo &jess() { return *wl::findWorkload("jess"); }

} // namespace

TEST(Accuracy, PerfectRunIsStable) {
  bc::Program P = jess().Build(wl::InputSize::Small, 1);
  PerfectProfile A = runPerfect(P, vm::Personality::JikesRVM, 1);
  PerfectProfile B = runPerfect(P, vm::Personality::JikesRVM, 1);
  EXPECT_EQ(A.BaseCycles, B.BaseCycles);
  EXPECT_EQ(A.DCG.totalWeight(), B.DCG.totalWeight());
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.DCG.totalWeight(), A.Calls);
}

TEST(Accuracy, ExhaustiveProfilerScoresPerfect) {
  bc::Program P = jess().Build(wl::InputSize::Small, 1);
  PerfectProfile Perfect = runPerfect(P, vm::Personality::JikesRVM, 1);
  vm::ProfilerOptions Ex;
  Ex.Kind = vm::ProfilerKind::Exhaustive;
  Ex.ChargeExhaustiveCounters = false;
  AccuracyCell Cell =
      measureAccuracy(P, vm::Personality::JikesRVM, Ex, Perfect, 1);
  EXPECT_NEAR(Cell.AccuracyPct, 100.0, 0.01);
  EXPECT_NEAR(Cell.OverheadPct, 0.0, 0.01);
}

TEST(Accuracy, CBSBeatsTimerBase) {
  for (vm::Personality Pers :
       {vm::Personality::JikesRVM, vm::Personality::J9}) {
    bc::Program P = jess().Build(wl::InputSize::Small, 1);
    PerfectProfile Perfect = runPerfect(P, Pers, 1);
    AccuracyCell Base =
        measureAccuracy(P, Pers, baseProfiler(Pers), Perfect, 1);
    AccuracyCell CBS = measureAccuracy(P, Pers, chosenCBS(Pers), Perfect, 1);
    EXPECT_GT(CBS.AccuracyPct, Base.AccuracyPct + 10.0)
        << "personality " << static_cast<int>(Pers);
    EXPECT_LT(CBS.OverheadPct, 1.5);
  }
}

TEST(Accuracy, MoreSamplesMoreAccuracyMoreOverhead) {
  bc::Program P = jess().Build(wl::InputSize::Small, 1);
  PerfectProfile Perfect = runPerfect(P, vm::Personality::JikesRVM, 1);
  double PrevAcc = -1, PrevOvh = -1;
  for (uint32_t Samples : {1u, 16u, 256u}) {
    vm::ProfilerOptions Prof;
    Prof.Kind = vm::ProfilerKind::CBS;
    Prof.CBS.Stride = 3;
    Prof.CBS.SamplesPerTick = Samples;
    AccuracyCell Cell =
        measureAccuracy(P, vm::Personality::JikesRVM, Prof, Perfect, 1);
    EXPECT_GT(Cell.AccuracyPct, PrevAcc - 1.0);
    EXPECT_GT(Cell.OverheadPct, PrevOvh);
    PrevAcc = Cell.AccuracyPct;
    PrevOvh = Cell.OverheadPct;
  }
}

TEST(Accuracy, LargeInputsProfileBetterThanSmall) {
  // More ticks -> more samples -> higher accuracy (§6.2's small/large
  // split).
  vm::ProfilerOptions Prof = chosenCBS(vm::Personality::JikesRVM);
  AccuracyCell Small = measureAccuracyMedian(
      jess(), wl::InputSize::Small, vm::Personality::JikesRVM, Prof, 1, 1);
  AccuracyCell Large = measureAccuracyMedian(
      jess(), wl::InputSize::Large, vm::Personality::JikesRVM, Prof, 1, 1);
  EXPECT_GT(Large.AccuracyPct, Small.AccuracyPct);
}

TEST(Accuracy, MedianOverSeedsIsBracketed) {
  vm::ProfilerOptions Prof = chosenCBS(vm::Personality::JikesRVM);
  AccuracyCell Median = measureAccuracyMedian(
      jess(), wl::InputSize::Small, vm::Personality::JikesRVM, Prof, 3, 1);
  EXPECT_GT(Median.AccuracyPct, 50.0);
  EXPECT_LE(Median.AccuracyPct, 100.0);
}

TEST(Sweep, TinyGridHasPaperShape) {
  std::vector<const wl::WorkloadInfo *> Workloads = {&jess()};
  SweepResult R =
      runSweep(vm::Personality::JikesRVM, Workloads, wl::InputSize::Small,
               {1, 7}, {1, 32}, /*Runs=*/1, /*BaseSeed=*/1);
  ASSERT_EQ(R.Cells.size(), 2u);
  ASSERT_EQ(R.Cells[0].size(), 2u);
  // Accuracy grows down the samples axis.
  EXPECT_GT(R.Cells[1][0].AccuracyPct, R.Cells[0][0].AccuracyPct);
  // Overhead grows with samples.
  EXPECT_GT(R.Cells[1][0].OverheadPct, R.Cells[0][0].OverheadPct - 0.01);
  // The (1,1) corner is the poor base configuration.
  EXPECT_LT(R.Cells[0][0].AccuracyPct, 75.0);
}

TEST(Profilers, ChosenConfigsMatchPaper) {
  vm::ProfilerOptions Jikes = chosenCBS(vm::Personality::JikesRVM);
  EXPECT_EQ(Jikes.CBS.Stride, 3u);
  vm::ProfilerOptions J9 = chosenCBS(vm::Personality::J9);
  EXPECT_EQ(J9.CBS.Stride, 7u);
  EXPECT_EQ(baseProfiler(vm::Personality::JikesRVM).Kind,
            vm::ProfilerKind::Timer);
  EXPECT_EQ(baseProfiler(vm::Personality::J9).Kind, vm::ProfilerKind::CBS);
  EXPECT_EQ(baseProfiler(vm::Personality::J9).CBS.SamplesPerTick, 1u);
}

TEST(Speedup, ThroughputMeasurementIsPositiveAndStable) {
  bc::Program P = jess().Build(wl::InputSize::Steady, 1);
  SpeedupOptions Opts;
  Opts.WarmupCycles = 4'000'000;
  Opts.MeasureCycles = 8'000'000;
  ThroughputResult A = measureThroughput(P, Opts);
  ThroughputResult B = measureThroughput(P, Opts);
  EXPECT_GT(A.Throughput, 0.0);
  EXPECT_DOUBLE_EQ(A.Throughput, B.Throughput) << "deterministic";
}

TEST(Speedup, ProfileDirectedInliningBeatsNoProfile) {
  bc::Program P = wl::findWorkload("mtrt")->Build(wl::InputSize::Steady, 1);
  opt::NewJikesOracle Oracle;

  SpeedupOptions Base;
  Base.WarmupCycles = 8'000'000;
  Base.MeasureCycles = 10'000'000;
  Base.Oracle = nullptr;
  Base.Prof.Kind = vm::ProfilerKind::None;
  ThroughputResult BaseResult = measureThroughput(P, Base);

  SpeedupOptions CBS = Base;
  CBS.Prof = chosenCBS(vm::Personality::JikesRVM);
  CBS.Oracle = &Oracle;
  ThroughputResult CBSResult = measureThroughput(P, CBS);

  EXPECT_GT(speedupPercent(CBSResult, BaseResult), 1.0);
  EXPECT_GT(CBSResult.Recompilations, 0u);
}

TEST(Speedup, J9CBSBeatsTimerOnlyOnAverage) {
  // The Figure 5 (right) shape: with the J9 oracle, timer-quality
  // profiles suppress inlining at sites that are actually warm; CBS
  // suffers far less. Individual benchmarks are noisy, so assert the
  // average over a few of them, as the paper's figure does.
  opt::J9Oracle Dyn;
  opt::J9Oracle::Params SP;
  SP.UseDynamic = false;
  opt::J9Oracle Static(SP);

  double TimerSum = 0, CBSSum = 0;
  for (const char *Name : {"jess", "compress", "xerces"}) {
    bc::Program P =
        wl::findWorkload(Name)->Build(wl::InputSize::Steady, 1);
    SpeedupOptions Base;
    Base.Pers = vm::Personality::J9;
    Base.Oracle = &Static;
    Base.Prof.Kind = vm::ProfilerKind::None;
    ThroughputResult StaticResult = measureThroughput(P, Base);

    SpeedupOptions Timer = Base;
    Timer.Prof = baseProfiler(vm::Personality::J9);
    Timer.Oracle = &Dyn;
    TimerSum += speedupPercent(measureThroughput(P, Timer), StaticResult);

    SpeedupOptions CBS = Base;
    CBS.Prof = chosenCBS(vm::Personality::J9);
    CBS.Oracle = &Dyn;
    CBSSum += speedupPercent(measureThroughput(P, CBS), StaticResult);
  }
  EXPECT_GT(CBSSum, TimerSum);
}

TEST(Speedup, DynamicHeuristicsReduceCompileCost) {
  // §6.3: J9's dynamic heuristics reduce the total amount of inlining
  // and therefore compilation time. J9 compiles every executed method,
  // so the faithful comparison is whole-program compile cost under the
  // static-only plan vs the dynamic plan built from a mature profile.
  bc::Program P = wl::findWorkload("xerces")->Build(wl::InputSize::Small, 2);
  opt::J9Oracle Dyn;
  opt::J9Oracle::Params SP;
  SP.UseDynamic = false;
  opt::J9Oracle Static(SP);

  vm::VMConfig Config = jitOnlyConfig(P, vm::Personality::J9, 1);
  Config.Profiler = chosenCBS(vm::Personality::J9);
  vm::VirtualMachine VM(P, Config);
  ASSERT_EQ(VM.run(), vm::RunState::Finished);

  vm::CostModel Costs;
  auto TotalCompile = [&](const opt::InlinePlan &Plan) {
    uint64_t Total = 0;
    for (bc::MethodId M = 0; M != P.numMethods(); ++M)
      Total += opt::compileMethod(P, M, 2, Plan, Costs).CompileCostCycles;
    return Total;
  };
  uint64_t StaticCost =
      TotalCompile(Static.plan(P, prof::DCGSnapshot()));
  uint64_t DynCost = TotalCompile(Dyn.plan(P, VM.profile()));
  EXPECT_LT(DynCost, StaticCost)
      << "dynamic heuristics must reduce total inlining/compile cost";
}

TEST(Harness, EnvRunsDefaultsWhenUnset) {
  unsetenv("CBSVM_RUNS");
  EXPECT_EQ(envRuns(5), 5u);
  setenv("CBSVM_RUNS", "3", 1);
  EXPECT_EQ(envRuns(5), 3u);
  setenv("CBSVM_RUNS", "garbage", 1);
  EXPECT_EQ(envRuns(5), 5u);
  unsetenv("CBSVM_RUNS");
}
