//===- profiling/DynamicCallGraph.cpp - Weighted call graph ---------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/DynamicCallGraph.h"

#include "bytecode/Program.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <sstream>

using namespace cbs;
using namespace cbs::prof;

void DynamicCallGraph::addSample(CallEdge Edge, uint64_t Count) {
  Weights[Edge] += Count;
  Total += Count;
}

uint64_t DynamicCallGraph::weight(CallEdge Edge) const {
  auto It = Weights.find(Edge);
  return It == Weights.end() ? 0 : It->second;
}

double DynamicCallGraph::fraction(CallEdge Edge) const {
  if (Total == 0)
    return 0;
  return static_cast<double>(weight(Edge)) / static_cast<double>(Total);
}

std::vector<std::pair<CallEdge, uint64_t>>
DynamicCallGraph::siteDistribution(bc::SiteId Site) const {
  std::vector<std::pair<CallEdge, uint64_t>> Result;
  for (const auto &[Edge, Weight] : Weights)
    if (Edge.Site == Site)
      Result.emplace_back(Edge, Weight);
  std::sort(Result.begin(), Result.end(), [](const auto &L, const auto &R) {
    if (L.second != R.second)
      return L.second > R.second;
    return L.first < R.first;
  });
  return Result;
}

std::vector<std::pair<CallEdge, uint64_t>>
DynamicCallGraph::sortedEdges() const {
  std::vector<std::pair<CallEdge, uint64_t>> Result(Weights.begin(),
                                                    Weights.end());
  std::sort(Result.begin(), Result.end(), [](const auto &L, const auto &R) {
    return L.first < R.first;
  });
  return Result;
}

void DynamicCallGraph::merge(const DynamicCallGraph &Other) {
  if (&Other == this) {
    // Self-merge must not iterate Weights while addSample() inserts
    // into it (a rehash would invalidate the iterator). Doubling in
    // place is the semantic equivalent.
    for (auto &[Edge, Weight] : Weights)
      Weight *= 2;
    Total *= 2;
    return;
  }
  for (const auto &[Edge, Weight] : Other.Weights)
    addSample(Edge, Weight);
}

void DynamicCallGraph::decay(double Factor) {
  // Checked in release builds too: a factor >= 1 silently disables
  // decay (the profile grows forever) and a factor <= 0 wipes the
  // repository — both are caller bugs worth failing loudly on.
  if (!(Factor > 0 && Factor < 1))
    reportFatalError("DynamicCallGraph::decay factor must be in (0, 1), got " +
                     std::to_string(Factor));
  Total = 0;
  for (auto It = Weights.begin(); It != Weights.end();) {
    uint64_t Decayed =
        static_cast<uint64_t>(static_cast<double>(It->second) * Factor);
    if (Decayed == 0) {
      It = Weights.erase(It);
      continue;
    }
    It->second = Decayed;
    Total += Decayed;
    ++It;
  }
}

void DynamicCallGraph::clear() {
  Weights.clear();
  Total = 0;
}

std::string DynamicCallGraph::str(const bc::Program &P,
                                  size_t MaxEdges) const {
  auto Edges = sortedEdges();
  std::sort(Edges.begin(), Edges.end(), [](const auto &L, const auto &R) {
    if (L.second != R.second)
      return L.second > R.second;
    return L.first < R.first;
  });
  std::ostringstream OS;
  OS << "DCG: " << Edges.size() << " edges, total weight " << Total << '\n';
  size_t Shown = 0;
  for (const auto &[Edge, Weight] : Edges) {
    if (Shown++ == MaxEdges) {
      OS << "  ... (" << (Edges.size() - MaxEdges) << " more)\n";
      break;
    }
    const bc::SiteInfo &Site = P.site(Edge.Site);
    OS << "  " << P.qualifiedName(Site.Caller) << "@" << Site.PC << " -> "
       << P.qualifiedName(Edge.Callee) << "  " << Weight << " ("
       << static_cast<int>(fraction(Edge) * 1000) / 10.0 << "%)\n";
  }
  return OS.str();
}
