//===- profiling/DynamicCallGraph.cpp - Concurrent profile repo -----------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/DynamicCallGraph.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace cbs;
using namespace cbs::prof;

static unsigned clampShards(unsigned NumShards) {
  if (NumShards < 1)
    NumShards = 1;
  if (NumShards > DynamicCallGraph::MaxShards)
    NumShards = DynamicCallGraph::MaxShards;
  // Round up to a power of two so shard selection is a mask of the
  // edge hash.
  unsigned Pow2 = 1;
  while (Pow2 < NumShards)
    Pow2 *= 2;
  return Pow2;
}

DynamicCallGraph::DynamicCallGraph(unsigned NumShards) {
  unsigned N = clampShards(NumShards);
  Shards.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Shards.push_back(std::make_unique<Shard>());
  ShardMask = N - 1;
}

DynamicCallGraph::DynamicCallGraph(const DynamicCallGraph &Other)
    : DynamicCallGraph(Other.numShards()) {
  for (size_t I = 0, E = Shards.size(); I != E; ++I) {
    std::lock_guard<std::mutex> Lock(Other.Shards[I]->M);
    Shards[I]->Weights = Other.Shards[I]->Weights;
    Shards[I]->Total = Other.Shards[I]->Total;
  }
  Epoch.store(Other.epoch(), std::memory_order_relaxed);
}

DynamicCallGraph &DynamicCallGraph::operator=(const DynamicCallGraph &Other) {
  if (&Other == this)
    return *this;
  DynamicCallGraph Copy(Other);
  *this = std::move(Copy);
  return *this;
}

DynamicCallGraph &
DynamicCallGraph::operator=(DynamicCallGraph &&Other) noexcept {
  if (&Other == this)
    return *this;
  Shards = std::move(Other.Shards);
  ShardMask = Other.ShardMask;
  Epoch.store(Other.epoch(), std::memory_order_relaxed);
  Contention.store(Other.contentionCount(), std::memory_order_relaxed);
  Cache = DCGSnapshot();
  CacheEpoch = ~uint64_t(0);
  Other.Shards.clear();
  Other.Shards.push_back(std::make_unique<Shard>());
  Other.ShardMask = 0;
  Other.CacheEpoch = ~uint64_t(0);
  return *this;
}

DynamicCallGraph::DynamicCallGraph(DynamicCallGraph &&Other) noexcept
    : Shards(std::move(Other.Shards)), ShardMask(Other.ShardMask),
      Epoch(Other.epoch()), Contention(Other.contentionCount()) {
  // Leave the source valid (single empty shard) so destruction and
  // reassignment stay well-defined.
  Other.Shards.clear();
  Other.Shards.push_back(std::make_unique<Shard>());
  Other.ShardMask = 0;
  Other.CacheEpoch = ~uint64_t(0);
}

void DynamicCallGraph::lockShard(Shard &S) const {
  if (S.M.try_lock())
    return;
  Contention.fetch_add(1, std::memory_order_relaxed);
  S.M.lock();
}

void DynamicCallGraph::lockAll() const {
  for (const auto &S : Shards)
    lockShard(*S);
}

void DynamicCallGraph::unlockAll() const {
  for (size_t I = Shards.size(); I != 0; --I)
    Shards[I - 1]->M.unlock();
}

void DynamicCallGraph::addSample(CallEdge Edge, uint64_t Count) {
  // A zero-count sample must not create a resident weight-0 entry: it
  // would survive until the next decay truncation and meanwhile bloat
  // every snapshot, serialized profile, and overlap computation.
  if (Count == 0)
    return;
  Shard &S = shardFor(Edge);
  lockShard(S);
  S.Weights[Edge] += Count;
  S.Total += Count;
  bumpEpoch();
  S.M.unlock();
}

void DynamicCallGraph::addBatch(const CallEdge *Edges, size_t N) {
  if (N == 0)
    return;
  if (Shards.size() == 1) {
    // Single-shard fast path: the common single-threaded configuration
    // pays one lock acquisition per batch and nothing else.
    Shard &S = *Shards[0];
    lockShard(S);
    for (size_t I = 0; I != N; ++I)
      ++S.Weights[Edges[I]];
    S.Total += N;
    bumpEpoch();
    S.M.unlock();
    return;
  }

  // Lock every touched shard (ascending order: no deadlock against
  // other batches or snapshot()) before applying anything, so the
  // batch is atomic with respect to snapshots.
  uint64_t Touched = 0;
  for (size_t I = 0; I != N; ++I)
    Touched |= uint64_t(1) << (CallEdgeHash()(Edges[I]) & ShardMask);
  for (size_t I = 0, E = Shards.size(); I != E; ++I)
    if (Touched & (uint64_t(1) << I))
      lockShard(*Shards[I]);
  for (size_t I = 0; I != N; ++I) {
    Shard &S = shardFor(Edges[I]);
    ++S.Weights[Edges[I]];
    ++S.Total;
  }
  bumpEpoch();
  for (size_t I = Shards.size(); I != 0; --I)
    if (Touched & (uint64_t(1) << (I - 1)))
      Shards[I - 1]->M.unlock();
}

void DynamicCallGraph::merge(const DynamicCallGraph &Other) {
  if (&Other == this) {
    // Self-merge must not iterate the maps while inserting into them;
    // doubling in place is the semantic equivalent.
    lockAll();
    for (const auto &S : Shards) {
      for (auto &[Edge, Weight] : S->Weights)
        Weight *= 2;
      S->Total *= 2;
    }
    bumpEpoch();
    unlockAll();
    return;
  }
  // Snapshot the source first (its locks are released again before we
  // take ours, so two cross-merging graphs cannot deadlock), then apply
  // under all of our locks so the merge is atomic for our readers.
  DCGSnapshot Src = Other.snapshot();
  lockAll();
  for (const auto &[Edge, Weight] : Src.sortedEdges()) {
    Shard &S = shardFor(Edge);
    S.Weights[Edge] += Weight;
    S.Total += Weight;
  }
  bumpEpoch();
  unlockAll();
}

void DynamicCallGraph::decay(double Factor) {
  // Checked in release builds too: a factor >= 1 silently disables
  // decay (the profile grows forever) and a factor <= 0 wipes the
  // repository — both are caller bugs worth failing loudly on.
  if (!(Factor > 0 && Factor < 1))
    reportFatalError("DynamicCallGraph::decay factor must be in (0, 1), got " +
                     std::to_string(Factor));
  lockAll();
  for (const auto &S : Shards) {
    S->Total = 0;
    for (auto It = S->Weights.begin(); It != S->Weights.end();) {
      uint64_t Decayed =
          static_cast<uint64_t>(static_cast<double>(It->second) * Factor);
      if (Decayed == 0) {
        It = S->Weights.erase(It);
        continue;
      }
      It->second = Decayed;
      S->Total += Decayed;
      ++It;
    }
  }
  bumpEpoch();
  unlockAll();
}

void DynamicCallGraph::clear() {
  lockAll();
  for (const auto &S : Shards) {
    S->Weights.clear();
    S->Total = 0;
  }
  bumpEpoch();
  unlockAll();
}

uint64_t DynamicCallGraph::totalWeight() const {
  uint64_t Total = 0;
  for (const auto &S : Shards) {
    lockShard(*S);
    Total += S->Total;
    S->M.unlock();
  }
  return Total;
}

size_t DynamicCallGraph::numEdges() const {
  size_t Edges = 0;
  for (const auto &S : Shards) {
    lockShard(*S);
    Edges += S->Weights.size();
    S->M.unlock();
  }
  return Edges;
}

DCGSnapshot DynamicCallGraph::snapshot() const {
  lockAll();
  uint64_t Now = epoch();
  if (CacheEpoch == Now) {
    DCGSnapshot Result = Cache;
    unlockAll();
    return Result;
  }

  auto D = std::make_shared<DCGSnapshot::Data>();
  size_t Edges = 0;
  for (const auto &S : Shards)
    Edges += S->Weights.size();
  D->Edges.reserve(Edges);
  for (const auto &S : Shards) {
    for (const auto &[Edge, Weight] : S->Weights)
      D->Edges.emplace_back(Edge, Weight);
    D->Total += S->Total;
  }
  std::sort(D->Edges.begin(), D->Edges.end(),
            [](const DCGSnapshot::Edge &L, const DCGSnapshot::Edge &R) {
              return L.first < R.first;
            });
  D->Epoch = Now;

  Cache = DCGSnapshot(std::move(D));
  CacheEpoch = Now;
  DCGSnapshot Result = Cache;
  unlockAll();
  return Result;
}
