//===- profiling/CallingContextTree.cpp - Context-sensitive DCG -----------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/CallingContextTree.h"

#include "bytecode/Program.h"

#include <cassert>
#include <functional>
#include <sstream>

using namespace cbs;
using namespace cbs::prof;

uint32_t CallingContextTree::findOrAddChild(uint32_t Parent, PathStep Step) {
  for (uint32_t Child : Nodes[Parent].Children) {
    const PathStep &S = Nodes[Child].Step;
    if (S.Site == Step.Site && S.Method == Step.Method)
      return Child;
  }
  Node N;
  N.Step = Step;
  N.Parent = Parent;
  Nodes.push_back(N);
  uint32_t Id = static_cast<uint32_t>(Nodes.size() - 1);
  Nodes[Parent].Children.push_back(Id);
  return Id;
}

void CallingContextTree::addPath(const std::vector<PathStep> &Path,
                                 uint64_t Count) {
  assert(!Path.empty() && "empty sample path");
  uint32_t Cursor = 0;
  for (const PathStep &Step : Path) {
    Cursor = findOrAddChild(Cursor, Step);
    Nodes[Cursor].TraverseWeight += Count;
  }
  Nodes[Cursor].LeafWeight += Count;
  Total += Count;
}

size_t CallingContextTree::maxDepth() const {
  size_t Max = 0;
  // Node depth equals parent depth + 1; nodes are appended after their
  // parents, so one forward pass suffices.
  std::vector<size_t> Depth(Nodes.size(), 0);
  for (size_t I = 1, E = Nodes.size(); I != E; ++I) {
    Depth[I] = Depth[Nodes[I].Parent] + 1;
    Max = std::max(Max, Depth[I]);
  }
  return Max;
}

DCGSnapshot CallingContextTree::projectLeafEdges() const {
  std::vector<DCGSnapshot::Edge> Edges;
  for (size_t I = 1, E = Nodes.size(); I != E; ++I) {
    const Node &N = Nodes[I];
    if (N.LeafWeight == 0 || N.Step.Site == bc::InvalidSiteId)
      continue;
    Edges.push_back({{N.Step.Site, N.Step.Method}, N.LeafWeight});
  }
  return DCGSnapshot::fromEdges(std::move(Edges));
}

DCGSnapshot CallingContextTree::projectAllEdges() const {
  std::vector<DCGSnapshot::Edge> Edges;
  for (size_t I = 1, E = Nodes.size(); I != E; ++I) {
    const Node &N = Nodes[I];
    if (N.Step.Site == bc::InvalidSiteId)
      continue;
    Edges.push_back({{N.Step.Site, N.Step.Method}, N.TraverseWeight});
  }
  return DCGSnapshot::fromEdges(std::move(Edges));
}

std::string CallingContextTree::str(const bc::Program &P,
                                    size_t MaxNodes) const {
  std::ostringstream OS;
  OS << "CCT: " << numNodes() << " nodes, total weight " << Total << '\n';
  size_t Shown = 0;
  std::function<void(uint32_t, unsigned)> Dump = [&](uint32_t Id,
                                                     unsigned Depth) {
    if (Shown >= MaxNodes)
      return;
    if (Id != 0) {
      ++Shown;
      OS << std::string(2 * Depth, ' ')
         << P.qualifiedName(Nodes[Id].Step.Method) << " leaf="
         << Nodes[Id].LeafWeight << " through=" << Nodes[Id].TraverseWeight
         << '\n';
    }
    for (uint32_t Child : Nodes[Id].Children)
      Dump(Child, Id == 0 ? Depth : Depth + 1);
  };
  Dump(0, 0);
  return OS.str();
}
