//===- profiling/ProfileIO.h - profile validation ---------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic validation of a loaded profile against a Program. The text
/// serialization itself lives in ProfileCodec (versioned: v1 bare edge
/// lists, v2 with run provenance metadata); this file keeps the one
/// check the codec cannot do — whether the edges make sense for a
/// *particular* program — because the codec is deliberately
/// program-agnostic (a repository can decode entries for programs it
/// has never seen).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_PROFILEIO_H
#define CBSVM_PROFILING_PROFILEIO_H

#include "profiling/DCGSnapshot.h"

#include <string>

namespace cbs::bc {
class Program;
}

namespace cbs::prof {

/// Checks that every edge of \p DCG refers to a valid site/method of
/// \p P and that the callee is plausible for the site (static target
/// matches; virtual callee implements the site's selector). Returns an
/// empty string if fine, else a description of the first problem.
std::string validateAgainst(const DCGSnapshot &DCG, const bc::Program &P);

} // namespace cbs::prof

#endif // CBSVM_PROFILING_PROFILEIO_H
