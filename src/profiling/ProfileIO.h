//===- profiling/ProfileIO.h - profile serialization -------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization for dynamic call graphs: lets a profile collected
/// in one run be saved, inspected, diffed, and replayed into an offline
/// inlining plan (the workflow the paper's §3.2 baseline used with its
/// "offline profile data" validation, and what any adopter of the
/// library needs to regression-track profiles).
///
/// Serialization operates on DCGSnapshot — the immutable,
/// canonically-ordered view — so equal profiles serialize
/// byte-identically regardless of how (or how concurrently) they were
/// collected.
///
/// Format (line-oriented, versioned):
///
///   cbsvm-dcg 1
///   # optional comments
///   <site> <callee> <weight>
///
/// Sites and callees are numeric ids, valid relative to the program the
/// profile was collected from; validateAgainst() can sanity-check a
/// loaded profile against a Program.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_PROFILEIO_H
#define CBSVM_PROFILING_PROFILEIO_H

#include "profiling/DCGSnapshot.h"

#include <optional>
#include <string>

namespace cbs::bc {
class Program;
}

namespace cbs::prof {

/// Serializes \p DCG. Edges are emitted in the snapshot's canonical
/// (sorted key) order so equal profiles serialize identically.
std::string serializeDCG(const DCGSnapshot &DCG);

/// Parse result: the profile snapshot, or an error description.
struct ParseResult {
  std::optional<DCGSnapshot> Graph;
  std::string Error;

  bool ok() const { return Graph.has_value(); }
};

/// Parses the serializeDCG format. Unknown versions, malformed lines,
/// and duplicate edges are errors.
ParseResult parseDCG(const std::string &Text);

/// Checks that every edge of \p DCG refers to a valid site/method of
/// \p P and that the callee is plausible for the site (static target
/// matches; virtual callee implements the site's selector). Returns an
/// empty string if fine, else a description of the first problem.
std::string validateAgainst(const DCGSnapshot &DCG, const bc::Program &P);

} // namespace cbs::prof

#endif // CBSVM_PROFILING_PROFILEIO_H
