//===- profiling/CodePatchingProfiler.h - Suganuma baseline -----*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The code-patching / dynamic-instrumentation baseline of §3.2
/// (Suganuma et al., IBM DK): a method is not profiled until it reaches
/// a certain level of optimization; then a listener is installed in its
/// prologue which records the caller→callee relationship on every entry
/// until a fixed number of samples have been collected, after which the
/// listener patches itself out. The elapsed time over the listening
/// window yields an invocation-frequency estimate, which is used to
/// weight the method's edges in the repository (otherwise every
/// instrumented method would contribute exactly the same sample count
/// regardless of how hot it is).
///
/// This is a pure state machine like CounterBasedSampler; the VM feeds
/// it promotion and entry events and charges the modelled listener cost.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_CODEPATCHINGPROFILER_H
#define CBSVM_PROFILING_CODEPATCHINGPROFILER_H

#include "profiling/DynamicCallGraph.h"

#include <cstdint>
#include <vector>

namespace cbs::prof {

struct CodePatchingParams {
  /// Samples collected per instrumented method before the listener
  /// uninstalls itself.
  uint32_t SamplesPerMethod = 64;
};

class CodePatchingProfiler {
public:
  CodePatchingProfiler(size_t NumMethods, CodePatchingParams Params = {})
      : Params(Params), States(NumMethods, State::Unpromoted),
        PerMethod(NumMethods) {}

  /// The adaptive system promoted \p Method to an optimized level:
  /// install its prologue listener.
  void onMethodPromoted(bc::MethodId Method, uint64_t NowCycles);

  /// True while \p Method has an installed listener (the VM charges the
  /// listener execution cost on such entries).
  bool isListening(bc::MethodId Method) const {
    return States[Method] == State::Listening;
  }

  /// An entry into a listening method along \p Edge. When the sample
  /// quota is reached the listener uninstalls and the method's edges are
  /// flushed into \p Repo with frequency-corrected weights.
  void onListenedEntry(bc::MethodId Method, CallEdge Edge,
                       uint64_t NowCycles, DynamicCallGraph &Repo);

  /// Flushes listening methods that never reached their quota (end of
  /// run), using the final cycle count for the rate estimate.
  void flushIncomplete(uint64_t NowCycles, DynamicCallGraph &Repo);

  uint64_t methodsInstrumented() const { return Instrumented; }
  uint64_t listenerExecutions() const { return ListenerRuns; }

private:
  enum class State : uint8_t { Unpromoted, Listening, Done };

  struct MethodState {
    uint64_t InstallCycles = 0;
    uint32_t Remaining = 0;
    std::vector<std::pair<CallEdge, uint32_t>> Edges;
  };

  void flushMethod(bc::MethodId Method, uint64_t NowCycles,
                   DynamicCallGraph &Repo);

  CodePatchingParams Params;
  std::vector<State> States;
  std::vector<MethodState> PerMethod;
  uint64_t Instrumented = 0;
  uint64_t ListenerRuns = 0;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_CODEPATCHINGPROFILER_H
