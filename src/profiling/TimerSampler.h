//===- profiling/TimerSampler.h - Timer-only baseline -----------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic timer-based sampling baseline (§3.3): each timer
/// interrupt requests exactly one sample, taken at the next
/// prologue/epilogue yieldpoint. It is the degenerate CBS configuration
/// Stride=1, Samples=1, but is kept as its own state machine because it
/// is the paper's "base" system and because its bias (it samples the
/// first call *after* the tick, which over-weights calls that follow
/// long non-call stretches — Figure 1) is the behaviour our tests pin
/// down.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_TIMERSAMPLER_H
#define CBSVM_PROFILING_TIMERSAMPLER_H

#include <cassert>
#include <cstdint>

namespace cbs::prof {

class TimerSampler {
public:
  /// The timer interrupt: request one sample.
  void onTimerTick() {
    if (Pending)
      ++MissedTicks;
    Pending = true;
  }

  bool armed() const { return Pending; }

  /// An invocation event while armed; always samples and disarms.
  bool onInvocationEvent() {
    assert(Pending && "event delivered to a disarmed sampler");
    Pending = false;
    ++SamplesTaken;
    return true;
  }

  /// The first taken yieldpoint after the tick was a loop backedge: in
  /// Jikes RVM the thread switch happens there and the DCG listener gets
  /// nothing, so the sample is lost (§3.3 / §5.1).
  void cancel() {
    assert(Pending && "cancel on a disarmed sampler");
    Pending = false;
    ++LostToBackedge;
  }

  uint64_t samplesTaken() const { return SamplesTaken; }
  /// Ticks that arrived while the previous sample was still pending
  /// (no call executed in between — e.g. a long I/O or Work stretch).
  uint64_t missedTicks() const { return MissedTicks; }
  /// Samples lost to a backedge yieldpoint winning the race.
  uint64_t lostToBackedge() const { return LostToBackedge; }

private:
  bool Pending = false;
  uint64_t SamplesTaken = 0;
  uint64_t MissedTicks = 0;
  uint64_t LostToBackedge = 0;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_TIMERSAMPLER_H
