//===- profiling/ProfileCodec.cpp - versioned profile codec --------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/ProfileCodec.h"

#include "bytecode/Ids.h"

#include <iomanip>
#include <sstream>
#include <unordered_set>

using namespace cbs;
using namespace cbs::prof;

namespace {

void encodeEdges(std::ostringstream &OS, const DCGSnapshot &DCG) {
  OS << "# edges: " << DCG.numEdges() << ", total weight: "
     << DCG.totalWeight() << '\n';
  DCG.forEachEdge([&](CallEdge E, uint64_t W) {
    OS << E.Site << ' ' << E.Callee << ' ' << W << '\n';
  });
}

std::string lineError(size_t LineNo, const std::string &What) {
  return "line " + std::to_string(LineNo) + ": " + What;
}

/// Strict full-string decimal parse (no prefixes, no sign).
bool parseUInt(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (V > (UINT64_MAX - Digit) / 10)
      return false;
    V = V * 10 + Digit;
  }
  Out = V;
  return true;
}

/// Strict 16-digit lowercase hex parse (the !program value format).
bool parseHash(const std::string &S, uint64_t &Out) {
  if (S.size() != 16)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    uint64_t Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<uint64_t>(C - 'a') + 10;
    else
      return false;
    V = (V << 4) | Digit;
  }
  Out = V;
  return true;
}

} // namespace

std::string ProfileCodec::encode(const DCGSnapshot &DCG) {
  std::ostringstream OS;
  OS << Magic << ' ' << V1 << '\n';
  encodeEdges(OS, DCG);
  return OS.str();
}

std::string ProfileCodec::encode(const DCGSnapshot &DCG,
                                 const ProfileMeta &Meta) {
  std::ostringstream OS;
  OS << Magic << ' ' << V2 << '\n';
  OS << "!program " << std::hex << std::setfill('0') << std::setw(16)
     << Meta.ProgramHash << std::dec << '\n';
  OS << "!personality " << Meta.Personality << '\n';
  OS << "!runs " << Meta.Runs << '\n';
  OS << "!cycles " << Meta.Cycles << '\n';
  encodeEdges(OS, DCG);
  return OS.str();
}

ProfileCodec::Decoded ProfileCodec::decode(const std::string &Text) {
  Decoded Result;
  std::istringstream IS(Text);
  std::string Line;

  if (!std::getline(IS, Line)) {
    Result.Error = "empty input";
    return Result;
  }
  {
    std::istringstream Header(Line);
    std::string Word;
    int V = -1;
    Header >> Word >> V;
    if (Word != Magic) {
      Result.Error = "bad magic: expected '" + std::string(Magic) + "'";
      return Result;
    }
    if (V != V1 && V != V2) {
      Result.Error = "unsupported version " + std::to_string(V) +
                     " (supported: 1, 2)";
      return Result;
    }
    Result.Version = V;
  }

  std::vector<DCGSnapshot::Edge> Edges;
  std::unordered_set<CallEdge, CallEdgeHash> Seen;
  std::unordered_set<std::string> MetaSeen;
  size_t LineNo = 1;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    if (Result.Version >= V2 && Line[0] == '!') {
      // A `!key value` metadata line. v1 bodies fall through to the
      // edge parser below, where `!...` is a malformed edge — v1
      // predates metadata and must stay as strict as it always was.
      std::istringstream MS(Line);
      std::string Key, Value, Trailing;
      MS >> Key >> Value;
      Key.erase(0, 1); // strip '!'
      if (MS >> Trailing) {
        Result.Error = lineError(LineNo, "trailing tokens");
        return Result;
      }
      if (!MetaSeen.insert(Key).second) {
        Result.Error =
            lineError(LineNo, "duplicate metadata key '" + Key + "'");
        return Result;
      }
      if (Key == "program") {
        if (!parseHash(Value, Result.Meta.ProgramHash)) {
          Result.Error =
              lineError(LineNo, "bad program hash '" + Value + "'");
          return Result;
        }
      } else if (Key == "personality") {
        if (Value.empty()) {
          Result.Error = lineError(LineNo, "empty personality");
          return Result;
        }
        Result.Meta.Personality = Value;
      } else if (Key == "runs") {
        if (!parseUInt(Value, Result.Meta.Runs)) {
          Result.Error = lineError(LineNo, "bad run count '" + Value + "'");
          return Result;
        }
      } else if (Key == "cycles") {
        if (!parseUInt(Value, Result.Meta.Cycles)) {
          Result.Error =
              lineError(LineNo, "bad cycle count '" + Value + "'");
          return Result;
        }
      } else {
        Result.Error =
            lineError(LineNo, "unknown metadata key '" + Key + "'");
        return Result;
      }
      continue;
    }
    std::istringstream LS(Line);
    uint64_t Site, Callee, Weight;
    if (!(LS >> Site >> Callee >> Weight)) {
      Result.Error = lineError(LineNo, "malformed edge");
      return Result;
    }
    std::string Trailing;
    if (LS >> Trailing) {
      Result.Error = lineError(LineNo, "trailing tokens");
      return Result;
    }
    if (Weight == 0) {
      Result.Error = lineError(LineNo, "zero weight edge");
      return Result;
    }
    // Ids are 32-bit; range-check before narrowing so an oversized (or
    // negative, which istream wraps to huge) id errors instead of
    // silently truncating to some unrelated valid edge. The all-ones
    // values are the Invalid sentinels and equally unusable.
    if (Site >= bc::InvalidSiteId) {
      Result.Error = lineError(
          LineNo, "site id out of range: " + std::to_string(Site));
      return Result;
    }
    if (Callee >= bc::InvalidMethodId) {
      Result.Error = lineError(
          LineNo, "callee id out of range: " + std::to_string(Callee));
      return Result;
    }
    CallEdge E{static_cast<bc::SiteId>(Site),
               static_cast<bc::MethodId>(Callee)};
    if (!Seen.insert(E).second) {
      Result.Error = lineError(LineNo, "duplicate edge");
      return Result;
    }
    Edges.emplace_back(E, Weight);
  }
  Result.Graph = DCGSnapshot::fromEdges(std::move(Edges));
  return Result;
}
