//===- profiling/QualityMonitor.h - Online DCG convergence ------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online profile-quality monitor: the self-observability analogue
/// of the paper's offline accuracy evaluation (§6.2). Every K timer
/// ticks the VM hands the monitor a fresh DCGSnapshot; the monitor
/// compares it against the previous window's snapshot and publishes
///
///  - successive-window overlap (the §6.2 metric applied to the
///    profile's own history instead of a perfect reference),
///  - hot-edge churn: how many of the top-N edges appeared/vanished,
///  - a per-edge confidence estimate from sample counts: an edge with
///    weight w has a relative standard error ~ 1/sqrt(w) under
///    independent sampling, so confidence = 100 * (1 - 1/sqrt(w)).
///
/// A window whose overlap with its predecessor falls below the
/// configured threshold is flagged as a *phase shift*: the program's
/// hot set changed faster than the profile can be trusted, so plan
/// consumers (the AOS) should rebuild rather than serve stale
/// decisions. Detection quality depends on the repository being
/// recency-weighted — enable profile decay (ProfilerOptions::
/// DecayEveryTicks) or a cumulative profile's history will mask the
/// shift.
///
/// The monitor is pure bookkeeping over immutable snapshots plus
/// metric publication (`dcg.quality.*`); it emits no trace events and
/// charges no cycles itself — the VM owns both of those decisions.
/// Determinism: outputs are a pure function of the snapshot sequence,
/// so they are byte-identical at any shard or job count.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_QUALITYMONITOR_H
#define CBSVM_PROFILING_QUALITYMONITOR_H

#include "profiling/DCGSnapshot.h"
#include "telemetry/MetricRegistry.h"

#include <cstdint>
#include <vector>

namespace cbs::json {
class JsonWriter;
}

namespace cbs::prof {

struct QualityMonitorParams {
  /// Take a quality window every this many timer ticks (0 = monitor
  /// disabled; the VM then constructs no monitor at all, keeping the
  /// disarmed configuration free).
  uint32_t EveryTicks = 0;
  /// A window whose overlap with its predecessor is below this
  /// percentage is a phase shift.
  double PhaseShiftOverlapPct = 50.0;
  /// Size of the hot set tracked for churn accounting.
  size_t HotEdges = 16;
};

/// One quality observation: the monitor's view of the profile at a
/// window boundary.
struct QualityWindow {
  uint64_t Index = 0;  ///< 1-based window number
  uint64_t Tick = 0;   ///< timer tick at which the window closed
  uint64_t Cycles = 0; ///< virtual-cycle timestamp
  size_t Edges = 0;
  uint64_t TotalWeight = 0;
  /// Overlap with the previous window's snapshot (100 for the first
  /// window: no predecessor, vacuously converged).
  double OverlapPct = 100.0;
  /// Hot-set churn vs the previous window.
  uint32_t HotNew = 0;
  uint32_t HotVanished = 0;
  /// Mean per-edge confidence over the snapshot (0 when empty).
  double MeanConfidencePct = 0.0;
  bool PhaseShift = false;
};

class ProfileQualityMonitor {
public:
  ProfileQualityMonitor(QualityMonitorParams Params, tel::MetricRegistry &R);

  /// Closes one window: compares \p Snap against the previous window,
  /// appends to the history, and refreshes the dcg.quality.* metrics.
  /// Returns the window just recorded.
  const QualityWindow &onWindow(const DCGSnapshot &Snap, uint64_t Tick,
                                uint64_t Cycles);

  const QualityMonitorParams &params() const { return Params; }
  const std::vector<QualityWindow> &history() const { return History; }
  uint64_t windowCount() const { return History.size(); }
  uint64_t phaseShiftCount() const { return PhaseShifts; }
  /// Overlap of the most recent window (100 before the first window).
  double lastOverlapPct() const {
    return History.empty() ? 100.0 : History.back().OverlapPct;
  }
  /// True once at least two windows exist and the last one was not a
  /// phase shift: the profile currently describes the program.
  bool converged() const {
    return History.size() >= 2 && !History.back().PhaseShift;
  }

  /// Confidence in an edge of weight \p Weight as a percentage:
  /// 100 * (1 - 1/sqrt(w)), clamped at 0 (a single sample says nothing
  /// about the weight's stability).
  static double edgeConfidencePct(uint64_t Weight);

  /// {"everyTicks":..., "phaseThresholdPct":..., "hotEdges":...,
  ///  "phaseShifts":..., "windows":[...]} — deterministic, used by
  /// `cbsvm report --json` and the determinism tests.
  void writeJson(json::JsonWriter &W) const;

private:
  /// Top-HotEdges edges by (weight desc, key asc), returned sorted by
  /// key for set comparison.
  std::vector<CallEdge> hotSet(const DCGSnapshot &S) const;

  QualityMonitorParams Params;

  tel::Counter &Windows;          // dcg.quality.windows
  tel::Counter &PhaseShiftCount;  // dcg.quality.phase_shifts
  tel::Gauge &OverlapBp;          // dcg.quality.overlap_bp
  tel::Gauge &HotNewGauge;        // dcg.quality.hot_new
  tel::Gauge &HotVanishedGauge;   // dcg.quality.hot_vanished
  tel::Gauge &EdgesGauge;         // dcg.quality.edges
  tel::Gauge &WeightGauge;        // dcg.quality.total_weight
  tel::Gauge &ConfidenceBp;       // dcg.quality.mean_confidence_bp
  tel::Histogram &OverlapHist;    // dcg.quality.overlap_pct
  tel::Histogram &ConfidenceHist; // dcg.quality.edge_confidence_pct

  DCGSnapshot Prev;
  std::vector<CallEdge> PrevHot;
  std::vector<QualityWindow> History;
  uint64_t PhaseShifts = 0;
  bool HavePrev = false;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_QUALITYMONITOR_H
