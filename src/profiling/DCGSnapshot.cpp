//===- profiling/DCGSnapshot.cpp - Immutable DCG view ---------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/DCGSnapshot.h"

#include "bytecode/Program.h"

#include <algorithm>
#include <sstream>

using namespace cbs;
using namespace cbs::prof;

DCGSnapshot DCGSnapshot::fromEdges(std::vector<Edge> Edges) {
  std::sort(Edges.begin(), Edges.end(),
            [](const Edge &L, const Edge &R) { return L.first < R.first; });
  // Coalesce duplicates so fromEdges accepts raw sample lists.
  size_t Out = 0;
  for (size_t I = 0; I != Edges.size(); ++I) {
    if (Out != 0 && Edges[Out - 1].first == Edges[I].first) {
      Edges[Out - 1].second += Edges[I].second;
      continue;
    }
    Edges[Out++] = Edges[I];
  }
  Edges.resize(Out);

  auto D = std::make_shared<Data>();
  D->Edges = std::move(Edges);
  for (const Edge &E : D->Edges)
    D->Total += E.second;
  return DCGSnapshot(std::move(D));
}

uint64_t DCGSnapshot::weight(CallEdge E) const {
  if (!D)
    return 0;
  auto It = std::lower_bound(
      D->Edges.begin(), D->Edges.end(), E,
      [](const Edge &L, const CallEdge &R) { return L.first < R; });
  if (It == D->Edges.end() || !(It->first == E))
    return 0;
  return It->second;
}

double DCGSnapshot::fraction(CallEdge E) const {
  uint64_t Total = totalWeight();
  if (Total == 0)
    return 0;
  return static_cast<double>(weight(E)) / static_cast<double>(Total);
}

std::vector<DCGSnapshot::Edge>
DCGSnapshot::siteDistribution(bc::SiteId Site) const {
  std::vector<Edge> Result;
  if (!D)
    return Result;
  // Edges are sorted by (Site, Callee), so the site's edges form one
  // contiguous run.
  auto First = std::lower_bound(
      D->Edges.begin(), D->Edges.end(), Site,
      [](const Edge &L, bc::SiteId S) { return L.first.Site < S; });
  for (auto It = First; It != D->Edges.end() && It->first.Site == Site; ++It)
    Result.push_back(*It);
  std::sort(Result.begin(), Result.end(), [](const Edge &L, const Edge &R) {
    if (L.second != R.second)
      return L.second > R.second;
    return L.first < R.first;
  });
  return Result;
}

bc::MethodId DCGSnapshot::dominantCallee(bc::SiteId Site, double MinSharePct,
                                         uint64_t &SiteWeight) const {
  SiteWeight = 0;
  if (!D)
    return bc::InvalidMethodId;
  auto First = std::lower_bound(
      D->Edges.begin(), D->Edges.end(), Site,
      [](const Edge &L, bc::SiteId S) { return L.first.Site < S; });
  const Edge *Best = nullptr;
  for (auto It = First; It != D->Edges.end() && It->first.Site == Site;
       ++It) {
    SiteWeight += It->second;
    if (!Best || It->second > Best->second ||
        (It->second == Best->second && It->first < Best->first))
      Best = &*It;
  }
  if (!Best || SiteWeight == 0)
    return bc::InvalidMethodId;
  double SharePct = 100.0 * static_cast<double>(Best->second) /
                    static_cast<double>(SiteWeight);
  return SharePct >= MinSharePct ? Best->first.Callee : bc::InvalidMethodId;
}

const std::vector<DCGSnapshot::Edge> &DCGSnapshot::sortedEdges() const {
  static const std::vector<Edge> Empty;
  return D ? D->Edges : Empty;
}

std::string DCGSnapshot::str(const bc::Program &P, size_t MaxEdges) const {
  std::vector<Edge> Edges = sortedEdges();
  std::sort(Edges.begin(), Edges.end(), [](const Edge &L, const Edge &R) {
    if (L.second != R.second)
      return L.second > R.second;
    return L.first < R.first;
  });
  std::ostringstream OS;
  OS << "DCG: " << Edges.size() << " edges, total weight " << totalWeight()
     << '\n';
  size_t Shown = 0;
  for (const auto &[E, W] : Edges) {
    if (Shown++ == MaxEdges) {
      OS << "  ... (" << (Edges.size() - MaxEdges) << " more)\n";
      break;
    }
    const bc::SiteInfo &Site = P.site(E.Site);
    OS << "  " << P.qualifiedName(Site.Caller) << "@" << Site.PC << " -> "
       << P.qualifiedName(E.Callee) << "  " << W << " ("
       << static_cast<int>(fraction(E) * 1000) / 10.0 << "%)\n";
  }
  return OS.str();
}
