//===- profiling/Metrics.h - additional accuracy metrics ---------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accuracy metrics beyond the paper's overlap percentage (§6.2 notes
/// the choice of metric is client-dependent). These capture what
/// specific clients care about:
///
///  - hotEdgeCoverage: of the true hottest N edges, what fraction does
///    the sampled profile contain at all? This is the old Jikes
///    inliner's world view: it only asked "is this edge hot", so a
///    profile that finds the hot edges but garbles their weights was
///    good enough for it.
///  - hotOrderAgreement: do the sampled profile's top-N edges rank in
///    the same relative order as the truth (pairwise, Kendall-style)?
///    Clients that prioritize by weight (inlining budget allocation)
///    care about order more than magnitude.
///  - siteDistributionError: average L1 distance between per-site
///    receiver distributions — the quantity behind the new inliner's
///    40% rule and guarded-target selection.
///
/// Like the overlap metric, these compare immutable DCGSnapshot views.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_METRICS_H
#define CBSVM_PROFILING_METRICS_H

#include "profiling/DCGSnapshot.h"

namespace cbs::prof {

/// Fraction (0-1) of \p Perfect's heaviest \p N edges that appear in
/// \p Sampled with nonzero weight. Returns 1 for an empty perfect
/// profile.
double hotEdgeCoverage(const DCGSnapshot &Sampled, const DCGSnapshot &Perfect,
                       size_t N);

/// Pairwise order agreement (0-1) between the sampled weights of
/// \p Perfect's heaviest \p N edges and their true order: for every
/// pair with distinct true weights, score 1 if the sampled weights
/// order the same way (missing edges count as weight 0), 0.5 on
/// sampled ties. Returns 1 when fewer than two comparable edges exist.
double hotOrderAgreement(const DCGSnapshot &Sampled, const DCGSnapshot &Perfect,
                         size_t N);

/// Mean, over call sites present in \p Perfect, of the L1 distance
/// between the normalized per-site receiver distributions (0 = every
/// site's distribution matches exactly; 2 = completely disjoint).
/// Sites the sample never saw contribute the maximal distance 2.
double siteDistributionError(const DCGSnapshot &Sampled,
                             const DCGSnapshot &Perfect);

} // namespace cbs::prof

#endif // CBSVM_PROFILING_METRICS_H
