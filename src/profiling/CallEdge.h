//===- profiling/CallEdge.h - Dynamic call graph edges ----------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A call edge as defined in §2 of the paper: a triple (caller, call
/// site, callee). Because site ids are program-unique, the caller is
/// implied by the site and the runtime key is just (site, callee).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_CALLEDGE_H
#define CBSVM_PROFILING_CALLEDGE_H

#include "bytecode/Ids.h"

#include <cstddef>
#include <functional>

namespace cbs::prof {

struct CallEdge {
  bc::SiteId Site = bc::InvalidSiteId;
  bc::MethodId Callee = bc::InvalidMethodId;

  friend bool operator==(const CallEdge &L, const CallEdge &R) {
    return L.Site == R.Site && L.Callee == R.Callee;
  }
  friend bool operator<(const CallEdge &L, const CallEdge &R) {
    if (L.Site != R.Site)
      return L.Site < R.Site;
    return L.Callee < R.Callee;
  }
};

struct CallEdgeHash {
  size_t operator()(const CallEdge &E) const {
    uint64_t Key =
        (static_cast<uint64_t>(E.Site) << 32) | static_cast<uint64_t>(E.Callee);
    // SplitMix64 finalizer: cheap and well mixed.
    Key = (Key ^ (Key >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Key = (Key ^ (Key >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(Key ^ (Key >> 31));
  }
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_CALLEDGE_H
