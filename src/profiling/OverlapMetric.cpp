//===- profiling/OverlapMetric.cpp - Profile accuracy metric --------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/OverlapMetric.h"

#include <algorithm>

using namespace cbs;
using namespace cbs::prof;

double prof::overlap(const DCGSnapshot &A, const DCGSnapshot &B) {
  if (A.empty() && B.empty())
    return 100.0;
  if (A.empty() || B.empty())
    return 0.0;

  double TotalA = static_cast<double>(A.totalWeight());
  double TotalB = static_cast<double>(B.totalWeight());
  double Sum = 0;
  A.forEachEdge([&](CallEdge Edge, uint64_t WeightA) {
    uint64_t WeightB = B.weight(Edge);
    if (WeightB == 0)
      return;
    double PctA = 100.0 * static_cast<double>(WeightA) / TotalA;
    double PctB = 100.0 * static_cast<double>(WeightB) / TotalB;
    Sum += std::min(PctA, PctB);
  });
  return Sum;
}

double prof::accuracy(const DCGSnapshot &Sampled, const DCGSnapshot &Perfect) {
  return overlap(Sampled, Perfect);
}
