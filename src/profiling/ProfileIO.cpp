//===- profiling/ProfileIO.cpp - profile validation ----------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/ProfileIO.h"

#include "bytecode/Program.h"

using namespace cbs;
using namespace cbs::prof;

std::string prof::validateAgainst(const DCGSnapshot &DCG,
                                  const bc::Program &P) {
  std::string Problem;
  DCG.forEachEdge([&](CallEdge E, uint64_t) {
    if (!Problem.empty())
      return;
    if (E.Site >= P.numSites()) {
      Problem = "edge refers to unknown site " + std::to_string(E.Site);
      return;
    }
    if (E.Callee >= P.numMethods()) {
      Problem =
          "edge refers to unknown method " + std::to_string(E.Callee);
      return;
    }
    const bc::SiteInfo &Info = P.site(E.Site);
    const bc::Instruction &I = P.method(Info.Caller).Code[Info.PC];
    const bc::Method &Callee = P.method(E.Callee);
    if (I.Op == bc::Opcode::InvokeStatic) {
      if (static_cast<bc::MethodId>(I.A) != E.Callee)
        Problem = "static site " + std::to_string(E.Site) +
                  " cannot call " + P.qualifiedName(E.Callee);
    } else if (I.Op == bc::Opcode::InvokeVirtual) {
      if (!Callee.isVirtual() ||
          Callee.Selector != static_cast<bc::SelectorId>(I.A))
        Problem = "virtual site " + std::to_string(E.Site) +
                  " cannot dispatch to " + P.qualifiedName(E.Callee);
    } else {
      Problem = "site " + std::to_string(E.Site) +
                " is not a call instruction";
    }
  });
  return Problem;
}
