//===- profiling/ProfileIO.cpp - profile serialization -------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/ProfileIO.h"

#include "bytecode/Program.h"

#include <sstream>
#include <unordered_set>

using namespace cbs;
using namespace cbs::prof;

static constexpr const char *Magic = "cbsvm-dcg";
static constexpr int Version = 1;

std::string prof::serializeDCG(const DCGSnapshot &DCG) {
  std::ostringstream OS;
  OS << Magic << ' ' << Version << '\n';
  OS << "# edges: " << DCG.numEdges() << ", total weight: "
     << DCG.totalWeight() << '\n';
  DCG.forEachEdge([&](CallEdge E, uint64_t W) {
    OS << E.Site << ' ' << E.Callee << ' ' << W << '\n';
  });
  return OS.str();
}

ParseResult prof::parseDCG(const std::string &Text) {
  ParseResult Result;
  std::istringstream IS(Text);
  std::string Line;

  if (!std::getline(IS, Line)) {
    Result.Error = "empty input";
    return Result;
  }
  {
    std::istringstream Header(Line);
    std::string Word;
    int V = -1;
    Header >> Word >> V;
    if (Word != Magic) {
      Result.Error = "bad magic: expected '" + std::string(Magic) + "'";
      return Result;
    }
    if (V != Version) {
      Result.Error = "unsupported version " + std::to_string(V);
      return Result;
    }
  }

  std::vector<DCGSnapshot::Edge> Edges;
  std::unordered_set<CallEdge, CallEdgeHash> Seen;
  size_t LineNo = 1;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    uint64_t Site, Callee, Weight;
    if (!(LS >> Site >> Callee >> Weight)) {
      Result.Error =
          "line " + std::to_string(LineNo) + ": malformed edge";
      return Result;
    }
    std::string Trailing;
    if (LS >> Trailing) {
      Result.Error =
          "line " + std::to_string(LineNo) + ": trailing tokens";
      return Result;
    }
    if (Weight == 0) {
      Result.Error =
          "line " + std::to_string(LineNo) + ": zero weight edge";
      return Result;
    }
    // Ids are 32-bit; range-check before narrowing so an oversized (or
    // negative, which istream wraps to huge) id errors instead of
    // silently truncating to some unrelated valid edge. The all-ones
    // values are the Invalid sentinels and equally unusable.
    if (Site >= bc::InvalidSiteId) {
      Result.Error = "line " + std::to_string(LineNo) +
                     ": site id out of range: " + std::to_string(Site);
      return Result;
    }
    if (Callee >= bc::InvalidMethodId) {
      Result.Error = "line " + std::to_string(LineNo) +
                     ": callee id out of range: " + std::to_string(Callee);
      return Result;
    }
    CallEdge E{static_cast<bc::SiteId>(Site),
               static_cast<bc::MethodId>(Callee)};
    if (!Seen.insert(E).second) {
      Result.Error =
          "line " + std::to_string(LineNo) + ": duplicate edge";
      return Result;
    }
    Edges.emplace_back(E, Weight);
  }
  Result.Graph = DCGSnapshot::fromEdges(std::move(Edges));
  return Result;
}

std::string prof::validateAgainst(const DCGSnapshot &DCG,
                                  const bc::Program &P) {
  std::string Problem;
  DCG.forEachEdge([&](CallEdge E, uint64_t) {
    if (!Problem.empty())
      return;
    if (E.Site >= P.numSites()) {
      Problem = "edge refers to unknown site " + std::to_string(E.Site);
      return;
    }
    if (E.Callee >= P.numMethods()) {
      Problem =
          "edge refers to unknown method " + std::to_string(E.Callee);
      return;
    }
    const bc::SiteInfo &Info = P.site(E.Site);
    const bc::Instruction &I = P.method(Info.Caller).Code[Info.PC];
    const bc::Method &Callee = P.method(E.Callee);
    if (I.Op == bc::Opcode::InvokeStatic) {
      if (static_cast<bc::MethodId>(I.A) != E.Callee)
        Problem = "static site " + std::to_string(E.Site) +
                  " cannot call " + P.qualifiedName(E.Callee);
    } else if (I.Op == bc::Opcode::InvokeVirtual) {
      if (!Callee.isVirtual() ||
          Callee.Selector != static_cast<bc::SelectorId>(I.A))
        Problem = "virtual site " + std::to_string(E.Site) +
                  " cannot dispatch to " + P.qualifiedName(E.Callee);
    } else {
      Problem = "site " + std::to_string(E.Site) +
                " is not a call instruction";
    }
  });
  return Problem;
}
