//===- profiling/ProfilerRegistry.h - Named profiler factory ----*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single place that knows which profilers exist and how each one
/// is configured. Every surface that used to carry its own
/// name-to-kind chain — the cbsvm driver, the experiment harness, the
/// differential-fuzz oracles, the benches — resolves profilers here
/// instead, so adding a profiler is one table entry, not a sweep over
/// every switch in the tree.
///
/// A descriptor configures vm::ProfilerOptions for its profiler,
/// including kind-specific policy: "exhaustive" disables the modelled
/// per-call counter charge (it is the free reference profile every
/// accuracy comparison scores against; the *charged* instrumented-VM
/// variant is an explicit ablation, opted into by flipping
/// ChargeExhaustiveCounters back on).
///
/// Header-only dependency on the vm layer: descriptors write plain
/// fields of vm::ProfilerOptions, so cbs_profiling needs no link
/// dependency on cbs_vm.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_PROFILERREGISTRY_H
#define CBSVM_PROFILING_PROFILERREGISTRY_H

#include "vm/VMConfig.h"

#include <string>
#include <string_view>
#include <vector>

namespace cbs::prof {

struct ProfilerDescriptor {
  /// The stable CLI/config name ("cbs", "timer", ...).
  const char *Name;
  vm::ProfilerKind Kind;
  /// One-line human description (--list-profilers).
  const char *Summary;
  /// True when the profiler is driven by the sampling machinery, i.e.
  /// the stride / samples-per-tick / sample-buffer knobs apply to it.
  bool Sampling;
  /// Applies the kind and its kind-specific defaults to \p Options.
  /// Never touches knobs shared across kinds (stride, shards, decay...):
  /// callers layer those on top.
  void (*Configure)(vm::ProfilerOptions &Options);
};

class ProfilerRegistry {
public:
  /// The process-wide table (immutable, construction is cheap).
  static const ProfilerRegistry &instance();

  /// Descriptor for \p Name, or nullptr when unknown.
  const ProfilerDescriptor *find(std::string_view Name) const;
  /// Descriptor for \p Kind (the reverse mapping; every kind has
  /// exactly one entry), or nullptr.
  const ProfilerDescriptor *find(vm::ProfilerKind Kind) const;

  /// All descriptors in stable presentation order.
  const std::vector<ProfilerDescriptor> &all() const { return Table; }

  /// Configures \p Options for profiler \p Name. Returns false (leaving
  /// \p Options untouched) when the name is unknown.
  bool configure(std::string_view Name, vm::ProfilerOptions &Options) const;

  /// "none, exhaustive, timer, cbs, patching" — for diagnostics.
  std::string names() const;

private:
  ProfilerRegistry();
  std::vector<ProfilerDescriptor> Table;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_PROFILERREGISTRY_H
