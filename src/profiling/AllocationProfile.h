//===- profiling/AllocationProfile.h - CBS beyond call graphs ----*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §8: "Although this paper focused on the use of the new mechanism for
/// collecting a dynamic call graph, the sampling technique is fairly
/// general. It could be applied any time it is desirable to use low
/// overhead timer-based sampling to collect frequency-based profile
/// data."
///
/// This is that generalization, concretely: a per-class allocation
/// histogram collected by running the same CounterBasedSampler state
/// machine over *allocation events* instead of invocation events (the
/// armed check overloads the allocator's existing heap-frontier test
/// the same way the call sampler overloads the method-entry check).
/// Clients: pretenuring decisions, per-class heap budgeting, allocation
/// site inlining.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_ALLOCATIONPROFILE_H
#define CBSVM_PROFILING_ALLOCATIONPROFILE_H

#include "bytecode/Ids.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cbs::bc {
class Program;
}

namespace cbs::prof {

/// A weighted per-class allocation histogram.
class AllocationProfile {
public:
  void addSample(bc::ClassId Class, uint64_t Count = 1);

  uint64_t weight(bc::ClassId Class) const {
    return Class < Weights.size() ? Weights[Class] : 0;
  }
  uint64_t totalWeight() const { return Total; }
  bool empty() const { return Total == 0; }

  /// Share of all sampled allocations attributed to \p Class.
  double fraction(bc::ClassId Class) const;

  /// Classes sorted by weight, heaviest first (zero-weight classes are
  /// omitted).
  std::vector<std::pair<bc::ClassId, uint64_t>> sorted() const;

  /// The overlap metric of §6.2 applied to histograms: sum over classes
  /// of min(percentage in *this, percentage in Other), in [0, 100].
  double overlapWith(const AllocationProfile &Other) const;

  /// Human-readable dump resolving class names via \p P.
  std::string str(const bc::Program &P, size_t MaxRows = 16) const;

private:
  std::vector<uint64_t> Weights;
  uint64_t Total = 0;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_ALLOCATIONPROFILE_H
