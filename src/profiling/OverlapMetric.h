//===- profiling/OverlapMetric.h - Profile accuracy metric ------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The overlap metric from §6.2 of the paper (also used by Arnold &
/// Ryder):
///
///   overlap(DCG1, DCG2) =
///     sum over edges e present in both graphs of
///       min(Weight(e, DCG1), Weight(e, DCG2))
///
/// where Weight(e, DCG) is e's *percentage* of DCG's total weight. The
/// result is in [0, 100]; 100 means identical normalized profiles. A
/// sampled profile's accuracy is its overlap with the exhaustive
/// profile.
///
/// Operates on DCGSnapshot: profiles are compared as immutable
/// point-in-time views, never against a live repository mid-update.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_OVERLAPMETRIC_H
#define CBSVM_PROFILING_OVERLAPMETRIC_H

#include "profiling/DCGSnapshot.h"

namespace cbs::prof {

/// Overlap percentage in [0, 100]. Two empty profiles overlap 100 (they
/// contain identical — vacuous — information); an empty vs non-empty
/// pair overlaps 0.
double overlap(const DCGSnapshot &A, const DCGSnapshot &B);

/// accuracy(sampled) = overlap(sampled, perfect).
double accuracy(const DCGSnapshot &Sampled, const DCGSnapshot &Perfect);

} // namespace cbs::prof

#endif // CBSVM_PROFILING_OVERLAPMETRIC_H
