//===- profiling/DynamicCallGraph.h - Weighted call graph -------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic call graph (DCG): call edges with observed weights. This
/// is both the profile repository that samplers update online and the
/// input the inline oracles consume. Weights are raw counts (samples or
/// exhaustive executions); the overlap metric and the oracles normalize
/// as needed.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_DYNAMICCALLGRAPH_H
#define CBSVM_PROFILING_DYNAMICCALLGRAPH_H

#include "profiling/CallEdge.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace cbs::bc {
class Program;
}

namespace cbs::prof {

class DynamicCallGraph {
public:
  /// Adds \p Count observations of \p Edge.
  void addSample(CallEdge Edge, uint64_t Count = 1);

  /// Raw weight of \p Edge (0 if absent).
  uint64_t weight(CallEdge Edge) const;

  /// Sum of all edge weights.
  uint64_t totalWeight() const { return Total; }

  /// Number of distinct edges observed.
  size_t numEdges() const { return Weights.size(); }

  bool empty() const { return Weights.empty(); }

  /// Edge weight as a fraction of the total (0 if the graph is empty).
  double fraction(CallEdge Edge) const;

  /// All edges at \p Site with their weights, heaviest first. This is
  /// the per-site receiver distribution the new inliner's 40% rule
  /// inspects.
  std::vector<std::pair<CallEdge, uint64_t>>
  siteDistribution(bc::SiteId Site) const;

  /// All edges sorted heaviest first.
  std::vector<std::pair<CallEdge, uint64_t>> sortedEdges() const;

  /// Merges \p Other into this graph. Self-merge is well-defined and
  /// doubles every weight in place.
  void merge(const DynamicCallGraph &Other);

  /// Exponentially decays every edge weight by \p Factor in (0, 1);
  /// edges whose weight rounds to zero are dropped. Jikes RVM's AOS
  /// periodically decays its sample data so the profile tracks *recent*
  /// behaviour — without decay, a long-lived profile is dominated by
  /// history and adapts slowly to phase changes. A factor outside
  /// (0, 1) is a fatal usage error, enforced in release builds too
  /// (>= 1 would grow the profile forever; <= 0 would wipe it).
  void decay(double Factor);

  /// Removes all edges and weights.
  void clear();

  /// Deterministic iteration for metrics: edges in sorted key order.
  template <typename Fn> void forEachEdge(Fn &&Callback) const {
    for (const auto &[Edge, Weight] : sortedEdges())
      Callback(Edge, Weight);
  }

  /// Human-readable dump resolving names through \p P, heaviest first,
  /// at most \p MaxEdges rows.
  std::string str(const bc::Program &P, size_t MaxEdges = 32) const;

private:
  std::unordered_map<CallEdge, uint64_t, CallEdgeHash> Weights;
  uint64_t Total = 0;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_DYNAMICCALLGRAPH_H
