//===- profiling/DynamicCallGraph.h - Concurrent profile repo ---*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic call graph (DCG): the live, write-side profile
/// repository. Call edges with observed weights, lock-striped across N
/// shards keyed by the CallEdge hash so concurrently flushing sample
/// buffers contend on different stripes instead of one global lock.
///
/// Ownership rules:
///  - Writers (samplers, SampleBuffer::flushInto, merge/decay/clear)
///    mutate through the shard locks; addBatch applies a whole batch
///    under all touched shard locks at once, so a batch is atomic with
///    respect to snapshots.
///  - Readers never touch the live map. The only read surface is
///    snapshot(): an immutable DCGSnapshot in canonical edge order,
///    cached per epoch so repeated snapshots of a quiescent repository
///    are O(1).
///
/// Weights are raw counts (samples or exhaustive executions) and sums
/// are commutative, so any interleaving of flushes — and any shard
/// count — materializes the same snapshot content. This is the same
/// determinism discipline the parallel experiment engine follows.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_DYNAMICCALLGRAPH_H
#define CBSVM_PROFILING_DYNAMICCALLGRAPH_H

#include "profiling/CallEdge.h"
#include "profiling/DCGSnapshot.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cbs::prof {

class DynamicCallGraph {
public:
  /// Shard counts are clamped to [1, MaxShards]; a batch's touched-set
  /// is tracked as a 64-bit mask.
  static constexpr unsigned MaxShards = 64;

  explicit DynamicCallGraph(unsigned NumShards = 1);

  /// Copying and moving require the source (and destination) to be
  /// quiescent — no concurrent writer or reader. They exist so tests
  /// and projections can build graphs by value, not for handing a live
  /// repository across threads.
  DynamicCallGraph(const DynamicCallGraph &Other);
  DynamicCallGraph &operator=(const DynamicCallGraph &Other);
  DynamicCallGraph(DynamicCallGraph &&Other) noexcept;
  DynamicCallGraph &operator=(DynamicCallGraph &&Other) noexcept;

  /// Adds \p Count observations of \p Edge. One shard lock acquisition;
  /// batch writers should prefer addBatch via SampleBuffer.
  void addSample(CallEdge Edge, uint64_t Count = 1);

  /// Adds one observation of every edge in [Edges, Edges + N). All
  /// touched shards are locked (in ascending index order) before any
  /// sample is applied, so the whole batch becomes visible to
  /// snapshot() atomically.
  void addBatch(const CallEdge *Edges, size_t N);

  /// Merges \p Other into this graph. Self-merge is well-defined and
  /// doubles every weight in place.
  void merge(const DynamicCallGraph &Other);

  /// Exponentially decays every edge weight by \p Factor in (0, 1);
  /// edges whose weight rounds to zero are dropped. Jikes RVM's AOS
  /// periodically decays its sample data so the profile tracks *recent*
  /// behaviour — without decay, a long-lived profile is dominated by
  /// history and adapts slowly to phase changes. A factor outside
  /// (0, 1) is a fatal usage error, enforced in release builds too
  /// (>= 1 would grow the profile forever; <= 0 would wipe it).
  void decay(double Factor);

  /// Removes all edges and weights.
  void clear();

  /// Sum of all edge weights. Exact when the repository is quiescent;
  /// under concurrent writers it sums shard totals one lock at a time
  /// and may straddle an in-flight batch.
  uint64_t totalWeight() const;

  /// Number of distinct edges observed (same caveat as totalWeight).
  size_t numEdges() const;

  bool empty() const { return numEdges() == 0; }

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }

  /// Times a writer or snapshot found a shard lock already held
  /// (try_lock failed and it had to block). Feeds the
  /// dcg.shard_contention metric.
  uint64_t contentionCount() const {
    return Contention.load(std::memory_order_relaxed);
  }

  /// Mutation counter: bumped once per addSample/addBatch/merge/decay/
  /// clear. Snapshots carry the epoch they were taken at.
  uint64_t epoch() const { return Epoch.load(std::memory_order_relaxed); }

  /// Materializes an immutable snapshot in canonical edge order. Takes
  /// every shard lock, so the snapshot is a consistent cut: it can
  /// never observe half of an addBatch. Cached per epoch — repeated
  /// snapshots of an unchanged repository return the same O(1) handle.
  DCGSnapshot snapshot() const;

private:
  struct Shard {
    std::mutex M;
    std::unordered_map<CallEdge, uint64_t, CallEdgeHash> Weights;
    uint64_t Total = 0;
  };

  Shard &shardFor(CallEdge Edge) const {
    return *Shards[CallEdgeHash()(Edge) & ShardMask];
  }

  /// Locks \p S, counting into Contention when the lock was held.
  void lockShard(Shard &S) const;
  void lockAll() const;
  void unlockAll() const;

  void bumpEpoch() { Epoch.fetch_add(1, std::memory_order_relaxed); }

  std::vector<std::unique_ptr<Shard>> Shards;
  size_t ShardMask = 0; ///< Shards.size() - 1 (size is a power of two)
  std::atomic<uint64_t> Epoch{0};
  mutable std::atomic<uint64_t> Contention{0};

  /// Epoch-keyed snapshot cache. Only read or written while all shard
  /// locks are held (snapshot() is the sole accessor), so no separate
  /// lock is needed.
  mutable DCGSnapshot Cache;
  mutable uint64_t CacheEpoch = ~uint64_t(0);
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_DYNAMICCALLGRAPH_H
