//===- profiling/ProfileRepository.cpp - cross-run profile store ---------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/ProfileRepository.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

using namespace cbs;
using namespace cbs::prof;

namespace fs = std::filesystem;

namespace {

std::string hexHash(uint64_t H) {
  std::ostringstream OS;
  OS << std::hex << std::setfill('0') << std::setw(16) << H;
  return OS.str();
}

} // namespace

ProfileRepository::ProfileRepository(std::string Dir) : Dir(std::move(Dir)) {}

std::string ProfileRepository::pathFor(const std::string &Workload) const {
  // The workload name becomes a file name; anything that could escape
  // the directory or upset a shell is flattened. The name is only the
  // lookup key — the entry's embedded hash is what actually gates use.
  std::string Safe;
  Safe.reserve(Workload.size());
  for (char C : Workload) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '-' || C == '_';
    Safe.push_back(Ok ? C : '_');
  }
  if (Safe.empty())
    Safe = "_";
  return Dir + "/" + Safe + ".dcg";
}

RepoLoadResult ProfileRepository::load(const RepoKey &Key) const {
  RepoLoadResult Result;
  std::string Path = pathFor(Key.Workload);

  std::error_code EC;
  if (!fs::exists(Path, EC) || EC)
    return Result; // plain miss

  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Result.Rejected = true;
    Result.Diagnostic = "cannot read repository entry " + Path;
    return Result;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  ProfileCodec::Decoded D = ProfileCodec::decode(Buf.str());
  if (!D.ok()) {
    Result.Rejected = true;
    Result.Diagnostic =
        "corrupt repository entry " + Path + ": " + D.Error;
    return Result;
  }
  if (D.Version < ProfileCodec::V2) {
    // A v1 profile decodes fine but carries no provenance: there is no
    // way to tell which program (or personality) it describes, and
    // seeding compilation from it would be exactly the silent-mismatch
    // bug the metadata exists to prevent.
    Result.Rejected = true;
    Result.Diagnostic = "repository entry " + Path +
                        " is v1 (no provenance metadata); ignoring";
    return Result;
  }
  if (D.Meta.ProgramHash != Key.ProgramHash) {
    Result.Rejected = true;
    Result.Diagnostic = "program hash mismatch for '" + Key.Workload +
                        "': repository " + hexHash(D.Meta.ProgramHash) +
                        ", current " + hexHash(Key.ProgramHash) +
                        "; profile ignored";
    return Result;
  }
  if (D.Meta.Personality != Key.Personality) {
    Result.Rejected = true;
    Result.Diagnostic = "personality mismatch for '" + Key.Workload +
                        "': repository '" + D.Meta.Personality +
                        "', current '" + Key.Personality +
                        "'; profile ignored";
    return Result;
  }
  Result.Entry = RepoEntry{std::move(*D.Graph), std::move(D.Meta)};
  return Result;
}

DCGSnapshot ProfileRepository::merge(const DCGSnapshot &Old,
                                     const DCGSnapshot &New) {
  // conf = 10000 * W / (W + pivot): a heavy run dominates, a tiny run
  // barely registers. Integer arithmetic throughout so the merged
  // profile is identical on every host.
  uint64_t W = New.totalWeight();
  uint64_t ConfBp = 10'000 * W / (W + ConfidencePivot);

  std::vector<DCGSnapshot::Edge> Merged;
  Old.forEachEdge([&](CallEdge E, uint64_t Weight) {
    uint64_t Decayed = Weight * AgeDecayBp / 10'000;
    uint64_t Fresh = New.weight(E) * ConfBp / 10'000;
    if (Decayed + Fresh > 0)
      Merged.emplace_back(E, Decayed + Fresh);
  });
  New.forEachEdge([&](CallEdge E, uint64_t Weight) {
    if (Old.weight(E) > 0)
      return; // already merged above
    uint64_t Fresh = Weight * ConfBp / 10'000;
    if (Fresh > 0)
      Merged.emplace_back(E, Fresh);
  });
  return DCGSnapshot::fromEdges(std::move(Merged));
}

RepoCommitResult ProfileRepository::commit(const RepoKey &Key,
                                           const DCGSnapshot &Run,
                                           uint64_t RunCycles) {
  RepoCommitResult Result;

  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    Result.Error = "cannot create repository directory " + Dir + ": " +
                   EC.message();
    return Result;
  }

  // A rejected entry (corrupt, v1, foreign program) is treated as
  // absent: committing over it upgrades the file to a valid v2 entry
  // for the *current* program.
  RepoLoadResult Existing = load(Key);

  ProfileMeta Meta;
  Meta.ProgramHash = Key.ProgramHash;
  Meta.Personality = Key.Personality;
  DCGSnapshot Merged =
      Existing.ok() ? merge(Existing.Entry->Graph, Run) : Run;
  Meta.Runs = Existing.ok() ? Existing.Entry->Meta.Runs + 1 : 1;
  Meta.Cycles =
      (Existing.ok() ? Existing.Entry->Meta.Cycles : 0) + RunCycles;

  std::string Path = pathFor(Key.Workload);
  // Unique-enough temp name per process; rename() below is atomic, so
  // concurrent runs are last-writer-wins and readers never see a torn
  // file.
  std::string Tmp =
      Path + ".tmp." +
      std::to_string(reinterpret_cast<uintptr_t>(&Result) ^ RunCycles);
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Result.Error = "cannot write repository entry " + Tmp;
      return Result;
    }
    Out << ProfileCodec::encode(Merged, Meta);
    if (!Out.good()) {
      Result.Error = "write failed for repository entry " + Tmp;
      return Result;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    Result.Error = "cannot rename " + Tmp + " to " + Path;
    return Result;
  }
  Result.Committed = true;
  Result.Runs = Meta.Runs;
  return Result;
}

void ProfileRepoOptionGroup::parse(support::ArgParser &Args) {
  Dir = Args.option("--profile-repo", "");
}
