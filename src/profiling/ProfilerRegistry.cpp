//===- profiling/ProfilerRegistry.cpp - Named profiler factory ---------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/ProfilerRegistry.h"

using namespace cbs;
using namespace cbs::prof;

ProfilerRegistry::ProfilerRegistry() {
  Table = {
      {"none", vm::ProfilerKind::None,
       "no DCG construction (the overhead baseline)",
       /*Sampling=*/false,
       [](vm::ProfilerOptions &O) { O.Kind = vm::ProfilerKind::None; }},
      {"exhaustive", vm::ProfilerKind::Exhaustive,
       "record every call edge, counters uncharged (the free reference "
       "profile)",
       /*Sampling=*/false,
       [](vm::ProfilerOptions &O) {
         O.Kind = vm::ProfilerKind::Exhaustive;
         // The reference profile is free by policy; the charged
         // instrumented-VM variant is an explicit ablation.
         O.ChargeExhaustiveCounters = false;
       }},
      {"timer", vm::ProfilerKind::Timer,
       "timer-based sampling, one sample per tick (the Jikes RVM base)",
       /*Sampling=*/true,
       [](vm::ProfilerOptions &O) { O.Kind = vm::ProfilerKind::Timer; }},
      {"cbs", vm::ProfilerKind::CBS,
       "counter-based sampling (the paper's technique)",
       /*Sampling=*/true,
       [](vm::ProfilerOptions &O) { O.Kind = vm::ProfilerKind::CBS; }},
      {"patching", vm::ProfilerKind::CodePatching,
       "code-patching prologue listeners (the IBM DK base)",
       /*Sampling=*/false,
       [](vm::ProfilerOptions &O) {
         O.Kind = vm::ProfilerKind::CodePatching;
       }},
  };
}

const ProfilerRegistry &ProfilerRegistry::instance() {
  static const ProfilerRegistry R;
  return R;
}

const ProfilerDescriptor *ProfilerRegistry::find(std::string_view Name) const {
  for (const ProfilerDescriptor &D : Table)
    if (Name == D.Name)
      return &D;
  return nullptr;
}

const ProfilerDescriptor *ProfilerRegistry::find(vm::ProfilerKind Kind) const {
  for (const ProfilerDescriptor &D : Table)
    if (Kind == D.Kind)
      return &D;
  return nullptr;
}

bool ProfilerRegistry::configure(std::string_view Name,
                                 vm::ProfilerOptions &Options) const {
  const ProfilerDescriptor *D = find(Name);
  if (!D)
    return false;
  D->Configure(Options);
  return true;
}

std::string ProfilerRegistry::names() const {
  std::string Out;
  for (const ProfilerDescriptor &D : Table) {
    if (!Out.empty())
      Out += ", ";
    Out += D.Name;
  }
  return Out;
}
