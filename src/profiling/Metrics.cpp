//===- profiling/Metrics.cpp - additional accuracy metrics ----------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/Metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

using namespace cbs;
using namespace cbs::prof;

namespace {

std::vector<DCGSnapshot::Edge> topEdges(const DCGSnapshot &DCG, size_t N) {
  auto Edges = DCG.sortedEdges();
  std::stable_sort(Edges.begin(), Edges.end(),
                   [](const auto &L, const auto &R) {
                     return L.second > R.second;
                   });
  if (Edges.size() > N)
    Edges.resize(N);
  return Edges;
}

} // namespace

double prof::hotEdgeCoverage(const DCGSnapshot &Sampled,
                             const DCGSnapshot &Perfect, size_t N) {
  auto Hot = topEdges(Perfect, N);
  if (Hot.empty())
    return 1.0;
  size_t Found = 0;
  for (const auto &[Edge, Weight] : Hot)
    if (Sampled.weight(Edge) > 0)
      ++Found;
  return static_cast<double>(Found) / static_cast<double>(Hot.size());
}

double prof::hotOrderAgreement(const DCGSnapshot &Sampled,
                               const DCGSnapshot &Perfect, size_t N) {
  auto Hot = topEdges(Perfect, N);
  double Score = 0;
  size_t Pairs = 0;
  for (size_t I = 0; I != Hot.size(); ++I)
    for (size_t J = I + 1; J != Hot.size(); ++J) {
      if (Hot[I].second == Hot[J].second)
        continue; // True tie: no order to agree with.
      ++Pairs;
      uint64_t SI = Sampled.weight(Hot[I].first);
      uint64_t SJ = Sampled.weight(Hot[J].first);
      // Hot is sorted descending, so truth says I > J.
      if (SI > SJ)
        Score += 1.0;
      else if (SI == SJ)
        Score += 0.5;
    }
  if (Pairs == 0)
    return 1.0;
  return Score / static_cast<double>(Pairs);
}

double prof::siteDistributionError(const DCGSnapshot &Sampled,
                                   const DCGSnapshot &Perfect) {
  std::set<bc::SiteId> Sites;
  Perfect.forEachEdge(
      [&](CallEdge E, uint64_t) { Sites.insert(E.Site); });
  if (Sites.empty())
    return 0.0;

  double TotalError = 0;
  for (bc::SiteId Site : Sites) {
    auto PerfectDist = Perfect.siteDistribution(Site);
    auto SampledDist = Sampled.siteDistribution(Site);
    uint64_t PerfectTotal = 0, SampledTotal = 0;
    for (const auto &[E, W] : PerfectDist)
      PerfectTotal += W;
    for (const auto &[E, W] : SampledDist)
      SampledTotal += W;
    if (SampledTotal == 0) {
      TotalError += 2.0; // Site never sampled: maximal distance.
      continue;
    }
    std::map<CallEdge, double> Delta;
    for (const auto &[E, W] : PerfectDist)
      Delta[E] += static_cast<double>(W) / PerfectTotal;
    for (const auto &[E, W] : SampledDist)
      Delta[E] -= static_cast<double>(W) / SampledTotal;
    double L1 = 0;
    for (const auto &[E, D] : Delta)
      L1 += std::abs(D);
    TotalError += L1;
  }
  return TotalError / static_cast<double>(Sites.size());
}
