//===- profiling/CodePatchingProfiler.cpp - Suganuma baseline -------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/CodePatchingProfiler.h"

#include <cassert>
#include <cmath>

using namespace cbs;
using namespace cbs::prof;

void CodePatchingProfiler::onMethodPromoted(bc::MethodId Method,
                                            uint64_t NowCycles) {
  assert(Method < States.size() && "unknown method");
  if (States[Method] != State::Unpromoted)
    return;
  States[Method] = State::Listening;
  PerMethod[Method].InstallCycles = NowCycles;
  PerMethod[Method].Remaining = Params.SamplesPerMethod;
  ++Instrumented;
}

void CodePatchingProfiler::onListenedEntry(bc::MethodId Method, CallEdge Edge,
                                           uint64_t NowCycles,
                                           DynamicCallGraph &Repo) {
  assert(isListening(Method) && "entry into a method without a listener");
  ++ListenerRuns;
  MethodState &MS = PerMethod[Method];
  bool Found = false;
  for (auto &[E, Count] : MS.Edges)
    if (E == Edge) {
      ++Count;
      Found = true;
      break;
    }
  if (!Found)
    MS.Edges.emplace_back(Edge, 1);

  if (--MS.Remaining == 0)
    flushMethod(Method, NowCycles, Repo);
}

void CodePatchingProfiler::flushMethod(bc::MethodId Method,
                                       uint64_t NowCycles,
                                       DynamicCallGraph &Repo) {
  MethodState &MS = PerMethod[Method];
  States[Method] = State::Done;

  uint32_t Collected = 0;
  for (const auto &[E, Count] : MS.Edges)
    Collected += Count;
  if (Collected == 0)
    return;

  // Frequency correction: the listening window collected `Collected`
  // entries over `Elapsed` cycles, i.e. the method executes at
  // Collected / Elapsed entries per cycle. Scale edge weights so that
  // methods instrumented over short windows (hot methods) weigh more
  // than methods that needed a long window to fill their quota.
  uint64_t Elapsed = NowCycles > MS.InstallCycles
                         ? NowCycles - MS.InstallCycles
                         : 1;
  double RatePerKCycle =
      1000.0 * static_cast<double>(Collected) / static_cast<double>(Elapsed);
  for (const auto &[E, Count] : MS.Edges) {
    double Weight = static_cast<double>(Count) * RatePerKCycle;
    uint64_t Rounded = static_cast<uint64_t>(std::llround(Weight));
    Repo.addSample(E, Rounded == 0 ? 1 : Rounded);
  }
  MS.Edges.clear();
}

void CodePatchingProfiler::flushIncomplete(uint64_t NowCycles,
                                           DynamicCallGraph &Repo) {
  for (bc::MethodId M = 0, E = static_cast<bc::MethodId>(States.size());
       M != E; ++M)
    if (States[M] == State::Listening)
      flushMethod(M, NowCycles, Repo);
}
