//===- profiling/ProfileCodec.h - versioned profile codec -------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned text codec for dynamic call graph profiles. This is
/// the single serialization surface: the cbsvm driver, the experiment
/// harness, the fuzz roundtrip oracle, and the on-disk
/// ProfileRepository all encode and decode through it, so a format
/// change is one version bump here instead of a divergent set of
/// ad-hoc parsers.
///
/// Two formats share the `cbsvm-dcg <version>` magic header:
///
///   v1 — the bare edge list (byte-identical to the original
///        serializeDCG output, so golden fixtures and byte-equality
///        oracles carry over unchanged):
///
///          cbsvm-dcg 1
///          # edges: N, total weight: W
///          <site> <callee> <weight>
///
///   v2 — v1 plus run provenance metadata, one `!key value` line per
///        field, emitted between the header and the edge comment:
///
///          cbsvm-dcg 2
///          !program 00000000075bcd15
///          !personality jikes
///          !runs 3
///          !cycles 123456
///          # edges: N, total weight: W
///          <site> <callee> <weight>
///
/// The metadata is what makes a profile safe to reuse across runs: the
/// program content hash and profiler personality let a loader reject a
/// profile collected from a different program (or a differently-shaped
/// profiler) instead of silently seeding optimization with it, and the
/// run counter / cycle total carry the repository's merge history.
///
/// decode() reads both versions; unknown versions are rejected with the
/// exact diagnostic "unsupported version N (supported: 1, 2)". v1 input
/// decodes with default (empty) metadata. Edges are emitted in the
/// snapshot's canonical order, so equal profiles with equal metadata
/// encode byte-identically — the property every determinism check
/// (jobs 1-vs-8 cmp, fuzz oracles) rests on.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_PROFILECODEC_H
#define CBSVM_PROFILING_PROFILECODEC_H

#include "profiling/DCGSnapshot.h"

#include <cstdint>
#include <optional>
#include <string>

namespace cbs::prof {

/// Run provenance carried by v2 profiles: which program (content hash)
/// and profiler personality the edges were collected under, and how
/// much history a merged repository entry embodies.
struct ProfileMeta {
  /// bc::Program::contentHash() of the program the profile describes.
  uint64_t ProgramHash = 0;
  /// VM personality name ("jikes" / "j9"). Edge semantics differ per
  /// personality, so profiles do not transfer between them.
  std::string Personality;
  /// Number of runs merged into this profile (1 for a single run).
  uint64_t Runs = 0;
  /// Total virtual cycles across the merged runs.
  uint64_t Cycles = 0;
};

class ProfileCodec {
public:
  static constexpr const char *Magic = "cbsvm-dcg";
  static constexpr int V1 = 1;
  static constexpr int V2 = 2;
  static constexpr int CurrentVersion = V2;

  /// Decode result: the version read, the snapshot, the metadata (v2
  /// only; defaults for v1), or an error description.
  struct Decoded {
    int Version = 0;
    std::optional<DCGSnapshot> Graph;
    ProfileMeta Meta;
    std::string Error;

    bool ok() const { return Graph.has_value(); }
  };

  /// Encodes \p DCG as v1 (no metadata) — byte-identical to the legacy
  /// serializeDCG output for the same snapshot.
  static std::string encode(const DCGSnapshot &DCG);

  /// Encodes \p DCG as v2 with \p Meta.
  static std::string encode(const DCGSnapshot &DCG, const ProfileMeta &Meta);

  /// Parses either version. Malformed lines, out-of-range ids,
  /// duplicate edges, duplicate or unknown metadata keys, and unknown
  /// versions are errors; `!` metadata lines in a v1 body are malformed
  /// edges (v1 predates them).
  static Decoded decode(const std::string &Text);
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_PROFILECODEC_H
