//===- profiling/QualityMonitor.cpp - Online DCG convergence -----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/QualityMonitor.h"

#include "profiling/OverlapMetric.h"
#include "support/Json.h"

#include <algorithm>
#include <cmath>

using namespace cbs;
using namespace cbs::prof;

namespace {

uint64_t pctToBp(double Pct) {
  return static_cast<uint64_t>(Pct * 100.0 + 0.5);
}

} // namespace

ProfileQualityMonitor::ProfileQualityMonitor(QualityMonitorParams Params,
                                             tel::MetricRegistry &R)
    : Params(Params), Windows(R.counter("dcg.quality.windows")),
      PhaseShiftCount(R.counter("dcg.quality.phase_shifts")),
      OverlapBp(R.gauge("dcg.quality.overlap_bp")),
      HotNewGauge(R.gauge("dcg.quality.hot_new")),
      HotVanishedGauge(R.gauge("dcg.quality.hot_vanished")),
      EdgesGauge(R.gauge("dcg.quality.edges")),
      WeightGauge(R.gauge("dcg.quality.total_weight")),
      ConfidenceBp(R.gauge("dcg.quality.mean_confidence_bp")),
      OverlapHist(R.histogram("dcg.quality.overlap_pct")),
      ConfidenceHist(R.histogram("dcg.quality.edge_confidence_pct")) {
  // The very first window has no predecessor; seed the gauge at the
  // vacuous 100% so a pre-first-window read does not look like a
  // collapse.
  OverlapBp = pctToBp(100.0);
}

double ProfileQualityMonitor::edgeConfidencePct(uint64_t Weight) {
  if (Weight == 0)
    return 0.0;
  double C = 100.0 * (1.0 - 1.0 / std::sqrt(static_cast<double>(Weight)));
  return C < 0.0 ? 0.0 : C;
}

std::vector<CallEdge> ProfileQualityMonitor::hotSet(
    const DCGSnapshot &S) const {
  std::vector<DCGSnapshot::Edge> Edges = S.sortedEdges();
  std::stable_sort(Edges.begin(), Edges.end(),
                   [](const DCGSnapshot::Edge &L, const DCGSnapshot::Edge &R) {
                     return L.second > R.second;
                   });
  if (Edges.size() > Params.HotEdges)
    Edges.resize(Params.HotEdges);
  std::vector<CallEdge> Hot;
  Hot.reserve(Edges.size());
  for (const auto &[E, W] : Edges)
    Hot.push_back(E);
  std::sort(Hot.begin(), Hot.end());
  return Hot;
}

const QualityWindow &ProfileQualityMonitor::onWindow(const DCGSnapshot &Snap,
                                                     uint64_t Tick,
                                                     uint64_t Cycles) {
  QualityWindow W;
  W.Index = History.size() + 1;
  W.Tick = Tick;
  W.Cycles = Cycles;
  W.Edges = Snap.numEdges();
  W.TotalWeight = Snap.totalWeight();

  std::vector<CallEdge> Hot = hotSet(Snap);
  if (HavePrev) {
    W.OverlapPct = overlap(Prev, Snap);
    // Churn = symmetric difference of the hot sets (both sorted by key).
    for (CallEdge E : Hot)
      if (!std::binary_search(PrevHot.begin(), PrevHot.end(), E))
        ++W.HotNew;
    for (CallEdge E : PrevHot)
      if (!std::binary_search(Hot.begin(), Hot.end(), E))
        ++W.HotVanished;
    // A profile that is still filling in (or was decayed to nothing)
    // is *immature*, not shifted: only flag windows where both sides
    // held real data and the weight moved off the old edges.
    W.PhaseShift = !Prev.empty() && !Snap.empty() &&
                   W.OverlapPct < Params.PhaseShiftOverlapPct;
  }

  double ConfidenceSum = 0.0;
  Snap.forEachEdge([&](CallEdge, uint64_t Weight) {
    double C = edgeConfidencePct(Weight);
    ConfidenceSum += C;
    ConfidenceHist.record(static_cast<uint64_t>(C + 0.5));
  });
  if (W.Edges != 0)
    W.MeanConfidencePct = ConfidenceSum / static_cast<double>(W.Edges);

  ++Windows;
  if (W.PhaseShift) {
    ++PhaseShifts;
    ++PhaseShiftCount;
  }
  OverlapBp = pctToBp(W.OverlapPct);
  HotNewGauge = W.HotNew;
  HotVanishedGauge = W.HotVanished;
  EdgesGauge = W.Edges;
  WeightGauge = W.TotalWeight;
  ConfidenceBp = pctToBp(W.MeanConfidencePct);
  OverlapHist.record(static_cast<uint64_t>(W.OverlapPct + 0.5));

  Prev = Snap;
  PrevHot = std::move(Hot);
  HavePrev = true;
  History.push_back(W);
  return History.back();
}

void ProfileQualityMonitor::writeJson(json::JsonWriter &W) const {
  W.beginObject();
  W.key("everyTicks");
  W.value(static_cast<uint64_t>(Params.EveryTicks));
  W.key("phaseThresholdPct");
  W.value(Params.PhaseShiftOverlapPct);
  W.key("hotEdges");
  W.value(static_cast<uint64_t>(Params.HotEdges));
  W.key("phaseShifts");
  W.value(PhaseShifts);
  W.key("windows");
  W.beginArray();
  for (const QualityWindow &Win : History) {
    W.beginObject();
    W.key("window");
    W.value(Win.Index);
    W.key("tick");
    W.value(Win.Tick);
    W.key("cycles");
    W.value(Win.Cycles);
    W.key("edges");
    W.value(static_cast<uint64_t>(Win.Edges));
    W.key("weight");
    W.value(Win.TotalWeight);
    W.key("overlapPct");
    W.value(Win.OverlapPct);
    W.key("hotNew");
    W.value(static_cast<uint64_t>(Win.HotNew));
    W.key("hotVanished");
    W.value(static_cast<uint64_t>(Win.HotVanished));
    W.key("meanConfidencePct");
    W.value(Win.MeanConfidencePct);
    W.key("phaseShift");
    W.value(Win.PhaseShift);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}
