//===- profiling/CounterBasedSampler.h - The paper's CBS --------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counter-based sampling (CBS): the paper's primary contribution
/// (§4, Figures 2 and 3). A timer interrupt arms a profiling window;
/// while armed, every STRIDE-th invocation event is sampled until
/// SAMPLES_PER_TIMER_INTERRUPT samples have been taken, then the window
/// disarms until the next tick.
///
/// This class is the pure per-thread state machine — exactly the
/// pseudocode of Figure 3 — with no VM dependencies, so its sampling
/// positions are unit-testable instruction by instruction. The VM maps
/// its events onto it: prologue/epilogue yieldpoints in the Jikes RVM
/// personality, method-entry checks in the J9 personality.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_COUNTERBASEDSAMPLER_H
#define CBSVM_PROFILING_COUNTERBASEDSAMPLER_H

#include "support/Random.h"

#include <cassert>
#include <cstdint>

namespace cbs::prof {

/// How the initial value of skippedInvocations is chosen when a window
/// opens (§4: "the timer mechanism can select the initial value ... via
/// either a pseudo-random number generator or a round-robin approach").
enum class SkipPolicy : uint8_t {
  Fixed,      ///< always STRIDE (the naive choice; biased — see ablation)
  RoundRobin, ///< cycles 1, 2, ..., STRIDE, 1, ...
  Random,     ///< uniform in [1, STRIDE]
};

struct CBSParams {
  /// The sampling stride i: every i-th call in the window is sampled.
  uint32_t Stride = 1;
  /// N: samples taken per timer interrupt.
  uint32_t SamplesPerTick = 1;
  SkipPolicy Skip = SkipPolicy::Random;
};

class CounterBasedSampler {
public:
  explicit CounterBasedSampler(CBSParams Params = {}) : Params(Params) {
    assert(Params.Stride >= 1 && "stride must be at least 1");
    assert(Params.SamplesPerTick >= 1 && "need at least one sample");
  }

  const CBSParams &params() const { return Params; }

  /// The timer interrupt: opens (re-opens) the profiling window. Matches
  /// the paper's `profilingEnabledByTimer = true` plus initial-skip
  /// selection. \p RNG is consulted only under SkipPolicy::Random.
  void onTimerTick(RandomEngine &RNG);

  /// True while the window is armed (profilingEnabledByTimer).
  bool armed() const { return Armed; }

  /// An invocation event while armed. Returns true if this event must be
  /// sampled (the caller then walks the stack and records the edge).
  /// Implements the countdown of Figure 3, including self-disarm after
  /// the last sample. Must only be called while armed().
  bool onInvocationEvent();

  /// Total samples signalled since construction.
  uint64_t samplesTaken() const { return SamplesTaken; }
  /// Total armed invocation events observed (sampled or skipped);
  /// the quantity the overhead model charges counter updates for.
  uint64_t armedEvents() const { return ArmedEvents; }
  /// Number of timer ticks that found the previous window still open
  /// (low call rate relative to Stride * SamplesPerTick).
  uint64_t overlappingWindows() const { return OverlappingWindows; }

private:
  uint32_t pickInitialSkip(RandomEngine &RNG);

  CBSParams Params;
  bool Armed = false;
  uint32_t SkippedInvocations = 0;
  uint32_t SamplesThisTick = 0;
  uint32_t RoundRobinNext = 1;
  uint64_t SamplesTaken = 0;
  uint64_t ArmedEvents = 0;
  uint64_t OverlappingWindows = 0;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_COUNTERBASEDSAMPLER_H
