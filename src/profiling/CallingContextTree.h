//===- profiling/CallingContextTree.h - Context-sensitive DCG ---*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A calling context tree (Ammons/Ball/Larus; used by Whaley's sampler,
/// paper §3.3). The paper claims CBS "is easily extensible to
/// context-sensitive profiling" (§1): instead of recording only the top
/// caller→callee pair per sample, the full walked stack is inserted as a
/// root-to-leaf path. The tree can be projected back onto a
/// context-insensitive DCG, which tests use to show the extension loses
/// no information.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_CALLINGCONTEXTTREE_H
#define CBSVM_PROFILING_CALLINGCONTEXTTREE_H

#include "profiling/DynamicCallGraph.h"

#include <string>
#include <vector>

namespace cbs::prof {

/// One stack entry of a sample path: the call site in the caller and
/// the method it entered.
struct PathStep {
  bc::SiteId Site = bc::InvalidSiteId;
  bc::MethodId Method = bc::InvalidMethodId;
};

class CallingContextTree {
public:
  CallingContextTree() { Nodes.push_back({}); } // Root (synthetic).

  /// Inserts one sampled stack, outermost frame first. Increments the
  /// weight of the leaf node (the sampled execution context). The first
  /// step's Site may be InvalidSiteId (thread entry method).
  void addPath(const std::vector<PathStep> &Path, uint64_t Count = 1);

  /// Number of nodes excluding the synthetic root.
  size_t numNodes() const { return Nodes.size() - 1; }

  /// Total sample weight.
  uint64_t totalWeight() const { return Total; }

  /// Maximum depth over all nodes (root = 0).
  size_t maxDepth() const;

  /// Projects the tree onto a context-insensitive profile snapshot:
  /// each tree edge (site, callee) contributes the subtree-leaf weights
  /// that passed through it... more precisely, each sampled path
  /// contributes its leaf edge once, matching what the
  /// context-insensitive sampler would have recorded for the same
  /// sample.
  DCGSnapshot projectLeafEdges() const;

  /// Projects *every* edge of every sampled path (a calling-context
  /// tree built from full stack walks contains strictly more
  /// information than leaf edges; this recovers the "edges seen on any
  /// sampled stack" view, weighted by traversal counts).
  DCGSnapshot projectAllEdges() const;

  /// Human-readable dump (depth-first), at most \p MaxNodes rows.
  std::string str(const bc::Program &P, size_t MaxNodes = 64) const;

private:
  struct Node {
    PathStep Step;
    uint64_t LeafWeight = 0;    ///< samples whose stack ends here
    uint64_t TraverseWeight = 0; ///< samples whose stack passes through
    uint32_t Parent = 0;
    std::vector<uint32_t> Children;
  };

  uint32_t findOrAddChild(uint32_t Parent, PathStep Step);

  std::vector<Node> Nodes;
  uint64_t Total = 0;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_CALLINGCONTEXTTREE_H
