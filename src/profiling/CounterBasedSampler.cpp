//===- profiling/CounterBasedSampler.cpp - The paper's CBS ----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/CounterBasedSampler.h"

using namespace cbs;
using namespace cbs::prof;

uint32_t CounterBasedSampler::pickInitialSkip(RandomEngine &RNG) {
  switch (Params.Skip) {
  case SkipPolicy::Fixed:
    return Params.Stride;
  case SkipPolicy::RoundRobin: {
    uint32_t Skip = RoundRobinNext;
    RoundRobinNext = RoundRobinNext % Params.Stride + 1;
    return Skip;
  }
  case SkipPolicy::Random:
    return static_cast<uint32_t>(RNG.nextBelow(Params.Stride)) + 1;
  }
  return Params.Stride;
}

void CounterBasedSampler::onTimerTick(RandomEngine &RNG) {
  if (Armed) {
    // The previous window has not collected all its samples yet; the
    // paper's mechanism simply leaves the flag set. Count it so
    // experiments can report saturation.
    ++OverlappingWindows;
    return;
  }
  Armed = true;
  SkippedInvocations = pickInitialSkip(RNG);
  SamplesThisTick = Params.SamplesPerTick;
}

bool CounterBasedSampler::onInvocationEvent() {
  assert(Armed && "invocation event delivered to a disarmed sampler");
  ++ArmedEvents;
  // Figure 3: skippedInvocations--; if zero, sample and reset.
  if (--SkippedInvocations != 0)
    return false;
  SkippedInvocations = Params.Stride;
  ++SamplesTaken;
  if (--SamplesThisTick == 0) {
    Armed = false; // profilingEnabledByTimer = FALSE
    SamplesThisTick = Params.SamplesPerTick;
  }
  return true;
}
