//===- profiling/ProfileRepository.h - cross-run profile store --*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent cross-run profile repository: one directory holding
/// one v2 profile (ProfileCodec) per workload, keyed by
/// (workload name, program content hash, profiler personality). A run
/// loads its entry at startup to warm-start the adaptive system, and
/// commits its own snapshot at VM shutdown, merging it into the stored
/// history.
///
/// The paper collects its profiles *within* a run; persisting them is
/// the classic next exploitation step (profile-guided optimization
/// across process lifetimes): the second run of a workload should not
/// have to re-learn the same hot edges from scratch.
///
/// Safety model — a profile is advice, never trusted blindly:
///
///  - The file name is only the lookup key. The entry's embedded
///    program hash and personality must match the current run exactly;
///    any mismatch (or a corrupt/truncated/v1 file) is a clean
///    skip-with-diagnostic, counted by the caller's repo.rejected
///    gauge, never a crash or a silent seed.
///  - A loaded profile only *schedules* compilations earlier. Stale
///    advice produces code the existing staleness policing
///    (deoptimization guards, quality-monitor phase shifts, OSR)
///    already corrects.
///
/// Merge policy (all integer arithmetic, pinned by
/// ProfileRepositoryTest): when a run commits over an existing entry,
///
///   merged(e) = old(e) * AgeDecayBp/10000 + new(e) * conf/10000
///   conf      = 10000 * W / (W + ConfidencePivot)
///
/// where W is the new run's total profile weight. Old evidence decays
/// geometrically (a phase the program left eventually vanishes), and a
/// short low-weight run contributes proportionally little (its sampled
/// profile is noisy). Zero-rounded edges drop out. The first commit
/// stores the run verbatim.
///
/// Commits write to a temp file and rename() into place, so concurrent
/// runs of the same workload are last-writer-wins, never torn.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_PROFILEREPOSITORY_H
#define CBSVM_PROFILING_PROFILEREPOSITORY_H

#include "profiling/ProfileCodec.h"
#include "support/ArgParser.h"

#include <cstdint>
#include <optional>
#include <string>

namespace cbs::prof {

/// What a run looks up (and stamps) its repository entry with.
struct RepoKey {
  std::string Workload;
  uint64_t ProgramHash = 0;
  std::string Personality;
};

/// A usable repository entry: the merged profile and its provenance.
struct RepoEntry {
  DCGSnapshot Graph;
  ProfileMeta Meta;
};

struct RepoLoadResult {
  std::optional<RepoEntry> Entry;
  /// True when a file existed but was unusable (corrupt, wrong version,
  /// hash/personality mismatch). False for a plain miss.
  bool Rejected = false;
  /// Why the entry was rejected (empty on success and on a plain miss).
  std::string Diagnostic;

  bool ok() const { return Entry.has_value(); }
};

struct RepoCommitResult {
  bool Committed = false;
  /// Run counter stored with the merged entry.
  uint64_t Runs = 0;
  std::string Error;
};

class ProfileRepository {
public:
  /// Geometric decay applied to the stored profile per commit (basis
  /// points of 10000). 5000 = half-life of one run.
  static constexpr uint64_t AgeDecayBp = 5'000;
  /// Weight at which a new run earns half confidence: a run with total
  /// profile weight W contributes scaled by W / (W + ConfidencePivot).
  static constexpr uint64_t ConfidencePivot = 1'024;

  /// \p Dir is created (recursively) on the first commit; load from a
  /// missing directory is a plain miss.
  explicit ProfileRepository(std::string Dir);

  const std::string &dir() const { return Dir; }

  /// Filesystem path of \p Workload's entry ("<dir>/<sanitized>.dcg").
  std::string pathFor(const std::string &Workload) const;

  /// Loads the entry for \p Key. Missing file: plain miss. Unusable or
  /// mismatched file: Rejected with a diagnostic — never an exception,
  /// never a silently-seeded profile.
  RepoLoadResult load(const RepoKey &Key) const;

  /// Merges \p Run into the stored entry (or stores it verbatim when
  /// no usable entry exists — a rejected entry is overwritten) and
  /// atomically replaces the file. \p RunCycles is the run's virtual
  /// cycle count, accumulated into the entry's history.
  RepoCommitResult commit(const RepoKey &Key, const DCGSnapshot &Run,
                          uint64_t RunCycles);

  /// The pinned merge (see file comment). Exposed so tests can pin the
  /// math without going through the filesystem.
  static DCGSnapshot merge(const DCGSnapshot &Old, const DCGSnapshot &New);

private:
  std::string Dir;
};

/// The one declaration of --profile-repo: every cbsvm subcommand that
/// supports the repository registers this group instead of re-wiring
/// the option.
class ProfileRepoOptionGroup : public support::OptionGroup {
public:
  /// Repository directory; empty when --profile-repo was not given.
  std::string Dir;

  bool enabled() const { return !Dir.empty(); }

  const char *name() const override { return "profile-repo"; }
  void parse(support::ArgParser &Args) override;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_PROFILEREPOSITORY_H
