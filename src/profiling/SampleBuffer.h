//===- profiling/SampleBuffer.h - Listener/organizer decoupling -*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Jikes RVM implementation registers *listeners* that
/// capture raw samples and *organizers* that later process them into the
/// profile repository (§5.1: "the organizers that process the raw
/// profile data were unchanged: they simply process samples without
/// needing to know if the samples came from a listener that was
/// responding to time-based or counter-based events"). This buffer
/// reproduces that decoupling: the VM's sampling hook appends edges
/// cheaply (no lock, no map probe); the organizer flushes them into the
/// DynamicCallGraph as one batch — one set of shard lock acquisitions
/// per Capacity samples, not per sample.
///
/// Each VM thread owns one buffer. A buffer is strictly bounded: once
/// full, further appends are *dropped and counted* (droppedCount feeds
/// the dcg.dropped_samples metric) rather than growing the buffer or
/// vanishing silently. An owner that flushes whenever append() returns
/// true never drops. Capacity must be at least 1: a zero-capacity
/// buffer would drop every sample while telling its owner to
/// busy-flush an always-empty buffer, so it is a fatal configuration
/// error rather than a silent profile sink.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_SAMPLEBUFFER_H
#define CBSVM_PROFILING_SAMPLEBUFFER_H

#include "profiling/DynamicCallGraph.h"
#include "support/ErrorHandling.h"

#include <vector>

namespace cbs::prof {

class SampleBuffer {
public:
  explicit SampleBuffer(size_t Capacity = 256) : Capacity(Capacity) {
    if (Capacity == 0)
      reportFatalError("SampleBuffer capacity must be at least 1");
    Pending.reserve(Capacity);
  }

  /// Appends one raw sample; returns true if the buffer is now full and
  /// the owner should call flushInto (the organizer step). An append
  /// into an already-full buffer drops the sample, counts it, and still
  /// returns true.
  bool append(CallEdge Edge) {
    if (Pending.size() >= Capacity) {
      ++Dropped;
      return true;
    }
    Pending.push_back(Edge);
    return Pending.size() >= Capacity;
  }

  /// Organizer: folds all pending samples into \p Repo as one atomic
  /// batch and clears. A no-op (not counted as a flush) when empty.
  void flushInto(DynamicCallGraph &Repo) {
    if (Pending.empty())
      return;
    Repo.addBatch(Pending.data(), Pending.size());
    Pending.clear();
    ++Flushes;
  }

  size_t capacity() const { return Capacity; }
  size_t pendingCount() const { return Pending.size(); }

  /// Number of non-empty flushes performed.
  uint64_t flushCount() const { return Flushes; }

  /// Samples rejected because the buffer was full. These are lost
  /// profile data; the VM surfaces them as dcg.dropped_samples.
  uint64_t droppedCount() const { return Dropped; }

  /// Drops since the previous call (droppedCount stays cumulative).
  /// The VM folds the delta into its dcg.dropped_samples counter at
  /// each flush point.
  uint64_t takeDroppedDelta() {
    uint64_t Delta = Dropped - DroppedReported;
    DroppedReported = Dropped;
    return Delta;
  }

private:
  size_t Capacity;
  std::vector<CallEdge> Pending;
  uint64_t Flushes = 0;
  uint64_t Dropped = 0;
  uint64_t DroppedReported = 0;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_SAMPLEBUFFER_H
