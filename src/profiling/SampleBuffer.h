//===- profiling/SampleBuffer.h - Listener/organizer decoupling -*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Jikes RVM implementation registers *listeners* that
/// capture raw samples and *organizers* that later process them into the
/// profile repository (§5.1: "the organizers that process the raw
/// profile data were unchanged: they simply process samples without
/// needing to know if the samples came from a listener that was
/// responding to time-based or counter-based events"). This buffer
/// reproduces that decoupling: the VM's sampling hook appends edges
/// cheaply; the organizer drains them into the DynamicCallGraph when the
/// buffer fills or at snapshot points.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_SAMPLEBUFFER_H
#define CBSVM_PROFILING_SAMPLEBUFFER_H

#include "profiling/DynamicCallGraph.h"

#include <vector>

namespace cbs::prof {

class SampleBuffer {
public:
  explicit SampleBuffer(size_t Capacity = 256) : Capacity(Capacity) {
    Pending.reserve(Capacity);
  }

  /// Appends one raw sample; returns true if the buffer is now full and
  /// the owner should call drainInto (the organizer step).
  bool append(CallEdge Edge) {
    Pending.push_back(Edge);
    return Pending.size() >= Capacity;
  }

  /// Organizer: folds all pending samples into \p Repo and clears.
  void drainInto(DynamicCallGraph &Repo) {
    for (CallEdge Edge : Pending)
      Repo.addSample(Edge);
    Pending.clear();
    ++Drains;
  }

  size_t pendingCount() const { return Pending.size(); }
  uint64_t drainCount() const { return Drains; }

private:
  size_t Capacity;
  std::vector<CallEdge> Pending;
  uint64_t Drains = 0;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_SAMPLEBUFFER_H
