//===- profiling/DCGSnapshot.h - Immutable DCG view -------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An immutable, order-canonicalized view of a DynamicCallGraph at a
/// point in time. The live repository is a concurrent, sharded
/// structure that samplers mutate while the program runs; every
/// consumer (inline oracles, the overlap metric, serialization, bench
/// tables) reads through a snapshot instead, so readers never observe
/// torn mid-update state and two snapshots with equal content compare
/// and serialize byte-identically regardless of shard count or flush
/// interleaving.
///
/// A snapshot is a shared_ptr to const data: copying one is O(1) and
/// a snapshot stays valid after the live graph mutates, decays, or is
/// destroyed. Edges are held sorted in canonical key order
/// (CallEdge::operator<).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_PROFILING_DCGSNAPSHOT_H
#define CBSVM_PROFILING_DCGSNAPSHOT_H

#include "profiling/CallEdge.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cbs::bc {
class Program;
}

namespace cbs::prof {

class DynamicCallGraph;

class DCGSnapshot {
public:
  using Edge = std::pair<CallEdge, uint64_t>;

  /// An empty snapshot (epoch 0). What a freshly constructed repository
  /// would materialize.
  DCGSnapshot() = default;

  /// Builds a snapshot directly from an edge list (any order; sorted
  /// into canonical order here). Duplicate edges are summed. Intended
  /// for deserialization and tests; live profiles come from
  /// DynamicCallGraph::snapshot().
  static DCGSnapshot fromEdges(std::vector<Edge> Edges);

  /// Raw weight of \p E (0 if absent). Binary search over the sorted
  /// edge vector.
  uint64_t weight(CallEdge E) const;

  /// Sum of all edge weights.
  uint64_t totalWeight() const { return D ? D->Total : 0; }

  /// Number of distinct edges.
  size_t numEdges() const { return D ? D->Edges.size() : 0; }

  bool empty() const { return numEdges() == 0; }

  /// Edge weight as a fraction of the total (0 if the snapshot is
  /// empty).
  double fraction(CallEdge E) const;

  /// All edges at \p Site with their weights, heaviest first (weight
  /// descending, key ascending on ties). This is the per-site receiver
  /// distribution the new inliner's 40% rule inspects.
  std::vector<Edge> siteDistribution(bc::SiteId Site) const;

  /// The callee holding at least \p MinSharePct percent of \p Site's
  /// receiver distribution, or InvalidMethodId when no callee clears
  /// the bar (ties broken towards the canonically smaller edge, as in
  /// siteDistribution). A site with no recorded edges also returns
  /// InvalidMethodId: absence of evidence is not loss of dominance —
  /// callers gate on \p SiteWeight (the site's total recorded weight,
  /// written on return) before treating the answer as authoritative.
  bc::MethodId dominantCallee(bc::SiteId Site, double MinSharePct,
                              uint64_t &SiteWeight) const;

  /// Canonical iteration order: edges sorted by key. The returned
  /// reference is valid for the lifetime of any copy of this snapshot.
  const std::vector<Edge> &sortedEdges() const;

  /// Deterministic iteration in canonical (sorted key) order.
  template <typename Fn> void forEachEdge(Fn &&Callback) const {
    for (const auto &[E, W] : sortedEdges())
      Callback(E, W);
  }

  /// Mutation count of the live repository when this snapshot was
  /// taken. Two snapshots of the same repository with equal epochs have
  /// equal content.
  uint64_t epoch() const { return D ? D->Epoch : 0; }

  /// Human-readable dump resolving names through \p P, heaviest first,
  /// at most \p MaxEdges rows.
  std::string str(const bc::Program &P, size_t MaxEdges = 32) const;

private:
  friend class DynamicCallGraph;

  struct Data {
    std::vector<Edge> Edges; ///< sorted by CallEdge key
    uint64_t Total = 0;
    uint64_t Epoch = 0;
  };

  explicit DCGSnapshot(std::shared_ptr<const Data> D) : D(std::move(D)) {}

  std::shared_ptr<const Data> D;
};

} // namespace cbs::prof

#endif // CBSVM_PROFILING_DCGSNAPSHOT_H
