//===- profiling/AllocationProfile.cpp - CBS beyond call graphs -----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "profiling/AllocationProfile.h"

#include "bytecode/Program.h"

#include <algorithm>
#include <sstream>

using namespace cbs;
using namespace cbs::prof;

void AllocationProfile::addSample(bc::ClassId Class, uint64_t Count) {
  if (Class >= Weights.size())
    Weights.resize(Class + 1, 0);
  Weights[Class] += Count;
  Total += Count;
}

double AllocationProfile::fraction(bc::ClassId Class) const {
  if (Total == 0)
    return 0;
  return static_cast<double>(weight(Class)) / static_cast<double>(Total);
}

std::vector<std::pair<bc::ClassId, uint64_t>>
AllocationProfile::sorted() const {
  std::vector<std::pair<bc::ClassId, uint64_t>> Result;
  for (bc::ClassId C = 0; C != Weights.size(); ++C)
    if (Weights[C] != 0)
      Result.emplace_back(C, Weights[C]);
  std::sort(Result.begin(), Result.end(), [](const auto &L, const auto &R) {
    if (L.second != R.second)
      return L.second > R.second;
    return L.first < R.first;
  });
  return Result;
}

double AllocationProfile::overlapWith(const AllocationProfile &Other) const {
  if (empty() && Other.empty())
    return 100.0;
  if (empty() || Other.empty())
    return 0.0;
  double Sum = 0;
  size_t N = std::max(Weights.size(), Other.Weights.size());
  for (bc::ClassId C = 0; C != N; ++C) {
    double A = 100.0 * fraction(C);
    double B = 100.0 * Other.fraction(C);
    Sum += std::min(A, B);
  }
  return Sum;
}

std::string AllocationProfile::str(const bc::Program &P,
                                   size_t MaxRows) const {
  std::ostringstream OS;
  OS << "allocation profile: total weight " << Total << '\n';
  size_t Shown = 0;
  for (const auto &[Class, Weight] : sorted()) {
    if (Shown++ == MaxRows)
      break;
    OS << "  " << P.hierarchy().classOf(Class).Name << "  " << Weight
       << " (" << static_cast<int>(fraction(Class) * 1000) / 10.0
       << "%)\n";
  }
  return OS.str();
}
