//===- bytecode/Opcode.cpp - Instruction set ------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Opcode.h"

#include "support/ErrorHandling.h"

using namespace cbs;
using namespace cbs::bc;

const char *bc::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::IConst:
    return "iconst";
  case Opcode::ILoad:
    return "iload";
  case Opcode::IStore:
    return "istore";
  case Opcode::IInc:
    return "iinc";
  case Opcode::IAdd:
    return "iadd";
  case Opcode::ISub:
    return "isub";
  case Opcode::IMul:
    return "imul";
  case Opcode::IDiv:
    return "idiv";
  case Opcode::IRem:
    return "irem";
  case Opcode::INeg:
    return "ineg";
  case Opcode::IAnd:
    return "iand";
  case Opcode::IOr:
    return "ior";
  case Opcode::IXor:
    return "ixor";
  case Opcode::IShl:
    return "ishl";
  case Opcode::IShr:
    return "ishr";
  case Opcode::Goto:
    return "goto";
  case Opcode::IfEq:
    return "ifeq";
  case Opcode::IfNe:
    return "ifne";
  case Opcode::IfLt:
    return "iflt";
  case Opcode::IfLe:
    return "ifle";
  case Opcode::IfGt:
    return "ifgt";
  case Opcode::IfGe:
    return "ifge";
  case Opcode::IfICmpEq:
    return "if_icmpeq";
  case Opcode::IfICmpNe:
    return "if_icmpne";
  case Opcode::IfICmpLt:
    return "if_icmplt";
  case Opcode::IfICmpGe:
    return "if_icmpge";
  case Opcode::New:
    return "new";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::ALoad:
    return "aload";
  case Opcode::AStore:
    return "astore";
  case Opcode::AConstNull:
    return "aconst_null";
  case Opcode::ClassEq:
    return "classeq";
  case Opcode::InvokeStatic:
    return "invokestatic";
  case Opcode::InvokeVirtual:
    return "invokevirtual";
  case Opcode::Return:
    return "return";
  case Opcode::IReturn:
    return "ireturn";
  case Opcode::AReturn:
    return "areturn";
  case Opcode::Work:
    return "work";
  case Opcode::Print:
    return "print";
  case Opcode::Halt:
    return "halt";
  case Opcode::Spawn:
    return "spawn";
  }
  cbsUnreachable("unknown opcode");
}

bool bc::isBranch(Opcode Op) {
  return Op == Opcode::Goto || isConditionalBranch(Op);
}

bool bc::isConditionalBranch(Opcode Op) {
  switch (Op) {
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfLe:
  case Opcode::IfGt:
  case Opcode::IfGe:
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpGe:
    return true;
  default:
    return false;
  }
}

bool bc::isCall(Opcode Op) {
  return Op == Opcode::InvokeStatic || Op == Opcode::InvokeVirtual;
}

bool bc::isReturn(Opcode Op) {
  return Op == Opcode::Return || Op == Opcode::IReturn ||
         Op == Opcode::AReturn;
}

unsigned bc::opcodeSizeBytes(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::IDiv:
  case Opcode::IRem:
  case Opcode::INeg:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::IXor:
  case Opcode::IShl:
  case Opcode::IShr:
  case Opcode::AConstNull:
  case Opcode::Return:
  case Opcode::IReturn:
  case Opcode::AReturn:
  case Opcode::Print:
  case Opcode::Halt:
    return 1;
  case Opcode::IConst:
  case Opcode::ILoad:
  case Opcode::IStore:
  case Opcode::ALoad:
  case Opcode::AStore:
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::Work:
    return 2;
  case Opcode::IInc:
  case Opcode::Goto:
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfLe:
  case Opcode::IfGt:
  case Opcode::IfGe:
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpGe:
  case Opcode::New:
  case Opcode::ClassEq:
    return 3;
  case Opcode::InvokeStatic:
  case Opcode::InvokeVirtual:
  case Opcode::Spawn:
    return 3;
  }
  cbsUnreachable("unknown opcode");
}
