//===- bytecode/Method.h - Method representation ----------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A method: name, signature, owning class (for virtual methods), and a
/// flat instruction vector. Branch operands are instruction indices into
/// `Code`. Methods never change after Program finalization; the
/// optimizer/inliner produce separate CompiledMethod versions (see
/// vm/CompiledMethod.h) rather than mutating the original.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_BYTECODE_METHOD_H
#define CBSVM_BYTECODE_METHOD_H

#include "bytecode/Instruction.h"

#include <string>
#include <vector>

namespace cbs::bc {

struct Method {
  MethodId Id = InvalidMethodId;
  std::string Name;

  /// Owning class for virtual methods, InvalidClassId for static ones.
  ClassId Owner = InvalidClassId;
  /// Dispatch selector for virtual methods, InvalidSelectorId otherwise.
  SelectorId Selector = InvalidSelectorId;

  /// Argument kinds; for virtual methods ArgKinds[0] is the receiver and
  /// always Ref. Arguments occupy locals [0, ArgKinds.size()).
  std::vector<ValKind> ArgKinds;
  /// Kind of the returned value; empty optional encoded as HasResult.
  bool HasResult = false;
  ValKind ResultKind = ValKind::Int;

  /// Number of local variable slots (>= ArgKinds.size()).
  uint32_t NumLocals = 0;

  std::vector<Instruction> Code;

  bool isVirtual() const { return Selector != InvalidSelectorId; }
  uint32_t numArgs() const { return static_cast<uint32_t>(ArgKinds.size()); }

  /// Modelled bytecode size in bytes; the unit of the paper's inlining
  /// size thresholds and of Table 1's "Size (K)" column.
  uint32_t sizeBytes() const {
    uint32_t Total = 0;
    for (const Instruction &I : Code)
      Total += opcodeSizeBytes(I.Op);
    return Total;
  }
};

} // namespace cbs::bc

#endif // CBSVM_BYTECODE_METHOD_H
