//===- bytecode/Verifier.h - Structural bytecode verifier -------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structural verifier in the style of the JVM's: abstract
/// interpretation of operand-stack depth and value kinds over each
/// method, plus whole-program checks (entry signature, selector
/// signature consistency, call-site table integrity). The interpreter
/// assumes verified code, which is what lets it run untyped 64-bit
/// slots at full speed; every program the workload suite or the inliner
/// produces is routed through the verifier in tests.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_BYTECODE_VERIFIER_H
#define CBSVM_BYTECODE_VERIFIER_H

#include "bytecode/Program.h"

#include <string>
#include <vector>

namespace cbs::bc {

/// Outcome of verification; empty Errors means the program is valid.
struct VerifyResult {
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
  /// All messages joined with newlines (for test failure output).
  std::string str() const;
};

/// Verifies a whole program. Never mutates it.
VerifyResult verifyProgram(const Program &P);

/// Verifies one method against \p P (used by the inliner's unit tests to
/// check freshly generated bodies before they are installed).
/// \p Code/NumLocals may describe a compiled variant of P.method(Id).
VerifyResult verifyMethodBody(const Program &P, MethodId Id,
                              const std::vector<Instruction> &Code,
                              uint32_t NumLocals);

} // namespace cbs::bc

#endif // CBSVM_BYTECODE_VERIFIER_H
