//===- bytecode/Opcode.h - Instruction set ----------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CBSVM instruction set: a small JVM-like operand-stack ISA with
/// integer arithmetic, object fields, static and virtual calls, and an
/// abstract `Work` instruction that models a stretch of non-call
/// computation (the getfield/putfield runs of the paper's Figure 1)
/// without paying host interpretation cost per modelled instruction.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_BYTECODE_OPCODE_H
#define CBSVM_BYTECODE_OPCODE_H

#include <cstdint>

namespace cbs::bc {

enum class Opcode : uint8_t {
  Nop,

  // Integer stack/local operations. A = immediate or slot.
  IConst, ///< push A
  ILoad,  ///< push locals[A]
  IStore, ///< locals[A] = pop
  IInc,   ///< locals[A] += B (no stack traffic)

  // Integer arithmetic; binary ops pop (rhs, lhs) and push the result.
  IAdd,
  ISub,
  IMul,
  IDiv, ///< traps on division by zero
  IRem, ///< traps on division by zero
  INeg,
  IAnd,
  IOr,
  IXor,
  IShl, ///< shift count masked to 63
  IShr, ///< arithmetic shift, count masked to 63

  // Control flow. A = target instruction index.
  Goto,
  IfEq, ///< pop v; branch if v == 0
  IfNe,
  IfLt,
  IfLe,
  IfGt,
  IfGe,
  IfICmpEq, ///< pop rhs, lhs; branch if lhs == rhs
  IfICmpNe,
  IfICmpLt,
  IfICmpGe,

  // Objects and fields.
  New,        ///< A = ClassId; push new reference
  GetField,   ///< A = field index; pop ref, push field value
  PutField,   ///< A = field index; pop value, pop ref
  ALoad,      ///< push locals[A] (reference)
  AStore,     ///< locals[A] = pop (reference)
  AConstNull, ///< push null
  ClassEq,    ///< A = ClassId; pop ref, push 1 if exact class match else 0

  // Calls. A = MethodId (static) or SelectorId (virtual); B = arg count
  // including the receiver for virtual calls. Instruction::Site carries
  // the program-unique call site id.
  InvokeStatic,
  InvokeVirtual,

  // Returns.
  Return,  ///< return void
  IReturn, ///< pop int, return it
  AReturn, ///< pop ref, return it

  // Modelled computation and observation.
  Work,  ///< charge A cycles of non-call computation (A >= 1)
  Print, ///< pop int, append to the VM output log (observable effect)
  Halt,  ///< stop the whole virtual machine

  /// A = MethodId of a static, argumentless, void method: starts a new
  /// green thread executing it. Used by the multithreaded workloads
  /// (jbb, mtrt); the paper's J9 implementation motivates thread-local
  /// sampling counters, which this exercises.
  Spawn,
};

/// Returns a stable mnemonic, e.g. "invokevirtual".
const char *opcodeName(Opcode Op);

/// True for Goto and all conditional branches.
bool isBranch(Opcode Op);

/// True for conditional branches only.
bool isConditionalBranch(Opcode Op);

/// True for InvokeStatic / InvokeVirtual.
bool isCall(Opcode Op);

/// True for Return / IReturn / AReturn.
bool isReturn(Opcode Op);

/// Modelled encoded size in bytes of one instruction; the sum over a
/// method is its "bytecode size", the quantity the paper's inliner
/// thresholds are expressed in.
unsigned opcodeSizeBytes(Opcode Op);

} // namespace cbs::bc

#endif // CBSVM_BYTECODE_OPCODE_H
