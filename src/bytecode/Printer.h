//===- bytecode/Printer.h - Disassembler ------------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable dumps of methods and programs, used in examples, test
/// failure messages, and when debugging generated workloads.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_BYTECODE_PRINTER_H
#define CBSVM_BYTECODE_PRINTER_H

#include "bytecode/Program.h"

#include <string>

namespace cbs::bc {

/// Disassembles one instruction, resolving method/class/selector names
/// through \p P.
std::string printInstruction(const Program &P, const Instruction &I);

/// Disassembles an arbitrary body attributed to \p Id (works for
/// compiled variants too).
std::string printCode(const Program &P, MethodId Id,
                      const std::vector<Instruction> &Code);

/// Disassembles a method's original body with its signature header.
std::string printMethod(const Program &P, MethodId Id);

/// Disassembles the entire program.
std::string printProgram(const Program &P);

} // namespace cbs::bc

#endif // CBSVM_BYTECODE_PRINTER_H
