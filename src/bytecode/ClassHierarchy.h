//===- bytecode/ClassHierarchy.h - Classes and vtables ----------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-inheritance class hierarchy with per-class virtual dispatch
/// tables indexed by selector id. Dispatch tables are fully resolved at
/// Program finalization: a class's table starts as a copy of its
/// superclass's and is overlaid with its own overrides, so the
/// interpreter's invokevirtual is a single array lookup.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_BYTECODE_CLASSHIERARCHY_H
#define CBSVM_BYTECODE_CLASSHIERARCHY_H

#include "bytecode/Ids.h"

#include <string>
#include <vector>

namespace cbs::bc {

struct ClassType {
  ClassId Id = InvalidClassId;
  std::string Name;
  ClassId Super = InvalidClassId;
  /// Total field count including inherited fields.
  uint32_t NumFields = 0;
  /// Resolved dispatch table, indexed by SelectorId. InvalidMethodId for
  /// selectors the class does not understand.
  std::vector<MethodId> VTable;
};

class ClassHierarchy {
public:
  /// Adds a class. \p Super must already exist (or be InvalidClassId for
  /// a root class). \p NumOwnFields is the count of fields added beyond
  /// the superclass's.
  ClassId addClass(std::string Name, ClassId Super, uint32_t NumOwnFields);

  /// Interns a dispatch selector with the given argument count
  /// (including the receiver).
  SelectorId addSelector(std::string Name, uint32_t NumArgs);

  /// Records that \p Class implements \p Selector with \p Method.
  /// Effective tables are built by resolve().
  void setImplementation(ClassId Class, SelectorId Selector, MethodId Method);

  /// Builds the resolved per-class dispatch tables. Called by
  /// ProgramBuilder::finish; callable repeatedly.
  void resolve();

  /// True if \p Sub equals \p Ancestor or transitively derives from it.
  bool derivesFrom(ClassId Sub, ClassId Ancestor) const;

  const ClassType &classOf(ClassId Id) const;
  size_t numClasses() const { return Classes.size(); }
  size_t numSelectors() const { return SelectorNames.size(); }
  const std::string &selectorName(SelectorId Id) const;
  uint32_t selectorNumArgs(SelectorId Id) const;

  /// Resolved dispatch: the method \p Class runs for \p Selector, or
  /// InvalidMethodId. Valid after resolve().
  MethodId lookup(ClassId Class, SelectorId Selector) const;

  /// All classes whose resolved table maps \p Selector to \p Method
  /// (i.e. the receiver classes that would dispatch to it). Valid after
  /// resolve(). Used by guarded inlining to pick guard classes.
  std::vector<ClassId> receiversOf(SelectorId Selector,
                                   MethodId Method) const;

private:
  struct Override {
    ClassId Class;
    SelectorId Selector;
    MethodId Method;
  };

  std::vector<ClassType> Classes;
  std::vector<std::string> SelectorNames;
  std::vector<uint32_t> SelectorArgs;
  std::vector<Override> Overrides;
};

} // namespace cbs::bc

#endif // CBSVM_BYTECODE_CLASSHIERARCHY_H
