//===- bytecode/Builder.h - Program construction API ------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProgramBuilder / MethodBuilder: the API for constructing verified
/// programs. Methods are declared first (so calls can reference them,
/// including mutual recursion) and defined with a MethodBuilder that
/// supports forward branch labels. Call instructions get program-unique
/// site ids at emit time; `ProgramBuilder::finish` resolves the class
/// hierarchy and freezes the program.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_BYTECODE_BUILDER_H
#define CBSVM_BYTECODE_BUILDER_H

#include "bytecode/Program.h"

#include <memory>

namespace cbs::bc {

class ProgramBuilder;

/// A forward-referenceable branch target inside one method.
struct Label {
  uint32_t Index = ~0u;
};

/// Builds the body of one previously declared method. Emit methods
/// append exactly one instruction each and return *this for chaining.
class MethodBuilder {
public:
  // Integer stack/local operations.
  MethodBuilder &iconst(int64_t V);
  MethodBuilder &iload(uint32_t Slot);
  MethodBuilder &istore(uint32_t Slot);
  MethodBuilder &iinc(uint32_t Slot, int32_t Delta);
  MethodBuilder &iadd();
  MethodBuilder &isub();
  MethodBuilder &imul();
  MethodBuilder &idiv();
  MethodBuilder &irem();
  MethodBuilder &ineg();
  MethodBuilder &iand();
  MethodBuilder &ior();
  MethodBuilder &ixor();
  MethodBuilder &ishl();
  MethodBuilder &ishr();

  // Control flow.
  Label newLabel();
  /// Binds \p L to the next emitted instruction.
  MethodBuilder &bind(Label L);
  MethodBuilder &jump(Label L);
  MethodBuilder &ifEq(Label L);
  MethodBuilder &ifNe(Label L);
  MethodBuilder &ifLt(Label L);
  MethodBuilder &ifLe(Label L);
  MethodBuilder &ifGt(Label L);
  MethodBuilder &ifGe(Label L);
  MethodBuilder &ifICmpEq(Label L);
  MethodBuilder &ifICmpNe(Label L);
  MethodBuilder &ifICmpLt(Label L);
  MethodBuilder &ifICmpGe(Label L);

  // Objects.
  MethodBuilder &newObject(ClassId Class);
  MethodBuilder &getField(uint32_t Index);
  MethodBuilder &putField(uint32_t Index);
  MethodBuilder &aload(uint32_t Slot);
  MethodBuilder &astore(uint32_t Slot);
  MethodBuilder &aconstNull();
  MethodBuilder &classEq(ClassId Class);

  // Calls. Argument counts come from the callee declaration / selector.
  MethodBuilder &invokeStatic(MethodId Callee);
  MethodBuilder &invokeVirtual(SelectorId Selector);

  // Returns and miscellany.
  MethodBuilder &ret();
  MethodBuilder &iret();
  MethodBuilder &aret();
  MethodBuilder &work(int32_t Cycles);
  MethodBuilder &print();
  MethodBuilder &halt();
  MethodBuilder &nop();
  /// Starts a new thread running \p Target (static, argumentless, void).
  MethodBuilder &spawn(MethodId Target);

  /// Index of the next instruction to be emitted.
  uint32_t nextPC() const;

  /// Patches labels, computes NumLocals, appends a trailing `return` to
  /// void methods whose code does not already end in one, and installs
  /// the body. The builder must not be used afterwards.
  void finish();

private:
  friend class ProgramBuilder;
  MethodBuilder(ProgramBuilder &PB, MethodId Id) : PB(PB), Id(Id) {}

  MethodBuilder &emit(Opcode Op, int32_t A = 0, int32_t B = 0);
  MethodBuilder &emitBranch(Opcode Op, Label L);

  ProgramBuilder &PB;
  MethodId Id;
  std::vector<Instruction> Code;
  /// Bound pc per label index; ~0u while unbound.
  std::vector<uint32_t> LabelPCs;
  /// (instruction index, label index) pairs awaiting patch.
  std::vector<std::pair<uint32_t, uint32_t>> Fixups;
  uint32_t MaxSlot = 0;
  bool Finished = false;
};

class ProgramBuilder {
public:
  ProgramBuilder();

  /// Adds a class; \p Super must already exist or be InvalidClassId.
  ClassId addClass(std::string Name, ClassId Super = InvalidClassId,
                   uint32_t NumOwnFields = 0);

  /// Interns a virtual-dispatch selector. \p NumArgs includes the
  /// receiver.
  SelectorId addSelector(std::string Name, uint32_t NumArgs);

  /// Declares a static method so calls can reference it before its body
  /// exists. \p ArgKinds may be empty.
  MethodId declareStatic(std::string Name, std::vector<ValKind> ArgKinds = {},
                         bool HasResult = false,
                         ValKind ResultKind = ValKind::Int);

  /// Declares a virtual method implementing \p Selector on \p Class.
  /// The signature is the selector's: receiver Ref plus \p ExtraKinds
  /// (which must have selectorNumArgs - 1 entries; defaults to all Int).
  MethodId declareVirtual(ClassId Class, SelectorId Selector,
                          std::string Name = "",
                          std::vector<ValKind> ExtraKinds = {},
                          bool HasResult = false,
                          ValKind ResultKind = ValKind::Int);

  /// Starts defining the body of \p Id. Each method may be defined once.
  MethodBuilder defineMethod(MethodId Id);

  const Method &methodInfo(MethodId Id) const;
  ClassHierarchy &hierarchy() { return Hierarchy; }

  /// Freezes the program with \p Entry as the main method. All declared
  /// methods must have been defined.
  Program finish(MethodId Entry);

private:
  friend class MethodBuilder;

  SiteId allocateSite(MethodId Caller, uint32_t PC);
  void installBody(MethodId Id, std::vector<Instruction> Code,
                   uint32_t NumLocals);

  ClassHierarchy Hierarchy;
  std::vector<Method> Methods;
  std::vector<bool> Defined;
  std::vector<SiteInfo> Sites;
};

} // namespace cbs::bc

#endif // CBSVM_BYTECODE_BUILDER_H
