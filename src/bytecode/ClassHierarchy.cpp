//===- bytecode/ClassHierarchy.cpp - Classes and vtables ------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "bytecode/ClassHierarchy.h"

#include <cassert>

using namespace cbs;
using namespace cbs::bc;

ClassId ClassHierarchy::addClass(std::string Name, ClassId Super,
                                 uint32_t NumOwnFields) {
  assert((Super == InvalidClassId || Super < Classes.size()) &&
         "superclass must be added first");
  ClassType C;
  C.Id = static_cast<ClassId>(Classes.size());
  C.Name = std::move(Name);
  C.Super = Super;
  C.NumFields =
      NumOwnFields + (Super == InvalidClassId ? 0 : Classes[Super].NumFields);
  Classes.push_back(std::move(C));
  return Classes.back().Id;
}

SelectorId ClassHierarchy::addSelector(std::string Name, uint32_t NumArgs) {
  assert(NumArgs >= 1 && "selector arg count includes the receiver");
  SelectorNames.push_back(std::move(Name));
  SelectorArgs.push_back(NumArgs);
  return static_cast<SelectorId>(SelectorNames.size() - 1);
}

void ClassHierarchy::setImplementation(ClassId Class, SelectorId Selector,
                                       MethodId Method) {
  assert(Class < Classes.size() && "unknown class");
  assert(Selector < SelectorNames.size() && "unknown selector");
  Overrides.push_back({Class, Selector, Method});
}

void ClassHierarchy::resolve() {
  // Classes are appended after their superclass (enforced in addClass),
  // so a single forward pass sees each superclass resolved first.
  for (ClassType &C : Classes) {
    C.VTable.assign(SelectorNames.size(), InvalidMethodId);
    if (C.Super != InvalidClassId)
      C.VTable = Classes[C.Super].VTable;
    C.VTable.resize(SelectorNames.size(), InvalidMethodId);
    for (const Override &O : Overrides)
      if (O.Class == C.Id)
        C.VTable[O.Selector] = O.Method;
  }
}

bool ClassHierarchy::derivesFrom(ClassId Sub, ClassId Ancestor) const {
  for (ClassId C = Sub; C != InvalidClassId; C = Classes[C].Super)
    if (C == Ancestor)
      return true;
  return false;
}

const ClassType &ClassHierarchy::classOf(ClassId Id) const {
  assert(Id < Classes.size() && "unknown class");
  return Classes[Id];
}

const std::string &ClassHierarchy::selectorName(SelectorId Id) const {
  assert(Id < SelectorNames.size() && "unknown selector");
  return SelectorNames[Id];
}

uint32_t ClassHierarchy::selectorNumArgs(SelectorId Id) const {
  assert(Id < SelectorArgs.size() && "unknown selector");
  return SelectorArgs[Id];
}

MethodId ClassHierarchy::lookup(ClassId Class, SelectorId Selector) const {
  const ClassType &C = classOf(Class);
  assert(!C.VTable.empty() && "hierarchy not resolved");
  if (Selector >= C.VTable.size())
    return InvalidMethodId;
  return C.VTable[Selector];
}

std::vector<ClassId> ClassHierarchy::receiversOf(SelectorId Selector,
                                                 MethodId Method) const {
  std::vector<ClassId> Result;
  for (const ClassType &C : Classes)
    if (Selector < C.VTable.size() && C.VTable[Selector] == Method)
      Result.push_back(C.Id);
  return Result;
}
