//===- bytecode/Instruction.h - Instruction encoding ------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width instruction encoding. Operand meaning depends on the
/// opcode (see Opcode.h); `Site` is the program-unique call site id and
/// is nonzero-valid only on call instructions.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_BYTECODE_INSTRUCTION_H
#define CBSVM_BYTECODE_INSTRUCTION_H

#include "bytecode/Ids.h"
#include "bytecode/Opcode.h"

namespace cbs::bc {

struct Instruction {
  Opcode Op = Opcode::Nop;
  int32_t A = 0;
  int32_t B = 0;
  SiteId Site = InvalidSiteId;

  Instruction() = default;
  Instruction(Opcode Op, int32_t A = 0, int32_t B = 0,
              SiteId Site = InvalidSiteId)
      : Op(Op), A(A), B(B), Site(Site) {}
};

} // namespace cbs::bc

#endif // CBSVM_BYTECODE_INSTRUCTION_H
