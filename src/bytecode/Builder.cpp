//===- bytecode/Builder.cpp - Program construction API --------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace cbs;
using namespace cbs::bc;

//===----------------------------------------------------------------------===//
// MethodBuilder
//===----------------------------------------------------------------------===//

MethodBuilder &MethodBuilder::emit(Opcode Op, int32_t A, int32_t B) {
  assert(!Finished && "builder already finished");
  Code.emplace_back(Op, A, B);
  return *this;
}

MethodBuilder &MethodBuilder::emitBranch(Opcode Op, Label L) {
  assert(L.Index < LabelPCs.size() && "label from another builder");
  Fixups.emplace_back(static_cast<uint32_t>(Code.size()), L.Index);
  return emit(Op, /*A=*/-1);
}

MethodBuilder &MethodBuilder::iconst(int64_t V) {
  assert(V >= INT32_MIN && V <= INT32_MAX &&
         "iconst immediate limited to 32 bits");
  return emit(Opcode::IConst, static_cast<int32_t>(V));
}

MethodBuilder &MethodBuilder::iload(uint32_t Slot) {
  MaxSlot = std::max(MaxSlot, Slot);
  return emit(Opcode::ILoad, static_cast<int32_t>(Slot));
}

MethodBuilder &MethodBuilder::istore(uint32_t Slot) {
  MaxSlot = std::max(MaxSlot, Slot);
  return emit(Opcode::IStore, static_cast<int32_t>(Slot));
}

MethodBuilder &MethodBuilder::iinc(uint32_t Slot, int32_t Delta) {
  MaxSlot = std::max(MaxSlot, Slot);
  return emit(Opcode::IInc, static_cast<int32_t>(Slot), Delta);
}

MethodBuilder &MethodBuilder::iadd() { return emit(Opcode::IAdd); }
MethodBuilder &MethodBuilder::isub() { return emit(Opcode::ISub); }
MethodBuilder &MethodBuilder::imul() { return emit(Opcode::IMul); }
MethodBuilder &MethodBuilder::idiv() { return emit(Opcode::IDiv); }
MethodBuilder &MethodBuilder::irem() { return emit(Opcode::IRem); }
MethodBuilder &MethodBuilder::ineg() { return emit(Opcode::INeg); }
MethodBuilder &MethodBuilder::iand() { return emit(Opcode::IAnd); }
MethodBuilder &MethodBuilder::ior() { return emit(Opcode::IOr); }
MethodBuilder &MethodBuilder::ixor() { return emit(Opcode::IXor); }
MethodBuilder &MethodBuilder::ishl() { return emit(Opcode::IShl); }
MethodBuilder &MethodBuilder::ishr() { return emit(Opcode::IShr); }

Label MethodBuilder::newLabel() {
  LabelPCs.push_back(~0u);
  return {static_cast<uint32_t>(LabelPCs.size() - 1)};
}

MethodBuilder &MethodBuilder::bind(Label L) {
  assert(L.Index < LabelPCs.size() && "label from another builder");
  assert(LabelPCs[L.Index] == ~0u && "label bound twice");
  LabelPCs[L.Index] = static_cast<uint32_t>(Code.size());
  return *this;
}

MethodBuilder &MethodBuilder::jump(Label L) {
  return emitBranch(Opcode::Goto, L);
}
MethodBuilder &MethodBuilder::ifEq(Label L) {
  return emitBranch(Opcode::IfEq, L);
}
MethodBuilder &MethodBuilder::ifNe(Label L) {
  return emitBranch(Opcode::IfNe, L);
}
MethodBuilder &MethodBuilder::ifLt(Label L) {
  return emitBranch(Opcode::IfLt, L);
}
MethodBuilder &MethodBuilder::ifLe(Label L) {
  return emitBranch(Opcode::IfLe, L);
}
MethodBuilder &MethodBuilder::ifGt(Label L) {
  return emitBranch(Opcode::IfGt, L);
}
MethodBuilder &MethodBuilder::ifGe(Label L) {
  return emitBranch(Opcode::IfGe, L);
}
MethodBuilder &MethodBuilder::ifICmpEq(Label L) {
  return emitBranch(Opcode::IfICmpEq, L);
}
MethodBuilder &MethodBuilder::ifICmpNe(Label L) {
  return emitBranch(Opcode::IfICmpNe, L);
}
MethodBuilder &MethodBuilder::ifICmpLt(Label L) {
  return emitBranch(Opcode::IfICmpLt, L);
}
MethodBuilder &MethodBuilder::ifICmpGe(Label L) {
  return emitBranch(Opcode::IfICmpGe, L);
}

MethodBuilder &MethodBuilder::newObject(ClassId Class) {
  return emit(Opcode::New, static_cast<int32_t>(Class));
}
MethodBuilder &MethodBuilder::getField(uint32_t Index) {
  return emit(Opcode::GetField, static_cast<int32_t>(Index));
}
MethodBuilder &MethodBuilder::putField(uint32_t Index) {
  return emit(Opcode::PutField, static_cast<int32_t>(Index));
}
MethodBuilder &MethodBuilder::aload(uint32_t Slot) {
  MaxSlot = std::max(MaxSlot, Slot);
  return emit(Opcode::ALoad, static_cast<int32_t>(Slot));
}
MethodBuilder &MethodBuilder::astore(uint32_t Slot) {
  MaxSlot = std::max(MaxSlot, Slot);
  return emit(Opcode::AStore, static_cast<int32_t>(Slot));
}
MethodBuilder &MethodBuilder::aconstNull() { return emit(Opcode::AConstNull); }
MethodBuilder &MethodBuilder::classEq(ClassId Class) {
  return emit(Opcode::ClassEq, static_cast<int32_t>(Class));
}

MethodBuilder &MethodBuilder::invokeStatic(MethodId Callee) {
  const Method &M = PB.methodInfo(Callee);
  assert(!M.isVirtual() && "invokeStatic on a virtual method");
  SiteId Site = PB.allocateSite(Id, static_cast<uint32_t>(Code.size()));
  Code.emplace_back(Opcode::InvokeStatic, static_cast<int32_t>(Callee),
                    static_cast<int32_t>(M.numArgs()), Site);
  return *this;
}

MethodBuilder &MethodBuilder::invokeVirtual(SelectorId Selector) {
  uint32_t NumArgs = PB.hierarchy().selectorNumArgs(Selector);
  SiteId Site = PB.allocateSite(Id, static_cast<uint32_t>(Code.size()));
  Code.emplace_back(Opcode::InvokeVirtual, static_cast<int32_t>(Selector),
                    static_cast<int32_t>(NumArgs), Site);
  return *this;
}

MethodBuilder &MethodBuilder::ret() { return emit(Opcode::Return); }
MethodBuilder &MethodBuilder::iret() { return emit(Opcode::IReturn); }
MethodBuilder &MethodBuilder::aret() { return emit(Opcode::AReturn); }

MethodBuilder &MethodBuilder::work(int32_t Cycles) {
  assert(Cycles >= 1 && "work must model at least one cycle");
  return emit(Opcode::Work, Cycles);
}

MethodBuilder &MethodBuilder::print() { return emit(Opcode::Print); }
MethodBuilder &MethodBuilder::halt() { return emit(Opcode::Halt); }
MethodBuilder &MethodBuilder::nop() { return emit(Opcode::Nop); }

MethodBuilder &MethodBuilder::spawn(MethodId Target) {
  return emit(Opcode::Spawn, static_cast<int32_t>(Target));
}

uint32_t MethodBuilder::nextPC() const {
  return static_cast<uint32_t>(Code.size());
}

void MethodBuilder::finish() {
  assert(!Finished && "finish called twice");
  Finished = true;

  const Method &M = PB.methodInfo(Id);
  // Convenience: let void methods omit the trailing return. Also needed
  // when a used label is bound at the very end of the body ("jump to
  // exit") — the label must land on a real instruction.
  bool LabelBoundAtEnd = false;
  for (uint32_t PC : LabelPCs)
    LabelBoundAtEnd |= PC == Code.size();
  if (!M.HasResult &&
      (Code.empty() || LabelBoundAtEnd ||
       (!isReturn(Code.back().Op) && Code.back().Op != Opcode::Goto &&
        Code.back().Op != Opcode::Halt)))
    Code.emplace_back(Opcode::Return);

  for (auto [InstIndex, LabelIndex] : Fixups) {
    uint32_t Target = LabelPCs[LabelIndex];
    assert(Target != ~0u && "branch to an unbound label");
    assert(Target <= Code.size() && "label bound past end of code");
    // A label bound at the very end must still land on an instruction;
    // the auto-appended return covers the common "jump to exit" case.
    assert(Target < Code.size() && "label bound past the last instruction");
    Code[InstIndex].A = static_cast<int32_t>(Target);
  }

  uint32_t NumLocals =
      std::max<uint32_t>(MaxSlot + 1, std::max(1u, M.numArgs()));
  PB.installBody(Id, std::move(Code), NumLocals);
}

//===----------------------------------------------------------------------===//
// ProgramBuilder
//===----------------------------------------------------------------------===//

ProgramBuilder::ProgramBuilder() = default;

ClassId ProgramBuilder::addClass(std::string Name, ClassId Super,
                                 uint32_t NumOwnFields) {
  return Hierarchy.addClass(std::move(Name), Super, NumOwnFields);
}

SelectorId ProgramBuilder::addSelector(std::string Name, uint32_t NumArgs) {
  return Hierarchy.addSelector(std::move(Name), NumArgs);
}

MethodId ProgramBuilder::declareStatic(std::string Name,
                                       std::vector<ValKind> ArgKinds,
                                       bool HasResult, ValKind ResultKind) {
  Method M;
  M.Id = static_cast<MethodId>(Methods.size());
  M.Name = std::move(Name);
  M.ArgKinds = std::move(ArgKinds);
  M.HasResult = HasResult;
  M.ResultKind = ResultKind;
  Methods.push_back(std::move(M));
  Defined.push_back(false);
  return Methods.back().Id;
}

MethodId ProgramBuilder::declareVirtual(ClassId Class, SelectorId Selector,
                                        std::string Name,
                                        std::vector<ValKind> ExtraKinds,
                                        bool HasResult, ValKind ResultKind) {
  uint32_t NumArgs = Hierarchy.selectorNumArgs(Selector);
  if (ExtraKinds.empty())
    ExtraKinds.assign(NumArgs - 1, ValKind::Int);
  assert(ExtraKinds.size() == NumArgs - 1 &&
         "signature does not match the selector's arity");

  Method M;
  M.Id = static_cast<MethodId>(Methods.size());
  M.Name = Name.empty() ? Hierarchy.selectorName(Selector) : std::move(Name);
  M.Owner = Class;
  M.Selector = Selector;
  M.ArgKinds.push_back(ValKind::Ref); // Receiver.
  M.ArgKinds.insert(M.ArgKinds.end(), ExtraKinds.begin(), ExtraKinds.end());
  M.HasResult = HasResult;
  M.ResultKind = ResultKind;
  Methods.push_back(std::move(M));
  Defined.push_back(false);

  Hierarchy.setImplementation(Class, Selector, Methods.back().Id);
  return Methods.back().Id;
}

MethodBuilder ProgramBuilder::defineMethod(MethodId Id) {
  assert(Id < Methods.size() && "unknown method");
  assert(!Defined[Id] && "method defined twice");
  return MethodBuilder(*this, Id);
}

const Method &ProgramBuilder::methodInfo(MethodId Id) const {
  assert(Id < Methods.size() && "unknown method");
  return Methods[Id];
}

SiteId ProgramBuilder::allocateSite(MethodId Caller, uint32_t PC) {
  Sites.push_back({Caller, PC});
  return static_cast<SiteId>(Sites.size() - 1);
}

void ProgramBuilder::installBody(MethodId Id, std::vector<Instruction> Code,
                                 uint32_t NumLocals) {
  Methods[Id].Code = std::move(Code);
  Methods[Id].NumLocals = NumLocals;
  Defined[Id] = true;
}

Program ProgramBuilder::finish(MethodId Entry) {
  assert(Entry < Methods.size() && "unknown entry method");
  for (size_t I = 0, E = Methods.size(); I != E; ++I)
    if (!Defined[I])
      reportFatalError("method '" + Methods[I].Name +
                       "' declared but never defined");

  Hierarchy.resolve();

  Program P;
  P.Hierarchy = std::move(Hierarchy);
  P.Methods = std::move(Methods);
  P.Sites = std::move(Sites);
  P.Entry = Entry;
  return P;
}
