//===- bytecode/Verifier.cpp - Structural bytecode verifier ---------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Verifier.h"

#include <cassert>
#include <deque>
#include <optional>
#include <sstream>

using namespace cbs;
using namespace cbs::bc;

std::string VerifyResult::str() const {
  std::string Out;
  for (const std::string &E : Errors) {
    Out += E;
    Out += '\n';
  }
  return Out;
}

namespace {

/// Abstract value kind: the verifier's lattice. Conflict is the top
/// element produced by merging Int with Ref (or anything with Uninit);
/// it is an error only when consumed.
enum class AK : uint8_t { Uninit, Int, Ref, Conflict };

AK fromValKind(ValKind K) { return K == ValKind::Int ? AK::Int : AK::Ref; }

AK mergeKind(AK L, AK R) {
  if (L == R)
    return L;
  return AK::Conflict;
}

struct AbsState {
  std::vector<AK> Stack;
  std::vector<AK> Locals;
};

/// Merges \p In into \p Out; returns true if \p Out changed. Returns
/// std::nullopt on depth mismatch (a hard verification error).
std::optional<bool> mergeState(AbsState &Out, const AbsState &In) {
  if (Out.Stack.size() != In.Stack.size())
    return std::nullopt;
  bool Changed = false;
  for (size_t I = 0, E = Out.Stack.size(); I != E; ++I) {
    AK Merged = mergeKind(Out.Stack[I], In.Stack[I]);
    if (Merged != Out.Stack[I]) {
      Out.Stack[I] = Merged;
      Changed = true;
    }
  }
  for (size_t I = 0, E = Out.Locals.size(); I != E; ++I) {
    AK Merged = mergeKind(Out.Locals[I], In.Locals[I]);
    if (Merged != Out.Locals[I]) {
      Out.Locals[I] = Merged;
      Changed = true;
    }
  }
  return Changed;
}

/// Per-selector signature derived from implementations; used to type
/// invokevirtual sites.
struct SelectorSig {
  bool Known = false;
  std::vector<ValKind> ArgKinds;
  bool HasResult = false;
  ValKind ResultKind = ValKind::Int;
};

class MethodVerifier {
public:
  MethodVerifier(const Program &P, const Method &M,
                 const std::vector<Instruction> &Code, uint32_t NumLocals,
                 const std::vector<SelectorSig> &Sigs,
                 std::vector<std::string> &Errors)
      : P(P), M(M), Code(Code), NumLocals(NumLocals), Sigs(Sigs),
        Errors(Errors) {}

  void run();

private:
  void error(uint32_t PC, const std::string &Message) {
    // Qualified name, not M.Name: virtual implementations (and
    // generator-produced methods) share a bare selector name or have
    // none at all, and a diagnostic that reads "method ''" is useless
    // for pinpointing which body is broken.
    std::ostringstream OS;
    OS << "method '" << P.qualifiedName(M.Id) << "' pc " << PC << " ("
       << (PC < Code.size() ? opcodeName(Code[PC].Op) : "<end>")
       << "): " << Message;
    Errors.push_back(OS.str());
  }

  bool pop(AbsState &S, AK Expected, uint32_t PC, const char *What);
  void flowTo(uint32_t Target, const AbsState &S, uint32_t FromPC);
  /// Interprets the instruction at \p PC; returns false if control does
  /// not fall through to PC+1.
  bool step(uint32_t PC, AbsState &S);

  const Program &P;
  const Method &M;
  const std::vector<Instruction> &Code;
  uint32_t NumLocals;
  const std::vector<SelectorSig> &Sigs;
  std::vector<std::string> &Errors;

  std::vector<std::optional<AbsState>> InStates;
  std::deque<uint32_t> Worklist;
};

bool MethodVerifier::pop(AbsState &S, AK Expected, uint32_t PC,
                         const char *What) {
  if (S.Stack.empty()) {
    error(PC, std::string("operand stack underflow while popping ") + What);
    return false;
  }
  AK Got = S.Stack.back();
  S.Stack.pop_back();
  if (Got == Expected)
    return true;
  if (Got == AK::Conflict) {
    error(PC, std::string("use of merged value of conflicting kinds as ") +
                  What);
    return false;
  }
  error(PC, std::string("expected ") +
                (Expected == AK::Int ? "int" : "ref") + " operand for " +
                What);
  return false;
}

void MethodVerifier::flowTo(uint32_t Target, const AbsState &S,
                            uint32_t FromPC) {
  if (Target >= Code.size()) {
    error(FromPC, "control flows past the end of the method");
    return;
  }
  if (!InStates[Target]) {
    InStates[Target] = S;
    Worklist.push_back(Target);
    return;
  }
  std::optional<bool> Changed = mergeState(*InStates[Target], S);
  if (!Changed) {
    error(FromPC, "operand stack depth mismatch at merge point");
    return;
  }
  if (*Changed)
    Worklist.push_back(Target);
}

bool MethodVerifier::step(uint32_t PC, AbsState &S) {
  const Instruction &I = Code[PC];
  switch (I.Op) {
  case Opcode::Nop:
    return true;
  case Opcode::IConst:
    S.Stack.push_back(AK::Int);
    return true;
  case Opcode::ILoad:
  case Opcode::ALoad: {
    if (static_cast<uint32_t>(I.A) >= NumLocals) {
      error(PC, "local slot out of range");
      return true;
    }
    AK Want = I.Op == Opcode::ILoad ? AK::Int : AK::Ref;
    AK Got = S.Locals[I.A];
    if (Got == AK::Uninit)
      error(PC, "load from uninitialized local");
    else if (Got != Want && Got != AK::Conflict)
      error(PC, "local holds a value of the wrong kind");
    else if (Got == AK::Conflict)
      error(PC, "load from local with conflicting kinds across paths");
    S.Stack.push_back(Want);
    return true;
  }
  case Opcode::IStore:
  case Opcode::AStore: {
    if (static_cast<uint32_t>(I.A) >= NumLocals) {
      error(PC, "local slot out of range");
      return true;
    }
    AK Want = I.Op == Opcode::IStore ? AK::Int : AK::Ref;
    pop(S, Want, PC, "store");
    S.Locals[I.A] = Want;
    return true;
  }
  case Opcode::IInc: {
    if (static_cast<uint32_t>(I.A) >= NumLocals) {
      error(PC, "local slot out of range");
      return true;
    }
    if (S.Locals[I.A] != AK::Int)
      error(PC, "iinc on a non-int local");
    return true;
  }
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::IDiv:
  case Opcode::IRem:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::IXor:
  case Opcode::IShl:
  case Opcode::IShr:
    pop(S, AK::Int, PC, "rhs");
    pop(S, AK::Int, PC, "lhs");
    S.Stack.push_back(AK::Int);
    return true;
  case Opcode::INeg:
    pop(S, AK::Int, PC, "operand");
    S.Stack.push_back(AK::Int);
    return true;
  case Opcode::Goto:
    flowTo(static_cast<uint32_t>(I.A), S, PC);
    return false;
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfLe:
  case Opcode::IfGt:
  case Opcode::IfGe:
    pop(S, AK::Int, PC, "condition");
    flowTo(static_cast<uint32_t>(I.A), S, PC);
    return true;
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpGe:
    pop(S, AK::Int, PC, "rhs");
    pop(S, AK::Int, PC, "lhs");
    flowTo(static_cast<uint32_t>(I.A), S, PC);
    return true;
  case Opcode::New:
    if (static_cast<uint32_t>(I.A) >= P.hierarchy().numClasses())
      error(PC, "new of an unknown class");
    S.Stack.push_back(AK::Ref);
    return true;
  case Opcode::GetField:
    pop(S, AK::Ref, PC, "receiver");
    S.Stack.push_back(AK::Int);
    return true;
  case Opcode::PutField:
    pop(S, AK::Int, PC, "field value");
    pop(S, AK::Ref, PC, "receiver");
    return true;
  case Opcode::AConstNull:
    S.Stack.push_back(AK::Ref);
    return true;
  case Opcode::ClassEq:
    if (static_cast<uint32_t>(I.A) >= P.hierarchy().numClasses())
      error(PC, "classeq against an unknown class");
    pop(S, AK::Ref, PC, "receiver");
    S.Stack.push_back(AK::Int);
    return true;
  case Opcode::InvokeStatic: {
    if (static_cast<uint32_t>(I.A) >= P.numMethods()) {
      error(PC, "call to an unknown method");
      return true;
    }
    const Method &Callee = P.method(static_cast<MethodId>(I.A));
    if (Callee.isVirtual())
      error(PC, "invokestatic targets a virtual method");
    if (static_cast<uint32_t>(I.B) != Callee.numArgs())
      error(PC, "call arity does not match the callee signature");
    for (size_t ArgIdx = Callee.ArgKinds.size(); ArgIdx-- > 0;)
      pop(S, fromValKind(Callee.ArgKinds[ArgIdx]), PC, "argument");
    if (Callee.HasResult)
      S.Stack.push_back(fromValKind(Callee.ResultKind));
    return true;
  }
  case Opcode::InvokeVirtual: {
    if (static_cast<uint32_t>(I.A) >= Sigs.size()) {
      error(PC, "call through an unknown selector");
      return true;
    }
    const SelectorSig &Sig = Sigs[I.A];
    if (!Sig.Known) {
      error(PC, "call through a selector with no implementations");
      return true;
    }
    if (static_cast<uint32_t>(I.B) != Sig.ArgKinds.size())
      error(PC, "call arity does not match the selector signature");
    for (size_t ArgIdx = Sig.ArgKinds.size(); ArgIdx-- > 0;)
      pop(S, fromValKind(Sig.ArgKinds[ArgIdx]), PC, "argument");
    if (Sig.HasResult)
      S.Stack.push_back(fromValKind(Sig.ResultKind));
    return true;
  }
  case Opcode::Return:
    if (M.HasResult)
      error(PC, "void return from a method that declares a result");
    return false;
  case Opcode::IReturn:
    if (!M.HasResult || M.ResultKind != ValKind::Int)
      error(PC, "ireturn from a method that does not return an int");
    pop(S, AK::Int, PC, "return value");
    return false;
  case Opcode::AReturn:
    if (!M.HasResult || M.ResultKind != ValKind::Ref)
      error(PC, "areturn from a method that does not return a ref");
    pop(S, AK::Ref, PC, "return value");
    return false;
  case Opcode::Work:
    if (I.A < 1)
      error(PC, "work must model at least one cycle");
    return true;
  case Opcode::Print:
    pop(S, AK::Int, PC, "printed value");
    return true;
  case Opcode::Halt:
    return false;
  case Opcode::Spawn: {
    if (static_cast<uint32_t>(I.A) >= P.numMethods()) {
      error(PC, "spawn of an unknown method");
      return true;
    }
    const Method &Callee = P.method(static_cast<MethodId>(I.A));
    if (Callee.isVirtual() || Callee.numArgs() != 0 || Callee.HasResult)
      error(PC, "spawn target must be static, argumentless, and void");
    return true;
  }
  }
  error(PC, "unknown opcode");
  return true;
}

void MethodVerifier::run() {
  if (Code.empty()) {
    error(0, "method has no body");
    return;
  }
  if (NumLocals < M.numArgs()) {
    error(0, "fewer locals than arguments");
    return;
  }
  if (M.isVirtual() &&
      (M.ArgKinds.empty() || M.ArgKinds[0] != ValKind::Ref)) {
    error(0, "virtual method receiver must be a ref");
    return;
  }

  // Pre-pass: every branch target must be in range (flowTo also checks,
  // but unreachable branches should be diagnosed too).
  for (uint32_t PC = 0, E = static_cast<uint32_t>(Code.size()); PC != E; ++PC)
    if (isBranch(Code[PC].Op) &&
        (Code[PC].A < 0 || static_cast<size_t>(Code[PC].A) >= Code.size()))
      error(PC, "branch target out of range");

  AbsState Entry;
  Entry.Locals.assign(NumLocals, AK::Uninit);
  for (size_t I = 0, E = M.ArgKinds.size(); I != E; ++I)
    Entry.Locals[I] = fromValKind(M.ArgKinds[I]);

  InStates.assign(Code.size(), std::nullopt);
  InStates[0] = Entry;
  Worklist.push_back(0);

  size_t ErrorsAtStart = Errors.size();
  while (!Worklist.empty()) {
    // Cascading diagnostics from a broken method are noise; stop early.
    if (Errors.size() > ErrorsAtStart + 8)
      break;
    uint32_t PC = Worklist.front();
    Worklist.pop_front();
    AbsState S = *InStates[PC];
    if (step(PC, S)) {
      if (PC + 1 >= Code.size()) {
        error(PC, "control falls off the end of the method");
        continue;
      }
      flowTo(PC + 1, S, PC);
    }
  }
}

std::vector<SelectorSig> collectSelectorSigs(const Program &P,
                                             std::vector<std::string> &Errors) {
  std::vector<SelectorSig> Sigs(P.hierarchy().numSelectors());
  for (size_t MI = 0, ME = P.numMethods(); MI != ME; ++MI) {
    const Method &M = P.method(static_cast<MethodId>(MI));
    if (!M.isVirtual())
      continue;
    SelectorSig &Sig = Sigs[M.Selector];
    if (!Sig.Known) {
      Sig.Known = true;
      Sig.ArgKinds = M.ArgKinds;
      Sig.HasResult = M.HasResult;
      Sig.ResultKind = M.ResultKind;
      continue;
    }
    if (Sig.ArgKinds != M.ArgKinds || Sig.HasResult != M.HasResult ||
        (Sig.HasResult && Sig.ResultKind != M.ResultKind))
      Errors.push_back("selector '" +
                       P.hierarchy().selectorName(M.Selector) +
                       "' has implementations with mismatched signatures");
  }
  return Sigs;
}

} // namespace

VerifyResult bc::verifyMethodBody(const Program &P, MethodId Id,
                                  const std::vector<Instruction> &Code,
                                  uint32_t NumLocals) {
  VerifyResult Result;
  std::vector<SelectorSig> Sigs = collectSelectorSigs(P, Result.Errors);
  MethodVerifier MV(P, P.method(Id), Code, NumLocals, Sigs, Result.Errors);
  MV.run();
  return Result;
}

VerifyResult bc::verifyProgram(const Program &P) {
  VerifyResult Result;
  std::vector<SelectorSig> Sigs = collectSelectorSigs(P, Result.Errors);

  // Entry method must be static and parameterless: the VM invokes it with
  // an empty frame.
  const Method &Entry = P.method(P.entryMethod());
  if (Entry.isVirtual() || Entry.numArgs() != 0)
    Result.Errors.push_back("entry method '" + Entry.Name +
                            "' must be static with no arguments");

  // Call-site table integrity: every call instruction carries a site id
  // that maps back to exactly this (method, pc).
  for (size_t MI = 0, ME = P.numMethods(); MI != ME; ++MI) {
    const Method &M = P.method(static_cast<MethodId>(MI));
    for (uint32_t PC = 0, E = static_cast<uint32_t>(M.Code.size()); PC != E;
         ++PC) {
      const Instruction &I = M.Code[PC];
      if (!isCall(I.Op))
        continue;
      if (I.Site >= P.numSites()) {
        Result.Errors.push_back(
            "method '" + P.qualifiedName(M.Id) + "' pc " +
            std::to_string(PC) + " (" + opcodeName(I.Op) +
            "): call with an unknown site id " + std::to_string(I.Site));
        continue;
      }
      const SiteInfo &Info = P.site(I.Site);
      if (Info.Caller != M.Id || Info.PC != PC)
        Result.Errors.push_back(
            "method '" + P.qualifiedName(M.Id) + "' pc " +
            std::to_string(PC) + " (" + opcodeName(I.Op) +
            "): call site table mismatch (site " + std::to_string(I.Site) +
            " maps to method " + std::to_string(Info.Caller) + " pc " +
            std::to_string(Info.PC) + ")");
    }
    MethodVerifier MV(P, M, M.Code, M.NumLocals, Sigs, Result.Errors);
    MV.run();
  }
  return Result;
}
