//===- bytecode/Printer.cpp - Disassembler --------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Printer.h"

#include <sstream>

using namespace cbs;
using namespace cbs::bc;

std::string bc::printInstruction(const Program &P, const Instruction &I) {
  std::ostringstream OS;
  OS << opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::IConst:
  case Opcode::ILoad:
  case Opcode::IStore:
  case Opcode::ALoad:
  case Opcode::AStore:
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::Work:
    OS << ' ' << I.A;
    break;
  case Opcode::IInc:
    OS << ' ' << I.A << ' ' << I.B;
    break;
  case Opcode::Goto:
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfLe:
  case Opcode::IfGt:
  case Opcode::IfGe:
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpGe:
    OS << " -> " << I.A;
    break;
  case Opcode::New:
  case Opcode::ClassEq:
    OS << ' ' << P.hierarchy().classOf(static_cast<ClassId>(I.A)).Name;
    break;
  case Opcode::InvokeStatic:
    OS << ' ' << P.qualifiedName(static_cast<MethodId>(I.A)) << " (site "
       << I.Site << ')';
    break;
  case Opcode::InvokeVirtual:
    OS << ' ' << P.hierarchy().selectorName(static_cast<SelectorId>(I.A))
       << "/" << I.B << " (site " << I.Site << ')';
    break;
  case Opcode::Spawn:
    OS << ' ' << P.qualifiedName(static_cast<MethodId>(I.A));
    break;
  default:
    break;
  }
  return OS.str();
}

std::string bc::printCode(const Program &P, MethodId Id,
                          const std::vector<Instruction> &Code) {
  std::ostringstream OS;
  OS << P.qualifiedName(Id) << ":\n";
  for (size_t PC = 0, E = Code.size(); PC != E; ++PC)
    OS << "  " << PC << ": " << printInstruction(P, Code[PC]) << '\n';
  return OS.str();
}

std::string bc::printMethod(const Program &P, MethodId Id) {
  const Method &M = P.method(Id);
  std::ostringstream OS;
  OS << (M.isVirtual() ? "virtual " : "static ") << P.qualifiedName(Id) << '/'
     << M.numArgs() << " locals=" << M.NumLocals
     << " size=" << M.sizeBytes() << "B\n";
  OS << printCode(P, Id, M.Code);
  return OS.str();
}

std::string bc::printProgram(const Program &P) {
  std::ostringstream OS;
  OS << "program: " << P.numMethods() << " methods, "
     << P.hierarchy().numClasses() << " classes, " << P.numSites()
     << " call sites, " << P.totalSizeBytes() << " bytecode bytes\n";
  for (size_t I = 0, E = P.numMethods(); I != E; ++I)
    OS << printMethod(P, static_cast<MethodId>(I));
  return OS.str();
}
