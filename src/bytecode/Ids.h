//===- bytecode/Ids.h - Entity identifiers ----------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer identifiers for program entities. All cross-references inside a
/// Program use these ids rather than pointers, which keeps programs
/// relocatable (the inliner and optimizer copy code freely) and makes the
/// dynamic call graph a map over small integer keys.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_BYTECODE_IDS_H
#define CBSVM_BYTECODE_IDS_H

#include <cstdint>
#include <limits>

namespace cbs::bc {

/// Identifies a method within a Program.
using MethodId = uint32_t;
/// Identifies a class within a Program's hierarchy.
using ClassId = uint32_t;
/// Identifies a virtual-dispatch selector (method name + arity).
using SelectorId = uint32_t;
/// Identifies a call site. Site ids are unique across the whole Program
/// and survive inlining: a call instruction copied into another method
/// keeps its original site id, which is how the profiler attributes
/// guard-fallback calls to the right source site.
using SiteId = uint32_t;

inline constexpr MethodId InvalidMethodId =
    std::numeric_limits<MethodId>::max();
inline constexpr ClassId InvalidClassId = std::numeric_limits<ClassId>::max();
inline constexpr SelectorId InvalidSelectorId =
    std::numeric_limits<SelectorId>::max();
inline constexpr SiteId InvalidSiteId = std::numeric_limits<SiteId>::max();

/// The kind of a runtime value; the verifier enforces kind discipline so
/// the interpreter can store everything in untyped 64-bit slots.
enum class ValKind : uint8_t {
  Int, ///< 64-bit signed integer.
  Ref, ///< Heap reference (0 is null).
};

} // namespace cbs::bc

#endif // CBSVM_BYTECODE_IDS_H
