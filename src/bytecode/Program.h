//===- bytecode/Program.h - Whole-program container -------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program owns the class hierarchy, all methods, and the call-site
/// table. Programs are immutable once finished by ProgramBuilder; the VM
/// layers compiled method versions on top without touching the original
/// bytecode.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_BYTECODE_PROGRAM_H
#define CBSVM_BYTECODE_PROGRAM_H

#include "bytecode/ClassHierarchy.h"
#include "bytecode/Method.h"

#include <cassert>
#include <string>
#include <vector>

namespace cbs::bc {

/// Where a call site syntactically lives: its declaring method and the
/// instruction index within that method's original code.
struct SiteInfo {
  MethodId Caller = InvalidMethodId;
  uint32_t PC = 0;
};

class Program {
public:
  const Method &method(MethodId Id) const {
    assert(Id < Methods.size() && "unknown method");
    return Methods[Id];
  }
  size_t numMethods() const { return Methods.size(); }

  const ClassHierarchy &hierarchy() const { return Hierarchy; }

  MethodId entryMethod() const { return Entry; }

  const SiteInfo &site(SiteId Id) const {
    assert(Id < Sites.size() && "unknown call site");
    return Sites[Id];
  }
  size_t numSites() const { return Sites.size(); }

  /// Human-readable "Class::name" or plain name for static methods.
  std::string qualifiedName(MethodId Id) const;

  /// Total modelled bytecode bytes over all methods.
  uint64_t totalSizeBytes() const;

  /// Deterministic FNV-1a 64 hash of the whole program: every method
  /// (signature and bytecode), every call site, the resolved class
  /// hierarchy, and the entry point. Two programs hash equal iff the VM
  /// would execute them identically, so a persisted profile stamped
  /// with this hash can be rejected when the program changed (the
  /// profile's numeric ids would silently point at different code).
  uint64_t contentHash() const;

private:
  friend class ProgramBuilder;

  ClassHierarchy Hierarchy;
  std::vector<Method> Methods;
  std::vector<SiteInfo> Sites;
  MethodId Entry = InvalidMethodId;
};

} // namespace cbs::bc

#endif // CBSVM_BYTECODE_PROGRAM_H
