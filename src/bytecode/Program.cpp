//===- bytecode/Program.cpp - Whole-program container ---------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Program.h"

using namespace cbs;
using namespace cbs::bc;

std::string Program::qualifiedName(MethodId Id) const {
  const Method &M = method(Id);
  if (M.Owner == InvalidClassId)
    return M.Name;
  return Hierarchy.classOf(M.Owner).Name + "::" + M.Name;
}

uint64_t Program::totalSizeBytes() const {
  uint64_t Total = 0;
  for (const Method &M : Methods)
    Total += M.sizeBytes();
  return Total;
}

namespace {

/// FNV-1a 64. Every multi-byte value is folded byte-at-a-time in a
/// fixed little-endian order, so the hash is identical across hosts.
struct Fnv1a {
  uint64_t H = 0xcbf29ce484222325ull;

  void byte(uint8_t B) {
    H ^= B;
    H *= 0x100000001b3ull;
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      byte(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u32(uint32_t V) { u64(V); }
  void str(const std::string &S) {
    u64(S.size());
    for (char C : S)
      byte(static_cast<uint8_t>(C));
  }
};

} // namespace

uint64_t Program::contentHash() const {
  Fnv1a H;
  H.u64(Methods.size());
  for (const Method &M : Methods) {
    H.str(M.Name);
    H.u32(M.Owner);
    H.u32(M.Selector);
    H.u64(M.ArgKinds.size());
    for (ValKind K : M.ArgKinds)
      H.byte(static_cast<uint8_t>(K));
    H.byte(M.HasResult ? 1 : 0);
    H.byte(static_cast<uint8_t>(M.ResultKind));
    H.u32(M.NumLocals);
    H.u64(M.Code.size());
    for (const Instruction &I : M.Code) {
      H.byte(static_cast<uint8_t>(I.Op));
      H.u32(static_cast<uint32_t>(I.A));
      H.u32(static_cast<uint32_t>(I.B));
      H.u32(I.Site);
    }
  }
  H.u64(Sites.size());
  for (const SiteInfo &S : Sites) {
    H.u32(S.Caller);
    H.u32(S.PC);
  }
  const ClassHierarchy &CH = Hierarchy;
  H.u64(CH.numClasses());
  for (ClassId C = 0; C < CH.numClasses(); ++C) {
    const ClassType &CT = CH.classOf(C);
    H.str(CT.Name);
    H.u32(CT.Super);
    H.u32(CT.NumFields);
    H.u64(CT.VTable.size());
    for (MethodId M : CT.VTable)
      H.u32(M);
  }
  H.u64(CH.numSelectors());
  for (SelectorId S = 0; S < CH.numSelectors(); ++S) {
    H.str(CH.selectorName(S));
    H.u32(CH.selectorNumArgs(S));
  }
  H.u32(Entry);
  return H.H;
}
