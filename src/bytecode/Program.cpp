//===- bytecode/Program.cpp - Whole-program container ---------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Program.h"

using namespace cbs;
using namespace cbs::bc;

std::string Program::qualifiedName(MethodId Id) const {
  const Method &M = method(Id);
  if (M.Owner == InvalidClassId)
    return M.Name;
  return Hierarchy.classOf(M.Owner).Name + "::" + M.Name;
}

uint64_t Program::totalSizeBytes() const {
  uint64_t Total = 0;
  for (const Method &M : Methods)
    Total += M.sizeBytes();
  return Total;
}
