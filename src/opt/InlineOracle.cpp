//===- opt/InlineOracle.cpp - Inlining policies -----------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "opt/InlineOracle.h"

#include "bytecode/Program.h"

#include <algorithm>

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::opt;

InlineOracle::~InlineOracle() = default;

bool opt::chaMonomorphic(const Program &P, SelectorId Selector,
                         MethodId &Target) {
  Target = InvalidMethodId;
  for (size_t M = 0, E = P.numMethods(); M != E; ++M) {
    const Method &Meth = P.method(static_cast<MethodId>(M));
    if (!Meth.isVirtual() || Meth.Selector != Selector)
      continue;
    if (Target != InvalidMethodId)
      return false;
    Target = Meth.Id;
  }
  return Target != InvalidMethodId;
}

namespace {

/// Iterates every call site in the program, handing the visitor the
/// site id and the call instruction.
template <typename Fn> void forEachSite(const Program &P, Fn &&Visit) {
  for (size_t M = 0, E = P.numMethods(); M != E; ++M) {
    const Method &Meth = P.method(static_cast<MethodId>(M));
    for (const Instruction &I : Meth.Code)
      if (isCall(I.Op))
        Visit(I.Site, I);
  }
}

/// Adds the trivial-inlining decisions every oracle shares: tiny static
/// callees, and tiny unique-implementation virtual callees
/// (CHA devirtualization). Returns true if a decision was placed so
/// callers can skip further handling of the site.
bool trivialDecision(const Program &P, const Instruction &I,
                     InlineDecision &D) {
  if (I.Op == Opcode::InvokeStatic) {
    const Method &Callee = P.method(static_cast<MethodId>(I.A));
    if (Callee.sizeBytes() > TrivialSizeBytes)
      return false;
    D.K = InlineDecision::Kind::Direct;
    D.Target = Callee.Id;
    return true;
  }
  MethodId Target;
  if (!chaMonomorphic(P, static_cast<SelectorId>(I.A), Target))
    return false;
  if (P.method(Target).sizeBytes() > TrivialSizeBytes)
    return false;
  D.K = InlineDecision::Kind::Direct;
  D.Target = Target;
  return true;
}

/// Builds the guarded-target list for a virtual site: profile targets
/// whose share of the site distribution is at least \p MinShare, sized
/// under \p SizeThreshold, at most \p MaxTargets of them.
std::vector<GuardedTarget>
pickGuardedTargets(const Program &P, const prof::DCGSnapshot &DCG,
                   SiteId Site, SelectorId Selector, double MinShare,
                   uint32_t SizeThreshold, uint32_t MaxTargets) {
  std::vector<GuardedTarget> Result;
  auto Dist = DCG.siteDistribution(Site);
  if (Dist.empty())
    return Result;
  uint64_t SiteTotal = 0;
  for (const auto &[Edge, Weight] : Dist)
    SiteTotal += Weight;
  for (const auto &[Edge, Weight] : Dist) {
    if (Result.size() >= MaxTargets)
      break;
    double Share =
        static_cast<double>(Weight) / static_cast<double>(SiteTotal);
    if (Share < MinShare)
      break; // Distribution is sorted, so everything later is smaller.
    const Method &Callee = P.method(Edge.Callee);
    if (Callee.sizeBytes() > SizeThreshold)
      continue;
    GuardedTarget GT;
    GT.Target = Edge.Callee;
    GT.GuardClasses = P.hierarchy().receiversOf(Selector, Edge.Callee);
    if (GT.GuardClasses.empty())
      continue;
    Result.push_back(std::move(GT));
  }
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// TrivialOracle
//===----------------------------------------------------------------------===//

InlinePlan TrivialOracle::plan(const Program &P,
                               const prof::DCGSnapshot &) const {
  InlinePlan Plan;
  forEachSite(P, [&](SiteId Site, const Instruction &I) {
    InlineDecision D;
    if (trivialDecision(P, I, D))
      Plan.Decisions[Site] = D;
  });
  return Plan;
}

//===----------------------------------------------------------------------===//
// OldJikesOracle
//===----------------------------------------------------------------------===//

InlinePlan OldJikesOracle::plan(const Program &P,
                                const prof::DCGSnapshot &DCG) const {
  InlinePlan Plan;
  forEachSite(P, [&](SiteId Site, const Instruction &I) {
    InlineDecision D;
    if (trivialDecision(P, I, D)) {
      Plan.Decisions[Site] = D;
      return;
    }
    // Everything non-trivial requires a *hot* edge: > 1% of total DCG
    // weight. Profile data below that is completely ignored.
    if (I.Op == Opcode::InvokeStatic) {
      const Method &Callee = P.method(static_cast<MethodId>(I.A));
      if (DCG.fraction({Site, Callee.Id}) > Config.HotEdgeFraction &&
          Callee.sizeBytes() <= Config.HotSizeBytes) {
        D.K = InlineDecision::Kind::Direct;
        D.Target = Callee.Id;
        Plan.Decisions[Site] = D;
      }
      return;
    }
    // Virtual: guarded inlining of the single hottest target, only if
    // its edge alone is hot.
    auto Dist = DCG.siteDistribution(Site);
    if (Dist.empty())
      return;
    const auto &[TopEdge, TopWeight] = Dist.front();
    if (DCG.fraction(TopEdge) <= Config.HotEdgeFraction)
      return;
    const Method &Callee = P.method(TopEdge.Callee);
    if (Callee.sizeBytes() > Config.HotSizeBytes)
      return;
    GuardedTarget GT;
    GT.Target = TopEdge.Callee;
    GT.GuardClasses = P.hierarchy().receiversOf(
        static_cast<SelectorId>(I.A), TopEdge.Callee);
    if (GT.GuardClasses.empty())
      return;
    D.K = InlineDecision::Kind::Guarded;
    D.Guarded.push_back(std::move(GT));
    Plan.Decisions[Site] = D;
  });
  return Plan;
}

//===----------------------------------------------------------------------===//
// NewJikesOracle
//===----------------------------------------------------------------------===//

InlinePlan NewJikesOracle::plan(const Program &P,
                                const prof::DCGSnapshot &DCG) const {
  InlinePlan Plan;
  forEachSite(P, [&](SiteId Site, const Instruction &I) {
    InlineDecision D;
    if (trivialDecision(P, I, D)) {
      Plan.Decisions[Site] = D;
      return;
    }

    // Edge weight feeds a bounded linear size threshold: hotter sites
    // may inline larger callees; there is no hot/cold cliff.
    auto thresholdFor = [&](double EdgeFraction) {
      double T = Config.BaseSizeBytes +
                 Config.SlopePerPercent * (100.0 * EdgeFraction);
      return static_cast<uint32_t>(
          std::min<double>(T, Config.MaxSizeBytes));
    };

    if (I.Op == Opcode::InvokeStatic) {
      const Method &Callee = P.method(static_cast<MethodId>(I.A));
      if (Callee.sizeBytes() <=
          thresholdFor(DCG.fraction({Site, Callee.Id}))) {
        D.K = InlineDecision::Kind::Direct;
        D.Target = Callee.Id;
        Plan.Decisions[Site] = D;
      }
      return;
    }

    // Virtual: the 40% distribution rule picks guarded targets.
    uint64_t SiteTotal = 0;
    for (const auto &[Edge, Weight] : DCG.siteDistribution(Site))
      SiteTotal += Weight;
    double SiteFraction =
        DCG.totalWeight() == 0
            ? 0.0
            : static_cast<double>(SiteTotal) /
                  static_cast<double>(DCG.totalWeight());
    std::vector<GuardedTarget> Targets = pickGuardedTargets(
        P, DCG, Site, static_cast<SelectorId>(I.A), Config.GuardedMinShare,
        thresholdFor(SiteFraction), Config.MaxGuardedTargets);
    if (Targets.empty())
      return;
    D.K = InlineDecision::Kind::Guarded;
    D.Guarded = std::move(Targets);
    Plan.Decisions[Site] = D;
  });
  return Plan;
}

//===----------------------------------------------------------------------===//
// J9Oracle
//===----------------------------------------------------------------------===//

InlinePlan J9Oracle::plan(const Program &P,
                          const prof::DCGSnapshot &DCG) const {
  InlinePlan Plan;
  bool Dynamic =
      Config.UseDynamic && DCG.totalWeight() >= Config.MinProfileWeight;

  forEachSite(P, [&](SiteId Site, const Instruction &I) {
    InlineDecision D;
    bool Trivial = trivialDecision(P, I, D);

    uint64_t SiteTotal = 0;
    for (const auto &[Edge, Weight] : DCG.siteDistribution(Site))
      SiteTotal += Weight;
    double SiteFraction =
        DCG.totalWeight() == 0
            ? 0.0
            : static_cast<double>(SiteTotal) /
                  static_cast<double>(DCG.totalWeight());

    // Dynamic heuristics: cold sites override the static decision and
    // are not inlined at all (§5.2). Trivial callees are exempt — the
    // guard is cheaper than the call either way.
    if (Dynamic && !Trivial && SiteFraction < Config.ColdSiteFraction)
      return;
    if (Trivial) {
      Plan.Decisions[Site] = D;
      return;
    }

    uint32_t Threshold = Config.StaticSizeBytes;
    if (Dynamic) {
      double T = Config.StaticSizeBytes +
                 Config.BoostPerPercent * (100.0 * SiteFraction);
      Threshold =
          static_cast<uint32_t>(std::min<double>(T, Config.MaxSizeBytes));
    }

    if (I.Op == Opcode::InvokeStatic) {
      const Method &Callee = P.method(static_cast<MethodId>(I.A));
      if (Callee.sizeBytes() <= Threshold) {
        D.K = InlineDecision::Kind::Direct;
        D.Target = Callee.Id;
        Plan.Decisions[Site] = D;
      }
      return;
    }

    // Virtual sites.
    SelectorId Selector = static_cast<SelectorId>(I.A);
    if (Dynamic) {
      std::vector<GuardedTarget> Targets =
          pickGuardedTargets(P, DCG, Site, Selector, Config.GuardedMinShare,
                             Threshold, Config.MaxGuardedTargets);
      if (Targets.empty())
        return;
      D.K = InlineDecision::Kind::Guarded;
      D.Guarded = std::move(Targets);
      Plan.Decisions[Site] = D;
      return;
    }

    // Static-only virtual handling: CHA devirtualization under the
    // static threshold; polymorphic sites get guarded inlining of every
    // implementation when there are at most two, all under threshold.
    MethodId Mono;
    if (chaMonomorphic(P, Selector, Mono)) {
      if (P.method(Mono).sizeBytes() <= Threshold) {
        D.K = InlineDecision::Kind::Direct;
        D.Target = Mono;
        Plan.Decisions[Site] = D;
      }
      return;
    }
    std::vector<MethodId> Impls;
    for (size_t M = 0, E = P.numMethods(); M != E; ++M) {
      const Method &Meth = P.method(static_cast<MethodId>(M));
      if (Meth.isVirtual() && Meth.Selector == Selector)
        Impls.push_back(Meth.Id);
    }
    if (Impls.size() > 2)
      return;
    for (MethodId Impl : Impls) {
      if (P.method(Impl).sizeBytes() > Threshold)
        return;
    }
    for (MethodId Impl : Impls) {
      GuardedTarget GT;
      GT.Target = Impl;
      GT.GuardClasses = P.hierarchy().receiversOf(Selector, Impl);
      if (GT.GuardClasses.empty())
        return;
      D.Guarded.push_back(std::move(GT));
    }
    D.K = InlineDecision::Kind::Guarded;
    Plan.Decisions[Site] = D;
  });
  return Plan;
}
