//===- opt/Passes.h - Bytecode optimization passes --------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizer passes that give inlining its *indirect* benefit (the
/// paper's §1: small methods restrict the scope of optimization; once
/// bodies are spliced into the caller, these passes can fold across the
/// former call boundary). Each pass is semantics-preserving — the test
/// suite checks this by differential execution against unoptimized
/// code — and is expressed over the flat instruction vector:
///
///  - foldConstants: IConst/IConst/binop → IConst; constant conditions
///    → Goto/fall-through. Trapping division by a constant zero is
///    never folded.
///  - propagateLocalConstants: per-block tracking of locals holding
///    known constants (inlined arguments, typically) rewrites ILoad
///    into IConst.
///  - simplifyBranches: collapses goto→goto chains and gotos to the
///    next instruction.
///  - removeUnreachable: nops out instructions no path reaches.
///  - fuseWork: merges adjacent Work instructions (code-size, not
///    cycle, savings).
///  - removeNops: compacts nops away, remapping branch targets (and
///    any caller-supplied tracked-PC side table, e.g. OSR points).
///
/// All passes return true if they changed the code.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_OPT_PASSES_H
#define CBSVM_OPT_PASSES_H

#include "bytecode/Program.h"

#include <vector>

namespace cbs::opt {

bool foldConstants(const bc::Program &P, std::vector<bc::Instruction> &Code);
bool propagateLocalConstants(const bc::Program &P,
                             std::vector<bc::Instruction> &Code);
bool simplifyBranches(const bc::Program &P,
                      std::vector<bc::Instruction> &Code);
bool removeUnreachable(const bc::Program &P,
                       std::vector<bc::Instruction> &Code);
bool fuseWork(const bc::Program &P, std::vector<bc::Instruction> &Code);

/// Compacts nops away. \p TrackedPCs, when given, is a side table of
/// code-space PCs remapped in place under the same
/// first-kept-at-or-after rule as branch targets (the compiler tracks
/// OSR-point locations through the pipeline this way). removeNops is
/// the only pass that moves instructions; every other pass rewrites in
/// place, so a side table stays valid across them for free.
bool removeNops(const bc::Program &P, std::vector<bc::Instruction> &Code,
                std::vector<uint32_t> *TrackedPCs = nullptr);

/// Removes stores to locals that are never read anywhere in the method,
/// when the stored value comes from an adjacent side-effect-free
/// producer. This is what cleans up spilled-then-constant-propagated
/// inlined arguments.
bool removeDeadStores(const bc::Program &P,
                      std::vector<bc::Instruction> &Code);

/// Marks every instruction that is the target of some branch.
std::vector<bool> computeBranchTargets(const std::vector<bc::Instruction> &Code);

} // namespace cbs::opt

#endif // CBSVM_OPT_PASSES_H
