//===- opt/InlinePlan.h - Per-site inlining decisions -----------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface between inline oracles (policy) and the bytecode
/// inliner (mechanism): a map from call site to decision. Oracles build
/// plans from the dynamic call graph; the inliner applies them when a
/// method is (re)compiled.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_OPT_INLINEPLAN_H
#define CBSVM_OPT_INLINEPLAN_H

#include "bytecode/Ids.h"

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace cbs::opt {

/// One predicted target of a guarded (virtual) inline: the callee body
/// to splice plus the receiver classes whose dispatch reaches it (the
/// guard tests).
struct GuardedTarget {
  bc::MethodId Target = bc::InvalidMethodId;
  std::vector<bc::ClassId> GuardClasses;
};

struct InlineDecision {
  enum class Kind : uint8_t {
    None,    ///< leave the call alone
    Direct,  ///< replace the call with the (single, safe) target's body
    Guarded, ///< class-test guards with an unmodified fallback call
  };

  Kind K = Kind::None;
  /// Direct: the callee (the static target, or the unique CHA target of
  /// a devirtualized monomorphic virtual call).
  bc::MethodId Target = bc::InvalidMethodId;
  /// Guarded: predicted targets in priority order.
  std::vector<GuardedTarget> Guarded;
};

struct InlinePlan {
  std::unordered_map<bc::SiteId, InlineDecision> Decisions;
  /// Monotone plan counter stamped by the adaptive system (0 for plans
  /// built outside it) and the epoch of the DCG snapshot the plan was
  /// derived from. Compiled methods carry both so stale speculation can
  /// be detected after the fact.
  uint64_t Generation = 0;
  uint64_t ProfileEpoch = 0;

  const InlineDecision *decisionFor(bc::SiteId Site) const {
    auto It = Decisions.find(Site);
    return It == Decisions.end() ? nullptr : &It->second;
  }

  size_t size() const { return Decisions.size(); }
};

} // namespace cbs::opt

#endif // CBSVM_OPT_INLINEPLAN_H
