//===- opt/Inliner.h - Bytecode inlining transformation ---------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inlining transformation: splices callee bodies into a caller
/// according to an InlinePlan.
///
///  - Direct inlining replaces the call with the callee body: arguments
///    are spilled from the operand stack into fresh locals, the body is
///    copied with locals remapped, and its returns become jumps past the
///    splice (the return value, if any, stays on the stack).
///  - Guarded inlining (for virtual sites) emits exact-class tests
///    against each predicted target's receiver classes, the inlined
///    bodies on the hit paths, and the original virtual call on the
///    fallback path. The fallback call keeps its original site id, so
///    profilers keep attributing residual calls correctly.
///
/// Inlining is applied recursively (nested sites inside spliced bodies
/// are expanded too) up to a depth limit, a result-size budget, and
/// with recursion cycles cut. Output always passes the verifier; the
/// test suite additionally checks semantic equivalence by differential
/// execution.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_OPT_INLINER_H
#define CBSVM_OPT_INLINER_H

#include "bytecode/Program.h"
#include "opt/InlinePlan.h"
#include "vm/CompiledMethod.h"

namespace cbs::opt {

struct InlinerOptions {
  /// Maximum nesting of spliced bodies.
  uint32_t MaxDepth = 4;
  /// Stop expanding once the rewritten method reaches this many
  /// instructions (the paper's "bounded by a maximum allowable size").
  uint32_t MaxResultInstructions = 1500;
  /// Skip a guarded target whose receiver set needs more tests than
  /// this (guards would cost more than the dispatch).
  uint32_t MaxGuardClassesPerTarget = 2;
};

struct InlineResult {
  std::vector<bc::Instruction> Code;
  uint32_t NumLocals = 0;
  /// Callee bodies spliced in (all nesting levels).
  uint32_t InlinedBodies = 0;
  /// Expansions skipped because of the size budget.
  uint32_t BudgetSkips = 0;
  /// One record per guarded virtual site actually expanded (at any
  /// nesting level): the site and the highest-priority predicted
  /// callee. These become the compiled version's speculation guards.
  std::vector<vm::SpeculationGuard> Speculations;
  /// RootMap[PC] = where the root method's original instruction at
  /// \p PC landed in Code. Every original instruction begins exactly
  /// one region of the rewritten code (calls expand in place), so the
  /// map is total. The compiler projects the root's loop headers
  /// through it to build the version's OSR-point table.
  std::vector<uint32_t> RootMap;
};

/// Rewrites \p Root's original bytecode under \p Plan. With an empty
/// plan this is an identity copy.
InlineResult inlineMethod(const bc::Program &P, bc::MethodId Root,
                          const InlinePlan &Plan,
                          const InlinerOptions &Options = {});

} // namespace cbs::opt

#endif // CBSVM_OPT_INLINER_H
