//===- opt/Passes.cpp - Bytecode optimization passes ------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <optional>

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::opt;

std::vector<bool>
opt::computeBranchTargets(const std::vector<Instruction> &Code) {
  std::vector<bool> Targets(Code.size(), false);
  for (const Instruction &I : Code)
    if (isBranch(I.Op)) {
      assert(I.A >= 0 && static_cast<size_t>(I.A) < Code.size() &&
             "branch target out of range");
      Targets[I.A] = true;
    }
  return Targets;
}

namespace {

/// Wrap-around arithmetic matching the interpreter exactly.
int64_t evalBinop(Opcode Op, int64_t L, int64_t R) {
  uint64_t UL = static_cast<uint64_t>(L), UR = static_cast<uint64_t>(R);
  switch (Op) {
  case Opcode::IAdd:
    return static_cast<int64_t>(UL + UR);
  case Opcode::ISub:
    return static_cast<int64_t>(UL - UR);
  case Opcode::IMul:
    return static_cast<int64_t>(UL * UR);
  case Opcode::IDiv:
    assert(R != 0 && "folding a trapping division");
    if (L == INT64_MIN && R == -1)
      return INT64_MIN;
    return L / R;
  case Opcode::IRem:
    assert(R != 0 && "folding a trapping remainder");
    if (L == INT64_MIN && R == -1)
      return 0;
    return L % R;
  case Opcode::IAnd:
    return L & R;
  case Opcode::IOr:
    return L | R;
  case Opcode::IXor:
    return L ^ R;
  case Opcode::IShl:
    return static_cast<int64_t>(UL << (UR & 63));
  case Opcode::IShr:
    return L >> (UR & 63);
  default:
    cbsUnreachable("not a foldable binop");
  }
}

bool isFoldableBinop(Opcode Op) {
  switch (Op) {
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::IDiv:
  case Opcode::IRem:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::IXor:
  case Opcode::IShl:
  case Opcode::IShr:
    return true;
  default:
    return false;
  }
}

bool evalCondition(Opcode Op, int64_t V) {
  switch (Op) {
  case Opcode::IfEq:
    return V == 0;
  case Opcode::IfNe:
    return V != 0;
  case Opcode::IfLt:
    return V < 0;
  case Opcode::IfLe:
    return V <= 0;
  case Opcode::IfGt:
    return V > 0;
  case Opcode::IfGe:
    return V >= 0;
  default:
    cbsUnreachable("not a unary condition");
  }
}

bool evalCompare(Opcode Op, int64_t L, int64_t R) {
  switch (Op) {
  case Opcode::IfICmpEq:
    return L == R;
  case Opcode::IfICmpNe:
    return L != R;
  case Opcode::IfICmpLt:
    return L < R;
  case Opcode::IfICmpGe:
    return L >= R;
  default:
    cbsUnreachable("not a binary compare");
  }
}

bool isUnaryCondition(Opcode Op) {
  switch (Op) {
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfLe:
  case Opcode::IfGt:
  case Opcode::IfGe:
    return true;
  default:
    return false;
  }
}

bool isBinaryCompare(Opcode Op) {
  switch (Op) {
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpGe:
    return true;
  default:
    return false;
  }
}

/// Does a call instruction push a result? (Selector result arity is
/// derived from any implementation; the verifier enforces consistency.)
class CallInfo {
public:
  explicit CallInfo(const Program &P) {
    SelectorPushes.assign(P.hierarchy().numSelectors(), false);
    for (size_t M = 0, E = P.numMethods(); M != E; ++M) {
      const Method &Meth = P.method(static_cast<MethodId>(M));
      if (Meth.isVirtual() && Meth.HasResult)
        SelectorPushes[Meth.Selector] = true;
    }
    Prog = &P;
  }

  bool pushesResult(const Instruction &I) const {
    if (I.Op == Opcode::InvokeStatic)
      return Prog->method(static_cast<MethodId>(I.A)).HasResult;
    return SelectorPushes[static_cast<SelectorId>(I.A)];
  }

private:
  const Program *Prog = nullptr;
  std::vector<bool> SelectorPushes;
};

} // namespace

bool opt::foldConstants(const Program &P, std::vector<Instruction> &Code) {
  (void)P;
  std::vector<bool> Targets = computeBranchTargets(Code);
  bool Changed = false;

  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    Opcode Op = Code[I].Op;

    // IConst a; IConst b; binop  ->  nop; nop; IConst(a op b)
    if (I >= 2 && isFoldableBinop(Op) && Code[I - 1].Op == Opcode::IConst &&
        Code[I - 2].Op == Opcode::IConst && !Targets[I] && !Targets[I - 1]) {
      int64_t L = Code[I - 2].A, R = Code[I - 1].A;
      if ((Op == Opcode::IDiv || Op == Opcode::IRem) && R == 0)
        continue; // Preserve the trap.
      int64_t V = evalBinop(Op, L, R);
      if (V < INT32_MIN || V > INT32_MAX)
        continue; // IConst immediates are 32-bit.
      Code[I - 2] = Instruction(Opcode::Nop);
      Code[I - 1] = Instruction(Opcode::Nop);
      Code[I] = Instruction(Opcode::IConst, static_cast<int32_t>(V));
      Changed = true;
      continue;
    }

    // IConst c; ineg -> nop; IConst(-c)
    if (I >= 1 && Op == Opcode::INeg && Code[I - 1].Op == Opcode::IConst &&
        !Targets[I]) {
      int64_t V = -static_cast<int64_t>(Code[I - 1].A);
      if (V < INT32_MIN || V > INT32_MAX)
        continue;
      Code[I - 1] = Instruction(Opcode::Nop);
      Code[I] = Instruction(Opcode::IConst, static_cast<int32_t>(V));
      Changed = true;
      continue;
    }

    // IConst c; if<cond> -> nop; (goto | nop)
    if (I >= 1 && isUnaryCondition(Op) && Code[I - 1].Op == Opcode::IConst &&
        !Targets[I]) {
      bool Taken = evalCondition(Op, Code[I - 1].A);
      Code[I - 1] = Instruction(Opcode::Nop);
      Code[I] = Taken ? Instruction(Opcode::Goto, Code[I].A)
                      : Instruction(Opcode::Nop);
      Changed = true;
      continue;
    }

    // IConst a; IConst b; if_icmp<cond> -> nop; nop; (goto | nop)
    if (I >= 2 && isBinaryCompare(Op) && Code[I - 1].Op == Opcode::IConst &&
        Code[I - 2].Op == Opcode::IConst && !Targets[I] && !Targets[I - 1]) {
      bool Taken = evalCompare(Op, Code[I - 2].A, Code[I - 1].A);
      Code[I - 2] = Instruction(Opcode::Nop);
      Code[I - 1] = Instruction(Opcode::Nop);
      Code[I] = Taken ? Instruction(Opcode::Goto, Code[I].A)
                      : Instruction(Opcode::Nop);
      Changed = true;
      continue;
    }

    // Algebraic identities: IConst 0; iadd/isub  and  IConst 1; imul.
    if (I >= 1 && Code[I - 1].Op == Opcode::IConst && !Targets[I] &&
        ((Code[I - 1].A == 0 &&
          (Op == Opcode::IAdd || Op == Opcode::ISub || Op == Opcode::IOr ||
           Op == Opcode::IXor)) ||
         (Code[I - 1].A == 1 && Op == Opcode::IMul))) {
      Code[I - 1] = Instruction(Opcode::Nop);
      Code[I] = Instruction(Opcode::Nop);
      Changed = true;
      continue;
    }
  }
  return Changed;
}

bool opt::propagateLocalConstants(const Program &P,
                                  std::vector<Instruction> &Code) {
  CallInfo Calls(P);
  std::vector<bool> Targets = computeBranchTargets(Code);
  bool Changed = false;

  // Abstract state: known-constant locals, plus a *suffix* model of the
  // operand stack (only the values we have tracked since the last
  // unknown point). Both reset at block leaders.
  std::vector<std::optional<int64_t>> Locals;
  std::vector<std::optional<int64_t>> Stack;

  auto reset = [&] {
    Locals.assign(Locals.size(), std::nullopt);
    Stack.clear();
  };
  uint32_t MaxSlot = 0;
  for (const Instruction &I : Code)
    switch (I.Op) {
    case Opcode::ILoad:
    case Opcode::IStore:
    case Opcode::IInc:
    case Opcode::ALoad:
    case Opcode::AStore:
      MaxSlot = std::max(MaxSlot, static_cast<uint32_t>(I.A));
      break;
    default:
      break;
    }
  Locals.assign(MaxSlot + 1, std::nullopt);

  auto pop = [&]() -> std::optional<int64_t> {
    if (Stack.empty())
      return std::nullopt;
    std::optional<int64_t> V = Stack.back();
    Stack.pop_back();
    return V;
  };
  auto popN = [&](unsigned N) {
    for (unsigned K = 0; K != N; ++K)
      pop();
  };

  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    if (Targets[I])
      reset();
    Instruction &Ins = Code[I];
    switch (Ins.Op) {
    case Opcode::Nop:
      break;
    case Opcode::IConst:
      Stack.push_back(static_cast<int64_t>(Ins.A));
      break;
    case Opcode::ILoad: {
      std::optional<int64_t> V = Locals[Ins.A];
      if (V && *V >= INT32_MIN && *V <= INT32_MAX) {
        Ins = Instruction(Opcode::IConst, static_cast<int32_t>(*V));
        Changed = true;
      }
      Stack.push_back(V);
      break;
    }
    case Opcode::IStore:
      Locals[Ins.A] = pop();
      break;
    case Opcode::IInc:
      if (Locals[Ins.A])
        Locals[Ins.A] = static_cast<int64_t>(
            static_cast<uint64_t>(*Locals[Ins.A]) +
            static_cast<uint64_t>(Ins.B));
      break;
    case Opcode::ALoad:
    case Opcode::AConstNull:
      Stack.push_back(std::nullopt);
      break;
    case Opcode::AStore:
      pop();
      Locals[Ins.A] = std::nullopt;
      break;
    case Opcode::IAdd:
    case Opcode::ISub:
    case Opcode::IMul:
    case Opcode::IAnd:
    case Opcode::IOr:
    case Opcode::IXor:
    case Opcode::IShl:
    case Opcode::IShr: {
      std::optional<int64_t> R = pop(), L = pop();
      if (L && R)
        Stack.push_back(evalBinop(Ins.Op, *L, *R));
      else
        Stack.push_back(std::nullopt);
      break;
    }
    case Opcode::IDiv:
    case Opcode::IRem: {
      std::optional<int64_t> R = pop(), L = pop();
      if (L && R && *R != 0)
        Stack.push_back(evalBinop(Ins.Op, *L, *R));
      else
        Stack.push_back(std::nullopt);
      break;
    }
    case Opcode::INeg: {
      std::optional<int64_t> V = pop();
      if (V)
        Stack.push_back(static_cast<int64_t>(-static_cast<uint64_t>(*V)));
      else
        Stack.push_back(std::nullopt);
      break;
    }
    case Opcode::Goto:
      reset();
      break;
    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfLe:
    case Opcode::IfGt:
    case Opcode::IfGe:
      pop();
      // The fall-through keeps the state: locals are unchanged on the
      // not-taken path, and the taken path re-enters at a leader where
      // the state resets anyway.
      break;
    case Opcode::IfICmpEq:
    case Opcode::IfICmpNe:
    case Opcode::IfICmpLt:
    case Opcode::IfICmpGe:
      popN(2);
      break;
    case Opcode::New:
      Stack.push_back(std::nullopt);
      break;
    case Opcode::GetField:
      pop();
      Stack.push_back(std::nullopt);
      break;
    case Opcode::PutField:
      popN(2);
      break;
    case Opcode::ClassEq:
      pop();
      Stack.push_back(std::nullopt);
      break;
    case Opcode::InvokeStatic:
    case Opcode::InvokeVirtual:
      popN(static_cast<unsigned>(Ins.B));
      if (Calls.pushesResult(Ins))
        Stack.push_back(std::nullopt);
      break;
    case Opcode::Return:
    case Opcode::IReturn:
    case Opcode::AReturn:
    case Opcode::Halt:
      reset();
      break;
    case Opcode::Work:
    case Opcode::Spawn:
      break;
    case Opcode::Print:
      pop();
      break;
    }
  }
  return Changed;
}

bool opt::simplifyBranches(const Program &P, std::vector<Instruction> &Code) {
  (void)P;
  bool Changed = false;
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    Instruction &Ins = Code[I];
    if (!isBranch(Ins.Op))
      continue;
    // Collapse goto->goto chains (bounded; loops of gotos left alone).
    uint32_t Target = static_cast<uint32_t>(Ins.A);
    for (int Hop = 0; Hop < 8; ++Hop) {
      if (Target >= Code.size() || Code[Target].Op != Opcode::Goto ||
          Target == I)
        break;
      uint32_t Next = static_cast<uint32_t>(Code[Target].A);
      if (Next == Target)
        break;
      Target = Next;
    }
    if (Target != static_cast<uint32_t>(Ins.A)) {
      Ins.A = static_cast<int32_t>(Target);
      Changed = true;
    }
    // goto to the next instruction is a nop.
    if (Ins.Op == Opcode::Goto && static_cast<size_t>(Ins.A) == I + 1) {
      Ins = Instruction(Opcode::Nop);
      Changed = true;
    }
  }
  return Changed;
}

bool opt::removeUnreachable(const Program &P, std::vector<Instruction> &Code) {
  (void)P;
  if (Code.empty())
    return false;
  std::vector<bool> Reached(Code.size(), false);
  std::deque<uint32_t> Worklist{0};
  while (!Worklist.empty()) {
    uint32_t PC = Worklist.front();
    Worklist.pop_front();
    if (PC >= Code.size() || Reached[PC])
      continue;
    Reached[PC] = true;
    const Instruction &I = Code[PC];
    if (isBranch(I.Op))
      Worklist.push_back(static_cast<uint32_t>(I.A));
    bool FallsThrough = I.Op != Opcode::Goto && !isReturn(I.Op) &&
                        I.Op != Opcode::Halt;
    if (FallsThrough)
      Worklist.push_back(PC + 1);
  }
  bool Changed = false;
  for (size_t I = 0, E = Code.size(); I != E; ++I)
    if (!Reached[I] && Code[I].Op != Opcode::Nop) {
      Code[I] = Instruction(Opcode::Nop);
      Changed = true;
    }
  return Changed;
}

bool opt::fuseWork(const Program &P, std::vector<Instruction> &Code) {
  (void)P;
  std::vector<bool> Targets = computeBranchTargets(Code);
  bool Changed = false;
  for (size_t I = 1, E = Code.size(); I != E; ++I) {
    if (Code[I].Op != Opcode::Work || Code[I - 1].Op != Opcode::Work ||
        Targets[I])
      continue;
    int64_t Total = static_cast<int64_t>(Code[I].A) + Code[I - 1].A;
    if (Total > INT32_MAX)
      continue;
    Code[I - 1] = Instruction(Opcode::Nop);
    Code[I].A = static_cast<int32_t>(Total);
    Changed = true;
  }
  return Changed;
}

bool opt::removeDeadStores(const Program &P,
                           std::vector<Instruction> &Code) {
  (void)P;
  // Slots that are ever read (loads and iinc, which reads and writes).
  std::vector<bool> Read;
  auto markRead = [&Read](int32_t Slot) {
    if (static_cast<size_t>(Slot) >= Read.size())
      Read.resize(Slot + 1, false);
    Read[Slot] = true;
  };
  for (const Instruction &I : Code)
    if (I.Op == Opcode::ILoad || I.Op == Opcode::ALoad ||
        I.Op == Opcode::IInc)
      markRead(I.A);

  auto isPureProducer = [](Opcode Op) {
    return Op == Opcode::IConst || Op == Opcode::ILoad ||
           Op == Opcode::ALoad || Op == Opcode::AConstNull;
  };

  std::vector<bool> Targets = computeBranchTargets(Code);
  bool Changed = false;
  for (size_t I = 1, E = Code.size(); I != E; ++I) {
    Opcode Op = Code[I].Op;
    if (Op != Opcode::IStore && Op != Opcode::AStore)
      continue;
    if (static_cast<size_t>(Code[I].A) < Read.size() && Read[Code[I].A])
      continue;
    if (!isPureProducer(Code[I - 1].Op) || Targets[I])
      continue;
    Code[I - 1] = Instruction(Opcode::Nop);
    Code[I] = Instruction(Opcode::Nop);
    Changed = true;
  }
  return Changed;
}

bool opt::removeNops(const Program &P, std::vector<Instruction> &Code,
                     std::vector<uint32_t> *TrackedPCs) {
  (void)P;
  size_t NumNops = 0;
  for (const Instruction &I : Code)
    if (I.Op == Opcode::Nop)
      ++NumNops;
  // Keep a trailing nop-free body; if everything is a nop something is
  // deeply wrong (a method must end in a return).
  if (NumNops == 0)
    return false;

  // NewIndex[i] = index of the first kept instruction at or after i.
  std::vector<uint32_t> NewIndex(Code.size() + 1, 0);
  std::vector<Instruction> Kept;
  Kept.reserve(Code.size() - NumNops);
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    NewIndex[I] = static_cast<uint32_t>(Kept.size());
    if (Code[I].Op != Opcode::Nop)
      Kept.push_back(Code[I]);
  }
  NewIndex[Code.size()] = static_cast<uint32_t>(Kept.size());

  for (Instruction &I : Kept)
    if (isBranch(I.Op)) {
      uint32_t Remapped = NewIndex[I.A];
      assert(Remapped < Kept.size() &&
             "branch target dissolved into trailing nops");
      I.A = static_cast<int32_t>(Remapped);
    }
  // Side tables ride along under the same first-kept-at-or-after rule
  // as branch targets (a tracked instruction that was nopped maps to
  // whatever executes in its place — for loop headers, the new header).
  if (TrackedPCs)
    for (uint32_t &PC : *TrackedPCs)
      PC = NewIndex[std::min<size_t>(PC, Code.size())];
  Code = std::move(Kept);
  return true;
}
