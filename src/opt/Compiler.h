//===- opt/Compiler.h - The compile pipeline --------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a method into an installed-ready CompiledMethod: apply the
/// inline plan, run the optimizer for the level, compute the modelled
/// compile cost (proportional to the *post-inlining* code size — which
/// is how inlining inflates compile time, the effect J9's dynamic
/// heuristics reduce by 9% in §6.3), and set the execution-speed scale.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_OPT_COMPILER_H
#define CBSVM_OPT_COMPILER_H

#include "opt/InlinePlan.h"
#include "opt/Inliner.h"
#include "vm/CompiledMethod.h"
#include "vm/CostModel.h"

#include <functional>
#include <memory>

namespace cbs::opt {

struct CompileOptions {
  InlinerOptions Inliner;
  bool RunOptimizer = true;
};

/// Compiles \p Id at \p Level under \p Plan.
vm::CompiledMethod compileMethod(const bc::Program &P, bc::MethodId Id,
                                 int Level, const InlinePlan &Plan,
                                 const vm::CostModel &Costs,
                                 const CompileOptions &Options = {});

/// Builds a VMConfig::CompileHook that compiles every method through
/// this pipeline with a fixed (shared) plan — the "JIT only" setup of
/// the accuracy experiments, where \p Plan is typically the
/// TrivialOracle's.
std::function<vm::CompiledMethod(const bc::Program &, bc::MethodId, int)>
makeCompileHook(std::shared_ptr<const InlinePlan> Plan, vm::CostModel Costs,
                CompileOptions Options = {});

} // namespace cbs::opt

#endif // CBSVM_OPT_COMPILER_H
