//===- opt/Optimizer.cpp - Pass pipeline -------------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"

#include "opt/Passes.h"

#include <cassert>

using namespace cbs;
using namespace cbs::opt;

OptimizerStats opt::optimizeCode(const bc::Program &P,
                                 std::vector<bc::Instruction> &Code,
                                 int Level,
                                 std::vector<uint32_t> *TrackedPCs) {
  assert(Level >= 0 && Level <= 2 && "optimization level out of range");
  OptimizerStats Stats;
  if (Level == 0)
    return Stats;

  unsigned MaxRounds = Level == 1 ? 2 : 4;
  for (unsigned Round = 0; Round != MaxRounds; ++Round) {
    bool Changed = false;
    Changed |= foldConstants(P, Code);
    Changed |= propagateLocalConstants(P, Code);
    Changed |= foldConstants(P, Code);
    Changed |= removeDeadStores(P, Code);
    Changed |= simplifyBranches(P, Code);
    Changed |= removeUnreachable(P, Code);
    Changed |= fuseWork(P, Code);
    Changed |= removeNops(P, Code, TrackedPCs);
    ++Stats.RoundsRun;
    Stats.AnyChange |= Changed;
    if (!Changed)
      break;
  }
  return Stats;
}
