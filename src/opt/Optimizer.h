//===- opt/Optimizer.h - Pass pipeline --------------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the optimization passes appropriate for a compilation level over
/// a method body. Level 0 performs no optimization (matching the
/// paper's baseline configuration where only trivial inlining runs);
/// levels 1 and 2 run increasingly many rounds of the full pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_OPT_OPTIMIZER_H
#define CBSVM_OPT_OPTIMIZER_H

#include "bytecode/Program.h"

#include <vector>

namespace cbs::opt {

struct OptimizerStats {
  unsigned RoundsRun = 0;
  bool AnyChange = false;
};

/// Optimizes \p Code (a body of a method of \p P) in place at \p Level.
/// \p TrackedPCs, when given, is a side table of code-space PCs (OSR
/// points) kept in sync as passes move instructions.
OptimizerStats optimizeCode(const bc::Program &P,
                            std::vector<bc::Instruction> &Code, int Level,
                            std::vector<uint32_t> *TrackedPCs = nullptr);

} // namespace cbs::opt

#endif // CBSVM_OPT_OPTIMIZER_H
