//===- opt/Compiler.cpp - The compile pipeline --------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "opt/Compiler.h"

#include "bytecode/Program.h"
#include "opt/Optimizer.h"

#include <cassert>
#include <cmath>

using namespace cbs;
using namespace cbs::opt;

vm::CompiledMethod opt::compileMethod(const bc::Program &P, bc::MethodId Id,
                                      int Level, const InlinePlan &Plan,
                                      const vm::CostModel &Costs,
                                      const CompileOptions &Options) {
  assert(Level >= 0 && Level <= 2 && "optimization level out of range");
  InlineResult Inlined = inlineMethod(P, Id, Plan, Options.Inliner);

  // Compile cost is charged on the *post-inlining, pre-optimization*
  // size: this is the unit the downstream optimizations must process —
  // §1's "large increases in ... compilation time (as downstream
  // optimizations process the large compilation units created by
  // inlining)". Sizing on the optimized output would make over-inlining
  // look free whenever the optimizer can fold the spliced bodies.
  uint64_t SizeBytes = 0;
  for (const bc::Instruction &I : Inlined.Code)
    SizeBytes += bc::opcodeSizeBytes(I.Op);

  if (Options.RunOptimizer)
    optimizeCode(P, Inlined.Code, Level);

  vm::CompiledMethod CM;
  CM.Id = Id;
  CM.Level = static_cast<uint8_t>(Level);
  CM.ScaleQ8 =
      static_cast<uint16_t>(std::lround(Costs.LevelScale[Level] * 256.0));
  CM.NumLocals = Inlined.NumLocals;
  CM.Code = std::move(Inlined.Code);
  CM.InlinedBodies = Inlined.InlinedBodies;
  CM.Guards = std::move(Inlined.Speculations);
  CM.PlanGeneration = Plan.Generation;
  CM.ProfileEpoch = Plan.ProfileEpoch;
  CM.CompileCostCycles = static_cast<uint64_t>(
      std::llround(Costs.CompileCostPerByte[Level] *
                   static_cast<double>(SizeBytes)));
  return CM;
}

std::function<vm::CompiledMethod(const bc::Program &, bc::MethodId, int)>
opt::makeCompileHook(std::shared_ptr<const InlinePlan> Plan,
                     vm::CostModel Costs, CompileOptions Options) {
  return [Plan = std::move(Plan), Costs,
          Options](const bc::Program &P, bc::MethodId Id,
                   int Level) -> vm::CompiledMethod {
    return compileMethod(P, Id, Level, *Plan, Costs, Options);
  };
}
