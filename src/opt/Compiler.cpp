//===- opt/Compiler.cpp - The compile pipeline --------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "opt/Compiler.h"

#include "bytecode/Program.h"
#include "opt/Optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cbs;
using namespace cbs::opt;

vm::CompiledMethod opt::compileMethod(const bc::Program &P, bc::MethodId Id,
                                      int Level, const InlinePlan &Plan,
                                      const vm::CostModel &Costs,
                                      const CompileOptions &Options) {
  assert(Level >= 0 && Level <= 2 && "optimization level out of range");
  InlineResult Inlined = inlineMethod(P, Id, Plan, Options.Inliner);

  // Compile cost is charged on the *post-inlining, pre-optimization*
  // size: this is the unit the downstream optimizations must process —
  // §1's "large increases in ... compilation time (as downstream
  // optimizations process the large compilation units created by
  // inlining)". Sizing on the optimized output would make over-inlining
  // look free whenever the optimizer can fold the spliced bodies.
  uint64_t SizeBytes = 0;
  for (const bc::Instruction &I : Inlined.Code)
    SizeBytes += bc::opcodeSizeBytes(I.Op);

  // OSR points: the root method's loop headers (original-bytecode PCs),
  // projected through the inliner's root map into this version's code,
  // then tracked through the optimizer as passes move instructions.
  // Always emitted — the table is inert data unless VMConfig::EnableOSR
  // turns transfers on.
  std::vector<uint32_t> Headers = vm::loopHeaderPCs(P.method(Id).Code);
  std::vector<uint32_t> HeaderCodePCs;
  HeaderCodePCs.reserve(Headers.size());
  for (uint32_t H : Headers)
    HeaderCodePCs.push_back(Inlined.RootMap[H]);

  if (Options.RunOptimizer)
    optimizeCode(P, Inlined.Code, Level, &HeaderCodePCs);

  vm::CompiledMethod CM;
  // A header whose instruction dissolved maps (first-kept-at-or-after)
  // to whatever now sits there — which is only a loop entry if some
  // backward branch in the *final* code still targets it. Keep an entry
  // only when its code PC is a surviving loop header claimed by exactly
  // one original header; an ambiguous or dead entry would let a
  // transfer remap through the wrong loop.
  std::vector<uint32_t> FinalHeaders = vm::loopHeaderPCs(Inlined.Code);
  CM.OsrPoints.reserve(Headers.size());
  for (size_t I = 0; I != Headers.size(); ++I) {
    uint32_t CodePC = HeaderCodePCs[I];
    bool Live = std::find(FinalHeaders.begin(), FinalHeaders.end(), CodePC) !=
                FinalHeaders.end();
    bool Unique = std::count(HeaderCodePCs.begin(), HeaderCodePCs.end(),
                             CodePC) == 1;
    if (Live && Unique)
      CM.OsrPoints.push_back({Headers[I], CodePC});
  }
  CM.Id = Id;
  CM.Level = static_cast<uint8_t>(Level);
  CM.ScaleQ8 =
      static_cast<uint16_t>(std::lround(Costs.LevelScale[Level] * 256.0));
  CM.NumLocals = Inlined.NumLocals;
  CM.Code = std::move(Inlined.Code);
  CM.InlinedBodies = Inlined.InlinedBodies;
  CM.Guards = std::move(Inlined.Speculations);
  CM.PlanGeneration = Plan.Generation;
  CM.ProfileEpoch = Plan.ProfileEpoch;
  CM.CompileCostCycles = static_cast<uint64_t>(
      std::llround(Costs.CompileCostPerByte[Level] *
                   static_cast<double>(SizeBytes)));
  return CM;
}

std::function<vm::CompiledMethod(const bc::Program &, bc::MethodId, int)>
opt::makeCompileHook(std::shared_ptr<const InlinePlan> Plan,
                     vm::CostModel Costs, CompileOptions Options) {
  return [Plan = std::move(Plan), Costs,
          Options](const bc::Program &P, bc::MethodId Id,
                   int Level) -> vm::CompiledMethod {
    return compileMethod(P, Id, Level, *Plan, Costs, Options);
  };
}
