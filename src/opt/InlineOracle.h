//===- opt/InlineOracle.h - Inlining policies -------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inlining policies ("oracles") the paper compares:
///
///  - TrivialOracle: inline only methods whose bodies are smaller than a
///    calling sequence, plus safe CHA devirtualization. This is the
///    level-0 configuration of the accuracy experiments (§6.2).
///  - OldJikesOracle: Jikes RVM's pre-paper profile-directed inliner
///    (§5.1): an edge is *hot* iff it accounts for more than 1% of the
///    DCG's total weight; hot edges get an enlarged size threshold;
///    profile data for non-hot edges is completely ignored — which is
///    exactly the conservatism the paper found left opportunities on
///    the table.
///  - NewJikesOracle: the paper's new inliner (§5.1): edge weight feeds
///    a bounded linear size-threshold function (no hot/cold cliff), and
///    virtual call sites consider every callee with more than 40% of
///    the site's receiver distribution for guarded inlining.
///  - J9Oracle: J9's inliner (§5.2): aggressive static size heuristics;
///    when dynamic heuristics are enabled, cold sites override the
///    static decision to *not* inline and hot sites raise the size
///    threshold (the profile weight required scales linearly with
///    method size).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_OPT_INLINEORACLE_H
#define CBSVM_OPT_INLINEORACLE_H

#include "opt/InlinePlan.h"
#include "profiling/DCGSnapshot.h"

namespace cbs::bc {
class Program;
}

namespace cbs::opt {

class InlineOracle {
public:
  virtual ~InlineOracle();
  /// Builds a whole-program plan from the current profile.
  virtual InlinePlan plan(const bc::Program &P,
                          const prof::DCGSnapshot &DCG) const = 0;
  virtual const char *name() const = 0;
};

/// Size in modelled bytecode bytes below which a body is "trivial":
/// smaller than the calling sequence it replaces.
inline constexpr uint32_t TrivialSizeBytes = 14;

class TrivialOracle : public InlineOracle {
public:
  InlinePlan plan(const bc::Program &P,
                  const prof::DCGSnapshot &DCG) const override;
  const char *name() const override { return "trivial"; }
};

class OldJikesOracle : public InlineOracle {
public:
  struct Params {
    double HotEdgeFraction = 0.01; ///< the 1%-of-total-weight rule
    uint32_t HotSizeBytes = 60;    ///< enlarged threshold for hot edges
  };

  OldJikesOracle() = default;
  explicit OldJikesOracle(Params Config) : Config(Config) {}
  InlinePlan plan(const bc::Program &P,
                  const prof::DCGSnapshot &DCG) const override;
  const char *name() const override { return "old-jikes"; }

private:
  Params Config;
};

class NewJikesOracle : public InlineOracle {
public:
  struct Params {
    /// threshold(edge) = Base + Slope * (100 * edge fraction), capped.
    uint32_t BaseSizeBytes = 24;
    double SlopePerPercent = 10.0;
    uint32_t MaxSizeBytes = 150;
    /// A callee must account for this share of its site's distribution
    /// to be considered for guarded inlining (the paper's 40% rule).
    double GuardedMinShare = 0.40;
    uint32_t MaxGuardedTargets = 2;
  };

  NewJikesOracle() = default;
  explicit NewJikesOracle(Params Config) : Config(Config) {}
  InlinePlan plan(const bc::Program &P,
                  const prof::DCGSnapshot &DCG) const override;
  const char *name() const override { return "new-jikes"; }

private:
  Params Config;
};

class J9Oracle : public InlineOracle {
public:
  struct Params {
    /// Static heuristics: inline anything at most this large.
    uint32_t StaticSizeBytes = 48;
    /// Use the dynamic call graph at all (false = the Figure 5 right
    /// graph's "static heuristics only" baseline).
    bool UseDynamic = true;
    /// Sites below this fraction of total weight (including absent
    /// sites) are cold: the static decision is overridden to None.
    double ColdSiteFraction = 0.0008;
    /// Do not trust (and do not suppress with) a profile until it has
    /// accumulated at least this much weight; an immature profile makes
    /// every unsampled site look cold. Real systems gate their dynamic
    /// heuristics the same way.
    uint64_t MinProfileWeight = 48;
    /// Hot sites: threshold = Static + Boost * (100 * site fraction).
    double BoostPerPercent = 6.0;
    uint32_t MaxSizeBytes = 110;
    // The 40%% rule is the *new Jikes* inliner's (§5.1); J9's dynamic
    /// target selection admits secondary targets with a smaller share
    /// (its static heuristics already guard-inline both implementations
    /// of a 2-way polymorphic site).
    double GuardedMinShare = 0.15;
    uint32_t MaxGuardedTargets = 2;
  };

  J9Oracle() = default;
  explicit J9Oracle(Params Config) : Config(Config) {}
  InlinePlan plan(const bc::Program &P,
                  const prof::DCGSnapshot &DCG) const override;
  const char *name() const override { return "j9"; }

private:
  Params Config;
};

/// True if \p Selector has exactly one implementation over the whole
/// (closed) hierarchy; \p Target receives it. Such calls can be
/// devirtualized without a guard.
bool chaMonomorphic(const bc::Program &P, bc::SelectorId Selector,
                    bc::MethodId &Target);

} // namespace cbs::opt

#endif // CBSVM_OPT_INLINEORACLE_H
