//===- opt/Inliner.cpp - Bytecode inlining transformation -------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "opt/Inliner.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::opt;

namespace {

class InlineEmitter {
public:
  InlineEmitter(const Program &P, const InlinePlan &Plan,
                const InlinerOptions &Options)
      : P(P), Plan(Plan), Options(Options) {}

  InlineResult run(MethodId Root) {
    const Method &M = P.method(Root);
    NumLocals = M.NumLocals;
    InlineStack.push_back(Root);
    emitBody(M, /*ArgBase=*/0, /*ExtraBase=*/M.numArgs(), /*Depth=*/0);
    InlineStack.pop_back();

    InlineResult Result;
    Result.Code = std::move(NewCode);
    Result.NumLocals = NumLocals;
    Result.InlinedBodies = InlinedBodies;
    Result.BudgetSkips = BudgetSkips;
    Result.Speculations = std::move(Speculations);
    Result.RootMap = std::move(RootMap);
    return Result;
  }

private:
  bool onInlineStack(MethodId Id) const {
    return std::find(InlineStack.begin(), InlineStack.end(), Id) !=
           InlineStack.end();
  }

  bool overBudget(size_t CalleeInstructions) const {
    return NewCode.size() + CalleeInstructions + 8 >
           Options.MaxResultInstructions;
  }

  /// Spills a call's arguments from the operand stack into locals
  /// [ArgBase, ArgBase + NumArgs), top of stack last.
  void spillArgs(const std::vector<ValKind> &Kinds, uint32_t ArgBase) {
    for (size_t K = Kinds.size(); K-- > 0;)
      NewCode.emplace_back(Kinds[K] == ValKind::Ref ? Opcode::AStore
                                                    : Opcode::IStore,
                           static_cast<int32_t>(ArgBase + K));
  }

  /// Reloads spilled arguments back onto the operand stack in call
  /// order (for the guarded-inline fallback path).
  void reloadArgs(const std::vector<ValKind> &Kinds, uint32_t ArgBase) {
    for (size_t K = 0, E = Kinds.size(); K != E; ++K)
      NewCode.emplace_back(Kinds[K] == ValKind::Ref ? Opcode::ALoad
                                                    : Opcode::ILoad,
                           static_cast<int32_t>(ArgBase + K));
  }

  void expandDirect(const Method &Callee, uint32_t Depth) {
    uint32_t NumArgs = Callee.numArgs();
    uint32_t ArgBase = NumLocals;
    NumLocals += NumArgs;
    uint32_t ExtraBase = NumLocals;
    NumLocals += Callee.NumLocals - NumArgs;

    spillArgs(Callee.ArgKinds, ArgBase);
    ++InlinedBodies;
    InlineStack.push_back(Callee.Id);
    emitBody(Callee, ArgBase, ExtraBase, Depth + 1);
    InlineStack.pop_back();
  }

  void expandGuarded(const Instruction &Call,
                     const std::vector<const Method *> &Targets,
                     const std::vector<std::vector<ClassId>> &Guards,
                     uint32_t Depth) {
    assert(!Targets.empty() && "guarded expansion with no targets");
    const std::vector<ValKind> &Kinds = Targets.front()->ArgKinds;
    uint32_t NumArgs = static_cast<uint32_t>(Kinds.size());
    uint32_t ArgBase = NumLocals;
    NumLocals += NumArgs;

    spillArgs(Kinds, ArgBase);

    // Guard tests: exact-class checks on the receiver, one ifne per
    // guard class, jumping to the matching inlined body.
    std::vector<std::vector<size_t>> GuardJumps(Targets.size());
    for (size_t T = 0, E = Targets.size(); T != E; ++T)
      for (ClassId C : Guards[T]) {
        NewCode.emplace_back(Opcode::ALoad, static_cast<int32_t>(ArgBase));
        NewCode.emplace_back(Opcode::ClassEq, static_cast<int32_t>(C));
        GuardJumps[T].push_back(NewCode.size());
        NewCode.emplace_back(Opcode::IfNe, /*A=*/-1);
      }

    // Fallback: the original virtual call, site id preserved.
    std::vector<size_t> DoneJumps;
    reloadArgs(Kinds, ArgBase);
    NewCode.push_back(Call);
    DoneJumps.push_back(NewCode.size());
    NewCode.emplace_back(Opcode::Goto, /*A=*/-1);

    // Inlined bodies.
    for (size_t T = 0, E = Targets.size(); T != E; ++T) {
      uint32_t BodyStart = static_cast<uint32_t>(NewCode.size());
      for (size_t Jump : GuardJumps[T])
        NewCode[Jump].A = static_cast<int32_t>(BodyStart);

      const Method &Callee = *Targets[T];
      uint32_t ExtraBase = NumLocals;
      NumLocals += Callee.NumLocals - NumArgs;
      ++InlinedBodies;
      InlineStack.push_back(Callee.Id);
      emitBody(Callee, ArgBase, ExtraBase, Depth + 1);
      InlineStack.pop_back();

      DoneJumps.push_back(NewCode.size());
      NewCode.emplace_back(Opcode::Goto, /*A=*/-1);
    }

    uint32_t Done = static_cast<uint32_t>(NewCode.size());
    for (size_t Jump : DoneJumps)
      NewCode[Jump].A = static_cast<int32_t>(Done);
  }

  /// Emits a call instruction, expanding it per the plan when allowed.
  void emitCall(const Instruction &I, uint32_t Depth) {
    const InlineDecision *D =
        Depth < Options.MaxDepth ? Plan.decisionFor(I.Site) : nullptr;
    if (!D || D->K == InlineDecision::Kind::None) {
      NewCode.push_back(I);
      return;
    }

    if (D->K == InlineDecision::Kind::Direct) {
      const Method &Callee = P.method(D->Target);
      if (onInlineStack(Callee.Id) || overBudget(Callee.Code.size())) {
        ++BudgetSkips;
        NewCode.push_back(I);
        return;
      }
      expandDirect(Callee, Depth);
      return;
    }

    // Guarded: only meaningful on virtual calls.
    if (I.Op != Opcode::InvokeVirtual) {
      NewCode.push_back(I);
      return;
    }
    std::vector<const Method *> Targets;
    std::vector<std::vector<ClassId>> Guards;
    size_t TotalSize = 0;
    for (const GuardedTarget &GT : D->Guarded) {
      if (GT.GuardClasses.empty() ||
          GT.GuardClasses.size() > Options.MaxGuardClassesPerTarget)
        continue;
      const Method &Callee = P.method(GT.Target);
      if (onInlineStack(Callee.Id))
        continue;
      Targets.push_back(&Callee);
      Guards.push_back(GT.GuardClasses);
      TotalSize += Callee.Code.size();
    }
    if (Targets.empty() || overBudget(TotalSize + 4 * Targets.size())) {
      if (!Targets.empty())
        ++BudgetSkips;
      NewCode.push_back(I);
      return;
    }
    // The expansion speculates that the highest-priority target stays
    // dominant at this site; record the assumption for guard policing.
    Speculations.push_back({I.Site, Targets.front()->Id});
    expandGuarded(I, Targets, Guards, Depth);
  }

  /// Emits \p M's code with local slot s mapped to ArgBase + s for
  /// arguments and ExtraBase + (s - numArgs) for the rest. At Depth 0
  /// returns are kept; deeper, they become jumps past the body (any
  /// return value is already on the operand stack).
  void emitBody(const Method &M, uint32_t ArgBase, uint32_t ExtraBase,
                uint32_t Depth) {
    uint32_t NumArgs = M.numArgs();
    auto mapSlot = [&](int32_t S) {
      return static_cast<int32_t>(static_cast<uint32_t>(S) <
                                          NumArgs
                                      ? ArgBase + static_cast<uint32_t>(S)
                                      : ExtraBase +
                                            (static_cast<uint32_t>(S) -
                                             NumArgs));
    };

    std::vector<uint32_t> Map(M.Code.size());
    std::vector<std::pair<size_t, uint32_t>> BranchFixups;
    std::vector<size_t> ReturnFixups;

    for (uint32_t PC = 0, E = static_cast<uint32_t>(M.Code.size()); PC != E;
         ++PC) {
      Map[PC] = static_cast<uint32_t>(NewCode.size());
      const Instruction &I = M.Code[PC];
      switch (I.Op) {
      case Opcode::ILoad:
      case Opcode::IStore:
      case Opcode::ALoad:
      case Opcode::AStore:
        NewCode.emplace_back(I.Op, mapSlot(I.A));
        break;
      case Opcode::IInc:
        NewCode.emplace_back(I.Op, mapSlot(I.A), I.B);
        break;
      case Opcode::Goto:
      case Opcode::IfEq:
      case Opcode::IfNe:
      case Opcode::IfLt:
      case Opcode::IfLe:
      case Opcode::IfGt:
      case Opcode::IfGe:
      case Opcode::IfICmpEq:
      case Opcode::IfICmpNe:
      case Opcode::IfICmpLt:
      case Opcode::IfICmpGe:
        BranchFixups.emplace_back(NewCode.size(),
                                  static_cast<uint32_t>(I.A));
        NewCode.push_back(I);
        break;
      case Opcode::Return:
      case Opcode::IReturn:
      case Opcode::AReturn:
        if (Depth == 0) {
          NewCode.push_back(I);
        } else {
          ReturnFixups.push_back(NewCode.size());
          NewCode.emplace_back(Opcode::Goto, /*A=*/-1);
        }
        break;
      case Opcode::InvokeStatic:
      case Opcode::InvokeVirtual:
        emitCall(I, Depth);
        break;
      default:
        NewCode.push_back(I);
        break;
      }
    }

    uint32_t End = static_cast<uint32_t>(NewCode.size());
    for (size_t Idx : ReturnFixups)
      NewCode[Idx].A = static_cast<int32_t>(End);
    for (auto [Idx, OldTarget] : BranchFixups)
      NewCode[Idx].A = static_cast<int32_t>(Map[OldTarget]);

    // The root body's orig->rewritten map is the OSR-point source: the
    // compiler projects the root's loop headers through it.
    if (Depth == 0)
      RootMap = std::move(Map);
  }

  const Program &P;
  const InlinePlan &Plan;
  const InlinerOptions &Options;

  std::vector<Instruction> NewCode;
  uint32_t NumLocals = 0;
  std::vector<MethodId> InlineStack;
  uint32_t InlinedBodies = 0;
  uint32_t BudgetSkips = 0;
  std::vector<vm::SpeculationGuard> Speculations;
  std::vector<uint32_t> RootMap;
};

} // namespace

InlineResult opt::inlineMethod(const Program &P, MethodId Root,
                               const InlinePlan &Plan,
                               const InlinerOptions &Options) {
  return InlineEmitter(P, Plan, Options).run(Root);
}
