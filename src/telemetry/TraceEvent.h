//===- telemetry/TraceEvent.h - Typed VM trace events -----------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured event vocabulary of the VM's tracer. Every event
/// carries the virtual-cycle timestamp and the emitting green thread;
/// the remaining fields are kind-specific (see the factory functions).
/// Events are small PODs so a ring-buffer sink can retain them without
/// allocation.
///
/// Event taxonomy (what fires when):
///   timer_tick     virtual timer interrupt delivered (A = top method)
///   window_arm     CBS profiling window opened by a tick (A = samples/tick)
///   window_disarm  CBS window closed after its last sample
///   sample         profiler sample taken (A = callee, B = site of the
///                  walked edge; Invalid ids if no edge was on stack)
///   compile_start  method (re)compilation begins (A = method, B = level)
///   compile_finish compilation done (A = method, B = level, C = cost)
///   compile_enqueue background compile request queued (A = method,
///                  B = level, C = ready cycle — enqueue + modelled
///                  latency)
///   compile_install background compile installed at a yieldpoint
///                  (A = method, B = level, C = cycles waited in the
///                  queue since enqueue)
///   inline_decision oracle decision in a new inline plan (A = target,
///                  B = site, C = 1 direct / 2 guarded)
///   gc             collection pause serviced (C = heap bytes allocated)
///   thread_switch  scheduler moved to another thread (A = new thread)
///   phase_shift    quality-monitor window overlap fell below the
///                  configured threshold (A = overlap in basis points,
///                  B = window index)
///   sample_drop    a thread's SampleBuffer rejected samples since the
///                  last flush point (A = buffer capacity, C = dropped
///                  sample count)
///   trap           the VM trapped fatally (A = trapping method,
///                  B = pc)
///   guard_fail     a compiled method's speculation guard lost its
///                  dominance backing in the current profile
///                  (A = method, B = call site, C = assumed callee)
///   deopt          a compiled method was invalidated; future dispatches
///                  fall back to baseline until recompiled (A = method,
///                  B = level of the invalidated code, C = the method's
///                  cumulative deopt count)
///   osr            a live frame transferred between versions at a
///                  loop-header yieldpoint (A = method, B = level of
///                  the version entered, C = 1 promotion / 2 deopt
///                  exit)
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_TELEMETRY_TRACEEVENT_H
#define CBSVM_TELEMETRY_TRACEEVENT_H

#include <cstdint>

namespace cbs::tel {

enum class EventKind : uint8_t {
  TimerTick,
  WindowArm,
  WindowDisarm,
  Sample,
  CompileStart,
  CompileFinish,
  InlineDecision,
  GC,
  ThreadSwitch,
  PhaseShift,
  SampleDrop,
  Trap,
  CompileEnqueue,
  CompileInstall,
  GuardFail,
  Deopt,
  Osr,
};

inline constexpr unsigned NumEventKinds = 17;

const char *eventKindName(EventKind K);

struct TraceEvent {
  EventKind Kind = EventKind::TimerTick;
  uint32_t Thread = 0; ///< emitting green thread
  uint64_t Cycles = 0; ///< virtual-cycle timestamp
  uint32_t A = 0;      ///< kind-specific (see file comment)
  uint32_t B = 0;
  uint64_t C = 0;

  static TraceEvent timerTick(uint64_t Cycles, uint32_t Thread,
                              uint32_t TopMethod) {
    return {EventKind::TimerTick, Thread, Cycles, TopMethod, 0, 0};
  }
  static TraceEvent windowArm(uint64_t Cycles, uint32_t Thread,
                              uint32_t SamplesPerTick) {
    return {EventKind::WindowArm, Thread, Cycles, SamplesPerTick, 0, 0};
  }
  static TraceEvent windowDisarm(uint64_t Cycles, uint32_t Thread) {
    return {EventKind::WindowDisarm, Thread, Cycles, 0, 0, 0};
  }
  static TraceEvent sample(uint64_t Cycles, uint32_t Thread, uint32_t Callee,
                           uint32_t Site) {
    return {EventKind::Sample, Thread, Cycles, Callee, Site, 0};
  }
  static TraceEvent compileStart(uint64_t Cycles, uint32_t Thread,
                                 uint32_t Method, uint32_t Level) {
    return {EventKind::CompileStart, Thread, Cycles, Method, Level, 0};
  }
  static TraceEvent compileFinish(uint64_t Cycles, uint32_t Thread,
                                  uint32_t Method, uint32_t Level,
                                  uint64_t CostCycles) {
    return {EventKind::CompileFinish, Thread, Cycles, Method, Level,
            CostCycles};
  }
  static TraceEvent inlineDecision(uint64_t Cycles, uint32_t Target,
                                   uint32_t Site, uint64_t DecisionKind) {
    return {EventKind::InlineDecision, 0, Cycles, Target, Site, DecisionKind};
  }
  static TraceEvent gc(uint64_t Cycles, uint32_t Thread,
                       uint64_t HeapBytes) {
    return {EventKind::GC, Thread, Cycles, 0, 0, HeapBytes};
  }
  static TraceEvent threadSwitch(uint64_t Cycles, uint32_t FromThread,
                                 uint32_t ToThread) {
    return {EventKind::ThreadSwitch, FromThread, Cycles, ToThread, 0, 0};
  }
  static TraceEvent phaseShift(uint64_t Cycles, uint32_t Thread,
                               uint32_t OverlapBp, uint32_t Window) {
    return {EventKind::PhaseShift, Thread, Cycles, OverlapBp, Window, 0};
  }
  static TraceEvent sampleDrop(uint64_t Cycles, uint32_t Thread,
                               uint32_t Capacity, uint64_t DroppedCount) {
    return {EventKind::SampleDrop, Thread, Cycles, Capacity, 0,
            DroppedCount};
  }
  static TraceEvent trap(uint64_t Cycles, uint32_t Thread, uint32_t Method,
                         uint32_t PC) {
    return {EventKind::Trap, Thread, Cycles, Method, PC, 0};
  }
  static TraceEvent compileEnqueue(uint64_t Cycles, uint32_t Thread,
                                   uint32_t Method, uint32_t Level,
                                   uint64_t ReadyCycle) {
    return {EventKind::CompileEnqueue, Thread, Cycles, Method, Level,
            ReadyCycle};
  }
  static TraceEvent compileInstall(uint64_t Cycles, uint32_t Thread,
                                   uint32_t Method, uint32_t Level,
                                   uint64_t WaitedCycles) {
    return {EventKind::CompileInstall, Thread, Cycles, Method, Level,
            WaitedCycles};
  }
  static TraceEvent guardFail(uint64_t Cycles, uint32_t Thread,
                              uint32_t Method, uint32_t Site,
                              uint64_t AssumedCallee) {
    return {EventKind::GuardFail, Thread, Cycles, Method, Site,
            AssumedCallee};
  }
  static TraceEvent deopt(uint64_t Cycles, uint32_t Thread, uint32_t Method,
                          uint32_t Level, uint64_t DeoptCount) {
    return {EventKind::Deopt, Thread, Cycles, Method, Level, DeoptCount};
  }
  static TraceEvent osr(uint64_t Cycles, uint32_t Thread, uint32_t Method,
                        uint32_t ToLevel, uint64_t TransferKind) {
    return {EventKind::Osr, Thread, Cycles, Method, ToLevel, TransferKind};
  }
};

} // namespace cbs::tel

#endif // CBSVM_TELEMETRY_TRACEEVENT_H
