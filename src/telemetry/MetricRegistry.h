//===- telemetry/MetricRegistry.h - Named metrics ----------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM-wide metrics registry: components register Counters, Gauges,
/// and Histograms by dotted name ("vm.cycles", "aos.recompilations")
/// and update them through plain references, so a hot-path increment
/// costs exactly what a struct-field increment costs. The registry owns
/// the storage (std::map nodes are address-stable), enumerates metrics
/// in sorted-name order for deterministic output, and renders itself as
/// text or JSON.
///
/// `vm::VMStats` remains the stable façade the experiment harness
/// consumes; the VirtualMachine populates it from this registry on
/// demand (see VirtualMachine::stats()).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_TELEMETRY_METRICREGISTRY_H
#define CBSVM_TELEMETRY_METRICREGISTRY_H

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace cbs::json {
class JsonWriter;
}

namespace cbs::tel {

/// A monotonically increasing count. Implicitly converts to uint64_t so
/// registered counters can replace raw struct fields in expressions.
struct Counter {
  uint64_t Value = 0;

  Counter &operator++() {
    ++Value;
    return *this;
  }
  Counter &operator+=(uint64_t N) {
    Value += N;
    return *this;
  }
  operator uint64_t() const { return Value; }
};

/// A point-in-time value (settable, not monotonic).
struct Gauge {
  uint64_t Value = 0;

  Gauge &operator=(uint64_t V) {
    Value = V;
    return *this;
  }
  void accumulateMax(uint64_t V) { Value = std::max(Value, V); }
  operator uint64_t() const { return Value; }
};

/// A histogram over uint64 values with fixed log2 buckets: bucket 0
/// holds the value 0 and bucket k (k >= 1) holds values in
/// [2^(k-1), 2^k). Also tracks count/sum/min/max.
class Histogram {
public:
  /// Bucket 0 plus one bucket per possible bit width.
  static constexpr size_t NumBuckets = 65;

  /// Bucket index of \p V: 0 for 0, else 1 + floor(log2(V)).
  static size_t bucketIndex(uint64_t V) {
    return static_cast<size_t>(std::bit_width(V));
  }
  /// Smallest value falling into bucket \p I.
  static uint64_t bucketLow(size_t I) {
    return I == 0 ? 0 : uint64_t(1) << (I - 1);
  }

  void record(uint64_t V) {
    ++Buckets[bucketIndex(V)];
    ++NumSamples;
    Sum += V;
    Min = std::min(Min, V);
    Max = std::max(Max, V);
  }

  /// Pointwise accumulation of \p Other: buckets, count, and sum add;
  /// min/max combine. Equivalent to replaying Other's samples here.
  void merge(const Histogram &Other) {
    for (size_t I = 0; I != NumBuckets; ++I)
      Buckets[I] += Other.Buckets[I];
    NumSamples += Other.NumSamples;
    Sum += Other.Sum;
    Min = std::min(Min, Other.Min);
    Max = std::max(Max, Other.Max);
  }

  uint64_t count() const { return NumSamples; }
  uint64_t sum() const { return Sum; }
  /// Minimum recorded value; 0 when empty.
  uint64_t min() const { return NumSamples == 0 ? 0 : Min; }
  uint64_t max() const { return Max; }
  double meanValue() const {
    return NumSamples == 0
               ? 0.0
               : static_cast<double>(Sum) / static_cast<double>(NumSamples);
  }
  uint64_t bucketCount(size_t I) const { return Buckets[I]; }

  /// Approximate \p Q-quantile (Q in [0, 1]) reconstructed from the
  /// log2 buckets: the continuous rank Q*count is located in its
  /// bucket, the value is linearly interpolated between the bucket's
  /// bounds [lo, 2*lo), and the result is clamped to the exact
  /// recorded [min, max] (so single-valued and edge quantiles are
  /// exact). An empty histogram has no quantiles: NaN, which JSON
  /// rendering translates to omitting the keys — a fabricated 0 would
  /// be indistinguishable from a real all-zero distribution.
  double quantile(double Q) const {
    if (NumSamples == 0)
      return std::numeric_limits<double>::quiet_NaN();
    double Target = Q * static_cast<double>(NumSamples);
    if (Target < 1.0)
      Target = 1.0; // rank of the first sample
    uint64_t Before = 0;
    for (size_t I = 0; I != NumBuckets; ++I) {
      if (Buckets[I] == 0)
        continue;
      double InBucket = static_cast<double>(Buckets[I]);
      if (static_cast<double>(Before) + InBucket >= Target) {
        double Lo = static_cast<double>(bucketLow(I));
        double Hi = I == 0 ? 1.0 : Lo * 2.0; // exclusive upper bound
        double Frac = (Target - static_cast<double>(Before)) / InBucket;
        double V = Lo + (Hi - Lo) * Frac;
        return std::min(std::max(V, static_cast<double>(min())),
                        static_cast<double>(Max));
      }
      Before += Buckets[I];
    }
    return static_cast<double>(Max);
  }

private:
  std::array<uint64_t, NumBuckets> Buckets{};
  uint64_t NumSamples = 0;
  uint64_t Sum = 0;
  uint64_t Min = UINT64_MAX;
  uint64_t Max = 0;
};

/// Owns every metric. counter()/gauge()/histogram() create on first use
/// and always return the same address for the same name afterwards, so
/// components can cache references at construction time and update them
/// without lookups. A name must not be reused across metric types.
///
/// Thread-ownership contract: a registry is single-threaded state. The
/// parallel experiment engine gives every task its own registry and
/// merges them into the parent *after* the worker barrier, on the
/// owning thread, in grid-index order (see experiments/ParallelRunner.h)
/// — there is no locked shared registry on any hot path.
class MetricRegistry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Folds \p Other into this registry as if Other's updates had been
  /// replayed here after our own: counters and histograms accumulate;
  /// gauges take Other's value (last write wins — merge order is the
  /// caller's serial order, so this matches a shared serial registry).
  /// A name present in both registries must have the same metric type.
  void merge(const MetricRegistry &Other);

  /// Lookup without creation (nullptr when absent).
  const Counter *findCounter(const std::string &Name) const;
  const Gauge *findGauge(const std::string &Name) const;
  const Histogram *findHistogram(const std::string &Name) const;

  size_t size() const {
    return Counters.size() + Gauges.size() + Histograms.size();
  }

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {...}}; names in sorted order, histogram buckets restricted to
  /// non-empty ones. Deterministic for a deterministic run.
  void writeJson(json::JsonWriter &W) const;
  std::string toJson() const;

  /// Human-oriented aligned table of every metric.
  std::string toText() const;

private:
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
};

} // namespace cbs::tel

#endif // CBSVM_TELEMETRY_METRICREGISTRY_H
