//===- telemetry/MetricRegistry.cpp - Named metrics --------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "telemetry/MetricRegistry.h"

#include "support/Json.h"
#include "support/TablePrinter.h"

#include <cassert>

using namespace cbs;
using namespace cbs::tel;

Counter &MetricRegistry::counter(const std::string &Name) {
  assert(!Gauges.count(Name) && !Histograms.count(Name) &&
         "metric name registered with a different type");
  return Counters[Name];
}

Gauge &MetricRegistry::gauge(const std::string &Name) {
  assert(!Counters.count(Name) && !Histograms.count(Name) &&
         "metric name registered with a different type");
  return Gauges[Name];
}

Histogram &MetricRegistry::histogram(const std::string &Name) {
  assert(!Counters.count(Name) && !Gauges.count(Name) &&
         "metric name registered with a different type");
  return Histograms[Name];
}

void MetricRegistry::merge(const MetricRegistry &Other) {
  for (const auto &[Name, C] : Other.Counters)
    counter(Name) += C.Value;
  for (const auto &[Name, G] : Other.Gauges)
    gauge(Name) = G.Value;
  for (const auto &[Name, H] : Other.Histograms)
    histogram(Name).merge(H);
}

const Counter *MetricRegistry::findCounter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? nullptr : &It->second;
}

const Gauge *MetricRegistry::findGauge(const std::string &Name) const {
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? nullptr : &It->second;
}

const Histogram *MetricRegistry::findHistogram(const std::string &Name) const {
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? nullptr : &It->second;
}

void MetricRegistry::writeJson(json::JsonWriter &W) const {
  W.beginObject();

  W.key("counters");
  W.beginObject();
  for (const auto &[Name, C] : Counters) {
    W.key(Name);
    W.value(C.Value);
  }
  W.endObject();

  W.key("gauges");
  W.beginObject();
  for (const auto &[Name, G] : Gauges) {
    W.key(Name);
    W.value(G.Value);
  }
  W.endObject();

  W.key("histograms");
  W.beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name);
    W.beginObject();
    W.key("count");
    W.value(H.count());
    W.key("sum");
    W.value(H.sum());
    W.key("min");
    W.value(H.min());
    W.key("max");
    W.value(H.max());
    // An empty histogram has no quantiles (quantile() returns NaN,
    // which JSON cannot represent): omit the keys instead of
    // fabricating a 0.
    if (H.count() != 0) {
      W.key("p50");
      W.value(H.quantile(0.50));
      W.key("p90");
      W.value(H.quantile(0.90));
      W.key("p99");
      W.value(H.quantile(0.99));
    }
    W.key("buckets");
    W.beginArray();
    for (size_t I = 0; I != Histogram::NumBuckets; ++I) {
      if (H.bucketCount(I) == 0)
        continue;
      W.beginObject();
      W.key("lo");
      W.value(Histogram::bucketLow(I));
      W.key("count");
      W.value(H.bucketCount(I));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();

  W.endObject();
}

std::string MetricRegistry::toJson() const {
  json::JsonWriter W;
  writeJson(W);
  return W.take();
}

std::string MetricRegistry::toText() const {
  TablePrinter TP;
  TP.setHeader({"metric", "type", "value"});
  for (const auto &[Name, C] : Counters)
    TP.addRow({Name, "counter", std::to_string(C.Value)});
  for (const auto &[Name, G] : Gauges)
    TP.addRow({Name, "gauge", std::to_string(G.Value)});
  for (const auto &[Name, H] : Histograms)
    TP.addRow({Name, "histogram",
               "count=" + std::to_string(H.count()) +
                   " sum=" + std::to_string(H.sum()) +
                   " min=" + std::to_string(H.min()) +
                   " max=" + std::to_string(H.max())});
  return TP.render();
}
