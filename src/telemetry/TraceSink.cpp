//===- telemetry/TraceSink.cpp - Trace event consumers -----------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "telemetry/TraceSink.h"

#include "support/Json.h"

using namespace cbs;
using namespace cbs::tel;

const char *tel::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::TimerTick:
    return "timer_tick";
  case EventKind::WindowArm:
    return "window_arm";
  case EventKind::WindowDisarm:
    return "window_disarm";
  case EventKind::Sample:
    return "sample";
  case EventKind::CompileStart:
    return "compile_start";
  case EventKind::CompileFinish:
    return "compile_finish";
  case EventKind::InlineDecision:
    return "inline_decision";
  case EventKind::GC:
    return "gc";
  case EventKind::ThreadSwitch:
    return "thread_switch";
  case EventKind::PhaseShift:
    return "phase_shift";
  case EventKind::SampleDrop:
    return "sample_drop";
  case EventKind::Trap:
    return "trap";
  case EventKind::CompileEnqueue:
    return "compile_enqueue";
  case EventKind::CompileInstall:
    return "compile_install";
  case EventKind::GuardFail:
    return "guard_fail";
  case EventKind::Deopt:
    return "deopt";
  case EventKind::Osr:
    return "osr";
  }
  return "?";
}

TraceSink::~TraceSink() = default;

RingBufferSink::RingBufferSink(size_t Capacity) : Capacity(Capacity) {
  Ring.reserve(Capacity);
}

void RingBufferSink::event(const TraceEvent &E) {
  ++PerKind[static_cast<size_t>(E.Kind)];
  if (Ring.size() < Capacity)
    Ring.push_back(E);
  else
    Ring[Total % Capacity] = E;
  ++Total;
}

std::vector<TraceEvent> RingBufferSink::snapshot() const {
  if (Total <= Capacity)
    return Ring;
  std::vector<TraceEvent> Out;
  Out.reserve(Capacity);
  size_t Oldest = Total % Capacity;
  for (size_t I = 0; I != Capacity; ++I)
    Out.push_back(Ring[(Oldest + I) % Capacity]);
  return Out;
}

void CollectorSink::drainTo(TraceSink &Sink) {
  for (const TraceEvent &E : Events)
    Sink.event(E);
  Events.clear();
}

namespace {

void writeArgs(json::JsonWriter &W, const TraceEvent &E,
               const std::function<std::string(uint32_t)> &Namer) {
  auto Method = [&](const char *Key, const char *NameKey, uint32_t Id) {
    W.key(Key);
    W.value(static_cast<uint64_t>(Id));
    if (Namer && Id != UINT32_MAX) {
      W.key(NameKey);
      W.value(Namer(Id));
    }
  };
  switch (E.Kind) {
  case EventKind::TimerTick:
    Method("method", "method_name", E.A);
    break;
  case EventKind::WindowArm:
    W.key("samples_per_tick");
    W.value(static_cast<uint64_t>(E.A));
    break;
  case EventKind::WindowDisarm:
    break;
  case EventKind::Sample:
    W.key("site");
    W.value(static_cast<uint64_t>(E.B));
    Method("callee", "callee_name", E.A);
    break;
  case EventKind::CompileStart:
  case EventKind::CompileFinish:
    Method("method", "method_name", E.A);
    W.key("level");
    W.value(static_cast<uint64_t>(E.B));
    if (E.Kind == EventKind::CompileFinish) {
      W.key("cost_cycles");
      W.value(E.C);
    }
    break;
  case EventKind::InlineDecision:
    W.key("site");
    W.value(static_cast<uint64_t>(E.B));
    Method("target", "target_name", E.A);
    W.key("decision");
    W.value(E.C == 1 ? "direct" : "guarded");
    break;
  case EventKind::GC:
    W.key("heap_bytes");
    W.value(E.C);
    break;
  case EventKind::ThreadSwitch:
    W.key("to_thread");
    W.value(static_cast<uint64_t>(E.A));
    break;
  case EventKind::PhaseShift:
    W.key("overlap_bp");
    W.value(static_cast<uint64_t>(E.A));
    W.key("window");
    W.value(static_cast<uint64_t>(E.B));
    break;
  case EventKind::SampleDrop:
    W.key("capacity");
    W.value(static_cast<uint64_t>(E.A));
    W.key("dropped");
    W.value(E.C);
    break;
  case EventKind::Trap:
    Method("method", "method_name", E.A);
    W.key("pc");
    W.value(static_cast<uint64_t>(E.B));
    break;
  case EventKind::CompileEnqueue:
    Method("method", "method_name", E.A);
    W.key("level");
    W.value(static_cast<uint64_t>(E.B));
    W.key("ready_cycle");
    W.value(E.C);
    break;
  case EventKind::CompileInstall:
    Method("method", "method_name", E.A);
    W.key("level");
    W.value(static_cast<uint64_t>(E.B));
    W.key("waited_cycles");
    W.value(E.C);
    break;
  case EventKind::GuardFail:
    Method("method", "method_name", E.A);
    W.key("site");
    W.value(static_cast<uint64_t>(E.B));
    Method("assumed_callee", "assumed_callee_name",
           static_cast<uint32_t>(E.C));
    break;
  case EventKind::Deopt:
    Method("method", "method_name", E.A);
    W.key("level");
    W.value(static_cast<uint64_t>(E.B));
    W.key("deopt_count");
    W.value(E.C);
    break;
  case EventKind::Osr:
    Method("method", "method_name", E.A);
    W.key("to_level");
    W.value(static_cast<uint64_t>(E.B));
    W.key("direction");
    W.value(E.C == 1 ? "promotion" : "deopt_exit");
    break;
  }
}

} // namespace

std::string ChromeTraceSink::str() const {
  json::JsonWriter W;
  W.beginObject();
  W.key("displayTimeUnit");
  W.value("ns");
  W.key("traceEvents");
  W.beginArray();
  for (const TraceEvent &E : Events) {
    W.beginObject();
    W.key("name");
    W.value(eventKindName(E.Kind));
    W.key("cat");
    W.value("cbsvm");
    W.key("ph");
    // Compile start/finish form a duration pair; everything else is an
    // instant event (thread-scoped).
    if (E.Kind == EventKind::CompileStart)
      W.value("B");
    else if (E.Kind == EventKind::CompileFinish)
      W.value("E");
    else {
      W.value("i");
      W.key("s");
      W.value("t");
    }
    W.key("ts");
    W.value(E.Cycles);
    W.key("pid");
    W.value(uint64_t(1));
    W.key("tid");
    W.value(static_cast<uint64_t>(E.Thread));
    W.key("args");
    W.beginObject();
    writeArgs(W, E, Namer);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}
