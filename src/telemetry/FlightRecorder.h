//===- telemetry/FlightRecorder.h - Anomaly-triggered dumps -----*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A black-box flight recorder for the VM: a bounded ring of recent
/// TraceEvents (it *is* a TraceSink, so it can serve as the VM's trace
/// sink directly) plus a bounded ring of rolling metric-delta windows
/// the VM feeds at each quality-monitor boundary. When an anomaly
/// fires, the recorder freezes a copy of both rings into a Dump:
///
///   phase_shift      a PhaseShift event arrived (the quality monitor
///                    saw the hot set move)
///   drop_spike       SampleDrop events accumulated more dropped
///                    samples than DropSpikeThreshold within one window
///   deopt_storm      Deopt events reached DeoptStormThreshold within
///                    one window (the adaptive system is thrashing
///                    between plans faster than it can recompile)
///   overhead_budget  a window note reported profiling overhead above
///                    OverheadBudgetPct (fires on the crossing, not on
///                    every subsequent window)
///   trap             the VM trapped fatally
///   <on demand>      requestDump("...") — cbsvm report uses
///                    "end_of_run"
///
/// Dumps are capped at MaxDumps (triggers past the cap are still
/// counted), rendered as deterministic JSON via writeJson(). Like
/// every sink, the recorder is an observer: installing one never
/// changes what the run computes, and with no recorder installed the
/// VM pays only its usual per-emission-site null check.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_TELEMETRY_FLIGHTRECORDER_H
#define CBSVM_TELEMETRY_FLIGHTRECORDER_H

#include "telemetry/TraceSink.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cbs::json {
class JsonWriter;
}

namespace cbs::tel {

struct FlightRecorderConfig {
  /// Events retained in the ring (the dump tail).
  size_t EventCapacity = 256;
  /// Rolling metric-delta windows retained.
  size_t WindowCapacity = 32;
  /// Dumps retained; later triggers only bump the trigger count.
  size_t MaxDumps = 8;
  /// Dropped samples within one window that count as a spike (0 =
  /// trigger disabled).
  uint64_t DropSpikeThreshold = 256;
  /// Deoptimizations within one window that count as a storm.
  uint64_t DeoptStormThreshold = 4;
  /// Profiling overhead (percent of all cycles) above which a window
  /// note trips the budget trigger (0 = trigger disabled).
  double OverheadBudgetPct = 0.0;
};

/// One rolling observation: deltas since the previous window note.
/// Filled by the VM from its own counters (the recorder does not read
/// the registry).
struct RecorderWindow {
  uint64_t Index = 0;
  uint64_t Tick = 0;
  uint64_t Cycles = 0;
  uint64_t DeltaCycles = 0;
  uint64_t DeltaSamples = 0;
  uint64_t DeltaDrops = 0;
  uint64_t DeltaFlushes = 0;
  uint64_t DeltaProfilingCycles = 0;
  uint64_t OverlapBp = 0;  ///< quality-monitor overlap, basis points
  uint64_t OverheadBp = 0; ///< run-total overhead fraction, basis points
};

class FlightRecorder : public TraceSink {
public:
  explicit FlightRecorder(FlightRecorderConfig Config = {});

  /// TraceSink: records into the ring and checks the event-driven
  /// anomaly triggers.
  void event(const TraceEvent &E) override;

  /// Window boundary: append a rolling delta record, check the budget
  /// trigger, and reset the per-window drop accumulator.
  void noteWindow(const RecorderWindow &W);

  /// On-demand dump (subject to the same MaxDumps cap).
  void requestDump(const std::string &Trigger, uint64_t Cycles);

  struct Dump {
    std::string Trigger;
    uint64_t Cycles = 0;
    uint64_t TotalEventsAtDump = 0;
    std::vector<TraceEvent> Events;      ///< ring tail, oldest first
    std::vector<RecorderWindow> Windows; ///< rolling deltas, oldest first
  };

  const FlightRecorderConfig &config() const { return Config; }
  uint64_t totalEvents() const { return Ring.totalEvents(); }
  uint64_t countOf(EventKind K) const { return Ring.countOf(K); }
  /// Anomalies observed (dumps taken + triggers past the MaxDumps cap).
  uint64_t triggerCount() const { return Triggers; }
  const std::vector<Dump> &dumps() const { return Dumps; }
  std::vector<RecorderWindow> windows() const;

  /// {"eventCapacity":..., "totalEvents":..., "perKind":{...},
  ///  "triggers":..., "dumps":[...]} — deterministic.
  void writeJson(json::JsonWriter &W) const;
  std::string toJson() const;

private:
  void trigger(const std::string &Why, uint64_t Cycles);

  FlightRecorderConfig Config;
  RingBufferSink Ring;
  std::vector<RecorderWindow> WindowRing; ///< ring indexed by WindowsTotal
  uint64_t WindowsTotal = 0;
  uint64_t DropsThisWindow = 0;
  bool DropSpikeFired = false;
  uint64_t DeoptsThisWindow = 0;
  bool DeoptStormFired = false;
  bool OverBudget = false;
  uint64_t Triggers = 0;
  std::vector<Dump> Dumps;
};

} // namespace cbs::tel

#endif // CBSVM_TELEMETRY_FLIGHTRECORDER_H
