//===- telemetry/TraceSink.h - Trace event consumers ------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Consumers of the VM's structured trace events. The VM holds a plain
/// `TraceSink *` that defaults to null; every emission site is guarded
/// by that single null check, so tracing preserves the paper's
/// free-when-disarmed property — with no sink installed the only cost
/// is a branch on already-slow paths (ticks, samples, compiles, GC),
/// and the per-instruction interpreter loop is untouched.
///
/// Two sinks ship with the library:
///  - RingBufferSink: retains the most recent N events with per-kind
///    totals over the whole run; no allocation after construction.
///  - ChromeTraceSink: records everything and renders the Chrome
///    `trace_event` JSON format (load in chrome://tracing / Perfetto).
///    Timestamps are virtual cycles; compile start/finish become B/E
///    duration pairs, everything else instant events.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_TELEMETRY_TRACESINK_H
#define CBSVM_TELEMETRY_TRACESINK_H

#include "telemetry/TraceEvent.h"

#include <array>
#include <functional>
#include <string>
#include <vector>

namespace cbs::tel {

class TraceSink {
public:
  virtual ~TraceSink();
  virtual void event(const TraceEvent &E) = 0;
};

/// Keeps the last \p Capacity events plus exact per-kind counts for the
/// entire run (the counts are what tests cross-check against VMStats).
class RingBufferSink : public TraceSink {
public:
  explicit RingBufferSink(size_t Capacity = 4096);

  void event(const TraceEvent &E) override;

  /// Events observed over the whole run (not just those retained).
  uint64_t totalEvents() const { return Total; }
  uint64_t countOf(EventKind K) const {
    return PerKind[static_cast<size_t>(K)];
  }

  /// Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

private:
  std::vector<TraceEvent> Ring;
  size_t Capacity;
  uint64_t Total = 0;
  std::array<uint64_t, NumEventKinds> PerKind{};
};

/// Buffers every event verbatim for later replay into another sink.
/// This is the per-task trace buffer of the parallel experiment
/// engine: each worker records into its private CollectorSink, and the
/// owning thread drains the buffers into the parent sink in grid-index
/// order after the barrier, so the parent sees the exact serial
/// interleaving regardless of job count.
class CollectorSink : public TraceSink {
public:
  void event(const TraceEvent &E) override { Events.push_back(E); }

  size_t numEvents() const { return Events.size(); }
  const std::vector<TraceEvent> &events() const { return Events; }

  /// Replays every buffered event into \p Sink in emission order, then
  /// clears the buffer. Caller's thread must own both sinks.
  void drainTo(TraceSink &Sink);

private:
  std::vector<TraceEvent> Events;
};

/// Accumulates every event and renders Chrome trace_event JSON. An
/// optional method namer turns method ids into readable names in the
/// event args (the ids are always present regardless).
class ChromeTraceSink : public TraceSink {
public:
  void event(const TraceEvent &E) override { Events.push_back(E); }

  void setMethodNamer(std::function<std::string(uint32_t)> Namer) {
    this->Namer = std::move(Namer);
  }

  size_t numEvents() const { return Events.size(); }
  const std::vector<TraceEvent> &events() const { return Events; }

  /// The complete JSON document. Deterministic: a deterministic run
  /// produces byte-identical output.
  std::string str() const;

private:
  std::vector<TraceEvent> Events;
  std::function<std::string(uint32_t)> Namer;
};

} // namespace cbs::tel

#endif // CBSVM_TELEMETRY_TRACESINK_H
