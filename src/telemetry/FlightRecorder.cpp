//===- telemetry/FlightRecorder.cpp - Anomaly-triggered dumps ----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "telemetry/FlightRecorder.h"

#include "support/Json.h"

using namespace cbs;
using namespace cbs::tel;

FlightRecorder::FlightRecorder(FlightRecorderConfig Config)
    : Config(Config), Ring(Config.EventCapacity) {
  WindowRing.reserve(Config.WindowCapacity);
}

void FlightRecorder::event(const TraceEvent &E) {
  Ring.event(E);
  switch (E.Kind) {
  case EventKind::PhaseShift:
    trigger("phase_shift", E.Cycles);
    break;
  case EventKind::Trap:
    trigger("trap", E.Cycles);
    break;
  case EventKind::SampleDrop:
    DropsThisWindow += E.C;
    if (Config.DropSpikeThreshold != 0 && !DropSpikeFired &&
        DropsThisWindow >= Config.DropSpikeThreshold) {
      // One spike dump per window: a saturated buffer would otherwise
      // flood the dump list with copies of the same ring.
      DropSpikeFired = true;
      trigger("drop_spike", E.Cycles);
    }
    break;
  case EventKind::Deopt:
    ++DeoptsThisWindow;
    if (Config.DeoptStormThreshold != 0 && !DeoptStormFired &&
        DeoptsThisWindow >= Config.DeoptStormThreshold) {
      // Same once-per-window rule as drop_spike: a storm by definition
      // keeps firing, one ring copy per window is enough.
      DeoptStormFired = true;
      trigger("deopt_storm", E.Cycles);
    }
    break;
  default:
    break;
  }
}

void FlightRecorder::noteWindow(const RecorderWindow &W) {
  if (Config.WindowCapacity != 0) {
    if (WindowRing.size() < Config.WindowCapacity)
      WindowRing.push_back(W);
    else
      WindowRing[WindowsTotal % Config.WindowCapacity] = W;
  }
  ++WindowsTotal;
  DropsThisWindow = 0;
  DropSpikeFired = false;
  DeoptsThisWindow = 0;
  DeoptStormFired = false;

  if (Config.OverheadBudgetPct > 0.0) {
    bool Over = static_cast<double>(W.OverheadBp) >
                Config.OverheadBudgetPct * 100.0;
    // Rising edge only: the run-total fraction moves slowly, so once
    // over budget it tends to stay there for many windows.
    if (Over && !OverBudget)
      trigger("overhead_budget", W.Cycles);
    OverBudget = Over;
  }
}

std::vector<RecorderWindow> FlightRecorder::windows() const {
  if (WindowsTotal <= WindowRing.size())
    return WindowRing;
  std::vector<RecorderWindow> Out;
  Out.reserve(WindowRing.size());
  size_t Oldest = WindowsTotal % WindowRing.size();
  for (size_t I = 0; I != WindowRing.size(); ++I)
    Out.push_back(WindowRing[(Oldest + I) % WindowRing.size()]);
  return Out;
}

void FlightRecorder::requestDump(const std::string &Trigger, uint64_t Cycles) {
  trigger(Trigger, Cycles);
}

void FlightRecorder::trigger(const std::string &Why, uint64_t Cycles) {
  ++Triggers;
  if (Dumps.size() >= Config.MaxDumps)
    return;
  Dump D;
  D.Trigger = Why;
  D.Cycles = Cycles;
  D.TotalEventsAtDump = Ring.totalEvents();
  D.Events = Ring.snapshot();
  D.Windows = windows();
  Dumps.push_back(std::move(D));
}

namespace {

void writeEvent(json::JsonWriter &W, const TraceEvent &E) {
  W.beginObject();
  W.key("kind");
  W.value(eventKindName(E.Kind));
  W.key("thread");
  W.value(static_cast<uint64_t>(E.Thread));
  W.key("cycles");
  W.value(E.Cycles);
  W.key("a");
  W.value(static_cast<uint64_t>(E.A));
  W.key("b");
  W.value(static_cast<uint64_t>(E.B));
  W.key("c");
  W.value(E.C);
  W.endObject();
}

void writeWindow(json::JsonWriter &W, const RecorderWindow &Win) {
  W.beginObject();
  W.key("window");
  W.value(Win.Index);
  W.key("tick");
  W.value(Win.Tick);
  W.key("cycles");
  W.value(Win.Cycles);
  W.key("deltaCycles");
  W.value(Win.DeltaCycles);
  W.key("deltaSamples");
  W.value(Win.DeltaSamples);
  W.key("deltaDrops");
  W.value(Win.DeltaDrops);
  W.key("deltaFlushes");
  W.value(Win.DeltaFlushes);
  W.key("deltaProfilingCycles");
  W.value(Win.DeltaProfilingCycles);
  W.key("overlapBp");
  W.value(Win.OverlapBp);
  W.key("overheadBp");
  W.value(Win.OverheadBp);
  W.endObject();
}

} // namespace

void FlightRecorder::writeJson(json::JsonWriter &W) const {
  W.beginObject();
  W.key("eventCapacity");
  W.value(static_cast<uint64_t>(Config.EventCapacity));
  W.key("totalEvents");
  W.value(Ring.totalEvents());
  W.key("perKind");
  W.beginObject();
  for (unsigned K = 0; K != NumEventKinds; ++K) {
    if (Ring.countOf(static_cast<EventKind>(K)) == 0)
      continue;
    W.key(eventKindName(static_cast<EventKind>(K)));
    W.value(Ring.countOf(static_cast<EventKind>(K)));
  }
  W.endObject();
  W.key("triggers");
  W.value(Triggers);
  W.key("dumps");
  W.beginArray();
  for (const Dump &D : Dumps) {
    W.beginObject();
    W.key("trigger");
    W.value(D.Trigger);
    W.key("cycles");
    W.value(D.Cycles);
    W.key("totalEventsAtDump");
    W.value(D.TotalEventsAtDump);
    W.key("windows");
    W.beginArray();
    for (const RecorderWindow &Win : D.Windows)
      writeWindow(W, Win);
    W.endArray();
    W.key("events");
    W.beginArray();
    for (const TraceEvent &E : D.Events)
      writeEvent(W, E);
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

std::string FlightRecorder::toJson() const {
  json::JsonWriter W;
  writeJson(W);
  return W.take();
}
