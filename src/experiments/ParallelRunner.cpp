//===- experiments/ParallelRunner.cpp - Deterministic task pool ----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "experiments/ParallelRunner.h"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

using namespace cbs;
using namespace cbs::exp;

unsigned exp::resolveJobs(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  if (const char *Env = std::getenv("CBSVM_JOBS")) {
    long V = std::strtol(Env, nullptr, 10);
    if (V >= 1 && V <= 1024)
      return static_cast<unsigned>(V);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ParallelRunner::ParallelRunner(ParallelConfig Config)
    : Config(Config), Jobs(resolveJobs(Config.Jobs)) {}

namespace {

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

void ParallelRunner::commit(TaskContext &Ctx, const CommitFn &Commit) {
  // Calling thread only. Merge order is the index order, which makes
  // parent-registry contents independent of worker scheduling.
  if (Config.Metrics)
    Config.Metrics->merge(Ctx.Metrics);
  if (Config.Trace)
    Ctx.Trace.drainTo(*Config.Trace);
  if (Commit)
    Commit(Ctx);
  Last.BusyMicros += Ctx.TaskMicros;
}

void ParallelRunner::run(size_t NumTasks, const TaskFn &Task,
                         const CommitFn &Commit) {
  Last = RunStats();
  Last.Jobs = Jobs;
  Last.Tasks = NumTasks;
  uint64_t WallStart = nowMicros();

  auto makeContext = [&](size_t Index) {
    auto Ctx = std::make_unique<TaskContext>();
    Ctx->Index = Index;
    Ctx->RNG.reseed(Config.SeedBase + Index);
    return Ctx;
  };
  auto runTask = [&](TaskContext &Ctx) {
    uint64_t Start = nowMicros();
    Task(Ctx);
    Ctx.TaskMicros = nowMicros() - Start;
  };

  if (Jobs == 1 || NumTasks <= 1) {
    // The serial path: no threads, same per-task seeding and commit
    // order as the pool, so the two paths are interchangeable.
    for (size_t I = 0; I != NumTasks; ++I) {
      auto Ctx = makeContext(I);
      runTask(*Ctx);
      commit(*Ctx, Commit);
    }
  } else {
    // Fixed-size pool. Workers claim indices from a shared cursor and
    // park finished contexts in their slot; the calling thread commits
    // slots in index order as they become ready (pipelined: commits of
    // early indices overlap execution of later ones).
    std::mutex Mutex;
    std::condition_variable Ready;
    std::vector<std::unique_ptr<TaskContext>> Finished(NumTasks);
    size_t NextIndex = 0;

    auto worker = [&] {
      for (;;) {
        size_t Index;
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          if (NextIndex == NumTasks)
            return;
          Index = NextIndex++;
        }
        auto Ctx = makeContext(Index);
        runTask(*Ctx);
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          Finished[Index] = std::move(Ctx);
        }
        Ready.notify_one();
      }
    };

    std::vector<std::thread> Pool;
    unsigned NumWorkers =
        static_cast<unsigned>(std::min<size_t>(Jobs, NumTasks));
    Pool.reserve(NumWorkers);
    for (unsigned W = 0; W != NumWorkers; ++W)
      Pool.emplace_back(worker);

    for (size_t I = 0; I != NumTasks; ++I) {
      std::unique_ptr<TaskContext> Ctx;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        Ready.wait(Lock, [&] { return Finished[I] != nullptr; });
        Ctx = std::move(Finished[I]);
      }
      commit(*Ctx, Commit);
    }

    for (std::thread &T : Pool)
      T.join();
  }

  Last.WallMicros = nowMicros() - WallStart;
  if (Config.Metrics)
    publishMetrics(*Config.Metrics, Last);
}

void ParallelRunner::publishMetrics(tel::MetricRegistry &R,
                                    const RunStats &Stats) {
  R.counter("runner.tasks") += Stats.Tasks;
  R.counter("runner.wall_us") += Stats.WallMicros;
  R.counter("runner.busy_us") += Stats.BusyMicros;
  R.gauge("runner.jobs") = Stats.Jobs;
  // Aggregate speedup over every region published so far.
  uint64_t Wall = R.counter("runner.wall_us");
  uint64_t Busy = R.counter("runner.busy_us");
  R.gauge("runner.speedup_x100") =
      Wall == 0 ? 100 : (Busy * 100 + Wall / 2) / Wall;
}
