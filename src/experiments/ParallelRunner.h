//===- experiments/ParallelRunner.h - Deterministic task pool ---*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic parallel experiment engine. Every table and figure
/// is a grid of independent runs — each run is a pure function of
/// (program, VMConfig, seed) — so the grid can fan out across cores
/// without changing a single output byte, provided the *observable*
/// side effects are committed in the serial order. This engine makes
/// that contract explicit:
///
///  - A fixed-size worker pool executes tasks keyed by grid index.
///  - Each task owns a TaskContext: a RandomEngine seeded from the grid
///    index, a private tel::MetricRegistry, and a private trace
///    collector. Workers never touch shared mutable state.
///  - Results are committed on the *calling* thread in strict index
///    order (task k's commit happens-after task k-1's), so reductions
///    over floating-point sums, metric merges, and trace replays are
///    byte-identical to the serial schedule regardless of job count.
///
/// Thread-ownership contract (see DESIGN.md §8):
///  - The task callback runs on a worker thread. It may mutate only its
///    TaskContext, task-local objects, and state owned exclusively by
///    its grid index (e.g. slot k of a preallocated results vector);
///    everything else it reads from the enclosing scope must be
///    immutable for the duration of run().
///  - The commit callback runs on the calling thread, in index order,
///    and is the only place allowed to touch shared accumulators.
///  - The parent registry / trace sink are touched only by the calling
///    thread (merges happen at commit time, never from workers).
///
/// Jobs == 1 runs everything inline on the calling thread — the exact
/// serial path, no threads spawned.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_EXPERIMENTS_PARALLELRUNNER_H
#define CBSVM_EXPERIMENTS_PARALLELRUNNER_H

#include "support/Random.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/TraceSink.h"

#include <cstdint>
#include <functional>

namespace cbs::exp {

/// Resolves a job count: \p Requested if nonzero, else the CBSVM_JOBS
/// environment variable (1..1024), else std::thread::hardware_concurrency
/// (at least 1). This is the single knob behind every bench binary's
/// `--jobs N` flag.
unsigned resolveJobs(unsigned Requested = 0);

/// How a parallel region plugs into its caller: job count plus optional
/// parent telemetry. Both parent pointers are non-owning and touched
/// only from the calling thread.
struct ParallelConfig {
  /// 0 = resolveJobs() (CBSVM_JOBS, then hardware concurrency).
  unsigned Jobs = 0;
  /// Merge target for per-task registries and the engine's own
  /// `runner.*` metrics (tasks, wall/busy micros, jobs, speedup).
  tel::MetricRegistry *Metrics = nullptr;
  /// Per-task trace events are replayed into this sink at commit time,
  /// in index order — the interleaving matches a serial run.
  tel::TraceSink *Trace = nullptr;
  /// Added to the grid index to seed each TaskContext's RandomEngine.
  uint64_t SeedBase = 0;
};

class ParallelRunner {
public:
  /// Everything a task owns. Created fresh per grid index; never shared
  /// between tasks or threads.
  struct TaskContext {
    /// The grid index this task is keyed by.
    size_t Index = 0;
    /// Deterministic per-task stream: reseeded from SeedBase + Index,
    /// independent of the worker the task lands on.
    RandomEngine RNG;
    /// Private per-run registry, merged into ParallelConfig::Metrics at
    /// commit time (index order).
    tel::MetricRegistry Metrics;
    /// Private per-run trace buffer, replayed into
    /// ParallelConfig::Trace at commit time (index order).
    tel::CollectorSink Trace;
    /// Host-time cost of the task body (filled by the engine).
    uint64_t TaskMicros = 0;
  };

  using TaskFn = std::function<void(TaskContext &)>;
  using CommitFn = std::function<void(TaskContext &)>;

  explicit ParallelRunner(ParallelConfig Config = {});

  /// The resolved worker count.
  unsigned jobs() const { return Jobs; }

  /// Executes Task(ctx) for every index in [0, NumTasks) across the
  /// pool, then for each index, in strictly increasing order on the
  /// calling thread: merges ctx.Metrics into the parent registry,
  /// replays ctx.Trace into the parent sink, and invokes \p Commit.
  /// Output is byte-identical to Jobs == 1 for any job count.
  void run(size_t NumTasks, const TaskFn &Task, const CommitFn &Commit = {});

  /// Host wall-clock accounting of the most recent run().
  struct RunStats {
    unsigned Jobs = 1;
    uint64_t Tasks = 0;
    uint64_t WallMicros = 0;
    /// Sum of per-task host times: the serial-equivalent cost.
    uint64_t BusyMicros = 0;
    /// Busy / wall — the realized parallel speedup.
    double speedup() const {
      return WallMicros == 0
                 ? 1.0
                 : static_cast<double>(BusyMicros) /
                       static_cast<double>(WallMicros);
    }
  };
  const RunStats &lastRun() const { return Last; }

  /// Publishes the engine's accumulated accounting as `runner.*`
  /// metrics into \p R: counters runner.tasks / runner.wall_us /
  /// runner.busy_us plus gauges runner.jobs and runner.speedup_x100
  /// (recomputed from the registry's accumulated totals, so repeated
  /// regions aggregate). Host-time values are nondeterministic by
  /// nature and must never feed result tables.
  static void publishMetrics(tel::MetricRegistry &R, const RunStats &Stats);

private:
  void commit(TaskContext &Ctx, const CommitFn &Commit);

  ParallelConfig Config;
  unsigned Jobs;
  RunStats Last;
};

} // namespace cbs::exp

#endif // CBSVM_EXPERIMENTS_PARALLELRUNNER_H
