//===- experiments/Experiments.cpp - Experiment harness ----------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "experiments/Experiments.h"

#include "opt/Compiler.h"
#include "opt/InlineOracle.h"
#include "profiling/OverlapMetric.h"
#include "profiling/ProfilerRegistry.h"
#include "support/ErrorHandling.h"
#include "support/Statistics.h"

#include <cstdlib>

using namespace cbs;
using namespace cbs::exp;

unsigned exp::envRuns(unsigned Default) {
  if (const char *Env = std::getenv("CBSVM_RUNS")) {
    long V = std::strtol(Env, nullptr, 10);
    if (V >= 1 && V <= 1000)
      return static_cast<unsigned>(V);
  }
  return Default;
}

void exp::applyJitOnly(const bc::Program &P, vm::VMConfig &Config) {
  Config.JITLevel = 0;
  // Safety net: accuracy runs must terminate. Generously above any
  // benchmark's large-input run time.
  Config.MaxCycles = 4'000'000'000ull;

  // Trivial inlining only (§6.2's "low level of optimization ... so
  // that trivial methods would be inlined, but all other calls
  // remain").
  auto Plan = std::make_shared<opt::InlinePlan>(
      opt::TrivialOracle().plan(P, prof::DCGSnapshot()));
  opt::CompileOptions CO;
  CO.RunOptimizer = false;
  Config.CompileHook = opt::makeCompileHook(std::move(Plan), Config.Costs, CO);
}

vm::VMConfig exp::jitOnlyConfig(const bc::Program &P, vm::Personality Pers,
                                uint64_t Seed) {
  vm::VMConfig Config;
  Config.Pers = Pers;
  Config.Seed = Seed;
  applyJitOnly(P, Config);
  return Config;
}

PerfectProfile exp::runPerfect(const bc::Program &P, vm::Personality Pers,
                               uint64_t Seed) {
  vm::VMConfig Config = jitOnlyConfig(P, Pers, Seed);
  prof::ProfilerRegistry::instance().configure("exhaustive", Config.Profiler);

  vm::VirtualMachine VM(P, Config);
  vm::RunState State = VM.run();
  if (State == vm::RunState::Trapped)
    reportFatalError("perfect run trapped: " + VM.trapMessage());

  PerfectProfile Perfect;
  Perfect.DCG = VM.profile();
  Perfect.BaseCycles = VM.stats().Cycles;
  Perfect.Instructions = VM.stats().Instructions;
  Perfect.Calls = VM.stats().CallsExecuted;
  Perfect.MethodsExecuted = VM.methodsExecuted();
  Perfect.Output = VM.output();
  return Perfect;
}

AccuracyCell exp::measureAccuracy(const bc::Program &P, vm::Personality Pers,
                                  const vm::ProfilerOptions &Prof,
                                  const PerfectProfile &Perfect,
                                  uint64_t Seed) {
  vm::VMConfig Config = jitOnlyConfig(P, Pers, Seed);
  Config.Profiler = Prof;

  vm::VirtualMachine VM(P, Config);
  vm::RunState State = VM.run();
  if (State == vm::RunState::Trapped)
    reportFatalError("profiled run trapped: " + VM.trapMessage());

  AccuracyCell Cell;
  Cell.OverheadPct =
      100.0 *
      (static_cast<double>(VM.stats().Cycles) -
       static_cast<double>(Perfect.BaseCycles)) /
      static_cast<double>(Perfect.BaseCycles);
  Cell.AccuracyPct = prof::accuracy(VM.profile(), Perfect.DCG);
  Cell.SamplesTaken = VM.stats().SamplesTaken;
  return Cell;
}

AccuracyCell exp::measureAccuracyMedian(const wl::WorkloadInfo &W,
                                        wl::InputSize Size,
                                        vm::Personality Pers,
                                        const vm::ProfilerOptions &Prof,
                                        unsigned Runs, uint64_t BaseSeed,
                                        const ParallelConfig &Par) {
  std::vector<double> Overheads, Accuracies;
  uint64_t Samples = 0;

  // One task per seed. Each task writes only its own slot of Cells (the
  // disjoint per-index slot the ownership contract allows); the commit
  // phase folds the slots into the shared accumulators in seed order.
  std::vector<AccuracyCell> Cells(Runs);
  ParallelRunner Runner(Par);
  Runner.run(
      Runs,
      [&](ParallelRunner::TaskContext &Ctx) {
        uint64_t Seed = BaseSeed + Ctx.Index;
        bc::Program P = W.Build(Size, Seed);
        PerfectProfile Perfect = runPerfect(P, Pers, Seed);
        Cells[Ctx.Index] = measureAccuracy(P, Pers, Prof, Perfect, Seed);
        Ctx.Metrics.counter("exp.vm_runs") += 2;
        Ctx.Metrics.counter("exp.samples_taken") +=
            Cells[Ctx.Index].SamplesTaken;
      },
      [&](ParallelRunner::TaskContext &Ctx) {
        const AccuracyCell &Cell = Cells[Ctx.Index];
        Overheads.push_back(Cell.OverheadPct);
        Accuracies.push_back(Cell.AccuracyPct);
        Samples += Cell.SamplesTaken;
      });

  AccuracyCell Median;
  Median.OverheadPct = median(Overheads);
  Median.AccuracyPct = median(Accuracies);
  Median.SamplesTaken = Samples / std::max(1u, Runs);
  return Median;
}

SweepResult exp::runSweep(
    vm::Personality Pers,
    const std::vector<const wl::WorkloadInfo *> &Workloads,
    wl::InputSize Size, std::vector<uint32_t> Strides,
    std::vector<uint32_t> SamplesPerTick, unsigned Runs, uint64_t BaseSeed,
    const ParallelConfig &Par) {
  SweepResult Result;
  Result.Strides = std::move(Strides);
  Result.SamplesPerTick = std::move(SamplesPerTick);
  Result.Cells.assign(Result.SamplesPerTick.size(),
                      std::vector<AccuracyCell>(Result.Strides.size()));

  // Per-cell, per-seed accumulation of the benchmark averages.
  size_t NumCells = Result.SamplesPerTick.size() * Result.Strides.size();
  std::vector<std::vector<double>> OverheadBySeed(NumCells),
      AccuracyBySeed(NumCells);

  // One task per (seed, workload) pair, seed-major so index-order
  // commits reproduce the serial accumulation order exactly: within a
  // seed, workloads fold into the running sums in suite order, and the
  // per-seed averages are pushed when the seed's last workload commits.
  size_t TasksPerSeed = Workloads.size();
  std::vector<std::vector<AccuracyCell>> TaskCells(Runs * TasksPerSeed);
  std::vector<double> OverheadSum(NumCells, 0), AccuracySum(NumCells, 0);

  ParallelRunner Runner(Par);
  Runner.run(
      Runs * TasksPerSeed,
      [&](ParallelRunner::TaskContext &Ctx) {
        uint64_t Seed = BaseSeed + Ctx.Index / TasksPerSeed;
        const wl::WorkloadInfo *W = Workloads[Ctx.Index % TasksPerSeed];
        bc::Program P = W->Build(Size, Seed);
        PerfectProfile Perfect = runPerfect(P, Pers, Seed);
        std::vector<AccuracyCell> &Cells = TaskCells[Ctx.Index];
        Cells.resize(NumCells);
        for (size_t SI = 0; SI != Result.SamplesPerTick.size(); ++SI) {
          for (size_t TI = 0; TI != Result.Strides.size(); ++TI) {
            vm::ProfilerOptions Prof;
            Prof.Kind = vm::ProfilerKind::CBS;
            Prof.CBS.Stride = Result.Strides[TI];
            Prof.CBS.SamplesPerTick = Result.SamplesPerTick[SI];
            Cells[SI * Result.Strides.size() + TI] =
                measureAccuracy(P, Pers, Prof, Perfect, Seed);
          }
        }
        Ctx.Metrics.counter("exp.vm_runs") += 1 + NumCells;
        for (const AccuracyCell &Cell : Cells)
          Ctx.Metrics.counter("exp.samples_taken") += Cell.SamplesTaken;
      },
      [&](ParallelRunner::TaskContext &Ctx) {
        std::vector<AccuracyCell> &Cells = TaskCells[Ctx.Index];
        for (size_t Idx = 0; Idx != NumCells; ++Idx) {
          OverheadSum[Idx] += Cells[Idx].OverheadPct;
          AccuracySum[Idx] += Cells[Idx].AccuracyPct;
        }
        Cells.clear();
        Cells.shrink_to_fit();
        if (Ctx.Index % TasksPerSeed == TasksPerSeed - 1) {
          for (size_t Idx = 0; Idx != NumCells; ++Idx) {
            OverheadBySeed[Idx].push_back(
                OverheadSum[Idx] / static_cast<double>(Workloads.size()));
            AccuracyBySeed[Idx].push_back(
                AccuracySum[Idx] / static_cast<double>(Workloads.size()));
          }
          OverheadSum.assign(NumCells, 0);
          AccuracySum.assign(NumCells, 0);
        }
      });

  for (size_t SI = 0; SI != Result.SamplesPerTick.size(); ++SI)
    for (size_t TI = 0; TI != Result.Strides.size(); ++TI) {
      size_t Idx = SI * Result.Strides.size() + TI;
      Result.Cells[SI][TI].OverheadPct = median(OverheadBySeed[Idx]);
      Result.Cells[SI][TI].AccuracyPct = median(AccuracyBySeed[Idx]);
    }
  return Result;
}

vm::ProfilerOptions exp::chosenCBS(vm::Personality Pers) {
  vm::ProfilerOptions Prof;
  prof::ProfilerRegistry::instance().configure("cbs", Prof);
  Prof.CBS.Stride = Pers == vm::Personality::JikesRVM ? 3 : 7;
  Prof.CBS.SamplesPerTick = 16;
  return Prof;
}

vm::ProfilerOptions exp::baseProfiler(vm::Personality Pers) {
  vm::ProfilerOptions Prof;
  const prof::ProfilerRegistry &Registry = prof::ProfilerRegistry::instance();
  if (Pers == vm::Personality::JikesRVM) {
    // The Jikes RVM base samples on the timer tick.
    Registry.configure("timer", Prof);
  } else {
    // The J9 base is modelled as a degenerate one-sample CBS window.
    Registry.configure("cbs", Prof);
    Prof.CBS.Stride = 1;
    Prof.CBS.SamplesPerTick = 1;
  }
  return Prof;
}

ThroughputResult exp::measureThroughput(const bc::Program &P,
                                        const SpeedupOptions &Options) {
  vm::VMConfig Config = jitOnlyConfig(P, Options.Pers, Options.Seed);
  Config.Profiler = Options.Prof;
  Config.MaxCycles = UINT64_MAX;
  Config.Trace = Options.Trace;
  Config.Costs.CompileLatencyScale = Options.CompileLatencyScale;

  vm::VirtualMachine VM(P, Config);
  aos::AdaptiveSystem AOS(Options.Oracle, Options.AOS);
  VM.setClient(&AOS);

  vm::RunState State = VM.run(Options.WarmupCycles);
  if (State == vm::RunState::Trapped)
    reportFatalError("throughput warmup trapped: " + VM.trapMessage());

  uint64_t CyclesBefore = VM.stats().Cycles;
  uint64_t InstrBefore = VM.stats().Instructions;
  State = VM.run(Options.MeasureCycles);
  if (State == vm::RunState::Trapped)
    reportFatalError("throughput measure trapped: " + VM.trapMessage());

  ThroughputResult Result;
  uint64_t DeltaCycles = VM.stats().Cycles - CyclesBefore;
  uint64_t DeltaInstr = VM.stats().Instructions - InstrBefore;
  Result.Throughput = DeltaCycles == 0
                          ? 0.0
                          : static_cast<double>(DeltaInstr) /
                                static_cast<double>(DeltaCycles);
  Result.CompileCycles = VM.stats().CompileCycles;
  Result.Recompilations = AOS.stats().Recompilations;
  Result.Stats = VM.stats();
  return Result;
}

double exp::speedupPercent(const ThroughputResult &Test,
                           const ThroughputResult &Base) {
  if (Base.Throughput == 0)
    return 0;
  return 100.0 * (Test.Throughput / Base.Throughput - 1.0);
}

exp::WarmStartRun exp::runWarmStart(
    const bc::Program &P, vm::Personality Pers,
    const opt::InlineOracle *Oracle,
    std::shared_ptr<const prof::DCGSnapshot> Warm, uint64_t Seed,
    uint32_t CompileJobs) {
  vm::VMConfig Config = jitOnlyConfig(P, Pers, Seed);
  Config.Profiler = chosenCBS(Pers);

  aos::AOSConfig AC;
  AC.CompileJobs = CompileJobs;
  AC.WarmStart.Profile = std::move(Warm);
  aos::AdaptiveSystem AOS(Oracle, AC);

  vm::VirtualMachine VM(P, Config);
  VM.setClient(&AOS);
  vm::RunState State = VM.run();
  if (State == vm::RunState::Trapped)
    reportFatalError("warm-start run trapped: " + VM.trapMessage());

  WarmStartRun R;
  R.Cycles = VM.cycles();
  R.FirstInstallCycle = AOS.stats().FirstInstallCycle;
  R.Installs = AOS.stats().QueueInstalls;
  R.WarmEnqueued = AOS.stats().WarmEnqueued;
  R.WarmInstalls = AOS.stats().WarmInstalls;
  R.Profile = VM.profile();
  return R;
}
