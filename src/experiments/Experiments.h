//===- experiments/Experiments.h - Experiment harness -----------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement harness behind every table and figure:
///
///  - Accuracy/overhead (§6.2, Tables 2 and 3): run the program once
///    with the free exhaustive profiler — that run yields both the
///    perfect DCG and the baseline cycle count — then once per profiler
///    configuration; overhead is the cycle ratio, accuracy the overlap
///    with the perfect profile. "Median of 10 runs" becomes median over
///    seeds (each seed perturbs workload constants and CBS initial-skip
///    randomization).
///  - Steady-state inlining speedup (§6.3, Figure 5): run the adaptive
///    VM, discard a warmup window, measure modelled
///    instructions-per-cycle over a measurement window (the paper's
///    "second minute"), and compare throughputs across profiler/oracle
///    configurations.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_EXPERIMENTS_EXPERIMENTS_H
#define CBSVM_EXPERIMENTS_EXPERIMENTS_H

#include "aos/AdaptiveSystem.h"
#include "experiments/ParallelRunner.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <memory>

namespace cbs::exp {

/// Experiment scale from the environment: CBSVM_RUNS overrides the
/// number of per-configuration repetitions (default \p Default).
unsigned envRuns(unsigned Default);

/// A JIT-only VM configuration as in §6.2: all methods compiled at
/// level 0 on first execution with trivial inlining only, adaptive
/// optimization off.
vm::VMConfig jitOnlyConfig(const bc::Program &P, vm::Personality Pers,
                           uint64_t Seed);

/// Layers the JIT-only experiment pipeline (termination ceiling +
/// trivial-inline compile hook) onto an existing \p Config — e.g. one
/// built by vm::VMConfig::fromArgs. jitOnlyConfig is this applied to a
/// default config.
void applyJitOnly(const bc::Program &P, vm::VMConfig &Config);

/// The exhaustive ground-truth run: perfect DCG plus baseline cycles.
struct PerfectProfile {
  prof::DCGSnapshot DCG;
  uint64_t BaseCycles = 0;
  uint64_t Instructions = 0;
  uint64_t Calls = 0;
  size_t MethodsExecuted = 0;
  std::vector<int64_t> Output;
};

PerfectProfile runPerfect(const bc::Program &P, vm::Personality Pers,
                          uint64_t Seed);

struct AccuracyCell {
  double OverheadPct = 0;
  double AccuracyPct = 0;
  uint64_t SamplesTaken = 0;
};

/// One profiled run against a previously measured perfect profile.
AccuracyCell measureAccuracy(const bc::Program &P, vm::Personality Pers,
                             const vm::ProfilerOptions &Prof,
                             const PerfectProfile &Perfect, uint64_t Seed);

/// Median-over-seeds accuracy/overhead for one workload+configuration.
/// Seeds fan out across \p Par's worker pool (one task per seed);
/// results commit in seed order, so every statistic is byte-identical
/// to the serial schedule at any job count.
AccuracyCell measureAccuracyMedian(const wl::WorkloadInfo &W,
                                   wl::InputSize Size, vm::Personality Pers,
                                   const vm::ProfilerOptions &Prof,
                                   unsigned Runs, uint64_t BaseSeed,
                                   const ParallelConfig &Par = {});

/// The Table 2 grid: overhead/accuracy per (Samples, Stride) cell,
/// averaged over \p Workloads, median over \p Runs seeds.
struct SweepResult {
  std::vector<uint32_t> Strides;
  std::vector<uint32_t> SamplesPerTick;
  /// Cells[sampleIdx][strideIdx].
  std::vector<std::vector<AccuracyCell>> Cells;
};

/// The grid fans out across \p Par's worker pool as one task per
/// (seed, workload) pair — each task is a pure function of its grid
/// index — and commits in grid order, so the result (including every
/// floating-point accumulation) is byte-identical to the serial
/// schedule at any job count.
SweepResult runSweep(vm::Personality Pers,
                     const std::vector<const wl::WorkloadInfo *> &Workloads,
                     wl::InputSize Size, std::vector<uint32_t> Strides,
                     std::vector<uint32_t> SamplesPerTick, unsigned Runs,
                     uint64_t BaseSeed, const ParallelConfig &Par = {});

/// The paper's chosen "knee" CBS configurations (Table 3 / Figure 5):
/// Stride=3, Samples=16 for the Jikes RVM personality and Stride=7,
/// Samples=16 for J9.
vm::ProfilerOptions chosenCBS(vm::Personality Pers);
/// The base profiler each personality is compared against: Jikes RVM's
/// timer sampler, and CBS(1,1) for J9 (§6.2: "J9 does not normally use
/// a timer-based call graph profiler").
vm::ProfilerOptions baseProfiler(vm::Personality Pers);

//===----------------------------------------------------------------------===//
// Steady-state inlining speedup (Figure 5)
//===----------------------------------------------------------------------===//

struct SpeedupOptions {
  vm::Personality Pers = vm::Personality::JikesRVM;
  vm::ProfilerOptions Prof;
  /// Oracle driving recompilation inline plans; null = trivial plans
  /// only (no profile-directed inlining).
  const opt::InlineOracle *Oracle = nullptr;
  aos::AOSConfig AOS;
  /// Scales the modelled background-compile latency (CostModel::
  /// CompileLatencyScale): 0 installs at the first taken yieldpoint
  /// after the promotion decision.
  double CompileLatencyScale = 1.0;
  uint64_t WarmupCycles = 24'000'000;
  uint64_t MeasureCycles = 24'000'000;
  uint64_t Seed = 1;
  /// Optional trace sink installed on the VM (non-owning; may be null).
  tel::TraceSink *Trace = nullptr;
};

struct ThroughputResult {
  /// Modelled instructions per cycle over the measurement window.
  double Throughput = 0;
  uint64_t CompileCycles = 0;
  uint64_t Recompilations = 0;
  vm::VMStats Stats;
};

ThroughputResult measureThroughput(const bc::Program &P,
                                   const SpeedupOptions &Options);

/// Percentage speedup of \p Test over \p Base.
double speedupPercent(const ThroughputResult &Test,
                      const ThroughputResult &Base);

//===----------------------------------------------------------------------===//
// Warm-start time-to-peak (profile repository)
//===----------------------------------------------------------------------===//

/// One complete adaptive run for the warm-start experiment: the
/// install-timing stats plus the profile the run would commit to a
/// ProfileRepository (i.e. the snapshot a subsequent run warm-starts
/// from).
struct WarmStartRun {
  uint64_t Cycles = 0;
  /// Virtual cycle of the first optimized install; 0 when nothing
  /// installed.
  uint64_t FirstInstallCycle = 0;
  uint64_t Installs = 0;
  uint64_t WarmEnqueued = 0;
  uint64_t WarmInstalls = 0;
  prof::DCGSnapshot Profile;
};

/// Runs \p P to completion under the adaptive system with the chosen
/// CBS profiler for \p Pers. A null \p Warm is a cold start; a non-null
/// snapshot takes the repository warm-start path (pre-enqueued hot
/// methods at cycle 0). Byte-identical at any \p CompileJobs value.
WarmStartRun runWarmStart(const bc::Program &P, vm::Personality Pers,
                          const opt::InlineOracle *Oracle,
                          std::shared_ptr<const prof::DCGSnapshot> Warm,
                          uint64_t Seed, uint32_t CompileJobs = 0);

} // namespace cbs::exp

#endif // CBSVM_EXPERIMENTS_EXPERIMENTS_H
