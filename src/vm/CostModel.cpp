//===- vm/CostModel.cpp - Virtual cycle accounting -------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "vm/CostModel.h"

#include "support/ErrorHandling.h"

using namespace cbs;
using namespace cbs::vm;

uint32_t CostModel::cost(const bc::Instruction &I) const {
  using bc::Opcode;
  switch (I.Op) {
  case Opcode::Nop:
  case Opcode::IConst:
  case Opcode::ILoad:
  case Opcode::IStore:
  case Opcode::IInc:
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::IDiv:
  case Opcode::IRem:
  case Opcode::INeg:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::IXor:
  case Opcode::IShl:
  case Opcode::IShr:
  case Opcode::ALoad:
  case Opcode::AStore:
  case Opcode::AConstNull:
    return SimpleOp;
  case Opcode::Goto:
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfLe:
  case Opcode::IfGt:
  case Opcode::IfGe:
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpGe:
    return BranchOp;
  case Opcode::GetField:
  case Opcode::PutField:
    return FieldOp;
  case Opcode::New:
    return AllocOp;
  case Opcode::ClassEq:
    return GuardOp;
  case Opcode::InvokeStatic:
    return CallSequence;
  case Opcode::InvokeVirtual:
    return CallSequence + VirtualDispatch;
  case Opcode::Return:
  case Opcode::IReturn:
  case Opcode::AReturn:
    return ReturnOp;
  case Opcode::Work:
    return static_cast<uint32_t>(I.A);
  case Opcode::Print:
    return PrintOp;
  case Opcode::Halt:
    return SimpleOp;
  case Opcode::Spawn:
    return SpawnOp;
  }
  cbsUnreachable("unknown opcode");
}
