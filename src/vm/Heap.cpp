//===- vm/Heap.cpp - Object heap -------------------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "vm/Heap.h"

using namespace cbs;
using namespace cbs::vm;

Ref Heap::allocate(const bc::ClassType &C) {
  Object O;
  O.Class = C.Id;
  O.FieldBase = static_cast<uint32_t>(Fields.size());
  O.NumFields = C.NumFields;
  Fields.resize(Fields.size() + C.NumFields, 0);
  Objects.push_back(O);
  if (C.Id >= PerClass.size())
    PerClass.resize(C.Id + 1, 0);
  ++PerClass[C.Id];
  BytesAllocated += 16 + 8ull * C.NumFields;
  return static_cast<Ref>(Objects.size());
}

void Heap::reset() {
  Objects.clear();
  Fields.clear();
}
