//===- vm/StackWalker.h - Call stack sampling -------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks a thread's frame stack into the PathStep form the profilers
/// consume. Mirrors the paper's J9 implementation choice of reusing
/// the existing general stack-walking routine rather than a
/// specialized top-two-frames extractor (§5.2).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_STACKWALKER_H
#define CBSVM_VM_STACKWALKER_H

#include "profiling/CallingContextTree.h"
#include "vm/Thread.h"

#include <optional>

namespace cbs::vm {

/// Full walk, outermost frame first. The outermost step has an invalid
/// site (thread entry); every other step's site is the call instruction
/// the frame below is suspended at.
std::vector<prof::PathStep> walkStack(const Thread &T);

/// The top caller→callee edge, or nullopt when the thread is at its
/// entry frame (no caller). This is what a context-insensitive DCG
/// sample records.
std::optional<prof::CallEdge> topEdge(const Thread &T);

} // namespace cbs::vm

#endif // CBSVM_VM_STACKWALKER_H
