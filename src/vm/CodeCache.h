//===- vm/CodeCache.h - Active code versions --------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps each method to its active CompiledMethod version. Replaced
/// versions are retired to a graveyard rather than freed because stack
/// frames keep raw pointers to the version they entered (no on-stack
/// replacement).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_CODECACHE_H
#define CBSVM_VM_CODECACHE_H

#include "vm/CompiledMethod.h"
#include "vm/CostModel.h"

#include <memory>
#include <vector>

namespace cbs::bc {
class Program;
}

namespace cbs::vm {

class CodeCache {
public:
  explicit CodeCache(const bc::Program &P);

  /// Active version of \p Id, or nullptr if not yet compiled.
  const CompiledMethod *active(bc::MethodId Id) const {
    return Active[Id].get();
  }

  /// Active optimization level; -1 if not yet compiled.
  int activeLevel(bc::MethodId Id) const {
    return Active[Id] ? Active[Id]->Level : -1;
  }

  /// Installs a new version; the previous one (if any) is retired but
  /// kept alive. Returns the installed version.
  const CompiledMethod *install(CompiledMethod CM);

  /// Straight level-\p Level translation of the original bytecode with
  /// no inlining: the default compile path when no compile hook is set.
  static CompiledMethod compileBaseline(const bc::Program &P, bc::MethodId Id,
                                        int Level, const CostModel &Costs);

  uint64_t totalCompileCycles() const { return CompileCycles; }
  uint64_t numCompiles() const { return Compiles; }
  uint64_t numRecompiles() const { return Recompiles; }
  /// Sum of code sizes (instruction counts) of active versions.
  uint64_t activeCodeInstructions() const;

private:
  std::vector<std::unique_ptr<CompiledMethod>> Active;
  std::vector<std::unique_ptr<CompiledMethod>> Graveyard;
  uint64_t CompileCycles = 0;
  uint64_t Compiles = 0;
  uint64_t Recompiles = 0;
};

} // namespace cbs::vm

#endif // CBSVM_VM_CODECACHE_H
