//===- vm/CodeCache.h - Active code versions --------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps each method to its active CompiledMethod version. Replaced
/// versions are retired to a graveyard rather than freed because stack
/// frames keep raw pointers to the version they entered.
///
/// Two ways a version leaves the active set:
///  - install() of a newer version retires it (a recompile);
///  - invalidate() retires it with no replacement (a deoptimization):
///    the version is marked Invalidated, the method's invalidation
///    epoch advances, and the next invocation falls back to a fresh
///    baseline compile via the VM's lazy ensureCompiled path.
///
/// Without OSR the graveyard only grows: any retired version may still
/// be pinned by a live frame, and the cache has no way to know. With
/// pin tracking on (VMConfig::EnableOSR; see setPinTracking) the VM
/// reports frame entry/exit per version, and a retired version whose
/// last pinned frame leaves — by returning or by OSR-transferring out —
/// is reclaimed: freed, with its instructions moved from the graveyard
/// account to the reclaimed account.
///
/// Installing a version identical in (method, level, plan generation)
/// to the active one is a checked error: such a double-install would
/// silently leak the old version into the graveyard while changing
/// nothing, and every legitimate compile path either raises the level
/// or advances the plan.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_CODECACHE_H
#define CBSVM_VM_CODECACHE_H

#include "vm/CompiledMethod.h"
#include "vm/CostModel.h"

#include <memory>
#include <vector>

namespace cbs::bc {
class Program;
}

namespace cbs::vm {

class CodeCache {
public:
  explicit CodeCache(const bc::Program &P);

  /// Active version of \p Id, or nullptr if not yet compiled.
  const CompiledMethod *active(bc::MethodId Id) const {
    return Active[Id].get();
  }

  /// Active optimization level; -1 if not yet compiled.
  int activeLevel(bc::MethodId Id) const {
    return Active[Id] ? Active[Id]->Level : -1;
  }

  /// Installs a new version; the previous one (if any) is retired but
  /// kept alive. Returns the installed version. Fatal error when the
  /// new version matches the active one's (level, plan generation) —
  /// see the file comment.
  const CompiledMethod *install(CompiledMethod CM);

  /// Retires \p Id's active version with no replacement: the version is
  /// marked Invalidated (frames pinning it fall back to baseline speed
  /// at their next taken yieldpoint), moved to the graveyard, and the
  /// method's invalidation epoch advances. Returns the retired version
  /// (still alive in the graveyard), or nullptr when nothing was
  /// active.
  const CompiledMethod *invalidate(bc::MethodId Id);

  /// Straight level-\p Level translation of the original bytecode with
  /// no inlining: the default compile path when no compile hook is set.
  static CompiledMethod compileBaseline(const bc::Program &P, bc::MethodId Id,
                                        int Level, const CostModel &Costs);

  uint64_t totalCompileCycles() const { return CompileCycles; }
  uint64_t numCompiles() const { return Compiles; }
  uint64_t numRecompiles() const { return Recompiles; }
  /// Total invalidate() calls that retired a version.
  uint64_t numInvalidations() const { return Invalidations; }
  /// Times \p Id's active version has been invalidated. In-flight
  /// compile requests remember the epoch they were created under; a
  /// mismatch at install time means the code they were compiled for has
  /// since been deoptimized.
  uint64_t invalidationEpoch(bc::MethodId Id) const { return Epochs[Id]; }
  /// Sum of code sizes (instruction counts) of active versions,
  /// maintained incrementally.
  uint64_t activeCodeInstructions() const { return ActiveInstructions; }
  /// Same accounting for retired versions still alive in the graveyard.
  /// Without pin tracking this only grows (frames may pin any retired
  /// version and the cache cannot tell); with it, reclamation moves
  /// instructions out of this account as the last pinned frame leaves.
  uint64_t graveyardCodeInstructions() const { return GraveyardInstructions; }
  size_t graveyardSize() const { return Graveyard.size(); }

  /// Turns on per-version frame pin counting and graveyard reclamation.
  /// The VM enables this exactly when VMConfig::EnableOSR is set; with
  /// it off, pin/unpin are no-ops and the graveyard behaves as before.
  void setPinTracking(bool On) { PinTracking = On; }

  /// A frame began executing \p CM (invocation or OSR transfer in).
  void pinFrame(const CompiledMethod *CM);

  /// A frame stopped executing \p CM (return or OSR transfer out). If
  /// \p CM is retired and this was its last pinned frame, it is
  /// reclaimed on the spot.
  void unpinFrame(const CompiledMethod *CM);

  /// Reclaims \p CM now if pin tracking is on, \p CM sits in the
  /// graveyard, and no frame pins it. Called by the VM after
  /// invalidate() (a version retired with zero live frames would
  /// otherwise wait for an unpin that never comes). Returns true if
  /// the version was freed; \p CM must not be used afterwards.
  bool reclaimIfUnpinned(const CompiledMethod *CM);

  /// Instructions freed from the graveyard by reclamation (cumulative),
  /// and the number of versions freed.
  uint64_t reclaimedCodeInstructions() const { return ReclaimedInstructions; }
  uint64_t numReclaims() const { return Reclaims; }

private:
  std::vector<std::unique_ptr<CompiledMethod>> Active;
  std::vector<std::unique_ptr<CompiledMethod>> Graveyard;
  std::vector<uint64_t> Epochs;
  uint64_t CompileCycles = 0;
  uint64_t Compiles = 0;
  uint64_t Recompiles = 0;
  uint64_t Invalidations = 0;
  uint64_t ActiveInstructions = 0;
  uint64_t GraveyardInstructions = 0;
  uint64_t ReclaimedInstructions = 0;
  uint64_t Reclaims = 0;
  bool PinTracking = false;
};

} // namespace cbs::vm

#endif // CBSVM_VM_CODECACHE_H
