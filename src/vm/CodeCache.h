//===- vm/CodeCache.h - Active code versions --------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps each method to its active CompiledMethod version. Replaced
/// versions are retired to a graveyard rather than freed because stack
/// frames keep raw pointers to the version they entered (no on-stack
/// replacement).
///
/// Two ways a version leaves the active set:
///  - install() of a newer version retires it (a recompile);
///  - invalidate() retires it with no replacement (a deoptimization):
///    the version is marked Invalidated, the method's invalidation
///    epoch advances, and the next invocation falls back to a fresh
///    baseline compile via the VM's lazy ensureCompiled path.
///
/// Installing a version identical in (method, level, plan generation)
/// to the active one is a checked error: such a double-install would
/// silently leak the old version into the graveyard while changing
/// nothing, and every legitimate compile path either raises the level
/// or advances the plan.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_CODECACHE_H
#define CBSVM_VM_CODECACHE_H

#include "vm/CompiledMethod.h"
#include "vm/CostModel.h"

#include <memory>
#include <vector>

namespace cbs::bc {
class Program;
}

namespace cbs::vm {

class CodeCache {
public:
  explicit CodeCache(const bc::Program &P);

  /// Active version of \p Id, or nullptr if not yet compiled.
  const CompiledMethod *active(bc::MethodId Id) const {
    return Active[Id].get();
  }

  /// Active optimization level; -1 if not yet compiled.
  int activeLevel(bc::MethodId Id) const {
    return Active[Id] ? Active[Id]->Level : -1;
  }

  /// Installs a new version; the previous one (if any) is retired but
  /// kept alive. Returns the installed version. Fatal error when the
  /// new version matches the active one's (level, plan generation) —
  /// see the file comment.
  const CompiledMethod *install(CompiledMethod CM);

  /// Retires \p Id's active version with no replacement: the version is
  /// marked Invalidated (frames pinning it fall back to baseline speed
  /// at their next taken yieldpoint), moved to the graveyard, and the
  /// method's invalidation epoch advances. Returns the retired version
  /// (still alive in the graveyard), or nullptr when nothing was
  /// active.
  const CompiledMethod *invalidate(bc::MethodId Id);

  /// Straight level-\p Level translation of the original bytecode with
  /// no inlining: the default compile path when no compile hook is set.
  static CompiledMethod compileBaseline(const bc::Program &P, bc::MethodId Id,
                                        int Level, const CostModel &Costs);

  uint64_t totalCompileCycles() const { return CompileCycles; }
  uint64_t numCompiles() const { return Compiles; }
  uint64_t numRecompiles() const { return Recompiles; }
  /// Total invalidate() calls that retired a version.
  uint64_t numInvalidations() const { return Invalidations; }
  /// Times \p Id's active version has been invalidated. In-flight
  /// compile requests remember the epoch they were created under; a
  /// mismatch at install time means the code they were compiled for has
  /// since been deoptimized.
  uint64_t invalidationEpoch(bc::MethodId Id) const { return Epochs[Id]; }
  /// Sum of code sizes (instruction counts) of active versions,
  /// maintained incrementally.
  uint64_t activeCodeInstructions() const { return ActiveInstructions; }
  /// Same accounting for retired versions still alive in the graveyard
  /// (capacity the no-OSR model can never reclaim while frames may pin
  /// them).
  uint64_t graveyardCodeInstructions() const { return GraveyardInstructions; }
  size_t graveyardSize() const { return Graveyard.size(); }

private:
  std::vector<std::unique_ptr<CompiledMethod>> Active;
  std::vector<std::unique_ptr<CompiledMethod>> Graveyard;
  std::vector<uint64_t> Epochs;
  uint64_t CompileCycles = 0;
  uint64_t Compiles = 0;
  uint64_t Recompiles = 0;
  uint64_t Invalidations = 0;
  uint64_t ActiveInstructions = 0;
  uint64_t GraveyardInstructions = 0;
};

} // namespace cbs::vm

#endif // CBSVM_VM_CODECACHE_H
