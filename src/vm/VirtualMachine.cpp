//===- vm/VirtualMachine.cpp - The virtual machine --------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "vm/VirtualMachine.h"

#include "telemetry/FlightRecorder.h"
#include "telemetry/TraceSink.h"
#include "vm/StackWalker.h"

#include <cassert>
#include <sstream>

using namespace cbs;
using namespace cbs::vm;

const char *vm::runStateName(RunState S) {
  switch (S) {
  case RunState::Running:
    return "running";
  case RunState::Finished:
    return "finished";
  case RunState::Halted:
    return "halted";
  case RunState::Trapped:
    return "trapped";
  case RunState::CycleLimit:
    return "cycle-limit";
  }
  return "?";
}

VMClient::~VMClient() = default;

VirtualMachine::LiveStats::LiveStats(tel::MetricRegistry &R)
    : Cycles(R.counter("vm.cycles")),
      Instructions(R.counter("vm.instructions")),
      CallsExecuted(R.counter("vm.calls_executed")),
      VirtualCallsExecuted(R.counter("vm.virtual_calls_executed")),
      TimerTicks(R.counter("vm.timer_ticks")),
      YieldpointsTaken(R.counter("vm.yieldpoints_taken")),
      SamplesTaken(R.counter("vm.samples_taken")),
      ProfilingCycles(R.counter("vm.profiling_cycles")),
      CompileCycles(R.counter("vm.compile_cycles")),
      GCCount(R.counter("vm.gc_count")),
      ThreadSwitches(R.counter("vm.thread_switches")),
      ThreadsSpawned(R.counter("vm.threads_spawned")),
      Deopts(R.counter("vm.deopts")),
      FramesDeopted(R.counter("vm.frames_deopted")),
      OsrEntries(R.counter("vm.osr_entries")),
      OsrExits(R.counter("vm.osr_exits")),
      DCGFlushes(R.counter("dcg.flushes")),
      DCGDropped(R.counter("dcg.dropped_samples")),
      MaxStackDepth(R.gauge("vm.max_stack_depth")),
      SampleStackDepth(R.histogram("vm.sample_stack_depth")),
      CompileCostCycles(R.histogram("vm.compile_cost_cycles")),
      OvEntryCheck(R.counter("overhead.entry_check")),
      OvCounterUpdate(R.counter("overhead.counter_update")),
      OvListener(R.counter("overhead.listener")),
      OvStackWalk(R.counter("overhead.stack_walk")),
      OvBufferFlush(R.counter("overhead.buffer_flush")),
      OvSnapshot(R.counter("overhead.snapshot")),
      OvYieldpoint(R.counter("overhead.yieldpoint_taken")),
      OvShardWait(R.counter("overhead.shard_wait")) {}

const VMStats &VirtualMachine::stats() const {
  Facade.Cycles = Stats.Cycles;
  Facade.Instructions = Stats.Instructions;
  Facade.CallsExecuted = Stats.CallsExecuted;
  Facade.VirtualCallsExecuted = Stats.VirtualCallsExecuted;
  Facade.TimerTicks = Stats.TimerTicks;
  Facade.YieldpointsTaken = Stats.YieldpointsTaken;
  Facade.SamplesTaken = Stats.SamplesTaken;
  Facade.ProfilingCycles = Stats.ProfilingCycles;
  Facade.CompileCycles = Stats.CompileCycles;
  Facade.GCCount = Stats.GCCount;
  Facade.ThreadSwitches = Stats.ThreadSwitches;
  Facade.ThreadsSpawned = Stats.ThreadsSpawned;
  Facade.MaxStackDepth = Stats.MaxStackDepth;
  return Facade;
}

const tel::MetricRegistry &VirtualMachine::metrics() {
  Registry.gauge("heap.bytes_allocated") = TheHeap.bytesAllocated();
  Registry.gauge("heap.objects") = TheHeap.numObjects();
  Registry.gauge("code.compiles") = Cache.numCompiles();
  Registry.gauge("code.recompiles") = Cache.numRecompiles();
  Registry.gauge("code.invalidations") = Cache.numInvalidations();
  Registry.gauge("code.active_instructions") = Cache.activeCodeInstructions();
  Registry.gauge("code.graveyard_instructions") =
      Cache.graveyardCodeInstructions();
  Registry.gauge("code.graveyard_reclaimed_instructions") =
      Cache.reclaimedCodeInstructions();
  Registry.gauge("code.graveyard_reclaims") = Cache.numReclaims();
  Registry.gauge("vm.methods_executed") = methodsExecuted();
  Registry.gauge("vm.threads_live") = countRunnable();
  Registry.gauge("dcg.shard_contention") = DCG.contentionCount();
  // The online Figure 4: all attributed profiling cycles as a fraction
  // of the whole run, in basis points (300 = 3%).
  Registry.gauge("overhead.total_fraction_bp") =
      Stats.Cycles == 0 ? 0 : 10'000 * overheadCycles() / Stats.Cycles;
  return Registry;
}

VirtualMachine::VirtualMachine(const bc::Program &P, VMConfig Config)
    : P(P), Config(std::move(Config)), Stats(Registry),
      Trace(this->Config.Trace), Recorder(this->Config.Recorder),
      Cache(P), RNG(this->Config.Seed),
      DCG(this->Config.Profiler.DCGShards),
      InvocationCounts(P.numMethods(), 0), TickSamples(P.numMethods(), 0) {
  if (this->Config.Profiler.Kind == ProfilerKind::CodePatching)
    Patching = std::make_unique<prof::CodePatchingProfiler>(
        P.numMethods(), this->Config.Profiler.Patching);
  // A recorder with no separate trace sink doubles as the sink, so it
  // retains the regular event stream around each anomaly.
  if (Recorder && !Trace)
    Trace = Recorder;
  if (this->Config.Profiler.Quality.EveryTicks != 0)
    Quality = std::make_unique<prof::ProfileQualityMonitor>(
        this->Config.Profiler.Quality, Registry);
  // Reference configurations whose profiler is free by construction
  // (None; Exhaustive with counters uncharged — the §6.2 "perfect"
  // baseline) must stay free: organizer costs are modelled only where
  // the profiler itself is charged.
  ProfilerKind Kind = this->Config.Profiler.Kind;
  ChargedProfiling =
      Kind == ProfilerKind::CBS || Kind == ProfilerKind::Timer ||
      Kind == ProfilerKind::CodePatching ||
      (Kind == ProfilerKind::Exhaustive &&
       this->Config.Profiler.ChargeExhaustiveCounters);
  NextTimerAt = this->Config.TimerPeriodCycles;
  NextGCAt = this->Config.GCThresholdBytes;
  // Frame pin counting exists only for OSR's graveyard reclamation;
  // with OSR off the cache (and the whole run) behaves exactly as
  // before.
  Cache.setPinTracking(this->Config.EnableOSR);
  spawnThread(P.entryMethod());
}

VirtualMachine::~VirtualMachine() = default;

Thread &VirtualMachine::spawnThread(bc::MethodId Entry) {
  const CompiledMethod *CM = ensureCompiled(Entry);
  auto T = std::make_unique<Thread>();
  T->Id = static_cast<uint32_t>(Threads.size());
  T->CBS = prof::CounterBasedSampler(Config.Profiler.CBS);
  T->Alloc = prof::CounterBasedSampler(Config.Profiler.AllocCBS);
  T->Buffer = prof::SampleBuffer(Config.Profiler.SampleBufferCapacity);
  T->Values.resize(CM->NumLocals, 0);
  T->Frames.push_back({CM, 0, 0});
  Cache.pinFrame(CM);
  ++InvocationCounts[Entry];
  Threads.push_back(std::move(T));
  ++Stats.ThreadsSpawned;
  return *Threads.back();
}

const CompiledMethod *VirtualMachine::ensureCompiled(bc::MethodId Id) {
  if (const CompiledMethod *CM = Cache.active(Id))
    return CM;
  uint32_t Thr = Threads.empty() ? 0 : Threads[Current]->Id;
  if (Trace)
    Trace->event(tel::TraceEvent::compileStart(
        Stats.Cycles, Thr, Id, static_cast<uint32_t>(Config.JITLevel)));
  CompiledMethod CM =
      Config.CompileHook
          ? Config.CompileHook(P, Id, Config.JITLevel)
          : CodeCache::compileBaseline(P, Id, Config.JITLevel, Config.Costs);
  assert(CM.Id == Id && "compile hook returned code for the wrong method");
  Stats.CompileCycles += CM.CompileCostCycles;
  Stats.CompileCostCycles.record(CM.CompileCostCycles);
  if (Trace)
    Trace->event(tel::TraceEvent::compileFinish(
        Stats.Cycles, Thr, Id, CM.Level, CM.CompileCostCycles));
  return Cache.install(std::move(CM));
}

bool VirtualMachine::deoptimize(bc::MethodId Id) {
  const CompiledMethod *Retired = Cache.invalidate(Id);
  if (!Retired)
    return false;
  // Threads reconcile lazily: each marks its own affected frames at its
  // next taken yieldpoint (reconcileDeoptFrames), which is where the
  // per-frame DeoptCost is charged.
  ++DeoptEpoch;
  ++Stats.Deopts;
  uint32_t Thr = Threads.empty() ? 0 : Threads[Current]->Id;
  emitAnomaly(tel::TraceEvent::deopt(Stats.Cycles, Thr, Id, Retired->Level,
                                     Cache.invalidationEpoch(Id)));
  // A version invalidated while no frame runs it would never see
  // another unpin; with pin tracking on, free it now.
  Cache.reclaimIfUnpinned(Retired);
  return true;
}

void VirtualMachine::reconcileDeoptFrames(Thread &T) {
  if (T.DeoptEpochSeen == DeoptEpoch)
    return;
  T.DeoptEpochSeen = DeoptEpoch;
  for (Frame &F : T.Frames) {
    if (F.Deopted || !F.CM->Invalidated)
      continue;
    F.Deopted = true;
    ++Stats.FramesDeopted;
    // Frame-state reconstruction for the baseline fallback: a base
    // runtime service, not profiling work.
    Stats.Cycles += Config.Costs.DeoptCost;
  }
}

void VirtualMachine::maybeOSR(Thread &T, uint32_t BackedgeTarget) {
  if (T.Frames.empty())
    return;
  Frame &F = T.top();
  const CompiledMethod *From = F.CM;
  // The backedge's target must be a mapped OSR point of the running
  // version — otherwise we are not at a transferable loop entry.
  const OsrPoint *FromPt = From->osrPointAtCode(BackedgeTarget);
  if (!FromPt)
    return;

  const CompiledMethod *To = Cache.active(From->Id);
  if (To == From)
    return; // already running the newest code
  bool DeoptExit = F.Deopted;
  if (!To) {
    // Invalidated with no replacement: only a deopted frame has a
    // reason to move — it reconciles to the fresh baseline the lazy
    // compile path would hand the next invocation anyway.
    if (!DeoptExit)
      return;
    To = ensureCompiled(From->Id);
  }
  const OsrPoint *ToPt = To->osrPointAtBytecode(FromPt->BytecodePC);
  if (!ToPt)
    return; // the new version dissolved this loop header

  // Transfer is a pure locals remap only when the operand stack is
  // empty. At a loop header of structured code it always is; checked,
  // not assumed, because generated programs are only verifier-clean.
  if (T.Values.size() != F.LocalBase + From->NumLocals)
    return;

  // Root locals occupy the same leading slots in every version;
  // inlined-callee temps beyond them are dead at a root loop header
  // (each spliced region spills its values before reading them), so
  // grow-with-zeros / shrink is safe.
  T.Values.resize(F.LocalBase + To->NumLocals, 0);
  Cache.unpinFrame(From); // may reclaim From's graveyard slot
  Cache.pinFrame(To);
  F.CM = To;
  F.PC = ToPt->CodePC;
  F.Deopted = false;

  // Frame-state extraction + rebuild for the other version's code.
  Stats.Cycles += Config.Costs.OsrCost;
  if (DeoptExit)
    ++Stats.OsrExits;
  else
    ++Stats.OsrEntries;
  if (Trace)
    Trace->event(tel::TraceEvent::osr(Stats.Cycles, T.Id, To->Id, To->Level,
                                      DeoptExit ? 2 : 1));
}

void VirtualMachine::installCompiled(CompiledMethod CM) {
  Stats.CompileCycles += CM.CompileCostCycles;
  Stats.CompileCostCycles.record(CM.CompileCostCycles);
  if (Trace) {
    uint32_t Thr = Threads.empty() ? 0 : Threads[Current]->Id;
    Trace->event(tel::TraceEvent::compileStart(Stats.Cycles, Thr, CM.Id,
                                               CM.Level));
    Trace->event(tel::TraceEvent::compileFinish(Stats.Cycles, Thr, CM.Id,
                                                CM.Level,
                                                CM.CompileCostCycles));
  }
  Cache.install(std::move(CM));
}

size_t VirtualMachine::countRunnable() const {
  size_t N = 0;
  for (const auto &T : Threads)
    if (!T->Finished)
      ++N;
  return N;
}

size_t VirtualMachine::methodsExecuted() const {
  size_t N = 0;
  for (uint64_t C : InvocationCounts)
    if (C != 0)
      ++N;
  return N;
}

void VirtualMachine::emitAnomaly(const tel::TraceEvent &E) {
  if (Trace)
    Trace->event(E);
  // A recorder serving as the trace sink already saw the event above.
  if (Recorder && static_cast<tel::TraceSink *>(Recorder) != Trace)
    Recorder->event(E);
}

void VirtualMachine::trap(const std::string &Message) {
  Thread &T = *Threads[Current];
  std::ostringstream OS;
  OS << Message;
  if (!T.Frames.empty())
    OS << " in " << P.qualifiedName(T.top().CM->Id) << " at pc "
       << T.top().PC;
  TrapMsg = OS.str();
  State = RunState::Trapped;
  emitAnomaly(tel::TraceEvent::trap(
      Stats.Cycles, T.Id,
      T.Frames.empty() ? bc::InvalidMethodId : T.top().CM->Id,
      T.Frames.empty() ? 0 : T.top().PC));
}

void VirtualMachine::fireTimer() {
  // One tick per boundary crossing; a single long instruction (Work, GC
  // pause) that skips several periods still delivers one interrupt.
  while (NextTimerAt <= Stats.Cycles)
    NextTimerAt += Config.TimerPeriodCycles;
  if (Config.TimerJitterPct > 0) {
    int64_t MaxJitter = static_cast<int64_t>(
        static_cast<double>(Config.TimerPeriodCycles) *
        Config.TimerJitterPct / 100.0);
    if (MaxJitter > 0) {
      int64_t Jitter = RNG.nextInRange(-MaxJitter, MaxJitter);
      uint64_t Earliest = Stats.Cycles + 1;
      NextTimerAt = std::max<uint64_t>(
          Earliest, static_cast<uint64_t>(
                        static_cast<int64_t>(NextTimerAt) + Jitter));
    }
  }
  ++Stats.TimerTicks;
  Stats.Cycles += Config.Costs.TimerInterrupt;

  // Organizer activation: drain every listener buffer into the shared
  // repository (one batch per thread, so one set of shard-lock
  // acquisitions per activation rather than per sample).
  flushAllBuffers();

  if (Config.Profiler.DecayEveryTicks != 0 &&
      Stats.TimerTicks % Config.Profiler.DecayEveryTicks == 0) {
    // Pending samples predate the decay point and must decay with the
    // rest of the repository, so flush them first.
    flushAllBuffers();
    DCG.decay(Config.Profiler.DecayFactor);
  }

  if (Quality &&
      Stats.TimerTicks % Config.Profiler.Quality.EveryTicks == 0)
    closeQualityWindow();

  Thread &T = *Threads[Current];
  TickPending = true;
  T.Word = YieldWord::TakeAll;
  if (Config.Profiler.ProfileAllocations)
    T.Alloc.onTimerTick(RNG);
  if (countRunnable() > 1)
    SwitchPending = true;

  if (Trace)
    Trace->event(tel::TraceEvent::timerTick(
        Stats.Cycles, T.Id,
        T.Frames.empty() ? bc::InvalidMethodId : T.top().CM->Id));

  if (!T.Frames.empty()) {
    bc::MethodId Top = T.top().CM->Id;
    ++TickSamples[Top];
    if (Client)
      Client->onTimerTick(*this, Top);
  }
}

void VirtualMachine::closeQualityWindow() {
  // Window boundary: pending samples belong to the closing window.
  flushAllBuffers();
  prof::DCGSnapshot Snap = DCG.snapshot();
  if (ChargedProfiling)
    chargeProf(static_cast<uint32_t>(Config.Costs.SnapshotPerEdge *
                                     Snap.numEdges()),
               Stats.OvSnapshot);
  const prof::QualityWindow &W =
      Quality->onWindow(Snap, Stats.TimerTicks, Stats.Cycles);

  if (Recorder) {
    tel::RecorderWindow RW;
    RW.Index = W.Index;
    RW.Tick = W.Tick;
    RW.Cycles = W.Cycles;
    RW.DeltaCycles = Stats.Cycles - WinBase.Cycles;
    RW.DeltaSamples = Stats.SamplesTaken - WinBase.Samples;
    RW.DeltaDrops = Stats.DCGDropped - WinBase.Drops;
    RW.DeltaFlushes = Stats.DCGFlushes - WinBase.Flushes;
    RW.DeltaProfilingCycles = Stats.ProfilingCycles - WinBase.ProfilingCycles;
    RW.OverlapBp = static_cast<uint64_t>(W.OverlapPct * 100.0 + 0.5);
    RW.OverheadBp =
        Stats.Cycles == 0 ? 0 : 10'000 * overheadCycles() / Stats.Cycles;
    Recorder->noteWindow(RW);
    WinBase = {Stats.Cycles, Stats.SamplesTaken, Stats.DCGDropped,
               Stats.DCGFlushes, Stats.ProfilingCycles};
  }

  // Emit after the window note so a dump triggered by this event
  // carries the window that detected the shift.
  if (W.PhaseShift)
    emitAnomaly(tel::TraceEvent::phaseShift(
        Stats.Cycles, Threads[Current]->Id,
        static_cast<uint32_t>(W.OverlapPct * 100.0 + 0.5),
        static_cast<uint32_t>(W.Index)));
}

void VirtualMachine::maybeSwitch() {
  if (!SwitchPending)
    return;
  SwitchPending = false;
  size_t N = Threads.size();
  for (size_t I = 1; I <= N; ++I) {
    size_t Next = (Current + I) % N;
    if (Threads[Next]->Finished)
      continue;
    if (Next != Current) {
      uint32_t From = Threads[Current]->Id;
      // Yieldpoint flush: the outgoing thread's staged samples enter
      // the repository before another thread runs.
      flushThreadBuffer(*Threads[Current]);
      Current = Next;
      ++Stats.ThreadSwitches;
      Stats.Cycles += Config.Costs.ThreadSwitch;
      if (Trace)
        Trace->event(tel::TraceEvent::threadSwitch(Stats.Cycles, From,
                                                   Threads[Next]->Id));
    }
    return;
  }
}

void VirtualMachine::recordEdgeSample(Thread &T) {
  ++Stats.SamplesTaken;
  Stats.SampleStackDepth.record(T.Frames.size());
  chargeProf(Config.Costs.StackSampleBase, Stats.OvStackWalk);
  std::optional<prof::CallEdge> Edge = topEdge(T);
  if (Trace)
    Trace->event(tel::TraceEvent::sample(
        Stats.Cycles, T.Id, Edge ? Edge->Callee : bc::InvalidMethodId,
        Edge ? Edge->Site : bc::InvalidSiteId));
  // Listener context: append only. The buffer is drained by the
  // organizer at the next timer tick — a listener may not take
  // repository locks, and a buffer that fills up before the organizer
  // runs drops further samples (surfaced as sample_drop events).
  if (Edge)
    T.Buffer.append(*Edge);
  if (Config.Profiler.ContextSensitive) {
    chargeProf(Config.Costs.StackSamplePerFrame *
                   static_cast<uint32_t>(T.Frames.size()),
               Stats.OvStackWalk);
    CCT.addPath(walkStack(T));
  }
}

void VirtualMachine::processTaken(Thread &T, Where W,
                                  uint32_t BackedgeTarget) {
  ++Stats.YieldpointsTaken;

  // Taken yieldpoints are the deterministic virtual-time points where
  // background compilations may install (the client checks its queue
  // against cycles()). Before tick/GC servicing so an install and the
  // tick that follows it order the same way at any --compile-jobs.
  if (Client)
    Client->onYieldpoint(*this);

  // Deopt fallback transition: frames whose pinned version was
  // invalidated (possibly by the client call just above) drop to
  // baseline speed here — the earliest deterministic point after the
  // decision.
  reconcileDeoptFrames(T);

  // On-stack replacement happens only here: after installs and deopt
  // reconciliation (so the frame transfers to whatever just became
  // active), before tick servicing, and only at backedges — the one
  // yieldpoint flavour where the interpreter is at a loop entry with an
  // empty operand stack.
  if (Config.EnableOSR && W == Where::Backedge)
    maybeOSR(T, BackedgeTarget);

  // Figure 4: the overloaded flag's slow path disambiguates all pending
  // conditions — original services (GC) first, then profiling.
  if (GCRequested) {
    GCRequested = false;
    ++Stats.GCCount;
    Stats.Cycles += Config.Costs.GCPause;
    NextGCAt = TheHeap.bytesAllocated() + Config.GCThresholdBytes;
    if (Trace)
      Trace->event(tel::TraceEvent::gc(Stats.Cycles, T.Id,
                                       TheHeap.bytesAllocated()));
  }

  ProfilerKind Kind = Config.Profiler.Kind;

  if (TickPending) {
    TickPending = false;
    // Attributed but not in ProfilingCycles: servicing a tick at a
    // yieldpoint is a base runtime service every configuration pays.
    Stats.Cycles += Config.Costs.TickService;
    Stats.OvYieldpoint += Config.Costs.TickService;
    if (Kind == ProfilerKind::CBS) {
      // §5.1: a yieldpoint taken for a timer interrupt arms CBS by
      // setting the control word to -1; the thread switch is deferred
      // until the window closes.
      T.CBS.onTimerTick(RNG);
      T.Word = YieldWord::CBSArmed;
      if (Trace)
        Trace->event(tel::TraceEvent::windowArm(
            Stats.Cycles, T.Id, Config.Profiler.CBS.SamplesPerTick));
      if (SwitchPending) {
        T.DeferredSwitch = true;
        SwitchPending = false;
      }
      return;
    }
    if (Kind == ProfilerKind::Timer) {
      T.Timer.onTimerTick();
      if (W == Where::Backedge) {
        // The switch happens here and the DCG listener records nothing.
        T.Timer.cancel();
      } else {
        T.Timer.onInvocationEvent();
        recordEdgeSample(T);
      }
    }
    T.Word = YieldWord::Clear;
    maybeSwitch();
    return;
  }

  // Not a tick: a CBS invocation event, or a service-only request (GC).
  if (Kind == ProfilerKind::CBS && T.CBS.armed() && W != Where::Backedge) {
    chargeProf(Config.Costs.ArmedEventCost, Stats.OvEntryCheck);
    if (T.CBS.onInvocationEvent()) {
      recordEdgeSample(T);
      if (!T.CBS.armed()) {
        if (Trace)
          Trace->event(tel::TraceEvent::windowDisarm(Stats.Cycles, T.Id));
        T.Word = YieldWord::Clear;
        if (T.DeferredSwitch) {
          T.DeferredSwitch = false;
          SwitchPending = true;
          maybeSwitch();
        }
      }
    }
    return;
  }

  if (T.Word == YieldWord::TakeAll) {
    // Service-only request already handled above (GC); restore the word.
    T.Word = (Kind == ProfilerKind::CBS && T.CBS.armed())
                 ? YieldWord::CBSArmed
                 : YieldWord::Clear;
    maybeSwitch();
  }
}

void VirtualMachine::invoke(Thread &T, bc::MethodId Callee, uint32_t ArgCount,
                            bc::SiteId Site) {
  // Exhaustive profiler: record the edge at the call itself. Routed
  // through the thread's buffer like sampled edges — weights are
  // commutative sums, so batching does not change the profile.
  if (Config.Profiler.Kind == ProfilerKind::Exhaustive) {
    if (T.Buffer.append({Site, Callee}))
      flushThreadBuffer(T);
    if (Config.Profiler.ChargeExhaustiveCounters)
      chargeProf(Config.Costs.ExhaustiveCounter, Stats.OvCounterUpdate);
  }

  const CompiledMethod *CM = ensureCompiled(Callee);
  uint64_t Count = ++InvocationCounts[Callee];

  if (Patching) {
    if (Patching->isListening(Callee)) {
      chargeProf(Config.Costs.ListenerCost, Stats.OvListener);
      Patching->onListenedEntry(Callee, {Site, Callee}, Stats.Cycles, DCG);
    } else if (Count == Config.Profiler.PromoteAfterInvocations) {
      Patching->onMethodPromoted(Callee, Stats.Cycles);
    }
  }

  // The arguments on the operand stack become the callee's first locals.
  assert(T.Values.size() >= T.top().LocalBase + T.top().CM->NumLocals +
                                ArgCount &&
         "operand stack underflow at call");
  uint32_t LocalBase = static_cast<uint32_t>(T.Values.size() - ArgCount);
  T.Values.resize(LocalBase + CM->NumLocals, 0);
  T.Frames.push_back({CM, 0, LocalBase});
  Cache.pinFrame(CM);
  ++Stats.CallsExecuted;
  Stats.MaxStackDepth = std::max<uint64_t>(Stats.MaxStackDepth,
                                           T.Frames.size());

  // Prologue yieldpoint (Jikes) / overloaded entry check (J9).
  if (Config.ExplicitEntryCheck)
    chargeProf(Config.Costs.ExplicitEntryCheck, Stats.OvEntryCheck);
  if (T.Word != YieldWord::Clear)
    processTaken(T, Where::Prologue);
}

prof::AllocationProfile VirtualMachine::trueAllocationProfile() const {
  prof::AllocationProfile Truth;
  const std::vector<uint64_t> &Counts = TheHeap.perClassAllocations();
  for (bc::ClassId C = 0; C != Counts.size(); ++C)
    if (Counts[C] != 0)
      Truth.addSample(C, Counts[C]);
  return Truth;
}

void VirtualMachine::flushThreadBuffer(Thread &T) {
  if (uint64_t Dropped = T.Buffer.takeDroppedDelta()) {
    Stats.DCGDropped += Dropped;
    emitAnomaly(tel::TraceEvent::sampleDrop(
        Stats.Cycles, T.Id, static_cast<uint32_t>(T.Buffer.capacity()),
        Dropped));
  }
  size_t Pending = T.Buffer.pendingCount();
  if (Pending == 0)
    return;
  // Organizer cost: modelled only while the program runs (post-run
  // flushes are measurement) and only for charged profilers.
  if (ChargedProfiling && State == RunState::Running)
    chargeProf(Config.Costs.BufferFlushBase +
                   Config.Costs.BufferFlushPerSample *
                       static_cast<uint32_t>(Pending),
               Stats.OvBufferFlush);
  uint64_t ContentionBefore = DCG.contentionCount();
  T.Buffer.flushInto(DCG);
  // Shard waits are attributed (never charged to execution time):
  // contention is a host-schedule artifact, structurally 0 in the
  // single-OS-thread VM, and charging it would break determinism.
  if (uint64_t Waits = DCG.contentionCount() - ContentionBefore)
    Stats.OvShardWait += Waits * Config.Costs.ShardLockWait;
  ++Stats.DCGFlushes;
}

void VirtualMachine::flushAllBuffers() {
  for (const auto &T : Threads)
    flushThreadBuffer(*T);
}

prof::DCGSnapshot VirtualMachine::profile() {
  flushAllBuffers();
  if (Patching && State != RunState::Running)
    Patching->flushIncomplete(Stats.Cycles, DCG);
  prof::DCGSnapshot Snap = DCG.snapshot();
  // Mid-run materialization is the organizer/AOS read path and is
  // modelled work; post-run reads are measurement and stay free.
  if (ChargedProfiling && State == RunState::Running)
    chargeProf(static_cast<uint32_t>(Config.Costs.SnapshotPerEdge *
                                     Snap.numEdges()),
               Stats.OvSnapshot);
  return Snap;
}

RunState VirtualMachine::run(uint64_t CycleBudget) {
  if (State != RunState::Running)
    return State;
  // Startup notification: once, before the first instruction, at
  // virtual cycle 0 — the client's chance to act on persisted profile
  // knowledge (warm-start enqueues) before the sampler exists.
  if (!StartupNotified) {
    StartupNotified = true;
    if (Client)
      Client->onStartup(*this);
  }
  uint64_t Limit = CycleBudget == UINT64_MAX
                       ? UINT64_MAX
                       : Stats.Cycles + CycleBudget;

  const CostModel &Costs = Config.Costs;

  while (State == RunState::Running) {
    if (Stats.Cycles >= Limit)
      break;
    if (Stats.Cycles >= Config.MaxCycles) {
      State = RunState::CycleLimit;
      break;
    }
    if (Stats.Cycles >= NextTimerAt)
      fireTimer();

    Thread &T = *Threads[Current];
    Frame &F = T.top();
    const bc::Instruction &I = F.CM->Code[F.PC];

    // A deopted frame runs its pinned code at baseline (unscaled)
    // speed: the modelled interpreter fallback.
    Stats.Cycles += F.Deopted ? Costs.cost(I)
                              : F.CM->scaledCost(Costs.cost(I));
    Stats.Instructions += I.Op == bc::Opcode::Work
                              ? static_cast<uint64_t>(I.A)
                              : 1;

    int64_t *Locals = T.Values.data() + F.LocalBase;
    auto push = [&T](int64_t V) { T.Values.push_back(V); };
    auto pop = [&T]() {
      int64_t V = T.Values.back();
      T.Values.pop_back();
      return V;
    };

    using bc::Opcode;
    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::IConst:
      push(I.A);
      break;
    case Opcode::ILoad:
    case Opcode::ALoad:
      push(Locals[I.A]);
      break;
    case Opcode::IStore:
    case Opcode::AStore:
      Locals[I.A] = pop();
      break;
    case Opcode::IInc:
      Locals[I.A] += I.B;
      break;
    case Opcode::IAdd: {
      int64_t R = pop(), L = pop();
      push(static_cast<int64_t>(static_cast<uint64_t>(L) +
                                static_cast<uint64_t>(R)));
      break;
    }
    case Opcode::ISub: {
      int64_t R = pop(), L = pop();
      push(static_cast<int64_t>(static_cast<uint64_t>(L) -
                                static_cast<uint64_t>(R)));
      break;
    }
    case Opcode::IMul: {
      int64_t R = pop(), L = pop();
      push(static_cast<int64_t>(static_cast<uint64_t>(L) *
                                static_cast<uint64_t>(R)));
      break;
    }
    case Opcode::IDiv: {
      int64_t R = pop(), L = pop();
      if (R == 0) {
        trap("division by zero");
        continue;
      }
      if (L == INT64_MIN && R == -1)
        push(INT64_MIN);
      else
        push(L / R);
      break;
    }
    case Opcode::IRem: {
      int64_t R = pop(), L = pop();
      if (R == 0) {
        trap("remainder by zero");
        continue;
      }
      if (L == INT64_MIN && R == -1)
        push(0);
      else
        push(L % R);
      break;
    }
    case Opcode::INeg:
      push(static_cast<int64_t>(-static_cast<uint64_t>(pop())));
      break;
    case Opcode::IAnd: {
      int64_t R = pop(), L = pop();
      push(L & R);
      break;
    }
    case Opcode::IOr: {
      int64_t R = pop(), L = pop();
      push(L | R);
      break;
    }
    case Opcode::IXor: {
      int64_t R = pop(), L = pop();
      push(L ^ R);
      break;
    }
    case Opcode::IShl: {
      int64_t R = pop(), L = pop();
      push(static_cast<int64_t>(static_cast<uint64_t>(L)
                                << (static_cast<uint64_t>(R) & 63)));
      break;
    }
    case Opcode::IShr: {
      int64_t R = pop(), L = pop();
      push(L >> (static_cast<uint64_t>(R) & 63));
      break;
    }

    case Opcode::Goto:
    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfLe:
    case Opcode::IfGt:
    case Opcode::IfGe:
    case Opcode::IfICmpEq:
    case Opcode::IfICmpNe:
    case Opcode::IfICmpLt:
    case Opcode::IfICmpGe: {
      bool Taken;
      switch (I.Op) {
      case Opcode::Goto:
        Taken = true;
        break;
      case Opcode::IfEq:
        Taken = pop() == 0;
        break;
      case Opcode::IfNe:
        Taken = pop() != 0;
        break;
      case Opcode::IfLt:
        Taken = pop() < 0;
        break;
      case Opcode::IfLe:
        Taken = pop() <= 0;
        break;
      case Opcode::IfGt:
        Taken = pop() > 0;
        break;
      case Opcode::IfGe:
        Taken = pop() >= 0;
        break;
      default: {
        int64_t R = pop(), L = pop();
        switch (I.Op) {
        case Opcode::IfICmpEq:
          Taken = L == R;
          break;
        case Opcode::IfICmpNe:
          Taken = L != R;
          break;
        case Opcode::IfICmpLt:
          Taken = L < R;
          break;
        default:
          Taken = L >= R;
          break;
        }
        break;
      }
      }
      if (Taken) {
        uint32_t Target = static_cast<uint32_t>(I.A);
        // Backedge yieldpoint: taken only when the word is positive
        // (the Jikes 3-state encoding; the J9 personality services
        // switch/GC requests here too).
        if (Target <= F.PC && T.Word == YieldWord::TakeAll) {
          const CompiledMethod *Before = F.CM;
          processTaken(T, Where::Backedge, Target);
          // An OSR transfer redirected the frame into another version
          // and already set its PC; Target is a PC of the old code.
          // (The old version may even have been reclaimed — I must not
          // be touched past this point.)
          if (F.CM != Before)
            continue;
        }
        F.PC = Target;
        continue;
      }
      break;
    }

    case Opcode::New: {
      if (TheHeap.bytesAllocated() >= NextGCAt) {
        GCRequested = true;
        if (T.Word == YieldWord::Clear)
          T.Word = YieldWord::TakeAll;
      }
      // §8 generalization: the allocation sampler's armed check
      // overloads the allocator's heap-frontier test.
      if (Config.Profiler.ProfileAllocations && T.Alloc.armed()) {
        chargeProf(Costs.ArmedEventCost, Stats.OvEntryCheck);
        if (T.Alloc.onInvocationEvent()) {
          // A histogram bump, no walk: counter-update work.
          chargeProf(Costs.AllocSampleCost, Stats.OvCounterUpdate);
          AllocProfile.addSample(static_cast<bc::ClassId>(I.A));
          ++Stats.SamplesTaken;
          // Allocation samples have no walked call edge; the invariant
          // "one sample event per SamplesTaken increment" still holds.
          if (Trace)
            Trace->event(tel::TraceEvent::sample(Stats.Cycles, T.Id,
                                                 bc::InvalidMethodId,
                                                 bc::InvalidSiteId));
        }
      }
      push(TheHeap.allocate(
          P.hierarchy().classOf(static_cast<bc::ClassId>(I.A))));
      break;
    }
    case Opcode::GetField: {
      Ref R = static_cast<Ref>(pop());
      if (!TheHeap.validRef(R)) {
        trap("getfield on null or invalid reference");
        continue;
      }
      if (static_cast<uint32_t>(I.A) >= TheHeap.numFields(R)) {
        trap("getfield index out of range");
        continue;
      }
      push(TheHeap.getField(R, static_cast<uint32_t>(I.A)));
      break;
    }
    case Opcode::PutField: {
      int64_t V = pop();
      Ref R = static_cast<Ref>(pop());
      if (!TheHeap.validRef(R)) {
        trap("putfield on null or invalid reference");
        continue;
      }
      if (static_cast<uint32_t>(I.A) >= TheHeap.numFields(R)) {
        trap("putfield index out of range");
        continue;
      }
      TheHeap.putField(R, static_cast<uint32_t>(I.A), V);
      break;
    }
    case Opcode::AConstNull:
      push(0);
      break;
    case Opcode::ClassEq: {
      Ref R = static_cast<Ref>(pop());
      push(R != 0 && TheHeap.validRef(R) &&
           TheHeap.classOf(R) == static_cast<bc::ClassId>(I.A));
      break;
    }

    case Opcode::InvokeStatic:
      invoke(T, static_cast<bc::MethodId>(I.A),
             static_cast<uint32_t>(I.B), I.Site);
      continue;

    case Opcode::InvokeVirtual: {
      uint32_t ArgCount = static_cast<uint32_t>(I.B);
      Ref Receiver =
          static_cast<Ref>(T.Values[T.Values.size() - ArgCount]);
      if (!TheHeap.validRef(Receiver)) {
        trap("virtual call on null receiver");
        continue;
      }
      bc::MethodId Target = P.hierarchy().lookup(
          TheHeap.classOf(Receiver), static_cast<bc::SelectorId>(I.A));
      if (Target == bc::InvalidMethodId) {
        trap("receiver does not understand selector '" +
             P.hierarchy().selectorName(static_cast<bc::SelectorId>(I.A)) +
             "'");
        continue;
      }
      ++Stats.VirtualCallsExecuted;
      invoke(T, Target, ArgCount, I.Site);
      continue;
    }

    case Opcode::Return:
    case Opcode::IReturn:
    case Opcode::AReturn: {
      // Epilogue yieldpoint: Jikes RVM only (§5.1); J9's mechanism is
      // the method-entry check and has no epilogue event.
      if (Config.Pers == Personality::JikesRVM &&
          T.Word != YieldWord::Clear)
        processTaken(T, Where::Epilogue);

      bool HasResult = I.Op != Opcode::Return;
      int64_t Result = HasResult ? pop() : 0;
      uint32_t LocalBase = F.LocalBase;
      // The pop may reclaim a retired version this frame was the last
      // to pin; I and F must not be touched afterwards.
      Cache.unpinFrame(F.CM);
      T.Frames.pop_back();
      T.Values.resize(LocalBase);
      if (T.Frames.empty()) {
        T.Finished = true;
        // Shutdown flush: a finished thread's staged samples must not
        // sit in a dead buffer.
        flushThreadBuffer(T);
        if (countRunnable() == 0) {
          State = RunState::Finished;
        } else {
          SwitchPending = true;
          maybeSwitch();
        }
        continue;
      }
      if (HasResult)
        push(Result);
      ++T.top().PC;
      continue;
    }

    case Opcode::Work:
      break;
    case Opcode::Print:
      Output.push_back(pop());
      break;
    case Opcode::Halt:
      State = RunState::Halted;
      continue;
    case Opcode::Spawn:
      spawnThread(static_cast<bc::MethodId>(I.A));
      break;
    }

    ++F.PC;
  }
  // Shutdown notification: once, when the run first reaches a terminal
  // state (a budget break leaves State == Running and does not fire).
  // The VM is still fully alive here, so the hook can snapshot the
  // profile for persistence.
  if (State != RunState::Running && !ShutdownNotified) {
    ShutdownNotified = true;
    if (Config.OnShutdown)
      Config.OnShutdown(*this);
  }
  return State;
}
