//===- vm/VMConfig.h - Virtual machine configuration ------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All knobs of a VM run. A run is a pure function of
/// (program, VMConfig): the config carries the personality (which of
/// the paper's two implementations is being modelled), the profiler and
/// its parameters, the cost model, and the seed.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_VMCONFIG_H
#define CBSVM_VM_VMCONFIG_H

#include "profiling/CodePatchingProfiler.h"
#include "profiling/CounterBasedSampler.h"
#include "profiling/QualityMonitor.h"
#include "support/ArgParser.h"
#include "vm/CompiledMethod.h"
#include "vm/CostModel.h"

#include <cstdint>
#include <functional>

namespace cbs::bc {
class Program;
}

namespace cbs::tel {
class FlightRecorder;
class TraceSink;
}

namespace cbs::vm {

class VirtualMachine;

/// Which of the paper's two VM implementations to model (§5).
enum class Personality : uint8_t {
  /// Jikes RVM: 3-state yieldpoint word; prologue *and* epilogue
  /// yieldpoints are invocation events; backedge yieldpoints service
  /// ticks but never yield call edges.
  JikesRVM,
  /// J9: overloaded method-entry check; entries are the only invocation
  /// events; backedges service switch/GC requests.
  J9,
};

enum class ProfilerKind : uint8_t {
  None,         ///< no DCG construction (the overhead baseline)
  Exhaustive,   ///< record every call edge (the perfect profile, §6.2)
  Timer,        ///< timer-based sampling: the Jikes RVM base (§3.3)
  CBS,          ///< counter-based sampling: the paper's technique (§4)
  CodePatching, ///< Suganuma-style prologue listeners (§3.2)
};

struct ProfilerOptions {
  ProfilerKind Kind = ProfilerKind::None;
  prof::CBSParams CBS;
  prof::CodePatchingParams Patching;
  /// Code-patching promotion trigger: a method is "optimized" (and thus
  /// instrumented) after this many invocations, standing in for the IBM
  /// DK's recompilation threshold in JIT-only accuracy runs.
  uint64_t PromoteAfterInvocations = 1000;
  /// Charge CostModel::ExhaustiveCounter per call in Exhaustive mode.
  bool ChargeExhaustiveCounters = true;
  /// Additionally record full stack walks into a CallingContextTree
  /// (the context-sensitive extension, §1/§8). Costs
  /// StackSamplePerFrame extra per walked frame.
  bool ContextSensitive = false;

  /// §8 generalization: also run a CounterBasedSampler over
  /// *allocation* events, building a per-class allocation histogram
  /// (see profiling/AllocationProfile.h). Works alongside any DCG
  /// profiler kind; the armed check overloads the allocator's existing
  /// heap-frontier test.
  bool ProfileAllocations = false;
  /// Window geometry for the allocation sampler.
  prof::CBSParams AllocCBS;

  /// Exponentially decay the profile repository every this many timer
  /// ticks (0 = never). Jikes RVM's organizers decay sample data so the
  /// DCG tracks recent behaviour across phase changes.
  uint32_t DecayEveryTicks = 0;
  /// Multiplier applied at each decay.
  double DecayFactor = 0.8;

  /// Lock stripes in the shared profile repository (rounded up to a
  /// power of two, clamped to DynamicCallGraph::MaxShards). The default
  /// of 1 keeps the single-threaded configuration on the repository's
  /// one-shard fast path; any value produces the same profile content —
  /// sharding only spreads writer contention.
  unsigned DCGShards = 1;
  /// Capacity of each thread's SampleBuffer: raw samples are appended
  /// lock-free and flushed into the repository as one atomic batch (one
  /// set of shard lock acquisitions per batch, not per sample).
  size_t SampleBufferCapacity = 256;

  /// Self-observability: the online convergence/churn monitor
  /// (Quality.EveryTicks != 0 enables it). Works best with profile
  /// decay on — a cumulative repository's history masks phase shifts.
  prof::QualityMonitorParams Quality;
};

struct VMConfig {
  Personality Pers = Personality::JikesRVM;
  ProfilerOptions Profiler;
  CostModel Costs;

  /// Virtual timer period. The default of 200k cycles is the calibrated
  /// analogue of the 10 ms tick on the paper's 2.8 GHz hardware (see
  /// EXPERIMENTS.md).
  uint64_t TimerPeriodCycles = 200'000;

  /// Seeded jitter applied to each tick, as a percentage of the period.
  /// A perfectly periodic virtual timer can resonate with a loop whose
  /// body is a divisor of the period — every tick then lands on the
  /// same instruction, an artifact impossible on real hardware, where
  /// timer interrupts drift freely against the instruction stream.
  /// Jitter is drawn from the run's seeded RNG, so runs remain exactly
  /// reproducible. Set to 0 for a strictly periodic timer.
  double TimerJitterPct = 3.0;

  /// Hard stop (state CycleLimit) — a safety net for tests.
  uint64_t MaxCycles = UINT64_MAX;

  /// A GC service request is raised every this many allocated bytes.
  uint64_t GCThresholdBytes = 1u << 18;

  /// Optimization level used for lazy first-touch compilation ("JIT
  /// only" mode of §6.2 compiles every method at the same level).
  int JITLevel = 0;

  /// Ablation (§4): model a VM without an overloadable prologue check by
  /// charging CostModel::ExplicitEntryCheck on every method entry.
  bool ExplicitEntryCheck = false;

  /// On-stack replacement at taken backedge yieldpoints: a frame whose
  /// method has a different active version transfers to it at the next
  /// loop header both versions kept (promotion OSR), and a
  /// Frame::Deopted frame transfers to a fresh baseline instead of
  /// limping on its pinned invalidated code (deopt OSR). Each transfer
  /// charges CostModel::OsrCost. Off by default: the no-OSR trajectory
  /// is byte-identical to previous releases, matching the paper's VMs,
  /// which never replace already-active frames. All OSR decisions
  /// happen on the VM thread in virtual time, so runs stay
  /// byte-identical at any --compile-jobs/--dcg-shards count.
  bool EnableOSR = false;

  uint64_t Seed = 1;

  /// Optional structured-event tracer (non-owning; must outlive the
  /// VM). Null by default: with no sink installed every emission site
  /// reduces to a single pointer test on an already-slow path, which
  /// preserves the paper's free-when-disarmed property. The sink is an
  /// observer — installing one must not change what the run computes.
  tel::TraceSink *Trace = nullptr;

  /// Optional flight recorder (non-owning; must outlive the VM). The
  /// recorder receives the quality monitor's rolling window notes plus
  /// the anomaly events (phase_shift / sample_drop / trap) even when a
  /// different Trace sink is installed; when Trace is null the VM
  /// installs the recorder as its trace sink so it also retains the
  /// regular event stream. Like Trace, a pure observer.
  tel::FlightRecorder *Recorder = nullptr;

  /// Optional compile pipeline (trivial inlining, the optimizer, an
  /// inline plan); when unset the VM installs straight baseline
  /// translations. Receives (program, method, level).
  std::function<CompiledMethod(const bc::Program &, bc::MethodId, int)>
      CompileHook;

  /// Called once, from inside run(), when the run first reaches a
  /// terminal state (Finished / Halted / Trapped / CycleLimit) — the
  /// profile-persistence hook: the VM and its profile are still fully
  /// alive, so a driver can snapshot and commit to a ProfileRepository
  /// here without keeping the VM around. Not called when a bounded
  /// run() merely exhausts its cycle budget (the run is resumable).
  std::function<void(VirtualMachine &)> OnShutdown;

  /// The validated builder every command-line surface shares: parses
  /// the common VM options (--personality, --seed, --profiler and its
  /// per-kind knobs, --dcg-shards, --buffer-capacity, --decay-ticks,
  /// --decay-factor, --osr) from \p Args, resolving the profiler through
  /// prof::ProfilerRegistry. Invalid combinations are a single
  /// diagnostic here rather than a divergent per-caller check — e.g. a
  /// sampling-only knob (--stride, --samples, --buffer-capacity) with a
  /// profiler the registry marks non-sampling fails with
  ///   "<opt> requires a sampling profiler (--profiler <name> does not
  ///    sample)".
  /// Errors route through the parser's error handler.
  static VMConfig fromArgs(support::ArgParser &Args);
};

/// fromArgs as a composable option group: commands that mix VM options
/// with other groups (AOS, profile repository, ...) register this one
/// alongside them in a single support::applyGroups call.
class VMOptionGroup : public support::OptionGroup {
public:
  VMConfig Config;

  const char *name() const override { return "vm"; }
  void parse(support::ArgParser &Args) override;
};

} // namespace cbs::vm

#endif // CBSVM_VM_VMCONFIG_H
