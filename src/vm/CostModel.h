//===- vm/CostModel.h - Virtual cycle accounting ----------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modelled cycle costs that define "time" in CBSVM. All experiment
/// quantities — run time, profiling overhead, inlining speedup — are
/// ratios of these cycles, so only the *ratios* between constants
/// matter. The defaults are calibrated against the paper's hardware
/// (see EXPERIMENTS.md): with a timer period of 200k cycles, the ratio
/// sample-cost : timer-period and the ratio armed-event-cost :
/// cycles-per-call match the 2.8 GHz / 10 ms-tick setup closely enough
/// that Table 2's overhead column shapes reproduce.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_COSTMODEL_H
#define CBSVM_VM_COSTMODEL_H

#include "bytecode/Instruction.h"

#include <cstdint>

namespace cbs::vm {

struct CostModel {
  // --- Application instruction costs -----------------------------------
  uint32_t SimpleOp = 1;        ///< arithmetic, const, local load/store
  uint32_t BranchOp = 1;        ///< all branches
  uint32_t FieldOp = 3;         ///< getfield/putfield
  uint32_t AllocOp = 16;        ///< new
  uint32_t GuardOp = 2;         ///< classeq (inline guard test)
  uint32_t PrintOp = 8;
  uint32_t SpawnOp = 400;       ///< thread creation
  uint32_t CallSequence = 15;   ///< static call: frame setup + linkage
  uint32_t VirtualDispatch = 6; ///< extra over CallSequence for vtables
  uint32_t ReturnOp = 3;

  // --- Runtime services --------------------------------------------------
  uint32_t TimerInterrupt = 80; ///< signal delivery per tick (base + prof)
  uint32_t TickService = 20;    ///< taken yieldpoint servicing a tick
  uint32_t ThreadSwitch = 60;
  uint32_t GCPause = 2000;

  // --- Profiling machinery ------------------------------------------------
  /// A prologue/epilogue yieldpoint (or J9 entry check) taken while the
  /// CBS window is armed: the Figure 3 countdown logic.
  uint32_t ArmedEventCost = 8;
  /// One stack sample: walk + repository update.
  uint32_t StackSampleBase = 8;
  /// One allocation-profile sample: histogram bump only, no walk.
  uint32_t AllocSampleCost = 3;
  /// Extra per walked frame when full-context sampling is on.
  uint32_t StackSamplePerFrame = 1;
  /// Per-call counter update of the exhaustive (Vortex-style PIC
  /// counter) profiler. 8 cycles on a ~40-cycle average call gives the
  /// 15-50% overhead range §3.1 reports.
  uint32_t ExhaustiveCounter = 8;
  /// One execution of a code-patching prologue listener (§3.2).
  uint32_t ListenerCost = 16;
  /// The three-instruction explicit entry check a VM without an
  /// overloadable prologue test would pay on *every* entry (§4,
  /// implementation options). Only charged with
  /// VMConfig::ExplicitEntryCheck.
  uint32_t ExplicitEntryCheck = 3;
  /// Organizer step (§5.1): fixed cost of one SampleBuffer batch flush
  /// into the shared repository...
  uint32_t BufferFlushBase = 8;
  /// ...plus this much per pending sample in the batch.
  uint32_t BufferFlushPerSample = 1;
  /// Attributed (never executed) cost of one contended shard-lock
  /// acquisition in the profile repository. The modelled VM is
  /// single-threaded at the OS level, so this is 0 in practice; it
  /// exists so the overhead.shard_wait attribution has a defined unit.
  uint32_t ShardLockWait = 40;
  /// Per-edge cost of materializing a DCGSnapshot while the program
  /// runs (the organizer/AOS read path; post-run snapshots are
  /// measurement and stay free).
  uint32_t SnapshotPerEdge = 1;

  // --- Deoptimization ------------------------------------------------------
  /// One-time cost charged per active frame that transitions to the
  /// baseline fallback path after its compiled version is invalidated
  /// (frame-state reconstruction at the yieldpoint). Dispatches after
  /// the transition pay only the loss of the version's LevelScale.
  uint32_t DeoptCost = 150;

  // --- On-stack replacement ------------------------------------------------
  /// One-time cost of transferring a live frame between versions of its
  /// method at a loop-header yieldpoint (extract the frame state from
  /// the old version, rebuild it for the new one, redirect the PC).
  /// Charged for both promotion OSR (entering newer optimized code
  /// mid-activation) and deopt OSR (a Frame::Deopted frame reconciling
  /// to baseline). Deliberately pricier than DeoptCost: OSR rebuilds
  /// the frame for *different* code rather than reusing it.
  uint32_t OsrCost = 220;

  // --- Compilation ---------------------------------------------------------
  /// Execution-speed multipliers per optimization level; optimized code
  /// retires modelled instructions faster.
  double LevelScale[3] = {1.0, 0.80, 0.65};
  /// Compile cycles per modelled bytecode byte per level.
  double CompileCostPerByte[3] = {40.0, 250.0, 800.0};
  /// Scales the modelled *latency* of a background compilation: a
  /// request enqueued at cycle E may install no earlier than
  /// E + Scale × CompileCostPerByte[level] × sizeBytes. 0 means
  /// compiles install at the first taken yieldpoint after the
  /// decision; larger values model a slower (or more contended)
  /// compile thread consuming an ever-staler plan.
  double CompileLatencyScale = 1.0;

  /// Base (unscaled) cost of one instruction.
  uint32_t cost(const bc::Instruction &I) const;
};

} // namespace cbs::vm

#endif // CBSVM_VM_COSTMODEL_H
