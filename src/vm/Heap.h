//===- vm/Heap.h - Object heap ----------------------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-allocated object heap. References are 1-based indices (0 is
/// null). Fields hold 64-bit integers; the verifier enforces that only
/// int values flow through Get/PutField. Collection is modelled as a
/// pause cost only (the runtime services charge CostModel::GCPause when
/// the allocation threshold trips); storage is reclaimed wholesale via
/// reset() between benchmark iterations where workloads opt in.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_HEAP_H
#define CBSVM_VM_HEAP_H

#include "bytecode/ClassHierarchy.h"

#include <cstdint>
#include <vector>

namespace cbs::vm {

/// A heap reference; 0 is null.
using Ref = uint32_t;

class Heap {
public:
  /// Allocates an instance of \p C with zeroed fields; returns its ref.
  Ref allocate(const bc::ClassType &C);

  bc::ClassId classOf(Ref R) const {
    return Objects[R - 1].Class;
  }

  uint32_t numFields(Ref R) const { return Objects[R - 1].NumFields; }

  int64_t getField(Ref R, uint32_t Index) const {
    return Fields[Objects[R - 1].FieldBase + Index];
  }

  void putField(Ref R, uint32_t Index, int64_t Value) {
    Fields[Objects[R - 1].FieldBase + Index] = Value;
  }

  bool validRef(Ref R) const { return R >= 1 && R <= Objects.size(); }

  size_t numObjects() const { return Objects.size(); }
  uint64_t bytesAllocated() const { return BytesAllocated; }

  /// Exhaustive per-class allocation counts (free bookkeeping the bump
  /// allocator keeps anyway) — the ground truth the sampled allocation
  /// profile is scored against.
  const std::vector<uint64_t> &perClassAllocations() const {
    return PerClass;
  }

  /// Drops every object (whole-heap reclamation). Callers must ensure no
  /// live references remain; the VM uses this only between benchmark
  /// iterations at safe points requested by the workload.
  void reset();

private:
  struct Object {
    bc::ClassId Class;
    uint32_t FieldBase;
    uint32_t NumFields;
  };

  std::vector<Object> Objects;
  std::vector<int64_t> Fields;
  std::vector<uint64_t> PerClass;
  uint64_t BytesAllocated = 0;
};

} // namespace cbs::vm

#endif // CBSVM_VM_HEAP_H
