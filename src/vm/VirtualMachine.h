//===- vm/VirtualMachine.h - The virtual machine ----------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual machine: a deterministic interpreter with green threads,
/// a virtual-cycle timer, yieldpoints / method-entry checks in both of
/// the paper's VM personalities, and the full profiler suite wired into
/// the runtime services. A VM run is a pure function of
/// (program, VMConfig).
///
/// Typical use:
/// \code
///   vm::VMConfig Config;
///   Config.Profiler.Kind = vm::ProfilerKind::CBS;
///   Config.Profiler.CBS = {/*Stride=*/3, /*SamplesPerTick=*/32};
///   vm::VirtualMachine VM(Program, Config);
///   VM.run();
///   prof::DCGSnapshot DCG = VM.profile();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_VIRTUALMACHINE_H
#define CBSVM_VM_VIRTUALMACHINE_H

#include "bytecode/Program.h"
#include "profiling/AllocationProfile.h"
#include "profiling/CallingContextTree.h"
#include "profiling/SampleBuffer.h"
#include "telemetry/MetricRegistry.h"
#include "vm/CodeCache.h"
#include "vm/Heap.h"
#include "vm/Thread.h"
#include "vm/VMConfig.h"
#include "vm/VMStats.h"

#include <memory>
#include <string>

namespace cbs::tel {
class FlightRecorder;
class TraceSink;
struct TraceEvent;
}

namespace cbs::vm {

class VirtualMachine;

/// Observer interface for adaptive optimization systems: the VM calls it
/// once per timer tick with the AOS hotness sample, and once per taken
/// yieldpoint (the deterministic virtual-time points where background
/// compilations are allowed to install). The client may recompile
/// methods via installCompiled from either hook.
class VMClient {
public:
  virtual ~VMClient();
  /// Called once, at the start of the first run() call, before any
  /// instruction executes (virtual cycle 0). The warm-start hook: a
  /// client holding a persisted profile can pre-enqueue compilations
  /// here so optimized code is in flight before the sampler has seen a
  /// single tick.
  virtual void onStartup(VirtualMachine &VM) { (void)VM; }
  virtual void onTimerTick(VirtualMachine &VM, bc::MethodId TopMethod) = 0;
  /// Called at every taken yieldpoint, before tick/GC servicing. Timer
  /// ticks force the next yieldpoint to be taken, so with any profiler
  /// configuration this fires at least about once per timer period.
  virtual void onYieldpoint(VirtualMachine &VM) { (void)VM; }
};

class VirtualMachine {
public:
  /// \p P must outlive the VM and should have passed verifyProgram.
  VirtualMachine(const bc::Program &P, VMConfig Config);
  ~VirtualMachine();

  VirtualMachine(const VirtualMachine &) = delete;
  VirtualMachine &operator=(const VirtualMachine &) = delete;

  /// Executes until the program finishes, traps, halts, hits
  /// VMConfig::MaxCycles, or \p CycleBudget more cycles have elapsed
  /// (in which case the run is resumable).
  RunState run(uint64_t CycleBudget = UINT64_MAX);

  RunState state() const { return State; }
  /// The stable statistics façade. Populated on demand from the metrics
  /// registry (the registry is the source of truth); callers must not
  /// hold the reference across further execution.
  const VMStats &stats() const;
  const std::vector<int64_t> &output() const { return Output; }
  const std::string &trapMessage() const { return TrapMsg; }
  const bc::Program &program() const { return P; }
  const VMConfig &config() const { return Config; }
  uint64_t cycles() const { return Stats.Cycles; }

  /// An immutable snapshot of the profile repository. Flushes every
  /// thread's pending samples first; once the run has ended, also
  /// flushes incomplete code-patching windows. Cheap to copy and stays
  /// valid after further execution or VM destruction.
  prof::DCGSnapshot profile();

  /// The context-sensitive profile (populated when
  /// ProfilerOptions::ContextSensitive is set).
  const prof::CallingContextTree &contextTree() const { return CCT; }

  /// The sampled per-class allocation histogram (populated when
  /// ProfilerOptions::ProfileAllocations is set — the §8
  /// generalization).
  const prof::AllocationProfile &allocationProfile() const {
    return AllocProfile;
  }
  /// The exhaustive allocation histogram (the heap's own counts),
  /// for scoring the sampled one.
  prof::AllocationProfile trueAllocationProfile() const;

  /// Per-method timer-tick sample counts: the AOS hotness input.
  const std::vector<uint32_t> &methodTickSamples() const {
    return TickSamples;
  }
  /// Per-method invocation counts (host bookkeeping; used by Table 1 and
  /// the code-patching promotion trigger).
  const std::vector<uint64_t> &invocationCounts() const {
    return InvocationCounts;
  }
  /// Number of methods invoked at least once.
  size_t methodsExecuted() const;

  CodeCache &codeCache() { return Cache; }
  Heap &heap() { return TheHeap; }
  void setClient(VMClient *C) { Client = C; }

  /// The online profile-quality monitor (null unless
  /// ProfilerOptions::Quality.EveryTicks != 0).
  const prof::ProfileQualityMonitor *qualityMonitor() const {
    return Quality.get();
  }

  /// Modelled cycles attributed to profiling machinery across every
  /// overhead.* component (includes the attribute-only components —
  /// yieldpoint servicing and shard waits — that are not part of
  /// vm.profiling_cycles).
  uint64_t overheadCycles() const {
    return Stats.OvEntryCheck + Stats.OvCounterUpdate + Stats.OvListener +
           Stats.OvStackWalk + Stats.OvBufferFlush + Stats.OvSnapshot +
           Stats.OvYieldpoint + Stats.OvShardWait;
  }

  /// The full metrics registry, with derived gauges (heap, code cache,
  /// methods executed, overhead.total_fraction_bp) refreshed to the
  /// current run state. Supersets stats(): every VMStats field is a
  /// "vm.*" entry here.
  const tel::MetricRegistry &metrics();
  /// Mutable registry access for cooperating components (the adaptive
  /// system registers its "aos.*" metrics here).
  tel::MetricRegistry &metricsRegistry() { return Registry; }
  /// The installed trace sink (null when tracing is off).
  tel::TraceSink *traceSink() const { return Trace; }

  /// Installs a recompiled version (AOS path). Compile cycles are
  /// tracked in stats().CompileCycles, not charged to execution time
  /// (compilation runs on a background thread in the modelled VMs).
  void installCompiled(CompiledMethod CM);

  /// Deoptimizes \p Id: its active version is invalidated in the code
  /// cache and every frame still pinning it falls back to baseline
  /// execution speed at its thread's next taken yieldpoint (each such
  /// frame is charged CostModel::DeoptCost once at that transition).
  /// Future invocations recompile lazily through the normal baseline
  /// path. With VMConfig::EnableOSR a deopted frame additionally
  /// transfers to a fresh baseline version at its next loop-header
  /// backedge yieldpoint (deopt OSR) instead of limping on the
  /// invalidated code until it returns. Returns false when the method
  /// had no active version. Must be called from the VM thread (client
  /// hooks), like installCompiled.
  bool deoptimize(bc::MethodId Id);

private:
  enum class Where : uint8_t { Prologue, Epilogue, Backedge };

  /// Hot-path views into the registry-owned counters. Field names
  /// mirror VMStats so the interpreter updates read identically to the
  /// plain-struct era; each access costs one extra (loop-invariant)
  /// pointer load over a direct member.
  struct LiveStats {
    explicit LiveStats(tel::MetricRegistry &R);

    tel::Counter &Cycles;
    tel::Counter &Instructions;
    tel::Counter &CallsExecuted;
    tel::Counter &VirtualCallsExecuted;
    tel::Counter &TimerTicks;
    tel::Counter &YieldpointsTaken;
    tel::Counter &SamplesTaken;
    tel::Counter &ProfilingCycles;
    tel::Counter &CompileCycles;
    tel::Counter &GCCount;
    tel::Counter &ThreadSwitches;
    tel::Counter &ThreadsSpawned;
    tel::Counter &Deopts;         // vm.deopts
    tel::Counter &FramesDeopted;  // vm.frames_deopted
    tel::Counter &OsrEntries;     // vm.osr_entries (promotion transfers)
    tel::Counter &OsrExits;       // vm.osr_exits (deopt-frame transfers)
    tel::Counter &DCGFlushes;
    tel::Counter &DCGDropped;
    tel::Gauge &MaxStackDepth;
    tel::Histogram &SampleStackDepth;
    tel::Histogram &CompileCostCycles;

    /// Per-component overhead attribution (the online Figure 4). The
    /// first six partition vm.profiling_cycles exactly; the last two
    /// are attributed but never charged to execution time (yieldpoint
    /// tick servicing is a base runtime service, and shard waits are
    /// host-side contention, always 0 in the single-OS-thread VM).
    tel::Counter &OvEntryCheck;    // overhead.entry_check
    tel::Counter &OvCounterUpdate; // overhead.counter_update
    tel::Counter &OvListener;      // overhead.listener
    tel::Counter &OvStackWalk;     // overhead.stack_walk
    tel::Counter &OvBufferFlush;   // overhead.buffer_flush
    tel::Counter &OvSnapshot;      // overhead.snapshot
    tel::Counter &OvYieldpoint;    // overhead.yieldpoint_taken
    tel::Counter &OvShardWait;     // overhead.shard_wait
  };

  void fireTimer();
  /// \p BackedgeTarget is the taken backward branch's target when
  /// W == Backedge (the candidate OSR point); unused otherwise.
  void processTaken(Thread &T, Where W, uint32_t BackedgeTarget = 0);
  void maybeSwitch();
  size_t countRunnable() const;
  void recordEdgeSample(Thread &T);
  /// Organizer step: batch-flush \p T's sample buffer into the shared
  /// repository, folding drop/flush counts into the dcg.* metrics.
  void flushThreadBuffer(Thread &T);
  void flushAllBuffers();
  /// Charges \p Cost to execution time, the profiling total, and the
  /// named overhead.* component.
  void chargeProf(uint32_t Cost, tel::Counter &Component) {
    Stats.Cycles += Cost;
    Stats.ProfilingCycles += Cost;
    Component += Cost;
  }
  /// Quality-monitor window boundary (called from fireTimer).
  void closeQualityWindow();
  /// Routes an anomaly event to the trace sink and (when distinct) the
  /// flight recorder.
  void emitAnomaly(const tel::TraceEvent &E);
  /// Reconciles \p T's frames with the global deopt epoch: frames
  /// pinning invalidated versions flip to the baseline fallback path.
  void reconcileDeoptFrames(Thread &T);
  /// On-stack replacement (VMConfig::EnableOSR, taken backedge
  /// yieldpoints only): if \p T's top frame runs a version that is no
  /// longer its method's active one and both versions kept the loop
  /// header the backedge jumps to, the frame transfers to the active
  /// version (a Deopted frame with no active version transfers to a
  /// fresh baseline). Charges CostModel::OsrCost per transfer. Runs on
  /// the VM thread in virtual time — determinism-neutral.
  void maybeOSR(Thread &T, uint32_t BackedgeTarget);
  const CompiledMethod *ensureCompiled(bc::MethodId Id);
  /// Pushes a frame for \p Callee consuming \p ArgCount values from the
  /// current operand stack; runs entry profiling hooks.
  void invoke(Thread &T, bc::MethodId Callee, uint32_t ArgCount,
              bc::SiteId Site);
  Thread &spawnThread(bc::MethodId Entry);
  void trap(const std::string &Message);

  const bc::Program &P;
  VMConfig Config;
  tel::MetricRegistry Registry;
  LiveStats Stats; ///< must follow Registry (references into it)
  tel::TraceSink *Trace = nullptr;
  tel::FlightRecorder *Recorder = nullptr;
  /// True when this configuration's profiling work is *charged* (CBS /
  /// Timer / CodePatching / charged Exhaustive): gates the modelled
  /// flush and snapshot costs so the free-exhaustive reference runs
  /// stay cost-free.
  bool ChargedProfiling = false;
  mutable VMStats Facade;
  CodeCache Cache;
  Heap TheHeap;
  RandomEngine RNG;

  std::vector<std::unique_ptr<Thread>> Threads;
  size_t Current = 0;
  bool SwitchPending = false;
  bool TickPending = false;
  bool GCRequested = false;
  uint64_t NextTimerAt = 0;
  uint64_t NextGCAt = 0;
  /// Bumped by deoptimize(); threads reconcile their frames against it
  /// lazily at taken yieldpoints (Thread::DeoptEpochSeen).
  uint64_t DeoptEpoch = 0;

  prof::DynamicCallGraph DCG;
  prof::CallingContextTree CCT;
  prof::AllocationProfile AllocProfile;
  std::unique_ptr<prof::CodePatchingProfiler> Patching;
  std::unique_ptr<prof::ProfileQualityMonitor> Quality;
  /// Counter values at the last recorder window note (delta baseline).
  struct WindowBaseline {
    uint64_t Cycles = 0;
    uint64_t Samples = 0;
    uint64_t Drops = 0;
    uint64_t Flushes = 0;
    uint64_t ProfilingCycles = 0;
  } WinBase;

  std::vector<uint64_t> InvocationCounts;
  std::vector<uint32_t> TickSamples;
  VMClient *Client = nullptr;

  RunState State = RunState::Running;
  /// Client->onStartup has fired (it fires once, at the start of the
  /// first run() call).
  bool StartupNotified = false;
  /// VMConfig::OnShutdown has fired (once, when run() first reaches a
  /// terminal state).
  bool ShutdownNotified = false;
  std::string TrapMsg;
  std::vector<int64_t> Output;
};

} // namespace cbs::vm

#endif // CBSVM_VM_VIRTUALMACHINE_H
