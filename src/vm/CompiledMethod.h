//===- vm/CompiledMethod.h - Installed code versions ------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One compiled version of a method: (possibly inlined and optimized)
/// code, its optimization level, and the execution-speed scale the
/// interpreter applies. The original bytecode in the Program is never
/// mutated; the code cache maps each method to its active version, and
/// stack frames pin the version they started in (no on-stack
/// replacement, matching the paper's VMs for already-active frames).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_COMPILEDMETHOD_H
#define CBSVM_VM_COMPILEDMETHOD_H

#include "bytecode/Instruction.h"

#include <cstdint>
#include <vector>

namespace cbs::vm {

/// One speculative assumption baked into a compiled version: at \p Site
/// (a virtual call the inliner expanded with guards), the profile said
/// \p AssumedCallee dominated the receiver distribution. If the live
/// profile stops backing the assumption, the version is a deopt
/// candidate (see aos::DeoptController).
struct SpeculationGuard {
  bc::SiteId Site = bc::InvalidSiteId;
  bc::MethodId AssumedCallee = bc::InvalidMethodId;
};

struct CompiledMethod {
  bc::MethodId Id = bc::InvalidMethodId;
  /// Optimization level 0..2.
  uint8_t Level = 0;
  /// Fixed-point (Q8) execution-speed multiplier; 256 = 1.0. The
  /// interpreter charges (baseCost * ScaleQ8) >> 8 per instruction.
  uint16_t ScaleQ8 = 256;
  uint32_t NumLocals = 0;
  std::vector<bc::Instruction> Code;
  /// Modelled cycles spent compiling this version (tracked separately
  /// from execution cycles; see VMStats::CompileCycles).
  uint64_t CompileCostCycles = 0;
  /// Number of callee bodies the inliner spliced in (stats only).
  uint32_t InlinedBodies = 0;
  /// The speculative assumptions this version depends on (one per
  /// guarded-inlined virtual site; empty for unspeculated code).
  std::vector<SpeculationGuard> Guards;
  /// Generation of the InlinePlan this version was compiled against and
  /// the DCG snapshot epoch that plan was built from (0 for plans built
  /// outside the adaptive system).
  uint64_t PlanGeneration = 0;
  uint64_t ProfileEpoch = 0;
  /// Set by CodeCache::invalidate when the version is retired by a
  /// deoptimization; frames still pinning it fall back to baseline
  /// execution speed at their next taken yieldpoint.
  bool Invalidated = false;

  uint64_t scaledCost(uint32_t BaseCost) const {
    return (static_cast<uint64_t>(BaseCost) * ScaleQ8) >> 8;
  }
};

} // namespace cbs::vm

#endif // CBSVM_VM_COMPILEDMETHOD_H
