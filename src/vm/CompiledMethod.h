//===- vm/CompiledMethod.h - Installed code versions ------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One compiled version of a method: (possibly inlined and optimized)
/// code, its optimization level, and the execution-speed scale the
/// interpreter applies. The original bytecode in the Program is never
/// mutated; the code cache maps each method to its active version, and
/// stack frames pin the version they started in. With on-stack
/// replacement enabled (VMConfig::EnableOSR) a pinned frame transfers
/// to the active version at the next taken backedge yieldpoint whose
/// target is a recorded OSR point; with it disabled the frame runs its
/// pinned version to completion, matching the paper's VMs for
/// already-active frames.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_COMPILEDMETHOD_H
#define CBSVM_VM_COMPILEDMETHOD_H

#include "bytecode/Instruction.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cbs::vm {

/// One speculative assumption baked into a compiled version: at \p Site
/// (a virtual call the inliner expanded with guards), the profile said
/// \p AssumedCallee dominated the receiver distribution. If the live
/// profile stops backing the assumption, the version is a deopt
/// candidate (see aos::DeoptController).
struct SpeculationGuard {
  bc::SiteId Site = bc::InvalidSiteId;
  bc::MethodId AssumedCallee = bc::InvalidMethodId;
};

/// One loop-entry location where a frame may transfer between versions
/// of the same method. OSR points are the root method's loop headers
/// (targets of backward branches in the *original* bytecode); every
/// version of a method records where each surviving header landed in
/// its own code, so two versions agree on a transfer location exactly
/// when they share the header's original-bytecode PC. At a loop header
/// the operand stack is empty and the root method's locals occupy the
/// same slots in every version (the inliner appends callee locals past
/// them), which is what makes the transfer a pure PC/locals remap.
struct OsrPoint {
  /// Loop-header PC in the method's original bytecode.
  uint32_t BytecodePC = 0;
  /// Where that header landed in this version's (inlined, optimized)
  /// code.
  uint32_t CodePC = 0;
};

struct CompiledMethod {
  bc::MethodId Id = bc::InvalidMethodId;
  /// Optimization level 0..2.
  uint8_t Level = 0;
  /// Fixed-point (Q8) execution-speed multiplier; 256 = 1.0. The
  /// interpreter charges (baseCost * ScaleQ8) >> 8 per instruction.
  uint16_t ScaleQ8 = 256;
  uint32_t NumLocals = 0;
  std::vector<bc::Instruction> Code;
  /// Modelled cycles spent compiling this version (tracked separately
  /// from execution cycles; see VMStats::CompileCycles).
  uint64_t CompileCostCycles = 0;
  /// Number of callee bodies the inliner spliced in (stats only).
  uint32_t InlinedBodies = 0;
  /// The speculative assumptions this version depends on (one per
  /// guarded-inlined virtual site; empty for unspeculated code).
  std::vector<SpeculationGuard> Guards;
  /// Generation of the InlinePlan this version was compiled against and
  /// the DCG snapshot epoch that plan was built from (0 for plans built
  /// outside the adaptive system).
  uint64_t PlanGeneration = 0;
  uint64_t ProfileEpoch = 0;
  /// Set by CodeCache::invalidate when the version is retired by a
  /// deoptimization; frames still pinning it fall back to baseline
  /// execution speed at their next taken yieldpoint (and, with OSR
  /// enabled, transfer off it at the next mapped loop header).
  bool Invalidated = false;
  /// Loop-entry transfer locations, sorted by BytecodePC. Always
  /// emitted (the table is inert data when OSR is off); identity
  /// entries for baseline compiles.
  std::vector<OsrPoint> OsrPoints;
  /// Live frames currently executing this version. Maintained only
  /// when VMConfig::EnableOSR pin tracking is on; the code cache uses
  /// it to reclaim graveyard versions once the last frame leaves.
  uint32_t PinnedFrames = 0;

  uint64_t scaledCost(uint32_t BaseCost) const {
    return (static_cast<uint64_t>(BaseCost) * ScaleQ8) >> 8;
  }

  /// The OSR point whose code-space PC is \p CodePC, or nullptr.
  const OsrPoint *osrPointAtCode(uint32_t CodePC) const {
    for (const OsrPoint &P : OsrPoints)
      if (P.CodePC == CodePC)
        return &P;
    return nullptr;
  }

  /// The OSR point for original-bytecode loop header \p BytecodePC, or
  /// nullptr if this version did not keep that header.
  const OsrPoint *osrPointAtBytecode(uint32_t BytecodePC) const {
    for (const OsrPoint &P : OsrPoints)
      if (P.BytecodePC == BytecodePC)
        return &P;
    return nullptr;
  }
};

/// Loop-header PCs of \p Code: targets of backward branches (the
/// interpreter treats a taken branch with Target <= PC as a backedge).
/// Sorted, unique. Both the baseline identity compile and the
/// optimizing pipeline derive their OSR tables from this over the
/// method's *original* bytecode, so all versions agree on the set of
/// candidate headers.
inline std::vector<uint32_t>
loopHeaderPCs(const std::vector<bc::Instruction> &Code) {
  std::vector<uint32_t> Headers;
  for (uint32_t PC = 0; PC < Code.size(); ++PC) {
    const bc::Instruction &I = Code[PC];
    if (!bc::isBranch(I.Op))
      continue;
    uint32_t Target = static_cast<uint32_t>(I.A);
    if (Target > PC)
      continue;
    bool Seen = false;
    for (uint32_t H : Headers)
      Seen |= (H == Target);
    if (!Seen)
      Headers.push_back(Target);
  }
  std::sort(Headers.begin(), Headers.end());
  return Headers;
}

} // namespace cbs::vm

#endif // CBSVM_VM_COMPILEDMETHOD_H
