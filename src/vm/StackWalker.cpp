//===- vm/StackWalker.cpp - Call stack sampling -----------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "vm/StackWalker.h"

using namespace cbs;
using namespace cbs::vm;

std::vector<prof::PathStep> vm::walkStack(const Thread &T) {
  std::vector<prof::PathStep> Path;
  Path.reserve(T.Frames.size());
  for (size_t I = 0, E = T.Frames.size(); I != E; ++I) {
    bc::SiteId Site = bc::InvalidSiteId;
    if (I > 0) {
      const Frame &Caller = T.Frames[I - 1];
      const bc::Instruction &CI = Caller.CM->Code[Caller.PC];
      if (bc::isCall(CI.Op))
        Site = CI.Site;
    }
    Path.push_back({Site, T.Frames[I].CM->Id});
  }
  return Path;
}

std::optional<prof::CallEdge> vm::topEdge(const Thread &T) {
  if (T.Frames.size() < 2)
    return std::nullopt;
  const Frame &Caller = T.Frames[T.Frames.size() - 2];
  const bc::Instruction &CI = Caller.CM->Code[Caller.PC];
  if (!bc::isCall(CI.Op))
    return std::nullopt;
  return prof::CallEdge{CI.Site, T.Frames.back().CM->Id};
}
