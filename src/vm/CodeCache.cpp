//===- vm/CodeCache.cpp - Active code versions -----------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "vm/CodeCache.h"

#include "bytecode/Program.h"
#include "support/ErrorHandling.h"

#include <cassert>
#include <cmath>
#include <string>

using namespace cbs;
using namespace cbs::vm;

CodeCache::CodeCache(const bc::Program &P)
    : Active(P.numMethods()), Epochs(P.numMethods(), 0) {}

const CompiledMethod *CodeCache::install(CompiledMethod CM) {
  assert(CM.Id < Active.size() && "unknown method");
  assert(!CM.Code.empty() && "installing an empty body");
  CompileCycles += CM.CompileCostCycles;
  ++Compiles;
  if (Active[CM.Id]) {
    if (Active[CM.Id]->Level == CM.Level &&
        Active[CM.Id]->PlanGeneration == CM.PlanGeneration)
      reportFatalError(
          "double-install of method " + std::to_string(CM.Id) + " at level " +
          std::to_string(CM.Level) + ", plan generation " +
          std::to_string(CM.PlanGeneration) +
          ": identical version is already active");
    ++Recompiles;
    GraveyardInstructions += Active[CM.Id]->Code.size();
    ActiveInstructions -= Active[CM.Id]->Code.size();
    Graveyard.push_back(std::move(Active[CM.Id]));
    // A version retired with no live frames never gets another unpin;
    // free it here rather than letting it linger forever.
    reclaimIfUnpinned(Graveyard.back().get());
  }
  ActiveInstructions += CM.Code.size();
  Active[CM.Id] = std::make_unique<CompiledMethod>(std::move(CM));
  return Active[CM.Id].get();
}

const CompiledMethod *CodeCache::invalidate(bc::MethodId Id) {
  assert(Id < Active.size() && "unknown method");
  if (!Active[Id])
    return nullptr;
  Active[Id]->Invalidated = true;
  ++Invalidations;
  ++Epochs[Id];
  GraveyardInstructions += Active[Id]->Code.size();
  ActiveInstructions -= Active[Id]->Code.size();
  Graveyard.push_back(std::move(Active[Id]));
  return Graveyard.back().get();
}

void CodeCache::pinFrame(const CompiledMethod *CM) {
  if (!PinTracking || !CM)
    return;
  // The cache owns every version it hands out; frames hold const
  // pointers, so the pin count is adjusted through the owner.
  ++const_cast<CompiledMethod *>(CM)->PinnedFrames;
}

void CodeCache::unpinFrame(const CompiledMethod *CM) {
  if (!PinTracking || !CM)
    return;
  CompiledMethod *M = const_cast<CompiledMethod *>(CM);
  assert(M->PinnedFrames > 0 && "unpin without a matching pin");
  if (--M->PinnedFrames == 0)
    reclaimIfUnpinned(CM); // frees it only if it is already retired
}

bool CodeCache::reclaimIfUnpinned(const CompiledMethod *CM) {
  if (!PinTracking || !CM || CM->PinnedFrames != 0)
    return false;
  for (size_t I = 0, E = Graveyard.size(); I != E; ++I) {
    if (Graveyard[I].get() != CM)
      continue;
    GraveyardInstructions -= CM->Code.size();
    ReclaimedInstructions += CM->Code.size();
    ++Reclaims;
    Graveyard.erase(Graveyard.begin() + static_cast<ptrdiff_t>(I));
    return true;
  }
  return false;
}

CompiledMethod CodeCache::compileBaseline(const bc::Program &P,
                                          bc::MethodId Id, int Level,
                                          const CostModel &Costs) {
  assert(Level >= 0 && Level <= 2 && "optimization level out of range");
  const bc::Method &M = P.method(Id);
  CompiledMethod CM;
  CM.Id = Id;
  CM.Level = static_cast<uint8_t>(Level);
  CM.ScaleQ8 =
      static_cast<uint16_t>(std::lround(Costs.LevelScale[Level] * 256.0));
  CM.NumLocals = M.NumLocals;
  CM.Code = M.Code;
  // The identity translation keeps every loop header where it was, so
  // its OSR table is the identity map over the method's headers.
  for (uint32_t H : loopHeaderPCs(M.Code))
    CM.OsrPoints.push_back({H, H});
  CM.CompileCostCycles = static_cast<uint64_t>(
      std::llround(Costs.CompileCostPerByte[Level] * M.sizeBytes()));
  return CM;
}
