//===- vm/CodeCache.cpp - Active code versions -----------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "vm/CodeCache.h"

#include "bytecode/Program.h"

#include <cassert>
#include <cmath>

using namespace cbs;
using namespace cbs::vm;

CodeCache::CodeCache(const bc::Program &P) : Active(P.numMethods()) {}

const CompiledMethod *CodeCache::install(CompiledMethod CM) {
  assert(CM.Id < Active.size() && "unknown method");
  assert(!CM.Code.empty() && "installing an empty body");
  CompileCycles += CM.CompileCostCycles;
  ++Compiles;
  if (Active[CM.Id]) {
    ++Recompiles;
    Graveyard.push_back(std::move(Active[CM.Id]));
  }
  Active[CM.Id] = std::make_unique<CompiledMethod>(std::move(CM));
  return Active[CM.Id].get();
}

CompiledMethod CodeCache::compileBaseline(const bc::Program &P,
                                          bc::MethodId Id, int Level,
                                          const CostModel &Costs) {
  assert(Level >= 0 && Level <= 2 && "optimization level out of range");
  const bc::Method &M = P.method(Id);
  CompiledMethod CM;
  CM.Id = Id;
  CM.Level = static_cast<uint8_t>(Level);
  CM.ScaleQ8 =
      static_cast<uint16_t>(std::lround(Costs.LevelScale[Level] * 256.0));
  CM.NumLocals = M.NumLocals;
  CM.Code = M.Code;
  CM.CompileCostCycles = static_cast<uint64_t>(
      std::llround(Costs.CompileCostPerByte[Level] * M.sizeBytes()));
  return CM;
}

uint64_t CodeCache::activeCodeInstructions() const {
  uint64_t Total = 0;
  for (const auto &CM : Active)
    if (CM)
      Total += CM->Code.size();
  return Total;
}
