//===- vm/VMStats.h - Execution counters ------------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters accumulated over a VM run. Cycles is total modelled time
/// including all profiling work; ProfilingCycles is the portion
/// attributable to profiling (for decomposition displays — overhead in
/// the experiments is measured the way the paper measures it, by
/// comparing against a separate ProfilerKind::None run).
///
/// This struct is the stable façade over the VM's telemetry registry:
/// the live counters are owned by tel::MetricRegistry (names "vm.*";
/// see VirtualMachine::metrics()) and VirtualMachine::stats() snapshots
/// them into this shape. New metrics go into the registry, not here.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_VMSTATS_H
#define CBSVM_VM_VMSTATS_H

#include <cstdint>

namespace cbs::vm {

struct VMStats {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0; ///< modelled (Work counts its A cycles as work)
  uint64_t CallsExecuted = 0;
  uint64_t VirtualCallsExecuted = 0;
  uint64_t TimerTicks = 0;
  uint64_t YieldpointsTaken = 0;
  uint64_t SamplesTaken = 0;
  uint64_t ProfilingCycles = 0;
  uint64_t CompileCycles = 0;
  uint64_t GCCount = 0;
  uint64_t ThreadSwitches = 0;
  uint64_t ThreadsSpawned = 0;
  uint64_t MaxStackDepth = 0;
};

/// Why VirtualMachine::run returned.
enum class RunState : uint8_t {
  Running,    ///< budget exhausted, resumable
  Finished,   ///< all threads returned from their entry frames
  Halted,     ///< a Halt instruction executed
  Trapped,    ///< runtime error (null deref, bad dispatch, div by 0, ...)
  CycleLimit, ///< VMConfig::MaxCycles reached
};

const char *runStateName(RunState S);

} // namespace cbs::vm

#endif // CBSVM_VM_VMSTATS_H
