//===- vm/VMConfig.cpp - Validated config construction ------------------------===//
//
// Part of the CBSVM project.
//
// VMConfig::fromArgs — the one place command-line options become a VM
// configuration. Every cbsvm subcommand (and any bench or test that
// takes the shared options) builds through here, so the defaults, the
// ranges, and the invalid-combination diagnostics cannot drift apart
// between callers.
//
//===----------------------------------------------------------------------===//

#include "vm/VMConfig.h"

#include "profiling/DynamicCallGraph.h"
#include "profiling/ProfilerRegistry.h"
#include "support/ArgParser.h"

using namespace cbs;
using namespace cbs::vm;

VMConfig VMConfig::fromArgs(support::ArgParser &Args) {
  VMConfig Config;

  std::string Pers = Args.option("--personality", "jikes");
  if (Pers == "jikes")
    Config.Pers = Personality::JikesRVM;
  else if (Pers == "j9")
    Config.Pers = Personality::J9;
  else
    Args.fail("unknown personality '" + Pers + "' (jikes, j9)");

  Config.Seed = Args.optionUInt("--seed", 1, 0, UINT64_MAX);

  std::string ProfilerName = Args.option("--profiler", "cbs");
  const prof::ProfilerRegistry &Registry = prof::ProfilerRegistry::instance();
  const prof::ProfilerDescriptor *D = Registry.find(ProfilerName);
  if (!D)
    Args.fail("unknown profiler '" + ProfilerName +
              "' (available: " + Registry.names() + ")");

  // Sampling-geometry knobs only mean something when the chosen
  // profiler is driven by the sampling machinery; anything else is a
  // silent no-op the user almost certainly didn't intend. One check,
  // one message shape, for every caller.
  if (!D->Sampling)
    for (const char *Opt : {"--stride", "--samples", "--buffer-capacity"})
      if (Args.present(Opt))
        Args.fail(std::string(Opt) + " requires a sampling profiler "
                                     "(--profiler " +
                  D->Name + " does not sample)");

  D->Configure(Config.Profiler);
  Config.Profiler.CBS.Stride =
      static_cast<uint32_t>(Args.optionUInt("--stride", 3, 1, UINT32_MAX));
  Config.Profiler.CBS.SamplesPerTick = static_cast<uint32_t>(
      Args.optionUInt("--samples", 16, 1, UINT32_MAX));
  Config.Profiler.DCGShards = static_cast<unsigned>(Args.optionUInt(
      "--dcg-shards", 1, 1, prof::DynamicCallGraph::MaxShards));
  Config.Profiler.SampleBufferCapacity =
      Args.optionUInt("--buffer-capacity", 256, 1, 1 << 20);
  Config.Profiler.DecayEveryTicks = static_cast<uint32_t>(
      Args.optionUInt("--decay-ticks", 0, 0, UINT32_MAX));
  Config.Profiler.DecayFactor =
      Args.optionDouble("--decay-factor", 0.8, 0.0, 1.0);
  Config.EnableOSR = Args.flag("--osr");
  return Config;
}

void VMOptionGroup::parse(support::ArgParser &Args) {
  Config = VMConfig::fromArgs(Args);
}
