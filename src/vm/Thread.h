//===- vm/Thread.h - Green threads and frames -------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Green (VM-scheduled) threads. Each thread owns one contiguous value
/// arena: a frame's locals occupy [LocalBase, LocalBase + NumLocals) and
/// its operand stack is everything beyond, so pushes/pops are vector
/// back operations and frame pop is a resize.
///
/// Per the paper (§5.2, "thread-local variables are used for the
/// counters to avoid potential scalability issues or race conditions"),
/// each thread carries its own sampler state machines; the shared
/// profile repository is updated only when a sample fires.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_VM_THREAD_H
#define CBSVM_VM_THREAD_H

#include "profiling/CounterBasedSampler.h"
#include "profiling/SampleBuffer.h"
#include "profiling/TimerSampler.h"
#include "vm/CompiledMethod.h"

#include <vector>

namespace cbs::vm {

struct Frame {
  const CompiledMethod *CM = nullptr;
  uint32_t PC = 0;
  /// Index of locals[0] within the thread's value arena.
  uint32_t LocalBase = 0;
  /// The frame's pinned version was invalidated after the frame
  /// entered it: the frame keeps executing its code (semantics are
  /// unchanged — guard misses fall through to the real dispatch) but at
  /// baseline speed, the modelled stand-in for falling back to
  /// interpreted code. With VMConfig::EnableOSR the frame additionally
  /// transfers to a fresh baseline version at the next loop-header
  /// yieldpoint (deopt OSR), clearing this flag; without OSR it limps
  /// on its pinned code until it returns.
  bool Deopted = false;
};

/// The Jikes RVM yieldpoint control word states (§5.1): prologue and
/// epilogue yieldpoints are taken when the word is nonzero; backedge
/// yieldpoints only when it is positive.
enum class YieldWord : int8_t {
  CBSArmed = -1, ///< take prologue/epilogue yieldpoints (CBS window open)
  Clear = 0,     ///< take nothing
  TakeAll = 1,   ///< take all yieldpoints (timer/GC service request)
};

struct Thread {
  uint32_t Id = 0;
  std::vector<Frame> Frames;
  std::vector<int64_t> Values;
  bool Finished = false;

  /// The single overloadable check word (paper Figures 3-4 / §5.1).
  YieldWord Word = YieldWord::Clear;
  /// A thread switch was requested while the CBS window was armed; it is
  /// honoured when the window closes (§5.1: "then ... the thread switch
  /// is allowed to occur").
  bool DeferredSwitch = false;
  /// VM-global deopt epoch this thread last reconciled its frames
  /// against (at a taken yieldpoint); a lower value means invalidated
  /// versions may still be running at optimized speed in this stack.
  uint64_t DeoptEpochSeen = 0;

  prof::CounterBasedSampler CBS;
  /// §8 generalization: the same state machine over allocation events.
  prof::CounterBasedSampler Alloc;
  prof::TimerSampler Timer;
  /// Per-thread raw-sample staging (the paper's listener side): appends
  /// are thread-local and lock-free; the VM flushes the buffer into the
  /// shared repository as one batch when it fills, at thread switches,
  /// and at shutdown/snapshot points.
  prof::SampleBuffer Buffer;

  Frame &top() { return Frames.back(); }
  const Frame &top() const { return Frames.back(); }
  size_t depth() const { return Frames.size(); }
};

} // namespace cbs::vm

#endif // CBSVM_VM_THREAD_H
