//===- aos/DeoptController.cpp - Speculation guard policing ------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "aos/DeoptController.h"

#include "profiling/DCGSnapshot.h"
#include "profiling/QualityMonitor.h"
#include "telemetry/TraceSink.h"
#include "vm/VirtualMachine.h"

#include <algorithm>

using namespace cbs;
using namespace cbs::aos;

void DeoptController::ensureSize(size_t NumMethods) {
  if (States.size() < NumMethods)
    States.resize(NumMethods);
}

void DeoptController::noteInstall(const vm::CompiledMethod &CM) {
  if (CM.Guards.empty() && !Config.ForceStormForTesting)
    return;
  ensureSize(CM.Id + 1);
  if (!States[CM.Id].Tracked) {
    States[CM.Id].Tracked = true;
    Tracked.push_back(CM.Id);
  }
}

void DeoptController::deoptimize(vm::VirtualMachine &VM, bc::MethodId Method,
                                 bool PhaseShift,
                                 std::vector<DeoptDecision> &Out) {
  const vm::CompiledMethod *CM = VM.codeCache().active(Method);
  int Level = CM ? CM->Level : 0;
  if (!VM.deoptimize(Method)) {
    States[Method].Tracked = false;
    return;
  }
  ++Stats.Deopts;
  if (PhaseShift)
    ++Stats.PhaseShiftDeopts;
  MethodState &S = States[Method];
  S.Tracked = false;
  ++S.DeoptCount;
  if (!S.Pinned && S.DeoptCount >= Config.MaxDeoptsPerMethod) {
    S.Pinned = true;
    ++Stats.ConservativePins;
  }
  Out.push_back({Method, Level, S.Pinned});
}

void DeoptController::checkOne(vm::VirtualMachine &VM,
                               const prof::DCGSnapshot &Snapshot,
                               const prof::ProfileQualityMonitor *Monitor,
                               bc::MethodId M,
                               std::vector<DeoptDecision> &Out) {
  const vm::CompiledMethod *CM = VM.codeCache().active(M);
  if (!CM || CM->Invalidated || CM->Guards.empty()) {
    // Superseded by a guard-free recompile (or invalidated elsewhere):
    // nothing left to police.
    States[M].Tracked = false;
    return;
  }
  ++Stats.GuardChecks;

  // A phase shift after the profile this version speculated on means
  // every one of its assumptions is suspect at once — deopt without
  // consulting individual guards.
  if (Monitor && Monitor->phaseShiftCount() > CM->ProfileEpoch) {
    deoptimize(VM, M, /*PhaseShift=*/true, Out);
    return;
  }

  bool Failed = false;
  for (const vm::SpeculationGuard &G : CM->Guards) {
    uint64_t SiteWeight = 0;
    bc::MethodId Dominant = Snapshot.dominantCallee(
        G.Site, Config.DominanceThresholdPct, SiteWeight);
    // Evidence gate: only contradict the assumption once the current
    // profile has real weight at the site.
    if (SiteWeight < Config.MinSiteWeight || Dominant == G.AssumedCallee)
      continue;
    ++Stats.GuardFailures;
    if (tel::TraceSink *Sink = VM.traceSink())
      Sink->event(tel::TraceEvent::guardFail(VM.cycles(), 0, M, G.Site,
                                             G.AssumedCallee));
    Failed = true;
  }
  if (Failed)
    deoptimize(VM, M, /*PhaseShift=*/false, Out);
}

namespace {

/// The tracked list accumulates stale ids (deopts and re-installs flip
/// the Tracked bit rather than erase); compacting after each pass keeps
/// iteration deterministic and the list bounded by live installs.
void compact(std::vector<bc::MethodId> &Tracked,
             const std::vector<bool> &Alive) {
  Tracked.erase(std::remove_if(Tracked.begin(), Tracked.end(),
                               [&](bc::MethodId M) { return !Alive[M]; }),
                Tracked.end());
}

} // namespace

std::vector<DeoptDecision> DeoptController::police(vm::VirtualMachine &VM) {
  std::vector<DeoptDecision> Out;
  // Under the forced storm every tracked version dies at the next taken
  // yieldpoint anyway; running the guard pass too would untrack
  // guard-free versions ("nothing to police") before the storm reaches
  // them whenever an install and a tick share a yieldpoint.
  if (Config.ForceStormForTesting || Tracked.empty())
    return Out;
  // One snapshot for the whole pass: every guard is judged against the
  // same profile, and the snapshot cost is paid once per check at most.
  prof::DCGSnapshot Snapshot = VM.profile();
  const prof::ProfileQualityMonitor *Monitor = VM.qualityMonitor();

  for (bc::MethodId M : std::vector<bc::MethodId>(Tracked))
    if (States[M].Tracked)
      checkOne(VM, Snapshot, Monitor, M, Out);

  std::vector<bool> Alive(States.size(), false);
  for (bc::MethodId M : Tracked)
    if (States[M].Tracked)
      Alive[M] = true;
  compact(Tracked, Alive);
  return Out;
}

std::vector<DeoptDecision>
DeoptController::policeInstall(vm::VirtualMachine &VM, bc::MethodId Method) {
  std::vector<DeoptDecision> Out;
  // Under the forced storm the yieldpoint pass invalidates everything
  // anyway; checking inside the install loop would turn zero-latency
  // storms into install/invalidate livelock.
  if (Config.ForceStormForTesting)
    return Out;
  if (Method >= States.size() || !States[Method].Tracked)
    return Out;
  prof::DCGSnapshot Snapshot = VM.profile();
  checkOne(VM, Snapshot, VM.qualityMonitor(), Method, Out);
  return Out;
}

std::vector<DeoptDecision> DeoptController::storm(vm::VirtualMachine &VM) {
  std::vector<DeoptDecision> Out;
  if (Tracked.empty())
    return Out;
  for (bc::MethodId M : std::vector<bc::MethodId>(Tracked)) {
    if (!States[M].Tracked)
      continue;
    const vm::CompiledMethod *CM = VM.codeCache().active(M);
    if (!CM || CM->Invalidated) {
      States[M].Tracked = false;
      continue;
    }
    // Unconditional: the storm exists to prove that arbitrarily-timed
    // invalidation never changes what the program computes.
    deoptimize(VM, M, /*PhaseShift=*/false, Out);
  }
  std::vector<bool> Alive(States.size(), false);
  for (bc::MethodId M : Tracked)
    if (States[M].Tracked)
      Alive[M] = true;
  compact(Tracked, Alive);
  return Out;
}
