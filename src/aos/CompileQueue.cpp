//===- aos/CompileQueue.cpp - Background compile pipeline --------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "aos/CompileQueue.h"

#include "bytecode/Program.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <utility>

using namespace cbs;
using namespace cbs::aos;

//===----------------------------------------------------------------------===//
// CompileWorkerPool
//===----------------------------------------------------------------------===//

CompileWorkerPool::CompileWorkerPool(const bc::Program &P, vm::CostModel Costs,
                                     opt::CompileOptions Options,
                                     unsigned NumThreads)
    : P(P), Costs(Costs), Options(Options) {
  if (NumThreads == 0)
    reportFatalError("CompileWorkerPool needs at least one thread");
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

CompileWorkerPool::~CompileWorkerPool() {
  {
    std::lock_guard<std::mutex> L(M);
    ShuttingDown = true;
  }
  CV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

std::shared_future<vm::CompiledMethod>
CompileWorkerPool::submit(bc::MethodId Method, int Level,
                          std::shared_ptr<const opt::InlinePlan> Plan) {
  Job J;
  J.Method = Method;
  J.Level = Level;
  J.Plan = std::move(Plan);
  std::shared_future<vm::CompiledMethod> F =
      J.Result.get_future().share();
  {
    std::lock_guard<std::mutex> L(M);
    Jobs.push_back(std::move(J));
  }
  CV.notify_one();
  return F;
}

void CompileWorkerPool::workerLoop() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> L(M);
      CV.wait(L, [this] { return ShuttingDown || !Jobs.empty(); });
      if (Jobs.empty())
        return; // shutting down with nothing left to drain
      J = std::move(Jobs.front());
      Jobs.pop_front();
    }
    // compileMethod is a pure function of its arguments; the plan
    // snapshot is immutable and the program is read-only for the whole
    // run, so this races with nothing.
    J.Result.set_value(
        opt::compileMethod(P, J.Method, J.Level, *J.Plan, Costs, Options));
  }
}

//===----------------------------------------------------------------------===//
// CompileQueue
//===----------------------------------------------------------------------===//

EnqueueResult CompileQueue::enqueue(CompileRequest R,
                                    std::optional<CompileRequest> *Evicted) {
  // Coalesce: one pending entry per method. A higher-level request
  // supersedes the pending one wholesale (its plan, latency, and
  // compile result are for the wrong level); an equal-or-lower request
  // only raises the pending entry's priority.
  for (CompileRequest &E : Entries) {
    if (E.Method != R.Method)
      continue;
    if (R.Level > E.Level) {
      uint64_t Seq = E.Seq; // keep the original queue position
      double Priority = std::max(E.Priority, R.Priority);
      E = std::move(R);
      E.Seq = Seq;
      E.Priority = Priority;
    } else {
      E.Priority = std::max(E.Priority, R.Priority);
    }
    return EnqueueResult::Coalesced;
  }

  if (Entries.size() < Capacity) {
    Entries.push_back(std::move(R));
    return EnqueueResult::Added;
  }

  // Full: evict the lowest-priority entry if the newcomer outranks it
  // (ties keep the incumbent — it has seniority and possibly a compile
  // already in flight).
  auto Lowest = std::min_element(
      Entries.begin(), Entries.end(),
      [](const CompileRequest &L, const CompileRequest &R) {
        if (L.Priority != R.Priority)
          return L.Priority < R.Priority;
        return L.Seq > R.Seq; // youngest of the equally-cold entries
      });
  if (Lowest->Priority >= R.Priority)
    return EnqueueResult::Rejected;
  if (Evicted)
    *Evicted = std::move(*Lowest);
  *Lowest = std::move(R);
  return EnqueueResult::EvictedLowest;
}

std::optional<CompileRequest> CompileQueue::popReady(uint64_t Now) {
  auto Best = Entries.end();
  for (auto It = Entries.begin(); It != Entries.end(); ++It) {
    if (It->ReadyCycle > Now)
      continue;
    if (Best == Entries.end() || It->Priority > Best->Priority ||
        (It->Priority == Best->Priority && It->Seq < Best->Seq))
      Best = It;
  }
  if (Best == Entries.end())
    return std::nullopt;
  CompileRequest R = std::move(*Best);
  Entries.erase(Best);
  return R;
}

size_t CompileQueue::dropMethod(bc::MethodId Method) {
  size_t Before = Entries.size();
  Entries.erase(std::remove_if(Entries.begin(), Entries.end(),
                               [Method](const CompileRequest &E) {
                                 return E.Method == Method;
                               }),
                Entries.end());
  return Before - Entries.size();
}

int CompileQueue::pendingLevel(bc::MethodId Method) const {
  for (const CompileRequest &E : Entries)
    if (E.Method == Method)
      return E.Level;
  return -1;
}
