//===- aos/ReportJson.cpp - Machine-readable self-observability report ----===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "aos/ReportJson.h"

#include "aos/AdaptiveSystem.h"
#include "aos/DeoptController.h"
#include "profiling/QualityMonitor.h"
#include "support/Json.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/MetricRegistry.h"
#include "vm/VirtualMachine.h"

using namespace cbs;
using namespace cbs::aos;

namespace {

uint64_t counterOrZero(const tel::MetricRegistry &Metrics, const char *Name) {
  const tel::Counter *C = Metrics.findCounter(Name);
  return C ? static_cast<uint64_t>(*C) : 0;
}

uint64_t gaugeOrZero(const tel::MetricRegistry &Metrics, const char *Name) {
  const tel::Gauge *G = Metrics.findGauge(Name);
  return G ? static_cast<uint64_t>(*G) : 0;
}

} // namespace

std::string aos::buildReportJson(const ReportInputs &In) {
  vm::VirtualMachine &VM = *In.VM;
  // metrics() refreshes the derived gauges (code.*, heap.*) before we
  // read them.
  const tel::MetricRegistry &Metrics = VM.metrics();
  uint64_t VmCycles = VM.cycles();
  uint64_t OvTotal = VM.overheadCycles();
  auto FractionPct = [VmCycles](uint64_t Cycles) {
    return VmCycles == 0 ? 0.0
                         : 100.0 * static_cast<double>(Cycles) /
                               static_cast<double>(VmCycles);
  };

  json::JsonWriter W;
  W.beginObject();
  W.key("workload");
  W.value(In.Workload);
  W.key("size");
  W.value(In.Size);
  W.key("seed");
  W.value(In.Seed);
  W.key("state");
  W.value(In.State);
  W.key("cycles");
  W.value(VmCycles);

  W.key("quality");
  if (const prof::ProfileQualityMonitor *Monitor = VM.qualityMonitor()) {
    Monitor->writeJson(W);
  } else {
    // The monitor exists whenever Quality.EveryTicks != 0 (cbsvm report
    // always arms it); an empty object keeps the schema stable for
    // callers that didn't.
    W.beginObject();
    W.endObject();
  }

  W.key("overhead");
  W.beginObject();
  W.key("components");
  W.beginArray();
  for (const char *Name : OverheadComponentNames) {
    uint64_t Cycles = counterOrZero(Metrics, Name);
    W.beginObject();
    W.key("name");
    W.value(Name);
    W.key("cycles");
    W.value(Cycles);
    W.key("fractionPct");
    W.value(FractionPct(Cycles));
    W.endObject();
  }
  W.endArray();
  W.key("totalCycles");
  W.value(OvTotal);
  W.key("vmCycles");
  W.value(VmCycles);
  W.key("totalFractionPct");
  W.value(FractionPct(OvTotal));
  W.endObject();

  if (In.AOS) {
    const AOSStats &A = In.AOS->stats();
    W.key("aos");
    W.beginObject();
    W.key("recompilations");
    W.value(A.Recompilations);
    W.key("promotionsToL1");
    W.value(A.PromotionsToL1);
    W.key("promotionsToL2");
    W.value(A.PromotionsToL2);
    W.key("reoptimizations");
    W.value(A.Reoptimizations);
    W.key("plansComputed");
    W.value(A.PlansComputed);
    W.key("phaseShiftReplans");
    W.value(A.PhaseShiftReplans);
    W.key("queue");
    W.beginObject();
    W.key("depth");
    W.value(static_cast<uint64_t>(In.AOS->queueDepth()));
    W.key("enqueued");
    W.value(A.QueueEnqueued);
    W.key("installs");
    W.value(A.QueueInstalls);
    W.key("stale_drops");
    W.value(A.QueueStaleDrops);
    W.key("coalesced");
    W.value(A.QueueCoalesced);
    W.key("dropped");
    W.value(A.QueueDropped);
    W.key("firstInstallCycle");
    W.value(A.FirstInstallCycle);
    W.endObject();
    if (In.AOS->warmStarted()) {
      W.key("warm");
      W.beginObject();
      W.key("enqueued");
      W.value(A.WarmEnqueued);
      W.key("installs");
      W.value(A.WarmInstalls);
      W.endObject();
    }
    if (const DeoptController *DC = In.AOS->deoptController()) {
      const DeoptStats &D = DC->stats();
      W.key("deopt");
      W.beginObject();
      W.key("guardChecks");
      W.value(D.GuardChecks);
      W.key("guardFailures");
      W.value(D.GuardFailures);
      W.key("count");
      W.value(D.Deopts);
      W.key("phaseShiftDeopts");
      W.value(D.PhaseShiftDeopts);
      W.key("conservativePins");
      W.value(D.ConservativePins);
      W.key("staleRequestsDropped");
      W.value(D.StaleRequestsDropped);
      W.key("recompiles");
      W.value(D.Recompiles);
      W.endObject();
    }
    W.endObject();
  }

  if (VM.config().EnableOSR) {
    W.key("osr");
    W.beginObject();
    W.key("entries");
    W.value(counterOrZero(Metrics, "vm.osr_entries"));
    W.key("exits");
    W.value(counterOrZero(Metrics, "vm.osr_exits"));
    W.key("graveyardInstructions");
    W.value(gaugeOrZero(Metrics, "code.graveyard_instructions"));
    W.key("graveyardReclaimedInstructions");
    W.value(gaugeOrZero(Metrics, "code.graveyard_reclaimed_instructions"));
    W.key("graveyardReclaims");
    W.value(gaugeOrZero(Metrics, "code.graveyard_reclaims"));
    W.endObject();
  }

  if (In.Repo.Present) {
    W.key("repo");
    W.beginObject();
    W.key("dir");
    W.value(In.Repo.Dir);
    W.key("loaded");
    W.value(In.Repo.Loaded);
    W.key("rejected");
    W.value(In.Repo.Rejected);
    W.key("runs");
    W.value(In.Repo.Runs);
    W.key("committed");
    W.value(In.Repo.Committed);
    W.key("diagnostic");
    W.value(In.Repo.Diagnostic);
    W.endObject();
  }

  W.key("flightRecorder");
  if (In.Recorder) {
    In.Recorder->writeJson(W);
  } else {
    W.beginObject();
    W.endObject();
  }
  W.endObject();
  return W.take();
}
