//===- aos/ReportJson.h - Machine-readable self-observability report -*- C++//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the machine-readable report that `cbsvm report --json` emits:
/// one JSON object with the run header (workload/size/seed/state/cycles),
/// the quality-monitor timeline, the overhead attribution, the AOS and
/// deoptimization statistics when an adaptive system was attached, the
/// OSR section when VMConfig::EnableOSR was set, and the flight-recorder
/// dumps. Extracted from the cbsvm driver so tests can pin the schema —
/// the top-level sections and their keys are part of the tool's contract
/// and are covered by ReportSchemaTest.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_AOS_REPORTJSON_H
#define CBSVM_AOS_REPORTJSON_H

#include <cstdint>
#include <string>

namespace cbs::tel {
class FlightRecorder;
}

namespace cbs::vm {
class VirtualMachine;
}

namespace cbs::aos {

class AdaptiveSystem;

/// The overhead.* components, in registration order. The first six
/// partition vm.profiling_cycles; the last two are attributed but never
/// charged to execution time (see VirtualMachine::LiveStats). Shared by
/// the JSON builder below and the driver's text report.
inline constexpr const char *OverheadComponentNames[] = {
    "overhead.entry_check", "overhead.counter_update",
    "overhead.listener",    "overhead.stack_walk",
    "overhead.buffer_flush", "overhead.snapshot",
    "overhead.yieldpoint_taken", "overhead.shard_wait"};

/// Profile-repository interaction of the run (`--profile-repo`): did a
/// persisted entry load, was one rejected (and why), and what the
/// shutdown commit did. Filled by the driver; the section is emitted
/// only when Present.
struct RepoReport {
  bool Present = false;
  std::string Dir;
  uint64_t Loaded = 0;    ///< 1 when a usable entry seeded the warm start
  uint64_t Rejected = 0;  ///< 1 when an entry existed but was unusable
  uint64_t Runs = 0;      ///< run counter of the loaded entry (0 on miss)
  uint64_t Committed = 0; ///< 1 when the shutdown commit succeeded
  std::string Diagnostic; ///< rejection/commit diagnostic ("" when clean)
};

/// Everything the report builder reads. \p VM is required; \p AOS and
/// \p Recorder may be null (their sections are omitted / emitted empty).
struct ReportInputs {
  std::string Workload;
  std::string Size;
  uint64_t Seed = 0;
  std::string State;
  vm::VirtualMachine *VM = nullptr; ///< non-const: metrics() refreshes gauges
  const AdaptiveSystem *AOS = nullptr;
  const tel::FlightRecorder *Recorder = nullptr;
  RepoReport Repo;
};

/// Serializes the full report as one compact JSON object. Top-level keys,
/// in order: workload, size, seed, state, cycles, quality, overhead,
/// [aos], [osr], [repo], flightRecorder — aos only when an adaptive
/// system was attached, osr only when the run had VMConfig::EnableOSR,
/// repo only when the run used --profile-repo.
std::string buildReportJson(const ReportInputs &In);

} // namespace cbs::aos

#endif // CBSVM_AOS_REPORTJSON_H
