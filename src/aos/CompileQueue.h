//===- aos/CompileQueue.h - Background compile pipeline ---------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AOS's background compilation pipeline (§6: the paper's VMs
/// recompile hot methods on a background thread while the application
/// keeps running). Two cooperating pieces:
///
///  - CompileQueue: a bounded priority queue of CompileRequests. Each
///    request carries the cost-benefit score that justified it (the
///    priority), the inline-plan snapshot it was decided against, and a
///    modelled compile latency: the compiled code may install only at
///    the first taken yieldpoint whose virtual cycle count passes
///    `enqueue + latency`. The queue itself is single-threaded VM state
///    — determinism lives here, in virtual time.
///
///  - CompileWorkerPool: optional real OS threads (`--compile-jobs N`)
///    that run opt::compileMethod ahead of the install point.
///    compileMethod is a pure function of (program, method, level,
///    plan, costs, options) and installs still happen on the VM thread
///    at the exact same virtual-time points, so worker runs are
///    byte-identical to jobs=0 — the workers only convert wall-clock
///    wait at the install point into overlap.
///
/// Backpressure: a duplicate pending method coalesces into the existing
/// entry (upgrading its level when the new request's is higher); a full
/// queue evicts the lowest-priority entry when the newcomer outranks
/// it, otherwise rejects the newcomer. Both policies are deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_AOS_COMPILEQUEUE_H
#define CBSVM_AOS_COMPILEQUEUE_H

#include "opt/Compiler.h"
#include "opt/InlinePlan.h"
#include "vm/CompiledMethod.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace cbs::bc {
class Program;
}

namespace cbs::aos {

/// One pending background compilation.
struct CompileRequest {
  bc::MethodId Method = bc::InvalidMethodId;
  int Level = 0;
  bool IsReopt = false;
  /// Plan generation the snapshot below was taken from; the install
  /// point re-validates against the AOS's current generation.
  uint64_t PlanGeneration = 0;
  /// Immutable snapshot of the inline plan at enqueue time. Shared with
  /// worker threads; never mutated after enqueue.
  std::shared_ptr<const opt::InlinePlan> Plan;
  uint64_t EnqueueCycle = 0;
  /// First virtual cycle at which the compiled code may install:
  /// EnqueueCycle + modelled latency.
  uint64_t ReadyCycle = 0;
  /// Cost-benefit score (estimated remaining cycles / compile cost).
  double Priority = 0;
  /// Quality-monitor phase shifts seen when the request was enqueued;
  /// a later shift invalidates the plan snapshot.
  uint64_t PhaseShiftsSeen = 0;
  /// CodeCache invalidation epoch of the method when the request was
  /// admitted. A higher epoch at the install point means the method was
  /// deoptimized while this compile was in flight: the pre-computed
  /// result embeds the dead speculation and must not install.
  uint64_t CacheEpoch = 0;
  /// A deopt-storm pin: compiled against the no-speculation plan and
  /// exempt from install-point plan-staleness re-validation (its plan
  /// cannot go stale — it assumes nothing).
  bool Conservative = false;
  /// Enqueued by the deopt path to re-attain an invalidated level (kept
  /// out of the promotion/reopt counters — it repairs, not promotes).
  bool DeoptRecompile = false;
  /// A warm-start pre-enqueue decided against a persisted cross-run
  /// profile (cycle 0, before the sampler exists). Exempt from
  /// install-point plan-staleness re-validation: its plan is *expected*
  /// to predate the live profile — that is the whole point — and stale
  /// warm code is corrected by deopt/quality policing after install,
  /// not by re-enqueueing it forever behind an always-fresher plan.
  bool Warm = false;
  /// Times this request was dropped stale and re-enqueued.
  uint32_t Reenqueues = 0;
  /// Enqueue sequence number: FIFO tie-break among equal priorities.
  uint64_t Seq = 0;
  /// jobs >= 1: the worker pool's result for (Method, Level, Plan).
  /// Invalid in jobs=0 mode (the install point compiles synchronously).
  std::shared_future<vm::CompiledMethod> Pending;
};

/// Fixed pool of compile worker threads. submit() hands a request's
/// (method, level, plan) to the pool and returns the future the install
/// point will wait on. The pool only ever reads the program and the
/// plan snapshots; it never touches VM state.
class CompileWorkerPool {
public:
  CompileWorkerPool(const bc::Program &P, vm::CostModel Costs,
                    opt::CompileOptions Options, unsigned NumThreads);
  ~CompileWorkerPool();

  CompileWorkerPool(const CompileWorkerPool &) = delete;
  CompileWorkerPool &operator=(const CompileWorkerPool &) = delete;

  std::shared_future<vm::CompiledMethod>
  submit(bc::MethodId Method, int Level,
         std::shared_ptr<const opt::InlinePlan> Plan);

private:
  void workerLoop();

  const bc::Program &P;
  const vm::CostModel Costs;
  const opt::CompileOptions Options;

  struct Job {
    bc::MethodId Method;
    int Level;
    std::shared_ptr<const opt::InlinePlan> Plan;
    std::promise<vm::CompiledMethod> Result;
  };

  std::mutex M;
  std::condition_variable CV;
  std::deque<Job> Jobs;
  bool ShuttingDown = false;
  std::vector<std::thread> Workers;
};

/// What enqueue() did with a request (all outcomes are counted by the
/// caller's aos.queue.* metrics).
enum class EnqueueResult : uint8_t {
  Added,          ///< new entry
  Coalesced,      ///< merged into a pending entry for the same method
  EvictedLowest,  ///< added after evicting the lowest-priority entry
  Rejected,       ///< queue full and the newcomer did not outrank anyone
};

/// The bounded priority queue. Single-threaded (owned by the VM
/// thread); the only cross-thread traffic is the futures inside the
/// requests.
class CompileQueue {
public:
  explicit CompileQueue(size_t Capacity = 16) : Capacity(Capacity) {}

  /// Admits \p R under the backpressure policies. On Coalesced the
  /// pending entry absorbs \p R: its level and plan upgrade when R's
  /// level is higher (R.Pending replaces the stale future), and its
  /// priority rises to max(old, new). Returns what happened; on
  /// EvictedLowest the evicted request is returned through \p Evicted.
  EnqueueResult enqueue(CompileRequest R,
                        std::optional<CompileRequest> *Evicted = nullptr);

  /// Removes and returns the best ready request: ReadyCycle <= \p Now,
  /// highest priority, enqueue order breaking ties. nullopt when no
  /// request is ready.
  std::optional<CompileRequest> popReady(uint64_t Now);

  /// Pending level for \p Method (-1 when not pending): lets the
  /// promotion logic treat an in-flight compile as if it had already
  /// installed.
  int pendingLevel(bc::MethodId Method) const;

  /// Removes every pending request for \p Method (the deoptimization
  /// path: queued compiles carry plan snapshots embedding the dead
  /// speculation). Returns how many entries were dropped.
  size_t dropMethod(bc::MethodId Method);

  size_t depth() const { return Entries.size(); }
  size_t capacity() const { return Capacity; }

  /// Enqueue sequence numbers are handed out by the owner so re-enqueued
  /// requests keep a deterministic order.
  uint64_t nextSeq() { return Seq++; }

private:
  size_t Capacity;
  uint64_t Seq = 0;
  std::vector<CompileRequest> Entries;
};

} // namespace cbs::aos

#endif // CBSVM_AOS_COMPILEQUEUE_H
