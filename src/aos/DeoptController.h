//===- aos/DeoptController.h - Speculation guard policing -------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Polices the speculation guards recorded by guarded inlining. Every
/// AOS-installed version that speculated (CompiledMethod::Guards is
/// non-empty) assumed some callee stays dominant at each guarded site;
/// the controller re-checks those assumptions against the *current*
/// DCG snapshot at quality-monitor tick boundaries and right after an
/// install. When an assumption no longer holds — the assumed callee
/// lost dominance, or the quality monitor declared a phase shift after
/// the profile the plan was built from — the method is deoptimized:
///
///  - its active version is invalidated in the code cache (frames
///    pinning it fall back to baseline speed at their next taken
///    yieldpoint, and with VMConfig::EnableOSR transfer off the dead
///    code entirely at their next loop-header backedge — see
///    VirtualMachine::deoptimize);
///  - in-flight compile requests for it are dropped (their plan
///    snapshot embeds the same dead assumption);
///  - a recompile against the fresh plan is enqueued through the normal
///    background pipeline.
///
/// Deopt storms are bounded: a method deoptimized MaxDeoptsPerMethod
/// times is *pinned* — recompiled once against the no-speculation
/// trivial plan and excluded from further speculative promotion. The
/// evidence gate (MinSiteWeight) keeps thinly-profiled sites from
/// flapping: a guard is only policed once the current snapshot has
/// enough weight at its site to contradict it with confidence.
///
/// The controller makes decisions; the AdaptiveSystem executes the
/// queue-side consequences (drop + re-enqueue) because it owns the
/// compile pipeline. Everything runs on the VM thread in virtual time,
/// so runs stay byte-identical at any --compile-jobs.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_AOS_DEOPTCONTROLLER_H
#define CBSVM_AOS_DEOPTCONTROLLER_H

#include "bytecode/Ids.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cbs::prof {
class DCGSnapshot;
class ProfileQualityMonitor;
}

namespace cbs::vm {
class VirtualMachine;
struct CompiledMethod;
}

namespace cbs::aos {

struct DeoptConfig {
  /// Master switch. Off by default: plain --aos runs keep their exact
  /// pre-deopt behaviour (no extra snapshots, no invalidations).
  bool Enabled = false;
  /// A guarded site's assumed callee must keep at least this share of
  /// the site's current profile weight, or the guard fails.
  double DominanceThresholdPct = 40.0;
  /// Deopts after which a method is pinned to the conservative
  /// no-speculation plan.
  uint32_t MaxDeoptsPerMethod = 3;
  /// Guards at sites with less current profile weight than this are not
  /// policed (too little evidence to call the assumption dead).
  uint64_t MinSiteWeight = 16;
  /// Police guards every this many AOS timer ticks (1 = every tick).
  uint32_t CheckEveryTicks = 1;
  /// Testing hook: invalidate every tracked AOS install at every taken
  /// yieldpoint, regardless of guards, thresholds, or the per-method
  /// cap — the forced-invalidation storm the differential fuzzer uses
  /// to prove deopt never changes program semantics.
  bool ForceStormForTesting = false;
};

struct DeoptStats {
  uint64_t GuardChecks = 0;      ///< guarded versions examined
  uint64_t GuardFailures = 0;    ///< guards whose assumption died
  uint64_t Deopts = 0;           ///< invalidations performed
  uint64_t PhaseShiftDeopts = 0; ///< ...of which due to a phase shift
  uint64_t ConservativePins = 0; ///< methods pinned past the deopt cap
  uint64_t StaleRequestsDropped = 0; ///< queued compiles dropped at deopt
  uint64_t Recompiles = 0; ///< fresh-plan recompiles enqueued after deopts
};

/// What the AdaptiveSystem must do after the controller deoptimized a
/// method: re-enqueue a compile at \p Level, conservatively (pinned,
/// no-speculation plan) or against the current plan.
struct DeoptDecision {
  bc::MethodId Method = bc::InvalidMethodId;
  int Level = 0;
  bool Conservative = false;
};

class DeoptController {
public:
  explicit DeoptController(DeoptConfig Config) : Config(Config) {}

  /// Registers an AOS install for policing. Versions with guards are
  /// always tracked; guard-free versions only under ForceStormForTesting
  /// (the storm invalidates everything the AOS ever installed).
  void noteInstall(const vm::CompiledMethod &CM);

  /// Full policing pass over every tracked version (tick boundary).
  /// Invalidates failing methods in the VM and returns the recompiles
  /// the AdaptiveSystem must enqueue.
  std::vector<DeoptDecision> police(vm::VirtualMachine &VM);

  /// Polices a single just-installed method ("on compile_install"): the
  /// compile ran against a snapshot at least one latency old, so its
  /// speculation can be dead on arrival. No-op under ForceStormForTesting
  /// (the storm path invalidates at yieldpoints instead; checking here
  /// would re-invalidate installs within the install loop).
  std::vector<DeoptDecision> policeInstall(vm::VirtualMachine &VM,
                                           bc::MethodId Method);

  /// The storm pass (yieldpoint boundary, ForceStormForTesting only):
  /// invalidates every tracked version unconditionally.
  std::vector<DeoptDecision> storm(vm::VirtualMachine &VM);

  /// True when \p Method hit MaxDeoptsPerMethod and is pinned to the
  /// conservative plan: the AOS must not re-speculate it.
  bool isPinned(bc::MethodId Method) const {
    return Method < States.size() && States[Method].Pinned;
  }

  /// Whether the tick-boundary pass is due (CheckEveryTicks divisor).
  bool tickDue() {
    return Config.CheckEveryTicks != 0 &&
           ++TicksSinceCheck >= Config.CheckEveryTicks &&
           (TicksSinceCheck = 0, true);
  }

  const DeoptConfig &config() const { return Config; }
  const DeoptStats &stats() const { return Stats; }
  DeoptStats &stats() { return Stats; }

private:
  struct MethodState {
    bool Tracked = false;
    bool Pinned = false;
    uint32_t DeoptCount = 0;
  };

  /// Checks one tracked method's guards against \p Snapshot (and the
  /// monitor's phase-shift count), deoptimizing it on failure.
  void checkOne(vm::VirtualMachine &VM, const prof::DCGSnapshot &Snapshot,
                const prof::ProfileQualityMonitor *Monitor, bc::MethodId M,
                std::vector<DeoptDecision> &Out);

  /// Invalidates \p Method in \p VM, advances its deopt count, decides
  /// conservative pinning, and appends the recompile decision.
  void deoptimize(vm::VirtualMachine &VM, bc::MethodId Method,
                  bool PhaseShift, std::vector<DeoptDecision> &Out);

  void ensureSize(size_t NumMethods);

  DeoptConfig Config;
  DeoptStats Stats;
  std::vector<MethodState> States;
  std::vector<bc::MethodId> Tracked; ///< insertion-ordered, deterministic
  uint32_t TicksSinceCheck = 0;
};

} // namespace cbs::aos

#endif // CBSVM_AOS_DEOPTCONTROLLER_H
