//===- aos/AdaptiveSystem.cpp - Adaptive optimization ------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"

#include "telemetry/MetricRegistry.h"
#include "telemetry/TraceSink.h"

#include <algorithm>
#include <utility>

using namespace cbs;
using namespace cbs::aos;

AdaptiveSystem::AdaptiveSystem(const opt::InlineOracle *Oracle,
                               AOSConfig Config)
    : Oracle(Oracle), Config(Config),
      Queue(std::max<uint32_t>(1, Config.CompileQueueCapacity)) {
  if (Config.Deopt.Enabled)
    DeoptCtl = std::make_unique<DeoptController>(Config.Deopt);
}

AdaptiveSystem::~AdaptiveSystem() = default;

void AdaptiveSystem::publishMetrics(vm::VirtualMachine &VM) {
  if (!Gauges.Ticks) {
    tel::MetricRegistry &R = VM.metricsRegistry();
    Gauges.Ticks = &R.gauge("aos.ticks");
    Gauges.Recompilations = &R.gauge("aos.recompilations");
    Gauges.PlansComputed = &R.gauge("aos.plans_computed");
    Gauges.PromotionsToL1 = &R.gauge("aos.promotions_l1");
    Gauges.PromotionsToL2 = &R.gauge("aos.promotions_l2");
    Gauges.Reoptimizations = &R.gauge("aos.reoptimizations");
    Gauges.PhaseShiftReplans = &R.gauge("aos.phase_shift_replans");
    Gauges.PlanOverlapBp = &R.gauge("aos.plan_overlap_bp");
    Gauges.QueueDepth = &R.gauge("aos.queue.depth");
    Gauges.QueueEnqueued = &R.gauge("aos.queue.enqueued");
    Gauges.QueueInstalls = &R.gauge("aos.queue.installs");
    Gauges.QueueStaleDrops = &R.gauge("aos.queue.stale_drops");
    Gauges.QueueCoalesced = &R.gauge("aos.queue.coalesced");
    Gauges.QueueDropped = &R.gauge("aos.queue.dropped");
    Gauges.FirstInstallCycle = &R.gauge("aos.queue.first_install_cycle");
    if (warmStarted()) {
      Gauges.WarmEnqueued = &R.gauge("aos.warm.enqueued");
      Gauges.WarmInstalls = &R.gauge("aos.warm.installs");
    }
    if (DeoptCtl) {
      Gauges.DeoptGuardChecks = &R.gauge("aos.deopt.guard_checks");
      Gauges.DeoptGuardFailures = &R.gauge("aos.deopt.guard_failures");
      Gauges.DeoptCount = &R.gauge("aos.deopt.count");
      Gauges.DeoptPhaseShift = &R.gauge("aos.deopt.phase_shift");
      Gauges.DeoptPins = &R.gauge("aos.deopt.conservative_pins");
      Gauges.DeoptStaleDropped = &R.gauge("aos.deopt.stale_requests_dropped");
      Gauges.DeoptRecompiles = &R.gauge("aos.deopt.recompiles");
    }
  }
  *Gauges.Ticks = Stats.Ticks;
  *Gauges.Recompilations = Stats.Recompilations;
  *Gauges.PlansComputed = Stats.PlansComputed;
  *Gauges.PromotionsToL1 = Stats.PromotionsToL1;
  *Gauges.PromotionsToL2 = Stats.PromotionsToL2;
  *Gauges.Reoptimizations = Stats.Reoptimizations;
  *Gauges.PhaseShiftReplans = Stats.PhaseShiftReplans;
  *Gauges.PlanOverlapBp = PlanOverlapBp;
  *Gauges.QueueDepth = Queue.depth();
  *Gauges.QueueEnqueued = Stats.QueueEnqueued;
  *Gauges.QueueInstalls = Stats.QueueInstalls;
  *Gauges.QueueStaleDrops = Stats.QueueStaleDrops;
  *Gauges.QueueCoalesced = Stats.QueueCoalesced;
  *Gauges.QueueDropped = Stats.QueueDropped;
  *Gauges.FirstInstallCycle = Stats.FirstInstallCycle;
  if (warmStarted()) {
    *Gauges.WarmEnqueued = Stats.WarmEnqueued;
    *Gauges.WarmInstalls = Stats.WarmInstalls;
  }
  if (DeoptCtl) {
    const DeoptStats &D = DeoptCtl->stats();
    *Gauges.DeoptGuardChecks = D.GuardChecks;
    *Gauges.DeoptGuardFailures = D.GuardFailures;
    *Gauges.DeoptCount = D.Deopts;
    *Gauges.DeoptPhaseShift = D.PhaseShiftDeopts;
    *Gauges.DeoptPins = D.ConservativePins;
    *Gauges.DeoptStaleDropped = D.StaleRequestsDropped;
    *Gauges.DeoptRecompiles = D.Recompiles;
  }
}

std::shared_ptr<const opt::InlinePlan>
AdaptiveSystem::currentPlan(vm::VirtualMachine &VM) {
  // Convergence state gates plan reuse: a phase shift flagged by the
  // quality monitor means the DCG the plan was built from no longer
  // describes the program, so rebuild now instead of serving the stale
  // plan out to the end of its refresh interval.
  const prof::ProfileQualityMonitor *Monitor = VM.qualityMonitor();
  bool ShiftPending =
      Monitor && Monitor->phaseShiftCount() > SeenPhaseShifts;
  if (Plan && !ShiftPending && PlanAgeTicks < Config.PlanRefreshTicks)
    return Plan;
  if (Monitor)
    SeenPhaseShifts = Monitor->phaseShiftCount();
  if (Plan && ShiftPending)
    ++Stats.PhaseShiftReplans;
  PlanOverlapBp = Monitor ? static_cast<uint64_t>(
                                Monitor->lastOverlapPct() * 100.0 + 0.5)
                          : 10'000;
  static const opt::TrivialOracle Trivial;
  const opt::InlineOracle &O = Oracle ? *Oracle : Trivial;
  adoptPlan(VM, O.plan(VM.program(), VM.profile()),
            Monitor ? Monitor->phaseShiftCount() : 0);
  return Plan;
}

void AdaptiveSystem::adoptPlan(vm::VirtualMachine &VM, opt::InlinePlan Fresh,
                               uint64_t ProfileEpoch) {
  // A fresh allocation per generation: in-flight CompileRequests (and
  // worker threads) keep their enqueue-time snapshot alive. The plan is
  // stamped with its generation and the profile epoch it was built
  // against (the monitor's phase-shift count) so compiled code carries
  // its own provenance for guard policing.
  Fresh.Generation = PlanGeneration + 1;
  Fresh.ProfileEpoch = ProfileEpoch;
  Plan = std::make_shared<const opt::InlinePlan>(std::move(Fresh));
  PlanAgeTicks = 0;
  ++PlanGeneration;
  ++Stats.PlansComputed;

  // Trace each non-trivial decision of the fresh plan. The plan map is
  // unordered; emit in site order so traces stay byte-reproducible.
  if (tel::TraceSink *Sink = VM.traceSink()) {
    std::vector<std::pair<bc::SiteId, const opt::InlineDecision *>> Sorted;
    Sorted.reserve(Plan->Decisions.size());
    for (const auto &[Site, Decision] : Plan->Decisions)
      if (Decision.K != opt::InlineDecision::Kind::None)
        Sorted.emplace_back(Site, &Decision);
    std::sort(Sorted.begin(), Sorted.end(),
              [](const auto &L, const auto &R) { return L.first < R.first; });
    for (const auto &[Site, Decision] : Sorted) {
      bool Direct = Decision->K == opt::InlineDecision::Kind::Direct;
      bc::MethodId Target = Direct ? Decision->Target
                            : Decision->Guarded.empty()
                                ? bc::InvalidMethodId
                                : Decision->Guarded.front().Target;
      Sink->event(tel::TraceEvent::inlineDecision(VM.cycles(), Target, Site,
                                                  Direct ? 1 : 2));
    }
  }
}

void AdaptiveSystem::onStartup(vm::VirtualMachine &VM) {
  if (!Config.WarmStart.Profile)
    return;
  const prof::DCGSnapshot &Snap = *Config.WarmStart.Profile;
  publishMetrics(VM); // register the aos.* gauges even if nothing fires
  if (Snap.numEdges() == 0)
    return;
  if (PerMethod.empty())
    PerMethod.resize(VM.program().numMethods());

  // The persisted profile plays the role the converged sampler profile
  // plays mid-run: the oracle builds the startup inline plan from it.
  // It becomes the current plan, so warm compiles and the first few
  // sampler promotions share one coherent view until the live profile
  // matures and the regular refresh supersedes it.
  static const opt::TrivialOracle Trivial;
  const opt::InlineOracle &O = Oracle ? *Oracle : Trivial;
  adoptPlan(VM, O.plan(VM.program(), Snap), /*ProfileEpoch=*/0);

  // Rank methods by their accumulated callee weight in the persisted
  // profile; ties break toward the lower id so the pre-enqueue order is
  // deterministic.
  std::vector<uint64_t> PerCallee(VM.program().numMethods(), 0);
  Snap.forEachEdge([&](prof::CallEdge E, uint64_t W) {
    if (E.Callee < PerCallee.size())
      PerCallee[E.Callee] += W;
  });
  std::vector<std::pair<uint64_t, bc::MethodId>> Hot;
  for (bc::MethodId M = 0; M < PerCallee.size(); ++M)
    if (PerCallee[M] >= Config.WarmStart.MinMethodWeight &&
        PerCallee[M] > 0)
      Hot.emplace_back(PerCallee[M], M);
  std::sort(Hot.begin(), Hot.end(), [](const auto &L, const auto &R) {
    return L.first != R.first ? L.first > R.first : L.second < R.second;
  });
  if (Hot.size() > Config.WarmStart.MaxMethods)
    Hot.resize(Config.WarmStart.MaxMethods);

  for (const auto &[Weight, Method] : Hot) {
    CompileRequest R;
    R.Method = Method;
    R.Level = Config.WarmStart.Level;
    R.Warm = true;
    R.Plan = Plan;
    R.PlanGeneration = PlanGeneration;
    R.EnqueueCycle = VM.cycles();
    R.ReadyCycle = VM.cycles() + compileLatency(VM, Method, R.Level);
    // Priority is the persisted weight: heavier history compiles first
    // when the queue has to choose.
    R.Priority = static_cast<double>(Weight);
    submitRequest(VM, std::move(R));
    ++Stats.WarmEnqueued;
  }
  publishMetrics(VM);
}

uint64_t AdaptiveSystem::compileLatency(vm::VirtualMachine &VM,
                                        bc::MethodId Method,
                                        int Level) const {
  // Latency is modelled on the pre-inlining size known at enqueue time
  // (the decision point cannot see the post-inlining expansion).
  const vm::CostModel &Costs = VM.config().Costs;
  double L = Costs.CompileLatencyScale * Costs.CompileCostPerByte[Level] *
             static_cast<double>(VM.program().method(Method).sizeBytes());
  return L <= 0 ? 0 : static_cast<uint64_t>(L);
}

void AdaptiveSystem::submitRequest(vm::VirtualMachine &VM,
                                   CompileRequest R) {
  R.Seq = Queue.nextSeq();
  R.CacheEpoch = VM.codeCache().invalidationEpoch(R.Method);
  if (Config.CompileJobs > 0) {
    if (!Pool)
      Pool = std::make_unique<CompileWorkerPool>(
          VM.program(), VM.config().Costs, Config.Compile,
          Config.CompileJobs);
    R.Pending = Pool->submit(R.Method, R.Level, R.Plan);
  }
  if (tel::TraceSink *Sink = VM.traceSink())
    Sink->event(tel::TraceEvent::compileEnqueue(VM.cycles(), 0, R.Method,
                                                static_cast<uint32_t>(R.Level),
                                                R.ReadyCycle));
  std::optional<CompileRequest> Evicted;
  switch (Queue.enqueue(std::move(R), &Evicted)) {
  case EnqueueResult::Added:
    ++Stats.QueueEnqueued;
    break;
  case EnqueueResult::Coalesced:
    ++Stats.QueueCoalesced;
    break;
  case EnqueueResult::EvictedLowest:
    ++Stats.QueueEnqueued;
    ++Stats.QueueDropped;
    break;
  case EnqueueResult::Rejected:
    ++Stats.QueueDropped;
    break;
  }
}

bool AdaptiveSystem::maybePromote(vm::VirtualMachine &VM,
                                  bc::MethodId Method) {
  if (PerMethod.empty())
    PerMethod.resize(VM.program().numMethods());

  // A method pinned by the deopt controller already has its final
  // (conservative) version: re-speculating it would just restart the
  // storm the pin stopped.
  if (DeoptCtl && DeoptCtl->isPinned(Method))
    return false;

  vm::CodeCache &Cache = VM.codeCache();
  int Pending = Queue.pendingLevel(Method);
  // A pending compile counts as if it had installed: the tick loop can
  // upgrade a queued L1 request to L2, but never duplicates it.
  int Level = std::max(Cache.activeLevel(Method), Pending);
  uint32_t Samples = VM.methodTickSamples()[Method];

  int NextLevel;
  bool IsReopt = false;
  if (Level < 1 && Samples >= Config.Level1Samples) {
    NextLevel = 1;
  } else if (Level < 2 && Samples >= Config.Level2Samples) {
    NextLevel = 2;
  } else if (Level == 2 && Pending < 0 &&
             PerMethod[Method].Reopts < Config.MaxReoptsPerMethod &&
             PlanGeneration >= PerMethod[Method].CompiledGeneration +
                                   Config.ReoptPlanGenerations &&
             Samples >= 2 * Config.Level2Samples) {
    // The method was optimized against an earlier (possibly immature)
    // profile and is still hot: re-optimize with the current plan.
    NextLevel = 2;
    IsReopt = true;
  } else {
    return false;
  }

  // Cost-benefit check: estimated remaining time in this method,
  // assuming it keeps its observed share of the tick samples, must pay
  // for the compile. Estimated remaining cycles ~ samples * period
  // (what has been observed so far is the AOS's standard predictor of
  // the future).
  double EstimatedRemaining =
      static_cast<double>(Samples) *
      static_cast<double>(VM.config().TimerPeriodCycles);
  double CompileCost =
      VM.config().Costs.CompileCostPerByte[NextLevel] *
      static_cast<double>(VM.program().method(Method).sizeBytes());
  if (EstimatedRemaining < Config.CostBenefitFactor * CompileCost)
    return false;

  CompileRequest R;
  R.Method = Method;
  R.Level = NextLevel;
  R.IsReopt = IsReopt;
  R.Plan = currentPlan(VM);
  R.PlanGeneration = PlanGeneration;
  R.EnqueueCycle = VM.cycles();
  R.ReadyCycle = VM.cycles() + compileLatency(VM, Method, NextLevel);
  // Priority is the benefit ratio the cost-benefit rule computed: how
  // many times over the method's estimated remaining time pays for its
  // compile.
  R.Priority = EstimatedRemaining / CompileCost;
  if (const prof::ProfileQualityMonitor *Monitor = VM.qualityMonitor())
    R.PhaseShiftsSeen = Monitor->phaseShiftCount();
  submitRequest(VM, std::move(R));
  return true;
}

void AdaptiveSystem::install(vm::VirtualMachine &VM, CompileRequest R) {
  vm::CompiledMethod CM =
      R.Pending.valid()
          ? R.Pending.get() // pre-compiled by a worker; identical result
          : opt::compileMethod(VM.program(), R.Method, R.Level, *R.Plan,
                               VM.config().Costs, Config.Compile);
  uint64_t Waited = VM.cycles() - R.EnqueueCycle;
  if (DeoptCtl)
    DeoptCtl->noteInstall(CM);
  VM.installCompiled(std::move(CM));
  if (tel::TraceSink *Sink = VM.traceSink())
    Sink->event(tel::TraceEvent::compileInstall(
        VM.cycles(), 0, R.Method, static_cast<uint32_t>(R.Level), Waited));
  PerMethod[R.Method].CompiledGeneration = R.PlanGeneration;
  if (Stats.QueueInstalls == 0)
    Stats.FirstInstallCycle = VM.cycles();
  ++Stats.QueueInstalls;
  ++Stats.Recompilations;
  if (R.Warm)
    ++Stats.WarmInstalls;
  if (R.IsReopt) {
    ++PerMethod[R.Method].Reopts;
    ++Stats.Reoptimizations;
  } else if (R.DeoptRecompile) {
    // Repairing an invalidated level, not promoting; counted in the
    // aos.deopt.* stats at enqueue time.
  } else if (R.Level == 1) {
    ++Stats.PromotionsToL1;
  } else {
    ++Stats.PromotionsToL2;
  }
  // "On compile_install" policing: the compile ran against a snapshot
  // at least one latency old, so its speculation can be dead on
  // arrival — catch that now instead of waiting out a full tick.
  if (DeoptCtl)
    applyDeoptDecisions(VM, DeoptCtl->policeInstall(VM, R.Method));
}

std::shared_ptr<const opt::InlinePlan>
AdaptiveSystem::conservativePlan(vm::VirtualMachine &VM) {
  if (!ConservativePlan) {
    // The trivial oracle ignores the profile: this plan speculates on
    // nothing, never goes stale, and is shared by every pinned method.
    static const opt::TrivialOracle Trivial;
    ConservativePlan = std::make_shared<const opt::InlinePlan>(
        Trivial.plan(VM.program(), VM.profile()));
  }
  return ConservativePlan;
}

void AdaptiveSystem::applyDeoptDecisions(
    vm::VirtualMachine &VM, const std::vector<DeoptDecision> &Decisions) {
  if (Decisions.empty())
    return;
  // A failed guard is direct evidence the profile moved: expire the
  // cached plan so the repairs compile against a plan that speculates
  // on the *new* dominant callees, not the ones that just failed.
  PlanAgeTicks = Config.PlanRefreshTicks;
  for (const DeoptDecision &D : Decisions) {
    // In-flight requests for the method were decided against plans that
    // embed the same dead assumption; drop them before re-enqueueing.
    DeoptCtl->stats().StaleRequestsDropped += Queue.dropMethod(D.Method);

    CompileRequest R;
    R.Method = D.Method;
    R.Level = D.Level;
    R.DeoptRecompile = true;
    R.Conservative = D.Conservative;
    R.Plan = D.Conservative ? conservativePlan(VM) : currentPlan(VM);
    R.PlanGeneration = PlanGeneration;
    R.EnqueueCycle = VM.cycles();
    R.ReadyCycle = VM.cycles() + compileLatency(VM, D.Method, D.Level);
    // Same cost-benefit score the promotion path computes, floored at
    // 1.0: the method was running deoptimized-slow, so repairing it
    // must not lose every eviction fight in a full queue.
    double EstimatedRemaining =
        static_cast<double>(VM.methodTickSamples()[D.Method]) *
        static_cast<double>(VM.config().TimerPeriodCycles);
    double CompileCost =
        VM.config().Costs.CompileCostPerByte[D.Level] *
        static_cast<double>(VM.program().method(D.Method).sizeBytes());
    R.Priority =
        CompileCost > 0 ? std::max(1.0, EstimatedRemaining / CompileCost) : 1.0;
    if (const prof::ProfileQualityMonitor *Monitor = VM.qualityMonitor())
      R.PhaseShiftsSeen = Monitor->phaseShiftCount();
    submitRequest(VM, std::move(R));
    ++DeoptCtl->stats().Recompiles;
  }
}

void AdaptiveSystem::onYieldpoint(vm::VirtualMachine &VM) {
  // The forced-invalidation storm (testing only) tears down every
  // AOS-installed version at every taken yieldpoint — the most hostile
  // deopt schedule expressible, which the differential fuzzer compares
  // byte-for-byte against a no-AOS run.
  if (DeoptCtl && Config.Deopt.ForceStormForTesting)
    applyDeoptDecisions(VM, DeoptCtl->storm(VM));
  if (Queue.depth() == 0)
    return;
  uint64_t Now = VM.cycles();
  bool Activity = false;
  while (std::optional<CompileRequest> R = Queue.popReady(Now)) {
    Activity = true;
    // Deopt backstop: the method was invalidated after this request was
    // admitted (its plan embeds the dead speculation, and the deopt
    // path has already enqueued the replacement) — drop it outright.
    // Conservative requests are exempt: they assume nothing, and must
    // make progress even under repeated invalidation.
    if (DeoptCtl && !R->Conservative &&
        R->CacheEpoch != VM.codeCache().invalidationEpoch(R->Method)) {
      ++DeoptCtl->stats().StaleRequestsDropped;
      continue;
    }
    // Install-point re-validation: the plan is `latency` cycles stale
    // by now. If its generation was superseded, or the quality monitor
    // declared a phase shift after the request was decided, the compile
    // would install code specialized for a profile that no longer
    // holds — drop it and re-enqueue against the fresh plan. Bounded by
    // MaxReenqueues so a method that stays hot across phases still
    // makes progress (the last re-enqueue already carries a fresh
    // plan). Conservative (pinned) requests skip this too: their plan
    // cannot go stale. Warm requests are likewise exempt — their plan
    // is *supposed* to predate the live profile; if the persisted
    // history was wrong, deopt/quality policing corrects the installed
    // code rather than the queue starving it.
    const prof::ProfileQualityMonitor *Monitor = VM.qualityMonitor();
    bool Stale = !R->Conservative && !R->Warm &&
                 (R->PlanGeneration < PlanGeneration ||
                  (Monitor &&
                   Monitor->phaseShiftCount() > R->PhaseShiftsSeen));
    if (Stale && R->Reenqueues < Config.MaxReenqueues) {
      ++Stats.QueueStaleDrops;
      R->Plan = currentPlan(VM); // rebuilds when a shift is pending
      R->PlanGeneration = PlanGeneration;
      if (Monitor)
        R->PhaseShiftsSeen = Monitor->phaseShiftCount();
      R->EnqueueCycle = Now;
      R->ReadyCycle = Now + compileLatency(VM, R->Method, R->Level);
      ++R->Reenqueues;
      R->Pending = {}; // the worker result is for the dropped plan
      submitRequest(VM, std::move(*R));
      continue;
    }
    install(VM, std::move(*R));
  }
  if (Activity)
    publishMetrics(VM);
}

void AdaptiveSystem::onTimerTick(vm::VirtualMachine &VM, bc::MethodId Top) {
  ++Stats.Ticks;
  ++PlanAgeTicks;
  // The sampled method is the promotion candidate this tick (plus, on a
  // real system, its callers; the plan covers their sites when they in
  // turn get hot). Each iteration may upgrade the previous one's
  // request (L1 pending -> L2) until the method's state is settled.
  for (uint32_t I = 0; I < Config.MaxRecompilesPerTick; ++I)
    if (!maybePromote(VM, Top))
      break;
  // Guard policing rides the tick (the same cadence the quality monitor
  // uses): every tracked speculative version is re-checked against the
  // current profile.
  if (DeoptCtl && DeoptCtl->tickDue())
    applyDeoptDecisions(VM, DeoptCtl->police(VM));
  publishMetrics(VM);
}

void AOSOptionGroup::parse(support::ArgParser &Args) {
  UseAOS = Args.flag("--aos");
  uint64_t CompileJobs = Args.optionUInt("--compile-jobs", 0, 0, 64);
  if (CompileJobs > 0) {
    Config.CompileJobs = static_cast<uint32_t>(CompileJobs);
    UseAOS = true;
  }
  LatencyScale = Args.optionDouble("--compile-latency-scale", -1.0, 0.0, 1e9);
  if (LatencyScale >= 0.0)
    UseAOS = true;
  // Deoptimization: either option switches guard policing on (and
  // implies --aos). Plain --aos keeps deopt off, so pre-deopt runs stay
  // byte-identical.
  double DeoptThreshold =
      Args.optionDouble("--deopt-threshold", -1.0, 0.0, 100.0);
  if (DeoptThreshold >= 0.0) {
    Config.Deopt.Enabled = true;
    Config.Deopt.DominanceThresholdPct = DeoptThreshold;
    UseAOS = true;
  }
  uint64_t MaxDeopts = Args.optionUInt("--max-deopts", 0, 1, 1u << 20);
  if (MaxDeopts > 0) {
    Config.Deopt.Enabled = true;
    Config.Deopt.MaxDeoptsPerMethod = static_cast<uint32_t>(MaxDeopts);
    UseAOS = true;
  }
}

void AOSOptionGroup::finalize(vm::VMConfig &VMC) {
  if (LatencyScale >= 0.0)
    VMC.Costs.CompileLatencyScale = LatencyScale;
  // --osr was consumed by VMConfig::fromArgs; it only does anything
  // when versions actually get replaced, so it implies --aos too.
  if (VMC.EnableOSR)
    UseAOS = true;
}
