//===- aos/AdaptiveSystem.cpp - Adaptive optimization ------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"

#include "telemetry/MetricRegistry.h"
#include "telemetry/TraceSink.h"

#include <algorithm>

using namespace cbs;
using namespace cbs::aos;

AdaptiveSystem::AdaptiveSystem(const opt::InlineOracle *Oracle,
                               AOSConfig Config)
    : Oracle(Oracle), Config(Config) {}

void AdaptiveSystem::publishMetrics(vm::VirtualMachine &VM) {
  if (!Gauges.Ticks) {
    tel::MetricRegistry &R = VM.metricsRegistry();
    Gauges.Ticks = &R.gauge("aos.ticks");
    Gauges.Recompilations = &R.gauge("aos.recompilations");
    Gauges.PlansComputed = &R.gauge("aos.plans_computed");
    Gauges.PromotionsToL1 = &R.gauge("aos.promotions_l1");
    Gauges.PromotionsToL2 = &R.gauge("aos.promotions_l2");
    Gauges.Reoptimizations = &R.gauge("aos.reoptimizations");
    Gauges.PhaseShiftReplans = &R.gauge("aos.phase_shift_replans");
    Gauges.PlanOverlapBp = &R.gauge("aos.plan_overlap_bp");
  }
  *Gauges.Ticks = Stats.Ticks;
  *Gauges.Recompilations = Stats.Recompilations;
  *Gauges.PlansComputed = Stats.PlansComputed;
  *Gauges.PromotionsToL1 = Stats.PromotionsToL1;
  *Gauges.PromotionsToL2 = Stats.PromotionsToL2;
  *Gauges.Reoptimizations = Stats.Reoptimizations;
  *Gauges.PhaseShiftReplans = Stats.PhaseShiftReplans;
  *Gauges.PlanOverlapBp = PlanOverlapBp;
}

const opt::InlinePlan &AdaptiveSystem::currentPlan(vm::VirtualMachine &VM) {
  // Convergence state gates plan reuse: a phase shift flagged by the
  // quality monitor means the DCG the plan was built from no longer
  // describes the program, so rebuild now instead of serving the stale
  // plan out to the end of its refresh interval.
  const prof::ProfileQualityMonitor *Monitor = VM.qualityMonitor();
  bool ShiftPending =
      Monitor && Monitor->phaseShiftCount() > SeenPhaseShifts;
  if (HavePlan && !ShiftPending && PlanAgeTicks < Config.PlanRefreshTicks)
    return Plan;
  if (Monitor)
    SeenPhaseShifts = Monitor->phaseShiftCount();
  if (HavePlan && ShiftPending)
    ++Stats.PhaseShiftReplans;
  PlanOverlapBp = Monitor ? static_cast<uint64_t>(
                                Monitor->lastOverlapPct() * 100.0 + 0.5)
                          : 10'000;
  static const opt::TrivialOracle Trivial;
  const opt::InlineOracle &O = Oracle ? *Oracle : Trivial;
  Plan = O.plan(VM.program(), VM.profile());
  HavePlan = true;
  PlanAgeTicks = 0;
  ++PlanGeneration;
  ++Stats.PlansComputed;

  // Trace each non-trivial decision of the fresh plan. The plan map is
  // unordered; emit in site order so traces stay byte-reproducible.
  if (tel::TraceSink *Sink = VM.traceSink()) {
    std::vector<std::pair<bc::SiteId, const opt::InlineDecision *>> Sorted;
    Sorted.reserve(Plan.Decisions.size());
    for (const auto &[Site, Decision] : Plan.Decisions)
      if (Decision.K != opt::InlineDecision::Kind::None)
        Sorted.emplace_back(Site, &Decision);
    std::sort(Sorted.begin(), Sorted.end(),
              [](const auto &L, const auto &R) { return L.first < R.first; });
    for (const auto &[Site, Decision] : Sorted) {
      bool Direct = Decision->K == opt::InlineDecision::Kind::Direct;
      bc::MethodId Target = Direct ? Decision->Target
                            : Decision->Guarded.empty()
                                ? bc::InvalidMethodId
                                : Decision->Guarded.front().Target;
      Sink->event(tel::TraceEvent::inlineDecision(VM.cycles(), Target, Site,
                                                  Direct ? 1 : 2));
    }
  }
  return Plan;
}

void AdaptiveSystem::maybePromote(vm::VirtualMachine &VM,
                                  bc::MethodId Method) {
  if (PerMethod.empty())
    PerMethod.resize(VM.program().numMethods());

  vm::CodeCache &Cache = VM.codeCache();
  int Level = Cache.activeLevel(Method);
  uint32_t Samples = VM.methodTickSamples()[Method];

  int NextLevel;
  bool IsReopt = false;
  if (Level < 1 && Samples >= Config.Level1Samples) {
    NextLevel = 1;
  } else if (Level < 2 && Samples >= Config.Level2Samples) {
    NextLevel = 2;
  } else if (Level == 2 &&
             PerMethod[Method].Reopts < Config.MaxReoptsPerMethod &&
             PlanGeneration >= PerMethod[Method].CompiledGeneration +
                                   Config.ReoptPlanGenerations &&
             Samples >= 2 * Config.Level2Samples) {
    // The method was optimized against an earlier (possibly immature)
    // profile and is still hot: re-optimize with the current plan.
    NextLevel = 2;
    IsReopt = true;
  } else {
    return;
  }

  // Cost-benefit check: estimated remaining time in this method,
  // assuming it keeps its observed share of the tick samples, must pay
  // for the compile. Estimated remaining cycles ~ samples * period
  // (what has been observed so far is the AOS's standard predictor of
  // the future).
  double EstimatedRemaining =
      static_cast<double>(Samples) *
      static_cast<double>(VM.config().TimerPeriodCycles);
  double CompileCost =
      VM.config().Costs.CompileCostPerByte[NextLevel] *
      static_cast<double>(VM.program().method(Method).sizeBytes());
  if (EstimatedRemaining < Config.CostBenefitFactor * CompileCost)
    return;

  vm::CompiledMethod CM =
      opt::compileMethod(VM.program(), Method, NextLevel, currentPlan(VM),
                         VM.config().Costs, Config.Compile);
  VM.installCompiled(std::move(CM));
  PerMethod[Method].CompiledGeneration = PlanGeneration;
  ++Stats.Recompilations;
  if (IsReopt) {
    ++PerMethod[Method].Reopts;
    ++Stats.Reoptimizations;
  } else if (NextLevel == 1) {
    ++Stats.PromotionsToL1;
  } else {
    ++Stats.PromotionsToL2;
  }
}

void AdaptiveSystem::onTimerTick(vm::VirtualMachine &VM, bc::MethodId Top) {
  ++Stats.Ticks;
  ++PlanAgeTicks;
  // The sampled method is the promotion candidate this tick (plus, on a
  // real system, its callers; the plan covers their sites when they in
  // turn get hot).
  for (uint32_t I = 0; I < Config.MaxRecompilesPerTick; ++I) {
    uint64_t Before = Stats.Recompilations;
    maybePromote(VM, Top);
    if (Stats.Recompilations == Before)
      break;
  }
  publishMetrics(VM);
}
