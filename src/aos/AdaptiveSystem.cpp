//===- aos/AdaptiveSystem.cpp - Adaptive optimization ------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"

#include "telemetry/MetricRegistry.h"
#include "telemetry/TraceSink.h"

#include <algorithm>
#include <utility>

using namespace cbs;
using namespace cbs::aos;

AdaptiveSystem::AdaptiveSystem(const opt::InlineOracle *Oracle,
                               AOSConfig Config)
    : Oracle(Oracle), Config(Config),
      Queue(std::max<uint32_t>(1, Config.CompileQueueCapacity)) {}

AdaptiveSystem::~AdaptiveSystem() = default;

void AdaptiveSystem::publishMetrics(vm::VirtualMachine &VM) {
  if (!Gauges.Ticks) {
    tel::MetricRegistry &R = VM.metricsRegistry();
    Gauges.Ticks = &R.gauge("aos.ticks");
    Gauges.Recompilations = &R.gauge("aos.recompilations");
    Gauges.PlansComputed = &R.gauge("aos.plans_computed");
    Gauges.PromotionsToL1 = &R.gauge("aos.promotions_l1");
    Gauges.PromotionsToL2 = &R.gauge("aos.promotions_l2");
    Gauges.Reoptimizations = &R.gauge("aos.reoptimizations");
    Gauges.PhaseShiftReplans = &R.gauge("aos.phase_shift_replans");
    Gauges.PlanOverlapBp = &R.gauge("aos.plan_overlap_bp");
    Gauges.QueueDepth = &R.gauge("aos.queue.depth");
    Gauges.QueueEnqueued = &R.gauge("aos.queue.enqueued");
    Gauges.QueueInstalls = &R.gauge("aos.queue.installs");
    Gauges.QueueStaleDrops = &R.gauge("aos.queue.stale_drops");
    Gauges.QueueCoalesced = &R.gauge("aos.queue.coalesced");
    Gauges.QueueDropped = &R.gauge("aos.queue.dropped");
  }
  *Gauges.Ticks = Stats.Ticks;
  *Gauges.Recompilations = Stats.Recompilations;
  *Gauges.PlansComputed = Stats.PlansComputed;
  *Gauges.PromotionsToL1 = Stats.PromotionsToL1;
  *Gauges.PromotionsToL2 = Stats.PromotionsToL2;
  *Gauges.Reoptimizations = Stats.Reoptimizations;
  *Gauges.PhaseShiftReplans = Stats.PhaseShiftReplans;
  *Gauges.PlanOverlapBp = PlanOverlapBp;
  *Gauges.QueueDepth = Queue.depth();
  *Gauges.QueueEnqueued = Stats.QueueEnqueued;
  *Gauges.QueueInstalls = Stats.QueueInstalls;
  *Gauges.QueueStaleDrops = Stats.QueueStaleDrops;
  *Gauges.QueueCoalesced = Stats.QueueCoalesced;
  *Gauges.QueueDropped = Stats.QueueDropped;
}

std::shared_ptr<const opt::InlinePlan>
AdaptiveSystem::currentPlan(vm::VirtualMachine &VM) {
  // Convergence state gates plan reuse: a phase shift flagged by the
  // quality monitor means the DCG the plan was built from no longer
  // describes the program, so rebuild now instead of serving the stale
  // plan out to the end of its refresh interval.
  const prof::ProfileQualityMonitor *Monitor = VM.qualityMonitor();
  bool ShiftPending =
      Monitor && Monitor->phaseShiftCount() > SeenPhaseShifts;
  if (Plan && !ShiftPending && PlanAgeTicks < Config.PlanRefreshTicks)
    return Plan;
  if (Monitor)
    SeenPhaseShifts = Monitor->phaseShiftCount();
  if (Plan && ShiftPending)
    ++Stats.PhaseShiftReplans;
  PlanOverlapBp = Monitor ? static_cast<uint64_t>(
                                Monitor->lastOverlapPct() * 100.0 + 0.5)
                          : 10'000;
  static const opt::TrivialOracle Trivial;
  const opt::InlineOracle &O = Oracle ? *Oracle : Trivial;
  // A fresh allocation per generation: in-flight CompileRequests (and
  // worker threads) keep their enqueue-time snapshot alive.
  Plan = std::make_shared<const opt::InlinePlan>(
      O.plan(VM.program(), VM.profile()));
  PlanAgeTicks = 0;
  ++PlanGeneration;
  ++Stats.PlansComputed;

  // Trace each non-trivial decision of the fresh plan. The plan map is
  // unordered; emit in site order so traces stay byte-reproducible.
  if (tel::TraceSink *Sink = VM.traceSink()) {
    std::vector<std::pair<bc::SiteId, const opt::InlineDecision *>> Sorted;
    Sorted.reserve(Plan->Decisions.size());
    for (const auto &[Site, Decision] : Plan->Decisions)
      if (Decision.K != opt::InlineDecision::Kind::None)
        Sorted.emplace_back(Site, &Decision);
    std::sort(Sorted.begin(), Sorted.end(),
              [](const auto &L, const auto &R) { return L.first < R.first; });
    for (const auto &[Site, Decision] : Sorted) {
      bool Direct = Decision->K == opt::InlineDecision::Kind::Direct;
      bc::MethodId Target = Direct ? Decision->Target
                            : Decision->Guarded.empty()
                                ? bc::InvalidMethodId
                                : Decision->Guarded.front().Target;
      Sink->event(tel::TraceEvent::inlineDecision(VM.cycles(), Target, Site,
                                                  Direct ? 1 : 2));
    }
  }
  return Plan;
}

uint64_t AdaptiveSystem::compileLatency(vm::VirtualMachine &VM,
                                        bc::MethodId Method,
                                        int Level) const {
  // Latency is modelled on the pre-inlining size known at enqueue time
  // (the decision point cannot see the post-inlining expansion).
  const vm::CostModel &Costs = VM.config().Costs;
  double L = Costs.CompileLatencyScale * Costs.CompileCostPerByte[Level] *
             static_cast<double>(VM.program().method(Method).sizeBytes());
  return L <= 0 ? 0 : static_cast<uint64_t>(L);
}

void AdaptiveSystem::submitRequest(vm::VirtualMachine &VM,
                                   CompileRequest R) {
  R.Seq = Queue.nextSeq();
  if (Config.CompileJobs > 0) {
    if (!Pool)
      Pool = std::make_unique<CompileWorkerPool>(
          VM.program(), VM.config().Costs, Config.Compile,
          Config.CompileJobs);
    R.Pending = Pool->submit(R.Method, R.Level, R.Plan);
  }
  if (tel::TraceSink *Sink = VM.traceSink())
    Sink->event(tel::TraceEvent::compileEnqueue(VM.cycles(), 0, R.Method,
                                                static_cast<uint32_t>(R.Level),
                                                R.ReadyCycle));
  std::optional<CompileRequest> Evicted;
  switch (Queue.enqueue(std::move(R), &Evicted)) {
  case EnqueueResult::Added:
    ++Stats.QueueEnqueued;
    break;
  case EnqueueResult::Coalesced:
    ++Stats.QueueCoalesced;
    break;
  case EnqueueResult::EvictedLowest:
    ++Stats.QueueEnqueued;
    ++Stats.QueueDropped;
    break;
  case EnqueueResult::Rejected:
    ++Stats.QueueDropped;
    break;
  }
}

bool AdaptiveSystem::maybePromote(vm::VirtualMachine &VM,
                                  bc::MethodId Method) {
  if (PerMethod.empty())
    PerMethod.resize(VM.program().numMethods());

  vm::CodeCache &Cache = VM.codeCache();
  int Pending = Queue.pendingLevel(Method);
  // A pending compile counts as if it had installed: the tick loop can
  // upgrade a queued L1 request to L2, but never duplicates it.
  int Level = std::max(Cache.activeLevel(Method), Pending);
  uint32_t Samples = VM.methodTickSamples()[Method];

  int NextLevel;
  bool IsReopt = false;
  if (Level < 1 && Samples >= Config.Level1Samples) {
    NextLevel = 1;
  } else if (Level < 2 && Samples >= Config.Level2Samples) {
    NextLevel = 2;
  } else if (Level == 2 && Pending < 0 &&
             PerMethod[Method].Reopts < Config.MaxReoptsPerMethod &&
             PlanGeneration >= PerMethod[Method].CompiledGeneration +
                                   Config.ReoptPlanGenerations &&
             Samples >= 2 * Config.Level2Samples) {
    // The method was optimized against an earlier (possibly immature)
    // profile and is still hot: re-optimize with the current plan.
    NextLevel = 2;
    IsReopt = true;
  } else {
    return false;
  }

  // Cost-benefit check: estimated remaining time in this method,
  // assuming it keeps its observed share of the tick samples, must pay
  // for the compile. Estimated remaining cycles ~ samples * period
  // (what has been observed so far is the AOS's standard predictor of
  // the future).
  double EstimatedRemaining =
      static_cast<double>(Samples) *
      static_cast<double>(VM.config().TimerPeriodCycles);
  double CompileCost =
      VM.config().Costs.CompileCostPerByte[NextLevel] *
      static_cast<double>(VM.program().method(Method).sizeBytes());
  if (EstimatedRemaining < Config.CostBenefitFactor * CompileCost)
    return false;

  CompileRequest R;
  R.Method = Method;
  R.Level = NextLevel;
  R.IsReopt = IsReopt;
  R.Plan = currentPlan(VM);
  R.PlanGeneration = PlanGeneration;
  R.EnqueueCycle = VM.cycles();
  R.ReadyCycle = VM.cycles() + compileLatency(VM, Method, NextLevel);
  // Priority is the benefit ratio the cost-benefit rule computed: how
  // many times over the method's estimated remaining time pays for its
  // compile.
  R.Priority = EstimatedRemaining / CompileCost;
  if (const prof::ProfileQualityMonitor *Monitor = VM.qualityMonitor())
    R.PhaseShiftsSeen = Monitor->phaseShiftCount();
  submitRequest(VM, std::move(R));
  return true;
}

void AdaptiveSystem::install(vm::VirtualMachine &VM, CompileRequest R) {
  vm::CompiledMethod CM =
      R.Pending.valid()
          ? R.Pending.get() // pre-compiled by a worker; identical result
          : opt::compileMethod(VM.program(), R.Method, R.Level, *R.Plan,
                               VM.config().Costs, Config.Compile);
  uint64_t Waited = VM.cycles() - R.EnqueueCycle;
  VM.installCompiled(std::move(CM));
  if (tel::TraceSink *Sink = VM.traceSink())
    Sink->event(tel::TraceEvent::compileInstall(
        VM.cycles(), 0, R.Method, static_cast<uint32_t>(R.Level), Waited));
  PerMethod[R.Method].CompiledGeneration = R.PlanGeneration;
  ++Stats.QueueInstalls;
  ++Stats.Recompilations;
  if (R.IsReopt) {
    ++PerMethod[R.Method].Reopts;
    ++Stats.Reoptimizations;
  } else if (R.Level == 1) {
    ++Stats.PromotionsToL1;
  } else {
    ++Stats.PromotionsToL2;
  }
}

void AdaptiveSystem::onYieldpoint(vm::VirtualMachine &VM) {
  if (Queue.depth() == 0)
    return;
  uint64_t Now = VM.cycles();
  bool Activity = false;
  while (std::optional<CompileRequest> R = Queue.popReady(Now)) {
    Activity = true;
    // Install-point re-validation: the plan is `latency` cycles stale
    // by now. If its generation was superseded, or the quality monitor
    // declared a phase shift after the request was decided, the compile
    // would install code specialized for a profile that no longer
    // holds — drop it and re-enqueue against the fresh plan. Bounded by
    // MaxReenqueues so a method that stays hot across phases still
    // makes progress (the last re-enqueue already carries a fresh
    // plan).
    const prof::ProfileQualityMonitor *Monitor = VM.qualityMonitor();
    bool Stale = R->PlanGeneration < PlanGeneration ||
                 (Monitor &&
                  Monitor->phaseShiftCount() > R->PhaseShiftsSeen);
    if (Stale && R->Reenqueues < Config.MaxReenqueues) {
      ++Stats.QueueStaleDrops;
      R->Plan = currentPlan(VM); // rebuilds when a shift is pending
      R->PlanGeneration = PlanGeneration;
      if (Monitor)
        R->PhaseShiftsSeen = Monitor->phaseShiftCount();
      R->EnqueueCycle = Now;
      R->ReadyCycle = Now + compileLatency(VM, R->Method, R->Level);
      ++R->Reenqueues;
      R->Pending = {}; // the worker result is for the dropped plan
      submitRequest(VM, std::move(*R));
      continue;
    }
    install(VM, std::move(*R));
  }
  if (Activity)
    publishMetrics(VM);
}

void AdaptiveSystem::onTimerTick(vm::VirtualMachine &VM, bc::MethodId Top) {
  ++Stats.Ticks;
  ++PlanAgeTicks;
  // The sampled method is the promotion candidate this tick (plus, on a
  // real system, its callers; the plan covers their sites when they in
  // turn get hot). Each iteration may upgrade the previous one's
  // request (L1 pending -> L2) until the method's state is settled.
  for (uint32_t I = 0; I < Config.MaxRecompilesPerTick; ++I)
    if (!maybePromote(VM, Top))
      break;
  publishMetrics(VM);
}
