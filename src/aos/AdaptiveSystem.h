//===- aos/AdaptiveSystem.h - Adaptive optimization -------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive optimization system (Arnold et al.'s Jikes RVM AOS,
/// simplified): timer-tick samples identify hot methods; methods whose
/// sample counts cross level thresholds are recompiled at higher
/// optimization levels with an inline plan computed by the configured
/// oracle from the *current* dynamic call graph. This is the client
/// that turns profile accuracy into performance (§6.3): a profiler that
/// converges faster hands the oracle a better DCG at recompilation
/// time.
///
/// The controller implements a simplified cost-benefit rule: a method
/// is promoted when its estimated remaining execution time (sample
/// count × timer period, assuming the program keeps behaving as
/// observed) exceeds the modelled compile cost at the next level by a
/// configurable factor.
///
/// Compilation is asynchronous, as in the paper's VMs (§6): a promotion
/// decision enqueues a CompileRequest carrying the plan snapshot it was
/// made against and a modelled compile latency; the compiled code
/// installs at the first taken yieldpoint whose virtual cycle count
/// passes enqueue + latency. Because the plan is `latency` cycles stale
/// by then, the install point re-validates it — a request whose plan
/// generation has been superseded (or whose enqueue-time profile the
/// quality monitor has since declared a different phase) is dropped and
/// re-enqueued against the fresh plan, up to MaxReenqueues times.
/// `--compile-jobs N` adds real worker threads that pre-compute the
/// compile result, but installs stay pinned to the same virtual-time
/// points, so runs are byte-identical at any job count.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_AOS_ADAPTIVESYSTEM_H
#define CBSVM_AOS_ADAPTIVESYSTEM_H

#include "aos/CompileQueue.h"
#include "aos/DeoptController.h"
#include "opt/Compiler.h"
#include "opt/InlineOracle.h"
#include "profiling/DCGSnapshot.h"
#include "support/ArgParser.h"
#include "vm/VirtualMachine.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace cbs::tel {
struct Gauge;
}

namespace cbs::aos {

struct AOSConfig {
  /// Tick samples a method needs before promotion to level 1 / 2.
  uint32_t Level1Samples = 2;
  uint32_t Level2Samples = 8;
  /// Benefit factor: promote only when estimated remaining cycles in
  /// the method exceed Factor × compile cost of the next level.
  double CostBenefitFactor = 1.0;
  /// Recompute the inline plan at most every this many ticks (plans
  /// are whole-program and moderately expensive to build).
  uint32_t PlanRefreshTicks = 4;
  /// Cap on promotions processed per tick (compile queue backpressure).
  uint32_t MaxRecompilesPerTick = 4;
  /// A method already at the top level may be *re*-optimized when the
  /// inline plan has advanced this many generations since it was last
  /// compiled — early recompilations happen against immature profiles,
  /// and the modelled VMs keep re-optimizing as profiles mature.
  uint32_t ReoptPlanGenerations = 2;
  /// Bound on same-level reoptimizations per method.
  uint32_t MaxReoptsPerMethod = 2;
  /// Bound on requests pending in the compile queue; beyond it the
  /// lowest-priority entry is evicted (or the newcomer rejected).
  uint32_t CompileQueueCapacity = 16;
  /// How many times a request found stale at its install point is
  /// re-enqueued against a fresh plan before installing anyway (the
  /// progress guarantee for methods that stay hot across phases).
  uint32_t MaxReenqueues = 3;
  /// Real compile worker threads. 0 compiles at the install point on
  /// the VM thread; N >= 1 pre-computes results on a worker pool.
  /// Either way installs happen at the same virtual-time points and
  /// runs are byte-identical.
  uint32_t CompileJobs = 0;
  /// Speculation-guard policing (off by default — enabling it changes
  /// when plans are snapshotted, so it is a distinct configuration).
  DeoptConfig Deopt;
  opt::CompileOptions Compile;

  /// Warm start from a persisted cross-run profile (ProfileRepository).
  struct WarmStartConfig {
    /// The persisted profile to warm-start from; null = cold start
    /// (byte-identical to previous releases). Callers must only set
    /// this after the repository verified the program hash and
    /// personality.
    std::shared_ptr<const prof::DCGSnapshot> Profile;
    /// At most this many hot methods are pre-enqueued at startup.
    uint32_t MaxMethods = 8;
    /// Minimum accumulated callee weight for a method to qualify.
    uint64_t MinMethodWeight = 1;
    /// Optimization level the warm compiles target.
    int Level = 2;
  };
  WarmStartConfig WarmStart;
};

struct AOSStats {
  uint64_t Ticks = 0;
  /// Installed recompilations (counted at install, not at decision).
  uint64_t Recompilations = 0;
  uint64_t PlansComputed = 0;
  uint64_t PromotionsToL1 = 0;
  uint64_t PromotionsToL2 = 0;
  uint64_t Reoptimizations = 0;
  /// Plans rebuilt early because the quality monitor flagged a phase
  /// shift (the profile no longer described the program the plan was
  /// built for).
  uint64_t PhaseShiftReplans = 0;
  // Compile-queue traffic.
  uint64_t QueueEnqueued = 0;  ///< requests admitted as new entries
  uint64_t QueueInstalls = 0;  ///< requests that reached installCompiled
  uint64_t QueueStaleDrops = 0; ///< installs dropped stale + re-enqueued
  uint64_t QueueCoalesced = 0; ///< requests merged into a pending entry
  uint64_t QueueDropped = 0;   ///< evicted by or rejected at a full queue
  /// Virtual cycle of the first install (0 until one happens): the
  /// time-to-first-optimized-code figure warm starts exist to lower.
  uint64_t FirstInstallCycle = 0;
  // Warm start (all 0 on a cold run).
  uint64_t WarmEnqueued = 0; ///< startup pre-enqueues from the repository
  uint64_t WarmInstalls = 0; ///< warm requests that reached install
};

/// Attach with VirtualMachine::setClient. \p Oracle must outlive the
/// system and may be null (no profile-directed inlining: methods are
/// recompiled with the trivial plan only).
class AdaptiveSystem : public vm::VMClient {
public:
  AdaptiveSystem(const opt::InlineOracle *Oracle, AOSConfig Config = {});
  ~AdaptiveSystem() override;

  void onStartup(vm::VirtualMachine &VM) override;
  void onTimerTick(vm::VirtualMachine &VM, bc::MethodId Top) override;
  void onYieldpoint(vm::VirtualMachine &VM) override;

  const AOSStats &stats() const { return Stats; }
  /// True when this run was configured with a persisted warm-start
  /// profile (the report's warm subsection is emitted only then).
  bool warmStarted() const { return Config.WarmStart.Profile != nullptr; }
  /// Requests still pending (enqueued but never ready before the run
  /// ended, mirroring compilations a real VM abandons at exit).
  size_t queueDepth() const { return Queue.depth(); }
  /// The guard-policing controller (null unless AOSConfig::Deopt is
  /// enabled).
  const DeoptController *deoptController() const { return DeoptCtl.get(); }

private:
  /// Returns true when it enqueued or upgraded a request (the tick
  /// loop's progress signal).
  bool maybePromote(vm::VirtualMachine &VM, bc::MethodId Method);
  std::shared_ptr<const opt::InlinePlan>
  currentPlan(vm::VirtualMachine &VM);
  /// Installs \p Fresh as the current plan: stamps generation and
  /// profile epoch, bumps the counters, and traces its non-trivial
  /// decisions. Shared by the tick-path rebuild (currentPlan) and the
  /// startup warm plan.
  void adoptPlan(vm::VirtualMachine &VM, opt::InlinePlan Fresh,
                 uint64_t ProfileEpoch);
  /// Modelled background-compile latency for \p Method at \p Level.
  uint64_t compileLatency(vm::VirtualMachine &VM, bc::MethodId Method,
                          int Level) const;
  /// Builds and admits a request (fanning it to the worker pool when
  /// --compile-jobs is on) and does the metric/event bookkeeping.
  void submitRequest(vm::VirtualMachine &VM, CompileRequest R);
  void install(vm::VirtualMachine &VM, CompileRequest R);
  /// Executes the queue-side consequences of controller decisions:
  /// drops the method's in-flight requests and enqueues the recompile
  /// (conservative no-speculation plan when the decision pinned it).
  void applyDeoptDecisions(vm::VirtualMachine &VM,
                           const std::vector<DeoptDecision> &Decisions);
  /// The cached no-speculation plan pinned methods compile against.
  std::shared_ptr<const opt::InlinePlan>
  conservativePlan(vm::VirtualMachine &VM);
  /// Mirrors AOSStats into the VM's metric registry ("aos.*" gauges)
  /// and caches the gauge addresses on first use.
  void publishMetrics(vm::VirtualMachine &VM);

  const opt::InlineOracle *Oracle;
  AOSConfig Config;
  AOSStats Stats;

  struct GaugeSet {
    tel::Gauge *Ticks = nullptr;
    tel::Gauge *Recompilations = nullptr;
    tel::Gauge *PlansComputed = nullptr;
    tel::Gauge *PromotionsToL1 = nullptr;
    tel::Gauge *PromotionsToL2 = nullptr;
    tel::Gauge *Reoptimizations = nullptr;
    tel::Gauge *PhaseShiftReplans = nullptr;
    tel::Gauge *PlanOverlapBp = nullptr;
    tel::Gauge *QueueDepth = nullptr;
    tel::Gauge *QueueEnqueued = nullptr;
    tel::Gauge *QueueInstalls = nullptr;
    tel::Gauge *QueueStaleDrops = nullptr;
    tel::Gauge *QueueCoalesced = nullptr;
    tel::Gauge *QueueDropped = nullptr;
    tel::Gauge *FirstInstallCycle = nullptr;
    // aos.warm.* (registered only on warm-started runs).
    tel::Gauge *WarmEnqueued = nullptr;
    tel::Gauge *WarmInstalls = nullptr;
    // aos.deopt.* (registered only when the controller is on).
    tel::Gauge *DeoptGuardChecks = nullptr;
    tel::Gauge *DeoptGuardFailures = nullptr;
    tel::Gauge *DeoptCount = nullptr;
    tel::Gauge *DeoptPhaseShift = nullptr;
    tel::Gauge *DeoptPins = nullptr;
    tel::Gauge *DeoptStaleDropped = nullptr;
    tel::Gauge *DeoptRecompiles = nullptr;
  };
  GaugeSet Gauges;

  /// The current whole-program inline plan, shared as an immutable
  /// snapshot with every in-flight CompileRequest (and the worker
  /// pool). Rebuilt in place-of-pointer: old requests keep the
  /// generation they were decided against.
  std::shared_ptr<const opt::InlinePlan> Plan;
  uint64_t PlanAgeTicks = 0;
  uint64_t PlanGeneration = 0;
  /// Quality-monitor phase shifts already acted upon.
  uint64_t SeenPhaseShifts = 0;
  /// Monitor overlap (basis points) when the current plan was built;
  /// 10000 when no monitor is installed.
  uint64_t PlanOverlapBp = 10'000;

  CompileQueue Queue;
  std::unique_ptr<CompileWorkerPool> Pool;
  std::unique_ptr<DeoptController> DeoptCtl;
  std::shared_ptr<const opt::InlinePlan> ConservativePlan;

  struct MethodState {
    uint64_t CompiledGeneration = 0;
    uint32_t Reopts = 0;
  };
  std::vector<MethodState> PerMethod;
};

/// The cbsvm AOS option group: --aos, --compile-jobs,
/// --compile-latency-scale, --deopt-threshold, --max-deopts. Options
/// that only make sense with the adaptive system imply it, so
/// "--compile-jobs 4" alone does the expected thing; finalize() applies
/// the cross-cutting implications onto the VM config after every group
/// has parsed.
class AOSOptionGroup : public support::OptionGroup {
public:
  /// --aos, or any option above that implies it (or EnableOSR, applied
  /// in finalize()).
  bool UseAOS = false;
  AOSConfig Config;

  const char *name() const override { return "aos"; }
  void parse(support::ArgParser &Args) override;

  /// Applies --compile-latency-scale onto \p VMC's cost model and lets
  /// VMConfig::EnableOSR (parsed by the VM group) imply --aos.
  void finalize(vm::VMConfig &VMC);

private:
  /// Sentinel default: the option is range-checked only when present,
  /// so -1 distinguishes "absent" from an explicit 0 (install at the
  /// first taken yieldpoint).
  double LatencyScale = -1.0;
};

} // namespace cbs::aos

#endif // CBSVM_AOS_ADAPTIVESYSTEM_H
