//===- aos/AdaptiveSystem.h - Adaptive optimization -------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive optimization system (Arnold et al.'s Jikes RVM AOS,
/// simplified): timer-tick samples identify hot methods; methods whose
/// sample counts cross level thresholds are recompiled at higher
/// optimization levels with an inline plan computed by the configured
/// oracle from the *current* dynamic call graph. This is the client
/// that turns profile accuracy into performance (§6.3): a profiler that
/// converges faster hands the oracle a better DCG at recompilation
/// time.
///
/// The controller implements a simplified cost-benefit rule: a method
/// is promoted when its estimated remaining execution time (sample
/// count × timer period, assuming the program keeps behaving as
/// observed) exceeds the modelled compile cost at the next level by a
/// configurable factor.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_AOS_ADAPTIVESYSTEM_H
#define CBSVM_AOS_ADAPTIVESYSTEM_H

#include "opt/Compiler.h"
#include "opt/InlineOracle.h"
#include "vm/VirtualMachine.h"

#include <cstdint>
#include <vector>

namespace cbs::tel {
struct Gauge;
}

namespace cbs::aos {

struct AOSConfig {
  /// Tick samples a method needs before promotion to level 1 / 2.
  uint32_t Level1Samples = 2;
  uint32_t Level2Samples = 8;
  /// Benefit factor: promote only when estimated remaining cycles in
  /// the method exceed Factor × compile cost of the next level.
  double CostBenefitFactor = 1.0;
  /// Recompute the inline plan at most every this many ticks (plans
  /// are whole-program and moderately expensive to build).
  uint32_t PlanRefreshTicks = 4;
  /// Cap on promotions processed per tick (compile queue backpressure).
  uint32_t MaxRecompilesPerTick = 4;
  /// A method already at the top level may be *re*-optimized when the
  /// inline plan has advanced this many generations since it was last
  /// compiled — early recompilations happen against immature profiles,
  /// and the modelled VMs keep re-optimizing as profiles mature.
  uint32_t ReoptPlanGenerations = 2;
  /// Bound on same-level reoptimizations per method.
  uint32_t MaxReoptsPerMethod = 2;
  opt::CompileOptions Compile;
};

struct AOSStats {
  uint64_t Ticks = 0;
  uint64_t Recompilations = 0;
  uint64_t PlansComputed = 0;
  uint64_t PromotionsToL1 = 0;
  uint64_t PromotionsToL2 = 0;
  uint64_t Reoptimizations = 0;
  /// Plans rebuilt early because the quality monitor flagged a phase
  /// shift (the profile no longer described the program the plan was
  /// built for).
  uint64_t PhaseShiftReplans = 0;
};

/// Attach with VirtualMachine::setClient. \p Oracle must outlive the
/// system and may be null (no profile-directed inlining: methods are
/// recompiled with the trivial plan only).
class AdaptiveSystem : public vm::VMClient {
public:
  AdaptiveSystem(const opt::InlineOracle *Oracle, AOSConfig Config = {});

  void onTimerTick(vm::VirtualMachine &VM, bc::MethodId Top) override;

  const AOSStats &stats() const { return Stats; }

private:
  void maybePromote(vm::VirtualMachine &VM, bc::MethodId Method);
  const opt::InlinePlan &currentPlan(vm::VirtualMachine &VM);
  /// Mirrors AOSStats into the VM's metric registry ("aos.*" gauges)
  /// and caches the gauge addresses on first use.
  void publishMetrics(vm::VirtualMachine &VM);

  const opt::InlineOracle *Oracle;
  AOSConfig Config;
  AOSStats Stats;

  struct GaugeSet {
    tel::Gauge *Ticks = nullptr;
    tel::Gauge *Recompilations = nullptr;
    tel::Gauge *PlansComputed = nullptr;
    tel::Gauge *PromotionsToL1 = nullptr;
    tel::Gauge *PromotionsToL2 = nullptr;
    tel::Gauge *Reoptimizations = nullptr;
    tel::Gauge *PhaseShiftReplans = nullptr;
    tel::Gauge *PlanOverlapBp = nullptr;
  };
  GaugeSet Gauges;

  opt::InlinePlan Plan;
  uint64_t PlanAgeTicks = 0;
  uint64_t PlanGeneration = 0;
  bool HavePlan = false;
  /// Quality-monitor phase shifts already acted upon.
  uint64_t SeenPhaseShifts = 0;
  /// Monitor overlap (basis points) when the current plan was built;
  /// 10000 when no monitor is installed.
  uint64_t PlanOverlapBp = 10'000;

  struct MethodState {
    uint64_t CompiledGeneration = 0;
    uint32_t Reopts = 0;
  };
  std::vector<MethodState> PerMethod;
};

} // namespace cbs::aos

#endif // CBSVM_AOS_ADAPTIVESYSTEM_H
