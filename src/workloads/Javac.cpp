//===- workloads/Javac.cpp - SPECjvm98 _213_javac analogue -------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// javac compiles Java source: by far the most call-graph-complex of the
// SPECjvm98 programs (939 methods executed on the small input), with
// distinct *phases* (parse / analyze / emit) whose hot sites differ, a
// wide virtual visit dispatch over AST node kinds, and recursion. The
// paper singles javac out: it is where higher profile accuracy bought
// the most inlining benefit, "encouraging since it is one of the more
// complex benchmarks ... profile accuracy may be more important as
// program complexity increases". Phase changes also exercise CBS's
// continuous-profiling advantage over one-shot code patching windows.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildJavac(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 6151 + 4);

  MethodId Init = makeInitPhase(PB, "javac", 380, RNG);
  MethodId Tail = makeColdTail(PB, "javac", 512, RNG);

  // AST node kinds with a visit selector; weights differ per phase.
  ClassFamily Nodes = makeClassFamily(PB, "Node", 10);
  SelectorId Visit = PB.addSelector("visit", /*NumArgs=*/2);
  implementSelector(PB, Nodes, Visit,
                    {8, 14, 6, 20, 9, 11, 7, 16, 10, 12},
                    {4, 8, 2, 12, 5, 6, 3, 9, 4, 7});

  MethodId Intern = makeStaticLeaf(PB, "internSymbol", 11, 1, 6);
  MethodId EmitOp = makeStaticLeaf(PB, "emitOpcode", 7, 1, 3);
  MethodId Lookup = makeStaticLeaf(PB, "lookupType", 13, 1, 7);

  // parseExpr(depth): recursive descent. Each level interns a symbol
  // and recurses twice (a binary expression).
  MethodId ParseExpr = PB.declareStatic("parseExpr", {ValKind::Int},
                                        /*HasResult=*/true, ValKind::Int);
  {
    MethodBuilder MB = PB.defineMethod(ParseExpr);
    Label Leaf = MB.newLabel();
    MB.iload(0).ifLe(Leaf);
    MB.work(18);
    MB.iload(0).invokeStatic(Intern).istore(1);
    MB.iload(0).iconst(1).isub().invokeStatic(ParseExpr).istore(2);
    MB.iload(0).iconst(2).isub().invokeStatic(ParseExpr);
    MB.iload(1).iadd().iload(2).iadd().iret();
    MB.bind(Leaf).work(6).iconst(1).iret();
    MB.finish();
  }

  // Phase bodies: each walks the node receivers with its own skew and
  // helper mix.
  auto makePhase = [&](const std::string &Name,
                       std::vector<WeightedRef> Pick, MethodId Helper,
                       int32_t PhaseWork) {
    MethodId Id = PB.declareStatic(Name, {ValKind::Int},
                                   /*HasResult=*/true, ValKind::Int);
    MethodBuilder MB = PB.defineMethod(Id);
    // Locals: 0 arg, 1 acc, 2 j, 3 scratch, refs 4..13.
    MB.iconst(0).istore(1);
    emitReceiverInit(MB, Nodes.Subclasses, /*FirstSlot=*/4);
    emitCountedLoop(MB, /*CounterSlot=*/2, 6, [&] {
      MB.iload(2).iload(0).iadd().iconst(15).iand().istore(3);
      emitPickReceiver(MB, 3, Pick, 16);
      MB.iload(3).invokeVirtual(Visit).istore(3);
      MB.iload(3).invokeStatic(Helper).iload(1).iadd().istore(1);
    });
    MB.work(PhaseWork);
    MB.iload(1).iret();
    MB.finish();
    return Id;
  };

  // Phase skews: parse and analyze each have *two* dominant receiver
  // kinds just above the 40% bar (7/16 = 43.75% each) — the shape that
  // separates profile qualities: an accurate profile sees both targets
  // above the new inliner's 40% rule and guards both; a biased profile
  // sees one inflated target and leaves the other 44% of dispatches on
  // the fallback path. Slots are receiver locals 4..13.
  MethodId Parse = makePhase("parsePhase",
                             {{4, 7}, {5, 14}, {6, 15}, {7, 16}}, Intern,
                             60);
  MethodId Analyze = makePhase("analyzePhase",
                               {{8, 7}, {9, 14}, {6, 15}, {10, 16}}, Lookup,
                               40);
  MethodId Emit = makePhase("emitPhase",
                            {{11, 10}, {12, 14}, {13, 16}}, EmitOp, 30);

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Init).istore(1);
    int64_t Units = scaleIterations(Size, 2'300);
    emitCountedLoop(MB, /*CounterSlot=*/0, Units, [&] {
      // Compilation unit: parse (with a real recursive expression),
      // analyze, emit — a moving hot region.
      MB.iconst(4).invokeStatic(ParseExpr).istore(2);
      MB.iload(0).invokeStatic(Parse).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Analyze).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Emit).iload(1).iadd().istore(1);
      MB.iload(2).iload(1).iadd().istore(1);
      // Utility edges: symbol tables, diagnostics, constant pools...
      emitCountedLoop(MB, /*CounterSlot=*/2, 4, [&] {
        MB.iload(0).iconst(3).imul().iload(2).iadd()
            .invokeStatic(Tail).iload(1).iadd().istore(1);
      });
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
