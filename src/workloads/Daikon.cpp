//===- workloads/Daikon.cpp - MIT Daikon analogue -------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// daikon detects likely program invariants from traces: the largest
// method population in Table 1's mid-field (1671 executed methods on
// small), a *megamorphic* check site — every sample is tested against
// a dozen invariant classes — and a long initialization phase reading
// declarations. Megamorphic sites are where the 40% distribution rule
// matters: no single target dominates, so guarded inlining should be
// (correctly) declined, and an inliner trusting a biased profile that
// over-weights one target degrades.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildDaikon(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 15073 + 10);

  MethodId Init = makeInitPhase(PB, "daikon", 850, RNG);
  MethodId Tail = makeColdTail(PB, "daikon", 768, RNG);

  ClassFamily Invariants = makeClassFamily(PB, "Invariant", 12);
  SelectorId Check = PB.addSelector("check", /*NumArgs=*/2);
  implementSelector(PB, Invariants, Check,
                    {6, 7, 8, 6, 9, 7, 8, 6, 10, 7, 6, 8},
                    {3, 4, 3, 2, 5, 3, 4, 2, 5, 3, 2, 4});

  MethodId Falsify = makeStaticLeaf(PB, "falsifyInvariant", 11, 1, 5);

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    // Locals: 0 counter, 1 checksum, 2 j, 3 scratch, refs 4..15.
    MB.invokeStatic(Init).istore(1);
    emitReceiverInit(MB, Invariants.Subclasses, /*FirstSlot=*/4);

    int64_t Samples = scaleIterations(Size, 14'000);
    emitCountedLoop(MB, /*CounterSlot=*/0, Samples, [&] {
      MB.work(40); // read the next trace sample
      // Check against a rotating window of 4 of the 12 invariants —
      // over time every class appears with near-uniform weight
      // (megamorphic site).
      emitCountedLoop(MB, /*CounterSlot=*/2, 4, [&] {
        MB.iload(0).iload(2).iadd().iconst(11).irem().istore(3);
        // Dispatch on (i + j) mod 12: uniform over the receivers.
        std::vector<WeightedRef> Pick;
        for (uint32_t R = 0; R != 11; ++R)
          Pick.push_back({4 + R, R + 1});
        emitPickReceiver(MB, 3, Pick, 11);
        MB.iload(0).invokeVirtual(Check).istore(3);

        Label Keep = MB.newLabel();
        MB.iload(3).iconst(63).iand().ifNe(Keep);
        MB.iload(3).invokeStatic(Falsify).istore(3);
        MB.bind(Keep).iload(1).iload(3).iadd().istore(1);
      });
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
