//===- workloads/Kawa.cpp - Kawa Scheme analogue -------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// kawa runs a Scheme system compiled to the JVM: the largest method
// population in Table 1 (1794 executed on small), deep recursive
// evaluation over expression-node classes, and a hot apply/eval
// dispatch whose receiver set is wide but has a clear head (literals
// and variable references dominate real Scheme ASTs). Deep stacks make
// the stack walker's per-frame cost visible and give the calling
// context tree extension something real to record.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildKawa(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 7561 + 11);

  MethodId Init = makeInitPhase(PB, "kawa", 700, RNG);
  MethodId Tail = makeColdTail(PB, "kawa", 1024, RNG);

  ClassId Expr = PB.addClass("Expr", InvalidClassId, 1);
  ClassId Literal = PB.addClass("Literal", Expr, 1);
  ClassId VarRef = PB.addClass("VarRef", Expr, 1);
  ClassId Application = PB.addClass("Application", Expr, 1);
  ClassId Lambda = PB.addClass("Lambda", Expr, 1);
  ClassId IfExpr = PB.addClass("IfExpr", Expr, 1);

  SelectorId Eval = PB.addSelector("eval", /*NumArgs=*/2);
  MethodId EnvLookup = makeStaticLeaf(PB, "envLookup", 7, 1, 3);
  MethodId MakeClosure = makeStaticLeaf(PB, "makeClosure", 13, 1, 6);

  // Leaf node kinds.
  auto defineLeaf = [&](ClassId C, int32_t Work, MethodId Helper) {
    MethodId Id = PB.declareVirtual(C, Eval, "", {}, /*HasResult=*/true,
                                    ValKind::Int);
    MethodBuilder MB = PB.defineMethod(Id);
    MB.work(Work).iload(1).invokeStatic(Helper).iret();
    MB.finish();
  };
  defineLeaf(Literal, 4, EnvLookup);  // constant fold via env? cheap
  defineLeaf(VarRef, 6, EnvLookup);
  defineLeaf(Lambda, 9, MakeClosure);

  // evalTree(depth): the recursive evaluator core; Application and
  // IfExpr recurse through it.
  MethodId EvalTree = PB.declareStatic("evalTree", {ValKind::Int},
                                       /*HasResult=*/true, ValKind::Int);
  for (auto [C, Work] : {std::pair{Application, 11}, std::pair{IfExpr, 7}}) {
    MethodId Id = PB.declareVirtual(C, Eval, "", {}, /*HasResult=*/true,
                                    ValKind::Int);
    MethodBuilder MB = PB.defineMethod(Id);
    MB.work(Work).iload(1).iconst(1).isub().invokeStatic(EvalTree).iret();
    MB.finish();
  }
  {
    MethodBuilder MB = PB.defineMethod(EvalTree);
    // Locals: 0 depth, 1 acc, 2 j, 3 scratch, 4..8 refs.
    Label Leaf = MB.newLabel();
    MB.iload(0).ifLe(Leaf);
    MB.newObject(Literal).astore(4);
    MB.newObject(VarRef).astore(5);
    MB.newObject(Application).astore(6);
    MB.newObject(IfExpr).astore(7);
    MB.iconst(0).istore(1);
    emitCountedLoop(MB, /*CounterSlot=*/2, 3, [&] {
      // literals 6/16, varrefs 5/16, applications 3/16, ifs 2/16.
      MB.iload(2).iload(0).iadd().iconst(15).iand().istore(3);
      std::vector<WeightedRef> Pick = {{4, 6}, {5, 11}, {6, 14}, {7, 16}};
      emitPickReceiver(MB, 3, Pick, 16);
      MB.iload(0).invokeVirtual(Eval).iload(1).iadd().istore(1);
    });
    MB.iload(1).iret();
    MB.bind(Leaf).work(3).iconst(1).iret();
    MB.finish();
  }

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Init).istore(1);
    int64_t Forms = scaleIterations(Size, 14'000);
    emitCountedLoop(MB, /*CounterSlot=*/0, Forms, [&] {
      MB.iconst(6).invokeStatic(EvalTree).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
