//===- workloads/Soot.cpp - McGill Soot analogue --------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// soot is a bytecode analysis and transformation framework: a dataflow
// worklist loop popping units, applying a virtual flow function per
// statement kind, merging states through static helpers, and
// re-queueing. Wide static fan-out with mid-sized methods; the flow
// functions have moderate skew (assignments dominate real bytecode).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildSoot(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 28657 + 13);

  MethodId Init = makeInitPhase(PB, "soot", 530, RNG);
  MethodId Tail = makeColdTail(PB, "soot", 640, RNG);

  ClassFamily Stmts = makeClassFamily(PB, "Stmt", 6);
  SelectorId Flow = PB.addSelector("flowThrough", /*NumArgs=*/2);
  implementSelector(PB, Stmts, Flow, {14, 10, 18, 8, 25, 12},
                    {7, 4, 9, 3, 12, 5});

  MethodId Merge = makeStaticLeaf(PB, "mergeFlowSets", 16, 2, 8);
  MethodId Enqueue = makeStaticLeaf(PB, "enqueueSuccs", 7, 1, 2);
  MethodId Widen = makeStaticLeaf(PB, "widenState", 21, 1, 10);

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    // Locals: 0 counter, 1 checksum, 2 scratch, 3 state, 4..9 refs.
    MB.invokeStatic(Init).istore(1);
    emitReceiverInit(MB, Stmts.Subclasses, /*FirstSlot=*/4);
    // assign 6/16, invoke 4/16, if 3/16, goto 1/16, return 1/16, id 1/16
    std::vector<WeightedRef> Pick = {{4, 6},  {5, 10}, {6, 13},
                                     {7, 14}, {8, 15}, {9, 16}};

    int64_t Units = scaleIterations(Size, 29'000);
    emitCountedLoop(MB, /*CounterSlot=*/0, Units, [&] {
      MB.work(30); // worklist pop + unit decode
      MB.iload(0).iconst(15).iand().istore(2);
      emitPickReceiver(MB, 2, Pick, 16);
      MB.iload(0).invokeVirtual(Flow).istore(3);

      MB.iload(3).iload(1).invokeStatic(Merge).istore(3);
      Label NoWiden = MB.newLabel();
      MB.iload(0).iconst(127).iand().ifNe(NoWiden);
      MB.iload(3).invokeStatic(Widen).istore(3);
      MB.bind(NoWiden);
      MB.iload(3).invokeStatic(Enqueue).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
