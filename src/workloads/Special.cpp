//===- workloads/Special.cpp - Figure 1 and the §4 adversary ------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildFigure1(int32_t NonCallWork, int64_t Iterations) {
  ProgramBuilder PB;

  // Two short methods, exactly as in the paper's example. They are made
  // non-trivial (padded) so level-0 trivial inlining leaves them alone.
  MethodId Call1 = makeStaticLeaf(PB, "call_1", /*WorkCycles=*/4,
                                  /*NumIntArgs=*/1, /*PadOps=*/6);
  MethodId Call2 = makeStaticLeaf(PB, "call_2", /*WorkCycles=*/4,
                                  /*NumIntArgs=*/1, /*PadOps=*/6);

  MethodId Main = PB.declareStatic("main");
  MethodBuilder MB = PB.defineMethod(Main);
  MB.iconst(0).istore(1);
  emitCountedLoop(MB, /*CounterSlot=*/0, Iterations, [&] {
    // "Long sequence of non-calls" — the getfield/putfield stretch.
    MB.work(NonCallWork);
    // "Two short calls."
    MB.iload(0).invokeStatic(Call1).istore(1);
    MB.iload(1).invokeStatic(Call2).istore(1);
  });
  MB.iload(1).print();
  MB.finish();
  return PB.finish(Main);
}

Program wl::buildAdversary(uint32_t CallsPerBurst, int64_t Iterations) {
  ProgramBuilder PB;

  // decoy() is always the first call after a quiet stretch; victim()
  // makes up the rest of the burst. With SkipPolicy::Fixed and
  // Stride * SamplesPerTick ≡ alignment of the burst, the profiling
  // window keeps sampling the same positions of the burst; randomized
  // initial skips give every call an equal chance (§4).
  MethodId Decoy = makeStaticLeaf(PB, "decoy", 4, 1, 4);
  MethodId Victim = makeStaticLeaf(PB, "victim", 4, 1, 4);

  MethodId Main = PB.declareStatic("main");
  MethodBuilder MB = PB.defineMethod(Main);
  MB.iconst(0).istore(1);
  emitCountedLoop(MB, /*CounterSlot=*/0, Iterations, [&] {
    MB.work(600); // quiet stretch so each tick lands here
    MB.iload(0).invokeStatic(Decoy).istore(1);
    for (uint32_t C = 1; C < CallsPerBurst; ++C)
      MB.iload(1).invokeStatic(Victim).istore(1);
  });
  MB.iload(1).print();
  MB.finish();
  return PB.finish(Main);
}
