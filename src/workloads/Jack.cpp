//===- workloads/Jack.cpp - SPECjvm98 _228_jack analogue ----------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// jack is a parser generator: a scanner/parser loop where each token is
// classified through a virtual `consume` over token kinds (identifier,
// number, punctuation, keyword, whitespace — heavily skewed toward
// identifiers and whitespace), followed by grammar actions of varying
// weight. Call density is moderate; the scan stretches between tokens
// give the timer sampler its Figure-1-style bias.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildJack(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 65537 + 7);

  MethodId Init = makeInitPhase(PB, "jack", 320, RNG);
  MethodId Tail = makeColdTail(PB, "jack", 128, RNG);

  ClassFamily Tokens = makeClassFamily(PB, "Token", 5);
  SelectorId Consume = PB.addSelector("consume", /*NumArgs=*/2);
  implementSelector(PB, Tokens, Consume, {7, 9, 5, 15, 4},
                    {3, 5, 2, 9, 1});

  MethodId Reduce = makeStaticLeaf(PB, "reduceRule", 18, 2, 8);
  MethodId Shift = makeStaticLeaf(PB, "shiftState", 6, 1, 2);

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    // Locals: 0 counter, 1 checksum, 2 scratch, 3 token val, 4..8 refs.
    MB.invokeStatic(Init).istore(1);
    emitReceiverInit(MB, Tokens.Subclasses, /*FirstSlot=*/4);
    // identifiers 6/16, whitespace 5/16, punct 3/16, number 1/16, kw 1/16
    std::vector<WeightedRef> Pick = {
        {4, 6}, {5, 11}, {6, 14}, {7, 15}, {8, 16}};

    int64_t NumTokens = scaleIterations(Size, 36'000);
    emitCountedLoop(MB, /*CounterSlot=*/0, NumTokens, [&] {
      MB.work(70); // scanning to the next token boundary
      MB.iload(0).iconst(15).iand().istore(2);
      emitPickReceiver(MB, 2, Pick, 16);
      MB.iload(0).invokeVirtual(Consume).istore(3);

      // Parser action: shift mostly, reduce every 8th token.
      Label DoReduce = MB.newLabel();
      Label Done = MB.newLabel();
      MB.iload(0).iconst(7).iand().ifEq(DoReduce);
      MB.iload(3).invokeStatic(Shift).jump(Done);
      MB.bind(DoReduce).iload(3).iload(1).invokeStatic(Reduce);
      MB.bind(Done).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
