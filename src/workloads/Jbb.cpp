//===- workloads/Jbb.cpp - SPECjbb2000 analogue ---------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// jbb emulates a three-tier Java business application: multiple
// warehouse threads run a transaction mix (new-order dominant, then
// payment, order-status, delivery, stock-level), each transaction
// allocating order objects (GC pressure exercises the overloaded-flag
// disambiguation of Figure 4) and calling through a moderately skewed
// virtual `execute` plus per-transaction static helpers.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildJbb(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 3271 + 12);

  MethodId Init = makeInitPhase(PB, "jbb", 370, RNG);
  MethodId Tail = makeColdTail(PB, "jbb", 192, RNG);

  ClassFamily Tx = makeClassFamily(PB, "Transaction", 5);
  SelectorId Execute = PB.addSelector("execute", /*NumArgs=*/2);
  implementSelector(PB, Tx, Execute, {22, 15, 9, 12, 18},
                    {9, 7, 4, 5, 8});

  ClassId Order = PB.addClass("Order", InvalidClassId, 4);

  MethodId UpdateStock = makeStaticLeaf(PB, "updateStock", 10, 2, 5);
  MethodId RecordHistory = makeStaticLeaf(PB, "recordHistory", 8, 1, 3);

  // warehouseLoop(count): the transaction mix, shared by all threads.
  MethodId Warehouse = PB.declareStatic("warehouseLoop", {ValKind::Int},
                                        /*HasResult=*/true, ValKind::Int);
  {
    MethodBuilder MB = PB.defineMethod(Warehouse);
    // Locals: 0 count (runtime loop bound), 1 acc, 2 scratch,
    // 3 result, 4..8 tx refs, 9 order ref.
    MB.iconst(0).istore(1);
    emitReceiverInit(MB, Tx.Subclasses, /*FirstSlot=*/4);

    Label Head = MB.newLabel();
    Label Exit = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);

    // TPC-C-like mix out of 16: new-order 7, payment 5, order-status 2,
    // delivery 1, stock-level 1.
    MB.iload(0).iconst(15).iand().istore(2);
    std::vector<WeightedRef> Pick = {
        {4, 7}, {5, 12}, {6, 14}, {7, 15}, {8, 16}};
    emitPickReceiver(MB, 2, Pick, 16);
    MB.iload(0).invokeVirtual(Execute).istore(3);

    // Each transaction records an order object (allocation pressure).
    MB.newObject(Order).astore(9);
    MB.aload(9).iload(3).putField(0);
    MB.aload(9).getField(0).iload(0).invokeStatic(UpdateStock).istore(3);
    MB.iload(3).invokeStatic(RecordHistory).iload(1).iadd().istore(1);
    MB.iload(0).invokeStatic(Tail)
        .iload(1).iadd().istore(1);

    MB.iinc(0, -1).jump(Head);
    MB.bind(Exit).iload(1).iret();
    MB.finish();
  }

  int64_t Transactions = scaleIterations(Size, 30'000);
  MethodId WorkerA = PB.declareStatic("warehouseThread");
  {
    MethodBuilder MB = PB.defineMethod(WorkerA);
    MB.iconst(Transactions / 3).invokeStatic(Warehouse).print();
    MB.finish();
  }

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Init).istore(1);
    MB.spawn(WorkerA).spawn(WorkerA);
    MB.iconst(Transactions / 3).invokeStatic(Warehouse)
        .iload(1).iadd().print();
    MB.finish();
  }
  return PB.finish(Main);
}
