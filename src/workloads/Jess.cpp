//===- workloads/Jess.cpp - SPECjvm98 _202_jess analogue --------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// jess is an expert-system shell: one of the more object-oriented
// SPECjvm98 programs, with very high call density through small virtual
// methods (rule match/fire) over a *skewed* receiver distribution — a
// handful of rules fire constantly, a tail rarely. The paper reports
// jess among the benchmarks where profile-directed inlining matters
// most in Jikes RVM (5% from the new inliner alone). The hot virtual
// site here has a 8-class receiver set with roughly Zipf weights, and
// the match result drives calls to two further small static helpers —
// the edge weights and the per-site distribution shape are both things
// the profilers must get right.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildJess(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 31337 + 2);

  MethodId Init = makeInitPhase(PB, "jess", 360, RNG);
  MethodId Tail = makeColdTail(PB, "jess", 256, RNG);

  ClassFamily Rules = makeClassFamily(PB, "Rule", 8);
  SelectorId Match = PB.addSelector("match", /*NumArgs=*/2);
  implementSelector(PB, Rules, Match,
                    /*WorkCycles=*/{6, 9, 7, 12, 8, 10, 14, 6},
                    /*PadOps=*/{3, 5, 2, 8, 4, 6, 10, 2});

  MethodId Assert = makeStaticLeaf(PB, "assertFact", 10, 1, 5);
  MethodId Retract = makeStaticLeaf(PB, "retractFact", 9, 1, 4);

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    // Locals: 0 counter, 1 checksum, 2 scratch selector, 3 match result,
    // refs 4..9 receivers.
    MB.invokeStatic(Init).istore(1);
    std::vector<ClassId> Hot(Rules.Subclasses.begin(),
                             Rules.Subclasses.begin() + 6);
    emitReceiverInit(MB, Hot, /*FirstSlot=*/4);

    // Receiver weights out of 16: 7/4/2/1/1/1 — the top rule takes 44%
    // of the distribution (above the new inliner's 40% bar), the second
    // 25% (below it).
    std::vector<WeightedRef> Pick = {{4, 7},  {5, 11}, {6, 13},
                                     {7, 14}, {8, 15}, {9, 16}};

    int64_t Facts = scaleIterations(Size, 55'000);
    emitCountedLoop(MB, /*CounterSlot=*/0, Facts, [&] {
      MB.iload(0).iconst(15).iand().istore(2);
      emitPickReceiver(MB, 2, Pick, 16);
      MB.iload(0).invokeVirtual(Match).istore(3);

      // Fire: asserted or retracted based on the match result.
      Label Odd = MB.newLabel();
      Label Done = MB.newLabel();
      MB.iload(3).iconst(1).iand().ifNe(Odd);
      MB.iload(3).invokeStatic(Assert).jump(Done);
      MB.bind(Odd).iload(3).invokeStatic(Retract);
      MB.bind(Done).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
