//===- workloads/Compress.cpp - SPECjvm98 _201_compress analogue ------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// compress is the suite's least object-oriented benchmark: a tight
// LZW-style kernel dominated by straight-line table manipulation with
// *low call density* — long stretches of non-call work punctuated by a
// few short helper calls (hash, encode, and an occasional flush). This
// is the Figure 1 shape embedded in a real benchmark: timer-based
// samples land in the work stretch and get attributed to whichever call
// prologue runs next. It is also the one benchmark where the paper
// found the base system occasionally matching or beating CBS
// (compress-large), because with so few distinct edges even a biased
// sampler finds them all eventually.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildCompress(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 7919 + 1);

  MethodId Init = makeInitPhase(PB, "compress", 150, RNG);
  MethodId Tail = makeColdTail(PB, "compress", 64, RNG);

  // Short helpers: small enough that profile-directed inlining wants
  // them, hot enough that missing them costs.
  MethodId Hash = makeStaticLeaf(PB, "hashCode", /*WorkCycles=*/8,
                                 /*NumIntArgs=*/1, /*PadOps=*/2);
  MethodId Encode = makeStaticLeaf(PB, "encodeByte", /*WorkCycles=*/12,
                                   /*NumIntArgs=*/2, /*PadOps=*/4);
  MethodId Flush = makeStaticLeaf(PB, "flushBits", /*WorkCycles=*/30,
                                  /*NumIntArgs=*/1, /*PadOps=*/8);

  // compressBlock(block): the kernel. A long scan stretch, a hash, more
  // scanning, an encode, and a flush every 32nd block.
  MethodId Block = PB.declareStatic("compressBlock", {ValKind::Int},
                                    /*HasResult=*/true, ValKind::Int);
  {
    MethodBuilder MB = PB.defineMethod(Block);
    int32_t Scan = 900 + static_cast<int32_t>(RNG.nextBelow(200));
    MB.work(Scan);                                  // dictionary scan
    MB.iload(0).invokeStatic(Hash).istore(1);       // h = hash(block)
    MB.work(Scan / 2);                              // match extension
    MB.iload(1).iload(0).invokeStatic(Encode).istore(2);
    Label NoFlush = MB.newLabel();
    MB.iload(0).iconst(31).iand().ifNe(NoFlush);
    MB.iload(2).invokeStatic(Flush).istore(2);
    MB.bind(NoFlush).iload(2).iret();
    MB.finish();
  }

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Init).istore(1); // checksum
    int64_t Blocks = scaleIterations(Size, 4000);
    emitCountedLoop(MB, /*CounterSlot=*/0, Blocks, [&] {
      MB.iload(0).invokeStatic(Block).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
