//===- workloads/Phased.cpp - a program whose hot set shifts mid-run ------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// §3.2's critique of code-patching profilers applies to any short
// profiling window: "Using such a short profiling window is dangerous
// because it increases the probability that the profile captures a
// short burst of non-representative behavior." And §1 motivates CBS by
// its *continuous* collection "rather than only profiling a particular
// time window".
//
// This program makes the danger concrete: it runs two equally long
// phases with disjoint hot call sets (phase A exercises one family of
// handlers and helpers, phase B a different one). A profiler that stops
// sampling early — or that never forgets — describes phase A forever;
// a continuous profiler with decay tracks the shift.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildPhased(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 52361 + 14);

  MethodId Init = makeInitPhase(PB, "phased", 200, RNG);

  // Phase A: a virtual handler family plus static helpers.
  ClassFamily FamilyA = makeClassFamily(PB, "AlphaHandler", 4);
  SelectorId HandleA = PB.addSelector("handleAlpha", 2);
  implementSelector(PB, FamilyA, HandleA, {8, 12, 6, 10}, {4, 6, 2, 5});
  MethodId HelpA1 = makeStaticLeaf(PB, "alphaEncode", 12, 1, 6);
  MethodId HelpA2 = makeStaticLeaf(PB, "alphaFlush", 9, 1, 4);

  // Phase B: disjoint classes, selector, and helpers.
  ClassFamily FamilyB = makeClassFamily(PB, "BetaHandler", 4);
  SelectorId HandleB = PB.addSelector("handleBeta", 2);
  implementSelector(PB, FamilyB, HandleB, {10, 7, 14, 9}, {5, 3, 8, 4});
  MethodId HelpB1 = makeStaticLeaf(PB, "betaLookup", 11, 1, 5);
  MethodId HelpB2 = makeStaticLeaf(PB, "betaMerge", 8, 1, 3);

  auto makePhaseLoop = [&](const char *Name, const ClassFamily &Family,
                           SelectorId Sel, MethodId Help1, MethodId Help2) {
    MethodId Id = PB.declareStatic(Name, {ValKind::Int},
                                   /*HasResult=*/true, ValKind::Int);
    MethodBuilder MB = PB.defineMethod(Id);
    // Locals: 0 count, 1 acc, 2 scratch, 3 result, 4..7 refs.
    MB.iconst(0).istore(1);
    emitReceiverInit(MB, Family.Subclasses, /*FirstSlot=*/4);
    Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    MB.work(45);
    MB.iload(0).iconst(15).iand().istore(2);
    std::vector<WeightedRef> Pick = {{4, 8}, {5, 12}, {6, 14}, {7, 16}};
    emitPickReceiver(MB, 2, Pick, 16);
    MB.iload(0).invokeVirtual(Sel).istore(3);
    MB.iload(3).invokeStatic(Help1).istore(3);
    Label SkipFlush = MB.newLabel();
    MB.iload(0).iconst(7).iand().ifNe(SkipFlush);
    MB.iload(3).invokeStatic(Help2).istore(3);
    MB.bind(SkipFlush).iload(1).iload(3).iadd().istore(1);
    MB.iinc(0, -1).jump(Head);
    MB.bind(Exit).iload(1).iret();
    MB.finish();
    return Id;
  };

  MethodId PhaseA =
      makePhaseLoop("phaseAlpha", FamilyA, HandleA, HelpA1, HelpA2);
  MethodId PhaseB =
      makePhaseLoop("phaseBeta", FamilyB, HandleB, HelpB1, HelpB2);

  int64_t PerPhase = scaleIterations(Size, 30'000);
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Init).istore(1);
    MB.iconst(PerPhase).invokeStatic(PhaseA).iload(1).iadd().istore(1);
    MB.iconst(PerPhase).invokeStatic(PhaseB).iload(1).iadd().istore(1);
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
