//===- workloads/Patterns.h - Workload construction patterns ----*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reusable generators for the synthetic benchmark programs. Each paper
/// benchmark is a composition of these patterns with parameters chosen
/// to reproduce the calling structure that drives the paper's results:
/// call density, receiver-class skew at virtual sites, recursion depth,
/// phase changes, and a one-shot initialization phase touching many
/// unique methods.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_WORKLOADS_PATTERNS_H
#define CBSVM_WORKLOADS_PATTERNS_H

#include "bytecode/Builder.h"
#include "support/Random.h"

#include <functional>
#include <string>
#include <vector>

namespace cbs::wl {

/// for (i = Count; i > 0; --i) Body(); using \p CounterSlot for i. The
/// loop counter counts down and is visible to the body (e.g. for
/// modular receiver picks).
void emitCountedLoop(bc::MethodBuilder &MB, uint32_t CounterSlot,
                     int64_t Count, const std::function<void()> &Body);

/// A static leaf method: Work(WorkCycles), then sums its \p NumIntArgs
/// integer arguments with a constant and returns the result. \p PadOps
/// extra iconst/iadd pairs inflate the body size (2 bytes + 1 byte
/// each... 3 bytes per pair) to steer inliner size thresholds.
bc::MethodId makeStaticLeaf(bc::ProgramBuilder &PB, std::string Name,
                            int32_t WorkCycles, uint32_t NumIntArgs = 1,
                            uint32_t PadOps = 0);

/// A family of classes: one base plus \p NumSubclasses subclasses, each
/// with \p NumFields own fields.
struct ClassFamily {
  bc::ClassId Base = bc::InvalidClassId;
  std::vector<bc::ClassId> Subclasses;
};

ClassFamily makeClassFamily(bc::ProgramBuilder &PB, const std::string &Stem,
                            uint32_t NumSubclasses, uint32_t NumFields = 2);

/// Implements \p Selector (signature: receiver + one int, returns int)
/// on every subclass of \p Family as a leaf: Work(WorkCycles[i]),
/// result derived from the int argument. WorkCycles/PadOps are indexed
/// per subclass (wrapping). Returns the method ids.
std::vector<bc::MethodId>
implementSelector(bc::ProgramBuilder &PB, const ClassFamily &Family,
                  bc::SelectorId Selector,
                  const std::vector<int32_t> &WorkCycles,
                  const std::vector<uint32_t> &PadOps = {});

/// Allocates one instance of each class into consecutive ref slots
/// starting at \p FirstSlot.
void emitReceiverInit(bc::MethodBuilder &MB,
                      const std::vector<bc::ClassId> &Classes,
                      uint32_t FirstSlot);

/// A weighted receiver pick: assuming \p SelectorSlot holds a value in
/// [0, Mod), leaves on the stack the ref from the first entry whose
/// cumulative threshold exceeds it. Thresholds must be increasing and
/// end at Mod. Weights out of Mod model the paper's skewed receiver
/// distributions.
struct WeightedRef {
  uint32_t RefSlot;
  uint32_t CumulativeThreshold;
};
void emitPickReceiver(bc::MethodBuilder &MB, uint32_t SelectorSlot,
                      const std::vector<WeightedRef> &Choices, uint32_t Mod);

/// A wide set of distinct, individually-cold call edges that together
/// carry a meaningful share of the profile: dispatch(sel) binary-
/// searches sel in [0, Count) and calls the matching one of \p Count
/// padded leaf methods. Real programs' DCGs have exactly this long
/// tail — hundreds of edges each well under 1% of total weight — and
/// it is what bounds sampled-profile accuracy: with few samples the
/// tail is mostly missed (timer), with a strided window it is covered
/// (CBS). Returns the dispatch method (one int argument, int result).
bc::MethodId makeColdTail(bc::ProgramBuilder &PB, const std::string &Stem,
                          uint32_t Count, RandomEngine &RNG);

/// The one-shot initialization phase: \p Count unique tiny static
/// methods, each called exactly once by the returned init method (which
/// returns their checksum). Drives the paper's "methods executed"
/// counts and penalizes profilers that only watch startup or that delay
/// until optimization.
bc::MethodId makeInitPhase(bc::ProgramBuilder &PB, const std::string &Stem,
                           uint32_t Count, RandomEngine &RNG);

/// Iteration count scaling for the paper's two input sizes plus the
/// effectively-endless steady-state configuration used by Figure 5.
enum class InputSize { Small, Large, Steady };

int64_t scaleIterations(InputSize Size, int64_t SmallIterations);

const char *inputSizeName(InputSize Size);

} // namespace cbs::wl

#endif // CBSVM_WORKLOADS_PATTERNS_H
