//===- workloads/Ipsixql.cpp - ipsixql analogue --------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// ipsixql provides persistent XML database services: query evaluation
// is a recursive walk over a node tree, where element/text/attribute
// nodes answer a virtual `matches` query and element nodes recurse into
// children. Predicate evaluation calls into small static helpers. The
// recursive virtual dispatch makes the *caller context* of the hot
// edges non-trivial — samples at different stack depths must still
// attribute the same (site, callee) edge.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildIpsixql(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 92821 + 8);

  MethodId Init = makeInitPhase(PB, "ipsixql", 290, RNG);
  MethodId Tail = makeColdTail(PB, "ipsixql", 128, RNG);

  ClassId Node = PB.addClass("XmlNode", InvalidClassId, 2);
  ClassId Element = PB.addClass("Element", Node, 2);
  ClassId Text = PB.addClass("Text", Node, 1);
  ClassId Attr = PB.addClass("Attribute", Node, 1);

  SelectorId Matches = PB.addSelector("matches", /*NumArgs=*/2);
  MethodId EvalPred = makeStaticLeaf(PB, "evalPredicate", 9, 2, 4);
  MethodId Collate = makeStaticLeaf(PB, "collateResult", 12, 1, 6);

  // Leaf matches: text and attribute nodes.
  for (auto [C, W] : {std::pair{Text, 8}, std::pair{Attr, 11}}) {
    MethodId Id = PB.declareVirtual(C, Matches, "", {},
                                    /*HasResult=*/true, ValKind::Int);
    MethodBuilder MB = PB.defineMethod(Id);
    MB.work(W).iload(1).iconst(5).imul().iconst(0x7FF).iand().iret();
    MB.finish();
  }

  // queryNode(depth): recursive descent standing in for
  // Element::matches recursing into children (the receiver set at the
  // inner site is skewed: text 9/16, attr 4/16, element 3/16).
  MethodId Query = PB.declareStatic("queryNode", {ValKind::Int},
                                    /*HasResult=*/true, ValKind::Int);
  // Element::matches defers to queryNode (mutual recursion through the
  // virtual layer).
  {
    MethodId Id = PB.declareVirtual(Element, Matches, "", {},
                                    /*HasResult=*/true, ValKind::Int);
    MethodBuilder MB = PB.defineMethod(Id);
    MB.work(6).iload(1).iconst(1).isub().invokeStatic(Query).iret();
    MB.finish();
  }
  {
    MethodBuilder MB = PB.defineMethod(Query);
    // Locals: 0 depth, 1 acc, 2 j, 3 scratch, 4..6 refs.
    Label Leaf = MB.newLabel();
    MB.iload(0).ifLe(Leaf);
    MB.newObject(Text).astore(4);
    MB.newObject(Attr).astore(5);
    MB.newObject(Element).astore(6);
    MB.iconst(0).istore(1);
    emitCountedLoop(MB, /*CounterSlot=*/2, 4, [&] {
      MB.iload(2).iload(0).imul().iconst(15).iand().istore(3);
      std::vector<WeightedRef> Pick = {{4, 9}, {5, 13}, {6, 16}};
      emitPickReceiver(MB, 3, Pick, 16);
      MB.iload(0).invokeVirtual(Matches).istore(3);
      MB.iload(3).iload(2).invokeStatic(EvalPred).iload(1).iadd()
          .istore(1);
    });
    MB.iload(1).invokeStatic(Collate).iret();
    MB.bind(Leaf).work(5).iconst(2).iret();
    MB.finish();
  }

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Init).istore(1);
    int64_t Queries = scaleIterations(Size, 9'000);
    emitCountedLoop(MB, /*CounterSlot=*/0, Queries, [&] {
      MB.iconst(3).invokeStatic(Query).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
      MB.work(140); // result serialization between queries
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
