//===- workloads/Patterns.cpp - Workload construction patterns --------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Patterns.h"

#include <cassert>

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

void wl::emitCountedLoop(MethodBuilder &MB, uint32_t CounterSlot,
                         int64_t Count, const std::function<void()> &Body) {
  assert(Count >= 0 && Count <= INT32_MAX && "loop count out of range");
  MB.iconst(Count).istore(CounterSlot);
  Label Head = MB.newLabel();
  Label Exit = MB.newLabel();
  MB.bind(Head).iload(CounterSlot).ifLe(Exit);
  Body();
  MB.iinc(CounterSlot, -1).jump(Head).bind(Exit);
}

MethodId wl::makeStaticLeaf(ProgramBuilder &PB, std::string Name,
                            int32_t WorkCycles, uint32_t NumIntArgs,
                            uint32_t PadOps) {
  std::vector<ValKind> Args(NumIntArgs, ValKind::Int);
  MethodId Id = PB.declareStatic(std::move(Name), std::move(Args),
                                 /*HasResult=*/true, ValKind::Int);
  MethodBuilder MB = PB.defineMethod(Id);
  if (WorkCycles > 0)
    MB.work(WorkCycles);
  MB.iconst(7);
  for (uint32_t A = 0; A != NumIntArgs; ++A) {
    MB.iload(A).iadd();
  }
  for (uint32_t Pad = 0; Pad != PadOps; ++Pad)
    MB.iconst(static_cast<int32_t>(Pad) + 1).ixor();
  MB.iret();
  MB.finish();
  return Id;
}

ClassFamily wl::makeClassFamily(ProgramBuilder &PB, const std::string &Stem,
                                uint32_t NumSubclasses, uint32_t NumFields) {
  ClassFamily Family;
  Family.Base = PB.addClass(Stem, InvalidClassId, NumFields);
  for (uint32_t I = 0; I != NumSubclasses; ++I)
    Family.Subclasses.push_back(
        PB.addClass(Stem + std::to_string(I), Family.Base, NumFields));
  return Family;
}

std::vector<MethodId>
wl::implementSelector(ProgramBuilder &PB, const ClassFamily &Family,
                      SelectorId Selector,
                      const std::vector<int32_t> &WorkCycles,
                      const std::vector<uint32_t> &PadOps) {
  assert(!WorkCycles.empty() && "need at least one work amount");
  std::vector<MethodId> Methods;
  for (size_t I = 0, E = Family.Subclasses.size(); I != E; ++I) {
    MethodId Id = PB.declareVirtual(Family.Subclasses[I], Selector,
                                    /*Name=*/"", /*ExtraKinds=*/{},
                                    /*HasResult=*/true, ValKind::Int);
    MethodBuilder MB = PB.defineMethod(Id);
    int32_t Work = WorkCycles[I % WorkCycles.size()];
    if (Work > 0)
      MB.work(Work);
    MB.iload(1).iconst(static_cast<int32_t>(I) + 3).iadd();
    uint32_t Pad = PadOps.empty() ? 0 : PadOps[I % PadOps.size()];
    for (uint32_t K = 0; K != Pad; ++K)
      MB.iconst(static_cast<int32_t>(K) + 1).ixor();
    MB.iret();
    MB.finish();
    Methods.push_back(Id);
  }
  return Methods;
}

void wl::emitReceiverInit(MethodBuilder &MB,
                          const std::vector<ClassId> &Classes,
                          uint32_t FirstSlot) {
  for (size_t I = 0, E = Classes.size(); I != E; ++I)
    MB.newObject(Classes[I]).astore(FirstSlot + static_cast<uint32_t>(I));
}

void wl::emitPickReceiver(MethodBuilder &MB, uint32_t SelectorSlot,
                          const std::vector<WeightedRef> &Choices,
                          uint32_t Mod) {
  assert(!Choices.empty() && "no receivers to pick from");
  assert(Choices.back().CumulativeThreshold == Mod &&
         "thresholds must end at Mod");
  if (Choices.size() == 1) {
    MB.aload(Choices[0].RefSlot);
    return;
  }
  std::vector<Label> Hit(Choices.size() - 1);
  Label Merge = MB.newLabel();
  for (size_t I = 0, E = Choices.size() - 1; I != E; ++I) {
    Hit[I] = MB.newLabel();
    MB.iload(SelectorSlot)
        .iconst(static_cast<int32_t>(Choices[I].CumulativeThreshold))
        .ifICmpLt(Hit[I]);
  }
  MB.aload(Choices.back().RefSlot).jump(Merge);
  for (size_t I = 0, E = Choices.size() - 1; I != E; ++I)
    MB.bind(Hit[I]).aload(Choices[I].RefSlot).jump(Merge);
  MB.bind(Merge);
}

MethodId wl::makeColdTail(ProgramBuilder &PB, const std::string &Stem,
                          uint32_t Count, RandomEngine &RNG) {
  assert(Count >= 8 && "tail needs at least 8 leaves for its tiers");
  std::vector<MethodId> Leaves;
  Leaves.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    MethodId Id = PB.declareStatic(Stem + "_u" + std::to_string(I), {},
                                   /*HasResult=*/true, ValKind::Int);
    MethodBuilder MB = PB.defineMethod(Id);
    MB.work(static_cast<int32_t>(4 + RNG.nextBelow(8)))
        .iconst(static_cast<int32_t>(I * 40503u & 0xFFFF));
    // Keep the leaves above the trivial-inlining threshold so their
    // edges stay visible to the profilers.
    for (uint32_t K = 0; K != 4; ++K)
      MB.iconst(static_cast<int32_t>(K + I + 1)).ixor();
    MB.iret();
    MB.finish();
    Leaves.push_back(Id);
  }

  // dispatch(i) — i is the caller's raw loop counter. Two tiers:
  //   - odd i: a *mid-tier* call into leaves [0, Count/8): each such
  //     edge carries a few tenths of a percent of total weight — heavy
  //     enough that an accurate profile resolves every one, light
  //     enough that a ~200-sample timer profile misses a good share of
  //     them (the edges whose suppression makes timer-quality profiles
  //     hurt under J9-style dynamic heuristics);
  //   - every 8th i: a *cold-tier* call spread over all Count leaves,
  //     each edge well under 0.05% (what the dynamic heuristics are
  //     right to skip, and what static heuristics waste compile time
  //     inlining);
  //   - otherwise no call at all.
  MethodId Dispatch = PB.declareStatic(Stem + "_dispatch", {ValKind::Int},
                                       /*HasResult=*/true, ValKind::Int);
  MethodBuilder MB = PB.defineMethod(Dispatch);
  Label End = MB.newLabel();
  Label EvenPath = MB.newLabel();
  Label ColdCall = MB.newLabel();
  Label DoDispatch = MB.newLabel();

  uint32_t MidCount = std::max(1u, Count / 8);
  MB.iload(0).iconst(1).iand().ifEq(EvenPath);
  MB.iload(0).iconst(1).ishr().iconst(static_cast<int32_t>(MidCount))
      .irem().istore(1);
  MB.jump(DoDispatch);
  MB.bind(EvenPath).iload(0).iconst(7).iand().ifEq(ColdCall);
  MB.iconst(17).iret(); // No utility call this iteration.
  MB.bind(ColdCall).iload(0).iconst(3).ishr()
      .iconst(static_cast<int32_t>(Count)).irem().istore(1);
  MB.bind(DoDispatch);

  // Binary search on the tiered selector in local 1; every leaf call
  // pushes its result and joins at End.
  std::function<void(uint32_t, uint32_t)> Emit = [&](uint32_t Lo,
                                                     uint32_t Hi) {
    if (Hi - Lo == 1) {
      MB.invokeStatic(Leaves[Lo]).jump(End);
      return;
    }
    uint32_t Mid = Lo + (Hi - Lo) / 2;
    Label Right = MB.newLabel();
    MB.iload(1).iconst(static_cast<int32_t>(Mid)).ifICmpGe(Right);
    Emit(Lo, Mid);
    MB.bind(Right);
    Emit(Mid, Hi);
  };
  Emit(0, Count);
  MB.bind(End).iret();
  MB.finish();
  return Dispatch;
}

MethodId wl::makeInitPhase(ProgramBuilder &PB, const std::string &Stem,
                           uint32_t Count, RandomEngine &RNG) {
  std::vector<MethodId> Tiny;
  Tiny.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    MethodId Id = PB.declareStatic(Stem + "_init" + std::to_string(I), {},
                                   /*HasResult=*/true, ValKind::Int);
    MethodBuilder MB = PB.defineMethod(Id);
    MB.work(static_cast<int32_t>(3 + RNG.nextBelow(24)))
        .iconst(static_cast<int32_t>(I * 2654435761u & 0xFFFF));
    // Pad the bodies past the trivial-inlining threshold: real
    // initialization methods are not three bytecodes long, and folding
    // them all into one caller would erase the init phase the paper's
    // "methods executed" counts and startup-profiling effects rely on.
    uint32_t Pads = 4 + static_cast<uint32_t>(RNG.nextBelow(5));
    for (uint32_t K = 0; K != Pads; ++K)
      MB.iconst(static_cast<int32_t>(K + I)).ixor();
    MB.iret();
    MB.finish();
    Tiny.push_back(Id);
  }

  MethodId Init = PB.declareStatic(Stem + "_init", {}, /*HasResult=*/true,
                                   ValKind::Int);
  MethodBuilder MB = PB.defineMethod(Init);
  MB.iconst(0).istore(0);
  for (MethodId Id : Tiny)
    MB.invokeStatic(Id).iload(0).iadd().istore(0);
  MB.iload(0).iret();
  MB.finish();
  return Init;
}

int64_t wl::scaleIterations(InputSize Size, int64_t SmallIterations) {
  switch (Size) {
  case InputSize::Small:
    return SmallIterations;
  case InputSize::Large:
    return SmallIterations * 5;
  case InputSize::Steady:
    return 2'000'000'000;
  }
  return SmallIterations;
}

const char *wl::inputSizeName(InputSize Size) {
  switch (Size) {
  case InputSize::Small:
    return "small";
  case InputSize::Large:
    return "large";
  case InputSize::Steady:
    return "steady";
  }
  return "?";
}
