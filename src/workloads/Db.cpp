//===- workloads/Db.cpp - SPECjvm98 _209_db analogue -------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// db performs database functions on a memory-resident address database;
// its hot loop is dominated by sorting with a comparator — a virtual
// call whose receiver distribution is heavily skewed toward one
// comparator class (~80/20 here), plus field traffic on record objects
// and a small swap helper. The inner compare loop executes several
// calls back to back, which CBS's stride separates into independent
// samples while a timer sampler keeps hitting the first compare after
// each work stretch.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildDb(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 104729 + 3);

  MethodId Init = makeInitPhase(PB, "db", 150, RNG);
  MethodId Tail = makeColdTail(PB, "db", 64, RNG);

  ClassFamily Comparators = makeClassFamily(PB, "Comparator", 2);
  SelectorId Compare = PB.addSelector("compare", /*NumArgs=*/2);
  implementSelector(PB, Comparators, Compare, /*WorkCycles=*/{9, 16},
                    /*PadOps=*/{4, 9});

  MethodId Swap = makeStaticLeaf(PB, "swapRecords", 6, 2, 1);

  // A record class with two int fields used by the scan.
  ClassId Record = PB.addClass("Record", InvalidClassId, 2);

  // sortPass(key): one shell-sort pass over a window: eight compares,
  // field updates on a record, and conditional swaps.
  MethodId Pass = PB.declareStatic("sortPass", {ValKind::Int},
                                   /*HasResult=*/true, ValKind::Int);
  {
    MethodBuilder MB = PB.defineMethod(Pass);
    // Locals: 0 key, 1 acc, 2 j, 3 scratch, 4/5 refs (comparators), 6 record.
    MB.iconst(0).istore(1);
    emitReceiverInit(MB, Comparators.Subclasses, /*FirstSlot=*/4);
    MB.newObject(Record).astore(6);
    MB.aload(6).iload(0).putField(0);

    emitCountedLoop(MB, /*CounterSlot=*/2, 8, [&] {
      // 13/16 of compares use the primary comparator.
      MB.iload(2).iconst(15).iand().istore(3);
      std::vector<WeightedRef> Pick = {{4, 13}, {5, 16}};
      emitPickReceiver(MB, 3, Pick, 16);
      MB.iload(0).iload(2).iadd().invokeVirtual(Compare).istore(3);

      Label NoSwap = MB.newLabel();
      MB.iload(3).iconst(3).iand().ifNe(NoSwap);
      MB.iload(3).iload(1).invokeStatic(Swap).istore(3);
      // record.f1 += scratch (the moved key).
      MB.aload(6);
      MB.aload(6).getField(1).iload(3).iadd();
      MB.putField(1);
      MB.bind(NoSwap).iload(1).iload(3).iadd().istore(1);
    });
    MB.iload(1).iret();
    MB.finish();
  }

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Init).istore(1);
    int64_t Passes = scaleIterations(Size, 11'000);
    emitCountedLoop(MB, /*CounterSlot=*/0, Passes, [&] {
      MB.iload(0).invokeStatic(Pass).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
      MB.work(120); // result merge / cursor bookkeeping between passes
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
