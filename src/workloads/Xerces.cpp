//===- workloads/Xerces.cpp - Apache Xerces parse analogue --------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// xerces measures a simple XML parse: a character-scanning loop that
// dispatches to content handlers (start element, end element,
// characters, attribute, comment, PI) with strong skew toward the
// characters handler, and scanning stretches between events. The
// handler bodies vary widely in size, which differentiates the three
// inline oracles: the old Jikes inliner only boosts the >1% edges, the
// new one scales thresholds smoothly, and J9's static heuristics would
// inline even the cold comment handler.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildXerces(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 48619 + 9);

  MethodId Init = makeInitPhase(PB, "xerces", 430, RNG);
  MethodId Tail = makeColdTail(PB, "xerces", 256, RNG);

  ClassFamily Handlers = makeClassFamily(PB, "Handler", 6);
  SelectorId Handle = PB.addSelector("handle", /*NumArgs=*/2);
  implementSelector(PB, Handlers, Handle, {5, 12, 10, 24, 30, 8},
                    {2, 6, 5, 11, 14, 3});

  MethodId Normalize = makeStaticLeaf(PB, "normalizeChars", 10, 1, 4);
  MethodId PushScope = makeStaticLeaf(PB, "pushScope", 8, 1, 3);

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    // Locals: 0 counter, 1 checksum, 2 scratch, 3 event val, 4..9 refs.
    MB.invokeStatic(Init).istore(1);
    emitReceiverInit(MB, Handlers.Subclasses, /*FirstSlot=*/4);
    // characters 8/16, start 3/16, end 3/16, attr 1/16, comment+PI tail.
    std::vector<WeightedRef> Pick = {{4, 8},  {5, 11}, {6, 14},
                                     {7, 15}, {8, 16}};

    int64_t Events = scaleIterations(Size, 30'000);
    emitCountedLoop(MB, /*CounterSlot=*/0, Events, [&] {
      MB.work(55); // scan to the next markup event
      MB.iload(0).iconst(15).iand().istore(2);
      emitPickReceiver(MB, 2, Pick, 16);
      MB.iload(0).invokeVirtual(Handle).istore(3);

      Label NotElement = MB.newLabel();
      Label Done = MB.newLabel();
      MB.iload(2).iconst(8).ifICmpLt(NotElement); // characters event
      MB.iload(3).invokeStatic(PushScope).jump(Done);
      MB.bind(NotElement).iload(3).invokeStatic(Normalize);
      MB.bind(Done).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
