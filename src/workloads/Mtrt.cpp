//===- workloads/Mtrt.cpp - SPECjvm98 _227_mtrt analogue ----------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// mtrt is a multithreaded raytracer: two worker threads recursively
// intersect rays against a scene graph via a virtual `intersect`
// selector over {Sphere, Box, Group}-style shapes, where Group nodes
// recurse into children. It is where the paper's J9 implementation sees
// its largest speedup from cbs-driven inlining (8.7%), and — being
// multithreaded — it exercises the thread-local sampling counters of
// §5.2.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildMtrt(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 40493 + 6);

  MethodId Init = makeInitPhase(PB, "mtrt", 230, RNG);
  MethodId Tail = makeColdTail(PB, "mtrt", 96, RNG);

  ClassId Shape = PB.addClass("Shape", InvalidClassId, 2);
  ClassId Sphere = PB.addClass("Sphere", Shape, 1);
  ClassId Box = PB.addClass("Box", Shape, 1);
  ClassId Triangle = PB.addClass("Triangle", Shape, 1);

  // intersect(shape, depth) -> hit value.
  SelectorId Intersect = PB.addSelector("intersect", /*NumArgs=*/2);

  MethodId Shade = makeStaticLeaf(PB, "shadePixel", 14, 2, 5);

  auto defineLeafShape = [&](ClassId C, int32_t Work, uint32_t Pad) {
    MethodId Id = PB.declareVirtual(C, Intersect, "", {},
                                    /*HasResult=*/true, ValKind::Int);
    MethodBuilder MB = PB.defineMethod(Id);
    MB.work(Work).iload(1).iconst(11).imul().iconst(0xFFF).iand().iret();
    for (uint32_t K = 0; K != Pad; ++K)
      (void)K; // sizes differ via work only for leaf shapes
    MB.finish();
    return Id;
  };
  defineLeafShape(Sphere, 42, 0);
  defineLeafShape(Box, 58, 0);
  defineLeafShape(Triangle, 34, 0);

  // traceRay(depth): builds the receiver set and walks it; Group-like
  // recursion is modelled by re-invoking traceRay for reflections.
  MethodId Trace = PB.declareStatic("traceRay", {ValKind::Int},
                                    /*HasResult=*/true, ValKind::Int);
  {
    MethodBuilder MB = PB.defineMethod(Trace);
    // Locals: 0 depth, 1 acc, 2 j, 3 scratch, 4..6 shape refs.
    Label Leaf = MB.newLabel();
    MB.iload(0).ifLe(Leaf);
    MB.newObject(Sphere).astore(4);
    MB.newObject(Box).astore(5);
    MB.newObject(Triangle).astore(6);
    MB.iconst(0).istore(1);
    emitCountedLoop(MB, /*CounterSlot=*/2, 3, [&] {
      // Spheres dominate the scene: 10/16, boxes 4/16, triangles 2/16.
      MB.iload(2).iload(0).iadd().iconst(15).iand().istore(3);
      std::vector<WeightedRef> Pick = {{4, 10}, {5, 14}, {6, 16}};
      emitPickReceiver(MB, 3, Pick, 16);
      MB.iload(0).invokeVirtual(Intersect).iload(1).iadd().istore(1);
    });
    // Reflection ray.
    MB.iload(0).iconst(1).isub().invokeStatic(Trace).iload(1).iadd()
        .istore(1);
    MB.iload(1).iload(0).invokeStatic(Shade).iret();
    MB.bind(Leaf).work(8).iconst(1).iret();
    MB.finish();
  }

  // Two worker threads render alternating scanlines; main renders too.
  int64_t Rays = scaleIterations(Size, 5'200);
  MethodId Worker = PB.declareStatic("renderWorker");
  {
    MethodBuilder MB = PB.defineMethod(Worker);
    MB.iconst(0).istore(1);
    emitCountedLoop(MB, /*CounterSlot=*/0, Rays / 2, [&] {
      MB.iconst(3).invokeStatic(Trace).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
    });
    MB.iload(1).print();
    MB.finish();
  }

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Init).istore(1);
    MB.spawn(Worker).spawn(Worker);
    emitCountedLoop(MB, /*CounterSlot=*/0, Rays / 2, [&] {
      MB.iconst(3).invokeStatic(Trace).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
