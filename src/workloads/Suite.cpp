//===- workloads/Suite.cpp - Benchmark registry ---------------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::wl;

const std::vector<WorkloadInfo> &wl::suite() {
  static const std::vector<WorkloadInfo> Suite = {
      {"compress", buildCompress, false},
      {"jess", buildJess, false},
      {"db", buildDb, false},
      {"javac", buildJavac, false},
      {"mpegaudio", buildMpegaudio, false},
      {"mtrt", buildMtrt, true},
      {"jack", buildJack, false},
      {"ipsixql", buildIpsixql, false},
      {"xerces", buildXerces, false},
      {"daikon", buildDaikon, false},
      {"kawa", buildKawa, false},
      {"jbb", buildJbb, true},
      {"soot", buildSoot, false},
  };
  return Suite;
}

const WorkloadInfo *wl::findWorkload(std::string_view Name) {
  for (const WorkloadInfo &W : suite())
    if (Name == W.Name)
      return &W;
  return nullptr;
}
