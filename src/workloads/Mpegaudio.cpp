//===- workloads/Mpegaudio.cpp - SPECjvm98 _222_mpegaudio analogue -----------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
//
// mpegaudio decodes MP3 audio: numeric kernels (subband synthesis,
// DCT) with long arithmetic stretches and a moderate number of hot
// calls into filter helpers. The paper reports mpegaudio as one of the
// benchmarks where profile-directed inlining matters most in Jikes RVM
// — the filter helpers are mid-sized, so whether they are inlined
// hinges on the size threshold the edge weight buys them.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cbs;
using namespace cbs::bc;
using namespace cbs::wl;

Program wl::buildMpegaudio(InputSize Size, uint64_t Seed) {
  ProgramBuilder PB;
  RandomEngine RNG(Seed * 21269 + 5);

  MethodId Init = makeInitPhase(PB, "mpegaudio", 260, RNG);
  MethodId Tail = makeColdTail(PB, "mpegaudio", 128, RNG);

  // Mid-sized numeric helpers: big enough that only a boosted (hot)
  // threshold inlines them.
  MethodId Subband = makeStaticLeaf(PB, "subbandFilter", 120, 2, 14);
  MethodId Dct = makeStaticLeaf(PB, "dct32", 180, 1, 18);
  MethodId Window = makeStaticLeaf(PB, "windowSamples", 45, 2, 6);
  MethodId Huffman = makeStaticLeaf(PB, "huffmanDecode", 25, 1, 5);

  // decodeFrame(n): the per-frame kernel.
  MethodId Frame = PB.declareStatic("decodeFrame", {ValKind::Int},
                                    /*HasResult=*/true, ValKind::Int);
  {
    MethodBuilder MB = PB.defineMethod(Frame);
    MB.iload(0).invokeStatic(Huffman).istore(1); // side info
    MB.work(260);                                // bit reservoir
    MB.iconst(0).istore(3);
    emitCountedLoop(MB, /*CounterSlot=*/2, 4, [&] {
      MB.iload(1).iload(2).invokeStatic(Subband).istore(1);
      MB.work(110); // requantization
      MB.iload(1).invokeStatic(Dct).iload(3).iadd().istore(3);
    });
    MB.iload(1).iload(3).invokeStatic(Window);
    MB.iload(3).iadd().iret();
    MB.finish();
  }

  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(Init).istore(1);
    int64_t Frames = scaleIterations(Size, 3'800);
    emitCountedLoop(MB, /*CounterSlot=*/0, Frames, [&] {
      MB.iload(0).invokeStatic(Frame).iload(1).iadd().istore(1);
      MB.iload(0).invokeStatic(Tail)
          .iload(1).iadd().istore(1);
    });
    MB.iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}
