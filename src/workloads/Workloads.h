//===- workloads/Workloads.h - The benchmark suite --------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic reproductions of the paper's benchmark suite (Table 1):
/// SPECjvm98 plus ipsixql, xerces, daikon, kawa, jbb, and soot. Each
/// builder returns a verified program whose *calling structure* mirrors
/// the original's documented character (see each .cpp's header
/// comment); small/large input sizes scale iteration counts, and the
/// steady size iterates effectively forever for the Figure 5
/// steady-state runs.
///
/// Also here: the Figure 1 pathological program (long non-call stretch
/// followed by two short calls) and the §4 adversary generator (a
/// program whose call pattern is aligned so a *fixed* Stride/Samples
/// CBS configuration keeps sampling the same call).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_WORKLOADS_WORKLOADS_H
#define CBSVM_WORKLOADS_WORKLOADS_H

#include "bytecode/Program.h"
#include "workloads/Patterns.h"

#include <string_view>
#include <vector>

namespace cbs::wl {

bc::Program buildCompress(InputSize Size, uint64_t Seed);
bc::Program buildJess(InputSize Size, uint64_t Seed);
bc::Program buildDb(InputSize Size, uint64_t Seed);
bc::Program buildJavac(InputSize Size, uint64_t Seed);
bc::Program buildMpegaudio(InputSize Size, uint64_t Seed);
bc::Program buildMtrt(InputSize Size, uint64_t Seed);
bc::Program buildJack(InputSize Size, uint64_t Seed);
bc::Program buildIpsixql(InputSize Size, uint64_t Seed);
bc::Program buildXerces(InputSize Size, uint64_t Seed);
bc::Program buildDaikon(InputSize Size, uint64_t Seed);
bc::Program buildKawa(InputSize Size, uint64_t Seed);
bc::Program buildJbb(InputSize Size, uint64_t Seed);
bc::Program buildSoot(InputSize Size, uint64_t Seed);

struct WorkloadInfo {
  const char *Name;
  bc::Program (*Build)(InputSize, uint64_t);
  bool Multithreaded;
};

/// The 13 benchmarks in Table 1 order.
const std::vector<WorkloadInfo> &suite();

/// Lookup by name; nullptr if unknown.
const WorkloadInfo *findWorkload(std::string_view Name);

/// The Figure 1 program: while (...) { <NonCallWork cycles of work>;
/// call_1(); call_2(); }. Timer sampling attributes nearly everything
/// to call_1; CBS splits the two calls evenly.
bc::Program buildFigure1(int32_t NonCallWork, int64_t Iterations);

/// A two-phase program whose hot call set shifts halfway through the
/// run (§3.2's short-window danger / §1's continuous-collection
/// motivation): phase A and phase B exercise disjoint handler families
/// and helpers. Not part of the Table 1 suite.
bc::Program buildPhased(InputSize Size, uint64_t Seed);

/// §4 adversary: a loop whose body performs exactly
/// Stride * SamplesPerTick + 1 calls, the first of which targets a
/// distinguished "decoy" method. With SkipPolicy::Fixed the window
/// opened at each tick keeps hitting the same phase of the pattern;
/// randomized initial skips break the alignment.
bc::Program buildAdversary(uint32_t CallsPerBurst, int64_t Iterations);

} // namespace cbs::wl

#endif // CBSVM_WORKLOADS_WORKLOADS_H
