//===- support/Statistics.h - Summary statistics -----------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small summary-statistics helpers used by the experiment harness. The
/// paper reports medians over 10 runs and averages over benchmarks; these
/// functions implement exactly those reductions.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_SUPPORT_STATISTICS_H
#define CBSVM_SUPPORT_STATISTICS_H

#include <vector>

namespace cbs {

/// Arithmetic mean. Returns 0 for an empty vector.
double mean(const std::vector<double> &Values);

/// Median (average of the two middle elements for even sizes). Returns 0
/// for an empty vector. Does not modify the input.
double median(std::vector<double> Values);

/// Geometric mean of strictly positive values. Returns 0 for an empty
/// vector. Asserts on non-positive inputs.
double geomean(const std::vector<double> &Values);

/// Sample standard deviation (N-1 denominator). Returns 0 for fewer than
/// two values.
double stddev(const std::vector<double> &Values);

/// Linear-interpolated percentile, \p P in [0, 100]. Returns 0 for an
/// empty vector. Does not modify the input.
double percentile(std::vector<double> Values, double P);

} // namespace cbs

#endif // CBSVM_SUPPORT_STATISTICS_H
