//===- support/TablePrinter.cpp - Fixed-width table output ----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <cassert>
#include <cstdio>

using namespace cbs;

void TablePrinter::setHeader(std::vector<std::string> Names) {
  assert(Rows.empty() && "setHeader must precede addRow");
  Header = std::move(Names);
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), /*Separator=*/false});
}

void TablePrinter::addSeparator() { Rows.push_back({{}, /*Separator=*/true}); }

static bool looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  for (char C : Cell)
    if (!(std::isdigit(static_cast<unsigned char>(C)) || C == '.' ||
          C == '-' || C == '+' || C == '%' || C == 'e' || C == 'E'))
      return false;
  return true;
}

std::string TablePrinter::render() const {
  size_t NumCols = Header.size();
  for (const Row &R : Rows)
    NumCols = std::max(NumCols, R.Cells.size());

  std::vector<size_t> Widths(NumCols, 0);
  for (size_t I = 0; I != Header.size(); ++I)
    Widths[I] = std::max(Widths[I], Header[I].size());
  for (const Row &R : Rows)
    for (size_t I = 0; I != R.Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], R.Cells[I].size());

  auto appendCell = [&](std::string &Out, const std::string &Cell, size_t W) {
    bool RightAlign = looksNumeric(Cell);
    size_t Pad = W > Cell.size() ? W - Cell.size() : 0;
    if (RightAlign)
      Out.append(Pad, ' ');
    Out += Cell;
    if (!RightAlign)
      Out.append(Pad, ' ');
  };

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;

  std::string Out;
  if (!Header.empty()) {
    for (size_t I = 0; I != NumCols; ++I) {
      const std::string &Cell = I < Header.size() ? Header[I] : std::string();
      std::string Padded = Cell;
      Padded.resize(Widths[I], ' ');
      Out += Padded;
      Out += "  ";
    }
    Out += '\n';
    Out.append(TotalWidth, '-');
    Out += '\n';
  }
  for (const Row &R : Rows) {
    if (R.Separator) {
      Out.append(TotalWidth, '-');
      Out += '\n';
      continue;
    }
    for (size_t I = 0; I != NumCols; ++I) {
      const std::string &Cell =
          I < R.Cells.size() ? R.Cells[I] : std::string();
      appendCell(Out, Cell, Widths[I]);
      Out += "  ";
    }
    Out += '\n';
  }
  return Out;
}

std::string TablePrinter::formatDouble(double Value, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}

std::string TablePrinter::formatPercent(double Value, int Digits) {
  return formatDouble(Value, Digits);
}
