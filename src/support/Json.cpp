//===- support/Json.cpp - Minimal JSON writer and parser ---------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace cbs;
using namespace cbs::json;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string json::escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void JsonWriter::beforeValue() {
  if (AfterKey) {
    AfterKey = false;
    return;
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
}

void JsonWriter::beginObject() {
  beforeValue();
  Out += '{';
  NeedComma.push_back(false);
}

void JsonWriter::endObject() {
  assert(!NeedComma.empty() && "endObject with no open container");
  NeedComma.pop_back();
  Out += '}';
}

void JsonWriter::beginArray() {
  beforeValue();
  Out += '[';
  NeedComma.push_back(false);
}

void JsonWriter::endArray() {
  assert(!NeedComma.empty() && "endArray with no open container");
  NeedComma.pop_back();
  Out += ']';
}

void JsonWriter::key(std::string_view Name) {
  assert(!AfterKey && "key after key");
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
  Out += '"';
  Out += escape(Name);
  Out += "\":";
  AfterKey = true;
}

void JsonWriter::value(std::string_view S) {
  beforeValue();
  Out += '"';
  Out += escape(S);
  Out += '"';
}

void JsonWriter::value(uint64_t V) {
  beforeValue();
  char Buf[24];
  std::snprintf(Buf, sizeof Buf, "%" PRIu64, V);
  Out += Buf;
}

void JsonWriter::value(int64_t V) {
  beforeValue();
  char Buf[24];
  std::snprintf(Buf, sizeof Buf, "%" PRId64, V);
  Out += Buf;
}

void JsonWriter::value(double V) {
  beforeValue();
  // %.17g round-trips any double; trim to the shortest exact form the
  // snprintf family offers for stable, readable output.
  char Buf[40];
  std::snprintf(Buf, sizeof Buf, "%.17g", V);
  // Prefer a shorter representation when it reparses to the same value.
  for (int Prec = 1; Prec < 17; ++Prec) {
    char Short[40];
    std::snprintf(Short, sizeof Short, "%.*g", Prec, V);
    if (std::strtod(Short, nullptr) == V) {
      Out += Short;
      return;
    }
  }
  Out += Buf;
}

void JsonWriter::value(bool V) {
  beforeValue();
  Out += V ? "true" : "false";
}

void JsonWriter::null() {
  beforeValue();
  Out += "null";
}

void JsonWriter::raw(std::string_view Token) {
  beforeValue();
  Out += Token;
}

std::string JsonWriter::take() {
  assert(NeedComma.empty() && "document has unterminated containers");
  std::string Result = std::move(Out);
  Out.clear();
  AfterKey = false;
  return Result;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(std::string_view Name) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[MemberName, Value] : Members)
    if (MemberName == Name)
      return &Value;
  return nullptr;
}

double JsonValue::numberOr(std::string_view Name, double Default) const {
  const JsonValue *V = find(Name);
  return V && V->K == Kind::Number ? V->NumVal : Default;
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  JsonParseResult run() {
    JsonParseResult Result;
    JsonValue V;
    if (!parseValue(V)) {
      Result.Error = Error;
      return Result;
    }
    skipWs();
    if (Pos != Text.size()) {
      Result.Error = at("trailing characters after document");
      return Result;
    }
    Result.Value = std::move(V);
    return Result;
  }

private:
  std::string at(const std::string &Message) {
    return "offset " + std::to_string(Pos) + ": " + Message;
  }

  bool fail(const std::string &Message) {
    if (Error.empty())
      Error = at(Message);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue &V) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(V);
    case '[':
      return parseArray(V);
    case '"':
      V.K = JsonValue::Kind::String;
      return parseString(V.Str);
    case 't':
      return parseLiteral("true", [&] {
        V.K = JsonValue::Kind::Bool;
        V.BoolVal = true;
      });
    case 'f':
      return parseLiteral("false", [&] {
        V.K = JsonValue::Kind::Bool;
        V.BoolVal = false;
      });
    case 'n':
      return parseLiteral("null", [&] { V.K = JsonValue::Kind::Null; });
    default:
      return parseNumber(V);
    }
  }

  template <typename Fn> bool parseLiteral(std::string_view Lit, Fn Apply) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return fail("invalid literal");
    Pos += Lit.size();
    Apply();
    return true;
  }

  bool parseNumber(JsonValue &V) {
    size_t Start = Pos;
    if (consume('-')) {
    }
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return fail("invalid number");
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    V.K = JsonValue::Kind::Number;
    V.Str = std::string(Text.substr(Start, Pos - Start));
    V.NumVal = std::strtod(V.Str.c_str(), nullptr);
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected '\"'");
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid \\u escape");
        }
        // The writer only emits \u00XX for control bytes; decode that
        // range and reject anything needing real UTF-16 handling.
        if (Code > 0xFF)
          return fail("\\u escape above U+00FF unsupported");
        Out += static_cast<char>(Code);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseObject(JsonValue &V) {
    consume('{');
    V.K = JsonValue::Kind::Object;
    skipWs();
    if (consume('}'))
      return true;
    while (true) {
      skipWs();
      std::string Name;
      if (!parseString(Name))
        return false;
      skipWs();
      if (!consume(':'))
        return fail("expected ':' in object");
      JsonValue Member;
      if (!parseValue(Member))
        return false;
      V.Members.emplace_back(std::move(Name), std::move(Member));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &V) {
    consume('[');
    V.K = JsonValue::Kind::Array;
    skipWs();
    if (consume(']'))
      return true;
    while (true) {
      JsonValue Element;
      if (!parseValue(Element))
        return false;
      V.Elements.push_back(std::move(Element));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Error;
};

void writeValue(const JsonValue &V, JsonWriter &W) {
  switch (V.K) {
  case JsonValue::Kind::Null:
    W.null();
    break;
  case JsonValue::Kind::Bool:
    W.value(V.BoolVal);
    break;
  case JsonValue::Kind::Number:
    W.raw(V.Str); // preserved lexeme: byte-exact round trip
    break;
  case JsonValue::Kind::String:
    W.value(V.Str);
    break;
  case JsonValue::Kind::Array:
    W.beginArray();
    for (const JsonValue &E : V.Elements)
      writeValue(E, W);
    W.endArray();
    break;
  case JsonValue::Kind::Object:
    W.beginObject();
    for (const auto &[Name, Member] : V.Members) {
      W.key(Name);
      writeValue(Member, W);
    }
    W.endObject();
    break;
  }
}

} // namespace

JsonParseResult json::parseJson(std::string_view Text) {
  return Parser(Text).run();
}

std::string json::writeJson(const JsonValue &V) {
  JsonWriter W;
  writeValue(V, W);
  return W.take();
}
