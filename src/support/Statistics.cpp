//===- support/Statistics.cpp - Summary statistics ------------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cbs;

double cbs::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double cbs::median(std::vector<double> Values) {
  if (Values.empty())
    return 0;
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return 0.5 * (Values[N / 2 - 1] + Values[N / 2]);
}

double cbs::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values) {
    assert(V > 0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double cbs::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0;
  double M = mean(Values);
  double Acc = 0;
  for (double V : Values)
    Acc += (V - M) * (V - M);
  return std::sqrt(Acc / static_cast<double>(Values.size() - 1));
}

double cbs::percentile(std::vector<double> Values, double P) {
  if (Values.empty())
    return 0;
  assert(P >= 0 && P <= 100 && "percentile out of range");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values[0];
  double Rank = P / 100.0 * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}
