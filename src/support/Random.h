//===- support/Random.h - Deterministic random numbers ----------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation. Every run of the VM or
/// an experiment is a pure function of (program, config, seed), so all
/// randomness in the repo flows through this generator rather than
/// std::random_device or hashed pointers.
///
/// The engine is xoshiro256** seeded via SplitMix64, which is fast,
/// high-quality, and trivially reproducible across platforms (unlike
/// std::mt19937 distributions, whose results are not pinned by the
/// standard for std::uniform_int_distribution).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_SUPPORT_RANDOM_H
#define CBSVM_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cbs {

/// Deterministic xoshiro256** generator with convenience distributions.
class RandomEngine {
public:
  /// Creates an engine whose entire stream is determined by \p Seed.
  explicit RandomEngine(uint64_t Seed = 0) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via SplitMix64.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero. Uses rejection sampling, so the distribution is exact.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[nextBelow(I)]);
  }

  /// Picks an index in [0, Weights.size()) with probability proportional
  /// to Weights[i]. Total weight must be positive.
  size_t pickWeighted(const std::vector<double> &Weights);

private:
  uint64_t State[4];
};

/// Samples ranks from a Zipf(s) distribution over {0, .., N-1}.
///
/// Used to model skewed receiver-class distributions at virtual call
/// sites: the paper's inliners care about whether the hottest target
/// accounts for >40% of a site's distribution, and Zipf skew is the
/// standard model for that. Sampling uses a precomputed CDF, so draws
/// are O(log N).
class ZipfDistribution {
public:
  /// Builds a distribution over \p N ranks with exponent \p S >= 0.
  /// S == 0 degenerates to uniform.
  ZipfDistribution(size_t N, double S);

  /// Draws a rank in [0, size()).
  size_t sample(RandomEngine &RNG) const;

  /// Probability mass of rank \p I.
  double probability(size_t I) const;

  size_t size() const { return CDF.size(); }

private:
  std::vector<double> CDF;
};

} // namespace cbs

#endif // CBSVM_SUPPORT_RANDOM_H
