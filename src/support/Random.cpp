//===- support/Random.cpp - Deterministic random numbers ------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <algorithm>
#include <cmath>

using namespace cbs;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void RandomEngine::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t RandomEngine::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t RandomEngine::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow(0) is meaningless");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int64_t RandomEngine::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

double RandomEngine::nextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool RandomEngine::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

size_t RandomEngine::pickWeighted(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "pickWeighted needs at least one weight");
  double Total = 0;
  for (double W : Weights) {
    assert(W >= 0 && "negative weight");
    Total += W;
  }
  assert(Total > 0 && "total weight must be positive");
  double Point = nextDouble() * Total;
  double Acc = 0;
  for (size_t I = 0, E = Weights.size(); I != E; ++I) {
    Acc += Weights[I];
    if (Point < Acc)
      return I;
  }
  return Weights.size() - 1;
}

ZipfDistribution::ZipfDistribution(size_t N, double S) {
  assert(N > 0 && "Zipf over an empty domain");
  CDF.resize(N);
  double Acc = 0;
  for (size_t I = 0; I != N; ++I) {
    Acc += 1.0 / std::pow(static_cast<double>(I + 1), S);
    CDF[I] = Acc;
  }
  for (double &V : CDF)
    V /= Acc;
}

size_t ZipfDistribution::sample(RandomEngine &RNG) const {
  double Point = RNG.nextDouble();
  auto It = std::lower_bound(CDF.begin(), CDF.end(), Point);
  if (It == CDF.end())
    return CDF.size() - 1;
  return static_cast<size_t>(It - CDF.begin());
}

double ZipfDistribution::probability(size_t I) const {
  assert(I < CDF.size() && "rank out of range");
  if (I == 0)
    return CDF[0];
  return CDF[I] - CDF[I - 1];
}
