//===- support/TablePrinter.h - Fixed-width table output ---------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-width table renderer used by the bench binaries to print
/// paper-style tables (Table 1, Table 2A/2B, Table 3) and figure series.
/// Columns auto-size to their widest cell; numeric cells are right
/// aligned, text cells left aligned.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_SUPPORT_TABLEPRINTER_H
#define CBSVM_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace cbs {

/// Accumulates rows of cells and renders them with aligned columns.
class TablePrinter {
public:
  /// Sets the column headers. Must be called before addRow.
  void setHeader(std::vector<std::string> Names);

  /// Appends a data row. Rows shorter than the header are padded with
  /// empty cells; longer rows extend the table width.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line at the current position.
  void addSeparator();

  /// Renders the table to a string, ending with a newline.
  std::string render() const;

  /// Formats \p Value with \p Digits digits after the decimal point.
  static std::string formatDouble(double Value, int Digits);

  /// Formats a percentage such as "0.3" or "38" the way the paper prints
  /// overhead/accuracy cells (fixed decimals, no % sign).
  static std::string formatPercent(double Value, int Digits = 1);

private:
  struct Row {
    std::vector<std::string> Cells;
    bool Separator = false;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace cbs

#endif // CBSVM_SUPPORT_TABLEPRINTER_H
