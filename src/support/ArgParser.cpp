//===- support/ArgParser.cpp - Strict command-line parsing -------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <system_error>

using namespace cbs::support;

ArgParser::ArgParser(int Argc, char *const *Argv)
    : Args(Argv + (Argc > 0 ? 1 : 0), Argv + Argc),
      Consumed(Args.size(), false) {}

ArgParser::ArgParser(std::vector<std::string> Arguments)
    : Args(std::move(Arguments)), Consumed(Args.size(), false) {}

void ArgParser::fail(const std::string &Message) {
  if (Handler)
    Handler(Message);
  else
    std::fprintf(stderr, "error: %s\n", Message.c_str());
  std::exit(2);
}

std::string ArgParser::positional(const char *What) {
  for (size_t I = 0; I != Args.size(); ++I)
    if (!Args[I].empty() && Args[I][0] != '-' && !Consumed[I]) {
      Consumed[I] = true;
      return Args[I];
    }
  fail(std::string("missing ") + What);
}

std::string ArgParser::option(const char *Name, const char *Default) {
  for (size_t I = 0; I + 1 < Args.size(); ++I)
    if (Args[I] == Name && !Consumed[I]) {
      Consumed[I] = Consumed[I + 1] = true;
      return Args[I + 1];
    }
  // A trailing "--opt" with no value is an error, not a silent miss.
  if (!Args.empty() && Args.back() == Name && !Consumed.back())
    fail(std::string(Name) + " requires a value");
  return Default;
}

uint64_t ArgParser::optionUInt(const char *Name, uint64_t Default, uint64_t Min,
                               uint64_t Max) {
  std::string V = option(Name, "");
  if (V.empty())
    return Default;
  const char *Begin = V.c_str();
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(Begin, &End, 10);
  if (End == Begin || *End != '\0' || !(V[0] >= '0' && V[0] <= '9'))
    fail(std::string(Name) + " expects an unsigned integer, got '" + V + "'");
  if (Parsed < Min || Parsed > Max)
    fail(std::string(Name) + " must be in [" + std::to_string(Min) + ", " +
         std::to_string(Max) + "], got '" + V + "'");
  return Parsed;
}

double ArgParser::optionDouble(const char *Name, double Default, double Min,
                               double Max) {
  std::string V = option(Name, "");
  if (V.empty())
    return Default;
  // Reject inf/nan/hex floats up front: option values are plain decimal
  // numbers.
  bool Plain = true;
  for (char C : V)
    if (!((C >= '0' && C <= '9') || C == '.' || C == '-' || C == '+' ||
          C == 'e' || C == 'E'))
      Plain = false;
  // from_chars, not strtod: the parse must not depend on the process
  // locale (under e.g. LC_NUMERIC=de_DE, strtod("0.9") stops at the
  // period and yields 0). from_chars rejects a leading '+', which we
  // accept — skip exactly one.
  const char *Begin = V.c_str();
  const char *End = Begin + V.size();
  if (Begin != End && *Begin == '+')
    ++Begin;
  double Parsed = 0.0;
  auto [Ptr, Ec] = std::from_chars(Begin, End, Parsed);
  if (!Plain || Begin == End || Ec != std::errc() || Ptr != End)
    fail(std::string(Name) + " expects a decimal number, got '" + V + "'");
  if (Parsed < Min || Parsed > Max)
    fail(std::string(Name) + " must be in [" + std::to_string(Min) + ", " +
         std::to_string(Max) + "], got '" + V + "'");
  return Parsed;
}

bool ArgParser::flag(const char *Name) {
  for (size_t I = 0; I != Args.size(); ++I)
    if (Args[I] == Name && !Consumed[I]) {
      Consumed[I] = true;
      return true;
    }
  return false;
}

bool ArgParser::present(const char *Name) const {
  for (size_t I = 0; I != Args.size(); ++I)
    if (Args[I] == Name && !Consumed[I])
      return true;
  return false;
}

void ArgParser::finish() {
  for (size_t I = 0; I != Args.size(); ++I)
    if (!Consumed[I])
      fail("unexpected argument '" + Args[I] + "'");
}

OptionGroup::~OptionGroup() = default;

void cbs::support::applyGroups(ArgParser &Args,
                               std::initializer_list<OptionGroup *> Groups) {
  for (OptionGroup *G : Groups)
    G->parse(Args);
}
