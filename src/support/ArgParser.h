//===- support/ArgParser.h - Strict command-line parsing --------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strict argument parser shared by the cbsvm driver and every bench
/// binary. Options are pulled by name, positionals in order; finish()
/// rejects anything left over, so a typo ("--job 8", "--metrics_json")
/// is a hard error in every binary rather than a silently ignored flag.
///
/// Numeric options go through optionUInt, which requires the *entire*
/// argument to lex as a decimal integer within the stated range — no
/// std::stoull-style "123abc" prefixes.
///
/// Errors route through a per-parser handler (default: print to stderr,
/// exit 2). Tests install a throwing handler to exercise rejection
/// paths in-process; the handler must not return normally.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_SUPPORT_ARGPARSER_H
#define CBSVM_SUPPORT_ARGPARSER_H

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace cbs::support {

class ArgParser {
public:
  /// Called with the error message; must exit or throw. If it does
  /// return, the parser exits(2) itself.
  using ErrorHandler = std::function<void(const std::string &)>;

  /// \p Argv[0] is the program (or subcommand) name and is skipped, so
  /// main's (Argc, Argv) works directly and a driver dispatching
  /// subcommands passes (Argc - 1, Argv + 1).
  ArgParser(int Argc, char *const *Argv);
  /// For tests: arguments only, no program name.
  explicit ArgParser(std::vector<std::string> Arguments);

  void setErrorHandler(ErrorHandler H) { Handler = std::move(H); }

  /// Next unconsumed argument that does not start with '-'; errors with
  /// "missing <What>" when there is none. Pull options before
  /// positionals: an option's value is indistinguishable from a
  /// positional until its name consumes it.
  std::string positional(const char *What);

  /// Value following \p Name, or \p Default when absent.
  std::string option(const char *Name, const char *Default);

  /// Strict decimal integer option: the whole value must parse and lie
  /// in [Min, Max].
  uint64_t optionUInt(const char *Name, uint64_t Default, uint64_t Min,
                      uint64_t Max);

  /// Strict decimal floating-point option: the whole value must lex as
  /// a finite decimal number (no inf/nan/hex, no trailing garbage) in
  /// [Min, Max]. Locale-independent: "0.9" parses as 0.9 regardless of
  /// LC_NUMERIC.
  double optionDouble(const char *Name, double Default, double Min,
                      double Max);

  /// True when \p Name is present (consumes it).
  bool flag(const char *Name);

  /// True when \p Name appears among the not-yet-consumed arguments.
  /// Does NOT consume: a validator can ask "was --stride given?" before
  /// (or instead of) pulling its value.
  bool present(const char *Name) const;

  /// Called after a command has pulled everything it understands;
  /// anything left over is a typo or an option of another command.
  void finish();

  /// Reports \p Message through the error handler.
  [[noreturn]] void fail(const std::string &Message);

private:
  std::vector<std::string> Args;
  std::vector<bool> Consumed;
  ErrorHandler Handler;
};

/// A named bundle of related options that several commands share. A
/// command registers the groups it supports and applies them in one
/// call, so an option like --profile-repo is declared (name, range,
/// default, validation) exactly once instead of being re-wired in every
/// subcommand:
///
/// \code
///   vm::VMOptionGroup VMOpts;
///   prof::ProfileRepoOptionGroup Repo;
///   support::applyGroups(Args, {&VMOpts, &Repo});
/// \endcode
///
/// parse() pulls the group's options from \p Args (same strict rules as
/// any direct pull); whatever the group stores is read by the command
/// afterwards. Groups are plain structs a command composes — there is
/// deliberately no global registry.
class OptionGroup {
public:
  virtual ~OptionGroup();

  /// Diagnostic label ("vm", "aos", "profile-repo", ...).
  virtual const char *name() const = 0;

  /// Pulls this group's options from \p Args. Errors route through the
  /// parser's error handler like any direct pull.
  virtual void parse(ArgParser &Args) = 0;
};

/// Applies each group in order (earlier groups see the arguments first,
/// which only matters if two groups claim the same option — a bug the
/// strict parser surfaces as the second pull missing its value).
void applyGroups(ArgParser &Args,
                 std::initializer_list<OptionGroup *> Groups);

} // namespace cbs::support

#endif // CBSVM_SUPPORT_ARGPARSER_H
