//===- support/Json.h - Minimal JSON writer and parser ----------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free JSON layer used by the telemetry subsystem,
/// the bench binaries' machine-readable output mode, and the cbsvm CLI:
///
///  - JsonWriter: a streaming writer with explicit begin/end calls and
///    automatic comma placement. Output is deterministic: the same call
///    sequence always produces byte-identical text (numbers are printed
///    with fixed formatting, no locale involvement).
///  - JsonValue / parseJson: a recursive-descent parser for validation
///    and round-trip tests. Numbers keep their original lexeme so a
///    parse→write round trip is byte-exact; object member order is
///    preserved.
///
/// This is not a general-purpose JSON library (no \\uXXXX decoding to
/// UTF-8, no streaming parse); it covers exactly what the repo's own
/// emitters produce plus enough validation to reject malformed files.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_SUPPORT_JSON_H
#define CBSVM_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cbs::json {

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included).
std::string escape(std::string_view S);

/// Streaming JSON writer. Usage:
/// \code
///   JsonWriter W;
///   W.beginObject();
///   W.key("cycles"); W.value(uint64_t(42));
///   W.key("edges"); W.beginArray(); W.value("a"); W.endArray();
///   W.endObject();
///   std::string Text = W.take();
/// \endcode
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Object member key; must be followed by exactly one value (or
  /// container).
  void key(std::string_view Name);

  void value(std::string_view S);
  void value(const char *S) { value(std::string_view(S)); }
  void value(uint64_t V);
  void value(int64_t V);
  void value(uint32_t V) { value(static_cast<uint64_t>(V)); }
  void value(int V) { value(static_cast<int64_t>(V)); }
  void value(double V);
  void value(bool V);
  void null();
  /// Emits \p Token verbatim as a value (caller guarantees it is valid
  /// JSON — used for round-tripping preserved number lexemes).
  void raw(std::string_view Token);

  /// Finishes and returns the document; the writer is left empty.
  std::string take();
  const std::string &str() const { return Out; }

private:
  void beforeValue();

  std::string Out;
  /// One entry per open container: true once the first element has been
  /// written (so the next one needs a comma).
  std::vector<bool> NeedComma;
  bool AfterKey = false;
};

/// A parsed JSON document node.
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool BoolVal = false;
  double NumVal = 0;
  /// Original number lexeme (Kind::Number) or string contents
  /// (Kind::String, unescaped).
  std::string Str;
  std::vector<JsonValue> Elements;                       ///< Kind::Array
  std::vector<std::pair<std::string, JsonValue>> Members; ///< Kind::Object

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  /// Object member lookup; nullptr if absent or not an object.
  const JsonValue *find(std::string_view Name) const;
  /// Convenience: member's numeric value, or \p Default.
  double numberOr(std::string_view Name, double Default) const;
};

struct JsonParseResult {
  std::optional<JsonValue> Value;
  std::string Error; ///< empty on success; else "offset N: message"

  bool ok() const { return Value.has_value(); }
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
JsonParseResult parseJson(std::string_view Text);

/// Serializes \p V compactly. A parseJson→writeJson round trip of text
/// produced by JsonWriter is byte-identical.
std::string writeJson(const JsonValue &V);

} // namespace cbs::json

#endif // CBSVM_SUPPORT_JSON_H
