//===- support/ErrorHandling.cpp - Fatal error reporting ------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace cbs;

void cbs::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "cbsvm fatal error: %s\n", Message.c_str());
  std::abort();
}

void cbs::unreachableInternal(const char *Message, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line,
               Message);
  std::abort();
}
