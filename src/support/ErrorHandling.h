//===- support/ErrorHandling.h - Fatal error reporting ----------*- C++ -*-===//
//
// Part of the CBSVM project: a reproduction of Arnold & Grove,
// "Collecting and Exploiting High-Accuracy Call Graph Profiles in
// Virtual Machines" (CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting helpers used throughout the library. Programmatic
/// errors (broken invariants) use assert/cbsUnreachable; unrecoverable
/// environment or usage errors use reportFatalError.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_SUPPORT_ERRORHANDLING_H
#define CBSVM_SUPPORT_ERRORHANDLING_H

#include <string>

namespace cbs {

/// Prints \p Message to stderr and aborts the process. Used for
/// unrecoverable errors that are not programming bugs (e.g. a malformed
/// program handed to the VM in a context where the caller did not verify
/// it first).
[[noreturn]] void reportFatalError(const std::string &Message);

/// Marks a point in the code that must never be reached if the program's
/// invariants hold. Prints \p Message with source location and aborts.
[[noreturn]] void unreachableInternal(const char *Message, const char *File,
                                      unsigned Line);

} // namespace cbs

/// Marks unreachable control flow, in the spirit of llvm_unreachable.
#define cbsUnreachable(MSG)                                                    \
  ::cbs::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // CBSVM_SUPPORT_ERRORHANDLING_H
