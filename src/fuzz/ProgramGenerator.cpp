//===- fuzz/ProgramGenerator.cpp - Seeded program generator ----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramGenerator.h"

#include "support/Json.h"
#include "support/Random.h"

using namespace cbs;
using namespace cbs::fuzz;

ShapeConfig ShapeConfig::threaded() {
  ShapeConfig Shape;
  Shape.MaxWorkerThreads = 3;
  Shape.MaxCallRepeat = 6;
  return Shape;
}

ShapeConfig ShapeConfig::longLoops() {
  ShapeConfig Shape;
  Shape.MaxLoopTrip = 40;
  Shape.MaxCallRepeat = 8;
  return Shape;
}

namespace {

/// Inclusive uniform draw in [Lo, Hi] (degenerates gracefully when the
/// knobs are inverted).
uint32_t drawRange(RandomEngine &RNG, uint32_t Lo, uint32_t Hi) {
  if (Hi <= Lo)
    return Lo;
  return Lo + static_cast<uint32_t>(RNG.nextBelow(Hi - Lo + 1));
}

ValueSrc drawValue(RandomEngine &RNG, uint32_t NumArgs) {
  ValueSrc V;
  if (NumArgs > 0 && RNG.nextBool(0.4)) {
    V.FromArg = true;
    V.Slot = static_cast<uint32_t>(RNG.nextBelow(NumArgs));
  } else {
    V.Const = static_cast<int32_t>(RNG.nextInRange(-50, 50));
  }
  return V;
}

} // namespace

ProgramSpec ProgramGenerator::makeSpec(uint64_t Seed) const {
  RandomEngine RNG(Seed * 0x9E3779B97F4A7C15ULL + 1);
  ProgramSpec Spec;

  // Virtual-dispatch fan-out.
  uint32_t NumImpls =
      drawRange(RNG, std::max(1u, Shape.MinVirtualImpls),
                std::max(1u, Shape.MaxVirtualImpls));
  for (uint32_t I = 0; I != NumImpls; ++I) {
    ImplSpec Impl;
    Impl.Operand = static_cast<int32_t>(RNG.nextBelow(90)) + 1;
    switch (RNG.nextBelow(3)) {
    case 0:
      Impl.Op = ImplOp::Add;
      break;
    case 1:
      Impl.Op = ImplOp::Mul;
      break;
    default:
      Impl.Op = ImplOp::Xor;
      break;
    }
    if (RNG.nextBool(0.5))
      Impl.WorkCycles = static_cast<int32_t>(RNG.nextBelow(10)) + 1;
    Spec.Impls.push_back(Impl);
  }

  // Static method DAG.
  uint32_t NumMethods =
      drawRange(RNG, std::max(1u, Shape.MinMethods),
                std::max(1u, Shape.MaxMethods));
  for (uint32_t M = 0; M != NumMethods; ++M) {
    MethodSpec MS;
    MS.NumArgs = drawRange(RNG, 0, Shape.MaxArgs);
    Spec.Methods.push_back(std::move(MS));
  }

  for (uint32_t M = 0; M != NumMethods; ++M) {
    MethodSpec &MS = Spec.Methods[M];
    uint32_t Steps = drawRange(RNG, Shape.MinSteps, Shape.MaxSteps);
    for (uint32_t S = 0; S != Steps; ++S) {
      StepSpec Step;
      switch (RNG.nextBelow(10)) {
      case 0:
      case 1:
        Step.Kind = StepKind::Push;
        Step.Values.push_back(drawValue(RNG, MS.NumArgs));
        break;
      case 2:
        Step.Kind = StepKind::BinOp;
        Step.A = static_cast<int32_t>(RNG.nextBelow(5));
        Step.Values.push_back(drawValue(RNG, MS.NumArgs));
        break;
      case 3:
        Step.Kind = StepKind::Div;
        Step.A = static_cast<int32_t>(RNG.nextBelow(9)) + 1;
        Step.Values.push_back(drawValue(RNG, MS.NumArgs));
        break;
      case 4:
        Step.Kind = StepKind::Accumulate;
        Step.Values.push_back(drawValue(RNG, MS.NumArgs));
        break;
      case 5: {
        if (M == 0)
          continue; // method 0 has no lower callee
        Step.Kind = StepKind::CallStatic;
        Step.Callee = static_cast<uint32_t>(RNG.nextBelow(M));
        for (uint32_t A = 0; A != Spec.Methods[Step.Callee].NumArgs; ++A)
          Step.Values.push_back(drawValue(RNG, MS.NumArgs));
        break;
      }
      case 6:
        Step.Kind = StepKind::CallVirtual;
        Step.ImplIndex = static_cast<uint32_t>(RNG.nextBelow(NumImpls));
        Step.Values.push_back(drawValue(RNG, MS.NumArgs));
        break;
      case 7:
        Step.Kind = StepKind::Loop;
        Step.A =
            static_cast<int32_t>(drawRange(RNG, 1, Shape.MaxLoopTrip));
        if (RNG.nextBool(0.3))
          Step.B = static_cast<int32_t>(RNG.nextBelow(20)) + 1;
        break;
      case 8:
        Step.Kind = StepKind::Diamond;
        Step.A = static_cast<int32_t>(RNG.nextBelow(100));
        Step.B = static_cast<int32_t>(RNG.nextBelow(100)) + 100;
        Step.Values.push_back(drawValue(RNG, MS.NumArgs));
        break;
      default:
        Step.Kind = StepKind::FieldTrip;
        Step.A = static_cast<int32_t>(RNG.nextBelow(1000));
        Step.B = static_cast<int32_t>(RNG.nextBelow(2));
        break;
      }
      MS.Steps.push_back(std::move(Step));
    }
  }

  // main's call list (with optional phase-shift repeat loops).
  uint32_t Calls = drawRange(RNG, std::max(1u, Shape.MinMainCalls),
                             std::max(1u, Shape.MaxMainCalls));
  for (uint32_t C = 0; C != Calls; ++C) {
    CallSpec Call;
    Call.Callee = static_cast<uint32_t>(RNG.nextBelow(NumMethods));
    for (uint32_t A = 0; A != Spec.Methods[Call.Callee].NumArgs; ++A)
      Call.Args.push_back(static_cast<int32_t>(RNG.nextInRange(-9, 9)));
    Call.Repeat = drawRange(RNG, 1, std::max(1u, Shape.MaxCallRepeat));
    Spec.MainCalls.push_back(std::move(Call));
  }

  // Worker threads.
  uint32_t Workers = Shape.MaxWorkerThreads == 0
                         ? 0
                         : drawRange(RNG, 0, Shape.MaxWorkerThreads);
  for (uint32_t W = 0; W != Workers; ++W) {
    WorkerSpec Worker;
    Worker.Callee = static_cast<uint32_t>(RNG.nextBelow(NumMethods));
    for (uint32_t A = 0; A != Spec.Methods[Worker.Callee].NumArgs; ++A)
      Worker.Args.push_back(static_cast<int32_t>(RNG.nextInRange(-9, 9)));
    Worker.Repeat = drawRange(RNG, 1, std::max(1u, Shape.MaxWorkerRepeat));
    Spec.Workers.push_back(std::move(Worker));
  }

  return Spec;
}

//===----------------------------------------------------------------------===//
// Shape serialization
//===----------------------------------------------------------------------===//

void fuzz::writeShape(const ShapeConfig &Shape, json::JsonWriter &W) {
  W.beginObject();
  W.key("minMethods");
  W.value(Shape.MinMethods);
  W.key("maxMethods");
  W.value(Shape.MaxMethods);
  W.key("maxArgs");
  W.value(Shape.MaxArgs);
  W.key("minVirtualImpls");
  W.value(Shape.MinVirtualImpls);
  W.key("maxVirtualImpls");
  W.value(Shape.MaxVirtualImpls);
  W.key("minSteps");
  W.value(Shape.MinSteps);
  W.key("maxSteps");
  W.value(Shape.MaxSteps);
  W.key("maxLoopTrip");
  W.value(Shape.MaxLoopTrip);
  W.key("minMainCalls");
  W.value(Shape.MinMainCalls);
  W.key("maxMainCalls");
  W.value(Shape.MaxMainCalls);
  W.key("maxCallRepeat");
  W.value(Shape.MaxCallRepeat);
  W.key("maxWorkerThreads");
  W.value(Shape.MaxWorkerThreads);
  W.key("maxWorkerRepeat");
  W.value(Shape.MaxWorkerRepeat);
  W.endObject();
}

ShapeConfig fuzz::parseShape(const json::JsonValue &V, std::string &Error) {
  ShapeConfig Shape;
  Error.clear();
  if (!V.isObject()) {
    Error = "shape is not an object";
    return Shape;
  }
  auto Get = [&](const char *Name, uint32_t Default) {
    return static_cast<uint32_t>(V.numberOr(Name, Default));
  };
  Shape.MinMethods = Get("minMethods", Shape.MinMethods);
  Shape.MaxMethods = Get("maxMethods", Shape.MaxMethods);
  Shape.MaxArgs = Get("maxArgs", Shape.MaxArgs);
  Shape.MinVirtualImpls = Get("minVirtualImpls", Shape.MinVirtualImpls);
  Shape.MaxVirtualImpls = Get("maxVirtualImpls", Shape.MaxVirtualImpls);
  Shape.MinSteps = Get("minSteps", Shape.MinSteps);
  Shape.MaxSteps = Get("maxSteps", Shape.MaxSteps);
  Shape.MaxLoopTrip = Get("maxLoopTrip", Shape.MaxLoopTrip);
  Shape.MinMainCalls = Get("minMainCalls", Shape.MinMainCalls);
  Shape.MaxMainCalls = Get("maxMainCalls", Shape.MaxMainCalls);
  Shape.MaxCallRepeat = Get("maxCallRepeat", Shape.MaxCallRepeat);
  Shape.MaxWorkerThreads = Get("maxWorkerThreads", Shape.MaxWorkerThreads);
  Shape.MaxWorkerRepeat = Get("maxWorkerRepeat", Shape.MaxWorkerRepeat);
  return Shape;
}
