//===- fuzz/Artifact.h - Replayable violation artifacts ---------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replayable JSON artifact a fuzzing campaign emits for every
/// oracle violation: the campaign seed, the shape knobs, the violated
/// oracle's id and message, and the *reduced* program spec. The
/// artifact is self-contained — `cbsvm fuzz --replay <file>` rebuilds
/// the spec, re-runs the named oracle under the recorded seed, and
/// reports whether the violation still reproduces, with no reference to
/// the campaign that found it.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_FUZZ_ARTIFACT_H
#define CBSVM_FUZZ_ARTIFACT_H

#include "fuzz/ProgramGenerator.h"
#include "fuzz/ProgramSpec.h"

#include <string>

namespace cbs::fuzz {

struct Artifact {
  /// Format version (bumped on breaking artifact changes).
  static constexpr int Version = 1;

  /// Campaign seed the violation was found (and replays) under.
  uint64_t Seed = 1;
  /// Shape knobs the campaign ran with (provenance; the spec below is
  /// already expanded, so replay does not regenerate from these).
  ShapeConfig Shape;
  /// Violated oracle's id.
  std::string OracleId;
  /// Violation message of the reduced program.
  std::string Message;
  /// The reduced, still-failing program spec.
  ProgramSpec Spec;
};

/// Serializes \p A as a compact JSON document (deterministic: equal
/// artifacts serialize byte-identically).
std::string writeArtifact(const Artifact &A);

/// Parses an artifact previously produced by writeArtifact. Returns the
/// artifact, or sets \p Error and returns a default one.
Artifact parseArtifact(const std::string &Text, std::string &Error);

} // namespace cbs::fuzz

#endif // CBSVM_FUZZ_ARTIFACT_H
