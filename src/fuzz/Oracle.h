//===- fuzz/Oracle.h - Differential invariant oracles -----------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable oracle registry of differential invariants the fuzzer
/// checks on every generated program. An oracle receives a program and
/// the campaign seed, runs whatever VM configurations it needs, and
/// returns an empty string when its invariant holds — or a diagnostic
/// message when it is violated, at which point the campaign driver
/// reduces the program and emits a replayable artifact.
///
/// Oracle contract:
///  - check() must be deterministic: a pure function of (program,
///    seed). All VM runs inside an oracle are seeded; no host time, no
///    global state.
///  - check() must be self-contained: it builds every run it compares
///    from the inputs, so a reduced program can be re-checked from the
///    artifact alone.
///  - A returned message should name the compared configurations and
///    the first observed divergence, not dump whole outputs.
///
/// Built-in oracles (OracleRegistry::builtin):
///  - output-stability: optimized vs unoptimized and profiling-on vs
///    profiling-off runs produce identical Print output and heap stats.
///  - cbs-subset: the CBS-sampled DCG's support is a subset of the
///    exhaustive profile, with overlap above a seed-stable floor.
///  - profile-roundtrip: serialize → parse → serialize of any sampled
///    profile is byte-identical and validates against the program.
///  - shard-determinism: DCG snapshots are bitwise equal across
///    --dcg-shards 1/8 and across ParallelRunner --jobs 1/4.
///  - async-compile-stability: the background compile pipeline preserves
///    semantics at any modelled latency and is byte-identical at any
///    --compile-jobs count.
///  - deopt-storm-stability: a forced invalidation storm leaves output
///    and heap byte-identical to the no-AOS baseline.
///  - osr-stability: on-stack replacement (promotion and deopt-exit
///    transfers at loop-header yieldpoints) preserves output and heap
///    and is byte-identical at any --compile-jobs count, including
///    under the forced invalidation storm.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_FUZZ_ORACLE_H
#define CBSVM_FUZZ_ORACLE_H

#include "bytecode/Program.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cbs::fuzz {

struct OracleInput {
  const bc::Program &P;
  /// Campaign seed for this program: every VM configuration an oracle
  /// builds derives its VMConfig::Seed from it.
  uint64_t Seed = 1;
};

class Oracle {
public:
  virtual ~Oracle();

  /// Stable identifier (artifact field, --oracle filter).
  virtual const char *id() const = 0;
  /// One-line human description for `cbsvm fuzz --list-oracles`.
  virtual const char *describe() const = 0;
  /// Empty string = invariant holds; else the violation message.
  virtual std::string check(const OracleInput &In) const = 0;
};

/// Owns a set of oracles; lookup by id, iteration in registration
/// order (which is deterministic, so campaign output is too).
class OracleRegistry {
public:
  OracleRegistry() = default;
  OracleRegistry(OracleRegistry &&) = default;
  OracleRegistry &operator=(OracleRegistry &&) = default;

  void add(std::unique_ptr<Oracle> O);

  const Oracle *find(std::string_view Id) const;
  const std::vector<std::unique_ptr<Oracle>> &all() const { return Oracles; }

  /// The eight built-in differential invariants.
  static OracleRegistry builtin();

private:
  std::vector<std::unique_ptr<Oracle>> Oracles;
};

/// Test-only hook: registers the deliberately broken "broken" oracle,
/// which flags any program that prints at all. Used to exercise the
/// reducer and the artifact/replay path end to end (a reduced program
/// must still print, so minimization bottoms out at a one-print main).
/// Never part of builtin(); `cbsvm fuzz --broken-oracle` and the unit
/// tests opt in explicitly.
void addBrokenOracleForTesting(OracleRegistry &R);

} // namespace cbs::fuzz

#endif // CBSVM_FUZZ_ORACLE_H
