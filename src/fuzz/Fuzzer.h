//===- fuzz/Fuzzer.h - Differential fuzzing campaign driver -----*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign driver behind `cbsvm fuzz`: a grid of seeds fanned out
/// over the deterministic ParallelRunner. Each task generates one
/// program, verifies it, checks every selected oracle, and — on a
/// violation — runs the delta-debugging reducer and serializes a
/// replayable artifact. All observable output (log lines, artifact
/// files, metrics) is produced at commit time in strict seed order, so
/// a campaign's results are byte-identical at any --jobs value.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_FUZZ_FUZZER_H
#define CBSVM_FUZZ_FUZZER_H

#include "fuzz/Artifact.h"
#include "fuzz/Oracle.h"
#include "fuzz/ProgramGenerator.h"
#include "fuzz/Reducer.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace cbs::tel {
class MetricRegistry;
}

namespace cbs::fuzz {

struct FuzzOptions {
  /// First seed; run i uses seed SeedBase + i.
  uint64_t SeedBase = 1;
  /// Number of programs to generate and check.
  unsigned Runs = 100;
  /// Worker threads (0 = ParallelRunner's resolveJobs default).
  unsigned Jobs = 1;
  /// Restrict to the oracle with this id (empty = all registered).
  std::string OracleFilter;
  /// Directory for violation artifacts (empty = keep them in memory
  /// only; the report still carries the JSON).
  std::string ArtifactDir;
  /// Program-shape knobs.
  ShapeConfig Shape;
  /// Run the reducer on violations (replay artifacts then hold the
  /// minimized spec rather than the original).
  bool Reduce = true;
  ReduceOptions Reducer;
};

/// One oracle violation, post-reduction.
struct Violation {
  uint64_t Seed = 0;
  std::string OracleId;
  /// Violation message of the (reduced) program.
  std::string Message;
  /// The replayable artifact document.
  std::string ArtifactJson;
  /// Where the artifact was written ("" when ArtifactDir is unset or
  /// the write failed — see Report::Log).
  std::string ArtifactPath;
  /// Reduction statistics (Original == Reduced when reduction is off
  /// or nothing could be removed).
  size_t OriginalAtoms = 0;
  size_t ReducedAtoms = 0;
  unsigned ReduceChecks = 0;
};

struct FuzzReport {
  unsigned Runs = 0;
  unsigned OracleChecks = 0;
  std::vector<Violation> Violations;

  bool clean() const { return Violations.empty(); }
};

/// Runs a campaign. \p Registry supplies the oracles (builtin() plus
/// any test hooks); \p Log receives one deterministic progress line per
/// violation plus the summary (may be null). \p Metrics (may be null)
/// receives fuzz.* counters: fuzz.runs, fuzz.oracle_checks,
/// fuzz.violations, fuzz.reduce_checks, fuzz.reduce_accepted,
/// fuzz.artifacts_written.
FuzzReport runFuzz(const FuzzOptions &Options, const OracleRegistry &Registry,
                   tel::MetricRegistry *Metrics = nullptr,
                   std::ostream *Log = nullptr);

/// Replays an artifact: rebuilds the spec, re-checks the recorded
/// oracle under the recorded seed. Returns the violation message
/// (empty = the violation did NOT reproduce). Sets \p Error on
/// structural problems (unknown oracle, invalid spec).
std::string replayArtifact(const Artifact &A, const OracleRegistry &Registry,
                           std::string &Error);

} // namespace cbs::fuzz

#endif // CBSVM_FUZZ_FUZZER_H
