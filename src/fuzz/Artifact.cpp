//===- fuzz/Artifact.cpp - Replayable violation artifacts ------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Artifact.h"

#include "support/Json.h"

using namespace cbs;
using namespace cbs::fuzz;

std::string fuzz::writeArtifact(const Artifact &A) {
  json::JsonWriter W;
  W.beginObject();
  W.key("version");
  W.value(Artifact::Version);
  W.key("seed");
  W.value(A.Seed);
  W.key("oracle");
  W.value(A.OracleId);
  W.key("message");
  W.value(A.Message);
  W.key("shape");
  writeShape(A.Shape, W);
  W.key("spec");
  writeSpec(A.Spec, W);
  W.endObject();
  return W.take();
}

Artifact fuzz::parseArtifact(const std::string &Text, std::string &Error) {
  Artifact A;
  Error.clear();

  json::JsonParseResult Parsed = json::parseJson(Text);
  if (!Parsed.ok()) {
    Error = "artifact is not valid JSON: " + Parsed.Error;
    return A;
  }
  const json::JsonValue &V = *Parsed.Value;
  if (!V.isObject()) {
    Error = "artifact is not a JSON object";
    return A;
  }

  int Version = static_cast<int>(V.numberOr("version", 0));
  if (Version != Artifact::Version) {
    Error = "unsupported artifact version " + std::to_string(Version) +
            " (expected " + std::to_string(Artifact::Version) + ")";
    return A;
  }

  A.Seed = static_cast<uint64_t>(V.numberOr("seed", 1));

  const json::JsonValue *OracleId = V.find("oracle");
  if (!OracleId || !OracleId->isString()) {
    Error = "artifact has no oracle id";
    return A;
  }
  A.OracleId = OracleId->Str;

  if (const json::JsonValue *Message = V.find("message");
      Message && Message->isString())
    A.Message = Message->Str;

  if (const json::JsonValue *Shape = V.find("shape")) {
    A.Shape = parseShape(*Shape, Error);
    if (!Error.empty()) {
      Error = "artifact shape: " + Error;
      return A;
    }
  }

  const json::JsonValue *Spec = V.find("spec");
  if (!Spec) {
    Error = "artifact has no program spec";
    return A;
  }
  A.Spec = parseSpec(*Spec, Error);
  if (!Error.empty())
    Error = "artifact spec: " + Error;
  return A;
}
